//===- coverme_serve.cpp - Campaign-as-a-service over a local socket --------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// The service/Session layer as a process: a newline-JSON protocol over an
// AF_UNIX stream socket. Each request is one JSON object on one line; each
// response is one JSON object per line (the `stream` verb sends several).
// Campaigns run asynchronously on the session's worker pool, compiled
// units are cached across submissions by content hash, and any job can be
// checkpointed at a round boundary and resumed — in this process or, via
// the serialized snapshot, in another one — continuing bit-identically.
//
// Verbs (see README.md for the full field tables):
//
//   {"cmd":"submit","source":"...","entry":"f", ...}   -> {"ok":true,"job":N}
//     ... accepts deadline_seconds (wall deadline per run) and
//     checkpoint_every (durable checkpoint cadence, with --state-dir)
//   {"cmd":"status","job":N}
//   {"cmd":"wait","job":N}            block until suspended/done/failed
//   {"cmd":"wait","job":N,"timeout_ms":T}  bounded; "timed_out":true +
//     the live status when the job is still running
//   {"cmd":"progress","job":N,"from":K}
//   {"cmd":"stream","job":N}          one line per committed round, then end
//   {"cmd":"checkpoint","job":N}      -> {"ok":true,"snapshot":"<hex>"}
//   {"cmd":"resume","job":N}          continue a suspended job in place
//   {"cmd":"resume","snapshot":"<hex>","source":...}  new job from bytes
//   {"cmd":"result","job":N}
//   {"cmd":"cancel","job":N}
//   {"cmd":"jobs"}                    every job's status (find recovered ids)
//   {"cmd":"stats"}                   compiled-unit cache counters
//   {"cmd":"shutdown"}
//
// Usage:
//   coverme_serve --socket /tmp/coverme.sock [--workers N]
//                 [--state-dir DIR] [--checkpoint-every N]
//   coverme_serve --smoke             self-driving end-to-end scenario
//
// With --state-dir the daemon journals every campaign to a durable
// checkpoint store (write-temp/fsync/rename, CRC-framed) and, on startup,
// recovers whatever a crashed predecessor left there — resuming each
// campaign from its newest valid snapshot, bit-identically.
//
// The --smoke mode starts the server on a private socket, drives the whole
// protocol through a real client connection — two subjects, a mid-flight
// checkpoint, an in-place resume, a resume-from-bytes, a corrupt-snapshot
// rejection, a deadline expiry, a bounded wait, an oversized request, a
// cancellation — then runs the crash drill: a journaling daemon child is
// SIGKILLed mid-campaign and a restarted daemon on the same --state-dir
// must recover the job and finish it bit-identically. CI runs it as the
// service smoke job.
//
//===----------------------------------------------------------------------===//

#include "core/Checkpoint.h"
#include "service/CheckpointStore.h"
#include "service/JobWire.h"
#include "service/Json.h"
#include "service/Session.h"
#include "support/FloatBits.h"
#include "support/Timer.h"

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace coverme;

namespace {

//===----------------------------------------------------------------------===//
// Small helpers: hex, line-framed sockets, result digests
//===----------------------------------------------------------------------===//

std::string toHex(const std::vector<uint8_t> &Bytes) {
  static const char *Digits = "0123456789abcdef";
  std::string Out;
  Out.reserve(Bytes.size() * 2);
  for (uint8_t B : Bytes) {
    Out += Digits[B >> 4];
    Out += Digits[B & 0xf];
  }
  return Out;
}

bool fromHex(const std::string &Hex, std::vector<uint8_t> &Out) {
  if (Hex.size() % 2 != 0)
    return false;
  Out.clear();
  Out.reserve(Hex.size() / 2);
  auto Nibble = [](char C) -> int {
    if (C >= '0' && C <= '9')
      return C - '0';
    if (C >= 'a' && C <= 'f')
      return C - 'a' + 10;
    if (C >= 'A' && C <= 'F')
      return C - 'A' + 10;
    return -1;
  };
  for (size_t I = 0; I < Hex.size(); I += 2) {
    int Hi = Nibble(Hex[I]), Lo = Nibble(Hex[I + 1]);
    if (Hi < 0 || Lo < 0)
      return false;
    Out.push_back(static_cast<uint8_t>((Hi << 4) | Lo));
  }
  return true;
}

bool sendLine(int Fd, std::string Line) {
  Line += '\n';
  size_t Off = 0;
  while (Off < Line.size()) {
    ssize_t N = ::send(Fd, Line.data() + Off, Line.size() - Off, MSG_NOSIGNAL);
    if (N < 0 && errno == EINTR)
      continue; // a signal landing mid-send must not drop the reply
    if (N <= 0)
      return false;
    Off += static_cast<size_t>(N);
  }
  return true;
}

/// recv() with per-connection buffering, returning one '\n'-terminated line
/// at a time. Bounded: a line longer than MaxLine is discarded through its
/// terminating newline and reported as TooLarge, so one hostile or buggy
/// client cannot balloon the daemon's memory — and the connection stays
/// usable for the next request.
struct LineReader {
  static constexpr size_t MaxLine = 8u << 20; // 8 MiB

  int Fd;
  std::string Buffer;
  bool Discarding = false;

  enum class Status : uint8_t { Line, TooLarge, Closed };

  Status next(std::string &Line) {
    for (;;) {
      size_t Pos = Buffer.find('\n');
      if (Pos != std::string::npos) {
        if (Discarding) {
          // The tail of an over-long line; drop it and resynchronize.
          Buffer.erase(0, Pos + 1);
          Discarding = false;
          return Status::TooLarge;
        }
        Line = Buffer.substr(0, Pos);
        Buffer.erase(0, Pos + 1);
        return Status::Line;
      }
      if (Buffer.size() > MaxLine) {
        Buffer.clear();
        Discarding = true;
      }
      char Chunk[4096];
      ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
      if (N < 0 && errno == EINTR)
        continue;
      if (N <= 0)
        return Status::Closed;
      Buffer.append(Chunk, static_cast<size_t>(N));
    }
  }
};

//===----------------------------------------------------------------------===//
// The server
//===----------------------------------------------------------------------===//

std::string errorReply(const std::string &Message) {
  json::ObjectWriter W;
  W.field("ok", false).field("error", Message);
  return W.str();
}

std::string roundEventJson(const RoundLog &Log) {
  json::ObjectWriter W;
  W.field("event", "round")
      .field("round", Log.Round)
      .field("minimum", Log.MinimumValue)
      .field("minimum_bits", doubleToBits(Log.MinimumValue))
      .field("accepted", Log.Accepted)
      .field("marked_infeasible", Log.MarkedInfeasible)
      .field("saturated_arms", Log.SaturatedArms);
  return W.str();
}

SessionOptions sessionOptions(unsigned Workers, CheckpointStore *Store,
                              unsigned CheckpointEvery) {
  SessionOptions Opts;
  Opts.Workers = Workers;
  Opts.Store = Store;
  Opts.CheckpointEveryRounds = CheckpointEvery;
  return Opts;
}

class Server {
public:
  Server(std::string SocketPath, unsigned Workers, std::string StateDir = "",
         unsigned CheckpointEvery = 0)
      : SocketPath(std::move(SocketPath)),
        Store(StateDir.empty() ? nullptr : new CheckpointStore(StateDir)),
        TheSession(sessionOptions(Workers, Store.get(), CheckpointEvery)) {}

  ~Server() {
    if (ListenFd >= 0)
      ::close(ListenFd);
    ::unlink(SocketPath.c_str());
  }

  bool listen() {
    ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (ListenFd < 0)
      return false;
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    if (SocketPath.size() >= sizeof(Addr.sun_path)) {
      std::fprintf(stderr, "socket path too long: %s\n", SocketPath.c_str());
      return false;
    }
    std::strncpy(Addr.sun_path, SocketPath.c_str(), sizeof(Addr.sun_path) - 1);
    ::unlink(SocketPath.c_str());
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
            0 ||
        ::listen(ListenFd, 8) < 0) {
      ::close(ListenFd);
      ListenFd = -1;
      return false;
    }
    return true;
  }

  /// Scans the state directory and resubmits every journaled campaign a
  /// previous process left behind. Call once, before serving clients.
  void recover() {
    if (!Store)
      return;
    if (!Store->ok()) {
      std::fprintf(stderr, "warning: state dir %s unusable; journaling off\n",
                   Store->directory().c_str());
      return;
    }
    std::vector<uint64_t> Ids = TheSession.recoverFromStore();
    for (uint64_t Id : Ids)
      std::printf("recovered job %llu from %s\n",
                  static_cast<unsigned long long>(Id),
                  Store->directory().c_str());
    if (unsigned Q = Store->quarantinedCount())
      std::fprintf(stderr, "warning: %u torn/corrupt journal file%s "
                           "quarantined as .corrupt\n",
                   Q, Q == 1 ? "" : "s");
  }

  /// Accept loop; returns when a client sends shutdown.
  void run() {
    std::vector<std::thread> Clients;
    while (!ShutdownRequested.load(std::memory_order_relaxed)) {
      int Fd = ::accept(ListenFd, nullptr, nullptr);
      if (Fd < 0)
        break;
      Clients.emplace_back([this, Fd] {
        handleClient(Fd);
        ::close(Fd);
      });
    }
    for (std::thread &T : Clients)
      T.join();
  }

private:
  void handleClient(int Fd) {
    LineReader Reader{Fd, {}, false};
    std::string Line;
    for (;;) {
      LineReader::Status St = Reader.next(Line);
      if (St == LineReader::Status::Closed)
        return;
      if (St == LineReader::Status::TooLarge) {
        if (!sendLine(Fd, errorReply("request too large")))
          return;
        continue;
      }
      if (Line.empty())
        continue;
      json::Value Req;
      std::string ParseErr;
      if (!json::parse(Line, Req, ParseErr)) {
        sendLine(Fd, errorReply("bad JSON: " + ParseErr));
        continue;
      }
      const std::string Cmd = Req.str("cmd");
      if (Cmd == "shutdown") {
        sendLine(Fd, "{\"ok\":true}");
        ShutdownRequested.store(true, std::memory_order_relaxed);
        // Unblock accept() so run() can exit.
        ::shutdown(ListenFd, SHUT_RDWR);
        return;
      }
      if (!dispatch(Fd, Cmd, Req))
        return; // client went away mid-reply
    }
  }

  bool dispatch(int Fd, const std::string &Cmd, const json::Value &Req) {
    if (Cmd == "submit")
      return cmdSubmit(Fd, Req);
    if (Cmd == "status")
      return cmdStatus(Fd, Req);
    if (Cmd == "wait")
      return cmdWait(Fd, Req);
    if (Cmd == "progress")
      return cmdProgress(Fd, Req);
    if (Cmd == "stream")
      return cmdStream(Fd, Req);
    if (Cmd == "checkpoint")
      return cmdCheckpoint(Fd, Req);
    if (Cmd == "resume")
      return cmdResume(Fd, Req);
    if (Cmd == "result")
      return cmdResult(Fd, Req);
    if (Cmd == "cancel")
      return cmdCancel(Fd, Req);
    if (Cmd == "stats")
      return cmdStats(Fd);
    if (Cmd == "jobs")
      return cmdJobs(Fd);
    return sendLine(Fd, errorReply("unknown cmd \"" + Cmd + "\""));
  }

  bool cmdSubmit(int Fd, const json::Value &Req) {
    JobRequest JR;
    std::string Err;
    if (!jobRequestFromJson(Req, JR, Err))
      return sendLine(Fd, errorReply(Err));
    uint64_t Id = TheSession.submit(std::move(JR));
    if (!Id)
      return sendLine(Fd, errorReply("session is shutting down"));
    json::ObjectWriter W;
    W.field("ok", true).field("job", Id);
    return sendLine(Fd, W.str());
  }

  static void statusFields(json::ObjectWriter &W, const JobStatus &St) {
    W.field("job", St.Id)
        .field("state", jobStateName(St.State))
        .field("rounds", St.RoundsCommitted)
        .field("saturated_arms", St.SaturatedArms)
        .field("cache_hit", St.CacheHit)
        .field("compile_seconds", St.CompileSeconds)
        .field("unit_hash", St.UnitHash)
        .field("has_result", St.HasResult)
        .field("stop_reason", stopReasonName(St.Stop));
    if (!St.StoreKey.empty())
      W.field("store_key", St.StoreKey).field("checkpoints",
                                              St.CheckpointsSaved);
    if (!St.StoreError.empty())
      W.field("store_error", St.StoreError);
    if (!St.Error.empty())
      W.field("error", St.Error);
  }

  bool statusJson(uint64_t Id, std::string &Out) {
    JobStatus St;
    if (!TheSession.status(Id, St))
      return false;
    json::ObjectWriter W;
    W.field("ok", true);
    statusFields(W, St);
    Out = W.str();
    return true;
  }

  bool cmdStatus(int Fd, const json::Value &Req) {
    std::string Reply;
    if (!statusJson(Req.u64("job"), Reply))
      return sendLine(Fd, errorReply("unknown job"));
    return sendLine(Fd, Reply);
  }

  bool cmdWait(int Fd, const json::Value &Req) {
    uint64_t Id = Req.u64("job");
    // With "timeout_ms": bounded wait — a still-running job is not an
    // error, the reply carries its live status plus "timed_out":true.
    double TimeoutSeconds = -1.0;
    if (Req.find("timeout_ms"))
      TimeoutSeconds = Req.num("timeout_ms") / 1000.0;
    Session::WaitOutcome Outcome = TheSession.waitFor(Id, TimeoutSeconds);
    if (Outcome == Session::WaitOutcome::Unknown)
      return sendLine(Fd, errorReply("unknown job"));
    JobStatus St;
    TheSession.status(Id, St);
    json::ObjectWriter W;
    W.field("ok", true)
        .field("timed_out", Outcome == Session::WaitOutcome::TimedOut);
    statusFields(W, St);
    return sendLine(Fd, W.str());
  }

  bool cmdJobs(int Fd) {
    std::string Arr = "[";
    bool First = true;
    for (const JobStatus &St : TheSession.jobs()) {
      if (!First)
        Arr += ',';
      First = false;
      json::ObjectWriter W;
      statusFields(W, St);
      Arr += W.str();
    }
    Arr += ']';
    json::ObjectWriter W;
    W.field("ok", true).raw("jobs", Arr);
    return sendLine(Fd, W.str());
  }

  bool cmdProgress(int Fd, const json::Value &Req) {
    uint64_t Id = Req.u64("job");
    JobStatus St;
    if (!TheSession.status(Id, St))
      return sendLine(Fd, errorReply("unknown job"));
    size_t From = Req.u64("from", 0);
    std::vector<RoundLog> Events = TheSession.progress(Id, From);
    std::string Arr = "[";
    for (size_t I = 0; I < Events.size(); ++I) {
      if (I)
        Arr += ',';
      Arr += roundEventJson(Events[I]);
    }
    Arr += ']';
    json::ObjectWriter W;
    W.field("ok", true)
        .field("job", Id)
        .raw("events", Arr)
        .field("next", static_cast<uint64_t>(From + Events.size()));
    return sendLine(Fd, W.str());
  }

  bool cmdStream(int Fd, const json::Value &Req) {
    uint64_t Id = Req.u64("job");
    JobStatus St;
    if (!TheSession.status(Id, St))
      return sendLine(Fd, errorReply("unknown job"));
    size_t Next = 0;
    for (;;) {
      std::vector<RoundLog> Events = TheSession.progress(Id, Next);
      Next += Events.size();
      for (const RoundLog &Log : Events)
        if (!sendLine(Fd, roundEventJson(Log)))
          return false;
      if (!TheSession.status(Id, St))
        break;
      bool Terminal = St.State == JobState::Suspended ||
                      St.State == JobState::Done ||
                      St.State == JobState::Failed ||
                      St.State == JobState::Cancelled;
      if (Terminal && Events.empty()) {
        json::ObjectWriter W;
        W.field("event", "end").field("state", jobStateName(St.State));
        return sendLine(Fd, W.str());
      }
      if (Events.empty())
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return sendLine(Fd, errorReply("job disappeared"));
  }

  bool cmdCheckpoint(int Fd, const json::Value &Req) {
    std::vector<uint8_t> Bytes;
    std::string Err;
    if (!TheSession.checkpoint(Req.u64("job"), Bytes, Err))
      return sendLine(Fd, errorReply(Err));
    json::ObjectWriter W;
    W.field("ok", true)
        .field("job", Req.u64("job"))
        .field("bytes", static_cast<uint64_t>(Bytes.size()))
        .field("snapshot", toHex(Bytes));
    return sendLine(Fd, W.str());
  }

  bool cmdResume(int Fd, const json::Value &Req) {
    std::string Err;
    // With snapshot bytes: a new job continuing the serialized campaign
    // (the cross-process path). With just a job id: in-place resume.
    if (const json::Value *Snap = Req.find("snapshot")) {
      std::vector<uint8_t> Bytes;
      if (!Snap->isString() || !fromHex(Snap->Str, Bytes))
        return sendLine(Fd, errorReply("snapshot must be a hex string"));
      JobRequest JR;
      if (!jobRequestFromJson(Req, JR, Err))
        return sendLine(Fd, errorReply(Err));
      uint64_t Id = TheSession.submitResume(std::move(JR), Bytes, Err);
      if (!Id)
        return sendLine(Fd, errorReply("snapshot rejected: " + Err));
      json::ObjectWriter W;
      W.field("ok", true).field("job", Id);
      return sendLine(Fd, W.str());
    }
    uint64_t Id = Req.u64("job");
    if (!TheSession.resume(Id, Err))
      return sendLine(Fd, errorReply(Err));
    json::ObjectWriter W;
    W.field("ok", true).field("job", Id);
    return sendLine(Fd, W.str());
  }

  bool cmdResult(int Fd, const json::Value &Req) {
    uint64_t Id = Req.u64("job");
    CampaignResult Res;
    if (!TheSession.result(Id, Res))
      return sendLine(Fd, errorReply("no result yet (job unknown or still "
                                     "queued/running)"));
    std::string Inputs = "[";
    for (size_t I = 0; I < Res.Inputs.size(); ++I) {
      if (I)
        Inputs += ',';
      Inputs += '[';
      for (size_t J = 0; J < Res.Inputs[I].size(); ++J) {
        if (J)
          Inputs += ',';
        // Bit patterns, not decimal: the client diffing two runs compares
        // these exactly.
        Inputs += std::to_string(doubleToBits(Res.Inputs[I][J]));
      }
      Inputs += ']';
    }
    Inputs += ']';
    json::ObjectWriter W;
    W.field("ok", true)
        .field("job", Id)
        .field("suspended", Res.Suspended)
        .field("stop_reason", stopReasonName(Res.Stop))
        .field("rounds", Res.StartsUsed)
        .field("evaluations", Res.Evaluations)
        .field("covered_branches", Res.CoveredBranches)
        .field("total_branches", Res.TotalBranches)
        .field("branch_coverage", Res.BranchCoverage)
        .field("inputs", static_cast<uint64_t>(Res.Inputs.size()))
        .raw("input_bits", Inputs)
        .field("digest", resultDigest(Res));
    return sendLine(Fd, W.str());
  }

  bool cmdCancel(int Fd, const json::Value &Req) {
    uint64_t Id = Req.u64("job");
    if (!TheSession.cancel(Id))
      return sendLine(Fd, errorReply("unknown or already-terminated job"));
    json::ObjectWriter W;
    W.field("ok", true).field("job", Id);
    return sendLine(Fd, W.str());
  }

  bool cmdStats(int Fd) {
    CompiledUnitCache::Stats St = TheSession.cacheStats();
    json::ObjectWriter W;
    W.field("ok", true)
        .field("cache_units", static_cast<uint64_t>(TheSession.cacheSize()))
        .field("cache_hits", St.Hits)
        .field("cache_misses", St.Misses)
        .field("failed_compiles", St.FailedCompiles)
        .field("compile_seconds", St.CompileSeconds)
        .field("workers", TheSession.workers());
    return sendLine(Fd, W.str());
  }

  std::string SocketPath;
  /// Declared before TheSession: the session keeps a raw pointer to the
  /// store, so the store must outlive it (destruction is reverse order).
  std::unique_ptr<CheckpointStore> Store;
  Session TheSession;
  int ListenFd = -1;
  std::atomic<bool> ShutdownRequested{false};
};

//===----------------------------------------------------------------------===//
// --smoke: the self-driving protocol scenario
//===----------------------------------------------------------------------===//

/// Subject A: enough conditional structure that a few rounds cannot finish
/// it, so mid-flight checkpoints are meaningful.
const char *ClassifierSource = R"(
double classify(double a, double b) {
  double r = 0.0;
  if (a < 1.0) {
    if (b < -2.0) r = a + b;
    else r = a - b;
  } else {
    if (b > 100.0) r = b * 2.0;
    else if (a > 500.0) r = a;
    else r = 1.0;
  }
  if (r > 50.0) r = r - 50.0;
  return r;
}
)";

/// Subject B: a second distinct unit for the cache and queue.
const char *PolySource = R"(
double poly(double x) {
  if (x < 0.0) x = -x;
  if (x > 10.0) return x * x - 9.0;
  return x + 1.0;
}
)";

struct SmokeClient {
  int Fd = -1;
  LineReader Reader{-1, {}};

  bool connect(const std::string &Path) {
    for (int Attempt = 0; Attempt < 200; ++Attempt) {
      Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (Fd < 0)
        return false;
      sockaddr_un Addr{};
      Addr.sun_family = AF_UNIX;
      std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
      if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
          0) {
        Reader.Fd = Fd;
        return true;
      }
      ::close(Fd);
      Fd = -1;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  }

  /// One request, one reply line, parsed.
  bool call(const std::string &Request, json::Value &Reply) {
    if (!sendLine(Fd, Request))
      return false;
    std::string Line;
    if (Reader.next(Line) != LineReader::Status::Line)
      return false;
    std::string Err;
    return json::parse(Line, Reply, Err);
  }

  ~SmokeClient() {
    if (Fd >= 0)
      ::close(Fd);
  }
};

#define SMOKE_CHECK(Cond, What)                                                \
  do {                                                                         \
    if (!(Cond)) {                                                             \
      std::fprintf(stderr, "SMOKE FAIL at %s:%d: %s\n", __FILE__, __LINE__,    \
                   What);                                                      \
      return 1;                                                                \
    }                                                                          \
  } while (0)

/// Builds a submit (or, with \p SnapshotHex, a resume-from-bytes) request.
/// stop_when_saturated is off so campaigns run a deterministic round count
/// and mid-flight suspension points always land.
std::string campaignRequest(const char *Cmd, const char *Source,
                            const char *Entry, uint64_t Seed, unsigned NStart,
                            unsigned Threads, unsigned SuspendAfter,
                            const std::string &SnapshotHex = "") {
  json::ObjectWriter W;
  W.field("cmd", Cmd)
      .field("source", Source)
      .field("entry", Entry)
      .field("seed", Seed)
      .field("n_start", NStart)
      .field("threads", Threads)
      .field("stop_when_saturated", false);
  if (SuspendAfter)
    W.field("suspend_after", SuspendAfter);
  if (!SnapshotHex.empty())
    W.field("snapshot", SnapshotHex);
  return W.str();
}

/// Forks a real daemon child on \p SocketPath/\p StateDir. fork+exec (not
/// plain fork): the parent runs a thread pool, and exec gives the child a
/// clean single-threaded address space instead of a forked copy of ours.
pid_t spawnDaemon(const std::string &SocketPath, const std::string &StateDir,
                  unsigned CheckpointEvery) {
  pid_t Pid = ::fork();
  if (Pid != 0)
    return Pid;
  std::string SocketArg = "--socket=" + SocketPath;
  std::string StateArg = "--state-dir=" + StateDir;
  std::string CkptArg = "--checkpoint-every=" + std::to_string(CheckpointEvery);
  ::execl("/proc/self/exe", "coverme_serve", SocketArg.c_str(),
          StateArg.c_str(), CkptArg.c_str(), "--workers=2",
          static_cast<char *>(nullptr));
  _exit(127);
}

/// The kill-and-restart drill: a journaling daemon is SIGKILLed mid-
/// campaign — after at least two durable checkpoints — then a fresh daemon
/// process on the same --state-dir recovers the job from the journal and
/// runs it to completion. The gate: the recovered campaign's digest equals
/// a fresh uninterrupted run of the same request, bit for bit.
int runCrashDrill() {
  const std::string Base = "/tmp/coverme_drill_" + std::to_string(::getpid());
  const std::string SockA = Base + "_a.sock";
  const std::string SockB = Base + "_b.sock";
  const std::string StateDir = Base + ".state";

  pid_t PidA = spawnDaemon(SockA, StateDir, /*CheckpointEvery=*/2);
  SMOKE_CHECK(PidA > 0, "first daemon forks");
  json::Value R;
  {
    SmokeClient Client;
    SMOKE_CHECK(Client.connect(SockA), "client connects to first daemon");
    SMOKE_CHECK(Client.call(campaignRequest("submit", ClassifierSource,
                                            "classify", /*Seed=*/7,
                                            /*NStart=*/24, /*Threads=*/2,
                                            /*SuspendAfter=*/0),
                            R) &&
                    R.boolean("ok"),
                "drill submit");
    uint64_t Job = R.u64("job");
    // Let the journal accumulate real mid-campaign checkpoints, then pull
    // the rug: SIGKILL, no shutdown handshake, no flush.
    bool Checkpointed = false;
    for (int I = 0; I < 4000 && !Checkpointed; ++I) {
      SMOKE_CHECK(Client.call("{\"cmd\":\"status\",\"job\":" +
                                  std::to_string(Job) + "}",
                              R) &&
                      R.boolean("ok"),
                  "drill status poll");
      Checkpointed = R.u64("checkpoints") >= 2;
      if (!Checkpointed)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    SMOKE_CHECK(Checkpointed, "daemon journaled checkpoints before the kill");
    SMOKE_CHECK(R.str("state") == "running", "job was mid-campaign at the kill");
  }
  SMOKE_CHECK(::kill(PidA, SIGKILL) == 0, "SIGKILL lands");
  int WaitStatus = 0;
  SMOKE_CHECK(::waitpid(PidA, &WaitStatus, 0) == PidA, "daemon reaped");
  SMOKE_CHECK(WIFSIGNALED(WaitStatus) && WTERMSIG(WaitStatus) == SIGKILL,
              "daemon died by SIGKILL, not a clean exit");

  // Restart on the same state directory; recovery resubmits the job.
  pid_t PidB = spawnDaemon(SockB, StateDir, /*CheckpointEvery=*/2);
  SMOKE_CHECK(PidB > 0, "second daemon forks");
  uint64_t RecoveredDigest = 0, ReferenceDigest = 0;
  {
    SmokeClient Client;
    SMOKE_CHECK(Client.connect(SockB), "client connects to restarted daemon");
    SMOKE_CHECK(Client.call("{\"cmd\":\"jobs\"}", R) && R.boolean("ok"),
                "jobs listing on restarted daemon");
    const json::Value *JobsArr = R.find("jobs");
    SMOKE_CHECK(JobsArr && JobsArr->isArray() && JobsArr->Arr.size() == 1,
                "exactly one job recovered from the journal");
    uint64_t Recovered = JobsArr->Arr[0].u64("job");
    SMOKE_CHECK(Client.call("{\"cmd\":\"wait\",\"job\":" +
                                std::to_string(Recovered) + "}",
                            R) &&
                    R.str("state") == "done",
                "recovered job completes");
    SMOKE_CHECK(Client.call("{\"cmd\":\"result\",\"job\":" +
                                std::to_string(Recovered) + "}",
                            R) &&
                    R.boolean("ok"),
                "recovered result");
    SMOKE_CHECK(R.u64("rounds") == 24, "recovered job ran all 24 rounds");
    RecoveredDigest = R.u64("digest");

    // The uninterrupted reference, on the same daemon (different thread
    // count for good measure — determinism is thread-count-invariant).
    SMOKE_CHECK(Client.call(campaignRequest("submit", ClassifierSource,
                                            "classify", /*Seed=*/7,
                                            /*NStart=*/24, /*Threads=*/1,
                                            /*SuspendAfter=*/0),
                            R) &&
                    R.boolean("ok"),
                "reference submit");
    uint64_t Ref = R.u64("job");
    SMOKE_CHECK(Client.call("{\"cmd\":\"wait\",\"job\":" + std::to_string(Ref) +
                                "}",
                            R) &&
                    R.str("state") == "done",
                "reference completes");
    SMOKE_CHECK(Client.call("{\"cmd\":\"result\",\"job\":" +
                                std::to_string(Ref) + "}",
                            R) &&
                    R.boolean("ok"),
                "reference result");
    ReferenceDigest = R.u64("digest");
    SMOKE_CHECK(RecoveredDigest == ReferenceDigest,
                "crash recovery is bit-identical to the uninterrupted run");

    SMOKE_CHECK(Client.call("{\"cmd\":\"shutdown\"}", R) && R.boolean("ok"),
                "restarted daemon shuts down");
  }
  SMOKE_CHECK(::waitpid(PidB, &WaitStatus, 0) == PidB,
              "restarted daemon reaped");
  std::printf("{\"smoke\":\"crash_drill\",\"recovered_digest\":%llu,"
              "\"reference_digest\":%llu}\n",
              static_cast<unsigned long long>(RecoveredDigest),
              static_cast<unsigned long long>(ReferenceDigest));
  return 0;
}

int runSmoke() {
  // Part 1: the compiled-unit cache amortization, measured directly — a
  // cold compile against the hit path's lookup, the ratio CI gates on.
  {
    CompiledUnitCache Cache;
    lang::SourceProgramOptions Opts;
    WallTimer Cold;
    auto First = Cache.get(ClassifierSource, "classify", Opts);
    double ColdSeconds = Cold.seconds();
    SMOKE_CHECK(First != nullptr, "cold compile succeeds");
    const int HitRuns = 200;
    WallTimer Hits;
    for (int I = 0; I < HitRuns; ++I) {
      bool Hit = false;
      auto Again = Cache.get(ClassifierSource, "classify", Opts, &Hit);
      SMOKE_CHECK(Hit && Again == First, "repeat get hits the cache");
    }
    double HitSeconds = Hits.seconds() / HitRuns;
    double Ratio = ColdSeconds / (HitSeconds > 0 ? HitSeconds : 1e-9);
    std::printf("{\"smoke\":\"cache\",\"cold_compile_seconds\":%.6f,"
                "\"cache_hit_seconds\":%.9f,\"compile_amortization\":%.1f}\n",
                ColdSeconds, HitSeconds, Ratio);
    SMOKE_CHECK(Ratio >= 10.0, "cache hit is >=10x cheaper than a compile");
  }

  // Part 2: the wire protocol, end to end over a real socket.
  std::string Path = "/tmp/coverme_serve_" + std::to_string(::getpid()) +
                     ".sock";
  Server Srv(Path, /*Workers=*/2);
  if (!Srv.listen()) {
    std::fprintf(stderr, "cannot listen on %s\n", Path.c_str());
    return 1;
  }
  std::thread ServerThread([&Srv] { Srv.run(); });
  SmokeClient Client;
  SMOKE_CHECK(Client.connect(Path), "client connects");

  json::Value R;

  // Subject A on 2 threads, suspending after 6 committed rounds.
  SMOKE_CHECK(Client.call(campaignRequest("submit", ClassifierSource,
                                          "classify", /*Seed=*/7,
                                          /*NStart=*/24, /*Threads=*/2,
                                          /*SuspendAfter=*/6),
                          R) &&
                  R.boolean("ok"),
              "submit A");
  uint64_t JobA = R.u64("job");

  // Subject B runs to completion alongside.
  SMOKE_CHECK(Client.call(campaignRequest("submit", PolySource, "poly",
                                          /*Seed=*/3, /*NStart=*/10,
                                          /*Threads=*/1, /*SuspendAfter=*/0),
                          R) &&
                  R.boolean("ok"),
              "submit B");
  uint64_t JobB = R.u64("job");

  SMOKE_CHECK(Client.call("{\"cmd\":\"wait\",\"job\":" + std::to_string(JobA) +
                              "}",
                          R) &&
                  R.str("state") == "suspended",
              "A suspends after 6 rounds");
  SMOKE_CHECK(R.u64("rounds") == 6, "A committed exactly 6 rounds");

  // Checkpoint the suspended job.
  SMOKE_CHECK(Client.call("{\"cmd\":\"checkpoint\",\"job\":" +
                              std::to_string(JobA) + "}",
                          R) &&
                  R.boolean("ok"),
              "checkpoint A");
  std::string SnapshotHex = R.str("snapshot");
  SMOKE_CHECK(!SnapshotHex.empty(), "checkpoint carries snapshot bytes");

  // Resume A in place; it must run to its natural end.
  SMOKE_CHECK(Client.call("{\"cmd\":\"resume\",\"job\":" +
                              std::to_string(JobA) + "}",
                          R) &&
                  R.boolean("ok"),
              "resume A");
  SMOKE_CHECK(Client.call("{\"cmd\":\"wait\",\"job\":" + std::to_string(JobA) +
                              "}",
                          R) &&
                  R.str("state") == "done",
              "A finishes after resume");
  SMOKE_CHECK(Client.call("{\"cmd\":\"result\",\"job\":" +
                              std::to_string(JobA) + "}",
                          R) &&
                  R.boolean("ok"),
              "result A");
  uint64_t ResumedDigest = R.u64("digest");
  SMOKE_CHECK(R.u64("rounds") == 24, "A ran all 24 rounds");

  // The uninterrupted reference: same subject, same seed, no suspension,
  // different thread count — must be bit-identical, and must hit the cache.
  SMOKE_CHECK(Client.call(campaignRequest("submit", ClassifierSource,
                                          "classify", /*Seed=*/7,
                                          /*NStart=*/24, /*Threads=*/1,
                                          /*SuspendAfter=*/0),
                          R) &&
                  R.boolean("ok"),
              "submit uninterrupted A");
  uint64_t JobRef = R.u64("job");
  SMOKE_CHECK(Client.call("{\"cmd\":\"wait\",\"job\":" +
                              std::to_string(JobRef) + "}",
                          R) &&
                  R.str("state") == "done",
              "uninterrupted A finishes");
  SMOKE_CHECK(R.boolean("cache_hit"), "uninterrupted A reuses the cached unit");
  SMOKE_CHECK(Client.call("{\"cmd\":\"result\",\"job\":" +
                              std::to_string(JobRef) + "}",
                          R) &&
                  R.boolean("ok"),
              "result uninterrupted A");
  uint64_t ReferenceDigest = R.u64("digest");
  SMOKE_CHECK(ResumedDigest == ReferenceDigest,
              "checkpoint/resume is bit-identical to the uninterrupted run");

  // Resume-from-bytes: a NEW job continuing the serialized snapshot (the
  // cross-process migration path) must land on the same digest too.
  SMOKE_CHECK(Client.call(campaignRequest("resume", ClassifierSource,
                                          "classify", /*Seed=*/7,
                                          /*NStart=*/24, /*Threads=*/2,
                                          /*SuspendAfter=*/0, SnapshotHex),
                          R) &&
                  R.boolean("ok"),
              "resume from snapshot bytes");
  uint64_t JobMigrated = R.u64("job");
  SMOKE_CHECK(Client.call("{\"cmd\":\"wait\",\"job\":" +
                              std::to_string(JobMigrated) + "}",
                          R) &&
                  R.str("state") == "done",
              "migrated job finishes");
  SMOKE_CHECK(Client.call("{\"cmd\":\"result\",\"job\":" +
                              std::to_string(JobMigrated) + "}",
                          R) &&
                  R.u64("digest") == ReferenceDigest,
              "snapshot-bytes resume is bit-identical too");

  // Corrupt snapshots must be rejected, not half-loaded: flip one byte in
  // the payload, then truncate.
  {
    // Flip a nibble of the magic: any loader must refuse before touching
    // the payload. (An arbitrary mid-payload flip could land in a raw
    // coverage counter, which no validator can catch.)
    std::string Bad = SnapshotHex;
    Bad[0] = Bad[0] == '0' ? '1' : '0';
    SMOKE_CHECK(Client.call(campaignRequest("resume", ClassifierSource,
                                            "classify", 7, 24, 1, 0, Bad),
                            R) &&
                    !R.boolean("ok", true),
                "corrupted-magic snapshot is rejected");
    std::string Short = SnapshotHex.substr(0, SnapshotHex.size() / 3 * 2);
    SMOKE_CHECK(Client.call(campaignRequest("resume", ClassifierSource,
                                            "classify", 7, 24, 1, 0, Short),
                            R) &&
                    !R.boolean("ok", true),
                "truncated snapshot is rejected");
  }

  // Subject B: completed naturally; its progress buffer replays the
  // campaign round by round.
  SMOKE_CHECK(Client.call("{\"cmd\":\"wait\",\"job\":" + std::to_string(JobB) +
                              "}",
                          R) &&
                  R.str("state") == "done",
              "B finishes");
  SMOKE_CHECK(Client.call("{\"cmd\":\"progress\",\"job\":" +
                              std::to_string(JobB) + ",\"from\":0}",
                          R) &&
                  R.boolean("ok"),
              "progress B");
  const json::Value *Events = R.find("events");
  SMOKE_CHECK(Events && Events->isArray() && Events->Arr.size() == 10,
              "B streamed one event per round");
  for (size_t I = 0; I < Events->Arr.size(); ++I)
    SMOKE_CHECK(Events->Arr[I].u64("round") == I + 1,
                "round events arrive in commit order");

  // Deadline: a tiny wall deadline stops the campaign at a round boundary
  // with a valid resumable prefix and stop_reason deadline-expired.
  {
    json::ObjectWriter W;
    W.field("cmd", "submit")
        .field("source", ClassifierSource)
        .field("entry", "classify")
        .field("seed", static_cast<uint64_t>(5))
        .field("n_start", 5000u)
        .field("threads", 2u)
        .field("stop_when_saturated", false)
        .field("deadline_seconds", 0.02);
    SMOKE_CHECK(Client.call(W.str(), R) && R.boolean("ok"),
                "submit deadline-bounded job");
    uint64_t JobD = R.u64("job");
    SMOKE_CHECK(Client.call("{\"cmd\":\"wait\",\"job\":" +
                                std::to_string(JobD) + "}",
                            R) &&
                    R.str("state") == "suspended",
                "deadline expiry suspends the job");
    SMOKE_CHECK(R.str("stop_reason") == "deadline-expired",
                "stop reason is deadline-expired");
    SMOKE_CHECK(R.u64("rounds") >= 1 && R.u64("rounds") < 5000,
                "deadline left a partial committed prefix");
    SMOKE_CHECK(Client.call("{\"cmd\":\"cancel\",\"job\":" +
                                std::to_string(JobD) + "}",
                            R) &&
                    R.boolean("ok"),
                "retire deadline job");
  }

  // Cancellation: a long job stops at a round boundary, keeping its prefix.
  SMOKE_CHECK(Client.call(campaignRequest("submit", ClassifierSource,
                                          "classify", /*Seed=*/11,
                                          /*NStart=*/5000, /*Threads=*/2,
                                          /*SuspendAfter=*/0),
                          R) &&
                  R.boolean("ok"),
              "submit long job");
  uint64_t JobLong = R.u64("job");
  // Bounded wait on a job that cannot finish: the reply must come back
  // promptly with timed_out=true and the live (non-terminal) status.
  SMOKE_CHECK(Client.call("{\"cmd\":\"wait\",\"job\":" +
                              std::to_string(JobLong) + ",\"timeout_ms\":50}",
                          R) &&
                  R.boolean("ok"),
              "wait with timeout replies");
  SMOKE_CHECK(R.boolean("timed_out"), "bounded wait on a running job times out");
  SMOKE_CHECK(R.str("state") != "done", "timed-out wait reports a live state");
  SMOKE_CHECK(Client.call("{\"cmd\":\"cancel\",\"job\":" +
                              std::to_string(JobLong) + "}",
                          R) &&
                  R.boolean("ok"),
              "cancel long job");
  SMOKE_CHECK(Client.call("{\"cmd\":\"wait\",\"job\":" +
                              std::to_string(JobLong) + "}",
                          R) &&
                  R.str("state") == "cancelled",
              "long job lands in cancelled");

  // Cache counters: one unit compiled once, reused by every A-submission.
  SMOKE_CHECK(Client.call("{\"cmd\":\"stats\"}", R) && R.boolean("ok"),
              "stats");
  SMOKE_CHECK(R.u64("cache_units") == 2, "two distinct units cached");
  SMOKE_CHECK(R.u64("cache_hits") >= 3, "repeat submissions hit the cache");
  std::printf("{\"smoke\":\"protocol\",\"cache_hits\":%llu,"
              "\"cache_misses\":%llu,\"digest\":%llu}\n",
              static_cast<unsigned long long>(R.u64("cache_hits")),
              static_cast<unsigned long long>(R.u64("cache_misses")),
              static_cast<unsigned long long>(ReferenceDigest));

  // Hardening: a request bigger than the line cap gets a structured error
  // and the connection survives for the next request.
  {
    std::string Huge = "{\"cmd\":\"submit\",\"source\":\"";
    Huge.append((8u << 20) + 4096, 'x');
    Huge += "\"}";
    SMOKE_CHECK(Client.call(Huge, R) && !R.boolean("ok", true),
                "oversized request is refused");
    SMOKE_CHECK(R.str("error") == "request too large",
                "oversized request gets the structured error");
    SMOKE_CHECK(Client.call("{\"cmd\":\"stats\"}", R) && R.boolean("ok"),
                "connection survives an oversized request");
  }

  SMOKE_CHECK(Client.call("{\"cmd\":\"shutdown\"}", R) && R.boolean("ok"),
              "shutdown");
  ServerThread.join();

  // Part 3: the crash drill — SIGKILL a daemon mid-campaign, restart it on
  // the same state directory, and gate on digest equality.
  if (int Rc = runCrashDrill())
    return Rc;

  std::printf("SMOKE PASS\n");
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  std::string SocketPath;
  std::string StateDir;
  unsigned Workers = 1;
  unsigned CheckpointEvery = 0;
  bool Smoke = false;
  const char *Usage = "usage: %s --socket PATH [--workers N] "
                      "[--state-dir DIR] [--checkpoint-every N] | --smoke\n";
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--smoke") == 0) {
      Smoke = true;
    } else if (std::strncmp(argv[I], "--socket=", 9) == 0) {
      SocketPath = argv[I] + 9;
    } else if (std::strcmp(argv[I], "--socket") == 0 && I + 1 < argc) {
      SocketPath = argv[++I];
    } else if (std::strncmp(argv[I], "--workers=", 10) == 0) {
      Workers = static_cast<unsigned>(std::atoi(argv[I] + 10));
    } else if (std::strncmp(argv[I], "--state-dir=", 12) == 0) {
      StateDir = argv[I] + 12;
    } else if (std::strcmp(argv[I], "--state-dir") == 0 && I + 1 < argc) {
      StateDir = argv[++I];
    } else if (std::strncmp(argv[I], "--checkpoint-every=", 19) == 0) {
      CheckpointEvery = static_cast<unsigned>(std::atoi(argv[I] + 19));
    } else {
      std::fprintf(stderr, Usage, argv[0]);
      return 2;
    }
  }
  if (Smoke)
    return runSmoke();
  if (SocketPath.empty()) {
    std::fprintf(stderr, Usage, argv[0]);
    return 2;
  }
  Server Srv(SocketPath, Workers, StateDir, CheckpointEvery);
  if (!Srv.listen()) {
    std::fprintf(stderr, "cannot listen on %s\n", SocketPath.c_str());
    return 1;
  }
  // Recover before accepting clients: a `jobs` request arriving right
  // after startup must already see the resubmitted campaigns.
  Srv.recover();
  std::printf("coverme_serve listening on %s (%u worker%s)\n",
              SocketPath.c_str(), Workers ? Workers : 0,
              Workers == 1 ? "" : "s");
  Srv.run();
  return 0;
}
