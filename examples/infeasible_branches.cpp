//===- infeasible_branches.cpp - The Sect. 5.3 infeasibility heuristic ------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// Reproduces the modified-FOO example of Sect. 5.3 ("Handling Infeasible
// Branches"):
//
//   l0: if (x <= 1) { x++; }
//       y = square(x);
//   l1: if (y == -1) { ... }       // 1T is infeasible: y = x*x >= 0
//
// Once 1F is saturated, FOO_R evaluates to (y+1)^2 or (y+1)^2 + 1, so
// every minimum is strictly positive and its path ends in 1F; CoverMe then
// deems 1T infeasible and treats it as saturated, letting the campaign
// terminate instead of hunting an unreachable branch forever. The example
// also runs k_cos.c, whose ((int)x == 0) branch is the real-world instance
// the paper dissects in Sect. D (Fig. 7).
//
//===----------------------------------------------------------------------===//

#include "core/CoverMe.h"
#include "fdlibm/Fdlibm.h"
#include "runtime/Hooks.h"

#include <cstdio>

using namespace coverme;

namespace {

double square(double V) { return V * V; }

double fooBody(const double *Args) {
  double X = Args[0];
  if (CVM_LE(0, X, 1.0)) // l0
    X = X + 1.0;
  double Y = square(X);
  if (CVM_EQ(1, Y, -1.0)) // l1: infeasible true arm
    return 1.0;
  return 0.0;
}

void report(const char *Name, const CampaignResult &Res,
            unsigned TotalBranches) {
  std::printf("%s:\n", Name);
  std::printf("  covered %u/%u branches (%.1f%%), all saturated: %s\n",
              Res.CoveredBranches, TotalBranches, 100.0 * Res.BranchCoverage,
              Res.AllSaturated ? "yes" : "no");
  for (BranchRef Ref : Res.InfeasibleMarked)
    std::printf("  deemed infeasible: site %u, %s arm\n", Ref.Site,
                Ref.Outcome ? "true" : "false");
  std::printf("  rounds: %u, |X| = %zu\n\n", Res.StartsUsed,
              Res.Inputs.size());
}

} // namespace

int main() {
  std::printf("CoverMe's infeasible-branch heuristic (Sect. 5.3)\n\n");

  Program Foo;
  Foo.Name = "FOO_modified";
  Foo.File = "sect5_3.c";
  Foo.Arity = 1;
  Foo.NumSites = 2;
  Foo.TotalLines = 6;
  Foo.Body = fooBody;

  CoverMeOptions Opts;
  Opts.NStart = 80;
  Opts.Seed = 6;
  CampaignResult FooRes = CoverMe(Foo, Opts).run();
  report("FOO_modified (y == -1 never holds)", FooRes, Foo.numBranches());

  const Program *KCos = fdlibm::lookup("kernel_cos");
  CoverMeOptions KOpts;
  KOpts.NStart = 300;
  KOpts.Seed = 1;
  CampaignResult KRes = CoverMe(*KCos, KOpts).run();
  report("k_cos.c (Fig. 7: (int)x == 0 under |x| < 2**-27)", KRes,
         KCos->numBranches());

  std::printf("paper: k_cos.c caps at 87.5%% branch coverage — the 7/8 "
              "optimum.\n");
  bool Ok = FooRes.AllSaturated && KRes.BranchCoverage == 7.0 / 8.0;
  return Ok ? 0 : 1;
}
