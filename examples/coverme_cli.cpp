//===- coverme_cli.cpp - Command-line driver over the benchmark registry ----===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// A small CLI wrapping the whole pipeline, in the spirit of the original
// tool's `coverme foo.c` workflow:
//
//   coverme_cli list
//   coverme_cli run <function> [--n-start N] [--n-iter N] [--seed S]
//                   [--lm powell|nelder-mead|coordinate-descent|none]
//                   [--backend basinhopping|simulated-annealing|
//                              random-restart|cma-es|differential-evolution]
//                   [--reduce] [--csv]
//   coverme_cli run-source <file.c> <entry> [same options]
//
// `run` resolves <function> against the compiled registries first and the
// embedded Fdlibm source suite second (those execute via the mini-C
// interpreter); `run-source` compiles an arbitrary C file through the
// frontend and campaigns over it — the original tool's `coverme foo.c`.
//
// `run` prints the campaign summary and the generated test inputs (as hex
// bit patterns so they replay exactly); `--reduce` post-processes X with
// the greedy suite reduction; `--csv` emits machine-readable inputs.
//
//===----------------------------------------------------------------------===//

#include "core/CoverMe.h"
#include "fdlibm/Fdlibm.h"
#include "lang/SourceProgram.h"
#include "lang/SourceSuite.h"
#include "support/FloatBits.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace coverme;

namespace {

/// Keeps a compiled-from-source program (and its interpreter) alive for
/// the rest of the process once the CLI resolves a name to it.
const Program *holdSourceProgram(lang::SourceProgram SP) {
  static std::vector<lang::SourceProgram> Held;
  Held.push_back(std::move(SP));
  return &Held.back().Prog;
}

const Program *findProgram(const std::string &Name) {
  if (const Program *P = fdlibm::lookup(Name))
    return P;
  if (const Program *P = fdlibm::extendedRegistry().lookup(Name))
    return P;
  if (const lang::SourceBenchmark *B = lang::findSourceBenchmark(Name)) {
    lang::SourceProgram SP = lang::compileSourceBenchmark(*B);
    if (SP.success())
      return holdSourceProgram(std::move(SP));
  }
  return nullptr;
}

const Program *loadSourceFile(const std::string &Path,
                              const std::string &Entry) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot read '%s'\n", Path.c_str());
    return nullptr;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  lang::SourceProgram SP =
      lang::compileSourceProgram(Buffer.str(), Entry);
  if (!SP.success()) {
    std::fprintf(stderr, "frontend errors:\n%s\n",
                 SP.diagnosticsText().c_str());
    return nullptr;
  }
  return holdSourceProgram(std::move(SP));
}

int listCommand() {
  std::printf("%-20s %-16s %-6s %-9s\n", "function", "file", "arity",
              "#branches");
  for (const Program &P : fdlibm::registry().programs())
    std::printf("%-20s %-16s %-6u %-9u\n", P.Name.c_str(), P.File.c_str(),
                P.Arity, P.numBranches());
  std::printf("-- extended suite (lowered int parameters) --\n");
  for (const Program &P : fdlibm::extendedRegistry().programs())
    std::printf("%-20s %-16s %-6u %-9u\n", P.Name.c_str(), P.File.c_str(),
                P.Arity, P.numBranches());
  std::printf("-- source suite (runs via the mini-C interpreter) --\n");
  for (const lang::SourceBenchmark &B : lang::sourceSuite())
    std::printf("%-20s %-16s\n", B.Name.c_str(), B.File.c_str());
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: coverme_cli list\n"
               "       coverme_cli run <function> [--n-start N] [--n-iter N]"
               " [--seed S]\n"
               "                   [--lm NAME] [--backend NAME] [--reduce]"
               " [--csv]\n"
               "       coverme_cli run-source <file.c> <entry>"
               " [same options]\n");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  std::string Command = Argv[1];
  if (Command == "list")
    return listCommand();

  const Program *P = nullptr;
  int OptionsFrom = 0;
  if (Command == "run" && Argc >= 3) {
    P = findProgram(Argv[2]);
    if (!P) {
      std::fprintf(stderr, "error: unknown function '%s'; try 'list'\n",
                   Argv[2]);
      return 1;
    }
    OptionsFrom = 3;
  } else if (Command == "run-source" && Argc >= 4) {
    P = loadSourceFile(Argv[2], Argv[3]);
    if (!P)
      return 1;
    OptionsFrom = 4;
  } else {
    return usage();
  }

  CoverMeOptions Opts;
  bool Reduce = false, Csv = false;
  for (int I = OptionsFrom; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto NextValue = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Arg.c_str());
        std::exit(2);
      }
      return Argv[++I];
    };
    if (Arg == "--n-start") {
      Opts.NStart = static_cast<unsigned>(std::atoi(NextValue()));
    } else if (Arg == "--n-iter") {
      Opts.NIter = static_cast<unsigned>(std::atoi(NextValue()));
    } else if (Arg == "--seed") {
      Opts.Seed = static_cast<uint64_t>(std::atoll(NextValue()));
    } else if (Arg == "--lm") {
      std::string Name = NextValue();
      if (Name == "powell")
        Opts.LM = LocalMinimizerKind::Powell;
      else if (Name == "nelder-mead")
        Opts.LM = LocalMinimizerKind::NelderMead;
      else if (Name == "coordinate-descent")
        Opts.LM = LocalMinimizerKind::CoordinateDescent;
      else if (Name == "none")
        Opts.LM = LocalMinimizerKind::None;
      else {
        std::fprintf(stderr, "error: unknown local minimizer '%s'\n",
                     Name.c_str());
        return 2;
      }
    } else if (Arg == "--backend") {
      std::string Name = NextValue();
      if (Name == "basinhopping")
        Opts.Backend = GlobalBackendKind::Basinhopping;
      else if (Name == "simulated-annealing")
        Opts.Backend = GlobalBackendKind::SimulatedAnnealing;
      else if (Name == "random-restart")
        Opts.Backend = GlobalBackendKind::RandomRestart;
      else if (Name == "cma-es")
        Opts.Backend = GlobalBackendKind::CmaEs;
      else if (Name == "differential-evolution")
        Opts.Backend = GlobalBackendKind::DifferentialEvolution;
      else {
        std::fprintf(stderr, "error: unknown backend '%s'\n", Name.c_str());
        return 2;
      }
    } else if (Arg == "--reduce") {
      Reduce = true;
    } else if (Arg == "--csv") {
      Csv = true;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return usage();
    }
  }

  CoverMe Engine(*P, Opts);
  CampaignResult Res = Engine.run();

  std::vector<size_t> Kept;
  if (Reduce) {
    Kept = reduceSuite(*P, Res.Inputs);
  } else {
    Kept.resize(Res.Inputs.size());
    for (size_t I = 0; I < Kept.size(); ++I)
      Kept[I] = I;
  }

  if (!Csv) {
    std::printf("function:         %s (%s)\n", P->Name.c_str(),
                P->File.c_str());
    std::printf("backend:          %s + %s\n",
                globalBackendKindName(Opts.Backend),
                localMinimizerKindName(Opts.LM));
    std::printf("branch coverage:  %.1f%% (%u/%u)%s\n",
                100.0 * Res.BranchCoverage, Res.CoveredBranches,
                Res.TotalBranches, Res.AllSaturated ? ", all saturated" : "");
    std::printf("line coverage:    %.1f%%\n", 100.0 * Res.LineCoverage);
    std::printf("evaluations:      %llu in %u rounds, %.3fs\n",
                static_cast<unsigned long long>(Res.Evaluations),
                Res.StartsUsed, Res.Seconds);
    for (BranchRef Ref : Res.InfeasibleMarked)
      std::printf("deemed infeasible: site %u %s arm\n", Ref.Site,
                  Ref.Outcome ? "true" : "false");
    if (Reduce)
      std::printf("test inputs (%zu, reduced from %zu):\n", Kept.size(),
                  Res.Inputs.size());
    else
      std::printf("test inputs (%zu):\n", Kept.size());
  }

  for (size_t Idx : Kept) {
    const std::vector<double> &X = Res.Inputs[Idx];
    for (size_t C = 0; C < X.size(); ++C)
      std::printf(C + 1 == X.size() ? "0x%016llx" : "0x%016llx,",
                  static_cast<unsigned long long>(doubleToBits(X[C])));
    if (!Csv) {
      std::printf("  (");
      for (size_t C = 0; C < X.size(); ++C)
        std::printf(C + 1 == X.size() ? "%.17g" : "%.17g, ", X[C]);
      std::printf(")");
    }
    std::printf("\n");
  }
  return Res.AllSaturated ? 0 : 1;
}
