//===- parallel_sweep.cpp - Sharded multi-program campaign sweep ------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// Demonstrates the two parallelism levels introduced with the campaign
// engine refactor:
//
//  * CampaignRunner shards whole *subjects* (here: the Fdlibm registry)
//    across a support/ThreadPool — the Table-2 sweep shape. Every subject
//    is seeded independently, so results are identical for any thread
//    count; threads only change wall time.
//  * Within one subject, CoverMeOptions::Threads runs the *rounds* of
//    Algorithm 1 on several workers with deterministic speculation (see
//    core/CampaignEngine.h). This example leaves it at 1, the right choice
//    when sharding many subjects.
//
// To show the invariance rather than assert it, the sweep runs twice —
// sequentially and on all cores — and diffs the per-subject results.
//
// Usage: parallel_sweep [n_start] [seed] [threads (0 = all cores)]
//
//===----------------------------------------------------------------------===//

#include "core/CampaignRunner.h"
#include "fdlibm/Fdlibm.h"
#include "support/FloatBits.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>

using namespace coverme;

namespace {

/// Bit-level equality over generated suites: accepted inputs routinely
/// contain NaNs (the wide sampler draws from a specials table), so
/// operator== would report spurious mismatches.
bool sameInputs(const std::vector<std::vector<double>> &A,
                const std::vector<std::vector<double>> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I) {
    if (A[I].size() != B[I].size())
      return false;
    for (size_t J = 0; J < A[I].size(); ++J)
      if (doubleToBits(A[I][J]) != doubleToBits(B[I][J]))
        return false;
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  CampaignRunnerOptions Opts;
  Opts.Campaign.NStart = Argc > 1 ? static_cast<unsigned>(std::atoi(Argv[1]))
                                  : 200;
  Opts.Campaign.Seed = Argc > 2 ? static_cast<uint64_t>(std::atoll(Argv[2])) : 1;
  Opts.Threads = Argc > 3 ? static_cast<unsigned>(std::atoi(Argv[3])) : 0;

  const ProgramRegistry &Reg = fdlibm::registry();

  // Pass 1: the sequential reference.
  CampaignRunnerOptions SeqOpts = Opts;
  SeqOpts.Threads = 1;
  WallTimer SeqTimer;
  std::vector<CampaignResult> Seq = CampaignRunner(SeqOpts).run(Reg);
  double SeqWall = SeqTimer.seconds();

  // Pass 2: the same sweep sharded across the pool.
  CampaignRunner Runner(Opts);
  WallTimer ParTimer;
  std::vector<CampaignResult> Par = Runner.run(
      Reg, [&](size_t I, const Program &P, const CampaignResult &R) {
        std::fprintf(stderr, "[%2zu/%zu] %-12s %5.1f%%\n", I + 1, Reg.size(),
                     P.Name.c_str(), 100.0 * R.BranchCoverage);
      });
  double ParWall = ParTimer.seconds();

  Table Report({"function", "#branches", "coverage%", "|X|", "evals",
                "identical?"});
  size_t Mismatches = 0;
  double CoverageSum = 0.0;
  for (size_t I = 0; I < Reg.size(); ++I) {
    const Program &P = Reg.programs()[I];
    const CampaignResult &A = Seq[I], &B = Par[I];
    bool Same = sameInputs(A.Inputs, B.Inputs) &&
                A.Evaluations == B.Evaluations &&
                A.BranchCoverage == B.BranchCoverage;
    Mismatches += !Same;
    CoverageSum += B.BranchCoverage;
    Report.addRow({P.Name, Table::cell(static_cast<int>(P.numBranches())),
                   Table::percentCell(B.BranchCoverage),
                   Table::cell(B.Inputs.size()),
                   Table::cell(static_cast<int>(B.Evaluations)),
                   Same ? "yes" : "NO"});
  }

  std::fputs(Report.toAscii().c_str(), stdout);
  std::printf("\nmean coverage %.1f%% over %zu subjects\n"
              "sequential sweep: %.1fs   sharded sweep (%u threads): %.1fs "
              "(%.1fx)\n",
              100.0 * CoverageSum / static_cast<double>(Reg.size()), Reg.size(),
              SeqWall, Runner.threads(), ParWall,
              ParWall > 0 ? SeqWall / ParWall : 0.0);
  if (Mismatches) {
    std::printf("DETERMINISM VIOLATION: %zu subjects differ between thread "
                "counts\n",
                Mismatches);
    return 1;
  }
  std::printf("all %zu per-subject results bit-identical across thread "
              "counts\n",
              Reg.size());
  return 0;
}
