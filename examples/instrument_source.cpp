//===- instrument_source.cpp - The static frontend on real Fdlibm source ----===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// Demonstrates Step 1 of Algorithm 1 as a source-to-source transformation:
// the mini-C instrumenter rewrites Sun's s_tanh.c (the paper's Fig. 1
// program) so every conditional reports its branch distance through the
// cvm_cond hook. The output compiles as C against runtime/CHooks.h and
// then behaves as the instrumented program FOO_I.
//
//===----------------------------------------------------------------------===//

#include "instrument/Instrumenter.h"

#include <cstdio>

using namespace coverme;
using namespace coverme::instrument;

namespace {

/// s_tanh.c from Fdlibm 5.3 (abridged header, same code).
const char *TanhSource = R"(
/* @(#)s_tanh.c 1.3 95/01/18 -- Fdlibm 5.3, Sun Microsystems */
static const double one = 1.0, two = 2.0, tiny = 1.0e-300;

double tanh(double x)
{
    double t, z;
    int jx, ix;

    /* High word of |x|. */
    jx = *(1 + (int *)&x);
    ix = jx & 0x7fffffff;

    /* x is INF or NaN */
    if (ix >= 0x7ff00000) {
        if (jx >= 0)
            return one / x + one;  /* tanh(+-inf)=+-1 */
        else
            return one / x - one;  /* tanh(NaN) = NaN */
    }

    /* |x| < 22 */
    if (ix < 0x40360000) {          /* |x| < 22 */
        if (ix < 0x3c800000)        /* |x| < 2**-55 */
            return x * (one + x);   /* tanh(small) = small */
        if (ix >= 0x3ff00000) {     /* |x| >= 1  */
            t = expm1(two * fabs(x));
            z = one - two / (t + two);
        } else {
            t = expm1(-two * fabs(x));
            z = -t / (t + two);
        }
    /* |x| > 22, return +-1 */
    } else {
        z = one - tiny;             /* raised inexact flag */
    }
    return (jx >= 0) ? z : -z;
}
)";

} // namespace

int main() {
  InstrumenterOptions Opts;
  Opts.EntryFunction = "tanh";
  InstrumentResult Res = instrumentSource(TanhSource, Opts);

  std::printf("injected %zu conditional sites (%u conditionals outside the "
              "supported subset were left untouched):\n\n",
              Res.Sites.size(), Res.SkippedConditionals);
  std::printf("%-4s  %-5s  %-9s  %-4s  %-20s %s\n", "site", "line", "stmt",
              "op", "lhs", "rhs");
  for (const SiteInfo &Site : Res.Sites)
    std::printf("%-4u  %-5u  %-9s  %-4s  %-20s %s\n", Site.Id, Site.Line,
                Site.Statement.c_str(), cmpOpSpelling(Site.Op),
                Site.Lhs.c_str(), Site.Rhs.c_str());

  std::printf("\n----- instrumented source (FOO_I) -----\n%s",
              Res.Source.c_str());
  // Five if-conditionals are rewritten; the trailing ternary operator is
  // outside the statement-level subset (Gcov counts it, the rewriter
  // leaves it be — same net effect as CoverMe ignoring unsupported
  // conditions, Sect. 5.3).
  return Res.Sites.size() == 5 ? 0 : 1;
}
