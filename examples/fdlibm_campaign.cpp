//===- fdlibm_campaign.cpp - CoverMe over the whole Fdlibm suite ------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// Runs a CoverMe campaign on every benchmark in the Fdlibm registry and
// prints a Table-2-style report: branches, achieved branch coverage, the
// paper's reported coverage, inputs generated, and wall time. This is the
// workload the paper's abstract summarizes ("90.8% branch coverage in 6.9
// seconds on average").
//
// Usage: fdlibm_campaign [n_start] [seed]
//
//===----------------------------------------------------------------------===//

#include "core/CoverMe.h"
#include "fdlibm/Fdlibm.h"
#include "support/Table.h"

#include <cstdio>
#include <cstdlib>

using namespace coverme;

int main(int Argc, char **Argv) {
  unsigned NStart = Argc > 1 ? static_cast<unsigned>(std::atoi(Argv[1])) : 500;
  uint64_t Seed = Argc > 2 ? static_cast<uint64_t>(std::atoll(Argv[2])) : 1;

  const ProgramRegistry &Reg = fdlibm::registry();
  const std::vector<fdlibm::PaperRow> &Paper = fdlibm::paperRows();

  Table Report({"function", "#branches", "covered", "coverage%", "paper%",
                "|X|", "time(s)"});
  double CoverageSum = 0.0, TimeSum = 0.0;

  for (size_t I = 0; I < Reg.programs().size(); ++I) {
    const Program &P = Reg.programs()[I];
    CoverMeOptions Opts;
    Opts.NStart = NStart;
    Opts.Seed = Seed;
    CoverMe Engine(P, Opts);
    CampaignResult R = Engine.run();
    CoverageSum += R.BranchCoverage;
    TimeSum += R.Seconds;
    Report.addRow({P.Name, Table::cell(static_cast<int>(P.numBranches())),
                   Table::cell(static_cast<int>(R.CoveredBranches)),
                   Table::percentCell(R.BranchCoverage),
                   Table::cell(Paper[I].CoverMePct),
                   Table::cell(R.Inputs.size()), Table::cell(R.Seconds, 2)});
  }

  std::fputs(Report.toAscii().c_str(), stdout);
  std::printf("\nMEAN coverage: %.1f%% (paper: 90.8%%), total time: %.1fs\n",
              100.0 * CoverageSum / static_cast<double>(Reg.size()), TimeSum);
  return 0;
}
