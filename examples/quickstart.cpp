//===- quickstart.cpp - CoverMe on the paper's running example -------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// The program under test is FOO from Fig. 3 / Table 1 of the paper:
//
//   void FOO(double x) {
//     l0: if (x <= 1) x = x + 1;
//         y = square(x);
//     l1: if (y == 4) { ... }
//   }
//
// CoverMe derives the representing function FOO_R and repeatedly minimizes
// it. Every zero-valued minimum saturates a new branch (Thm. 4.3); four
// branches need at most a handful of minimizations. This example prints a
// Table-1-style log of the campaign.
//
//===----------------------------------------------------------------------===//

#include "core/CoverMe.h"
#include "runtime/Hooks.h"

#include <cstdio>

using namespace coverme;

namespace {

double square(double V) { return V * V; }

/// The instrumented FOO: two conditionals, sites 0 and 1.
double fooBody(const double *Args) {
  double X = Args[0];
  if (CVM_LE(0, X, 1.0)) // l0: if (x <= 1)
    X = X + 1.0;
  double Y = square(X);
  if (CVM_EQ(1, Y, 4.0)) // l1: if (y == 4)
    return 1.0;
  return 0.0;
}

} // namespace

int main() {
  Program Foo;
  Foo.Name = "FOO";
  Foo.File = "fig3.c";
  Foo.Arity = 1;
  Foo.NumSites = 2;
  Foo.TotalLines = 6;
  Foo.Body = fooBody;

  CoverMeOptions Opts;
  Opts.NStart = 50; // Four branches saturate long before 50 starts.
  Opts.Seed = 42;

  std::printf("CoverMe quickstart: testing FOO from Fig. 3 of the paper\n");
  std::printf("goal: saturate branches {0T, 0F, 1T, 1F}\n\n");

  CoverMe Engine(Foo, Opts);
  CampaignResult Result = Engine.run();

  std::printf("%-6s  %-14s  %-9s  %s\n", "round", "min FOO_R", "accepted",
              "saturated arms");
  for (const RoundLog &Round : Result.Rounds)
    std::printf("%-6u  %-14.6g  %-9s  %u/%u\n", Round.Round,
                Round.MinimumValue, Round.Accepted ? "yes" : "no",
                Round.SaturatedArms, Foo.numBranches());

  std::printf("\ngenerated test suite X (%zu inputs):\n", Result.Inputs.size());
  for (const auto &Input : Result.Inputs)
    std::printf("  x = %.17g\n", Input[0]);

  std::printf("\nbranch coverage: %.1f%% (%u/%u)\n",
              Result.BranchCoverage * 100.0, Result.CoveredBranches,
              Result.TotalBranches);
  std::printf("FOO_R evaluations: %llu, wall time: %.3fs\n",
              static_cast<unsigned long long>(Result.Evaluations),
              Result.Seconds);
  return Result.AllSaturated ? 0 : 1;
}
