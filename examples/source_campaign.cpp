//===- source_campaign.cpp - CoverMe end-to-end from C source text ----------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// The whole pipeline of the paper's Fig. 4 in one process and one command:
// parse a C file (or the built-in s_tanh.c from Fig. 1), number its
// conditional sites, wrap the interpreter as the representing function
// FOO_R, and let Algorithm 1 minimize it until every branch is saturated.
// No compiler, no LLVM pass, no shared object — the source text is the
// program under test.
//
// The body executes on the bytecode VM (compile once, run per thread), so
// `--threads=N` shards the campaign's rounds; `--tier=jit` attaches the
// x86-64 template JIT on top of the VM (identical results, faster bodies;
// falls back to the plain VM in a COVERME_JIT=OFF build), and
// `--tier=interp` falls back to the tree-walking interpreter, which
// clamps the engine to one thread.
//
// Usage:
//   source_campaign [flags]              # built-in Fig. 1 tanh demo
//   source_campaign [flags] foo.c entry  # campaign over entry() in foo.c
//   flags: --tier=vm|jit|interp  --threads=N
//          --disasm     print the compiled unit's bytecode (with the
//                       peephole pass's superinstructions) and exit
//          --no-fuse    compile without the superinstruction pass
//          --no-simd    force the VM's batched probe entry onto the
//                       scalar row loop (the wide AVX2 lane otherwise
//                       engages automatically on eligible hosts)
//
//===----------------------------------------------------------------------===//

#include "core/CampaignEngine.h"
#include "core/CoverMe.h"
#include "lang/Disasm.h"
#include "lang/SourceProgram.h"
#include "lang/Vm.h"
#include "runtime/Coverage.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace coverme;

namespace {

/// s_tanh.c from Fdlibm 5.3 (the paper's Fig. 1), as shipped.
const char *TanhSource = R"(
/* @(#)s_tanh.c 1.3 95/01/18 -- Fdlibm 5.3, Sun Microsystems */
static const double one = 1.0, two = 2.0, tiny = 1.0e-300;

double tanh(double x)
{
    double t, z;
    int jx, ix;

    /* High word of |x|. */
    jx = *(1 + (int *)&x);
    ix = jx & 0x7fffffff;

    /* x is INF or NaN */
    if (ix >= 0x7ff00000) {
        if (jx >= 0)
            return one / x + one;   /* tanh(+-inf)=+-1 */
        else
            return one / x - one;   /* tanh(NaN) = NaN */
    }

    if (ix < 0x40360000) {          /* |x| < 22 */
        if (ix < 0x3c800000)        /* |x| < 2**-55 */
            return x * (one + x);   /* tanh(small) = small */
        if (ix >= 0x3ff00000) {     /* |x| >= 1 */
            t = expm1(two * fabs(x));
            z = one - two / (t + two);
        } else {
            t = expm1(-two * fabs(x));
            z = -t / (t + two);
        }
    } else {                        /* |x| > 22: saturated */
        z = one - tiny;             /* raised inexact flag */
    }
    if (jx >= 0) return z;
    else return -z;
}
)";

bool readFile(const char *Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

} // namespace

int main(int argc, char **argv) {
  lang::SourceProgramOptions SPOpts;
  unsigned Threads = 1;
  bool Disasm = false;
  std::vector<const char *> Positional;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--tier=vm") == 0) {
      SPOpts.Tier = lang::ExecutionTier::Bytecode;
    } else if (std::strcmp(argv[I], "--tier=jit") == 0) {
      SPOpts.Tier = lang::ExecutionTier::Jit;
    } else if (std::strcmp(argv[I], "--tier=interp") == 0) {
      SPOpts.Tier = lang::ExecutionTier::TreeWalker;
    } else if (std::strcmp(argv[I], "--disasm") == 0) {
      Disasm = true;
    } else if (std::strcmp(argv[I], "--no-fuse") == 0) {
      SPOpts.Fuse = false;
    } else if (std::strcmp(argv[I], "--no-simd") == 0) {
      SPOpts.Interp.Simd = lang::VmSimd::Off;
    } else if (std::strncmp(argv[I], "--threads=", 10) == 0) {
      Threads = static_cast<unsigned>(std::atoi(argv[I] + 10));
    } else if (std::strncmp(argv[I], "--", 2) == 0) {
      std::fprintf(stderr,
                   "usage: %s [--tier=vm|jit|interp] [--threads=N] [--disasm] "
                   "[--no-fuse] [--no-simd] [foo.c entry]\n",
                   argv[0]);
      return 2;
    } else {
      Positional.push_back(argv[I]);
    }
  }

  std::string Source;
  std::string Entry;
  if (Positional.size() >= 2) {
    if (!readFile(Positional[0], Source)) {
      std::fprintf(stderr, "error: cannot read '%s'\n", Positional[0]);
      return 1;
    }
    Entry = Positional[1];
    std::printf("== CoverMe from source: %s, entry %s ==\n\n", Positional[0],
                Entry.c_str());
  } else {
    Source = TanhSource;
    Entry = "tanh";
    std::printf("== CoverMe from source: built-in s_tanh.c (paper Fig. 1), "
                "entry tanh ==\n\n");
  }

  lang::SourceProgram SP = lang::compileSourceProgram(Source, Entry, SPOpts);
  if (!SP.success()) {
    std::fprintf(stderr, "frontend errors:\n%s\n",
                 SP.diagnosticsText().c_str());
    return 1;
  }

  if (Disasm) {
    if (!SP.Code) {
      std::fprintf(stderr,
                   "--disasm requires the bytecode tier (drop --tier=interp)\n");
      return 2;
    }
    std::fputs(lang::bc::disassemble(*SP.Code).c_str(), stdout);
    return 0;
  }

  std::printf("frontend: %u conditional sites -> %u branches, arity %u\n",
              SP.Prog.NumSites, SP.Prog.numBranches(), SP.Prog.Arity);

  CoverMeOptions Opts;
  Opts.NStart = 500;
  Opts.NIter = 5;
  Opts.Seed = 1;
  Opts.Threads = Threads;
  // The batch backend the compiled entry will actually use, resolved on a
  // probe Vm configured exactly like the engine's: "jit-wide" (4-lane
  // native fragments) when the JIT tier is attached and the host has
  // AVX2, "vm-wide" (interpreted SIMD lane) without the JIT, "scalar-jit"
  // or "scalar" under --no-simd or on ineligible functions/hosts. The
  // probe must carry SP.Jit: the fragment chain is per-Vm state, and a
  // bare Vm would under-report a --tier=jit run as "vm-wide".
  const char *BatchBackend = "n/a";
  if (SP.Code) {
    lang::bc::Vm Probe(SP.Code, SPOpts.Interp);
    if (SP.Jit)
      Probe.attachJit(SP.Jit);
    int FnIndex = SP.Code->functionIndex(Entry);
    if (FnIndex >= 0)
      BatchBackend = Probe.batchBackendName(static_cast<unsigned>(FnIndex));
  }
  std::printf("executor: %s tier, batch backend %s, %u engine thread(s)%s\n",
              SP.Jit ? "bytecode-VM + x86-64 JIT"
                     : (SP.Prog.ThreadSafeBody ? "bytecode-VM"
                                               : "tree-walker"),
              BatchBackend,
              CampaignEngine(SP.Prog, Opts).effectiveThreads(),
              !SP.Prog.ThreadSafeBody && Threads > 1
                  ? " (non-reentrant body clamps to 1)"
                  : "");
  CampaignResult Res = CoverMe(SP.Prog, Opts).run();

  std::printf("campaign:  %u/%u branches covered (%.1f%%) in %.2fs, "
              "%llu FOO_R evaluations, %u rounds\n",
              Res.CoveredBranches, Res.TotalBranches,
              100.0 * Res.BranchCoverage, Res.Seconds,
              static_cast<unsigned long long>(Res.Evaluations),
              Res.StartsUsed);
  if (!Res.InfeasibleMarked.empty()) {
    std::printf("           %zu arm(s) deemed infeasible:",
                Res.InfeasibleMarked.size());
    for (BranchRef Ref : Res.InfeasibleMarked)
      std::printf(" %u%c", Ref.Site, Ref.Outcome ? 'T' : 'F');
    std::printf("\n");
  }

  std::printf("\ngenerated test suite X (%zu inputs):\n", Res.Inputs.size());
  for (size_t I = 0; I < Res.Inputs.size(); ++I) {
    std::printf("  x%-3zu = (", I);
    for (size_t J = 0; J < Res.Inputs[I].size(); ++J)
      std::printf("%s%.17g", J ? ", " : "", Res.Inputs[I][J]);
    std::printf(")\n");
  }

  std::vector<size_t> Kept = reduceSuite(SP.Prog, Res.Inputs);
  std::printf("\ngreedy reduction keeps %zu of %zu inputs with identical "
              "coverage\n",
              Kept.size(), Res.Inputs.size());

  std::printf("\nper-site arm coverage:\n");
  for (unsigned Site = 0; Site < SP.Prog.NumSites; ++Site) {
    bool T = Res.Coverage.isCovered({Site, true});
    bool F = Res.Coverage.isCovered({Site, false});
    std::printf("  l%-2u  true:%s  false:%s\n", Site, T ? "hit " : "MISS",
                F ? "hit " : "MISS");
  }
  return 0;
}
