//===- ast_dump.cpp - Inspect what the frontend sees ------------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// Dumps the analyzed syntax tree of a C file (or of an embedded source-
// suite benchmark) — every node with its computed type, and every
// conditional with the site id the runtime hooks will report. This is the
// fastest way to answer "which of my conditions will CoverMe instrument,
// and in what order?" before launching a campaign.
//
// Usage:
//   ast_dump tanh            # an embedded source-suite benchmark by name
//   ast_dump path/to/foo.c   # any C file in the supported subset
//
//===----------------------------------------------------------------------===//

#include "lang/AstPrinter.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "lang/SourceSuite.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using namespace coverme;
using namespace coverme::lang;

int main(int Argc, char **Argv) {
  if (Argc != 2) {
    std::fprintf(stderr, "usage: ast_dump <benchmark-name | file.c>\n");
    return 2;
  }

  std::string Source;
  if (const SourceBenchmark *B = findSourceBenchmark(Argv[1])) {
    Source = B->Source;
    std::printf("== %s (embedded %s) ==\n", B->Name.c_str(),
                B->File.c_str());
  } else {
    std::ifstream In(Argv[1]);
    if (!In) {
      std::fprintf(stderr,
                   "error: '%s' is neither an embedded benchmark nor a "
                   "readable file\n",
                   Argv[1]);
      return 1;
    }
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    Source = Buffer.str();
    std::printf("== %s ==\n", Argv[1]);
  }

  ParseResult Parsed = parseTranslationUnit(Source);
  if (!Parsed.success()) {
    for (const Diagnostic &D : Parsed.Diags)
      std::fprintf(stderr, "%s\n", formatDiagnostic(D).c_str());
    return 1;
  }
  std::vector<Diagnostic> Diags;
  if (!analyze(*Parsed.TU, Diags)) {
    for (const Diagnostic &D : Diags)
      std::fprintf(stderr, "%s\n", formatDiagnostic(D).c_str());
    return 1;
  }

  std::fputs(dumpAst(*Parsed.TU).c_str(), stdout);
  return 0;
}
