//===- bench_fig5.cpp - Figure 5: per-benchmark coverage series -------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// Regenerates Figure 5, the bar chart over Table 2's data: one branch-
// coverage series per tool across the 40 benchmarks. Output is both a CSV
// block (x = benchmark, series = Rand/AFL/CoverMe) ready for re-plotting
// and an ASCII bar rendering.
//
// Usage: bench_fig5 [n_start] [seed]
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "fdlibm/Fdlibm.h"
#include "support/Table.h"

#include <cstdio>
#include <string>

using namespace coverme;
using namespace coverme::bench;

static std::string bar(double Percent) {
  std::string Out(static_cast<size_t>(Percent / 2.5), '#');
  return Out;
}

int main(int Argc, char **Argv) {
  Protocol Proto = protocolFromArgs(Argc, Argv);
  Proto.RunAustin = false;

  const ProgramRegistry &Reg = fdlibm::registry();

  std::printf("Figure 5: branch coverage per benchmark (series data)\n\n");
  Table Csv({"benchmark", "rand", "afl", "coverme"});
  std::vector<RowResult> Rows;
  for (const Program &P : Reg.programs()) {
    Rows.push_back(runRow(P, Proto));
    const RowResult &Row = Rows.back();
    Csv.addRow({P.Name, Table::cell(100.0 * Row.Rand.BranchCoverage),
                Table::cell(100.0 * Row.Afl.BranchCoverage),
                Table::cell(100.0 * Row.CoverMe.BranchCoverage)});
  }
  std::fputs(Csv.toCsv().c_str(), stdout);

  std::printf("\nASCII rendering (R=Rand, A=AFL, C=CoverMe; 40 cols = "
              "100%%)\n\n");
  for (const RowResult &Row : Rows) {
    std::printf("%-18s R %5.1f |%s\n", Row.Prog->Name.c_str(),
                100.0 * Row.Rand.BranchCoverage,
                bar(100.0 * Row.Rand.BranchCoverage).c_str());
    std::printf("%-18s A %5.1f |%s\n", "",
                100.0 * Row.Afl.BranchCoverage,
                bar(100.0 * Row.Afl.BranchCoverage).c_str());
    std::printf("%-18s C %5.1f |%s\n", "",
                100.0 * Row.CoverMe.BranchCoverage,
                bar(100.0 * Row.CoverMe.BranchCoverage).c_str());
  }
  return 0;
}
