//===- bench_table1.cpp - Table 1: the saturation scenario -------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// Regenerates the Table 1 walk-through: CoverMe on the two-conditional FOO
// of Fig. 3, printing per round the saturated-branch set, the shape of
// FOO_R, the minimum point found, and the generated input set X. The run
// must (i) saturate all four branches {0T, 0F, 1T, 1F} and (ii) finish
// with a strictly positive minimum once everything is saturated — the
// FOO_R = lambda x.1 row of the table.
//
//===----------------------------------------------------------------------===//

#include "core/CoverMe.h"
#include "runtime/Hooks.h"
#include "runtime/RepresentingFunction.h"

#include <cstdio>
#include <string>

using namespace coverme;

namespace {

double square(double V) { return V * V; }

double fooBody(const double *Args) {
  double X = Args[0];
  if (CVM_LE(0, X, 1.0)) // l0
    X = X + 1.0;
  double Y = square(X);
  if (CVM_EQ(1, Y, 4.0)) // l1
    return 1.0;
  return 0.0;
}

} // namespace

int main() {
  Program Foo;
  Foo.Name = "FOO";
  Foo.File = "fig3.c";
  Foo.Arity = 1;
  Foo.NumSites = 2;
  Foo.TotalLines = 6;
  Foo.Body = fooBody;

  std::printf("Table 1: saturating FOO (Fig. 3) by repeatedly minimizing "
              "FOO_R\n\n");

  CoverMeOptions Opts;
  Opts.NStart = 40;
  Opts.Seed = 3;
  Opts.StopWhenAllSaturated = false; // Show the lambda x.1 round too.
  Opts.NStart = 40;
  CoverMe Engine(Foo, Opts);
  CampaignResult Res = Engine.run();

  std::printf("%-4s  %-14s  %-9s  %-10s  %s\n", "#", "min FOO_R", "accepted",
              "saturated", "X so far");
  std::string XSet;
  size_t NextInput = 0;
  unsigned Shown = 0;
  for (const RoundLog &Round : Res.Rounds) {
    if (Round.Accepted && NextInput < Res.Inputs.size()) {
      char Buf[40];
      std::snprintf(Buf, sizeof(Buf), "%s%.6g", XSet.empty() ? "" : ", ",
                    Res.Inputs[NextInput++][0]);
      XSet += Buf;
    }
    // Print every accepted round plus the first all-saturated round.
    bool AllSat = Round.SaturatedArms == Foo.numBranches();
    if (Round.Accepted || (AllSat && Shown < Res.Inputs.size() + 1)) {
      std::printf("%-4u  %-14.6g  %-9s  %u/%u       {%s}\n", Round.Round,
                  Round.MinimumValue, Round.Accepted ? "yes" : "no",
                  Round.SaturatedArms, Foo.numBranches(), XSet.c_str());
      ++Shown;
      if (!Round.Accepted && AllSat)
        break; // The lambda x.1 round: FOO_R(x*) > 0 confirms saturation.
    }
  }

  std::printf("\nall branches saturated: %s; final |X| = %zu "
              "(paper scenario: 4 rounds, |X| = 4)\n",
              Res.AllSaturated ? "yes" : "no", Res.Inputs.size());
  return Res.AllSaturated ? 0 : 1;
}
