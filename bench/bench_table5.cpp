//===- bench_table5.cpp - Table 5: line coverage ----------------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// Regenerates Table 5 (appendix C): line coverage of CoverMe, AFL, and
// Rand under the gcov-lite line model (straight-line share plus equal
// per-arm weights; see Program::armLineWeight). Expected shape: line
// coverage tracks branch coverage but saturates earlier — the paper's
// means are Rand 54.2%, AFL 87.0%, CoverMe 97.0%.
//
// Usage: bench_table5 [n_start] [seed]
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "fdlibm/Fdlibm.h"
#include "support/Table.h"

#include <cstdio>

using namespace coverme;
using namespace coverme::bench;

int main(int Argc, char **Argv) {
  Protocol Proto = protocolFromArgs(Argc, Argv);
  Proto.RunAustin = false;

  const ProgramRegistry &Reg = fdlibm::registry();

  std::printf("Table 5: line coverage (%%), CoverMe vs Rand and AFL\n\n");

  Table T({"file", "function", "#lines", "Rand", "AFL", "CoverMe",
           "CM-Rand", "CM-AFL"});
  double SumRand = 0, SumAfl = 0, SumCm = 0;
  size_t N = Reg.programs().size();

  for (size_t I = 0; I < N; ++I) {
    const Program &P = Reg.programs()[I];
    RowResult Row = runRow(P, Proto);
    double Cm = 100.0 * Row.CoverMe.LineCoverage;
    double Rd = 100.0 * Row.Rand.LineCoverage;
    double Af = 100.0 * Row.Afl.LineCoverage;
    SumRand += Rd;
    SumAfl += Af;
    SumCm += Cm;
    T.addRow({P.File, P.Name, Table::cell(static_cast<int>(P.TotalLines)),
              Table::cell(Rd), Table::cell(Af), Table::cell(Cm),
              Table::cell(Cm - Rd), Table::cell(Cm - Af)});
  }
  double DN = static_cast<double>(N);
  T.addRow({"MEAN", "", "", Table::cell(SumRand / DN),
            Table::cell(SumAfl / DN), Table::cell(SumCm / DN),
            Table::cell((SumCm - SumRand) / DN),
            Table::cell((SumCm - SumAfl) / DN)});

  std::fputs(T.toAscii().c_str(), stdout);
  std::printf("\npaper means: Rand 54.2, AFL 87.0, CoverMe 97.0\n");
  return 0;
}
