//===- bench_source_suite.cpp - Table 2 protocol over the source pipeline ---===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// The Table-2 protocol (CoverMe vs Rand vs AFL, baselines on 10x CoverMe's
// executions) run over the ten embedded Fdlibm 5.3 sources, with every
// program executing through the mini-C interpreter instead of a compiled
// port — the paper's own deployment model (Fig. 4: the tool consumes
// source, not hand-instrumented binaries). For the five word-exact
// overlaps the native-port campaign coverage is printed alongside: the
// pipeline swap should not change who wins.
//
// Each row compiles its own SourceProgram (one interpreter per row), so
// whole rows shard safely across the CampaignRunner pool even though an
// interpreted body is not reentrant. `--json[=path]` writes
// BENCH_source_suite.json.
//
// Usage: bench_source_suite [n_start] [seed] [--threads=N] [--json[=path]]
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "fdlibm/Fdlibm.h"
#include "lang/SourceSuite.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <atomic>
#include <cstdio>
#include <memory>

using namespace coverme;
using namespace coverme::bench;
using namespace coverme::lang;

namespace {

/// A sweep row plus the data the source table needs beyond RowResult.
struct SourceRow {
  RowResult Row;
  /// Keeps the interpreted Program (whose body closure owns the
  /// interpreter) alive for Row.Prog and the JSON writer.
  std::shared_ptr<Program> Prog;
  unsigned Branches = 0;
  bool FrontendOk = false;
  std::string NativeText = "-";
};

} // namespace

int main(int Argc, char **Argv) {
  Protocol Proto = protocolFromArgs(Argc, Argv);
  Proto.RunAustin = false;

  CampaignRunner Runner({Proto.Threads, {}});
  Proto.Threads = Runner.threads(); // resolve 0 for the report and the JSON
  std::printf(
      "Source-pipeline suite: CoverMe versus Rand and AFL over interpreted "
      "Fdlibm 5.3 sources\n"
      "protocol: n_start=%u, n_iter=%u, LM=powell, seed=%llu; "
      "Rand/AFL budget = 10x CoverMe evaluations; %u row threads\n\n",
      Proto.NStart, Proto.NIter,
      static_cast<unsigned long long>(Proto.Seed), Runner.threads());

  size_t N = sourceSuite().size();
  WallTimer Sweep;
  std::atomic<size_t> Done{0};
  std::vector<SourceRow> Rows = Runner.map<SourceRow>(N, [&](size_t I) {
    const SourceBenchmark &B = sourceSuite()[I];
    SourceRow Out;
    SourceProgram SP = compileSourceBenchmark(B);
    if (!SP.success()) {
      std::fprintf(stderr, "[%zu] %s frontend failed:\n%s\n", I + 1,
                   B.Name.c_str(), SP.diagnosticsText().c_str());
      return Out;
    }
    Out.FrontendOk = true;
    Out.Branches = SP.Prog.numBranches();
    Out.Prog = std::make_shared<Program>(SP.Prog);
    Out.Row = runRow(*Out.Prog, Proto);

    // Where a word-exact native port exists, run the identical campaign
    // over it so the pipeline effect is visible in one row.
    if (const Program *Port = fdlibm::registry().lookup(B.NativePort)) {
      if (Port->NumSites == SP.Prog.NumSites) {
        CoverMeOptions Opts;
        Opts.NStart = Proto.NStart;
        Opts.NIter = Proto.NIter;
        Opts.Seed = Proto.Seed;
        CampaignResult Native = CoverMe(*Port, Opts).run();
        Out.NativeText = Table::cell(100.0 * Native.BranchCoverage);
      }
    }
    std::fprintf(stderr, "[%2zu/%zu] %s\n", Done.fetch_add(1) + 1, N,
                 B.Name.c_str());
    return Out;
  });
  double Wall = Sweep.seconds();

  Table T({"file", "entry", "#br", "time(s)", "Rand", "AFL", "CoverMe",
           "native CM", "CM-Rand", "CM-AFL"});
  double SumRand = 0, SumAfl = 0, SumCm = 0;
  size_t Ok = 0;
  std::vector<RowResult> JsonRows;
  for (size_t I = 0; I < N; ++I) {
    const SourceBenchmark &B = sourceSuite()[I];
    const SourceRow &S = Rows[I];
    if (!S.FrontendOk)
      continue;
    ++Ok;
    double Cm = 100.0 * S.Row.CoverMe.BranchCoverage;
    double Rd = 100.0 * S.Row.Rand.BranchCoverage;
    double Af = 100.0 * S.Row.Afl.BranchCoverage;
    SumRand += Rd;
    SumAfl += Af;
    SumCm += Cm;
    T.addRow({B.File, B.Name, std::to_string(S.Branches),
              Table::cell(S.Row.CoverMe.Seconds, 2), Table::cell(Rd),
              Table::cell(Af), Table::cell(Cm), S.NativeText,
              Table::cell(Cm - Rd), Table::cell(Cm - Af)});
    JsonRows.push_back(S.Row);
  }

  double DN = Ok ? static_cast<double>(Ok) : 1.0;
  T.addRow({"MEAN", "", "", "", Table::cell(SumRand / DN),
            Table::cell(SumAfl / DN), Table::cell(SumCm / DN), "",
            Table::cell((SumCm - SumRand) / DN),
            Table::cell((SumCm - SumAfl) / DN)});
  std::fputs(T.toAscii().c_str(), stdout);

  std::printf("\nexpected shape: same orderings as the compiled Table 2 — "
              "CoverMe >= Rand everywhere, CoverMe above AFL on the mean; "
              "where the interpreted source and the native port share a "
              "site structure the campaigns agree\n");
  std::printf("sweep wall time: %.1fs on %u threads\n", Wall,
              Runner.threads());
  if (Proto.Json) {
    std::string Path = writeRowsJson(Proto, "source_suite", JsonRows, Wall);
    if (!Path.empty())
      std::printf("wrote %s\n", Path.c_str());
  }
  return 0;
}
