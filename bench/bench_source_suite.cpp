//===- bench_source_suite.cpp - Table 2 protocol over the source pipeline ---===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// The Table-2 protocol (CoverMe vs Rand vs AFL, baselines on 10x CoverMe's
// executions) run over the ten embedded Fdlibm 5.3 sources, with every
// program executing through the mini-C interpreter instead of a compiled
// port — the paper's own deployment model (Fig. 4: the tool consumes
// source, not hand-instrumented binaries). For the five word-exact
// overlaps the native-port campaign coverage is printed alongside: the
// pipeline swap should not change who wins.
//
// Usage: bench_source_suite [n_start] [seed]
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "fdlibm/Fdlibm.h"
#include "lang/SourceSuite.h"
#include "support/Table.h"

#include <cstdio>

using namespace coverme;
using namespace coverme::bench;
using namespace coverme::lang;

int main(int Argc, char **Argv) {
  Protocol Proto = protocolFromArgs(Argc, Argv);
  Proto.RunAustin = false;

  std::printf(
      "Source-pipeline suite: CoverMe versus Rand and AFL over interpreted "
      "Fdlibm 5.3 sources\n"
      "protocol: n_start=%u, n_iter=%u, LM=powell, seed=%llu; "
      "Rand/AFL budget = 10x CoverMe evaluations\n\n",
      Proto.NStart, Proto.NIter,
      static_cast<unsigned long long>(Proto.Seed));

  Table T({"file", "entry", "#br", "time(s)", "Rand", "AFL", "CoverMe",
           "native CM", "CM-Rand", "CM-AFL"});
  double SumRand = 0, SumAfl = 0, SumCm = 0;
  size_t N = sourceSuite().size();

  for (size_t I = 0; I < N; ++I) {
    const SourceBenchmark &B = sourceSuite()[I];
    std::fprintf(stderr, "[%2zu/%zu] %s\n", I + 1, N, B.Name.c_str());
    SourceProgram SP = compileSourceBenchmark(B);
    if (!SP.success()) {
      std::fprintf(stderr, "  frontend failed:\n%s\n",
                   SP.diagnosticsText().c_str());
      continue;
    }
    RowResult Row = runRow(SP.Prog, Proto);
    double Cm = 100.0 * Row.CoverMe.BranchCoverage;
    double Rd = 100.0 * Row.Rand.BranchCoverage;
    double Af = 100.0 * Row.Afl.BranchCoverage;
    SumRand += Rd;
    SumAfl += Af;
    SumCm += Cm;

    // Where a word-exact native port exists, run the identical campaign
    // over it so the pipeline effect is visible in one row.
    std::string NativeText = "-";
    if (const Program *Port = fdlibm::registry().lookup(B.NativePort)) {
      if (Port->NumSites == SP.Prog.NumSites) {
        CoverMeOptions Opts;
        Opts.NStart = Proto.NStart;
        Opts.NIter = Proto.NIter;
        Opts.Seed = Proto.Seed;
        CampaignResult Native = CoverMe(*Port, Opts).run();
        NativeText = Table::cell(100.0 * Native.BranchCoverage);
      }
    }

    T.addRow({B.File, B.Name, std::to_string(SP.Prog.numBranches()),
              Table::cell(Row.CoverMe.Seconds, 2), Table::cell(Rd),
              Table::cell(Af), Table::cell(Cm), NativeText,
              Table::cell(Cm - Rd), Table::cell(Cm - Af)});
  }

  T.addRow({"MEAN", "", "", "", Table::cell(SumRand / N),
            Table::cell(SumAfl / N), Table::cell(SumCm / N), "",
            Table::cell((SumCm - SumRand) / N),
            Table::cell((SumCm - SumAfl) / N)});
  std::fputs(T.toAscii().c_str(), stdout);

  std::printf("\nexpected shape: same orderings as the compiled Table 2 — "
              "CoverMe >= Rand everywhere, CoverMe above AFL on the mean; "
              "where the interpreted source and the native port share a "
              "site structure the campaigns agree\n");
  return 0;
}
