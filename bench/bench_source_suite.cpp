//===- bench_source_suite.cpp - Table 2 protocol over the source pipeline ---===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// The Table-2 protocol (CoverMe vs Rand vs AFL, baselines on 10x CoverMe's
// executions) run over the embedded Fdlibm 5.3 sources, with every program
// executing through the mini-C frontend instead of a compiled port — the
// paper's own deployment model (Fig. 4: the tool consumes source, not
// hand-instrumented binaries). For the word-exact overlaps the native-port
// campaign coverage is printed alongside: the pipeline swap should not
// change who wins.
//
// Campaign bodies run on the bytecode VM by default (`--tier=interp`
// falls back to the tree-walker); each row also measures both tiers'
// plain-evaluation throughput, so the sweep doubles as a per-subject
// VM-vs-interpreter speedup report. Bytecode bodies are reentrant, and
// whole rows additionally shard across the CampaignRunner pool.
// `--json[=path]` writes BENCH_source_suite.json.
//
// Usage: bench_source_suite [n_start] [seed] [--threads=N] [--json[=path]]
//                           [--tier=vm|interp]
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "fdlibm/Fdlibm.h"
#include "lang/SourceSuite.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

using namespace coverme;
using namespace coverme::bench;
using namespace coverme::lang;

namespace {

/// A sweep row plus the data the source table needs beyond RowResult.
struct SourceRow {
  RowResult Row;
  /// Keeps the campaign-tier Program (whose body closure owns its
  /// executor) alive for Row.Prog and the JSON writer.
  std::shared_ptr<Program> Prog;
  unsigned Branches = 0;
  bool FrontendOk = false;
  std::string NativeText = "-";
  double InterpNs = 0.0; ///< Tree-walker plain-eval throughput.
  double VmNs = 0.0;     ///< Bytecode-VM plain-eval throughput.
};

} // namespace

int main(int Argc, char **Argv) {
  // Peel the bench-local --tier flag before the shared protocol parser
  // (which rejects unknown flags) sees the argument list.
  ExecutionTier Tier = ExecutionTier::Bytecode;
  std::vector<char *> Rest;
  Rest.push_back(Argv[0]);
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--tier=vm") == 0) {
      Tier = ExecutionTier::Bytecode;
    } else if (std::strcmp(Argv[I], "--tier=interp") == 0) {
      Tier = ExecutionTier::TreeWalker;
    } else if (std::strncmp(Argv[I], "--tier=", 7) == 0) {
      std::fprintf(stderr, "%s: bad --tier value '%s' (want vm|interp)\n",
                   Argv[0], Argv[I] + 7);
      return 2;
    } else {
      Rest.push_back(Argv[I]);
    }
  }
  Protocol Proto =
      protocolFromArgs(static_cast<int>(Rest.size()), Rest.data());
  Proto.RunAustin = false;

  CampaignRunner Runner({Proto.Threads, {}});
  Proto.Threads = Runner.threads(); // resolve 0 for the report and the JSON
  std::printf(
      "Source-pipeline suite: CoverMe versus Rand and AFL over Fdlibm 5.3 "
      "sources on the %s tier\n"
      "protocol: n_start=%u, n_iter=%u, LM=powell, seed=%llu; "
      "Rand/AFL budget = 10x CoverMe evaluations; %u row threads\n\n",
      Tier == ExecutionTier::Bytecode ? "bytecode-VM" : "tree-walker",
      Proto.NStart, Proto.NIter,
      static_cast<unsigned long long>(Proto.Seed), Runner.threads());

  // Per-row execution-tier throughput, measured sequentially before the
  // sweep so the numbers are not skewed by row-shard contention.
  size_t N = sourceSuite().size();
  std::vector<double> TwNs(N, 0.0), VmNs(N, 0.0);
  for (size_t I = 0; I < N; ++I) {
    const SourceBenchmark &B = sourceSuite()[I];
    SourceProgramOptions VmOpts;
    VmOpts.TotalLines = B.PaperLines;
    SourceProgramOptions TwOpts = VmOpts;
    VmOpts.Tier = ExecutionTier::Bytecode;
    TwOpts.Tier = ExecutionTier::TreeWalker;
    SourceProgram VmSP = compileSourceProgram(B.Source, B.Name, VmOpts);
    SourceProgram TwSP = compileSourceProgram(B.Source, B.Name, TwOpts);
    if (VmSP.success() && TwSP.success()) {
      VmNs[I] = nsPerBodyEval(VmSP.Prog, 20000);
      TwNs[I] = nsPerBodyEval(TwSP.Prog, 5000);
    }
  }

  WallTimer Sweep;
  std::atomic<size_t> Done{0};
  std::vector<SourceRow> Rows = Runner.map<SourceRow>(N, [&](size_t I) {
    const SourceBenchmark &B = sourceSuite()[I];
    SourceRow Out;
    SourceProgramOptions SPOpts;
    SPOpts.TotalLines = B.PaperLines;
    SPOpts.Tier = Tier;
    SourceProgram SP = compileSourceProgram(B.Source, B.Name, SPOpts);
    if (!SP.success()) {
      std::fprintf(stderr, "[%zu] %s frontend failed:\n%s\n", I + 1,
                   B.Name.c_str(), SP.diagnosticsText().c_str());
      return Out;
    }
    SP.Prog.File = B.File;
    Out.FrontendOk = true;
    Out.Branches = SP.Prog.numBranches();
    Out.Prog = std::make_shared<Program>(SP.Prog);
    Out.InterpNs = TwNs[I];
    Out.VmNs = VmNs[I];

    Out.Row = runRow(*Out.Prog, Proto);

    // Where a word-exact native port exists, run the identical campaign
    // over it so the pipeline effect is visible in one row.
    if (const Program *Port = fdlibm::registry().lookup(B.NativePort)) {
      if (Port->NumSites == SP.Prog.NumSites) {
        CoverMeOptions Opts;
        Opts.NStart = Proto.NStart;
        Opts.NIter = Proto.NIter;
        Opts.Seed = Proto.Seed;
        CampaignResult Native = CoverMe(*Port, Opts).run();
        Out.NativeText = Table::cell(100.0 * Native.BranchCoverage);
      }
    }
    std::fprintf(stderr, "[%2zu/%zu] %s\n", Done.fetch_add(1) + 1, N,
                 B.Name.c_str());
    return Out;
  });
  double Wall = Sweep.seconds();

  Table T({"file", "entry", "#br", "time(s)", "Rand", "AFL", "CoverMe",
           "native CM", "CM-Rand", "CM-AFL", "tw ns/ev", "vm ns/ev", "VMx"});
  double SumRand = 0, SumAfl = 0, SumCm = 0, SumSpeedup = 0;
  size_t Ok = 0, SpeedupRows = 0;
  std::vector<RowResult> JsonRows;
  for (size_t I = 0; I < N; ++I) {
    const SourceBenchmark &B = sourceSuite()[I];
    const SourceRow &S = Rows[I];
    if (!S.FrontendOk)
      continue;
    ++Ok;
    double Cm = 100.0 * S.Row.CoverMe.BranchCoverage;
    double Rd = 100.0 * S.Row.Rand.BranchCoverage;
    double Af = 100.0 * S.Row.Afl.BranchCoverage;
    SumRand += Rd;
    SumAfl += Af;
    SumCm += Cm;
    double Speedup = S.VmNs > 0.0 ? S.InterpNs / S.VmNs : 0.0;
    if (Speedup > 0.0) {
      SumSpeedup += Speedup;
      ++SpeedupRows;
    }
    T.addRow({B.File, B.Name, std::to_string(S.Branches),
              Table::cell(S.Row.CoverMe.Seconds, 2), Table::cell(Rd),
              Table::cell(Af), Table::cell(Cm), S.NativeText,
              Table::cell(Cm - Rd), Table::cell(Cm - Af),
              Table::cell(S.InterpNs, 0), Table::cell(S.VmNs, 0),
              Table::cell(Speedup, 2)});
    JsonRows.push_back(S.Row);
  }

  double DN = Ok ? static_cast<double>(Ok) : 1.0;
  double DS = SpeedupRows ? static_cast<double>(SpeedupRows) : 1.0;
  T.addRow({"MEAN", "", "", "", Table::cell(SumRand / DN),
            Table::cell(SumAfl / DN), Table::cell(SumCm / DN), "",
            Table::cell((SumCm - SumRand) / DN),
            Table::cell((SumCm - SumAfl) / DN), "", "",
            Table::cell(SumSpeedup / DS, 2)});
  std::fputs(T.toAscii().c_str(), stdout);

  std::printf("\nexpected shape: same orderings as the compiled Table 2 — "
              "CoverMe >= Rand everywhere, CoverMe above AFL on the mean; "
              "where the source program and the native port share a site "
              "structure the campaigns agree; VMx (tree-walker ns / VM ns) "
              "stays above 2 on every row\n");
  std::printf("sweep wall time: %.1fs on %u threads\n", Wall,
              Runner.threads());
  if (Proto.Json) {
    std::string Path = writeRowsJson(Proto, "source_suite", JsonRows, Wall);
    if (!Path.empty())
      std::printf("wrote %s\n", Path.c_str());
  }
  return 0;
}
