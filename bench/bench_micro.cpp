//===- bench_micro.cpp - Microbenchmarks (google-benchmark) ------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// Engineering microbenchmarks for the hot paths: branch distance, pen,
// representing-function evaluation (instrumented vs. raw execution),
// local minimizers, and the RNG. These bound the per-evaluation cost the
// campaign times in Tables 2/3 are built from.
//
//===----------------------------------------------------------------------===//

#include "core/CoverMe.h"
#include "fdlibm/Fdlibm.h"
#include "optim/NelderMead.h"
#include "optim/Powell.h"
#include "runtime/RepresentingFunction.h"

#include <benchmark/benchmark.h>

using namespace coverme;

static void BM_BranchDistance(benchmark::State &State) {
  double A = 1.25, B = 7.5;
  for (auto _ : State) {
    benchmark::DoNotOptimize(branchDistance(CmpOp::LE, A, B));
    benchmark::DoNotOptimize(branchDistance(CmpOp::EQ, B, A));
    A += 0.5;
  }
}
BENCHMARK(BM_BranchDistance);

static void BM_PenLookup(benchmark::State &State) {
  ExecutionContext Ctx(8);
  Ctx.saturate({3, true});
  for (auto _ : State)
    benchmark::DoNotOptimize(Ctx.pen(3, CmpOp::LT, 1.0, 2.0));
}
BENCHMARK(BM_PenLookup);

static void BM_RepresentingFunction(benchmark::State &State) {
  const Program *P = fdlibm::lookup("tanh");
  ExecutionContext Ctx(P->NumSites);
  RepresentingFunction FR(*P, Ctx);
  std::vector<double> X = {0.75};
  for (auto _ : State) {
    benchmark::DoNotOptimize(FR(X));
    X[0] += 1e-9;
  }
}
BENCHMARK(BM_RepresentingFunction);

static void BM_RawExecution(benchmark::State &State) {
  const Program *P = fdlibm::lookup("tanh");
  std::vector<double> X = {0.75};
  for (auto _ : State) {
    benchmark::DoNotOptimize(P->Body(X.data()));
    X[0] += 1e-9;
  }
}
BENCHMARK(BM_RawExecution);

static void BM_RepresentingFunctionPow(benchmark::State &State) {
  const Program *P = fdlibm::lookup("ieee754_pow");
  ExecutionContext Ctx(P->NumSites);
  RepresentingFunction FR(*P, Ctx);
  std::vector<double> X = {1.5, 2.5};
  for (auto _ : State) {
    benchmark::DoNotOptimize(FR(X));
    X[0] += 1e-9;
  }
}
BENCHMARK(BM_RepresentingFunctionPow);

static void BM_PowellQuadratic(benchmark::State &State) {
  auto F = [](const double *X, size_t) {
    double A = X[0] - 3.0, B = X[1] - 5.0;
    return A * A + B * B;
  };
  PowellMinimizer Powell;
  for (auto _ : State)
    benchmark::DoNotOptimize(Powell.minimize(F, {10.0, -7.0}));
}
BENCHMARK(BM_PowellQuadratic);

static void BM_NelderMeadQuadratic(benchmark::State &State) {
  auto F = [](const double *X, size_t) {
    double A = X[0] - 3.0, B = X[1] - 5.0;
    return A * A + B * B;
  };
  NelderMeadMinimizer NM;
  for (auto _ : State)
    benchmark::DoNotOptimize(NM.minimize(F, {10.0, -7.0}));
}
BENCHMARK(BM_NelderMeadQuadratic);

static void BM_RngWideDouble(benchmark::State &State) {
  Rng Rng(11);
  for (auto _ : State)
    benchmark::DoNotOptimize(Rng.wideDouble());
}
BENCHMARK(BM_RngWideDouble);

static void BM_CoverMeTanhCampaign(benchmark::State &State) {
  const Program *P = fdlibm::lookup("tanh");
  for (auto _ : State) {
    CoverMeOptions Opts;
    Opts.NStart = 100;
    Opts.Seed = 5;
    CoverMe Engine(*P, Opts);
    benchmark::DoNotOptimize(Engine.run());
  }
}
BENCHMARK(BM_CoverMeTanhCampaign)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
