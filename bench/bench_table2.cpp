//===- bench_table2.cpp - Table 2: CoverMe vs Rand vs AFL -------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// Regenerates Table 2: branch coverage of CoverMe, Rand, and AFL over the
// 40 Fdlibm benchmarks, plus the improvement columns and the MEAN row.
// Paper-reported percentages are printed alongside for comparison. The
// paper's expected shape: CoverMe dominates Rand everywhere (mean 90.8% vs
// 38.0%) and beats AFL on most functions (mean 72.9%).
//
// Usage: bench_table2 [n_start] [seed]
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "fdlibm/Fdlibm.h"
#include "support/Table.h"

#include <cstdio>

using namespace coverme;
using namespace coverme::bench;

int main(int Argc, char **Argv) {
  Protocol Proto = protocolFromArgs(Argc, Argv);
  Proto.RunAustin = false; // Austin is Table 3's comparison.

  const ProgramRegistry &Reg = fdlibm::registry();
  const std::vector<fdlibm::PaperRow> &Paper = fdlibm::paperRows();

  std::printf("Table 2: CoverMe versus Rand and AFL (branch coverage, %%)\n"
              "protocol: n_start=%u, n_iter=%u, LM=powell, seed=%llu; "
              "Rand/AFL budget = 10x CoverMe evaluations\n\n",
              Proto.NStart, Proto.NIter,
              static_cast<unsigned long long>(Proto.Seed));

  Table T({"file", "function", "#br", "time(s)", "Rand", "AFL", "CoverMe",
           "paper(R/A/C)", "CM-Rand", "CM-AFL"});
  double SumRand = 0, SumAfl = 0, SumCm = 0, SumTime = 0;
  size_t N = Reg.programs().size();

  for (size_t I = 0; I < N; ++I) {
    const Program &P = Reg.programs()[I];
    std::fprintf(stderr, "[%2zu/%zu] %s\n", I + 1, N, P.Name.c_str());
    RowResult Row = runRow(P, Proto);
    double Cm = 100.0 * Row.CoverMe.BranchCoverage;
    double Rd = 100.0 * Row.Rand.BranchCoverage;
    double Af = 100.0 * Row.Afl.BranchCoverage;
    SumRand += Rd;
    SumAfl += Af;
    SumCm += Cm;
    SumTime += Row.CoverMe.Seconds;
    char PaperCell[48];
    std::snprintf(PaperCell, sizeof(PaperCell), "%.1f/%.1f/%.1f",
                  Paper[I].RandPct, Paper[I].AflPct, Paper[I].CoverMePct);
    T.addRow({P.File, P.Name, Table::cell(static_cast<int>(P.numBranches())),
              Table::cell(Row.CoverMe.Seconds, 2), Table::cell(Rd),
              Table::cell(Af), Table::cell(Cm), PaperCell,
              Table::cell(Cm - Rd), Table::cell(Cm - Af)});
  }
  double DN = static_cast<double>(N);
  T.addRow({"MEAN", "", "", Table::cell(SumTime / DN, 2),
            Table::cell(SumRand / DN), Table::cell(SumAfl / DN),
            Table::cell(SumCm / DN), "38.0/72.9/90.8",
            Table::cell((SumCm - SumRand) / DN),
            Table::cell((SumCm - SumAfl) / DN)});

  std::fputs(T.toAscii().c_str(), stdout);
  std::printf("\npaper means: Rand 38.0, AFL 72.9, CoverMe 90.8 "
              "(improvements 52.9 and 17.9)\n");
  return 0;
}
