//===- bench_table2.cpp - Table 2: CoverMe vs Rand vs AFL -------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// Regenerates Table 2: branch coverage of CoverMe, Rand, and AFL over the
// 40 Fdlibm benchmarks, plus the improvement columns and the MEAN row.
// Paper-reported percentages are printed alongside for comparison. The
// paper's expected shape: CoverMe dominates Rand everywhere (mean 90.8% vs
// 38.0%) and beats AFL on most functions (mean 72.9%).
//
// Rows shard across a CampaignRunner pool: every row is independently
// seeded, so `--threads=N` divides the sweep wall time by ~N without
// changing a single cell. `--json[=path]` writes BENCH_table2.json.
//
// Usage: bench_table2 [n_start] [seed] [--threads=N] [--json[=path]]
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "fdlibm/Fdlibm.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <atomic>
#include <cstdio>

using namespace coverme;
using namespace coverme::bench;

int main(int Argc, char **Argv) {
  Protocol Proto = protocolFromArgs(Argc, Argv);
  Proto.RunAustin = false; // Austin is Table 3's comparison.

  const ProgramRegistry &Reg = fdlibm::registry();
  const std::vector<fdlibm::PaperRow> &Paper = fdlibm::paperRows();

  CampaignRunner Runner({Proto.Threads, {}});
  Proto.Threads = Runner.threads(); // resolve 0 for the report and the JSON
  std::printf("Table 2: CoverMe versus Rand and AFL (branch coverage, %%)\n"
              "protocol: n_start=%u, n_iter=%u, LM=powell, seed=%llu; "
              "Rand/AFL budget = 10x CoverMe evaluations; %u row threads\n\n",
              Proto.NStart, Proto.NIter,
              static_cast<unsigned long long>(Proto.Seed), Runner.threads());

  size_t N = Reg.programs().size();
  WallTimer Sweep;
  std::atomic<size_t> Done{0};
  std::vector<RowResult> Rows = Runner.map<RowResult>(N, [&](size_t I) {
    const Program &P = Reg.programs()[I];
    RowResult Row = runRow(P, Proto);
    std::fprintf(stderr, "[%2zu/%zu] %s\n", Done.fetch_add(1) + 1, N,
                 P.Name.c_str());
    return Row;
  });
  double Wall = Sweep.seconds();

  Table T({"file", "function", "#br", "time(s)", "Rand", "AFL", "CoverMe",
           "paper(R/A/C)", "CM-Rand", "CM-AFL"});
  double SumRand = 0, SumAfl = 0, SumCm = 0, SumTime = 0;
  for (size_t I = 0; I < N; ++I) {
    const Program &P = Reg.programs()[I];
    const RowResult &Row = Rows[I];
    double Cm = 100.0 * Row.CoverMe.BranchCoverage;
    double Rd = 100.0 * Row.Rand.BranchCoverage;
    double Af = 100.0 * Row.Afl.BranchCoverage;
    SumRand += Rd;
    SumAfl += Af;
    SumCm += Cm;
    SumTime += Row.CoverMe.Seconds;
    char PaperCell[48];
    std::snprintf(PaperCell, sizeof(PaperCell), "%.1f/%.1f/%.1f",
                  Paper[I].RandPct, Paper[I].AflPct, Paper[I].CoverMePct);
    T.addRow({P.File, P.Name, Table::cell(static_cast<int>(P.numBranches())),
              Table::cell(Row.CoverMe.Seconds, 2), Table::cell(Rd),
              Table::cell(Af), Table::cell(Cm), PaperCell,
              Table::cell(Cm - Rd), Table::cell(Cm - Af)});
  }
  double DN = static_cast<double>(N);
  T.addRow({"MEAN", "", "", Table::cell(SumTime / DN, 2),
            Table::cell(SumRand / DN), Table::cell(SumAfl / DN),
            Table::cell(SumCm / DN), "38.0/72.9/90.8",
            Table::cell((SumCm - SumRand) / DN),
            Table::cell((SumCm - SumAfl) / DN)});

  std::fputs(T.toAscii().c_str(), stdout);
  std::printf("\npaper means: Rand 38.0, AFL 72.9, CoverMe 90.8 "
              "(improvements 52.9 and 17.9)\n");
  std::printf("sweep wall time: %.1fs on %u threads "
              "(per-campaign sum %.1fs)\n",
              Wall, Runner.threads(), SumTime);
  if (Proto.Json) {
    std::string Path = writeRowsJson(Proto, "table2", Rows, Wall);
    if (!Path.empty())
      std::printf("wrote %s\n", Path.c_str());
  }
  return 0;
}
