//===- bench_fig6.cpp - Fig. 6: symbolic execution versus CoverMe -----------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// Makes the paper's Fig. 6 contrast measurable. Symbolic execution
// "selects a target path tau, derives a path condition Phi_tau, and
// calculates a model with a solver" — once per path — where CoverMe
// "minimizes a single representing function FOO_R". This bench runs a
// generational-search DSE baseline (concrete path conditions solved with a
// FloPSy-style search solver; a generous stand-in for an FP-capable SMT
// backend, which Klee lacks entirely on this code — Sect. 6.1) against the
// CoverMe campaign on every Fdlibm benchmark and reports:
//
//   * branch coverage of both,
//   * the number of path-condition solves DSE attempted vs the number of
//     minimization rounds CoverMe launched,
//   * paths explored (the path-explosion axis),
//   * executions consumed per covered branch.
//
// Usage: bench_fig6 [n_start] [seed]
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "dse/DseExplorer.h"
#include "fdlibm/Fdlibm.h"
#include "support/Table.h"

#include <cstdio>

using namespace coverme;
using namespace coverme::bench;

int main(int Argc, char **Argv) {
  Protocol Proto = protocolFromArgs(Argc, Argv);

  std::printf(
      "Figure 6: per-path solving (DSE) versus one representing function "
      "(CoverMe)\n"
      "protocol: CoverMe n_start=%u, n_iter=%u, seed=%llu; DSE runs "
      "generational search with a search-based FP constraint solver and "
      "the same execution budget cap\n\n",
      Proto.NStart, Proto.NIter,
      static_cast<unsigned long long>(Proto.Seed));

  Table T({"function", "#br", "DSE cov", "CM cov", "DSE solves", "CM rounds",
           "DSE paths", "DSE evals/br", "CM evals/br"});

  double SumDse = 0, SumCm = 0;
  uint64_t TotalSolves = 0, TotalRounds = 0;
  double SumDseEff = 0, SumCmEff = 0;
  size_t N = fdlibm::registry().programs().size();

  for (size_t I = 0; I < N; ++I) {
    const Program &P = fdlibm::registry().programs()[I];
    std::fprintf(stderr, "[%2zu/%zu] %s\n", I + 1, N, P.Name.c_str());

    CoverMeOptions COpts;
    COpts.NStart = Proto.NStart;
    COpts.NIter = Proto.NIter;
    COpts.Seed = Proto.Seed;
    CampaignResult Cm = CoverMe(P, COpts).run();

    DseOptions DOpts;
    DOpts.Seed = Proto.Seed;
    DOpts.MaxExecutions = std::max<uint64_t>(Cm.Evaluations, 20000);
    DseResult Dse = DseExplorer(P, DOpts).run();

    double DseCov = 100.0 * Dse.BranchCoverage;
    double CmCov = 100.0 * Cm.BranchCoverage;
    SumDse += DseCov;
    SumCm += CmCov;
    TotalSolves += Dse.Solves;
    TotalRounds += Cm.StartsUsed;
    double DseEff =
        Dse.Coverage.coveredArms()
            ? static_cast<double>(Dse.Executions) / Dse.Coverage.coveredArms()
            : 0.0;
    double CmEff = Cm.CoveredBranches
                       ? static_cast<double>(Cm.Evaluations) /
                             Cm.CoveredBranches
                       : 0.0;
    SumDseEff += DseEff;
    SumCmEff += CmEff;

    T.addRow({P.Name, std::to_string(P.numBranches()), Table::cell(DseCov),
              Table::cell(CmCov), Table::cell(Dse.Solves),
              Table::cell(static_cast<size_t>(Cm.StartsUsed)),
              Table::cell(Dse.PathsExplored), Table::cell(DseEff, 0),
              Table::cell(CmEff, 0)});
  }

  T.addRow({"MEAN", "", Table::cell(SumDse / N), Table::cell(SumCm / N),
            Table::cell(TotalSolves / N), Table::cell(TotalRounds / N),
            "", Table::cell(SumDseEff / N, 0), Table::cell(SumCmEff / N, 0)});
  std::fputs(T.toAscii().c_str(), stdout);

  std::printf(
      "\nexpected shape: CoverMe reaches at least DSE's coverage almost "
      "everywhere and a higher mean. The failure modes differ tellingly: "
      "when DSE's per-path solver cannot crack a target, its frontier "
      "empties and exploration simply stops (low solve counts, coverage "
      "plateau) — the path-by-path formulation has nowhere else to go — "
      "while CoverMe's single representing function lets it keep "
      "searching globally (more evaluations, higher final coverage). "
      "That is Fig. 6's argument in numbers.\n");
  return 0;
}
