//===- bench_table4.cpp - Table 4: the benchmark census ----------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// Regenerates Table 4 (appendix A): the census of Fdlibm 5.3 — 92 math
// functions in 80 files, of which 36 have no branch, 11 take non-floating-
// point inputs, 5 are static C helpers, and the remaining 40 form the
// benchmark suite. The bench cross-checks the suite half of the census
// against the registry (names, arities, per-function branch counts vs
// Table 2) and prints the exclusion table.
//
//===----------------------------------------------------------------------===//

#include "fdlibm/Fdlibm.h"
#include "support/Table.h"

#include <cstdio>

using namespace coverme;

namespace {

struct ExcludedEntry {
  const char *File;
  const char *Function;
  const char *Reason;
};

const ExcludedEntry Excluded[] = {
    {"e_gamma_r.c", "ieee754_gamma_r", "no branch"},
    {"e_gamma.c", "ieee754_gamma", "no branch"},
    {"e_j0.c", "pzero/qzero", "static C function"},
    {"e_j1.c", "pone/qone", "static C function"},
    {"e_jn.c", "ieee754_jn/ieee754_yn", "unsupported input type"},
    {"e_lgamma_r.c", "sin_pi", "static C function"},
    {"e_lgamma_r.c", "ieee754_lgammar_r", "unsupported input type"},
    {"e_lgamma.c", "ieee754_lgamma", "no branch"},
    {"k_rem_pio2.c", "kernel_rem_pio2", "unsupported input type"},
    {"k_sin.c", "kernel_sin", "unsupported input type"},
    {"k_standard.c", "kernel_standard", "unsupported input type"},
    {"k_tan.c", "kernel_tan", "unsupported input type"},
    {"s_copysign.c", "copysign", "no branch"},
    {"s_fabs.c", "fabs", "no branch"},
    {"s_finite.c", "finite", "no branch"},
    {"s_frexp.c", "frexp", "unsupported input type"},
    {"s_isnan.c", "isnan", "no branch"},
    {"s_ldexp.c", "ldexp", "unsupported input type"},
    {"s_lib_version.c", "lib_version", "no branch"},
    {"s_matherr.c", "matherr", "unsupported input type"},
    {"s_scalbn.c", "scalbn", "unsupported input type"},
    {"s_signgam.c", "signgam", "no branch"},
    {"s_significand.c", "significand", "no branch"},
    {"w_*.c", "26 wrapper entry points", "no branch"},
};

} // namespace

int main() {
  const ProgramRegistry &Reg = fdlibm::registry();
  const std::vector<fdlibm::PaperRow> &Paper = fdlibm::paperRows();

  std::printf("Table 4: Fdlibm 5.3 functions excluded from the benchmark "
              "suite\n\n");
  Table TEx({"file", "function(s)", "explanation"});
  for (const ExcludedEntry &E : Excluded)
    TEx.addRow({E.File, E.Function, E.Reason});
  std::fputs(TEx.toAscii().c_str(), stdout);

  std::printf("\nIncluded suite cross-check (%zu programs; paper tests "
              "40):\n\n",
              Reg.size());
  Table TIn({"function", "arity", "#branches (port)", "#branches (paper)",
             "match"});
  unsigned Mismatches = 0;
  for (size_t I = 0; I < Reg.programs().size(); ++I) {
    const Program &P = Reg.programs()[I];
    bool Match = static_cast<int>(P.numBranches()) == Paper[I].Branches;
    Mismatches += !Match;
    TIn.addRow({P.Name, Table::cell(static_cast<int>(P.Arity)),
                Table::cell(static_cast<int>(P.numBranches())),
                Table::cell(Paper[I].Branches), Match ? "yes" : "NO"});
  }
  std::fputs(TIn.toAscii().c_str(), stdout);
  std::printf("\nbranch-count mismatches vs Table 2: %u\n", Mismatches);
  return Mismatches == 0 ? 0 : 1;
}
