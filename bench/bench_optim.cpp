//===- bench_optim.cpp - Evaluation-pipeline throughput benchmarks ----------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// Measures the economy Algorithm 1 actually runs on: FOO_R evaluations per
// second through each local minimizer, on both execution tiers
// (tree-walker and bytecode VM), through two pipelines:
//
//   * "new"    — the span-based zero-allocation pipeline: ObjectiveFn over
//                a RepresentingFunction::BoundRun (context scope, pen flag
//                and thread-local VM resolved once per round; per-probe
//                cost is beginRun + one raw body call).
//   * "legacy" — a faithful reconstruction of the pre-redesign plumbing:
//                a std::function objective over the per-call path (scope
//                install + pen toggle per probe, std::function body
//                dispatch, per-call thread-local VM lookup) plus the
//                probe-vector materialization the old vector<double>
//                interface forced (heap-fresh per probe for the minimizers
//                that allocated per probe — Nelder-Mead, coordinate
//                descent — and a reused scratch vector for Powell, which
//                amortized its probe vector per line search).
//
// Rounds replicate the campaign shape: deterministic wide-double starts,
// campaign-sized budgets, one arm per site saturated so pen computes real
// branch distances. Both pipelines compute bit-identical FOO_R values;
// only the plumbing differs, so evals/sec is the honest comparison.
//
// Besides the minimizer lanes, a per-subject overhead section isolates
// what the redesign actually targets: pipeline overhead per probe =
// FOO_R ns/eval minus the raw (hook-free) body ns/eval, measured for both
// pipelines. The body plus live pen hooks dominate a FOO_R evaluation
// (~100-500 ns on these subjects), so end-to-end evals/sec moves by
// 10-25%; the overhead itself — dispatches, scope installs, TLS lookups,
// allocations — is what drops by >= 2x.
//
// `--json[=path]` writes BENCH_optim.json with per-row ns/eval and
// evals/sec plus the derived minima CI gates on:
//   min_vm_new_evals_per_sec     — floor on the redesigned VM-tier rows;
//   min_vm_overhead_reduction    — legacy/new per-probe overhead, VM tier.
//
// Usage: bench_optim [--json[=path]] [--rounds=N] [--subjects=a,b]
//
//===----------------------------------------------------------------------===//

#include "lang/SourceSuite.h"
#include "optim/CoordinateDescent.h"
#include "optim/NelderMead.h"
#include "optim/Powell.h"
#include "runtime/ExecutionContext.h"
#include "runtime/RepresentingFunction.h"
#include "support/Random.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

using namespace coverme;
using namespace coverme::lang;

namespace {

/// The pre-redesign per-probe plumbing, reconstructed: span -> vector
/// materialization, std::function double-dispatch, and the per-call
/// context scope behind RepresentingFunction's vector operator().
struct LegacyObjective {
  explicit LegacyObjective(const RepresentingFunction &FR,
                           bool AllocPerProbe)
      : AllocPerProbe(AllocPerProbe),
        Fn([&FR](const std::vector<double> &X) { return FR(X); }) {}

  double eval(const double *X, size_t N) {
    if (AllocPerProbe) {
      std::vector<double> Probe(X, X + N); // the old fresh probe vector
      return Fn(Probe);
    }
    Scratch.assign(X, X + N); // Powell amortized its probe storage
    return Fn(Scratch);
  }

  bool AllocPerProbe;
  std::function<double(const std::vector<double> &)> Fn;
  std::vector<double> Scratch;
};

struct LaneResult {
  uint64_t Evals = 0;
  double Seconds = 0.0;
  double nsPerEval() const {
    return Evals ? Seconds * 1e9 / static_cast<double>(Evals) : 0.0;
  }
  double evalsPerSec() const {
    return Seconds > 0.0 ? static_cast<double>(Evals) / Seconds : 0.0;
  }
};

/// Campaign-shaped minimization rounds; returns total probes and best-of-3
/// wall time (the probe sequence is deterministic, so every repetition
/// makes the same evaluations and only the timing varies).
template <typename MakeObjective>
LaneResult runLane(const Program &P, MakeObjective &&MakeObj,
                   unsigned Rounds) {
  LaneResult Lane;
  Lane.Seconds = 1e300;
  for (int Rep = 0; Rep < 3; ++Rep) {
    Rng StartRng(17);
    std::vector<double> Start(P.Arity);
    uint64_t Evals = 0;
    WallTimer Timer;
    for (unsigned R = 0; R < Rounds; ++R) {
      for (double &C : Start)
        C = StartRng.wideDouble();
      MinimizeResult Res = MakeObj(Start);
      Evals += Res.NumEvals;
    }
    Lane.Seconds = std::min(Lane.Seconds, Timer.seconds());
    Lane.Evals = Evals;
  }
  return Lane;
}

struct Row {
  std::string Subject;
  std::string Tier;      ///< "vm" or "interp".
  std::string Minimizer; ///< powell / nelder-mead / coordinate-descent.
  LaneResult New, Legacy;
  double speedup() const {
    return Legacy.Evals && New.evalsPerSec() > 0.0
               ? New.evalsPerSec() / Legacy.evalsPerSec()
               : 0.0;
  }
};

/// Per-subject isolation of the pipeline overhead the redesign removes.
struct OverheadRow {
  std::string Subject;
  std::string Tier;
  double BodyNs = 0.0;          ///< Raw bound body, hooks inert (no context).
  double NewFooRNs = 0.0;       ///< FOO_R through a BoundRun.
  double LegacyFooRNs = 0.0;    ///< FOO_R through the pre-redesign plumbing.
  double newOverhead() const { return NewFooRNs - BodyNs; }
  double legacyOverhead() const { return LegacyFooRNs - BodyNs; }
  double reduction() const {
    // Timing jitter can measure the new overhead at or below zero (it is
    // ~10-40 ns next to a 100-650 ns body); that means "unmeasurably
    // small", which must read as a win, not a 0.0 that fails the CI gate.
    return newOverhead() > 0.0 ? legacyOverhead() / newOverhead() : 999.0;
  }
};

/// Best-of-5 ns per call of \p Fn over a deterministic input sweep.
template <typename F> double nsPerCall(unsigned Evals, F &&Fn) {
  double Best = 1e300;
  for (int Rep = 0; Rep < 5; ++Rep) {
    WallTimer T;
    for (unsigned I = 0; I < Evals; ++I)
      Fn(I);
    Best = std::min(Best, T.seconds());
  }
  return Best * 1e9 / static_cast<double>(Evals);
}

volatile double Sink = 0.0; ///< Defeats dead-code elimination.

/// Measures raw-body / new-FOO_R / legacy-FOO_R ns per probe.
OverheadRow measureOverhead(const std::string &Subject,
                            const std::string &Tier, const Program &P,
                            RepresentingFunction &FR, unsigned Evals) {
  OverheadRow Row;
  Row.Subject = Subject;
  Row.Tier = Tier;
  std::vector<double> X(P.Arity, 0.75);

  Program::BoundBody Body = P.bind();
  Row.BodyNs = nsPerCall(Evals, [&](unsigned I) {
    X[0] = 0.75 + 1e-12 * static_cast<double>(I & 1023);
    Sink = Body.call(X.data());
  });

  {
    RepresentingFunction::BoundRun Run(FR);
    Row.NewFooRNs = nsPerCall(Evals, [&](unsigned I) {
      X[0] = 0.75 + 1e-12 * static_cast<double>(I & 1023);
      Sink = Run.eval(X.data(), X.size());
    });
  }

  std::function<double(const std::vector<double> &)> LegacyFn =
      [&FR](const std::vector<double> &V) { return FR(V); };
  Row.LegacyFooRNs = nsPerCall(Evals, [&](unsigned I) {
    X[0] = 0.75 + 1e-12 * static_cast<double>(I & 1023);
    std::vector<double> Probe(X); // the old per-probe vector
    Sink = LegacyFn(Probe);
  });
  return Row;
}

/// Benchmarks every minimizer through both pipelines on one program, plus
/// the isolated per-probe overhead lanes.
void benchProgram(const std::string &Subject, const std::string &Tier,
                  const Program &P, unsigned Rounds, std::vector<Row> &Out,
                  std::vector<OverheadRow> &OverheadOut) {
  // Campaign mid-state: one arm per site saturated, so pen computes a
  // real branch distance per conditional instead of degenerating to 0.
  ExecutionContext Ctx(P.NumSites);
  for (uint32_t S = 0; S < P.NumSites; ++S)
    Ctx.saturate({S, true});
  Ctx.TraceEnabled = false;
  RepresentingFunction FR(P, Ctx);

  OverheadOut.push_back(
      measureOverhead(Subject, Tier, P, FR, Rounds * 500));

  LocalMinimizerOptions LMOpts;
  LMOpts.MaxIterations = 20;
  LMOpts.MaxEvaluations = 1200;

  for (LocalMinimizerKind Kind :
       {LocalMinimizerKind::Powell, LocalMinimizerKind::NelderMead,
        LocalMinimizerKind::CoordinateDescent}) {
    auto LM = makeLocalMinimizer(Kind, LMOpts);
    Row R;
    R.Subject = Subject;
    R.Tier = Tier;
    R.Minimizer = localMinimizerKindName(Kind);

    R.New = runLane(P,
                    [&](const std::vector<double> &Start) {
                      RepresentingFunction::BoundRun Run(FR);
                      ObjectiveFn Obj(Run);
                      return LM->minimize(Obj, Start);
                    },
                    Rounds);

    bool LegacyAllocedPerProbe = Kind != LocalMinimizerKind::Powell;
    LegacyObjective Legacy(FR, LegacyAllocedPerProbe);
    R.Legacy = runLane(P,
                       [&](const std::vector<double> &Start) {
                         ObjectiveFn Obj(Legacy);
                         return LM->minimize(Obj, Start);
                       },
                       Rounds);
    Out.push_back(std::move(R));
  }
}

} // namespace

int main(int Argc, char **Argv) {
  bool Json = false;
  std::string JsonPath = "BENCH_optim.json";
  unsigned Rounds = 400;
  // Low-arity subjects with short bodies — where the per-probe pipeline
  // cost is actually visible next to the body. (Long-body subjects like
  // sqrt measure the VM, not the pipeline; pass --subjects to see them.)
  std::string Subjects = "tanh,logb,ilogb";
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strcmp(Arg, "--json") == 0) {
      Json = true;
    } else if (std::strncmp(Arg, "--json=", 7) == 0) {
      Json = true;
      JsonPath = Arg + 7;
    } else if (std::strncmp(Arg, "--rounds=", 9) == 0) {
      Rounds = static_cast<unsigned>(std::atoi(Arg + 9));
      if (Rounds == 0)
        Rounds = 1;
    } else if (std::strncmp(Arg, "--subjects=", 11) == 0) {
      Subjects = Arg + 11;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json[=path]] [--rounds=N] [--subjects=a,b]\n",
                   Argv[0]);
      return 2;
    }
  }

  std::vector<Row> Rows;
  std::vector<OverheadRow> OverheadRows;
  std::vector<std::string> SubjectList;
  for (size_t Pos = 0; Pos < Subjects.size();) {
    size_t Comma = Subjects.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Subjects.size();
    if (Comma > Pos)
      SubjectList.push_back(Subjects.substr(Pos, Comma - Pos));
    Pos = Comma + 1;
  }

  for (const std::string &Name : SubjectList) {
    const SourceBenchmark *B = findSourceBenchmark(Name);
    if (!B) {
      std::fprintf(stderr, "unknown source-suite subject '%s'\n",
                   Name.c_str());
      return 1;
    }
    SourceProgramOptions VmOpts; // Bytecode tier is the default
    SourceProgram Vm = compileSourceProgram(B->Source, B->Name, VmOpts);
    SourceProgramOptions TwOpts;
    TwOpts.Tier = ExecutionTier::TreeWalker;
    SourceProgram Tw = compileSourceProgram(B->Source, B->Name, TwOpts);
    if (!Vm.success() || !Tw.success()) {
      std::fprintf(stderr, "subject '%s' failed the frontend:\n%s\n%s\n",
                   Name.c_str(), Vm.diagnosticsText().c_str(),
                   Tw.diagnosticsText().c_str());
      return 1;
    }
    benchProgram(Name, "vm", Vm.Prog, Rounds, Rows, OverheadRows);
    benchProgram(Name, "interp", Tw.Prog, Rounds, Rows, OverheadRows);
  }

  std::printf("Per-probe pipeline overhead (FOO_R minus raw body, ns)\n\n");
  std::printf("%-10s %-7s %10s %10s %10s %10s %10s %10s\n", "subject",
              "tier", "body", "new FOO_R", "old FOO_R", "new ovh",
              "old ovh", "reduction");
  double MinVmOverheadReduction = 1e300;
  for (const OverheadRow &O : OverheadRows) {
    std::printf("%-10s %-7s %10.1f %10.1f %10.1f %10.1f %10.1f %9.2fx\n",
                O.Subject.c_str(), O.Tier.c_str(), O.BodyNs, O.NewFooRNs,
                O.LegacyFooRNs, O.newOverhead(), O.legacyOverhead(),
                O.reduction());
    if (O.Tier == "vm")
      MinVmOverheadReduction = std::min(MinVmOverheadReduction, O.reduction());
  }

  std::printf("\nEvaluation throughput through the minimizers (rounds=%u "
              "per lane)\n\n",
              Rounds);
  std::printf("%-10s %-7s %-19s %12s %12s %12s %12s %8s\n", "subject",
              "tier", "minimizer", "new ns/ev", "new ev/s", "old ns/ev",
              "old ev/s", "speedup");
  double MinVmNewRate = 1e300;
  double MinVmSpeedup = 1e300;
  for (const Row &R : Rows) {
    std::printf("%-10s %-7s %-19s %12.1f %12.0f %12.1f %12.0f %7.2fx\n",
                R.Subject.c_str(), R.Tier.c_str(), R.Minimizer.c_str(),
                R.New.nsPerEval(), R.New.evalsPerSec(),
                R.Legacy.nsPerEval(), R.Legacy.evalsPerSec(), R.speedup());
    if (R.Tier == "vm") {
      MinVmNewRate = std::min(MinVmNewRate, R.New.evalsPerSec());
      MinVmSpeedup = std::min(MinVmSpeedup, R.speedup());
    }
  }
  std::printf("\nVM-tier minima: %.0f evals/sec, %.2fx end-to-end vs "
              "legacy, %.2fx per-probe overhead reduction\n",
              MinVmNewRate, MinVmSpeedup, MinVmOverheadReduction);

  if (Json) {
    std::FILE *F = std::fopen(JsonPath.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "cannot open %s\n", JsonPath.c_str());
      return 1;
    }
    std::fprintf(F, "{\n  \"bench\": \"optim\",\n  \"rounds\": %u,\n"
                    "  \"overhead\": [\n",
                 Rounds);
    for (size_t I = 0; I < OverheadRows.size(); ++I) {
      const OverheadRow &O = OverheadRows[I];
      std::fprintf(
          F,
          "    {\"subject\": \"%s\", \"tier\": \"%s\", \"body_ns\": %.3f, "
          "\"new_foo_r_ns\": %.3f, \"legacy_foo_r_ns\": %.3f, "
          "\"new_overhead_ns\": %.3f, \"legacy_overhead_ns\": %.3f, "
          "\"overhead_reduction\": %.3f}%s\n",
          O.Subject.c_str(), O.Tier.c_str(), O.BodyNs, O.NewFooRNs,
          O.LegacyFooRNs, O.newOverhead(), O.legacyOverhead(),
          O.reduction(), I + 1 < OverheadRows.size() ? "," : "");
    }
    std::fprintf(F, "  ],\n  \"rows\": [\n");
    for (size_t I = 0; I < Rows.size(); ++I) {
      const Row &R = Rows[I];
      std::fprintf(
          F,
          "    {\"subject\": \"%s\", \"tier\": \"%s\", \"minimizer\": "
          "\"%s\", \"evals\": %llu, \"ns_per_eval\": %.3f, "
          "\"evals_per_sec\": %.1f, \"legacy_ns_per_eval\": %.3f, "
          "\"legacy_evals_per_sec\": %.1f, \"speedup_vs_legacy\": %.3f}%s\n",
          R.Subject.c_str(), R.Tier.c_str(), R.Minimizer.c_str(),
          static_cast<unsigned long long>(R.New.Evals), R.New.nsPerEval(),
          R.New.evalsPerSec(), R.Legacy.nsPerEval(),
          R.Legacy.evalsPerSec(), R.speedup(),
          I + 1 < Rows.size() ? "," : "");
    }
    std::fprintf(F,
                 "  ],\n  \"min_vm_new_evals_per_sec\": %.1f,\n"
                 "  \"min_vm_speedup_vs_legacy\": %.3f,\n"
                 "  \"min_vm_overhead_reduction\": %.3f\n}\n",
                 MinVmNewRate, MinVmSpeedup, MinVmOverheadReduction);
    std::fclose(F);
    std::printf("wrote %s\n", JsonPath.c_str());
  }
  return 0;
}
