//===- bench_ablation.cpp - Design-choice ablations --------------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// Ablations for the design choices DESIGN.md calls out (experiments E7-E9):
//
//   A1. n_start sweep      — how many MCMC restarts the guarantee needs in
//                            practice (Sect. 6.1 fixes 500).
//   A2. local minimizer    — LM = powell / nelder-mead / coordinate-descent
//                            / none (pure MCMC), the Remark 6.3 claim that
//                            the smooth representing function lets local
//                            optimization do real work.
//   A3. n_iter sweep       — Monte-Carlo hops per start.
//   A4. infeasible marking — heuristic on/off (Sect. 5.3).
//
// Each ablation reports mean branch coverage and evaluations over the
// whole Fdlibm suite.
//
// Usage: bench_ablation [seed]
//
//===----------------------------------------------------------------------===//

#include "core/CoverMe.h"
#include "fdlibm/Fdlibm.h"
#include "support/Table.h"

#include <cstdio>
#include <cstdlib>

using namespace coverme;

namespace {

struct SuiteStats {
  double MeanCoverage = 0.0;
  double MeanSeconds = 0.0;
  uint64_t TotalEvals = 0;
  unsigned FullCoverageCount = 0;
};

SuiteStats runSuite(const CoverMeOptions &Opts) {
  SuiteStats Stats;
  const ProgramRegistry &Reg = fdlibm::registry();
  for (const Program &P : Reg.programs()) {
    CoverMe Engine(P, Opts);
    CampaignResult Res = Engine.run();
    Stats.MeanCoverage += Res.BranchCoverage;
    Stats.MeanSeconds += Res.Seconds;
    Stats.TotalEvals += Res.Evaluations;
    Stats.FullCoverageCount += Res.BranchCoverage == 1.0;
  }
  double N = static_cast<double>(Reg.size());
  Stats.MeanCoverage = 100.0 * Stats.MeanCoverage / N;
  Stats.MeanSeconds /= N;
  return Stats;
}

void addRow(Table &T, const std::string &Config, const SuiteStats &S) {
  T.addRow({Config, Table::cell(S.MeanCoverage),
            Table::cell(static_cast<size_t>(S.FullCoverageCount)),
            Table::cell(static_cast<size_t>(S.TotalEvals)),
            Table::cell(S.MeanSeconds, 3)});
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Seed = Argc > 1 ? static_cast<uint64_t>(std::atoll(Argv[1])) : 1;
  CoverMeOptions Base;
  Base.Seed = Seed;

  std::printf("Ablation A1: n_start sweep (n_iter=5, LM=powell)\n\n");
  Table T1({"n_start", "mean coverage%", "#full", "total evals", "mean s"});
  for (unsigned NStart : {10u, 50u, 100u, 500u}) {
    CoverMeOptions Opts = Base;
    Opts.NStart = NStart;
    addRow(T1, std::to_string(NStart), runSuite(Opts));
  }
  std::fputs(T1.toAscii().c_str(), stdout);

  std::printf("\nAblation A2: local minimizer choice (n_start=200)\n\n");
  Table T2({"LM", "mean coverage%", "#full", "total evals", "mean s"});
  for (LocalMinimizerKind Kind :
       {LocalMinimizerKind::Powell, LocalMinimizerKind::NelderMead,
        LocalMinimizerKind::CoordinateDescent, LocalMinimizerKind::None}) {
    CoverMeOptions Opts = Base;
    Opts.NStart = 200;
    Opts.LM = Kind;
    addRow(T2, localMinimizerKindName(Kind), runSuite(Opts));
  }
  std::fputs(T2.toAscii().c_str(), stdout);

  std::printf("\nAblation A3: n_iter sweep (n_start=200, LM=powell)\n\n");
  Table T3({"n_iter", "mean coverage%", "#full", "total evals", "mean s"});
  for (unsigned NIter : {1u, 5u, 20u}) {
    CoverMeOptions Opts = Base;
    Opts.NStart = 200;
    Opts.NIter = NIter;
    addRow(T3, std::to_string(NIter), runSuite(Opts));
  }
  std::fputs(T3.toAscii().c_str(), stdout);

  std::printf("\nAblation A4: infeasible-branch heuristic (n_start=200)\n\n");
  Table T4({"config", "mean coverage%", "#full", "total evals", "mean s"});
  for (bool Mark : {true, false}) {
    CoverMeOptions Opts = Base;
    Opts.NStart = 200;
    Opts.MarkInfeasible = Mark;
    addRow(T4, Mark ? "heuristic on" : "heuristic off", runSuite(Opts));
  }
  std::fputs(T4.toAscii().c_str(), stdout);

  std::printf("\nAblation A5: global backend (n_start=200, LM=powell)\n\n");
  Table T5({"backend", "mean coverage%", "#full", "total evals", "mean s"});
  for (GlobalBackendKind Kind :
       {GlobalBackendKind::Basinhopping, GlobalBackendKind::SimulatedAnnealing,
        GlobalBackendKind::RandomRestart, GlobalBackendKind::CmaEs,
        GlobalBackendKind::DifferentialEvolution}) {
    CoverMeOptions Opts = Base;
    Opts.NStart = 200;
    Opts.Backend = Kind;
    addRow(T5, globalBackendKindName(Kind), runSuite(Opts));
  }
  std::fputs(T5.toAscii().c_str(), stdout);

  std::printf("\nexpected shape: coverage grows with n_start and saturates;"
              " powell >= other LMs; disabling the heuristic costs time but"
              " not coverage; basinhopping >= annealing and plain restarts"
              " (equality-gated arms need local minimization)\n");
  return 0;
}
