//===- bench_interp.cpp - Execution-tier benchmarks -------------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// Quantifies what the from-source pipeline costs relative to the natively
// compiled ports, and what the bytecode VM buys over the tree-walker on
// the hottest path of the whole system: one FOO_R evaluation (Sect. 5.1
// runs it millions of times per campaign). Measured on s_tanh.c, the
// paper's Fig. 1 program:
//
//   * frontend throughput (parse + Sema per compile) and bytecode
//     compile throughput (AST -> instruction stream),
//   * one plain body evaluation: native port vs tree-walker vs VM — the
//     VM in its default shape (computed-goto dispatch where compiled in,
//     superinstruction fusion on) plus ablation lanes for switch dispatch
//     and the unfused stream,
//   * the x86-64 template JIT tier (native fragments behind the same
//     probe), when COVERME_JIT is compiled in,
//   * one FOO_R evaluation (hooks firing, pen updating r) on both tiers,
//     scalar and through the batched probe entry (Vm::runBatch),
//   * an entire campaign (Algorithm 1 end to end) on both tiers.
//
// `--json[=path]` writes BENCH_interp.json with the measured rates, the
// resolved dispatch mode, the fusion-pass stats of the compiled unit, and
// the derived `vm_speedup` (tree-walker ns / VM ns per plain evaluation),
// which CI gates at >= 4x, plus `jit_speedup` (fused-VM ns / JIT ns),
// which CI gates at >= 2x whenever `jit_available` is true, plus
// `vm_batch_simd_speedup` — the suite geomean of batched FOO_R through
// the wide SIMD batch lane over forced-scalar runBatch — which CI gates
// at >= 1.5x whenever `simd_available` is true.
//
// Usage: bench_interp [--json[=path]] [--evals=N]
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "core/CoverMe.h"
#include "fdlibm/Fdlibm.h"
#include "lang/Jit.h"
#include "lang/Sema.h"
#include "lang/SourceProgram.h"
#include "lang/SourceSuite.h"
#include "lang/Vm.h"
#include "runtime/ExecutionContext.h"
#include "runtime/RepresentingFunction.h"
#include "support/Timer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace coverme;
using namespace coverme::lang;

namespace {

/// s_tanh.c (Fig. 1) in the supported subset; matches the native port's
/// 6-site structure.
const char *TanhSource =
    "static const double one = 1.0, two = 2.0, tiny = 1.0e-300;\n"
    "double tanh(double x) {\n"
    "  double t, z;\n"
    "  int jx, ix;\n"
    "  jx = *(1 + (int *)&x);\n"
    "  ix = jx & 0x7fffffff;\n"
    "  if (ix >= 0x7ff00000) {\n"
    "    if (jx >= 0) return one / x + one;\n"
    "    else return one / x - one;\n"
    "  }\n"
    "  if (ix < 0x40360000) {\n"
    "    if (ix < 0x3c800000)\n"
    "      return x * (one + x);\n"
    "    if (ix >= 0x3ff00000) {\n"
    "      t = expm1(two * fabs(x));\n"
    "      z = one - two / (t + two);\n"
    "    } else {\n"
    "      t = expm1(-two * fabs(x));\n"
    "      z = -t / (t + two);\n"
    "    }\n"
    "  } else {\n"
    "    z = one - tiny;\n"
    "  }\n"
    "  if (jx >= 0) return z;\n"
    "  else return -z;\n"
    "}\n";

volatile double Sink = 0.0; ///< Defeats dead-code elimination.

/// Best-of-3 wall time for \p Count runs of \p Fn, in seconds.
template <typename F> double bestOf3(unsigned Count, F &&Fn) {
  double Best = 1e300;
  for (int Rep = 0; Rep < 3; ++Rep) {
    WallTimer T;
    for (unsigned I = 0; I < Count; ++I)
      Fn(I);
    double S = T.seconds();
    if (S < Best)
      Best = S;
  }
  return Best;
}

/// ns per FOO_R evaluation (context installed, pen live).
double nsPerRepresentingEval(const Program &P, unsigned Evals) {
  ExecutionContext Ctx(P.NumSites);
  RepresentingFunction FR(P, Ctx);
  std::vector<double> X(P.Arity, 0.75);
  double Secs = bestOf3(Evals, [&](unsigned I) {
    X[0] = 0.75 + 1e-9 * static_cast<double>(I % 1024);
    Sink = FR(X);
  });
  return Secs * 1e9 / Evals;
}

/// ns per FOO_R probe through the batched entry: whole generations go
/// down in one evalBatch call, the shape CMA-ES/DE produce.
double nsPerBatchedRepresentingEval(const Program &P, unsigned Evals) {
  ExecutionContext Ctx(P.NumSites);
  RepresentingFunction FR(P, Ctx);
  constexpr unsigned Rows = 256; // one CMA-ES-sized generation
  std::vector<double> Xs(static_cast<size_t>(Rows) * P.Arity, 0.75);
  for (unsigned R = 0; R < Rows; ++R)
    Xs[static_cast<size_t>(R) * P.Arity] =
        0.75 + 1e-9 * static_cast<double>(R);
  std::vector<double> Out(Rows);
  unsigned Batches = Evals / Rows ? Evals / Rows : 1;
  double Secs = bestOf3(Batches, [&](unsigned) {
    FR.evalBatch(Xs.data(), Rows, P.Arity, Out.data());
    Sink = Out[Rows - 1];
  });
  return Secs * 1e9 / (static_cast<double>(Batches) * Rows);
}

/// Wall milliseconds for one full campaign (Algorithm 1, NStart=100).
double campaignMs(const Program &P) {
  WallTimer T;
  CoverMeOptions Opts;
  Opts.NStart = 100;
  Opts.Seed = 1;
  CampaignResult Res = CoverMe(P, Opts).run();
  Sink = static_cast<double>(Res.CoveredBranches);
  return T.seconds() * 1e3;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Json = false;
  std::string JsonPath = "BENCH_interp.json";
  unsigned Evals = 100000;
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strcmp(Arg, "--json") == 0) {
      Json = true;
    } else if (std::strncmp(Arg, "--json=", 7) == 0) {
      Json = true;
      JsonPath = Arg + 7;
    } else if (std::strncmp(Arg, "--evals=", 8) == 0) {
      Evals = static_cast<unsigned>(std::atoi(Arg + 8));
      if (Evals == 0)
        Evals = 1;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json[=path]] [--evals=N]\n", Argv[0]);
      return 2;
    }
  }

  // Frontend throughput: parse + Sema per compile.
  unsigned Compiles = 300;
  double FrontendSecs = bestOf3(Compiles, [&](unsigned) {
    ParseResult R = parseTranslationUnit(TanhSource);
    std::vector<Diagnostic> Diags;
    analyze(*R.TU, Diags);
    Sink = static_cast<double>(R.TU->NumSites);
  });
  double FrontendUs = FrontendSecs * 1e6 / Compiles;

  // Bytecode compile throughput over an already-analyzed unit.
  ParseResult Parsed = parseTranslationUnit(TanhSource);
  std::vector<Diagnostic> Diags;
  if (!Parsed.success() || !analyze(*Parsed.TU, Diags)) {
    std::fprintf(stderr, "tanh source failed the frontend\n");
    return 1;
  }
  double CompileSecs = bestOf3(Compiles, [&](unsigned) {
    bc::CompileResult R = bc::compileUnit(*Parsed.TU);
    Sink = static_cast<double>(R.Unit ? R.Unit->Code.size() : 0);
  });
  double BytecodeUs = CompileSecs * 1e6 / Compiles;

  // The bodies: native port, tree-walker, and the VM in its default
  // shape plus the two ablation configurations (switch dispatch with
  // fusion; default dispatch over the unfused stream).
  SourceProgramOptions TreeOpts;
  TreeOpts.Tier = ExecutionTier::TreeWalker;
  SourceProgram TreeSP = compileSourceProgram(TanhSource, "tanh", TreeOpts);
  SourceProgram VmSP = compileSourceProgram(TanhSource, "tanh");
  SourceProgramOptions SwitchOpts;
  SwitchOpts.Interp.Dispatch = lang::VmDispatch::Switch;
  SourceProgram VmSwitchSP =
      compileSourceProgram(TanhSource, "tanh", SwitchOpts);
  SourceProgramOptions UnfusedOpts;
  UnfusedOpts.Fuse = false;
  SourceProgram VmUnfusedSP =
      compileSourceProgram(TanhSource, "tanh", UnfusedOpts);
  SourceProgramOptions JitOpts;
  JitOpts.Tier = ExecutionTier::Jit;
  SourceProgram JitSP = compileSourceProgram(TanhSource, "tanh", JitOpts);
  const bool JitOn = JitSP.Jit != nullptr;
  const Program *Native = fdlibm::lookup("tanh");
  if (!TreeSP.success() || !VmSP.success() || !VmSwitchSP.success() ||
      !VmUnfusedSP.success() || !JitSP.success() || !Native) {
    std::fprintf(stderr, "tier setup failed:\n%s\n%s\n",
                 TreeSP.diagnosticsText().c_str(),
                 VmSP.diagnosticsText().c_str());
    return 1;
  }
  const bc::OptStats &Fusion = VmSP.Code->Stats;
  const char *DispatchMode =
      bc::Vm::cgotoAvailable() ? "cgoto" : "switch";

  double NativeNs = bench::nsPerBodyEval(*Native, Evals * 4);
  double InterpNs = bench::nsPerBodyEval(TreeSP.Prog, Evals);
  // The JIT lane: same Program shape, native fragments behind the probe.
  // Without COVERME_JIT the tier degrades to the plain VM, so the lane
  // reports ~1x and the JSON carries jit_available=false for CI to key on.
  // The fused-VM and JIT lanes form the gated jit_speedup ratio, so their
  // repetitions are interleaved: machine-speed drift on shared hosts then
  // hits both sides alike and cancels out of the ratio.
  double VmNs = 1e300, JitNs = 1e300;
  for (int Rep = 0; Rep < 3; ++Rep) {
    VmNs = std::min(VmNs, bench::nsPerBodyEval(VmSP.Prog, Evals * 4));
    JitNs = std::min(JitNs, bench::nsPerBodyEval(JitSP.Prog, Evals * 8));
  }
  double VmSwitchNs = bench::nsPerBodyEval(VmSwitchSP.Prog, Evals * 4);
  double VmUnfusedNs = bench::nsPerBodyEval(VmUnfusedSP.Prog, Evals * 4);
  double VmSpeedup = InterpNs / VmNs;
  double JitSpeedup = VmNs / JitNs;

  double InterpRNs = nsPerRepresentingEval(TreeSP.Prog, Evals);
  double VmRNs = nsPerRepresentingEval(VmSP.Prog, Evals * 4);
  double VmBatchRNs = nsPerBatchedRepresentingEval(VmSP.Prog, Evals * 4);
  double VmRSpeedup = InterpRNs / VmRNs;
  double JitRNs = nsPerRepresentingEval(JitSP.Prog, Evals * 8);
  double JitBatchRNs = nsPerBatchedRepresentingEval(JitSP.Prog, Evals * 8);

  // The wide-execution lane: batched FOO_R per suite subject, the default
  // batch backend (SIMD when the host and the function are eligible)
  // against forced-scalar runBatch. Two separately compiled programs per
  // subject so each keeps its own thread-local VM configuration. The
  // suite geomean is what CI gates (>= 1.5x); hosts without AVX2 report
  // simd_available=false and CI skips the gate with a notice.
  const bool SimdOn = bc::Vm::simdAvailable();
  const unsigned SimdLanes = SimdOn ? bc::wide::kWideLanes : 1;
  double SimdLogSum = 0.0;
  unsigned SimdCount = 0;
  std::string SimdRows, SimdJson;
  if (SimdOn) {
    unsigned SuiteEvals = Evals / 4 ? Evals / 4 : 1;
    for (const SourceBenchmark &B : sourceSuite()) {
      SourceProgramOptions ScalarOpts;
      ScalarOpts.Interp.Simd = VmSimd::Off;
      SourceProgram WideSP = compileSourceProgram(B.Source, B.Name);
      SourceProgram ScalarSP =
          compileSourceProgram(B.Source, B.Name, ScalarOpts);
      if (!WideSP.success() || !ScalarSP.success())
        continue;
      double SimdNs = nsPerBatchedRepresentingEval(WideSP.Prog, SuiteEvals);
      double ScalarNs =
          nsPerBatchedRepresentingEval(ScalarSP.Prog, SuiteEvals);
      double Speedup = ScalarNs / SimdNs;
      SimdLogSum += std::log(Speedup);
      ++SimdCount;
      char Buf[256];
      std::snprintf(Buf, sizeof(Buf), "%s%s %.2fx", SimdRows.empty() ? "" : "  ",
                    B.Name.c_str(), Speedup);
      SimdRows += Buf;
      std::snprintf(Buf, sizeof(Buf),
                    "%s    {\"name\": \"%s\", \"simd_ns\": %.3f, "
                    "\"scalar_ns\": %.3f, \"speedup\": %.3f}",
                    SimdJson.empty() ? "" : ",\n", B.Name.c_str(), SimdNs,
                    ScalarNs, Speedup);
      SimdJson += Buf;
    }
  }
  double SimdGeomean = SimdCount ? std::exp(SimdLogSum / SimdCount) : 0.0;

  // The wide-JIT lane: batched FOO_R through the 4-lane native fragments
  // (JIT tier, SIMD on) against the scalar-fragment batch (JIT tier, SIMD
  // forced off) per suite subject. This is the composition of the two
  // accelerators above, so the interesting figure is again the suite
  // geomean, gated >= 1.3x by CI whenever both are available; the
  // divergence-heavy subjects (sqrt) are expected near 1x — the
  // low-completion bail-out hands them back to the scalar fragments.
  const bool WideJitOn = JitOn && SimdOn;
  double WideJitLogSum = 0.0;
  unsigned WideJitCount = 0;
  std::string WideJitRows, WideJitJson;
  if (WideJitOn) {
    unsigned SuiteEvals = Evals / 2 ? Evals / 2 : 1;
    for (const SourceBenchmark &B : sourceSuite()) {
      SourceProgramOptions WideOpts;
      WideOpts.Tier = ExecutionTier::Jit;
      SourceProgramOptions ScalarOpts;
      ScalarOpts.Tier = ExecutionTier::Jit;
      ScalarOpts.Interp.Simd = VmSimd::Off;
      SourceProgram WideSP = compileSourceProgram(B.Source, B.Name, WideOpts);
      SourceProgram ScalarSP =
          compileSourceProgram(B.Source, B.Name, ScalarOpts);
      if (!WideSP.success() || !ScalarSP.success())
        continue;
      // Interleave the two sides (like the jit_speedup lanes) so host
      // drift cancels out of the gated ratio.
      double WideNs = 1e300, ScalarNs = 1e300;
      for (int Rep = 0; Rep < 2; ++Rep) {
        WideNs = std::min(
            WideNs, nsPerBatchedRepresentingEval(WideSP.Prog, SuiteEvals));
        ScalarNs = std::min(
            ScalarNs, nsPerBatchedRepresentingEval(ScalarSP.Prog, SuiteEvals));
      }
      double Speedup = ScalarNs / WideNs;
      WideJitLogSum += std::log(Speedup);
      ++WideJitCount;
      char Buf[256];
      std::snprintf(Buf, sizeof(Buf), "%s%s %.2fx",
                    WideJitRows.empty() ? "" : "  ", B.Name.c_str(), Speedup);
      WideJitRows += Buf;
      std::snprintf(Buf, sizeof(Buf),
                    "%s    {\"name\": \"%s\", \"jit_wide_ns\": %.3f, "
                    "\"jit_scalar_ns\": %.3f, \"speedup\": %.3f}",
                    WideJitJson.empty() ? "" : ",\n", B.Name.c_str(), WideNs,
                    ScalarNs, Speedup);
      WideJitJson += Buf;
    }
  }
  double WideJitGeomean =
      WideJitCount ? std::exp(WideJitLogSum / WideJitCount) : 0.0;

  double InterpCampaign = campaignMs(TreeSP.Prog);
  double VmCampaign = campaignMs(VmSP.Prog);

  std::printf("Execution-tier benchmarks on s_tanh.c (Fig. 1)\n\n");
  std::printf("dispatch %s, fusion on: %u superinsns (%u -> %u insns), "
              "pool %u slots\n\n",
              DispatchMode, Fusion.Superinsns, Fusion.InsnsBeforeFusion,
              Fusion.InsnsAfterFusion, Fusion.PoolSize);
  std::printf("frontend (parse + Sema)        %10.1f us/compile\n",
              FrontendUs);
  std::printf("bytecode compile               %10.1f us/compile\n\n",
              BytecodeUs);
  std::printf("plain evaluation               native %8.1f ns | "
              "tree-walker %8.1f ns | VM %8.1f ns\n",
              NativeNs, InterpNs, VmNs);
  std::printf("  VM ablations                 switch-dispatch %8.1f ns | "
              "unfused %8.1f ns\n",
              VmSwitchNs, VmUnfusedNs);
  std::printf("  VM speedup over tree-walker  %10.2fx (CI gate: >= 4x)\n",
              VmSpeedup);
  std::printf("  JIT tier                     %8.1f ns%s\n", JitNs,
              JitOn ? "" : "  (COVERME_JIT off: VM fall-back)");
  std::printf("  JIT speedup over fused VM    %10.2fx (CI gate: >= 2x)\n",
              JitSpeedup);
  std::printf("FOO_R evaluation (pen live)    tree-walker %8.1f ns | "
              "VM %8.1f ns  (%.2fx) | VM batched %8.1f ns\n",
              InterpRNs, VmRNs, VmRSpeedup, VmBatchRNs);
  std::printf("  JIT FOO_R                    %8.1f ns | batched %8.1f ns\n",
              JitRNs, JitBatchRNs);
  if (SimdOn) {
    std::printf("  VM batched SIMD lane         %u lanes, suite geomean "
                "%.2fx over scalar runBatch (CI gate: >= 1.5x)\n",
                SimdLanes, SimdGeomean);
    std::printf("    %s\n", SimdRows.c_str());
  } else {
    std::printf("  VM batched SIMD lane         unavailable "
                "(no AVX2 on this host or COVERME_VM_SIMD off)\n");
  }
  if (WideJitOn) {
    std::printf("  wide-JIT batch lane          suite geomean %.2fx over "
                "scalar-JIT runBatch (CI gate: >= 1.3x)\n",
                WideJitGeomean);
    std::printf("    %s\n", WideJitRows.c_str());
  } else {
    std::printf("  wide-JIT batch lane          unavailable "
                "(needs COVERME_JIT + COVERME_VM_SIMD + AVX2)\n");
  }
  std::printf("campaign, n_start=100          tree-walker %8.1f ms | "
              "VM %8.1f ms\n",
              InterpCampaign, VmCampaign);

  if (Json) {
    std::FILE *F = std::fopen(JsonPath.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "cannot open %s\n", JsonPath.c_str());
      return 1;
    }
    std::fprintf(
        F,
        "{\n"
        "  \"bench\": \"interp\",\n"
        "  \"evals\": %u,\n"
        "  \"dispatch_mode\": \"%s\",\n"
        "  \"fusion\": {\"enabled\": %s, \"superinsns\": %u, "
        "\"insns_before\": %u, \"insns_after\": %u, \"pool_slots\": %u, "
        "\"pool_requests\": %u},\n"
        "  \"frontend_us_per_compile\": %.3f,\n"
        "  \"bytecode_compile_us_per_compile\": %.3f,\n"
        "  \"native_ns_per_eval\": %.3f,\n"
        "  \"interp_ns_per_eval\": %.3f,\n"
        "  \"vm_ns_per_eval\": %.3f,\n"
        "  \"vm_switch_ns_per_eval\": %.3f,\n"
        "  \"vm_unfused_ns_per_eval\": %.3f,\n"
        "  \"vm_speedup\": %.3f,\n"
        "  \"jit_available\": %s,\n"
        "  \"jit_ns_per_eval\": %.3f,\n"
        "  \"jit_speedup\": %.3f,\n"
        "  \"interp_foo_r_ns_per_eval\": %.3f,\n"
        "  \"vm_foo_r_ns_per_eval\": %.3f,\n"
        "  \"vm_foo_r_batch_ns_per_eval\": %.3f,\n"
        "  \"vm_foo_r_speedup\": %.3f,\n"
        "  \"jit_foo_r_ns_per_eval\": %.3f,\n"
        "  \"jit_foo_r_batch_ns_per_eval\": %.3f,\n"
        "  \"simd_available\": %s,\n"
        "  \"simd_lanes\": %u,\n"
        "  \"vm_batch_simd\": [\n%s\n  ],\n"
        "  \"vm_batch_simd_speedup\": %.3f,\n"
        "  \"jit_wide_available\": %s,\n"
        "  \"jit_wide\": [\n%s\n  ],\n"
        "  \"jit_wide_speedup\": %.3f,\n"
        "  \"interp_campaign_ms\": %.3f,\n"
        "  \"vm_campaign_ms\": %.3f\n"
        "}\n",
        Evals, DispatchMode, Fusion.FusionEnabled ? "true" : "false",
        Fusion.Superinsns, Fusion.InsnsBeforeFusion,
        Fusion.InsnsAfterFusion, Fusion.PoolSize, Fusion.PoolRequests,
        FrontendUs, BytecodeUs, NativeNs, InterpNs, VmNs, VmSwitchNs,
        VmUnfusedNs, VmSpeedup, JitOn ? "true" : "false", JitNs, JitSpeedup,
        InterpRNs, VmRNs, VmBatchRNs, VmRSpeedup, JitRNs, JitBatchRNs,
        SimdOn ? "true" : "false", SimdLanes, SimdJson.c_str(), SimdGeomean,
        WideJitOn ? "true" : "false", WideJitJson.c_str(), WideJitGeomean,
        InterpCampaign, VmCampaign);
    std::fclose(F);
    std::printf("\nwrote %s\n", JsonPath.c_str());
  }
  return 0;
}
