//===- bench_interp.cpp - Source-pipeline benchmarks (google-benchmark) -----===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// Quantifies what the from-source pipeline costs relative to the natively
// compiled ports: frontend throughput (parse + sema per compile), one
// interpreted FOO_R evaluation vs one native evaluation on the same
// function (s_tanh.c, the paper's Fig. 1), and a whole interpreted
// campaign. The paper's implementation pays a similar toll in its Python
// optimizer loop and .so round-trips; the interpreter trades constant
// factors for zero build steps.
//
//===----------------------------------------------------------------------===//

#include "core/CoverMe.h"
#include "fdlibm/Fdlibm.h"
#include "lang/SourceProgram.h"
#include "runtime/ExecutionContext.h"
#include "runtime/RepresentingFunction.h"

#include <benchmark/benchmark.h>

using namespace coverme;

namespace {

/// s_tanh.c (Fig. 1) in the supported subset; matches the native port's
/// 6-site structure.
const char *TanhSource =
    "static const double one = 1.0, two = 2.0, tiny = 1.0e-300;\n"
    "double tanh(double x) {\n"
    "  double t, z;\n"
    "  int jx, ix;\n"
    "  jx = *(1 + (int *)&x);\n"
    "  ix = jx & 0x7fffffff;\n"
    "  if (ix >= 0x7ff00000) {\n"
    "    if (jx >= 0) return one / x + one;\n"
    "    else return one / x - one;\n"
    "  }\n"
    "  if (ix < 0x40360000) {\n"
    "    if (ix < 0x3c800000)\n"
    "      return x * (one + x);\n"
    "    if (ix >= 0x3ff00000) {\n"
    "      t = expm1(two * fabs(x));\n"
    "      z = one - two / (t + two);\n"
    "    } else {\n"
    "      t = expm1(-two * fabs(x));\n"
    "      z = -t / (t + two);\n"
    "    }\n"
    "  } else {\n"
    "    z = one - tiny;\n"
    "  }\n"
    "  if (jx >= 0) return z;\n"
    "  else return -z;\n"
    "}\n";

const lang::SourceProgram &tanhFromSource() {
  static lang::SourceProgram SP =
      lang::compileSourceProgram(TanhSource, "tanh");
  return SP;
}

} // namespace

/// Frontend cost: parse + analyze + wrap, per call.
static void BM_CompileSourceProgram(benchmark::State &State) {
  for (auto _ : State) {
    lang::SourceProgram SP = lang::compileSourceProgram(TanhSource, "tanh");
    benchmark::DoNotOptimize(SP.Prog.NumSites);
  }
}
BENCHMARK(BM_CompileSourceProgram);

/// One interpreted execution, no instrumentation context installed.
static void BM_InterpretedExecution(benchmark::State &State) {
  const lang::SourceProgram &SP = tanhFromSource();
  std::vector<double> X = {0.75};
  for (auto _ : State) {
    benchmark::DoNotOptimize(SP.Prog.Body(X.data()));
    X[0] += 1e-9;
  }
}
BENCHMARK(BM_InterpretedExecution);

/// One native-port execution for the same function — the speed ratio with
/// the benchmark above is the interpreter's constant factor.
static void BM_NativeExecution(benchmark::State &State) {
  const Program *P = fdlibm::lookup("tanh");
  std::vector<double> X = {0.75};
  for (auto _ : State) {
    benchmark::DoNotOptimize(P->Body(X.data()));
    X[0] += 1e-9;
  }
}
BENCHMARK(BM_NativeExecution);

/// One interpreted FOO_R evaluation (hooks firing, pen updating r).
static void BM_InterpretedRepresentingFunction(benchmark::State &State) {
  const lang::SourceProgram &SP = tanhFromSource();
  ExecutionContext Ctx(SP.Prog.NumSites);
  RepresentingFunction FR(SP.Prog, Ctx);
  std::vector<double> X = {0.75};
  for (auto _ : State) {
    benchmark::DoNotOptimize(FR(X));
    X[0] += 1e-9;
  }
}
BENCHMARK(BM_InterpretedRepresentingFunction);

/// An entire campaign over the interpreted tanh (Algorithm 1 end to end).
static void BM_InterpretedCampaign(benchmark::State &State) {
  const lang::SourceProgram &SP = tanhFromSource();
  for (auto _ : State) {
    CoverMeOptions Opts;
    Opts.NStart = 100;
    Opts.Seed = 1;
    CampaignResult Res = CoverMe(SP.Prog, Opts).run();
    benchmark::DoNotOptimize(Res.CoveredBranches);
  }
}
BENCHMARK(BM_InterpretedCampaign)->Unit(benchmark::kMillisecond);

/// The same campaign over the native port, for the end-to-end ratio.
static void BM_NativeCampaign(benchmark::State &State) {
  const Program *P = fdlibm::lookup("tanh");
  for (auto _ : State) {
    CoverMeOptions Opts;
    Opts.NStart = 100;
    Opts.Seed = 1;
    CampaignResult Res = CoverMe(*P, Opts).run();
    benchmark::DoNotOptimize(Res.CoveredBranches);
  }
}
BENCHMARK(BM_NativeCampaign)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
