//===- bench_session.cpp - Compiled-unit cache amortization ----------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// Measures the service layer's reason to exist: a persistent session
// amortizes the frontend (parse, Sema, lowering, fusion, JIT) across
// submissions, so a repeat submission of the same source must cost a hash
// lookup, not a compile. Two lanes:
//
//   * cache lane — CompiledUnitCache directly: cold get() (one full
//     compile) vs hot get() (hash + map lookup), per subject.
//   * session lane — end-to-end Session::submit + wait for a tiny
//     campaign, first submission (compiling) vs repeat (cache hit), which
//     bounds what a serve client actually observes.
//
// `--json[=path]` writes BENCH_session.json with per-subject rows plus the
// derived minimum the CI service gate checks:
//   min_compile_amortization — min over subjects of cold-compile ns /
//                              hot-lookup ns (gated >= 10).
//
// Usage: bench_session [--json[=path]] [--hits=N]
//
//===----------------------------------------------------------------------===//

#include "core/CoverMe.h"
#include "lang/SourceSuite.h"
#include "service/Session.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace coverme;

namespace {

struct Row {
  std::string Subject;
  double ColdCompileNs = 0; // one full frontend run
  double HotLookupNs = 0;   // one cache hit, averaged over Hits lookups
  double Amortization = 0;  // ColdCompileNs / HotLookupNs
  double FirstSubmitSeconds = 0;  // Session end-to-end, compiling
  double RepeatSubmitSeconds = 0; // Session end-to-end, cache hit
};

Row measureSubject(const lang::SourceBenchmark &Entry, unsigned Hits) {
  Row R;
  R.Subject = Entry.Name;

  lang::SourceProgramOptions Opts; // default tier: fused VM (+ JIT if built)
  Opts.TotalLines = Entry.PaperLines;
  CompiledUnitCache Cache;
  WallTimer Cold;
  auto Unit = Cache.get(Entry.Source, Entry.Name, Opts);
  R.ColdCompileNs = Cold.seconds() * 1e9;
  if (!Unit) {
    std::fprintf(stderr, "subject '%s' failed to compile\n",
                 Entry.Name.c_str());
    std::exit(1);
  }

  WallTimer Hot;
  for (unsigned I = 0; I < Hits; ++I)
    (void)Cache.get(Entry.Source, Entry.Name, Opts);
  R.HotLookupNs = Hot.seconds() * 1e9 / Hits;
  R.Amortization = R.ColdCompileNs / R.HotLookupNs;

  // End-to-end through a session: identical tiny campaigns, differing only
  // in whether the unit was already resident.
  Session S;
  JobRequest Req;
  Req.Source = Entry.Source;
  Req.Entry = Entry.Name;
  Req.Compile = Opts;
  Req.Campaign.Seed = 7;
  Req.Campaign.NStart = 2;
  WallTimer First;
  uint64_t Id = S.submit(Req);
  S.wait(Id);
  R.FirstSubmitSeconds = First.seconds();
  WallTimer Repeat;
  Id = S.submit(Req);
  S.wait(Id);
  R.RepeatSubmitSeconds = Repeat.seconds();
  return R;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath;
  unsigned Hits = 1000;
  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (std::strcmp(Arg, "--json") == 0) {
      JsonPath = "BENCH_session.json";
    } else if (std::strncmp(Arg, "--json=", 7) == 0) {
      JsonPath = Arg + 7;
    } else if (std::strncmp(Arg, "--hits=", 7) == 0) {
      Hits = static_cast<unsigned>(std::atoi(Arg + 7));
    } else {
      std::fprintf(stderr, "usage: %s [--json[=path]] [--hits=N]\n", argv[0]);
      return 2;
    }
  }
  if (Hits == 0)
    Hits = 1;

  std::vector<Row> Rows;
  for (const lang::SourceBenchmark &Entry : lang::sourceSuite())
    Rows.push_back(measureSubject(Entry, Hits));

  std::printf("Compiled-unit cache amortization (%u hot lookups/subject)\n\n",
              Hits);
  std::printf("%-14s %14s %12s %14s %12s %12s\n", "subject", "cold ns",
              "hot ns", "amortization", "submit1 s", "submit2 s");
  double MinAmortization = Rows.empty() ? 0 : Rows[0].Amortization;
  for (const Row &R : Rows) {
    std::printf("%-14s %14.0f %12.1f %13.0fx %12.6f %12.6f\n",
                R.Subject.c_str(), R.ColdCompileNs, R.HotLookupNs,
                R.Amortization, R.FirstSubmitSeconds, R.RepeatSubmitSeconds);
    if (R.Amortization < MinAmortization)
      MinAmortization = R.Amortization;
  }
  std::printf("\nmin compile amortization: %.0fx\n", MinAmortization);

  if (!JsonPath.empty()) {
    std::FILE *F = std::fopen(JsonPath.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "cannot open %s\n", JsonPath.c_str());
      return 1;
    }
    std::fprintf(F, "{\n  \"bench\": \"session\",\n  \"hits\": %u,\n"
                    "  \"rows\": [\n",
                 Hits);
    for (size_t I = 0; I < Rows.size(); ++I) {
      const Row &R = Rows[I];
      std::fprintf(F,
                   "    {\"subject\": \"%s\", \"compile_cold_ns\": %.1f, "
                   "\"cache_hit_ns\": %.1f, \"compile_amortization\": %.1f, "
                   "\"first_submit_seconds\": %.6f, "
                   "\"repeat_submit_seconds\": %.6f}%s\n",
                   R.Subject.c_str(), R.ColdCompileNs, R.HotLookupNs,
                   R.Amortization, R.FirstSubmitSeconds,
                   R.RepeatSubmitSeconds, I + 1 < Rows.size() ? "," : "");
    }
    std::fprintf(F, "  ],\n  \"min_compile_amortization\": %.1f\n}\n",
                 MinAmortization);
    std::fclose(F);
    std::printf("wrote %s\n", JsonPath.c_str());
  }
  return 0;
}
