//===- bench_table3.cpp - Table 3: CoverMe vs Austin ------------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// Regenerates Table 3: CoverMe against the search-based tester Austin
// (AVM). Expected shape: Austin's coverage lands near Rand's (paper mean
// 42.8% vs CoverMe's 90.8%) while spending orders of magnitude more effort
// per covered branch; the speedup column reports CoverMe's advantage in
// executions-per-covered-branch, the substrate-independent analogue of the
// paper's wall-clock speedup (their Austin ran out of process, ours
// in-process, so raw seconds are not comparable).
//
// Usage: bench_table3 [n_start] [seed]
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "fdlibm/Fdlibm.h"
#include "support/Table.h"

#include <cstdio>

using namespace coverme;
using namespace coverme::bench;

int main(int Argc, char **Argv) {
  Protocol Proto = protocolFromArgs(Argc, Argv);
  Proto.RunRand = false;
  Proto.RunAfl = false;
  // Austin runs until it decides no more coverage is attainable; a 100x
  // execution budget is the bounded stand-in for run-to-exhaustion (its
  // wall time in the paper averages ~878x CoverMe's).
  Proto.BudgetMultiplier = 100.0;

  const ProgramRegistry &Reg = fdlibm::registry();
  const std::vector<fdlibm::PaperRow> &Paper = fdlibm::paperRows();

  std::printf("Table 3: CoverMe versus Austin (branch coverage, %%)\n"
              "Austin budget: 10x CoverMe evaluations, split per target "
              "branch\n\n");

  Table T({"program", "function", "Austin", "CoverMe", "paper(Au/CM)",
           "speedup", "improvement"});
  double SumAu = 0, SumCm = 0, SumSpeedup = 0;
  size_t N = Reg.programs().size(), SpeedupN = 0;

  for (size_t I = 0; I < N; ++I) {
    const Program &P = Reg.programs()[I];
    RowResult Row = runRow(P, Proto);
    double Cm = 100.0 * Row.CoverMe.BranchCoverage;
    double Au = 100.0 * Row.Austin.BranchCoverage;
    SumAu += Au;
    SumCm += Cm;
    // Effort per covered branch: executions / covered arms.
    double CmEffort = static_cast<double>(Row.CoverMe.Evaluations) /
                      std::max(1u, Row.CoverMe.CoveredBranches);
    double AuEffort = static_cast<double>(Row.Austin.Executions) /
                      std::max(1u, Row.Austin.Coverage.coveredArms());
    double Speedup = AuEffort / CmEffort;
    SumSpeedup += Speedup;
    ++SpeedupN;
    char PaperCell[32];
    if (Paper[I].AustinPct < 0)
      std::snprintf(PaperCell, sizeof(PaperCell), "n/a/%.1f",
                    Paper[I].CoverMePct);
    else
      std::snprintf(PaperCell, sizeof(PaperCell), "%.1f/%.1f",
                    Paper[I].AustinPct, Paper[I].CoverMePct);
    T.addRow({P.File, P.Name, Table::cell(Au), Table::cell(Cm), PaperCell,
              Table::cell(Speedup, 1) + "x", Table::cell(Cm - Au)});
  }
  double DN = static_cast<double>(N);
  T.addRow({"MEAN", "", Table::cell(SumAu / DN), Table::cell(SumCm / DN),
            "42.8/90.8",
            Table::cell(SumSpeedup / static_cast<double>(SpeedupN), 1) + "x",
            Table::cell((SumCm - SumAu) / DN)});

  std::fputs(T.toAscii().c_str(), stdout);
  std::printf("\npaper means: Austin 42.8, CoverMe 90.8, speedup 3868x, "
              "improvement 48.9\n");
  return 0;
}
