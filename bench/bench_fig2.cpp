//===- bench_fig2.cpp - Figure 2: local and global optimization --------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// Regenerates both panels of Figure 2:
//
// (a) local optimization on f(x) = x <= 1 ? 0 : (x-1)^2 — a local
//     minimizer started right of the kink converges onto the plateau;
// (b) global optimization (Basinhopping/MCMC) on
//     f(x) = x <= 1 ? ((x+1)^2 - 4)^2 : (x^2 - 4)^2,
//     whose global minima are x in {-3, 1, 2} — the Monte-Carlo moves
//     (p1 -> p2, p3 -> p4 in the figure) hop between basins that local
//     descent alone cannot leave.
//
// Output: the sampled trajectory of each run (iteration, x, f(x)).
//
//===----------------------------------------------------------------------===//

#include "optim/Basinhopping.h"
#include "optim/Powell.h"

#include <cmath>
#include <cstdio>

using namespace coverme;

int main() {
  // Panel (a): local optimization.
  auto FA = [](const double *X, size_t) {
    return X[0] <= 1.0 ? 0.0 : (X[0] - 1.0) * (X[0] - 1.0);
  };
  PowellMinimizer Powell;
  MinimizeResult LocalRes = Powell.minimize(FA, {7.5});
  std::printf("Figure 2(a): local optimization of x<=1 ? 0 : (x-1)^2 from "
              "x0=7.5\n");
  std::printf("  minimum point x* = %.6f, f(x*) = %.6g, evals = %llu, "
              "converged on the x<=1 plateau: %s\n\n",
              LocalRes.X[0], LocalRes.Fx,
              static_cast<unsigned long long>(LocalRes.NumEvals),
              LocalRes.X[0] <= 1.0 + 1e-6 ? "yes" : "no");

  // Panel (b): MCMC over the two-basin curve.
  auto FB = [](const double *X, size_t) {
    double V = X[0];
    if (V <= 1.0) {
      double T = (V + 1.0) * (V + 1.0) - 4.0;
      return T * T;
    }
    double T = V * V - 4.0;
    return T * T;
  };
  std::printf("Figure 2(b): Basinhopping on x<=1 ? ((x+1)^2-4)^2 : "
              "(x^2-4)^2 (global minima at -3, 1, 2)\n");
  std::printf("  %-5s %-22s %-14s\n", "iter", "x", "f(x)");
  Rng Rng(7);
  BasinhoppingOptions Opts;
  Opts.NIter = 12;
  BasinhoppingMinimizer BH(Powell, Opts);
  unsigned Iter = 0;
  BasinhoppingCallback Trace = [&](const std::vector<double> &X, double Fx) {
    std::printf("  %-5u %-22.12g %-14.6g\n", Iter++, X[0], Fx);
    return false; // Run all iterations to show the hops.
  };
  MinimizeResult Res = BH.minimize(FB, {6.0}, Rng, Trace);
  bool AtGlobal = std::fabs(Res.X[0] + 3.0) < 1e-5 ||
                  std::fabs(Res.X[0] - 1.0) < 1e-5 ||
                  std::fabs(Res.X[0] - 2.0) < 1e-5;
  std::printf("\n  final minimum point x* = %.9g (global minimum reached: "
              "%s)\n",
              Res.X[0], AtGlobal ? "yes" : "no");
  return AtGlobal ? 0 : 1;
}
