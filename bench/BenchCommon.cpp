//===- BenchCommon.cpp - Shared experiment drivers ---------------------------===//

#include "bench/BenchCommon.h"

#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

using namespace coverme;
using namespace coverme::bench;

namespace {
volatile double EvalSink = 0.0; ///< Defeats dead-code elimination.
} // namespace

double coverme::bench::nsPerBodyEval(const Program &P, unsigned Evals) {
  std::vector<double> X(P.Arity, 0.75);
  double Best = 1e300;
  for (int Rep = 0; Rep < 3; ++Rep) {
    WallTimer T;
    for (unsigned I = 0; I < Evals; ++I) {
      X[0] = 0.75 + 1e-9 * static_cast<double>(I % 1024);
      EvalSink = P.Body(X.data());
    }
    double S = T.seconds();
    if (S < Best)
      Best = S;
  }
  return Best * 1e9 / Evals;
}

RowResult coverme::bench::runRow(const Program &P, const Protocol &Proto) {
  RowResult Row;
  Row.Prog = &P;

  CoverMeOptions CmOpts;
  CmOpts.NStart = Proto.NStart;
  CmOpts.NIter = Proto.NIter;
  CmOpts.Seed = Proto.Seed;
  CoverMe Engine(P, CmOpts);
  Row.CoverMe = Engine.run();

  uint64_t Budget = static_cast<uint64_t>(
      Proto.BudgetMultiplier * static_cast<double>(Row.CoverMe.Evaluations));
  // Floor so trivial programs still exercise the baselines meaningfully.
  if (Budget < 10000)
    Budget = 10000;

  if (Proto.RunRand) {
    RandomTesterOptions RandOpts;
    RandOpts.Seed = Proto.Seed;
    Row.Rand = RandomTester(P, RandOpts).run(Budget);
  }
  if (Proto.RunAfl) {
    AflOptions AflOpts;
    AflOpts.Seed = Proto.Seed;
    Row.Afl = AflFuzzer(P, AflOpts).run(Budget);
  }
  if (Proto.RunAustin) {
    AustinOptions AOpts;
    AOpts.Seed = Proto.Seed;
    AOpts.PerTargetExecutions =
        P.NumSites ? Budget / (2 * P.NumSites) : Budget;
    Row.Austin = AustinTester(P, AOpts).run(Budget);
  }
  return Row;
}

Protocol coverme::bench::protocolFromArgs(int Argc, char **Argv) {
  Protocol Proto;
  int Positional = 0;
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--threads=", 10) == 0) {
      char *End = nullptr;
      long Threads = std::strtol(Arg + 10, &End, 10);
      if (End == Arg + 10 || *End != '\0' || Threads < 0 || Threads > 4096) {
        std::fprintf(stderr,
                     "%s: bad --threads value '%s' (want 0..4096, 0 = all "
                     "cores)\n",
                     Argv[0], Arg + 10);
        std::exit(2);
      }
      Proto.Threads = static_cast<unsigned>(Threads);
    } else if (std::strcmp(Arg, "--json") == 0) {
      Proto.Json = true;
    } else if (std::strncmp(Arg, "--json=", 7) == 0) {
      Proto.Json = true;
      Proto.JsonPath = Arg + 7;
    } else if (std::strncmp(Arg, "--", 2) == 0) {
      // A typoed flag must not fall through to atoi (it would silently
      // become n_start=0 and run a zero-round sweep).
      std::fprintf(stderr,
                   "%s: unknown flag '%s'\n"
                   "usage: %s [n_start] [seed] [--threads=N] [--json[=path]]\n",
                   Argv[0], Arg, Argv[0]);
      std::exit(2);
    } else if (++Positional == 1) {
      Proto.NStart = static_cast<unsigned>(std::atoi(Arg));
    } else if (Positional == 2) {
      Proto.Seed = static_cast<uint64_t>(std::atoll(Arg));
    }
  }
  return Proto;
}

namespace {

/// Minimal JSON string escaping (names here are identifiers and paths, but
/// stay correct on principle).
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
      continue;
    }
    Out += C;
  }
  return Out;
}

void printTester(std::FILE *F, const char *Name, const TesterResult &T,
                 const char *Sep) {
  std::fprintf(F,
               "      \"%s\": {\"branch_coverage\": %.6f, "
               "\"line_coverage\": %.6f, \"executions\": %llu, "
               "\"seconds\": %.6f, \"corpus\": %zu}%s\n",
               Name, T.BranchCoverage, T.LineCoverage,
               static_cast<unsigned long long>(T.Executions), T.Seconds,
               T.CorpusSize, Sep);
}

} // namespace

std::string coverme::bench::writeRowsJson(const Protocol &Proto,
                                          const std::string &BenchName,
                                          const std::vector<RowResult> &Rows,
                                          double SweepWallSeconds) {
  std::string Path =
      Proto.JsonPath.empty() ? "BENCH_" + BenchName + ".json" : Proto.JsonPath;
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "writeRowsJson: cannot open %s\n", Path.c_str());
    return "";
  }

  double SumCm = 0, SumRand = 0, SumAfl = 0, SumAustin = 0, SumSeconds = 0;
  std::fprintf(F,
               "{\n"
               "  \"bench\": \"%s\",\n"
               "  \"protocol\": {\"n_start\": %u, \"n_iter\": %u, "
               "\"seed\": %llu, \"budget_multiplier\": %.1f, "
               "\"threads\": %u},\n"
               "  \"sweep_wall_seconds\": %.6f,\n"
               "  \"rows\": [\n",
               jsonEscape(BenchName).c_str(), Proto.NStart, Proto.NIter,
               static_cast<unsigned long long>(Proto.Seed),
               Proto.BudgetMultiplier, Proto.Threads, SweepWallSeconds);

  for (size_t I = 0; I < Rows.size(); ++I) {
    const RowResult &Row = Rows[I];
    const CampaignResult &Cm = Row.CoverMe;
    SumCm += Cm.BranchCoverage;
    SumRand += Row.Rand.BranchCoverage;
    SumAfl += Row.Afl.BranchCoverage;
    SumAustin += Row.Austin.BranchCoverage;
    SumSeconds += Cm.Seconds;
    std::fprintf(F,
                 "    {\"file\": \"%s\", \"function\": \"%s\", "
                 "\"branches\": %u,\n"
                 "      \"coverme\": {\"branch_coverage\": %.6f, "
                 "\"line_coverage\": %.6f, \"covered\": %u, "
                 "\"evaluations\": %llu, \"seconds\": %.6f, \"inputs\": %zu, "
                 "\"starts_used\": %u, \"all_saturated\": %s, "
                 "\"infeasible_marked\": %zu}%s\n",
                 jsonEscape(Row.Prog ? Row.Prog->File : "").c_str(),
                 jsonEscape(Row.Prog ? Row.Prog->Name : "").c_str(),
                 Row.Prog ? Row.Prog->numBranches() : 0, Cm.BranchCoverage,
                 Cm.LineCoverage, Cm.CoveredBranches,
                 static_cast<unsigned long long>(Cm.Evaluations), Cm.Seconds,
                 Cm.Inputs.size(), Cm.StartsUsed,
                 Cm.AllSaturated ? "true" : "false",
                 Cm.InfeasibleMarked.size(),
                 (Proto.RunRand || Proto.RunAfl || Proto.RunAustin) ? ","
                                                                    : "");
    if (Proto.RunRand)
      printTester(F, "rand", Row.Rand,
                  (Proto.RunAfl || Proto.RunAustin) ? "," : "");
    if (Proto.RunAfl)
      printTester(F, "afl", Row.Afl, Proto.RunAustin ? "," : "");
    if (Proto.RunAustin)
      printTester(F, "austin", Row.Austin, "");
    std::fprintf(F, "    }%s\n", I + 1 < Rows.size() ? "," : "");
  }

  double N = Rows.empty() ? 1.0 : static_cast<double>(Rows.size());
  std::fprintf(F,
               "  ],\n"
               "  \"means\": {\"coverme_branch_coverage\": %.6f, "
               "\"rand_branch_coverage\": %.6f, "
               "\"afl_branch_coverage\": %.6f, "
               "\"austin_branch_coverage\": %.6f, "
               "\"coverme_seconds\": %.6f}\n"
               "}\n",
               SumCm / N, SumRand / N, SumAfl / N, SumAustin / N,
               SumSeconds / N);
  std::fclose(F);
  return Path;
}
