//===- BenchCommon.cpp - Shared experiment drivers ---------------------------===//

#include "bench/BenchCommon.h"

#include <cstdlib>

using namespace coverme;
using namespace coverme::bench;

RowResult coverme::bench::runRow(const Program &P, const Protocol &Proto) {
  RowResult Row;
  Row.Prog = &P;

  CoverMeOptions CmOpts;
  CmOpts.NStart = Proto.NStart;
  CmOpts.NIter = Proto.NIter;
  CmOpts.Seed = Proto.Seed;
  CoverMe Engine(P, CmOpts);
  Row.CoverMe = Engine.run();

  uint64_t Budget = static_cast<uint64_t>(
      Proto.BudgetMultiplier * static_cast<double>(Row.CoverMe.Evaluations));
  // Floor so trivial programs still exercise the baselines meaningfully.
  if (Budget < 10000)
    Budget = 10000;

  if (Proto.RunRand) {
    RandomTesterOptions RandOpts;
    RandOpts.Seed = Proto.Seed;
    Row.Rand = RandomTester(P, RandOpts).run(Budget);
  }
  if (Proto.RunAfl) {
    AflOptions AflOpts;
    AflOpts.Seed = Proto.Seed;
    Row.Afl = AflFuzzer(P, AflOpts).run(Budget);
  }
  if (Proto.RunAustin) {
    AustinOptions AOpts;
    AOpts.Seed = Proto.Seed;
    AOpts.PerTargetExecutions =
        P.NumSites ? Budget / (2 * P.NumSites) : Budget;
    Row.Austin = AustinTester(P, AOpts).run(Budget);
  }
  return Row;
}

Protocol coverme::bench::protocolFromArgs(int Argc, char **Argv) {
  Protocol Proto;
  if (Argc > 1)
    Proto.NStart = static_cast<unsigned>(std::atoi(Argv[1]));
  if (Argc > 2)
    Proto.Seed = static_cast<uint64_t>(std::atoll(Argv[2]));
  return Proto;
}
