//===- BenchCommon.h - Shared experiment drivers ---------------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experiment protocol shared by the table/figure benches:
///
/// * CoverMe runs first with the paper's parameters (n_start=500, n_iter=5,
///   LM=powell) and early exit on full saturation.
/// * Rand and AFL then receive 10x CoverMe's *program executions* — the
///   paper gives them 10x CoverMe's wall time; executions are the
///   equivalent budget on this shared in-process substrate, and remove
///   timer noise from the comparison.
/// * Austin receives the same 10x budget split per target branch; like the
///   real tool it stops when every target is covered or exhausted.
///
/// The sweep drivers (bench_table2, bench_source_suite) shard whole rows
/// across a CampaignRunner pool (`--threads=N`); every row is seeded
/// independently, so results are identical for any thread count. With
/// `--json[=path]` they additionally emit a machine-readable
/// `BENCH_<name>.json` record for perf tracking.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_BENCH_BENCHCOMMON_H
#define COVERME_BENCH_BENCHCOMMON_H

#include "core/CampaignRunner.h"
#include "core/CoverMe.h"
#include "fuzz/AflFuzzer.h"
#include "fuzz/AustinTester.h"
#include "fuzz/RandomTester.h"

#include <string>
#include <vector>

namespace coverme {
namespace bench {

/// Everything a paper-table row needs about one benchmark function.
struct RowResult {
  const Program *Prog = nullptr;
  CampaignResult CoverMe;  ///< The tool under evaluation.
  TesterResult Rand;       ///< 10x budget.
  TesterResult Afl;        ///< 10x budget.
  TesterResult Austin;     ///< 10x budget, per-target split.
};

/// Shared experiment parameters (override from argv for quick runs).
struct Protocol {
  unsigned NStart = 500;
  unsigned NIter = 5;
  uint64_t Seed = 1;
  double BudgetMultiplier = 10.0; ///< Baselines' budget vs CoverMe's evals.
  bool RunRand = true;
  bool RunAfl = true;
  bool RunAustin = true;
  unsigned Threads = 1;  ///< Row-shard workers for sweeps (0 = all cores).
  bool Json = false;     ///< Emit the BENCH_*.json record.
  std::string JsonPath;  ///< Override path; empty = "BENCH_<bench>.json".
};

/// Runs the full protocol on one program.
RowResult runRow(const Program &P, const Protocol &Proto);

/// Best-of-3 wall measurement of one plain body evaluation, in ns, over a
/// deterministic input sweep. Shared by bench_interp and
/// bench_source_suite so the CI-gated VM speedup and the per-row VMx
/// columns use one methodology.
double nsPerBodyEval(const Program &P, unsigned Evals);

/// Parses `[n_start] [seed]` positional overrides plus `--threads=N` and
/// `--json[=path]` flags shared by the bench mains.
Protocol protocolFromArgs(int Argc, char **Argv);

/// Writes the machine-readable sweep record: protocol, per-row coverage /
/// evaluations / wall time for CoverMe and each enabled baseline, means,
/// and the sweep wall time. Path defaults to "BENCH_<BenchName>.json"
/// (overridden by Proto.JsonPath). Returns the path written, or empty on
/// I/O failure (reported to stderr).
std::string writeRowsJson(const Protocol &Proto, const std::string &BenchName,
                          const std::vector<RowResult> &Rows,
                          double SweepWallSeconds);

} // namespace bench
} // namespace coverme

#endif // COVERME_BENCH_BENCHCOMMON_H
