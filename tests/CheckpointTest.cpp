//===- CheckpointTest.cpp - Golden checkpoint/resume bit-identity ----------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The checkpoint contract, end to end: a campaign suspended at any round
/// boundary, serialized through the versioned snapshot format, and resumed
/// — at any thread count, on any execution tier — must produce a final
/// result bit-identical to the same seeded campaign run uninterrupted.
/// Every comparison is on IEEE bit patterns, never on approximate values.
///
/// The negative half pins the loader: corrupt snapshots (bad magic,
/// truncation at every byte, unknown version, invariant-violating tables)
/// and shape-mismatched snapshots (wrong program) must be rejected before
/// any engine state is touched — the CoverageMap::merge runtime shape
/// check is deliberately the loader's rejection path.
///
//===----------------------------------------------------------------------===//

#include "core/CampaignEngine.h"
#include "core/Checkpoint.h"
#include "core/CoverMe.h"
#include "fdlibm/Fdlibm.h"
#include "lang/SourceProgram.h"
#include "support/FloatBits.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace coverme;

namespace {

/// Same VM-tier subject the pipeline goldens pin: pure-arithmetic branch
/// thresholds, so trajectories depend only on IEEE semantics and the seed.
const char *ClassifierSource =
    "double classify(double x, double y) {\n"
    "  double s = 0.0;\n"
    "  if (x > 1000.0) s = s + 1.0;\n"
    "  if (y < -2.5) s = s + 2.0;\n"
    "  if (x * x + y * y < 0.25) s = s + 4.0;\n"
    "  if (x == y) s = s + 8.0;\n"
    "  if (x + y > 1.0e20) s = s + 16.0;\n"
    "  return s;\n"
    "}\n";

CoverMeOptions baseOptions(unsigned Threads) {
  CoverMeOptions Opts;
  Opts.NStart = 24;
  Opts.Seed = 7;
  Opts.Threads = Threads;
  // Run the full deterministic round count so every suspension point in
  // [1, NStart) is reachable regardless of how fast the subject saturates.
  Opts.StopWhenAllSaturated = false;
  return Opts;
}

/// Bit-exact equality over everything a campaign result states.
void expectBitIdentical(const CampaignResult &A, const CampaignResult &B,
                        const std::string &What) {
  EXPECT_EQ(A.Evaluations, B.Evaluations) << What;
  EXPECT_EQ(A.StartsUsed, B.StartsUsed) << What;
  EXPECT_EQ(A.CoveredBranches, B.CoveredBranches) << What;
  EXPECT_EQ(A.TotalBranches, B.TotalBranches) << What;
  ASSERT_EQ(A.Inputs.size(), B.Inputs.size()) << What;
  for (size_t I = 0; I < A.Inputs.size(); ++I) {
    ASSERT_EQ(A.Inputs[I].size(), B.Inputs[I].size()) << What;
    for (size_t C = 0; C < A.Inputs[I].size(); ++C)
      EXPECT_EQ(doubleToBits(A.Inputs[I][C]), doubleToBits(B.Inputs[I][C]))
          << What << " input " << I << " coord " << C;
  }
  ASSERT_EQ(A.Rounds.size(), B.Rounds.size()) << What;
  for (size_t I = 0; I < A.Rounds.size(); ++I) {
    EXPECT_EQ(A.Rounds[I].Round, B.Rounds[I].Round) << What;
    EXPECT_EQ(doubleToBits(A.Rounds[I].MinimumValue),
              doubleToBits(B.Rounds[I].MinimumValue))
        << What << " round " << I + 1;
    EXPECT_EQ(A.Rounds[I].Accepted, B.Rounds[I].Accepted)
        << What << " round " << I + 1;
    EXPECT_EQ(A.Rounds[I].MarkedInfeasible, B.Rounds[I].MarkedInfeasible)
        << What << " round " << I + 1;
    EXPECT_EQ(A.Rounds[I].SaturatedArms, B.Rounds[I].SaturatedArms)
        << What << " round " << I + 1;
  }
  ASSERT_EQ(A.InfeasibleMarked.size(), B.InfeasibleMarked.size()) << What;
  for (size_t I = 0; I < A.InfeasibleMarked.size(); ++I) {
    EXPECT_EQ(A.InfeasibleMarked[I].Site, B.InfeasibleMarked[I].Site) << What;
    EXPECT_EQ(A.InfeasibleMarked[I].Outcome, B.InfeasibleMarked[I].Outcome)
        << What;
  }
  CoverageMap::Counters CA = A.Coverage.counters();
  CoverageMap::Counters CB = B.Coverage.counters();
  EXPECT_EQ(CA.TrueHits, CB.TrueHits) << What;
  EXPECT_EQ(CA.FalseHits, CB.FalseHits) << What;
  EXPECT_EQ(CA.TotalHits, CB.TotalHits) << What;
}

/// Suspend at round \p SuspendAt on \p SuspendThreads workers, serialize,
/// decode, resume on \p ResumeThreads workers, and compare the stitched
/// result to \p Reference (the uninterrupted run).
void runSuspendResume(const Program &P, const CampaignResult &Reference,
                      unsigned SuspendAt, unsigned SuspendThreads,
                      unsigned ResumeThreads) {
  const std::string What = "suspend@" + std::to_string(SuspendAt) + " t" +
                           std::to_string(SuspendThreads) + "->t" +
                           std::to_string(ResumeThreads);

  CoverMeOptions Opts = baseOptions(SuspendThreads);
  Opts.SuspendAfterRounds = SuspendAt;
  CampaignEngine Suspending(P, Opts);
  CampaignResult Partial = Suspending.run();
  ASSERT_TRUE(Partial.Suspended) << What;
  ASSERT_EQ(Partial.StartsUsed, SuspendAt) << What;

  // Through the wire format, not just the in-memory struct.
  std::vector<uint8_t> Bytes = encodeSnapshot(Suspending.snapshot());
  CampaignSnapshot Decoded;
  std::string Err;
  ASSERT_TRUE(decodeSnapshot(Bytes, Decoded, Err)) << What << ": " << Err;

  CoverMeOptions ResumeOpts = baseOptions(ResumeThreads);
  CampaignEngine Resuming(P, ResumeOpts);
  ASSERT_TRUE(Resuming.applySnapshot(Decoded, Err)) << What << ": " << Err;
  CampaignResult Full = Resuming.run();
  EXPECT_FALSE(Full.Suspended) << What;
  expectBitIdentical(Full, Reference, What);
}

class CheckpointGoldenTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(CheckpointGoldenTest, VmTierSuspendResumeMatchesUninterrupted) {
  lang::SourceProgram SP =
      lang::compileSourceProgram(ClassifierSource, "classify");
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  CampaignResult Reference = CoverMe(SP.Prog, baseOptions(1)).run();
  for (unsigned SuspendAt : {1u, 5u, 12u, 23u})
    runSuspendResume(SP.Prog, Reference, SuspendAt, /*SuspendThreads=*/2,
                     GetParam());
}

TEST_P(CheckpointGoldenTest, JitTierSuspendResumeMatchesUninterrupted) {
  lang::SourceProgramOptions SPOpts;
  SPOpts.Tier = lang::ExecutionTier::Jit;
  lang::SourceProgram SP =
      lang::compileSourceProgram(ClassifierSource, "classify", SPOpts);
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  CampaignResult Reference = CoverMe(SP.Prog, baseOptions(1)).run();
  for (unsigned SuspendAt : {1u, 7u, 16u})
    runSuspendResume(SP.Prog, Reference, SuspendAt, /*SuspendThreads=*/4,
                     GetParam());
}

TEST_P(CheckpointGoldenTest, NativeSubjectSuspendResumeMatchesUninterrupted) {
  const Program *P = fdlibm::lookup("ieee754_sqrt");
  ASSERT_NE(P, nullptr);
  CampaignResult Reference = CoverMe(*P, baseOptions(1)).run();
  for (unsigned SuspendAt : {2u, 11u})
    runSuspendResume(*P, Reference, SuspendAt, /*SuspendThreads=*/1,
                     GetParam());
}

TEST_P(CheckpointGoldenTest, ChainedSuspensionsStillLandOnTheSameBits) {
  // Suspend, resume, suspend again further in, resume again: two splice
  // points in one campaign.
  lang::SourceProgram SP =
      lang::compileSourceProgram(ClassifierSource, "classify");
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  CampaignResult Reference = CoverMe(SP.Prog, baseOptions(1)).run();

  CoverMeOptions First = baseOptions(GetParam());
  First.SuspendAfterRounds = 4;
  CampaignEngine E1(SP.Prog, First);
  CampaignResult R1 = E1.run();
  ASSERT_TRUE(R1.Suspended);
  std::vector<uint8_t> Bytes1 = encodeSnapshot(E1.snapshot());

  CampaignSnapshot S1;
  std::string Err;
  ASSERT_TRUE(decodeSnapshot(Bytes1, S1, Err)) << Err;
  CoverMeOptions Second = baseOptions(1);
  Second.SuspendAfterRounds = 15; // total committed rounds, not increment
  CampaignEngine E2(SP.Prog, Second);
  ASSERT_TRUE(E2.applySnapshot(S1, Err)) << Err;
  CampaignResult R2 = E2.run();
  ASSERT_TRUE(R2.Suspended);
  ASSERT_EQ(R2.StartsUsed, 15u);
  std::vector<uint8_t> Bytes2 = encodeSnapshot(E2.snapshot());

  CampaignSnapshot S2;
  ASSERT_TRUE(decodeSnapshot(Bytes2, S2, Err)) << Err;
  CampaignEngine E3(SP.Prog, baseOptions(GetParam()));
  ASSERT_TRUE(E3.applySnapshot(S2, Err)) << Err;
  expectBitIdentical(E3.run(), Reference, "chained resume");
}

INSTANTIATE_TEST_SUITE_P(ResumeThreads, CheckpointGoldenTest,
                         ::testing::Values(1u, 2u, 4u),
                         [](const ::testing::TestParamInfo<unsigned> &Info) {
                           return "t" + std::to_string(Info.param);
                         });

//===----------------------------------------------------------------------===//
// Suspension semantics
//===----------------------------------------------------------------------===//

TEST(CheckpointSemantics, NaturalTerminationBeatsSuspension) {
  lang::SourceProgram SP =
      lang::compileSourceProgram(ClassifierSource, "classify");
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  CoverMeOptions Opts = baseOptions(1);
  Opts.SuspendAfterRounds = Opts.NStart + 10; // beyond the campaign's end
  CampaignResult Res = CampaignEngine(SP.Prog, Opts).run();
  EXPECT_FALSE(Res.Suspended);
  EXPECT_EQ(Res.StartsUsed, Opts.NStart);
}

TEST(CheckpointSemantics, SuspendBeforeFirstRoundResumesFromScratch) {
  lang::SourceProgram SP =
      lang::compileSourceProgram(ClassifierSource, "classify");
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  CampaignResult Reference = CoverMe(SP.Prog, baseOptions(1)).run();

  CoverMeOptions Opts = baseOptions(2);
  CampaignEngine E(SP.Prog, Opts);
  E.requestSuspend(); // lands before any round commits
  CampaignResult Partial = E.run();
  ASSERT_TRUE(Partial.Suspended);
  EXPECT_EQ(Partial.StartsUsed, 0u);

  std::vector<uint8_t> Bytes = encodeSnapshot(E.snapshot());
  CampaignSnapshot S;
  std::string Err;
  ASSERT_TRUE(decodeSnapshot(Bytes, S, Err)) << Err;
  EXPECT_EQ(S.NextRound, 1u);
  CampaignEngine R(SP.Prog, baseOptions(1));
  ASSERT_TRUE(R.applySnapshot(S, Err)) << Err;
  expectBitIdentical(R.run(), Reference, "resume-from-round-0");
}

TEST(CheckpointSemantics, SnapshotSeedOverridesResumeOptions) {
  lang::SourceProgram SP =
      lang::compileSourceProgram(ClassifierSource, "classify");
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  CampaignResult Reference = CoverMe(SP.Prog, baseOptions(1)).run();

  CoverMeOptions Opts = baseOptions(1);
  Opts.SuspendAfterRounds = 6;
  CampaignEngine E(SP.Prog, Opts);
  (void)E.run();
  CampaignSnapshot S = E.snapshot();
  EXPECT_EQ(S.Seed, 7u);

  CoverMeOptions Wrong = baseOptions(1);
  Wrong.Seed = 99; // must be ignored: the snapshot's campaign is seed 7
  CampaignEngine R(SP.Prog, Wrong);
  std::string Err;
  ASSERT_TRUE(R.applySnapshot(S, Err)) << Err;
  expectBitIdentical(R.run(), Reference, "seed-override");
}

//===----------------------------------------------------------------------===//
// Wire format: round-trip and rejection
//===----------------------------------------------------------------------===//

class CheckpointWireTest : public ::testing::Test {
protected:
  void SetUp() override {
    SP = lang::compileSourceProgram(ClassifierSource, "classify");
    ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
    CoverMeOptions Opts = baseOptions(1);
    Opts.SuspendAfterRounds = 6;
    CampaignEngine E(SP.Prog, Opts);
    CampaignResult Res = E.run();
    ASSERT_TRUE(Res.Suspended);
    Snap = E.snapshot();
    Bytes = encodeSnapshot(Snap);
  }

  lang::SourceProgram SP;
  CampaignSnapshot Snap;
  std::vector<uint8_t> Bytes;
};

TEST_F(CheckpointWireTest, EncodeDecodeRoundTripsEveryField) {
  CampaignSnapshot Back;
  std::string Err;
  ASSERT_TRUE(decodeSnapshot(Bytes, Back, Err)) << Err;
  EXPECT_EQ(Back.Seed, Snap.Seed);
  EXPECT_EQ(Back.NumSites, Snap.NumSites);
  EXPECT_EQ(Back.Arity, Snap.Arity);
  EXPECT_EQ(Back.NextRound, Snap.NextRound);
  EXPECT_EQ(Back.Evaluations, Snap.Evaluations);
  EXPECT_EQ(Back.StartsUsed, Snap.StartsUsed);
  EXPECT_EQ(Back.Table.Arms, Snap.Table.Arms);
  EXPECT_EQ(Back.Table.Streaks, Snap.Table.Streaks);
  EXPECT_EQ(Back.Table.Version, Snap.Table.Version);
  EXPECT_EQ(Back.Coverage.TrueHits, Snap.Coverage.TrueHits);
  EXPECT_EQ(Back.Coverage.FalseHits, Snap.Coverage.FalseHits);
  EXPECT_EQ(Back.Coverage.TotalHits, Snap.Coverage.TotalHits);
  ASSERT_EQ(Back.Inputs.size(), Snap.Inputs.size());
  for (size_t I = 0; I < Snap.Inputs.size(); ++I) {
    ASSERT_EQ(Back.Inputs[I].size(), Snap.Inputs[I].size());
    for (size_t C = 0; C < Snap.Inputs[I].size(); ++C)
      EXPECT_EQ(doubleToBits(Back.Inputs[I][C]),
                doubleToBits(Snap.Inputs[I][C]));
  }
  ASSERT_EQ(Back.Rounds.size(), Snap.Rounds.size());
  EXPECT_EQ(Back.InfeasibleMarked.size(), Snap.InfeasibleMarked.size());
  // Re-encoding the decoded image must be byte-identical: the format has
  // one canonical serialization.
  EXPECT_EQ(encodeSnapshot(Back), Bytes);
}

TEST_F(CheckpointWireTest, RejectsBadMagicAndUnknownVersion) {
  CampaignSnapshot Out;
  std::string Err;

  std::vector<uint8_t> BadMagic = Bytes;
  BadMagic[0] ^= 0xff;
  EXPECT_FALSE(decodeSnapshot(BadMagic, Out, Err));
  EXPECT_FALSE(Err.empty());

  std::vector<uint8_t> BadVersion = Bytes;
  BadVersion[8] = 0xfe; // version field follows the 8-byte magic
  EXPECT_FALSE(decodeSnapshot(BadVersion, Out, Err));
}

TEST_F(CheckpointWireTest, RejectsTruncationAtEveryLength) {
  CampaignSnapshot Out;
  std::string Err;
  for (size_t Len = 0; Len < Bytes.size(); ++Len)
    EXPECT_FALSE(decodeSnapshot(Bytes.data(), Len, Out, Err))
        << "prefix of " << Len << " bytes decoded";
}

TEST_F(CheckpointWireTest, RejectsTrailingBytes) {
  CampaignSnapshot Out;
  std::string Err;
  std::vector<uint8_t> Longer = Bytes;
  Longer.push_back(0);
  EXPECT_FALSE(decodeSnapshot(Longer, Out, Err));
}

TEST_F(CheckpointWireTest, RejectsSaturationInvariantViolations) {
  CampaignSnapshot Out;
  std::string Err;

  // An arm flag that is neither 0 nor 1.
  CampaignSnapshot BadArm = Snap;
  ASSERT_FALSE(BadArm.Table.Arms.empty());
  BadArm.Table.Arms[0] = 2;
  EXPECT_FALSE(decodeSnapshot(encodeSnapshot(BadArm), Out, Err));

  // Version disagreeing with the number of set flags.
  CampaignSnapshot BadVersion = Snap;
  BadVersion.Table.Version += 1;
  EXPECT_FALSE(decodeSnapshot(encodeSnapshot(BadVersion), Out, Err));
}

TEST_F(CheckpointWireTest, ApplySnapshotRejectsWrongProgramShape) {
  // The classifier snapshot against a different program: the loader's
  // rejection path is the CoverageMap merge shape check plus the arity
  // guard — both must fire, neither may touch engine state fatally.
  const Program *Sqrt = fdlibm::lookup("ieee754_sqrt");
  ASSERT_NE(Sqrt, nullptr);
  ASSERT_NE(Sqrt->NumSites, SP.Prog.NumSites);

  CampaignSnapshot Decoded;
  std::string Err;
  ASSERT_TRUE(decodeSnapshot(Bytes, Decoded, Err)) << Err;
  CampaignEngine E(*Sqrt, baseOptions(1));
  EXPECT_FALSE(E.applySnapshot(Decoded, Err));
  EXPECT_FALSE(Err.empty());
}

TEST_F(CheckpointWireTest, ApplySnapshotRejectsWrongArity) {
  CampaignSnapshot Decoded;
  std::string Err;
  ASSERT_TRUE(decodeSnapshot(Bytes, Decoded, Err)) << Err;
  Decoded.Arity += 1;
  CampaignEngine E(SP.Prog, baseOptions(1));
  EXPECT_FALSE(E.applySnapshot(Decoded, Err));
  EXPECT_FALSE(Err.empty());
}

} // namespace
