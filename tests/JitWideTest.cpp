//===- JitWideTest.cpp - 4-lane wide JIT vs interpreted wide lane ----------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// The wide JIT's contract: batched FOO_R evaluation through the 4-lane
// native fragments is bit-identical to the interpreted SIMD lane (itself
// proven bit-identical to scalar execution) — per-row r values, the
// end-of-batch context (r, trace), trap rows, and budget exhaustion
// points. The FP-contraction pin lives here too: the penalty sequence the
// native pen block evaluates is hand-picked vaddpd/vmulpd/vsubpd bytes, so
// these comparisons hold on any compiler flags by construction, and the
// test proves it by comparing pen values bit-for-bit across backends under
// every saturation-flag shape.
//
//===----------------------------------------------------------------------===//

#include "lang/Jit.h"
#include "lang/SourceProgram.h"
#include "lang/SourceSuite.h"
#include "lang/Vm.h"
#include "runtime/ExecutionContext.h"
#include "runtime/SaturationTable.h"
#include "support/FloatBits.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

using namespace coverme;
using namespace coverme::lang;

namespace {

/// True when this host can run 4-lane wide fragments: the build has both
/// the JIT and the SIMD lane, and the CPU has AVX2.
bool wideJitAvailable() {
  return bc::JitUnit::available() && bc::Vm::simdAvailable();
}

/// Everything observable about one batched FOO_R evaluation.
struct BatchRun {
  std::vector<uint64_t> RowBits;
  uint64_t RBits = 0;
  std::vector<BranchRef> Trace;
  bool Trapped = false;
  std::string TrapMessage;
};

/// Runs \p Count rows through \p Vm's batch entry under a fresh context
/// whose saturation flags are copied from \p Sat (when non-null), and
/// captures the rows plus the context end state.
BatchRun runBatchFooR(bc::Vm &Vm, unsigned FnIndex, const double *Xs,
                      size_t Count, size_t N,
                      const std::vector<BranchRef> *Sat = nullptr) {
  BatchRun Run;
  ExecutionContext Ctx(Vm.unit().NumSites);
  if (Sat)
    for (const BranchRef &R : *Sat)
      Ctx.saturation().saturate(R);
  ExecutionContext::Scope Scope(Ctx);
  std::vector<double> Out(Count, -7.0);
  Vm.runBatch(FnIndex, Xs, Count, N, Out.data());
  Run.RowBits.reserve(Count);
  for (double V : Out)
    Run.RowBits.push_back(doubleToBits(V));
  Run.RBits = doubleToBits(Ctx.R);
  Run.Trace = Ctx.Trace;
  Run.Trapped = Vm.trapped();
  Run.TrapMessage = Vm.trapMessage();
  return Run;
}

void expectSameBatch(const BatchRun &A, const BatchRun &B,
                     const std::string &At) {
  ASSERT_EQ(A.RowBits.size(), B.RowBits.size()) << At;
  for (size_t I = 0; I < A.RowBits.size(); ++I)
    EXPECT_EQ(A.RowBits[I], B.RowBits[I]) << At << " row " << I;
  EXPECT_EQ(A.RBits, B.RBits) << At << " end-of-batch r";
  ASSERT_EQ(A.Trace.size(), B.Trace.size()) << At << " trace length";
  for (size_t I = 0; I < A.Trace.size(); ++I) {
    EXPECT_EQ(A.Trace[I].Site, B.Trace[I].Site) << At << " trace @" << I;
    EXPECT_EQ(A.Trace[I].Outcome, B.Trace[I].Outcome) << At << " trace @" << I;
  }
  EXPECT_EQ(A.Trapped, B.Trapped) << At;
  EXPECT_EQ(A.TrapMessage, B.TrapMessage) << At;
}

/// Deterministic input rows: IEEE boundary values cycled through the lane
/// positions (so every boundary value lands on every lane of a group) plus
/// splitmix64 raw bit patterns, which reach NaNs, infinities, and
/// subnormals by construction.
std::vector<double> inputRows(unsigned Arity, size_t Count, uint64_t Seed) {
  const double Inf = std::numeric_limits<double>::infinity();
  const double Boundary[] = {
      0.0,   -0.0,  1.0,   -1.0, 0.5,    22.0,   -22.0,  5e-324,
      1e300, -1e30, 1e-30, Inf,  -Inf,   std::numeric_limits<double>::max(),
      3.725290298461914e-09, // the asinh/atanh tiny-x knee
      std::numeric_limits<double>::quiet_NaN(),
  };
  constexpr size_t NB = sizeof(Boundary) / sizeof(Boundary[0]);
  Rng R(Seed);
  std::vector<double> Xs(Count * Arity);
  for (size_t I = 0; I < Xs.size(); ++I) {
    if (I < NB * 4) // boundary phase: walk values across lane positions
      Xs[I] = Boundary[(I + I / 4) % NB];
    else
      Xs[I] = R.rawBitsDouble();
  }
  return Xs;
}

/// One suite subject compiled three ways sharing one CompiledUnit: the
/// wide-JIT Vm (fragments attached, SIMD on), the interpreted wide lane
/// (no fragments), and the scalar-fragment rows (fragments, SIMD off).
struct SubjectVms {
  std::shared_ptr<const bc::CompiledUnit> Code;
  std::shared_ptr<const bc::JitUnit> Jit;
  std::unique_ptr<bc::Vm> JitWide, VmWide, ScalarJit;
  unsigned FnIndex = 0;
  unsigned Arity = 0;
};

SubjectVms buildSubject(const SourceBenchmark &B, InterpOptions Opts = {}) {
  SubjectVms S;
  SourceProgram SP = compileSourceBenchmark(B);
  EXPECT_TRUE(SP.success()) << B.Name << ": " << SP.diagnosticsText();
  S.Code = SP.Code;
  S.Jit = bc::JitUnit::build(SP.Code);
  EXPECT_NE(S.Jit, nullptr) << B.Name;
  int Idx = SP.Code->functionIndex(B.Name);
  EXPECT_GE(Idx, 0) << B.Name;
  S.FnIndex = static_cast<unsigned>(Idx);
  S.Arity = static_cast<unsigned>(
      SP.Code->Functions[S.FnIndex].ParamTypes.size());
  S.JitWide.reset(new bc::Vm(S.Code, Opts));
  S.JitWide->attachJit(S.Jit);
  S.VmWide.reset(new bc::Vm(S.Code, Opts));
  InterpOptions NoSimd = Opts;
  NoSimd.Simd = VmSimd::Off;
  S.ScalarJit.reset(new bc::Vm(S.Code, NoSimd));
  S.ScalarJit->attachJit(S.Jit);
  return S;
}

} // namespace

TEST(JitWideTest, SuiteSubjectsGetWideFragments) {
  // Every suite subject is WideSafe and scalar-JIT-able, so on a
  // JIT+SIMD build each must also get a 4-lane fragment — a silent
  // rejection would void the perf gate exactly like a scalar fall-back.
  if (!wideJitAvailable())
    GTEST_SKIP() << "build lacks JIT or SIMD lane, or host has no AVX2";
  for (const SourceBenchmark &B : sourceSuite()) {
    SourceProgram SP = compileSourceBenchmark(B);
    ASSERT_TRUE(SP.success()) << B.Name;
    std::shared_ptr<const bc::JitUnit> Jit = bc::JitUnit::build(SP.Code);
    ASSERT_NE(Jit, nullptr) << B.Name;
    int Idx = SP.Code->functionIndex(B.Name);
    ASSERT_GE(Idx, 0) << B.Name;
    EXPECT_TRUE(Jit->canJit(static_cast<unsigned>(Idx))) << B.Name;
    EXPECT_TRUE(Jit->canJitWide(static_cast<unsigned>(Idx))) << B.Name;
    EXPECT_GT(Jit->wideJittedCount(), 0u) << B.Name;
  }
}

TEST(JitWideTest, BatchBackendNameReportsTheChain) {
  const SourceBenchmark *Tanh = findSourceBenchmark("tanh");
  ASSERT_NE(Tanh, nullptr);
  SourceProgram SP = compileSourceBenchmark(*Tanh);
  ASSERT_TRUE(SP.success());
  int Idx = SP.Code->functionIndex("tanh");
  ASSERT_GE(Idx, 0);
  unsigned Fn = static_cast<unsigned>(Idx);

  if (bc::Vm::simdAvailable()) {
    bc::Vm Plain(SP.Code);
    EXPECT_STREQ(Plain.batchBackendName(Fn), "vm-wide");
  }
  if (bc::JitUnit::available()) {
    std::shared_ptr<const bc::JitUnit> Jit = bc::JitUnit::build(SP.Code);
    ASSERT_NE(Jit, nullptr);
    bc::Vm Jitted(SP.Code);
    Jitted.attachJit(Jit);
    EXPECT_STREQ(Jitted.batchBackendName(Fn),
                 wideJitAvailable() ? "jit-wide" : "scalar-jit");
    InterpOptions NoSimd;
    NoSimd.Simd = VmSimd::Off;
    bc::Vm Scalar(SP.Code, NoSimd);
    Scalar.attachJit(Jit);
    EXPECT_STREQ(Scalar.batchBackendName(Fn), "scalar-jit");
  }
}

TEST(JitWideTest, PenBitIdenticalAcrossBackendsNoContraction) {
  // The FP-contraction pin. The tanh and logb subjects exercise the exact
  // BranchDistance.cpp shapes (mul-then-add: (a-b)*(a-b) and
  // (a-b)*(a-b)+eps): an FMA-contracted penalty would differ in the last
  // ulp on almost any input battery this size, so bit-equality of every
  // row's r against the interpreted wide lane — and against the scalar
  // fragment rows — pins the no-FMA shape of the native pen block. Every
  // saturation shape of the first two sites runs, covering all four
  // Def-4.2 arms (keep, zero, dist(op), dist(negate(op))).
  if (!wideJitAvailable())
    GTEST_SKIP() << "build lacks JIT or SIMD lane, or host has no AVX2";
  for (const char *Name : {"tanh", "logb"}) {
    const SourceBenchmark *B = findSourceBenchmark(Name);
    ASSERT_NE(B, nullptr) << Name;
    SubjectVms S = buildSubject(*B);
    ASSERT_TRUE(S.Jit->canJitWide(S.FnIndex)) << Name;
    ASSERT_STREQ(S.JitWide->batchBackendName(S.FnIndex), "jit-wide") << Name;
    ASSERT_STREQ(S.VmWide->batchBackendName(S.FnIndex), "vm-wide") << Name;

    constexpr size_t Count = 256;
    std::vector<double> Xs = inputRows(S.Arity, Count, 0x5eed0 + S.FnIndex);

    const std::vector<std::vector<BranchRef>> SatShapes = {
        {},                             // nothing saturated: dist arms fire
        {{0, true}},                    // true arm only: dist(negate(op))
        {{0, false}},                   // false arm only: dist(op)
        {{0, true}, {0, false}},        // both arms: keep
        {{1, true}, {1, false}},        // a later site fully saturated
    };
    for (size_t Shape = 0; Shape < SatShapes.size(); ++Shape) {
      const std::vector<BranchRef> &Sat = SatShapes[Shape];
      BatchRun W = runBatchFooR(*S.JitWide, S.FnIndex, Xs.data(), Count,
                                S.Arity, &Sat);
      BatchRun V = runBatchFooR(*S.VmWide, S.FnIndex, Xs.data(), Count,
                                S.Arity, &Sat);
      BatchRun J = runBatchFooR(*S.ScalarJit, S.FnIndex, Xs.data(), Count,
                                S.Arity, &Sat);
      std::string At = std::string(Name) + " sat-shape " +
                       std::to_string(Shape);
      expectSameBatch(V, W, At + " [jit-wide vs vm-wide]");
      expectSameBatch(J, W, At + " [jit-wide vs scalar-jit]");
    }
  }
}

TEST(JitWideTest, FullSuiteBatchedFooRBitIdentical) {
  // Whole-suite sweep including the divergence-heavy subjects (sqrt's
  // bit-twiddling loop retires lanes constantly) and two-parameter
  // entries: wide JIT vs interpreted wide lane vs scalar fragment rows,
  // rows + context end state, on 259 rows (ragged tail included).
  if (!wideJitAvailable())
    GTEST_SKIP() << "build lacks JIT or SIMD lane, or host has no AVX2";
  for (const SourceBenchmark &B : sourceSuite()) {
    SubjectVms S = buildSubject(B);
    constexpr size_t Count = 259;
    std::vector<double> Xs = inputRows(S.Arity, Count, 0xab5eed);
    BatchRun W = runBatchFooR(*S.JitWide, S.FnIndex, Xs.data(), Count,
                              S.Arity);
    BatchRun V = runBatchFooR(*S.VmWide, S.FnIndex, Xs.data(), Count,
                              S.Arity);
    BatchRun J = runBatchFooR(*S.ScalarJit, S.FnIndex, Xs.data(), Count,
                              S.Arity);
    expectSameBatch(V, W, std::string(B.Name) + " [jit-wide vs vm-wide]");
    expectSameBatch(J, W, std::string(B.Name) + " [jit-wide vs scalar-jit]");
  }
}

TEST(JitWideTest, NoContextBatchMatchesCallEntry) {
  // Without an installed context runBatch degrades to plain body rows;
  // the wide fragments must reproduce callEntry's bits, NaN trap rows
  // included.
  if (!wideJitAvailable())
    GTEST_SKIP() << "build lacks JIT or SIMD lane, or host has no AVX2";
  for (const char *Name : {"tanh", "sqrt", "nextafter"}) {
    const SourceBenchmark *B = findSourceBenchmark(Name);
    ASSERT_NE(B, nullptr) << Name;
    SubjectVms S = buildSubject(*B);
    constexpr size_t Count = 64;
    std::vector<double> Xs = inputRows(S.Arity, Count, 0xfeed5);
    std::vector<double> Out(Count, -7.0);
    S.JitWide->runBatch(S.FnIndex, Xs.data(), Count, S.Arity, Out.data());
    for (size_t I = 0; I < Count; ++I) {
      double Ref = S.ScalarJit->callEntry(S.FnIndex, Xs.data() + I * S.Arity);
      EXPECT_EQ(doubleToBits(Ref), doubleToBits(Out[I]))
          << Name << " row " << I;
    }
  }
}

TEST(JitWideTest, BudgetExhaustionPointsIdentical) {
  // Sweep the step budget across the interesting range: at every budget
  // the three backends must agree per row (NaN exhaustion rows included)
  // and on the end-of-batch state — the wide fragment's block-granular
  // charges replay the VM schedule exactly, and a group whose charge
  // fails retires wholesale to scalar re-runs.
  if (!wideJitAvailable())
    GTEST_SKIP() << "build lacks JIT or SIMD lane, or host has no AVX2";
  const SourceBenchmark *Tanh = findSourceBenchmark("tanh");
  ASSERT_NE(Tanh, nullptr);
  constexpr size_t Count = 12;
  for (uint64_t Budget : {0ull, 1ull, 7ull, 23ull, 61ull, 101ull, 397ull,
                          1009ull, 60000ull}) {
    InterpOptions Opts;
    Opts.MaxSteps = Budget;
    SubjectVms S = buildSubject(*Tanh, Opts);
    std::vector<double> Xs = inputRows(S.Arity, Count, 0xb0d9e7);
    BatchRun W = runBatchFooR(*S.JitWide, S.FnIndex, Xs.data(), Count,
                              S.Arity);
    BatchRun V = runBatchFooR(*S.VmWide, S.FnIndex, Xs.data(), Count,
                              S.Arity);
    BatchRun J = runBatchFooR(*S.ScalarJit, S.FnIndex, Xs.data(), Count,
                              S.Arity);
    std::string At = "budget " + std::to_string(Budget);
    expectSameBatch(V, W, At + " [jit-wide vs vm-wide]");
    expectSameBatch(J, W, At + " [jit-wide vs scalar-jit]");
  }
}
