//===- LangTest.cpp - Tests for the mini-C frontend (parser/sema/interp) --===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the source pipeline: parser shapes and diagnostics, Sema
/// site numbering and type rules, interpreter semantics (C arithmetic,
/// pointer-cast bit twiddling, control flow, builtins, resource traps), and
/// the SourceProgram wrapper — culminating in bit-for-bit equivalence
/// between the interpreted s_tanh.c and the natively compiled port, and a
/// CoverMe campaign run end-to-end from source text (the paper's Fig. 1
/// program through the paper's whole pipeline).
///
//===----------------------------------------------------------------------===//

#include "lang/Interp.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "lang/SourceProgram.h"
#include "lang/SourceSuite.h"

#include "core/CoverMe.h"
#include "fdlibm/Fdlibm.h"
#include "runtime/ExecutionContext.h"
#include "runtime/RepresentingFunction.h"
#include "support/FloatBits.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace coverme;
using namespace coverme::lang;

namespace {

/// Parses + analyzes \p Source, failing the test on any diagnostic.
std::unique_ptr<TranslationUnit> mustCompile(const std::string &Source) {
  ParseResult Parsed = parseTranslationUnit(Source);
  EXPECT_TRUE(Parsed.success()) << (Parsed.Diags.empty()
                                        ? ""
                                        : formatDiagnostic(Parsed.Diags[0]));
  std::vector<Diagnostic> Diags;
  EXPECT_TRUE(analyze(*Parsed.TU, Diags))
      << (Diags.empty() ? "" : formatDiagnostic(Diags[0]));
  return std::move(Parsed.TU);
}

/// Compiles a one-function unit and calls it on \p Args.
double runFunction(const std::string &Source, const std::string &Name,
                   std::vector<double> Args) {
  auto TU = mustCompile(Source);
  Interpreter Interp(*TU);
  const FunctionDecl *F = TU->findFunction(Name);
  EXPECT_NE(F, nullptr) << "no function " << Name;
  EXPECT_EQ(F->Params.size(), Args.size());
  double Result = Interp.callEntry(*F, Args.data());
  EXPECT_FALSE(Interp.trapped()) << Interp.trapMessage();
  return Result;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(LangParserTest, ParsesFunctionWithParams) {
  auto TU = mustCompile("double f(double x, double y) { return x + y; }");
  ASSERT_EQ(TU->Functions.size(), 1u);
  const FunctionDecl &F = *TU->Functions[0];
  EXPECT_EQ(F.Name, "f");
  EXPECT_EQ(F.Params.size(), 2u);
  EXPECT_TRUE(F.ReturnType.isDouble());
}

TEST(LangParserTest, ParsesVoidParameterList) {
  auto TU = mustCompile("int f(void) { return 1; }");
  EXPECT_TRUE(TU->Functions[0]->Params.empty());
}

TEST(LangParserTest, PrecedenceMulBeforeAdd) {
  // 2 + 3 * 4 == 14, not 20.
  EXPECT_EQ(runFunction("int f(void) { return 2 + 3 * 4; }", "f", {}), 14.0);
}

TEST(LangParserTest, PrecedenceShiftVsComparison) {
  // `1 << 2 < 8` parses as `(1 << 2) < 8` == 1.
  EXPECT_EQ(runFunction("int f(void) { return 1 << 2 < 8; }", "f", {}), 1.0);
}

TEST(LangParserTest, PrecedenceBitwiseChain) {
  // C: ^ binds tighter than |, & tighter than ^.
  EXPECT_EQ(
      runFunction("int f(void) { return 1 | 2 ^ 3 & 5; }", "f", {}),
      static_cast<double>(1 | (2 ^ (3 & 5))));
}

TEST(LangParserTest, RightAssociativeAssignment) {
  EXPECT_EQ(runFunction(
                "int f(void) { int a; int b; a = b = 7; return a + b; }",
                "f", {}),
            14.0);
}

TEST(LangParserTest, TernaryNestsRight) {
  EXPECT_EQ(runFunction(
                "int f(int x) { return x > 0 ? 1 : x < 0 ? -1 : 0; }", "f",
                {-3.0}),
            -1.0);
}

TEST(LangParserTest, CastVersusParenthesizedExpr) {
  // `(x)` is not a cast; `(int)x` is.
  EXPECT_EQ(runFunction("double f(double x) { return (x) + 1.0; }", "f",
                        {2.5}),
            3.5);
  EXPECT_EQ(runFunction("int f(double x) { return (int)x; }", "f", {2.9}),
            2.0);
}

TEST(LangParserTest, PointerCastChain) {
  // The paper's Fig. 1 line 3 idiom parses and evaluates.
  auto TU = mustCompile(
      "int high(double x) { return *(1 + (int *)&x); }");
  Interpreter Interp(*TU);
  const FunctionDecl *F = TU->findFunction("high");
  double X = 3.14159;
  double Args[1] = {X};
  EXPECT_EQ(Interp.callEntry(*F, Args), highWord(X));
}

TEST(LangParserTest, CommaOperatorInForHeader) {
  // Fdlibm's `for (ix = -1043, i = lx; i > 0; i <<= 1) ix -= 1;` pattern.
  const char *Source = "int f(int lx) {\n"
                       "  int ix; int i;\n"
                       "  for (ix = -1043, i = lx; i > 0; i <<= 1) ix -= 1;\n"
                       "  return ix;\n"
                       "}\n";
  // lx = 1: one iteration per leading zero of a positive int, 31 total
  // (1 << 31 becomes INT_MIN < 0, loop stops after 31 shifts).
  EXPECT_EQ(runFunction(Source, "f", {1.0}), -1043.0 - 31.0);
}

TEST(LangParserTest, GlobalScalarAndArray) {
  const char *Source =
      "static const double one = 1.0, half = 0.5;\n"
      "static const double T[3] = {1.0, 2.0, 4.0};\n"
      "double f(int i) { return one + half + T[i]; }\n";
  EXPECT_EQ(runFunction(Source, "f", {2.0}), 1.0 + 0.5 + 4.0);
}

TEST(LangParserTest, HexLiteralsKeepBits) {
  EXPECT_EQ(runFunction("int f(void) { return 0x7fffffff; }", "f", {}),
            2147483647.0);
  // 0x80000000 types as unsigned, like C's 32-bit literal rules.
  EXPECT_EQ(
      runFunction("double f(void) { return 0x80000000 * 1.0; }", "f", {}),
      2147483648.0);
}

TEST(LangParserTest, FloatLiteralsWithSuffixAndExponent) {
  EXPECT_EQ(runFunction("double f(void) { return 1e-3; }", "f", {}), 1e-3);
  EXPECT_EQ(runFunction("double f(void) { return 2.5F; }", "f", {}), 2.5);
}

TEST(LangParserTest, ReportsMissingSemicolon) {
  ParseResult R = parseTranslationUnit("int f(void) { return 1 }");
  EXPECT_FALSE(R.success());
}

TEST(LangParserTest, ReportsGarbageAtFileScope) {
  ParseResult R = parseTranslationUnit("$$$");
  EXPECT_FALSE(R.success());
}

TEST(LangParserTest, RecoversAfterBadStatement) {
  // One bad statement must not hide the next function.
  ParseResult R = parseTranslationUnit("int f(void) { @@; return 1; }\n"
                                       "int g(void) { return 2; }\n");
  EXPECT_FALSE(R.success());
  EXPECT_NE(R.TU->findFunction("g"), nullptr);
}

TEST(LangParserTest, ForwardDeclarationIsAccepted) {
  auto TU = mustCompile("double g(double x);\n"
                        "double f(double x) { return x; }\n");
  EXPECT_EQ(TU->Functions.size(), 1u);
}

TEST(LangParserTest, ParseExpressionHelper) {
  std::vector<Diagnostic> Diags;
  ExprPtr E = parseExpression("1 + 2 * 3", Diags);
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->Kind, ExprKind::Binary);
  EXPECT_EQ(exprCast<BinaryExpr>(*E).Op, BinaryOp::Add);
}

//===----------------------------------------------------------------------===//
// Sema
//===----------------------------------------------------------------------===//

TEST(LangSemaTest, NumbersBareComparisonSites) {
  auto TU = mustCompile("double f(double x) {\n"
                        "  if (x <= 1.0) x = x + 1.0;\n"
                        "  while (x > 2.0) x = x - 1.0;\n"
                        "  return x;\n"
                        "}\n");
  EXPECT_EQ(TU->NumSites, 2u);
  EXPECT_EQ(TU->Functions[0]->Sites.size(), 2u);
}

TEST(LangSemaTest, CompoundConditionsAreNotSites) {
  // CoverMe leaves &&/|| conditions uninstrumented (Sect. 5.3).
  auto TU = mustCompile("double f(double x) {\n"
                        "  if (x > 0.0 && x < 1.0) return 1.0;\n"
                        "  return 0.0;\n"
                        "}\n");
  EXPECT_EQ(TU->NumSites, 0u);
}

TEST(LangSemaTest, TruthinessConditionIsNotASite) {
  auto TU = mustCompile("int f(int x) { if (x) return 1; return 0; }");
  EXPECT_EQ(TU->NumSites, 0u);
}

TEST(LangSemaTest, SitesNumberedAcrossFunctions) {
  // Entry + callee share one site space (Sect. 5.3, Handling Function
  // Calls) — the paper's FOO/GOO example.
  auto TU = mustCompile("double goo(double x) {\n"
                        "  if (sin(x) <= 0.99) return 1.0;\n"
                        "  return 0.0;\n"
                        "}\n"
                        "double foo(double x) { return goo(x); }\n");
  EXPECT_EQ(TU->NumSites, 1u);
  EXPECT_EQ(TU->Functions[0]->Sites.size(), 1u);
  EXPECT_TRUE(TU->Functions[1]->Sites.empty());
}

TEST(LangSemaTest, RejectsUndeclaredIdentifier) {
  ParseResult R = parseTranslationUnit("int f(void) { return missing; }");
  ASSERT_TRUE(R.success());
  std::vector<Diagnostic> Diags;
  EXPECT_FALSE(analyze(*R.TU, Diags));
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags[0].Message.find("undeclared"), std::string::npos);
}

TEST(LangSemaTest, RejectsUnknownCall) {
  ParseResult R = parseTranslationUnit("double f(double x) { return zap(x); }");
  ASSERT_TRUE(R.success());
  std::vector<Diagnostic> Diags;
  EXPECT_FALSE(analyze(*R.TU, Diags));
}

TEST(LangSemaTest, RejectsWrongArityCall) {
  ParseResult R =
      parseTranslationUnit("double g(double x) { return x; }\n"
                           "double f(double x) { return g(x, x); }\n");
  ASSERT_TRUE(R.success());
  std::vector<Diagnostic> Diags;
  EXPECT_FALSE(analyze(*R.TU, Diags));
}

TEST(LangSemaTest, RejectsDerefOfNonPointer) {
  ParseResult R = parseTranslationUnit("double f(double x) { return *x; }");
  ASSERT_TRUE(R.success());
  std::vector<Diagnostic> Diags;
  EXPECT_FALSE(analyze(*R.TU, Diags));
}

TEST(LangSemaTest, RejectsAssignToRvalue) {
  ParseResult R =
      parseTranslationUnit("double f(double x) { x + 1.0 = 2.0; return x; }");
  ASSERT_TRUE(R.success());
  std::vector<Diagnostic> Diags;
  EXPECT_FALSE(analyze(*R.TU, Diags));
}

TEST(LangSemaTest, RejectsDuplicateFunction) {
  ParseResult R = parseTranslationUnit("int f(void) { return 1; }\n"
                                       "int f(void) { return 2; }\n");
  ASSERT_TRUE(R.success());
  std::vector<Diagnostic> Diags;
  EXPECT_FALSE(analyze(*R.TU, Diags));
}

TEST(LangSemaTest, BlockScopingShadowsOuter) {
  const char *Source = "int f(void) {\n"
                       "  int x = 1;\n"
                       "  { int x = 2; }\n"
                       "  return x;\n"
                       "}\n";
  EXPECT_EQ(runFunction(Source, "f", {}), 1.0);
}

TEST(LangSemaTest, UsualArithmeticConversionTypes) {
  std::vector<Diagnostic> Diags;
  ParseResult R = parseTranslationUnit(
      "double f(int i, unsigned u, double d) { return i + u + d; }");
  ASSERT_TRUE(R.success());
  ASSERT_TRUE(analyze(*R.TU, Diags));
  const auto &Ret = stmtCast<ReturnStmt>(
      *R.TU->Functions[0]->Body->Body.at(0));
  // (i + u) types unsigned; adding d yields double.
  const auto &Sum = exprCast<BinaryExpr>(*Ret.Value);
  EXPECT_EQ(Sum.Ty.Base, BaseType::Double);
  EXPECT_EQ(Sum.Lhs->Ty.Base, BaseType::UInt);
}

//===----------------------------------------------------------------------===//
// Interpreter semantics
//===----------------------------------------------------------------------===//

TEST(LangInterpTest, IntegerWrapOnOverflow) {
  EXPECT_EQ(runFunction(
                "int f(void) { int x = 0x7fffffff; return x + 1; }", "f", {}),
            -2147483648.0);
}

TEST(LangInterpTest, UnsignedArithmeticWraps) {
  EXPECT_EQ(runFunction("unsigned f(void) { unsigned x = 0u; return x - 1; }",
                        "f", {}),
            4294967295.0);
}

TEST(LangInterpTest, SignedShiftIsArithmetic) {
  EXPECT_EQ(runFunction("int f(void) { int x = -8; return x >> 1; }", "f", {}),
            -4.0);
}

TEST(LangInterpTest, UnsignedShiftIsLogical) {
  EXPECT_EQ(runFunction(
                "unsigned f(void) { unsigned x = 0x80000000u; return x >> 31; }",
                "f", {}),
            1.0);
}

TEST(LangInterpTest, UnsignedComparisonSemantics) {
  // -1 compared against 1u converts to UINT_MAX: C says 1u < -1.
  EXPECT_EQ(runFunction("int f(void) { unsigned u = 1u; return u < -1; }",
                        "f", {}),
            1.0);
}

TEST(LangInterpTest, IntegerDivisionTruncatesTowardZero) {
  EXPECT_EQ(runFunction("int f(void) { return -7 / 2; }", "f", {}), -3.0);
  EXPECT_EQ(runFunction("int f(void) { return -7 % 2; }", "f", {}), -1.0);
}

TEST(LangInterpTest, DivisionByZeroDoubleIsIEEE) {
  EXPECT_TRUE(std::isinf(
      runFunction("double f(double x) { return 1.0 / x; }", "f", {0.0})));
}

TEST(LangInterpTest, IntegerDivisionByZeroTraps) {
  auto TU = mustCompile("int f(int x) { return 1 / x; }");
  Interpreter Interp(*TU);
  double Args[1] = {0.0};
  double R = Interp.callEntry(*TU->findFunction("f"), Args);
  EXPECT_TRUE(std::isnan(R));
  EXPECT_TRUE(Interp.trapped());
}

TEST(LangInterpTest, HighWordMatchesFloatBits) {
  auto TU = mustCompile("int high(double x) { return *(1 + (int *)&x); }\n"
                        "int low(double x) { return *(int *)&x; }\n");
  Interpreter Interp(*TU);
  const FunctionDecl *High = TU->findFunction("high");
  const FunctionDecl *Low = TU->findFunction("low");
  Rng R(7);
  for (int I = 0; I < 2000; ++I) {
    double X = R.rawBitsDouble();
    double Args[1] = {X};
    EXPECT_EQ(Interp.callEntry(*High, Args), highWord(X));
    EXPECT_EQ(Interp.callEntry(*Low, Args),
              static_cast<int32_t>(lowWord(X)));
  }
}

TEST(LangInterpTest, WritingHighWordRebuildsDouble) {
  // setHighWord via the pointer idiom: the reverse direction of __HI.
  const char *Source = "double f(double x, int hi) {\n"
                       "  *(1 + (int *)&x) = hi;\n"
                       "  return x;\n"
                       "}\n";
  auto TU = mustCompile(Source);
  Interpreter Interp(*TU);
  const FunctionDecl *F = TU->findFunction("f");
  double Args[2] = {1.5, static_cast<double>(0x40090000)};
  EXPECT_EQ(Interp.callEntry(*F, Args), setHighWord(1.5, 0x40090000));
}

TEST(LangInterpTest, PointerParameterLowering) {
  // void FOO(double *p) {...} is tested as FOO(x) with *p == x
  // (Sect. 5.3, Handling Pointers).
  const char *Source = "double f(double *p) { *p = *p + 1.0; return *p; }";
  auto TU = mustCompile(Source);
  Interpreter Interp(*TU);
  double Args[1] = {41.0};
  EXPECT_EQ(Interp.callEntry(*TU->findFunction("f"), Args), 42.0);
}

TEST(LangInterpTest, IntParameterTruncates) {
  EXPECT_EQ(runFunction("int f(int n) { return n; }", "f", {2.9}), 2.0);
  EXPECT_EQ(runFunction("int f(int n) { return n; }", "f", {-2.9}), -2.0);
}

TEST(LangInterpTest, LocalArrayIndexing) {
  const char *Source = "double f(int i) {\n"
                       "  double t[4] = {1.0, 2.0, 4.0, 8.0};\n"
                       "  t[0] = t[0] + 0.5;\n"
                       "  return t[i];\n"
                       "}\n";
  EXPECT_EQ(runFunction(Source, "f", {0.0}), 1.5);
  EXPECT_EQ(runFunction(Source, "f", {3.0}), 8.0);
}

TEST(LangInterpTest, ArrayOutOfBoundsTraps) {
  auto TU = mustCompile("double f(int i) {\n"
                        "  double t[2] = {1.0, 2.0};\n"
                        "  return t[i];\n"
                        "}\n");
  Interpreter Interp(*TU);
  double Args[1] = {1e9};
  EXPECT_TRUE(std::isnan(Interp.callEntry(*TU->findFunction("f"), Args)));
  EXPECT_TRUE(Interp.trapped());
}

TEST(LangInterpTest, PartialArrayInitializerZeroFills) {
  const char *Source = "double f(void) {\n"
                       "  double t[4] = {1.0};\n"
                       "  return t[1] + t[2] + t[3];\n"
                       "}\n";
  EXPECT_EQ(runFunction(Source, "f", {}), 0.0);
}

TEST(LangInterpTest, DoWhileRunsBodyFirst) {
  const char *Source = "int f(void) {\n"
                       "  int n = 0;\n"
                       "  do n = n + 1; while (n < 0);\n"
                       "  return n;\n"
                       "}\n";
  EXPECT_EQ(runFunction(Source, "f", {}), 1.0);
}

TEST(LangInterpTest, BreakAndContinue) {
  const char *Source = "int f(void) {\n"
                       "  int sum = 0;\n"
                       "  int i;\n"
                       "  for (i = 0; i < 10; i++) {\n"
                       "    if (i == 3) continue;\n"
                       "    if (i == 6) break;\n"
                       "    sum += i;\n"
                       "  }\n"
                       "  return sum;\n"
                       "}\n";
  EXPECT_EQ(runFunction(Source, "f", {}), 0 + 1 + 2 + 4 + 5);
}

TEST(LangInterpTest, PreAndPostIncrementValues) {
  const char *Source = "int f(void) {\n"
                       "  int x = 5;\n"
                       "  int a = x++;\n"
                       "  int b = ++x;\n"
                       "  return a * 100 + b * 10 + x;\n"
                       "}\n";
  EXPECT_EQ(runFunction(Source, "f", {}), 5.0 * 100 + 7 * 10 + 7);
}

TEST(LangInterpTest, ShortCircuitSkipsSideEffects) {
  const char *Source = "int f(void) {\n"
                       "  int guard = 0;\n"
                       "  int r = 0 && (guard = 1);\n"
                       "  int s = 1 || (guard = 1);\n"
                       "  return guard * 100 + r * 10 + s;\n"
                       "}\n";
  EXPECT_EQ(runFunction(Source, "f", {}), 1.0);
}

TEST(LangInterpTest, RecursionWorks) {
  const char *Source = "int fact(int n) {\n"
                       "  if (n <= 1) return 1;\n"
                       "  return n * fact(n - 1);\n"
                       "}\n";
  EXPECT_EQ(runFunction(Source, "fact", {10.0}), 3628800.0);
}

TEST(LangInterpTest, RunawayRecursionTraps) {
  auto TU = mustCompile("int f(int n) { return f(n + 1); }");
  Interpreter Interp(*TU);
  double Args[1] = {0.0};
  EXPECT_TRUE(std::isnan(Interp.callEntry(*TU->findFunction("f"), Args)));
  EXPECT_TRUE(Interp.trapped());
  EXPECT_NE(Interp.trapMessage().find("depth"), std::string::npos);
}

TEST(LangInterpTest, InfiniteLoopHitsStepBudget) {
  InterpOptions Opts;
  Opts.MaxSteps = 10000;
  auto TU = mustCompile("int f(int n) { while (n < 1) { } return n; }");
  Interpreter Interp(*TU, Opts);
  double Args[1] = {0.0};
  EXPECT_TRUE(std::isnan(Interp.callEntry(*TU->findFunction("f"), Args)));
  EXPECT_TRUE(Interp.trapped());
  EXPECT_NE(Interp.trapMessage().find("budget"), std::string::npos);
}

TEST(LangInterpTest, BuiltinsMatchLibm) {
  auto TU = mustCompile(
      "double f(double x) { return sqrt(fabs(x)) + copysign(1.0, x); }");
  Interpreter Interp(*TU);
  const FunctionDecl *F = TU->findFunction("f");
  Rng R(3);
  for (int I = 0; I < 500; ++I) {
    double X = R.wideDouble();
    if (std::isnan(X))
      continue;
    double Args[1] = {X};
    EXPECT_EQ(Interp.callEntry(*F, Args),
              std::sqrt(std::fabs(X)) + std::copysign(1.0, X));
  }
}

TEST(LangInterpTest, ScalbnBuiltinTakesIntExponent) {
  EXPECT_EQ(runFunction("double f(double x) { return scalbn(x, 3); }", "f",
                        {1.5}),
            12.0);
}

TEST(LangInterpTest, TernaryConvertsToCommonType) {
  EXPECT_EQ(runFunction(
                "double f(int c) { return c ? 1 : 2.5; }", "f", {1.0}),
            1.0);
  EXPECT_EQ(runFunction(
                "double f(int c) { return c ? 1 : 2.5; }", "f", {0.0}),
            2.5);
}

TEST(LangInterpTest, NegationOfIntMinWraps) {
  // -INT_MIN wraps back to INT_MIN (two's complement), not UB.
  const char *Source =
      "int f(void) { int x = -2147483647 - 1; return -x; }";
  EXPECT_EQ(runFunction(Source, "f", {}), -2147483648.0);
}

TEST(LangInterpTest, CommaExpressionYieldsLast) {
  EXPECT_EQ(runFunction(
                "int f(void) { int a = 0; int b = (a = 3, a + 1); return b; }",
                "f", {}),
            4.0);
}

TEST(LangInterpTest, GlobalInitializersMayReferenceEarlierGlobals) {
  const char *Source = "static const double base = 2.0;\n"
                       "static const double twice = base * 2.0;\n"
                       "double f(void) { return twice; }\n";
  EXPECT_EQ(runFunction(Source, "f", {}), 4.0);
}

TEST(LangInterpTest, PointerComparisonAgainstNull) {
  // `p != 0` on pointers evaluates (uninstrumented — Sect. 5.3 says such
  // conditions are ignored); a seeded double* entry cell is non-null.
  const char *Source = "int f(double *p) {\n"
                       "  if (p != 0) return 1;\n"
                       "  return 0;\n"
                       "}\n";
  auto TU = mustCompile(Source);
  EXPECT_EQ(TU->NumSites, 0u); // pointer conditions make no site
  Interpreter Interp(*TU);
  double Args[1] = {0.0};
  EXPECT_EQ(Interp.callEntry(*TU->findFunction("f"), Args), 1.0);
}

TEST(LangInterpTest, DoWhileConditionIsASite) {
  auto TU = mustCompile("double f(double x) {\n"
                        "  do x = x - 1.0; while (x > 0.0);\n"
                        "  return x;\n"
                        "}\n");
  EXPECT_EQ(TU->NumSites, 1u);
  Interpreter Interp(*TU);
  ExecutionContext Ctx(TU->NumSites);
  ExecutionContext::Scope Scope(Ctx);
  Ctx.beginRun();
  double Args[1] = {2.5};
  Interp.callEntry(*TU->findFunction("f"), Args);
  // Body first, then condition: 2.5 -> 1.5 (true), 0.5 (true), -0.5 (false).
  ASSERT_EQ(Ctx.Trace.size(), 3u);
  EXPECT_FALSE(Ctx.Trace.back().Outcome);
}

TEST(LangInterpTest, AssignmentThroughCastPointerToUnsigned) {
  // `*(unsigned *)&x = v` writes the low word; round-trips with FloatBits.
  const char *Source = "double f(double x) {\n"
                       "  *(unsigned *)&x = 0xdeadbeefu;\n"
                       "  return x;\n"
                       "}\n";
  auto TU = mustCompile(Source);
  Interpreter Interp(*TU);
  double Args[1] = {1.5};
  EXPECT_EQ(Interp.callEntry(*TU->findFunction("f"), Args),
            setLowWord(1.5, 0xdeadbeefu));
}

TEST(LangInterpTest, ChainedAssignmentAcrossTypes) {
  // `q = q1 = s0 = s1 = 0` with mixed int/unsigned declarations — the
  // e_sqrt.c idiom.
  const char *Source = "int f(void) {\n"
                       "  unsigned s1, q1;\n"
                       "  int s0, q;\n"
                       "  q = q1 = s0 = s1 = 0;\n"
                       "  return q + (int)q1 + s0 + (int)s1;\n"
                       "}\n";
  EXPECT_EQ(runFunction(Source, "f", {}), 0.0);
}

TEST(LangInterpTest, ShiftCountsAreMasked) {
  // C leaves shifts >= 32 undefined; the interpreter masks the count so
  // hostile mutants stay total. (Real Fdlibm never shifts >= 32.)
  EXPECT_EQ(runFunction("int f(void) { return 1 << 32; }", "f", {}), 1.0);
  EXPECT_EQ(runFunction("unsigned f(void) { unsigned x = 8u;"
                        " return x >> 33; }",
                        "f", {}),
            4.0);
}

//===----------------------------------------------------------------------===//
// Conditional-site hooks through the interpreter
//===----------------------------------------------------------------------===//

TEST(LangHookTest, SiteConditionsReportToExecutionContext) {
  auto TU = mustCompile("double f(double x) {\n"
                        "  if (x <= 1.0) return 0.0;\n"
                        "  return 1.0;\n"
                        "}\n");
  ASSERT_EQ(TU->NumSites, 1u);
  Interpreter Interp(*TU);
  const FunctionDecl *F = TU->findFunction("f");

  ExecutionContext Ctx(TU->NumSites);
  ExecutionContext::Scope Scope(Ctx);
  Ctx.beginRun();
  double Args[1] = {0.5};
  Interp.callEntry(*F, Args);
  ASSERT_EQ(Ctx.Trace.size(), 1u);
  EXPECT_EQ(Ctx.Trace[0].Site, 0u);
  EXPECT_TRUE(Ctx.Trace[0].Outcome);

  Ctx.beginRun();
  Args[0] = 2.0;
  Interp.callEntry(*F, Args);
  ASSERT_EQ(Ctx.Trace.size(), 1u);
  EXPECT_FALSE(Ctx.Trace[0].Outcome);
}

TEST(LangHookTest, LoopConditionFiresPerIteration) {
  auto TU = mustCompile("double f(double x) {\n"
                        "  while (x < 4.0) x = x + 1.0;\n"
                        "  return x;\n"
                        "}\n");
  Interpreter Interp(*TU);
  ExecutionContext Ctx(TU->NumSites);
  ExecutionContext::Scope Scope(Ctx);
  Ctx.beginRun();
  double Args[1] = {1.0};
  Interp.callEntry(*TU->findFunction("f"), Args);
  // Three true evaluations (1, 2, 3) plus the final false at 4.
  ASSERT_EQ(Ctx.Trace.size(), 4u);
  EXPECT_TRUE(Ctx.Trace[0].Outcome);
  EXPECT_FALSE(Ctx.Trace[3].Outcome);
}

TEST(LangHookTest, SitePromotionFollowsUsualConversions) {
  // `unsigned j; int i1; if (j < i1)` compares both operands as unsigned
  // in C. The site hook must promote AFTER that conversion: the signed
  // value of i1 seen as a double would flip the branch (the fdlibm
  // floor/ceil carry test is exactly this shape).
  const char *Source = "int f(double x) {\n"
                       "  unsigned j = 0x3d8c63b1u;\n"
                       "  int i1 = *(int *)&x;\n"
                       "  if (j < i1) return 1;\n"
                       "  return 0;\n"
                       "}\n";
  auto TU = mustCompile(Source);
  ASSERT_EQ(TU->NumSites, 1u);
  Interpreter Interp(*TU);
  ExecutionContext Ctx(TU->NumSites);
  ExecutionContext::Scope Scope(Ctx);
  Ctx.beginRun();
  // Low word of this double is 0xfd8c63b1: negative as int, large as
  // unsigned, so C says j < (unsigned)i1 holds.
  double X = bitsToDouble(0xc15a486dfd8c63b1ull);
  double Args[1] = {X};
  EXPECT_EQ(Interp.callEntry(*TU->findFunction("f"), Args), 1.0);
  ASSERT_EQ(Ctx.Trace.size(), 1u);
  EXPECT_TRUE(Ctx.Trace[0].Outcome);
}

TEST(LangHookTest, PenDistanceVisibleThroughSource) {
  // With the true arm saturated, pen at the site must equal the branch
  // distance to the false arm (Def. 4.2(b)).
  auto TU = mustCompile("double f(double x) {\n"
                        "  if (x == 4.0) return 0.0;\n"
                        "  return 1.0;\n"
                        "}\n");
  Interpreter Interp(*TU);
  ExecutionContext Ctx(TU->NumSites);
  Ctx.saturate({0, false}); // false arm saturated; target the true arm
  ExecutionContext::Scope Scope(Ctx);
  Ctx.beginRun();
  double Args[1] = {1.0};
  Interp.callEntry(*TU->findFunction("f"), Args);
  EXPECT_EQ(Ctx.R, (1.0 - 4.0) * (1.0 - 4.0));
}

//===----------------------------------------------------------------------===//
// SourceProgram pipeline
//===----------------------------------------------------------------------===//

/// s_tanh.c from Fdlibm 5.3 (the paper's Fig. 1), transliterated into the
/// supported subset with the exact conditional structure of the native
/// port in src/fdlibm/PortsHyperbolic.cpp (6 sites).
const char *TanhSource =
    "static const double one = 1.0, two = 2.0, tiny = 1.0e-300;\n"
    "double tanh(double x) {\n"
    "  double t, z;\n"
    "  int jx, ix;\n"
    "  jx = *(1 + (int *)&x);\n"
    "  ix = jx & 0x7fffffff;\n"
    "  if (ix >= 0x7ff00000) {\n"
    "    if (jx >= 0) return one / x + one;\n"
    "    else return one / x - one;\n"
    "  }\n"
    "  if (ix < 0x40360000) {\n"
    "    if (ix < 0x3c800000)\n"
    "      return x * (one + x);\n"
    "    if (ix >= 0x3ff00000) {\n"
    "      t = expm1(two * fabs(x));\n"
    "      z = one - two / (t + two);\n"
    "    } else {\n"
    "      t = expm1(-two * fabs(x));\n"
    "      z = -t / (t + two);\n"
    "    }\n"
    "  } else {\n"
    "    z = one - tiny;\n"
    "  }\n"
    "  if (jx >= 0) return z;\n"
    "  else return -z;\n"
    "}\n";

TEST(SourceProgramTest, CompilesTanhWithSixSites) {
  SourceProgram SP = compileSourceProgram(TanhSource, "tanh");
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  EXPECT_EQ(SP.Prog.NumSites, 6u);
  EXPECT_EQ(SP.Prog.Arity, 1u);
  EXPECT_EQ(SP.Prog.numBranches(), 12u); // the paper's Table 2 count
}

TEST(SourceProgramTest, InterpretedTanhBitIdenticalToNativePort) {
  SourceProgram SP = compileSourceProgram(TanhSource, "tanh");
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  const Program *Native = fdlibm::registry().lookup("tanh");
  ASSERT_NE(Native, nullptr);

  Rng R(5);
  for (int I = 0; I < 4000; ++I) {
    double X = R.rawBitsDouble();
    double Args[1] = {X};
    double Mine = SP.Prog.Body(Args);
    double Theirs = Native->Body(Args);
    EXPECT_EQ(doubleToBits(Mine), doubleToBits(Theirs))
        << "x = " << X << " (bits " << doubleToBits(X) << ")";
  }
}

TEST(SourceProgramTest, InterpretedTanhTracksLibm) {
  SourceProgram SP = compileSourceProgram(TanhSource, "tanh");
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  Rng R(17);
  for (int I = 0; I < 2000; ++I) {
    double X = R.uniform(-30.0, 30.0);
    double Args[1] = {X};
    EXPECT_NEAR(SP.Prog.Body(Args), std::tanh(X),
                1e-12 + std::fabs(std::tanh(X)) * 1e-12);
  }
}

TEST(SourceProgramTest, CoverMeFromSourceReachesFullCoverage) {
  // The paper's headline demo: full branch coverage of Fig. 1's tanh from
  // nothing but source text, in one campaign.
  SourceProgram SP = compileSourceProgram(TanhSource, "tanh");
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  CoverMeOptions Opts;
  Opts.NStart = 200;
  Opts.Seed = 3;
  CampaignResult Res = CoverMe(SP.Prog, Opts).run();
  // Every arm is genuinely covered. (The infeasibility heuristic may blame
  // an arm mid-campaign before a later accepted input covers it anyway;
  // only the final coverage is contractual.)
  EXPECT_EQ(Res.BranchCoverage, 1.0);
  EXPECT_TRUE(Res.AllSaturated);
}

TEST(SourceProgramTest, CampaignMatchesNativePortCoverage) {
  // Interpreted and native tanh give the same campaign outcome under the
  // same seed: the pipeline change is transparent to Algorithm 1.
  SourceProgram SP = compileSourceProgram(TanhSource, "tanh");
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  const Program *Native = fdlibm::registry().lookup("tanh");
  ASSERT_NE(Native, nullptr);
  ASSERT_EQ(SP.Prog.NumSites, Native->NumSites);

  CoverMeOptions Opts;
  Opts.NStart = 200;
  Opts.Seed = 4;
  CampaignResult Mine = CoverMe(SP.Prog, Opts).run();
  CampaignResult Theirs = CoverMe(*Native, Opts).run();
  EXPECT_EQ(Mine.BranchCoverage, Theirs.BranchCoverage);
}

TEST(SourceProgramTest, PointerEntryParameterLowering) {
  // modf-style signature: double modf(double x, double *iptr).
  const char *Source = "double f(double x, double *iptr) {\n"
                       "  double i = floor(x);\n"
                       "  *iptr = i;\n"
                       "  return x - i;\n"
                       "}\n";
  SourceProgram SP = compileSourceProgram(Source, "f");
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  EXPECT_EQ(SP.Prog.Arity, 2u);
  double Args[2] = {2.75, 0.0};
  EXPECT_EQ(SP.Prog.Body(Args), 0.75);
}

TEST(SourceProgramTest, ReportsUnknownEntry) {
  SourceProgram SP = compileSourceProgram("int f(void) { return 1; }", "g");
  EXPECT_FALSE(SP.success());
  EXPECT_NE(SP.diagnosticsText().find("not defined"), std::string::npos);
}

TEST(SourceProgramTest, ReportsParseErrors) {
  SourceProgram SP = compileSourceProgram("double f(double x) {", "f");
  EXPECT_FALSE(SP.success());
}

TEST(SourceProgramTest, ProgramOutlivesSourceProgramStruct) {
  Program Copy;
  {
    SourceProgram SP = compileSourceProgram(TanhSource, "tanh");
    ASSERT_TRUE(SP.success());
    Copy = SP.Prog;
  }
  double Args[1] = {0.5};
  EXPECT_NEAR(Copy.Body(Args), std::tanh(0.5), 1e-12);
}

TEST(SourceProgramTest, FooGooFunctionCallCampaign) {
  // Sect. 5.3 "Handling Function Calls": FOO calls GOO; only GOO has a
  // conditional, and instrumenting both (one shared site space) lets a
  // campaign on FOO saturate GOO's branches.
  const char *Source =
      "double goo(double x) {\n"
      "  if (sin(x) <= 0.99) return 1.0;\n"
      "  return 0.0;\n"
      "}\n"
      "double foo(double x) { return goo(x); }\n";
  SourceProgram SP = compileSourceProgram(Source, "foo");
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  EXPECT_EQ(SP.Prog.NumSites, 1u);

  CoverMeOptions Opts;
  Opts.NStart = 100;
  Opts.Seed = 7;
  CampaignResult Res = CoverMe(SP.Prog, Opts).run();
  EXPECT_EQ(Res.BranchCoverage, 1.0);
}

TEST(SourceProgramTest, InfeasibleBranchHeuristicFromSource) {
  // Sect. 5.3's walkthrough: with y = square(x) >= 0, the branch
  // `y == -1` is infeasible; the heuristic must deem exactly that arm
  // infeasible while everything reachable is covered.
  const char *Source =
      "double square(double v) { return v * v; }\n"
      "double foo(double x) {\n"
      "  double y;\n"
      "  if (x <= 1.0) x = x + 1.0;\n"
      "  y = square(x);\n"
      "  if (y == -1.0) return 1.0;\n"
      "  return 0.0;\n"
      "}\n";
  SourceProgram SP = compileSourceProgram(Source, "foo");
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  ASSERT_EQ(SP.Prog.NumSites, 2u);

  CoverMeOptions Opts;
  Opts.NStart = 120;
  Opts.Seed = 5;
  CampaignResult Res = CoverMe(SP.Prog, Opts).run();
  // Three of four arms are reachable and must be covered.
  EXPECT_TRUE(Res.Coverage.isCovered({0, true}));
  EXPECT_TRUE(Res.Coverage.isCovered({0, false}));
  EXPECT_TRUE(Res.Coverage.isCovered({1, false}));
  EXPECT_FALSE(Res.Coverage.isCovered({1, true}));
  // The campaign terminates via the heuristic writing off 1T.
  EXPECT_TRUE(Res.AllSaturated);
  bool Blamed1T = false;
  for (BranchRef Ref : Res.InfeasibleMarked)
    if (Ref.Site == 1 && Ref.Outcome)
      Blamed1T = true;
  EXPECT_TRUE(Blamed1T);
}

//===----------------------------------------------------------------------===//
// Theorem 4.3 through the source pipeline
//===----------------------------------------------------------------------===//

TEST(SourceProgramTest, Theorem43HoldsForInterpretedPrograms) {
  // C1 plus the soundness half of C2 over *arbitrary* saturation states:
  // FOO_R(x) >= 0 always, and FOO_R(x) == 0 implies executing x covers
  // some unsaturated arm. (The full biconditional needs Def. 3.2's
  // descendant-closed saturation — see
  // RuntimeTest.Theorem43WithDef32Saturation; soundness is what makes
  // accepted inputs always progress, and it must survive the interpreter
  // substrate.)
  SourceProgram SP = compileSourceProgram(TanhSource, "tanh");
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();

  Rng R(97);
  ExecutionContext Ctx(SP.Prog.NumSites);
  RepresentingFunction FR(SP.Prog, Ctx);

  for (int Round = 0; Round < 300; ++Round) {
    // Random saturation state.
    for (uint32_t Site = 0; Site < SP.Prog.NumSites; ++Site) {
      if (R.below(2))
        Ctx.saturate({Site, true});
      if (R.below(2))
        Ctx.saturate({Site, false});
    }
    for (int Probe = 0; Probe < 20; ++Probe) {
      double X = R.wideDouble();
      std::vector<double> Input = {X};
      double Value = FR(Input);
      ASSERT_GE(Value, 0.0) << "C1 violated at x = " << X; // C1

      // Ground truth: does x's path cover an unsaturated arm?
      Ctx.TraceEnabled = true;
      FR.execute(Input);
      bool CoversNew = false;
      for (BranchRef Ref : Ctx.Trace)
        if (!Ctx.isSaturated(Ref))
          CoversNew = true;
      if (Value == 0.0) {
        EXPECT_TRUE(CoversNew)
            << "C2 soundness violated at x = " << X;
      }
    }
    // Fresh state for the next round.
    Ctx = ExecutionContext(SP.Prog.NumSites);
  }
}

//===----------------------------------------------------------------------===//
// Property sweep: interpreted arithmetic equals compiled arithmetic
//===----------------------------------------------------------------------===//

struct ArithCase {
  const char *Name;
  const char *Source;
  double (*Reference)(double, double);
};

double refAddMul(double A, double B) {
  return A * B + (A - B);
}
double refBitMix(double A, double B) {
  int32_t I = highWord(A);
  int32_t J = highWord(B);
  return static_cast<double>((I & J) | ((I ^ J) >> 3));
}
double refCompareChain(double A, double B) {
  return (A < B ? 1.0 : 0.0) + (A == B ? 2.0 : 0.0) + (A >= B ? 4.0 : 0.0);
}

class LangEquivalenceTest : public ::testing::TestWithParam<ArithCase> {};

TEST_P(LangEquivalenceTest, MatchesCompiledSemantics) {
  const ArithCase &C = GetParam();
  SourceProgram SP = compileSourceProgram(C.Source, "f");
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  Rng R(23);
  for (int I = 0; I < 3000; ++I) {
    double A = R.wideDouble();
    double B = R.wideDouble();
    if (std::isnan(A) || std::isnan(B))
      continue;
    double Args[2] = {A, B};
    double Mine = SP.Prog.Body(Args);
    double Ref = C.Reference(A, B);
    EXPECT_EQ(doubleToBits(Mine), doubleToBits(Ref))
        << C.Name << " a=" << A << " b=" << B;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LangEquivalenceTest,
    ::testing::Values(
        ArithCase{"add_mul",
                  "double f(double a, double b) { return a * b + (a - b); }",
                  refAddMul},
        ArithCase{"bit_mix",
                  "double f(double a, double b) {\n"
                  "  int i = *(1 + (int *)&a);\n"
                  "  int j = *(1 + (int *)&b);\n"
                  "  return (i & j) | ((i ^ j) >> 3);\n"
                  "}\n",
                  refBitMix},
        ArithCase{"compare_chain",
                  "double f(double a, double b) {\n"
                  "  return (a < b ? 1.0 : 0.0) + (a == b ? 2.0 : 0.0)\n"
                  "       + (a >= b ? 4.0 : 0.0);\n"
                  "}\n",
                  refCompareChain}),
    [](const ::testing::TestParamInfo<ArithCase> &Info) {
      return Info.param.Name;
    });

//===----------------------------------------------------------------------===//
// Bytecode compiler: DoublePool deduplication
//===----------------------------------------------------------------------===//

TEST(LangBytecodeTest, DoublePoolDeduplicatesRepeatedLiterals) {
  // Eight literal occurrences, three distinct bit patterns. Fusion off so
  // PoolSize counts only literal slots (the peephole pass may fold
  // promoted integer constants into extra ones).
  const char *Source =
      "double f(double x) {\n"
      "  double a = 0.5, b = 0.5, c = 0.5;\n"
      "  double d = 1.0e300, e = 1.0e300;\n"
      "  double z = 0.0;\n"
      "  double w = -0.0;\n" /* negation of the 0.0 literal, not a slot */
      "  return (x + 0.5) * (a + b + c + d + e + z + w);\n"
      "}\n";
  SourceProgramOptions Opts;
  Opts.Fuse = false;
  SourceProgram SP = compileSourceProgram(Source, "f", Opts);
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  const bc::OptStats &Stats = SP.Code->Stats;
  EXPECT_EQ(Stats.PoolRequests, 8u);
  EXPECT_EQ(Stats.PoolSize, 3u); // 0.5, 1e300, 0.0
  EXPECT_LT(Stats.PoolSize, Stats.PoolRequests);
  EXPECT_EQ(SP.Code->DoublePool.size(), 3u);
}

TEST(LangBytecodeTest, DoublePoolKeepsSignedZerosDistinct) {
  // Dedup is by bit pattern: an explicit -0.0-valued constant must not
  // collapse onto +0.0 (their division behavior differs).
  const char *Source =
      "double f(double x) { return 1.0 / (x + 0.0) + 1.0 / (x - 0.0); }\n";
  SourceProgramOptions Opts;
  Opts.Fuse = false;
  SourceProgram SP = compileSourceProgram(Source, "f", Opts);
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  // 1.0 deduplicates (two requests, one slot); 0.0 is one slot.
  EXPECT_EQ(SP.Code->Stats.PoolRequests, 4u);
  EXPECT_EQ(SP.Code->Stats.PoolSize, 2u);
}

TEST(LangBytecodeTest, SuiteSubjectsDeduplicateTheirPools) {
  // Every embedded Fdlibm source repeats literals (one, two, huge, ...):
  // the dedup must make the pool strictly smaller than the request count
  // on at least the known-repetitive subjects, and never larger.
  for (const SourceBenchmark &B : sourceSuite()) {
    SourceProgramOptions Opts;
    Opts.Fuse = false;
    SourceProgram SP = compileSourceProgram(B.Source, B.Name, Opts);
    ASSERT_TRUE(SP.success()) << B.Name;
    const bc::OptStats &Stats = SP.Code->Stats;
    EXPECT_LE(Stats.PoolSize, Stats.PoolRequests) << B.Name;
  }
  const SourceBenchmark *Tanh = findSourceBenchmark("tanh");
  ASSERT_NE(Tanh, nullptr);
  SourceProgramOptions Opts;
  Opts.Fuse = false;
  SourceProgram SP = compileSourceProgram(Tanh->Source, "tanh", Opts);
  ASSERT_TRUE(SP.success());
  EXPECT_LT(SP.Code->Stats.PoolSize, SP.Code->Stats.PoolRequests);
}

} // namespace
