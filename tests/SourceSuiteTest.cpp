//===- SourceSuiteTest.cpp - The Fdlibm source suite, differentially ------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential and campaign tests over the ten embedded Fdlibm 5.3
/// sources: every benchmark must compile through the frontend, agree with
/// the host libm (and, where the native port is bit-faithful, with the
/// port bit-for-bit), and support a CoverMe campaign that dominates random
/// testing — the same qualitative contract the compiled suite satisfies,
/// now established for the interpreter path.
///
//===----------------------------------------------------------------------===//

#include "lang/SourceSuite.h"

#include "core/CoverMe.h"
#include "fdlibm/Fdlibm.h"
#include "fuzz/RandomTester.h"
#include "instrument/Instrumenter.h"
#include "lang/Sema.h"
#include "support/FloatBits.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace coverme;
using namespace coverme::lang;

namespace {

class SourceSuiteTest : public ::testing::TestWithParam<SourceBenchmark> {};

std::string paramName(
    const ::testing::TestParamInfo<SourceBenchmark> &Info) {
  return Info.param.Name;
}

TEST_P(SourceSuiteTest, CompilesCleanly) {
  SourceProgram SP = compileSourceBenchmark(GetParam());
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  EXPECT_GT(SP.Prog.NumSites, 0u);
  EXPECT_GE(SP.Prog.Arity, 1u);
  EXPECT_EQ(SP.Prog.TotalLines, GetParam().PaperLines);
}

TEST_P(SourceSuiteTest, NeverTrapsOnHostileInputs) {
  SourceProgram SP = compileSourceBenchmark(GetParam());
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  Rng R(31);
  std::vector<double> X(SP.Prog.Arity);
  for (int I = 0; I < 3000; ++I) {
    for (double &Coord : X)
      Coord = R.rawBitsDouble();
    (void)SP.Prog.Body(X.data());
    EXPECT_FALSE(SP.Interp->trapped())
        << GetParam().Name << ": " << SP.Interp->trapMessage();
  }
}

/// Per-benchmark coverage floors. Most of the suite saturates everything
/// reachable; logb and ilogb carry subnormal-gated arms the paper's own
/// sampler cannot reach either (Sect. D; Table 2 reports ilogb at 75% of
/// a site count that excludes the loops our frontend instruments).
double expectedCoverageFloor(const std::string &Name) {
  if (Name == "ilogb")
    return 0.3; // 6 of 12 arms sit under the subnormal gate, and the
                // blame heuristic burns rounds on them (paper Sect. D)
  if (Name == "logb")
    return 0.6; // the (ix|lx)==0 equality arm is a hard equality target
  if (Name == "cbrt")
    return 0.6; // the zero and NaN/inf gates are reachable only through the
                // wide sampler's specials table; whether those land before
                // the blame heuristic writes one off after the (genuinely
                // unreachable) subnormal arm is stream luck
  return 0.7;
}

TEST_P(SourceSuiteTest, CoverMeDominatesRandFromSource) {
  SourceProgram SP = compileSourceBenchmark(GetParam());
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();

  CoverMeOptions Opts;
  Opts.NStart = 200;
  Opts.Seed = 1;
  CampaignResult Mine = CoverMe(SP.Prog, Opts).run();

  RandomTesterOptions RandOpts;
  RandOpts.Seed = 1;
  TesterResult Rand =
      RandomTester(SP.Prog, RandOpts).run(10 * std::max<uint64_t>(
                                              Mine.Evaluations, 1000));

  EXPECT_GE(Mine.BranchCoverage, Rand.BranchCoverage) << GetParam().Name;
  EXPECT_GE(Mine.BranchCoverage, expectedCoverageFloor(GetParam().Name))
      << GetParam().Name;
}

TEST_P(SourceSuiteTest, BothFrontendsAgreeOnSites) {
  // The source-to-source Instrumenter (the static rewriter) and the lang
  // frontend implement the same site policy independently; on every suite
  // program they must number the same conditionals with the same
  // comparison operators in the same order.
  const SourceBenchmark &B = GetParam();
  instrument::InstrumentResult Rewritten =
      instrument::instrumentSource(B.Source);

  ParseResult Parsed = parseTranslationUnit(B.Source);
  ASSERT_TRUE(Parsed.success());
  std::vector<Diagnostic> Diags;
  ASSERT_TRUE(analyze(*Parsed.TU, Diags));

  ASSERT_EQ(Rewritten.Sites.size(), Parsed.TU->NumSites) << B.Name;
  // Recover each lang site's operator by walking statements in source
  // order — the instrumenter reports its own op per site.
  struct SiteOps {
    std::vector<CmpOp> Ops;
    void visitCond(const Expr &Cond, uint32_t Site) {
      if (Site == kNoSite)
        return;
      if (Ops.size() <= Site)
        Ops.resize(Site + 1, CmpOp::EQ);
      Ops[Site] = toCmpOp(exprCast<BinaryExpr>(Cond).Op);
    }
    void visit(const Stmt &S) {
      switch (S.Kind) {
      case StmtKind::Block:
        for (const auto &Child : stmtCast<BlockStmt>(S).Body)
          visit(*Child);
        break;
      case StmtKind::If: {
        const auto &If = stmtCast<IfStmt>(S);
        visitCond(*If.Cond, If.Site);
        visit(*If.Then);
        if (If.Else)
          visit(*If.Else);
        break;
      }
      case StmtKind::While: {
        const auto &W = stmtCast<WhileStmt>(S);
        visitCond(*W.Cond, W.Site);
        visit(*W.Body);
        break;
      }
      case StmtKind::DoWhile: {
        const auto &D = stmtCast<DoWhileStmt>(S);
        visitCond(*D.Cond, D.Site);
        visit(*D.Body);
        break;
      }
      case StmtKind::For: {
        const auto &F = stmtCast<ForStmt>(S);
        if (F.Cond)
          visitCond(*F.Cond, F.Site);
        visit(*F.Body);
        break;
      }
      default:
        break;
      }
    }
  } Walker;
  for (const auto &F : Parsed.TU->Functions)
    Walker.visit(*F->Body);

  ASSERT_EQ(Walker.Ops.size(), Rewritten.Sites.size()) << B.Name;
  for (size_t I = 0; I < Walker.Ops.size(); ++I)
    EXPECT_EQ(Walker.Ops[I], Rewritten.Sites[I].Op)
        << B.Name << " site " << I;
}

INSTANTIATE_TEST_SUITE_P(Fdlibm, SourceSuiteTest,
                         ::testing::ValuesIn(sourceSuite()), paramName);

//===----------------------------------------------------------------------===//
// Differential equivalence: interpreter vs libm
//===----------------------------------------------------------------------===//

/// Benchmarks whose reference is the host libm function of the same name,
/// compared bit-for-bit (these are exactly-rounded or word-twiddling
/// functions where Fdlibm and a correct libm must agree).
struct ExactCase {
  const char *Name;
  double (*Ref)(double);
};

double refRint(double X) { return std::rint(X); }
double refFloor(double X) { return std::floor(X); }
double refCeil(double X) { return std::ceil(X); }
double refSqrt(double X) { return std::sqrt(X); }

class SourceExactTest : public ::testing::TestWithParam<ExactCase> {};

TEST_P(SourceExactTest, BitForBitAgainstLibm) {
  const SourceBenchmark *B = findSourceBenchmark(GetParam().Name);
  ASSERT_NE(B, nullptr);
  SourceProgram SP = compileSourceBenchmark(*B);
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  Rng R(41);
  for (int I = 0; I < 4000; ++I) {
    double X = R.rawBitsDouble();
    double Args[1] = {X};
    double Mine = SP.Prog.Body(Args);
    double Ref = GetParam().Ref(X);
    // NaN payloads may differ; both-NaN counts as agreement.
    if (std::isnan(Mine) && std::isnan(Ref))
      continue;
    EXPECT_EQ(doubleToBits(Mine), doubleToBits(Ref))
        << GetParam().Name << "(" << X << ") bits "
        << doubleToBits(X);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SourceExactTest,
    ::testing::Values(ExactCase{"rint", refRint}, ExactCase{"floor", refFloor},
                      ExactCase{"ceil", refCeil}, ExactCase{"sqrt", refSqrt}),
    [](const ::testing::TestParamInfo<ExactCase> &Info) {
      return Info.param.Name;
    });

TEST(SourceExactTest, CbrtWithinFourUlpOfLibm) {
  // Fdlibm's cbrt guarantees < 0.667 ulp from the true value and the host
  // libm's carries its own few-ulp error (glibc documents up to ~3), so
  // the two implementations can land a few representable values apart.
  const SourceBenchmark *B = findSourceBenchmark("cbrt");
  ASSERT_NE(B, nullptr);
  SourceProgram SP = compileSourceBenchmark(*B);
  ASSERT_TRUE(SP.success());
  Rng R(59);
  for (int I = 0; I < 4000; ++I) {
    double X = R.rawBitsDouble();
    if (std::isnan(X))
      continue;
    double Args[1] = {X};
    double Mine = SP.Prog.Body(Args);
    double Ref = std::cbrt(X);
    EXPECT_LE(ulpDistance(Mine, Ref), 4u) << "cbrt(" << X << ")";
  }
}

TEST(SourceExactTest, LogbMatchesLibmOnNormals) {
  // Fdlibm's logb predates IEEE 754-2008's subnormal semantics: it reports
  // -1022 for every subnormal where a modern libm reports the true
  // exponent. Normal inputs (and zero/inf/NaN) agree bit-for-bit; the
  // subnormal convention is pinned against the native port instead
  // (SourceVsPortTest).
  const SourceBenchmark *B = findSourceBenchmark("logb");
  ASSERT_NE(B, nullptr);
  SourceProgram SP = compileSourceBenchmark(*B);
  ASSERT_TRUE(SP.success());
  Rng R(61);
  for (int I = 0; I < 4000; ++I) {
    double X = R.rawBitsDouble();
    if (isSubnormal(X))
      continue;
    double Args[1] = {X};
    double Mine = SP.Prog.Body(Args);
    double Ref = std::logb(X);
    if (std::isnan(Mine) && std::isnan(Ref))
      continue;
    EXPECT_EQ(doubleToBits(Mine), doubleToBits(Ref)) << "logb(" << X << ")";
  }
}

/// Benchmarks compared against libm within a tight relative tolerance
/// (Fdlibm's kernels differ from a modern libm's by < 1 ulp but not
/// bit-for-bit on every input).
struct ApproxCase {
  const char *Name;
  double (*Ref)(double);
  double Lo, Hi; ///< Domain to sample.
};

class SourceApproxTest : public ::testing::TestWithParam<ApproxCase> {};

TEST_P(SourceApproxTest, TracksLibmClosely) {
  const SourceBenchmark *B = findSourceBenchmark(GetParam().Name);
  ASSERT_NE(B, nullptr);
  SourceProgram SP = compileSourceBenchmark(*B);
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  Rng R(43);
  for (int I = 0; I < 3000; ++I) {
    double X = R.uniform(GetParam().Lo, GetParam().Hi);
    double Args[1] = {X};
    double Mine = SP.Prog.Body(Args);
    double Ref = GetParam().Ref(X);
    if (std::isnan(Mine) && std::isnan(Ref))
      continue;
    EXPECT_NEAR(Mine, Ref, std::fabs(Ref) * 1e-16 * 8 + 1e-300)
        << GetParam().Name << "(" << X << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SourceApproxTest,
    ::testing::Values(ApproxCase{"tanh", [](double X) { return std::tanh(X); },
                                 -30.0, 30.0},
                      ApproxCase{"asinh",
                                 [](double X) { return std::asinh(X); },
                                 -1e9, 1e9},
                      ApproxCase{"acosh",
                                 [](double X) { return std::acosh(X); }, 1.0,
                                 1e9},
                      ApproxCase{"atanh",
                                 [](double X) { return std::atanh(X); },
                                 -0.999999, 0.999999},
                      ApproxCase{"cosh", [](double X) { return std::cosh(X); },
                                 -700.0, 700.0}),
    [](const ::testing::TestParamInfo<ApproxCase> &Info) {
      return Info.param.Name;
    });

//===----------------------------------------------------------------------===//
// Point checks that pin down the special-value plumbing
//===----------------------------------------------------------------------===//

TEST(SourceSuitePointTest, IlogbSpecialValues) {
  const SourceBenchmark *B = findSourceBenchmark("ilogb");
  ASSERT_NE(B, nullptr);
  SourceProgram SP = compileSourceBenchmark(*B);
  ASSERT_TRUE(SP.success());
  auto Call = [&](double X) {
    double Args[1] = {X};
    return SP.Prog.Body(Args);
  };
  EXPECT_EQ(Call(0.0), static_cast<double>(static_cast<int32_t>(0x80000001)));
  EXPECT_EQ(Call(1.0), 0.0);
  EXPECT_EQ(Call(1024.0), 10.0);
  EXPECT_EQ(Call(0.25), -2.0);
  EXPECT_EQ(Call(std::numeric_limits<double>::infinity()), 2147483647.0);
  // Subnormals run the bit-sliding loops.
  EXPECT_EQ(Call(4.9406564584124654e-324), -1074.0); // min subnormal
  EXPECT_EQ(Call(2.2250738585072009e-308), -1023.0); // max subnormal
}

TEST(SourceSuitePointTest, ModfFractionMatchesLibm) {
  const SourceBenchmark *B = findSourceBenchmark("modf");
  ASSERT_NE(B, nullptr);
  SourceProgram SP = compileSourceBenchmark(*B);
  ASSERT_TRUE(SP.success());
  Rng R(47);
  for (int I = 0; I < 3000; ++I) {
    double X = R.wideDouble();
    if (std::isnan(X))
      continue;
    double Args[2] = {X, 0.0};
    double Mine = SP.Prog.Body(Args);
    double Ip;
    double Ref = std::modf(X, &Ip);
    EXPECT_EQ(doubleToBits(Mine), doubleToBits(Ref)) << "x = " << X;
  }
}

TEST(SourceSuitePointTest, CoshOverflowBoundary) {
  const SourceBenchmark *B = findSourceBenchmark("cosh");
  ASSERT_NE(B, nullptr);
  SourceProgram SP = compileSourceBenchmark(*B);
  ASSERT_TRUE(SP.success());
  double Args[1] = {711.0}; // past the overflow threshold
  EXPECT_TRUE(std::isinf(SP.Prog.Body(Args)));
  Args[0] = 710.4758600739439; // just below overflowthresold
  EXPECT_TRUE(std::isfinite(SP.Prog.Body(Args)));
}

TEST(SourceSuitePointTest, AcoshDomainError) {
  const SourceBenchmark *B = findSourceBenchmark("acosh");
  SourceProgram SP = compileSourceBenchmark(*B);
  ASSERT_TRUE(SP.success());
  double Args[1] = {0.5};
  EXPECT_TRUE(std::isnan(SP.Prog.Body(Args)));
  Args[0] = 1.0;
  EXPECT_EQ(SP.Prog.Body(Args), 0.0);
}

TEST(SourceSuitePointTest, AtanhPoles) {
  const SourceBenchmark *B = findSourceBenchmark("atanh");
  SourceProgram SP = compileSourceBenchmark(*B);
  ASSERT_TRUE(SP.success());
  double Args[1] = {1.0};
  EXPECT_TRUE(std::isinf(SP.Prog.Body(Args)));
  Args[0] = -1.0;
  double V = SP.Prog.Body(Args);
  EXPECT_TRUE(std::isinf(V));
  EXPECT_LT(V, 0.0);
  Args[0] = 1.5;
  EXPECT_TRUE(std::isnan(SP.Prog.Body(Args)));
}

//===----------------------------------------------------------------------===//
// Differential equivalence: interpreter vs the native ports
//===----------------------------------------------------------------------===//

TEST(SourceVsPortTest, WordExactPortsAgreeBitForBit) {
  // These ports are bit-faithful Fdlibm (word manipulation only), so the
  // interpreted sources must match them on every input, including the
  // subnormals and NaNs the libm comparison skips.
  for (const char *Name :
       {"rint", "logb", "ilogb", "modf", "tanh", "floor", "ceil", "sqrt",
        "nextafter"}) {
    const SourceBenchmark *B = findSourceBenchmark(Name);
    ASSERT_NE(B, nullptr) << Name;
    SourceProgram SP = compileSourceBenchmark(*B);
    ASSERT_TRUE(SP.success()) << Name << ": " << SP.diagnosticsText();
    const Program *Port = fdlibm::registry().lookup(B->NativePort);
    ASSERT_NE(Port, nullptr) << B->NativePort;
    ASSERT_EQ(SP.Prog.Arity, Port->Arity) << Name;

    Rng R(53);
    std::vector<double> X(SP.Prog.Arity);
    for (int I = 0; I < 3000; ++I) {
      for (double &Coord : X)
        Coord = R.rawBitsDouble();
      double Mine = SP.Prog.Body(X.data());
      double Theirs = Port->Body(X.data());
      if (std::isnan(Mine) && std::isnan(Theirs))
        continue;
      EXPECT_EQ(doubleToBits(Mine), doubleToBits(Theirs))
          << Name << "(" << X[0] << ")";
    }
  }
}

} // namespace
