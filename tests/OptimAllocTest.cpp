//===- OptimAllocTest.cpp - Zero-allocation probe-loop guarantees ----------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Proves the evaluation pipeline's zero-allocation contract: once a
/// minimizer instance's workspace is warm, a minimization run performs no
/// heap allocation per probe — the total allocation count of a run is a
/// small constant, independent of how many objective evaluations it makes.
///
/// The whole binary's operator new/delete are replaced with counting
/// versions (this is why these tests live in their own test executable).
/// Two angles:
///
///  * warm steady-state runs of Powell / Nelder-Mead / coordinate descent
///    allocate at most the per-run constant (result vector churn), never
///    O(probes);
///  * doubling the evaluation budget leaves the allocation count of the
///    budget-limited run unchanged — allocations cannot be proportional
///    to probe count.
///
//===----------------------------------------------------------------------===//

#include "optim/Basinhopping.h"
#include "optim/CoordinateDescent.h"
#include "optim/NelderMead.h"
#include "optim/Powell.h"
#include "optim/SimulatedAnnealing.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <gtest/gtest.h>
#include <new>

namespace {

std::atomic<uint64_t> GAllocCount{0};

uint64_t allocCount() {
  return GAllocCount.load(std::memory_order_relaxed);
}

void *countedAlloc(size_t Size) {
  GAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}

} // namespace

// Binary-wide counting allocator. All replaceable forms funnel here so no
// allocation escapes the count.
void *operator new(size_t Size) { return countedAlloc(Size); }
void *operator new[](size_t Size) { return countedAlloc(Size); }
void *operator new(size_t Size, const std::nothrow_t &) noexcept {
  GAllocCount.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(Size ? Size : 1);
}
void *operator new[](size_t Size, const std::nothrow_t &) noexcept {
  GAllocCount.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(Size ? Size : 1);
}
void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, size_t) noexcept { std::free(P); }
void operator delete[](void *P, size_t) noexcept { std::free(P); }
void operator delete(void *P, const std::nothrow_t &) noexcept {
  std::free(P);
}
void operator delete[](void *P, const std::nothrow_t &) noexcept {
  std::free(P);
}

using namespace coverme;

namespace {

/// An allocation-free objective that counts its own calls: a shifted
/// sphere with a kink, enough structure to keep the minimizers probing.
struct ProbeCounter {
  uint64_t Probes = 0;
  double eval(const double *X, size_t N) {
    ++Probes;
    double S = 0.0;
    for (size_t I = 0; I < N; ++I) {
      double D = X[I] - (1.5 + static_cast<double>(I));
      S += D * D + 0.25 * (D < 0.0 ? -D : D);
    }
    return S;
  }
};

/// Allocations during one minimize() call on a warm minimizer, plus the
/// probe count it made.
struct RunCost {
  uint64_t Allocs = 0;
  uint64_t Probes = 0;
};

RunCost measureRun(const LocalMinimizer &LM, ProbeCounter &Fn,
                   const std::vector<double> &Start) {
  ObjectiveFn Obj(Fn);
  uint64_t Probes0 = Fn.Probes;
  uint64_t Allocs0 = allocCount();
  MinimizeResult Res = LM.minimize(Obj, Start);
  RunCost Cost;
  Cost.Allocs = allocCount() - Allocs0;
  Cost.Probes = Fn.Probes - Probes0;
  EXPECT_EQ(Res.NumEvals, Cost.Probes);
  return Cost;
}

class LocalMinimizerAllocTest
    : public ::testing::TestWithParam<LocalMinimizerKind> {};

TEST_P(LocalMinimizerAllocTest, SteadyStateRunAllocatesConstantNotPerProbe) {
  LocalMinimizerOptions Opts;
  Opts.MaxEvaluations = 4000;
  auto LM = makeLocalMinimizer(GetParam(), Opts);
  ProbeCounter Fn;
  std::vector<double> Start = {80.0, -45.0, 20.0};

  // Warm the per-instance workspace (first run sizes the arenas).
  measureRun(*LM, Fn, Start);

  RunCost Warm = measureRun(*LM, Fn, Start);
  ASSERT_GT(Warm.Probes, 100u) << "fixture stopped probing too early to "
                                  "say anything about steady state";
  // The per-run constant: copying Start into the argument, the result
  // vector, and nothing else. Anything O(probes) explodes past this.
  EXPECT_LE(Warm.Allocs, 4u)
      << localMinimizerKindName(GetParam()) << " allocated " << Warm.Allocs
      << " times across " << Warm.Probes << " probes";
}

/// A "restless" objective the minimizers can never converge on: a
/// quadratic bowl whose baseline sinks a little on every call. Later
/// probes always see fresh improvement, so no tolerance test can fire and
/// the evaluation budget is the binding stop condition — which is what
/// this test needs. Deterministic: the value depends only on the probe
/// point and the probe index.
struct RestlessCounter {
  uint64_t Probes = 0;
  double eval(const double *X, size_t N) {
    ++Probes;
    double S = 0.0;
    for (size_t I = 0; I < N; ++I) {
      double D = X[I] - 1.3;
      S += D * D;
    }
    return S - 1e-4 * static_cast<double>(Probes);
  }
};

TEST_P(LocalMinimizerAllocTest, AllocationsIndependentOfProbeBudget) {
  RestlessCounter Fn;
  std::vector<double> Start = {-30.0, 40.0, -30.0, 40.0};

  auto CostAtBudget = [&](uint64_t Budget) {
    LocalMinimizerOptions Opts;
    Opts.MaxEvaluations = Budget;
    Opts.MaxIterations = 100000; // the budget is the binding constraint
    Opts.FTol = 0.0;
    auto LM = makeLocalMinimizer(GetParam(), Opts);
    ObjectiveFn Obj(Fn);
    (void)LM->minimize(Obj, Start); // warm the workspace
    uint64_t Probes0 = Fn.Probes;
    uint64_t Allocs0 = allocCount();
    (void)LM->minimize(Obj, Start);
    return RunCost{allocCount() - Allocs0, Fn.Probes - Probes0};
  };

  RunCost Small = CostAtBudget(500);
  RunCost Large = CostAtBudget(2000);
  ASSERT_GT(Large.Probes, Small.Probes + 200)
      << "budgets did not separate probe counts";
  EXPECT_EQ(Small.Allocs, Large.Allocs)
      << localMinimizerKindName(GetParam())
      << ": 4x probe budget changed the allocation count — something "
         "allocates per probe";
}

INSTANTIATE_TEST_SUITE_P(
    CoreLocalMinimizers, LocalMinimizerAllocTest,
    ::testing::Values(LocalMinimizerKind::Powell,
                      LocalMinimizerKind::NelderMead,
                      LocalMinimizerKind::CoordinateDescent),
    [](const auto &Info) {
      std::string Name = localMinimizerKindName(Info.param);
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

TEST(AnnealingAllocTest, MetropolisStepsAreAllocationFree) {
  // Simulated annealing's step *is* a probe; its warm loop must allocate
  // a constant too (best-point copies only happen on improvement, into
  // an already-sized vector).
  AnnealingOptions Opts;
  Opts.NumSteps = 3000;
  SimulatedAnnealingMinimizer SA(Opts);
  ProbeCounter Fn;
  ObjectiveFn Obj(Fn);
  std::vector<double> Start = {10.0, -4.0};
  Rng R(3);
  (void)SA.minimize(Obj, Start, R); // warm
  uint64_t Allocs0 = allocCount();
  uint64_t Probes0 = Fn.Probes;
  Rng R2(3);
  (void)SA.minimize(Obj, Start, R2);
  uint64_t Allocs = allocCount() - Allocs0;
  uint64_t Probes = Fn.Probes - Probes0;
  ASSERT_GT(Probes, 1000u);
  EXPECT_LE(Allocs, 4u) << Allocs << " allocations across " << Probes
                        << " annealing probes";
}

TEST(CountingObjectiveAllocTest, ViewAndWrapperAllocateNothing) {
  ProbeCounter Fn;
  uint64_t Allocs0 = allocCount();
  ObjectiveFn Obj(Fn);
  CountingObjective Counted(Obj);
  double X[3] = {1.0, 2.0, 3.0};
  double Out[1] = {};
  for (int I = 0; I < 1000; ++I) {
    (void)Counted.eval(X, 3);
    Counted.evalBatch(X, 1, 3, Out);
  }
  EXPECT_EQ(allocCount(), Allocs0);
  EXPECT_EQ(Counted.numEvals(), 2000u);
}

} // namespace
