//===- RuntimeTest.cpp - Unit tests for the instrumentation runtime ---------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// Exercises Def. 4.1 (branch distance, property Eq. 8), Def. 4.2 (pen),
// the representing function's conditions C1/C2, and Thm. 4.3 on the
// paper's FOO example.
//
//===----------------------------------------------------------------------===//

#include "runtime/BranchDistance.h"
#include "runtime/Coverage.h"
#include "runtime/ExecutionContext.h"
#include "runtime/Hooks.h"
#include "runtime/RepresentingFunction.h"
#include "runtime/SaturationTable.h"
#include "support/Random.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <gtest/gtest.h>
#include <thread>

using namespace coverme;

//===----------------------------------------------------------------------===//
// CmpOp
//===----------------------------------------------------------------------===//

TEST(CmpOpTest, NegationIsInvolutive) {
  for (CmpOp Op : {CmpOp::EQ, CmpOp::NE, CmpOp::LT, CmpOp::LE, CmpOp::GT,
                   CmpOp::GE})
    EXPECT_EQ(negateCmpOp(negateCmpOp(Op)), Op);
}

TEST(CmpOpTest, NegationFlipsOutcome) {
  Rng R(3);
  for (int I = 0; I < 2000; ++I) {
    double A = R.uniform(-10, 10), B = R.uniform(-10, 10);
    for (CmpOp Op : {CmpOp::EQ, CmpOp::NE, CmpOp::LT, CmpOp::LE, CmpOp::GT,
                     CmpOp::GE})
      EXPECT_NE(evalCmpOp(Op, A, B), evalCmpOp(negateCmpOp(Op), A, B));
  }
}

TEST(CmpOpTest, SpellingRoundTrip) {
  for (CmpOp Op : {CmpOp::EQ, CmpOp::NE, CmpOp::LT, CmpOp::LE, CmpOp::GT,
                   CmpOp::GE})
    EXPECT_EQ(parseCmpOp(cmpOpSpelling(Op)), Op);
}

TEST(CmpOpTest, NaNComparisonSemantics) {
  double NaN = std::nan("");
  EXPECT_FALSE(evalCmpOp(CmpOp::EQ, NaN, NaN));
  EXPECT_TRUE(evalCmpOp(CmpOp::NE, NaN, 1.0));
  EXPECT_FALSE(evalCmpOp(CmpOp::LT, NaN, 1.0));
  EXPECT_FALSE(evalCmpOp(CmpOp::GE, NaN, 1.0));
}

//===----------------------------------------------------------------------===//
// Branch distance: the Eq. 8 property, swept over operators and operands
//===----------------------------------------------------------------------===//

class BranchDistancePropertyTest : public ::testing::TestWithParam<CmpOp> {};

TEST_P(BranchDistancePropertyTest, NonNegativeAndZeroIffHolds) {
  CmpOp Op = GetParam();
  Rng R(17);
  for (int I = 0; I < 5000; ++I) {
    double A, B;
    // Mix equal pairs in so EQ/LE/GE boundary cases are exercised. The
    // magnitudes stay within 2^+-100 so the squared distance cannot
    // underflow to zero for unequal operands — the floating-point caveat
    // Remark 6.1 documents, tested separately below.
    auto Moderate = [&R]() {
      double Mantissa = R.uniform(1.0, 2.0);
      int Exp = static_cast<int>(R.below(200)) - 100;
      double Sign = R.chance(0.5) ? 1.0 : -1.0;
      return Sign * std::ldexp(Mantissa, Exp);
    };
    if (I % 5 == 0) {
      A = B = R.uniform(-100, 100);
    } else {
      A = Moderate();
      B = Moderate();
    }
    double D = branchDistance(Op, A, B);
    EXPECT_GE(D, 0.0) << cmpOpSpelling(Op) << " " << A << " " << B;
    EXPECT_EQ(D == 0.0, evalCmpOp(Op, A, B))
        << cmpOpSpelling(Op) << " " << A << " " << B;
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, BranchDistancePropertyTest,
                         ::testing::Values(CmpOp::EQ, CmpOp::NE, CmpOp::LT,
                                           CmpOp::LE, CmpOp::GT, CmpOp::GE),
                         [](const auto &Info) {
                           switch (Info.param) {
                           case CmpOp::EQ: return std::string("EQ");
                           case CmpOp::NE: return std::string("NE");
                           case CmpOp::LT: return std::string("LT");
                           case CmpOp::LE: return std::string("LE");
                           case CmpOp::GT: return std::string("GT");
                           case CmpOp::GE: return std::string("GE");
                           }
                           return std::string("unknown");
                         });

TEST(BranchDistanceTest, MatchesDef41Formulas) {
  // d(==,a,b) = (a-b)^2.
  EXPECT_DOUBLE_EQ(branchDistance(CmpOp::EQ, 7.0, 3.0), 16.0);
  // d(<=,a,b) = 0 when holds, (a-b)^2 otherwise.
  EXPECT_EQ(branchDistance(CmpOp::LE, 1.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(branchDistance(CmpOp::LE, 5.0, 2.0), 9.0);
  // d(<,a,b) carries the epsilon when violated.
  EXPECT_EQ(branchDistance(CmpOp::LT, 1.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(branchDistance(CmpOp::LT, 2.0, 2.0, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(branchDistance(CmpOp::LT, 3.0, 2.0, 0.5), 1.5);
  // d(!=,a,b) = eps when equal.
  EXPECT_DOUBLE_EQ(branchDistance(CmpOp::NE, 4.0, 4.0, 0.25), 0.25);
  EXPECT_EQ(branchDistance(CmpOp::NE, 4.0, 5.0), 0.0);
  // Mirrored operators.
  EXPECT_DOUBLE_EQ(branchDistance(CmpOp::GE, 2.0, 5.0),
                   branchDistance(CmpOp::LE, 5.0, 2.0));
  EXPECT_DOUBLE_EQ(branchDistance(CmpOp::GT, 2.0, 5.0, 0.5),
                   branchDistance(CmpOp::LT, 5.0, 2.0, 0.5));
}

TEST(BranchDistanceTest, SquaredDistanceUnderflowCaveat) {
  // Remark 6.1: FOO_R can evaluate to zero without the condition holding
  // when (a-b)^2 underflows. Pin down that documented behaviour.
  double A = 1.0e-200, B = 1.5e-200; // (a-b)^2 = 2.5e-401 -> 0
  EXPECT_NE(A, B);
  EXPECT_EQ(branchDistance(CmpOp::EQ, A, B), 0.0);
}

TEST(BranchDistanceTest, DistanceShrinksMonotonically) {
  // Closer operands give smaller distance — what gradient descent uses.
  double Prev = branchDistance(CmpOp::EQ, 10.0, 0.0);
  for (double A = 9.0; A >= 0.0; A -= 1.0) {
    double D = branchDistance(CmpOp::EQ, A, 0.0);
    EXPECT_LT(D, Prev);
    Prev = D;
  }
}

//===----------------------------------------------------------------------===//
// pen (Def. 4.2)
//===----------------------------------------------------------------------===//

TEST(PenTest, NeitherArmSaturatedReturnsZero) {
  ExecutionContext Ctx(2);
  EXPECT_EQ(Ctx.pen(0, CmpOp::LT, 100.0, 1.0), 0.0);
}

TEST(PenTest, TrueArmUnsaturatedTargetsTrueArm) {
  ExecutionContext Ctx(2);
  Ctx.saturate({0, false}); // F saturated, T not.
  // pen = d(op, a, b): distance to making the condition true.
  EXPECT_DOUBLE_EQ(Ctx.pen(0, CmpOp::LE, 5.0, 2.0), 9.0);
  EXPECT_EQ(Ctx.pen(0, CmpOp::LE, 1.0, 2.0), 0.0);
}

TEST(PenTest, FalseArmUnsaturatedTargetsOppositeOp) {
  ExecutionContext Ctx(2);
  Ctx.saturate({0, true}); // T saturated, F not.
  // pen = d(!op, a, b): distance to making the condition false.
  EXPECT_EQ(Ctx.pen(0, CmpOp::LE, 5.0, 2.0), 0.0);
  EXPECT_GT(Ctx.pen(0, CmpOp::LE, 1.0, 2.0), 0.0);
}

TEST(PenTest, BothSaturatedKeepsR) {
  ExecutionContext Ctx(2);
  Ctx.saturate({0, true});
  Ctx.saturate({0, false});
  Ctx.R = 42.0;
  EXPECT_EQ(Ctx.pen(0, CmpOp::EQ, 1.0, 99.0), 42.0);
}

//===----------------------------------------------------------------------===//
// ExecutionContext
//===----------------------------------------------------------------------===//

TEST(ExecutionContextTest, ScopeInstallsAndRestores) {
  EXPECT_EQ(ExecutionContext::current(), nullptr);
  ExecutionContext Outer(1), Inner(1);
  {
    ExecutionContext::Scope S1(Outer);
    EXPECT_EQ(ExecutionContext::current(), &Outer);
    {
      ExecutionContext::Scope S2(Inner);
      EXPECT_EQ(ExecutionContext::current(), &Inner);
    }
    EXPECT_EQ(ExecutionContext::current(), &Outer);
  }
  EXPECT_EQ(ExecutionContext::current(), nullptr);
}

TEST(ExecutionContextTest, HookWithoutContextJustEvaluates) {
  EXPECT_TRUE(rt::cond(0, CmpOp::LT, 1.0, 2.0));
  EXPECT_FALSE(rt::cond(123456, CmpOp::GT, 1.0, 2.0)); // any site id is fine
}

TEST(ExecutionContextTest, EvalCondRecordsTraceAndCoverage) {
  ExecutionContext Ctx(2);
  CoverageMap Map(2);
  Ctx.Coverage = &Map;
  ExecutionContext::Scope S(Ctx);
  Ctx.beginRun();
  EXPECT_TRUE(rt::cond(0, CmpOp::LT, 1.0, 2.0));
  EXPECT_FALSE(rt::cond(1, CmpOp::EQ, 1.0, 2.0));
  ASSERT_EQ(Ctx.Trace.size(), 2u);
  EXPECT_EQ(Ctx.Trace[0], (BranchRef{0, true}));
  EXPECT_EQ(Ctx.Trace[1], (BranchRef{1, false}));
  EXPECT_EQ(Map.hits(0, true), 1u);
  EXPECT_EQ(Map.hits(1, false), 1u);
  EXPECT_EQ(Map.hits(1, true), 0u);
}

TEST(ExecutionContextTest, SaturationBookkeeping) {
  ExecutionContext Ctx(3);
  EXPECT_FALSE(Ctx.allSaturated());
  EXPECT_EQ(Ctx.saturatedCount(), 0u);
  for (uint32_t S = 0; S < 3; ++S) {
    Ctx.saturate({S, true});
    Ctx.saturate({S, false});
  }
  EXPECT_TRUE(Ctx.allSaturated());
  EXPECT_EQ(Ctx.saturatedCount(), 6u);
}

TEST(ExecutionContextTest, OperandRecording) {
  ExecutionContext Ctx(2);
  Ctx.RecordOperands = true;
  ExecutionContext::Scope S(Ctx);
  Ctx.beginRun();
  rt::cond(1, CmpOp::GE, 9.0, 4.0);
  ASSERT_EQ(Ctx.Observations.size(), 2u);
  EXPECT_FALSE(Ctx.Observations[0].Executed);
  EXPECT_TRUE(Ctx.Observations[1].Executed);
  EXPECT_EQ(Ctx.Observations[1].Op, CmpOp::GE);
  EXPECT_EQ(Ctx.Observations[1].A, 9.0);
  EXPECT_EQ(Ctx.Observations[1].B, 4.0);
}

//===----------------------------------------------------------------------===//
// CoverageMap
//===----------------------------------------------------------------------===//

TEST(SaturationTableTest, SaturateIsIdempotentAndVersioned) {
  SaturationTable Table(2);
  EXPECT_EQ(Table.version(), 0u);
  EXPECT_TRUE(Table.saturate({0, true}));
  EXPECT_EQ(Table.version(), 1u);
  EXPECT_FALSE(Table.saturate({0, true})); // already saturated: no bump
  EXPECT_EQ(Table.version(), 1u);
  EXPECT_TRUE(Table.isSaturated({0, true}));
  EXPECT_FALSE(Table.isSaturated({0, false}));
  EXPECT_EQ(Table.saturatedCount(), 1u);
  EXPECT_FALSE(Table.allSaturated());
  for (uint32_t S = 0; S < 2; ++S)
    for (bool Outcome : {true, false})
      Table.saturate({S, Outcome});
  EXPECT_TRUE(Table.allSaturated());
  EXPECT_EQ(Table.version(), 4u);
  EXPECT_EQ(Table.saturatedArms().size(), 4u);
}

TEST(SaturationTableTest, StreaksBumpAndReset) {
  SaturationTable Table(1);
  EXPECT_EQ(Table.streak({0, false}), 0u);
  EXPECT_EQ(Table.bumpStreak({0, false}), 1u);
  EXPECT_EQ(Table.bumpStreak({0, false}), 2u);
  EXPECT_EQ(Table.streak({0, false}), 2u);
  EXPECT_EQ(Table.streak({0, true}), 0u); // arms are independent
  Table.resetStreaks();
  EXPECT_EQ(Table.streak({0, false}), 0u);
}

TEST(SaturationTableTest, ContextsShareOneTable) {
  // The parallel engine binds every worker's context to one table: what
  // one context saturates, all others must observe (and pen consults).
  SaturationTable Table(2);
  ExecutionContext A(Table), B(Table);
  A.saturate({1, true});
  EXPECT_TRUE(B.isSaturated({1, true}));
  EXPECT_EQ(B.saturatedCount(), 1u);
  EXPECT_EQ(&A.saturation(), &B.saturation());
  // The owning constructor still gives each context a private table.
  ExecutionContext C(2u), D(2u);
  C.saturate({0, true});
  EXPECT_FALSE(D.isSaturated({0, true}));
}

TEST(SaturationTableTest, ConcurrentSaturateCountsEveryArmOnce) {
  // Stress the engine's invariant that version() counts newly saturated
  // arms exactly once: 8 threads race to saturate overlapping arm sets
  // and to bump streaks; the table must converge to one version bump per
  // distinct arm and one streak increment per bump, with no lost updates.
  const unsigned NumSites = 64;
  const unsigned NumThreads = 8;
  const unsigned Rounds = 50;
  SaturationTable Table(NumSites);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&Table, T] {
      for (unsigned R = 0; R < Rounds; ++R)
        for (uint32_t S = 0; S < NumSites; ++S) {
          // Every thread touches every site; arm choice varies by thread.
          Table.saturate({S, (S + T) % 2 == 0});
          Table.bumpStreak({S, true});
        }
    });
  for (std::thread &T : Threads)
    T.join();
  // Each site had both arms saturated by some thread (threads differ in
  // parity), so all 2 * NumSites arms are saturated exactly once each.
  EXPECT_TRUE(Table.allSaturated());
  EXPECT_EQ(Table.saturatedCount(), 2 * NumSites);
  EXPECT_EQ(Table.version(), 2 * NumSites);
  EXPECT_EQ(Table.saturatedArms().size(), size_t(2) * NumSites);
  for (uint32_t S = 0; S < NumSites; ++S)
    EXPECT_EQ(Table.streak({S, true}), NumThreads * Rounds);
}

TEST(CoverageMapTest, BranchCoverageCounts) {
  CoverageMap Map(3);
  EXPECT_EQ(Map.coveredArms(), 0u);
  EXPECT_DOUBLE_EQ(Map.branchCoverage(), 0.0);
  Map.recordHit(0, true);
  Map.recordHit(0, true);
  Map.recordHit(2, false);
  EXPECT_EQ(Map.coveredArms(), 2u);
  EXPECT_DOUBLE_EQ(Map.branchCoverage(), 2.0 / 6.0);
  EXPECT_EQ(Map.totalHits(), 3u);
}

TEST(CoverageMapTest, BranchFreeProgramIsFullyCovered) {
  CoverageMap Map(0);
  EXPECT_DOUBLE_EQ(Map.branchCoverage(), 1.0);
}

TEST(CoverageMapTest, MergeAccumulates) {
  CoverageMap A(2), B(2);
  A.recordHit(0, true);
  B.recordHit(1, false);
  B.recordHit(0, true);
  EXPECT_TRUE(A.merge(B));
  EXPECT_EQ(A.hits(0, true), 2u);
  EXPECT_EQ(A.hits(1, false), 1u);
  EXPECT_EQ(A.coveredArms(), 2u);
}

TEST(CoverageMapTest, MergeSelfDoublesCounters) {
  CoverageMap A(2);
  A.recordHit(0, true);
  A.recordHit(1, false);
  A.recordHit(1, false);
  EXPECT_TRUE(A.merge(A));
  EXPECT_EQ(A.hits(0, true), 2u);
  EXPECT_EQ(A.hits(1, false), 4u);
  EXPECT_EQ(A.totalHits(), 6u);
}

TEST(CoverageMapTest, ConcurrentMergeIntoSharedTarget) {
  // The parallel campaign layers fold per-worker maps into one suite map;
  // merges into the same target from several threads must not lose hits.
  const unsigned NumThreads = 8;
  const unsigned MergesPerThread = 200;
  CoverageMap Suite(4);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&Suite, T] {
      CoverageMap Local(4);
      Local.recordHit(T % 4, true);
      Local.recordHit((T + 1) % 4, false);
      for (unsigned I = 0; I < MergesPerThread; ++I)
        EXPECT_TRUE(Suite.merge(Local));
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Suite.totalHits(), uint64_t(NumThreads) * MergesPerThread * 2);
  for (uint32_t S = 0; S < 4; ++S) {
    // 8 threads over 4 sites: each site's T arm and F arm each hit by
    // exactly two threads.
    EXPECT_EQ(Suite.hits(S, true), 2u * MergesPerThread);
    EXPECT_EQ(Suite.hits(S, false), 2u * MergesPerThread);
  }
}

TEST(CoverageMapTest, UncoveredArmsEnumeration) {
  CoverageMap Map(2);
  Map.recordHit(0, true);
  std::vector<BranchRef> Uncovered = Map.uncoveredArms();
  ASSERT_EQ(Uncovered.size(), 3u);
  EXPECT_EQ(Uncovered[0], (BranchRef{0, false}));
  EXPECT_EQ(Uncovered[1], (BranchRef{1, true}));
  EXPECT_EQ(Uncovered[2], (BranchRef{1, false}));
}

TEST(CoverageMapTest, LineModelMonotoneInArms) {
  Program P;
  P.NumSites = 4;
  P.TotalLines = 40;
  CoverageMap Map(4);
  double Prev = Map.lineCoverage(P);
  EXPECT_EQ(Prev, 0.0); // nothing executed yet
  for (uint32_t S = 0; S < 4; ++S) {
    Map.recordHit(S, true);
    double Cur = Map.lineCoverage(P);
    EXPECT_GT(Cur, Prev);
    Prev = Cur;
  }
  for (uint32_t S = 0; S < 4; ++S)
    Map.recordHit(S, false);
  EXPECT_LE(Map.lineCoverage(P), 1.0);
  EXPECT_GT(Map.lineCoverage(P), Prev);
}

TEST(CoverageMapTest, ConcurrentReadersDuringWritesAndReset) {
  // The service layer's status path reads a live suite map while workers
  // keep folding into it and checkpoint loaders occasionally replace it
  // wholesale. Run under TSan, this test is the proof that the reader half
  // of the CoverageMap contract actually locks: four writers (recordHit,
  // merge, setCounters, reset to the same shape) race four readers
  // (counters, coveredArms/branchCoverage, uncoveredArms, copy-construct).
  // Reset keeps the shape, so every racy interleaving is still well-formed
  // and the readers only check internal consistency, not exact counts.
  static constexpr unsigned NumSites = 8;
  Program P;
  P.NumSites = NumSites;
  P.TotalLines = 80;
  CoverageMap Suite(NumSites);
  std::atomic<bool> Stop{false};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < 2; ++T)
    Threads.emplace_back([&Suite, &Stop, T] {
      CoverageMap Local(NumSites);
      Local.recordHit(T, true);
      while (!Stop.load(std::memory_order_relaxed)) {
        Suite.recordHit((T * 3) % NumSites, false);
        EXPECT_TRUE(Suite.merge(Local));
      }
    });
  Threads.emplace_back([&Suite, &Stop] {
    while (!Stop.load(std::memory_order_relaxed)) {
      Suite.reset(NumSites);
      CoverageMap::Counters C;
      C.TrueHits.assign(NumSites, 1);
      C.FalseHits.assign(NumSites, 1);
      C.TotalHits = 2 * NumSites;
      EXPECT_TRUE(Suite.setCounters(std::move(C)));
    }
  });
  for (unsigned T = 0; T < 4; ++T)
    Threads.emplace_back([&Suite, &Stop, &P, T] {
      while (!Stop.load(std::memory_order_relaxed)) {
        switch (T % 4) {
        case 0: {
          CoverageMap::Counters C = Suite.counters();
          ASSERT_EQ(C.TrueHits.size(), size_t(NumSites));
          ASSERT_EQ(C.FalseHits.size(), size_t(NumSites));
          break;
        }
        case 1:
          EXPECT_LE(Suite.branchCoverage(), 1.0);
          EXPECT_LE(Suite.coveredArms(), 2 * NumSites);
          break;
        case 2:
          EXPECT_LE(Suite.uncoveredArms().size(), size_t(2) * NumSites);
          EXPECT_GE(Suite.lineCoverage(P), 0.0);
          break;
        default: {
          CoverageMap Copy(Suite);
          EXPECT_EQ(Copy.numSites(), NumSites);
          CoverageMap Assigned(2);
          Assigned = Suite;
          EXPECT_EQ(Assigned.numSites(), NumSites);
          break;
        }
        }
      }
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  Stop.store(true, std::memory_order_relaxed);
  for (std::thread &T : Threads)
    T.join();
}

TEST(CoverageMapTest, MergeShapeMismatchRejectsAndLeavesTargetUntouched) {
  // The checkpoint loader funnels snapshot counters through this check, so
  // a corrupt snapshot must be an error return in Release, not UB (the old
  // assert-only guard compiled away and walked out of bounds).
  CoverageMap Target(3), Wider(5), Narrower(2);
  Target.recordHit(1, true);
  Wider.recordHit(4, false);
  EXPECT_FALSE(Target.merge(Wider));
  EXPECT_FALSE(Target.merge(Narrower));
  EXPECT_EQ(Target.numSites(), 3u);
  EXPECT_EQ(Target.totalHits(), 1u) << "failed merge must not partially apply";
  EXPECT_EQ(Target.hits(1, true), 1u);
  EXPECT_FALSE(Wider.merge(Target)) << "rejection is symmetric";
}

TEST(CoverageMapTest, SetCountersRoundTripsAndRejectsMalformed) {
  CoverageMap Map(2);
  Map.recordHit(0, true);
  Map.recordHit(1, false);
  CoverageMap::Counters Saved = Map.counters();

  CoverageMap Restored(7); // setCounters adopts the new shape wholesale
  EXPECT_TRUE(Restored.setCounters(Saved));
  EXPECT_EQ(Restored.numSites(), 2u);
  EXPECT_EQ(Restored.hits(0, true), 1u);
  EXPECT_EQ(Restored.hits(1, false), 1u);
  EXPECT_EQ(Restored.totalHits(), Map.totalHits());

  CoverageMap::Counters Ragged;
  Ragged.TrueHits.assign(3, 0);
  Ragged.FalseHits.assign(2, 0); // lengths disagree: corrupt
  EXPECT_FALSE(Restored.setCounters(std::move(Ragged)));
  EXPECT_EQ(Restored.numSites(), 2u) << "rejected load leaves state intact";
  EXPECT_EQ(Restored.hits(0, true), 1u);
}

TEST(SaturationTableTest, SnapshotUnderConcurrentSaturationIsConsistent) {
  // saturate() publishes arm-then-version; a naive concurrent copy can pair
  // flags from one instant with a version from another. snapshot() promises
  // a coherent triple: in every capture taken mid-saturation, the version
  // must equal the number of set flags, and restore() must accept it.
  static constexpr unsigned NumSites = 48;
  SaturationTable Table(NumSites);
  std::atomic<bool> Stop{false};
  std::vector<SaturationTable::Snapshot> Captures;
  std::thread Reader([&Table, &Stop, &Captures] {
    while (!Stop.load(std::memory_order_relaxed))
      Captures.push_back(Table.snapshot());
  });
  std::vector<std::thread> Writers;
  for (unsigned T = 0; T < 4; ++T)
    Writers.emplace_back([&Table, T] {
      for (uint32_t S = 0; S < NumSites; ++S) {
        Table.saturate({S, (S + T) % 2 == 0});
        Table.bumpStreak({S, false});
        std::this_thread::yield();
      }
    });
  for (std::thread &T : Writers)
    T.join();
  Stop.store(true, std::memory_order_relaxed);
  Reader.join();

  ASSERT_FALSE(Captures.empty());
  for (const SaturationTable::Snapshot &S : Captures) {
    uint64_t SetFlags = 0;
    for (uint8_t A : S.Arms)
      SetFlags += A != 0;
    EXPECT_EQ(S.Version, SetFlags)
        << "snapshot paired flags with a foreign version";
    SaturationTable Fresh(NumSites);
    EXPECT_TRUE(Fresh.restore(S));
    EXPECT_EQ(Fresh.version(), S.Version);
    EXPECT_EQ(Fresh.saturatedCount(), SetFlags);
  }
  // The writers saturated everything; the final state round-trips too.
  EXPECT_EQ(Captures.back().Arms.size(), size_t(2) * NumSites);
  EXPECT_TRUE(Table.allSaturated());
}

TEST(SaturationTableTest, RestoreRejectsCorruptSnapshots) {
  SaturationTable Table(4);
  Table.saturate({0, true});
  Table.saturate({2, false});
  Table.bumpStreak({1, true});
  SaturationTable::Snapshot Good = Table.snapshot();

  SaturationTable Fresh(4);
  // Wrong shape: arms/streaks sized for a different site count.
  SaturationTable::Snapshot WrongShape = Good;
  WrongShape.Arms.push_back(0);
  EXPECT_FALSE(Fresh.restore(WrongShape));
  WrongShape = Good;
  WrongShape.Streaks.pop_back();
  EXPECT_FALSE(Fresh.restore(WrongShape));
  // Invariant violations: version out of step with the set-flag count, or
  // a flag byte that is neither 0 nor 1.
  SaturationTable::Snapshot BadVersion = Good;
  BadVersion.Version += 1;
  EXPECT_FALSE(Fresh.restore(BadVersion));
  SaturationTable::Snapshot BadFlag = Good;
  BadFlag.Arms[0] = 2;
  EXPECT_FALSE(Fresh.restore(BadFlag));
  // Nothing above may have mutated the target.
  EXPECT_EQ(Fresh.version(), 0u);
  EXPECT_EQ(Fresh.saturatedCount(), 0u);

  ASSERT_TRUE(Fresh.restore(Good));
  EXPECT_TRUE(Fresh.isSaturated({0, true}));
  EXPECT_TRUE(Fresh.isSaturated({2, false}));
  EXPECT_FALSE(Fresh.isSaturated({1, true}));
  EXPECT_EQ(Fresh.streak({1, true}), 1u);
  EXPECT_EQ(Fresh.version(), Good.Version);
}

//===----------------------------------------------------------------------===//
// RepresentingFunction: C1, C2, and Thm. 4.3 on the paper's FOO
//===----------------------------------------------------------------------===//

namespace {

double square(double V) { return V * V; }

/// FOO from Fig. 3: l0: if (x <= 1) x++;  y = x*x;  l1: if (y == 4) ...
double fooBody(const double *Args) {
  double X = Args[0];
  if (CVM_LE(0, X, 1.0))
    X = X + 1.0;
  double Y = square(X);
  if (CVM_EQ(1, Y, 4.0))
    return 1.0;
  return 0.0;
}

Program fooProgram() {
  Program P;
  P.Name = "FOO";
  P.File = "fig3.c";
  P.Arity = 1;
  P.NumSites = 2;
  P.TotalLines = 6;
  P.Body = fooBody;
  return P;
}

} // namespace

TEST(RepresentingFunctionTest, TableOneRowOne) {
  // Nothing saturated: FOO_R = lambda x.0.
  Program P = fooProgram();
  ExecutionContext Ctx(P.NumSites);
  RepresentingFunction FR(P, Ctx);
  for (double X : {-10.0, 0.7, 1.0, 2.0, 55.5})
    EXPECT_EQ(FR({X}), 0.0);
}

TEST(RepresentingFunctionTest, TableOneRowTwo) {
  // Saturate {1F}: FOO_R = x<=1 ? ((x+1)^2-4)^2 : (x^2-4)^2.
  Program P = fooProgram();
  ExecutionContext Ctx(P.NumSites);
  Ctx.saturate({1, false});
  RepresentingFunction FR(P, Ctx);
  EXPECT_DOUBLE_EQ(FR({0.0}), 9.0);   // ((0+1)^2-4)^2 = 9
  EXPECT_EQ(FR({1.0}), 0.0);          // (2^2-4)^2 = 0
  EXPECT_EQ(FR({2.0}), 0.0);          // (2^2-4)^2 = 0
  EXPECT_EQ(FR({-3.0}), 0.0);         // ((-2)^2-4)^2 = 0
  EXPECT_DOUBLE_EQ(FR({3.0}), 25.0);  // (9-4)^2
}

TEST(RepresentingFunctionTest, TableOneRowThree) {
  // Saturate {0T, 1T, 1F}: FOO_R = x>1 ? 0 : (x-1)^2 + eps.
  Program P = fooProgram();
  ExecutionContext Ctx(P.NumSites);
  Ctx.saturate({0, true});
  Ctx.saturate({1, true});
  Ctx.saturate({1, false});
  RepresentingFunction FR(P, Ctx);
  EXPECT_EQ(FR({1.1}), 0.0);
  EXPECT_EQ(FR({100.0}), 0.0);
  EXPECT_GT(FR({1.0}), 0.0); // boundary: strict > fails, eps shows up
  EXPECT_NEAR(FR({0.0}), 1.0, 1e-9);
}

TEST(RepresentingFunctionTest, TableOneRowFour) {
  // Everything saturated: FOO_R = lambda x.1.
  Program P = fooProgram();
  ExecutionContext Ctx(P.NumSites);
  for (uint32_t S = 0; S < 2; ++S) {
    Ctx.saturate({S, true});
    Ctx.saturate({S, false});
  }
  RepresentingFunction FR(P, Ctx);
  for (double X : {-5.2, 0.0, 1.0, 2.0, 1e10})
    EXPECT_EQ(FR({X}), 1.0);
}

/// C1 plus the soundness half of Thm. 4.3 over *arbitrary* saturation
/// states: a zero of FOO_R always covers some unsaturated arm. (The other
/// direction needs descendant-closed states; see the next test.)
TEST(RepresentingFunctionTest, ConditionC1AndZeroImpliesNewCoverage) {
  Program P = fooProgram();
  Rng R(99);
  for (int Round = 0; Round < 1000; ++Round) {
    ExecutionContext Ctx(P.NumSites);
    for (uint32_t S = 0; S < P.NumSites; ++S) {
      if (R.chance(0.5))
        Ctx.saturate({S, true});
      if (R.chance(0.5))
        Ctx.saturate({S, false});
    }
    RepresentingFunction FR(P, Ctx);
    double X = R.chance(0.3) ? R.uniform(-4, 4) : R.wideDouble();
    if (X != X)
      continue; // NaN operands void Thm. 4.3's real-arithmetic premise
    double V = FR({X});
    EXPECT_TRUE(V >= 0.0) << "C1 violated at x=" << X; // C1
    if (V != 0.0)
      continue;
    Ctx.TraceEnabled = true;
    FR.execute({X});
    bool SaturatesNew = false;
    for (BranchRef Ref : Ctx.Trace)
      SaturatesNew |= !Ctx.isSaturated(Ref);
    EXPECT_TRUE(SaturatesNew)
        << "zero minimum without new coverage at x=" << X;
  }
}

/// Full Thm. 4.3, both directions, with the genuine Def. 3.2 semantics.
/// For FOO, l1 is reached from both arms of l0, so 0T/0F are *saturated*
/// only once 1T and 1F are covered (the Table 1 subtlety: after round one,
/// Saturate is {1F} although 0T is covered). The test enumerates every
/// covered-set C, derives S = Saturate(C), installs S in the context, and
/// checks: FOO_R(x) == 0  <=>  Saturate(C + cover(x)) != S.
TEST(RepresentingFunctionTest, Theorem43WithDef32Saturation) {
  Program P = fooProgram();
  Rng R(101);

  // Arm indexing: bit0 = 0T, bit1 = 0F, bit2 = 1T, bit3 = 1F.
  auto ArmBit = [](BranchRef Ref) {
    return 1u << (Ref.Site * 2 + (Ref.Outcome ? 0 : 1));
  };
  // Saturate(C) per Def. 3.2: l1's arms have no descendants; l0's arms
  // have descendants {1T, 1F}.
  auto SaturateOf = [](unsigned C) {
    unsigned S = C & 0b1100;
    if ((C & 0b1100) == 0b1100)
      S |= C & 0b0011;
    return S;
  };

  for (unsigned Covered = 0; Covered < 16; ++Covered) {
    unsigned S = SaturateOf(Covered);
    ExecutionContext Ctx(P.NumSites);
    if (S & 0b0001)
      Ctx.saturate({0, true});
    if (S & 0b0010)
      Ctx.saturate({0, false});
    if (S & 0b0100)
      Ctx.saturate({1, true});
    if (S & 0b1000)
      Ctx.saturate({1, false});
    RepresentingFunction FR(P, Ctx);

    for (int I = 0; I < 500; ++I) {
      // Mix generic points with the interesting minima of Table 1.
      double X = I % 7 == 0 ? 1.0 : (I % 7 == 1 ? -3.0 : R.uniform(-6, 6));
      double V = FR({X});
      Ctx.TraceEnabled = true;
      FR.execute({X});
      unsigned NewCovered = Covered;
      for (BranchRef Ref : Ctx.Trace)
        NewCovered |= ArmBit(Ref);
      bool SaturatesNew = SaturateOf(NewCovered) != S;
      EXPECT_EQ(V == 0.0, SaturatesNew)
          << "Thm 4.3 violated at x=" << X << " value " << V << " covered "
          << Covered;
    }
  }
}

TEST(RepresentingFunctionTest, ExecuteLeavesPenDisabled) {
  Program P = fooProgram();
  ExecutionContext Ctx(P.NumSites);
  RepresentingFunction FR(P, Ctx);
  Ctx.R = 123.0;
  EXPECT_EQ(FR.execute({5.0}), 0.0); // FOO's own return value
  // execute() runs beginRun (r := 1) but pen never assigns to it.
  EXPECT_EQ(Ctx.R, 1.0);
}

TEST(RepresentingFunctionTest, ObjectiveFnBindingAgrees) {
  Program P = fooProgram();
  ExecutionContext Ctx(P.NumSites);
  Ctx.saturate({1, false});
  RepresentingFunction FR(P, Ctx);
  ObjectiveFn Obj(FR);
  for (double X : {-2.0, 0.0, 1.5})
    EXPECT_EQ(Obj(&X, 1), FR({X}));
}

TEST(RepresentingFunctionTest, BoundRunMatchesPerCallPath) {
  Program P = fooProgram();
  ExecutionContext Ctx(P.NumSites);
  Ctx.saturate({1, false});
  RepresentingFunction FR(P, Ctx);
  // Per-call values, through the scope-per-call path.
  const double Points[] = {-2.0, -0.5, 0.0, 1.0, 1.5, 7.25};
  double PerCall[6];
  for (int I = 0; I < 6; ++I)
    PerCall[I] = FR({Points[I]});
  // The bound fast path: one scope install for the whole run, raw body
  // calls per probe, and a batched variant. All must agree bit-for-bit.
  {
    RepresentingFunction::BoundRun Run(FR);
    for (int I = 0; I < 6; ++I)
      EXPECT_EQ(Run.eval(&Points[I], 1), PerCall[I]) << "at " << Points[I];
  }
  double Batched[6];
  FR.evalBatch(Points, 6, 1, Batched);
  for (int I = 0; I < 6; ++I)
    EXPECT_EQ(Batched[I], PerCall[I]) << "at " << Points[I];
}

TEST(RepresentingFunctionTest, BoundRunRestoresPenAndScope) {
  Program P = fooProgram();
  ExecutionContext Ctx(P.NumSites);
  RepresentingFunction FR(P, Ctx);
  Ctx.PenEnabled = false;
  EXPECT_EQ(ExecutionContext::current(), nullptr);
  {
    RepresentingFunction::BoundRun Run(FR);
    EXPECT_TRUE(Ctx.PenEnabled);
    EXPECT_EQ(ExecutionContext::current(), &Ctx);
  }
  EXPECT_FALSE(Ctx.PenEnabled);
  EXPECT_EQ(ExecutionContext::current(), nullptr);
}
