//===- AstPrinterTest.cpp - Tests for AST dumping and re-rendering --------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Golden and property tests for the AST printer, plus a parser robustness
/// fuzz sweep: random byte soup and truncated real programs must never
/// crash or hang the frontend (they may fail with diagnostics, nothing
/// more). The round-trip property — re-rendered source re-parses to the
/// same dump — pins both the renderer's and the parser's view of
/// precedence at once.
///
//===----------------------------------------------------------------------===//

#include "lang/AstPrinter.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "lang/Interp.h"
#include "lang/SourceSuite.h"

#include "support/Random.h"

#include <gtest/gtest.h>

using namespace coverme;
using namespace coverme::lang;

namespace {

std::unique_ptr<TranslationUnit> analyzed(const std::string &Source) {
  ParseResult R = parseTranslationUnit(Source);
  EXPECT_TRUE(R.success());
  std::vector<Diagnostic> Diags;
  EXPECT_TRUE(analyze(*R.TU, Diags));
  return std::move(R.TU);
}

TEST(AstPrinterTest, DumpShowsTypesAndSites) {
  auto TU = analyzed("double f(double x) {\n"
                     "  if (x <= 1.0) return 0.0;\n"
                     "  return x;\n"
                     "}\n");
  std::string Dump = dumpAst(*TU);
  EXPECT_NE(Dump.find("Function f : double (double x)"), std::string::npos)
      << Dump;
  EXPECT_NE(Dump.find("If [site 0]"), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("Binary <= : int"), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("VarRef x : double"), std::string::npos) << Dump;
}

TEST(AstPrinterTest, DumpShowsGlobalsAndArrays) {
  auto TU = analyzed("static const double T[2] = {1.0, 2.0};\n"
                     "double f(int i) { return T[i]; }\n");
  std::string Dump = dumpAst(*TU);
  EXPECT_NE(Dump.find("Global T : double[2]"), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("Index : double"), std::string::npos) << Dump;
}

TEST(AstPrinterTest, RenderMakesPrecedenceExplicit) {
  std::vector<Diagnostic> Diags;
  ExprPtr E = parseExpression("a + b * c << 2", Diags);
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(renderExpr(*E), "((a + (b * c)) << 2)");
}

TEST(AstPrinterTest, RenderPointerCastChain) {
  std::vector<Diagnostic> Diags;
  ExprPtr E = parseExpression("*(1 + (int *)&x)", Diags);
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(renderExpr(*E), "*((1 + (int *)(&(x))))");
}

TEST(AstPrinterTest, RenderTernaryAndAssign) {
  std::vector<Diagnostic> Diags;
  ExprPtr E = parseExpression("y = c ? 1 : 2", Diags);
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(renderExpr(*E), "(y = (c ? 1 : 2))");
}

TEST(AstPrinterTest, OperatorSpellingsRoundTrip) {
  // Every binary operator must render to text the parser maps back to the
  // same operator at some precedence.
  const BinaryOp Ops[] = {BinaryOp::Add,    BinaryOp::Sub,
                          BinaryOp::Mul,    BinaryOp::Div,
                          BinaryOp::Rem,    BinaryOp::Shl,
                          BinaryOp::Shr,    BinaryOp::BitAnd,
                          BinaryOp::BitOr,  BinaryOp::BitXor,
                          BinaryOp::LT,     BinaryOp::LE,
                          BinaryOp::GT,     BinaryOp::GE,
                          BinaryOp::EQ,     BinaryOp::NE,
                          BinaryOp::LogAnd, BinaryOp::LogOr};
  for (BinaryOp Op : Ops) {
    std::string Source = std::string("a ") + binaryOpSpelling(Op) + " b";
    std::vector<Diagnostic> Diags;
    ExprPtr E = parseExpression(Source, Diags);
    ASSERT_NE(E, nullptr) << Source;
    ASSERT_EQ(E->Kind, ExprKind::Binary) << Source;
    EXPECT_EQ(exprCast<BinaryExpr>(*E).Op, Op) << Source;
  }
}

TEST(AstPrinterTest, RoundTripFixedPoint) {
  // Parse -> render -> parse -> render must be a fixed point: the first
  // rendering makes all grouping explicit, so the second pass sees an
  // unambiguous program.
  const char *Sources[] = {
      "double f(double x) {\n"
      "  double t[3] = {1.0, 2.0, 4.0};\n"
      "  int i;\n"
      "  for (i = 0; i < 3; i++) t[0] += t[i];\n"
      "  while (t[0] > 1.0) t[0] = t[0] / 2.0;\n"
      "  do t[0] = t[0] + 1.0; while (t[0] < 0.0);\n"
      "  if (x == 4.0) return t[0];\n"
      "  else return -t[0];\n"
      "}\n",
      "int g(int n) {\n"
      "  int acc = 0;\n"
      "  if (n > 0 && n < 10) acc = ~n;\n"
      "  return acc << 2 | 1;\n"
      "}\n",
  };
  for (const char *Source : Sources) {
    ParseResult First = parseTranslationUnit(Source);
    ASSERT_TRUE(First.success());
    std::string Rendered = renderStmt(*First.TU->Functions[0]->Body);
    std::string Wrapped =
        "double f(double x, int n, double t) " + Rendered;
    // The re-render only needs to parse; names resolve differently.
    ParseResult Second = parseTranslationUnit(Wrapped);
    ASSERT_TRUE(Second.success())
        << Rendered << "\n"
        << (Second.Diags.empty() ? ""
                                 : formatDiagnostic(Second.Diags[0]));
    std::string Again = renderStmt(*Second.TU->Functions[0]->Body);
    EXPECT_EQ(Rendered, Again);
  }
}

TEST(AstPrinterTest, DumpsTheWholeSourceSuite) {
  // The dumper must handle every construct the fourteen Fdlibm sources
  // use, and the site ids in the dump must count up to NumSites.
  for (const SourceBenchmark &B : sourceSuite()) {
    ParseResult R = parseTranslationUnit(B.Source);
    ASSERT_TRUE(R.success()) << B.Name;
    std::vector<Diagnostic> Diags;
    ASSERT_TRUE(analyze(*R.TU, Diags)) << B.Name;
    std::string Dump = dumpAst(*R.TU);
    EXPECT_NE(Dump.find("Function " + B.Name), std::string::npos) << B.Name;
    if (R.TU->NumSites > 0) {
      std::string LastSite =
          "[site " + std::to_string(R.TU->NumSites - 1) + "]";
      EXPECT_NE(Dump.find(LastSite), std::string::npos)
          << B.Name << ": " << Dump;
    }
  }
}

TEST(AstPrinterTest, UnitRoundTripFixedPointOverTheSuite) {
  // Whole-unit property: print -> parse -> Sema -> print is a fixed point
  // for every embedded Fdlibm source, and the reparsed unit carries the
  // same conditional-site numbering. This pins printer/parser agreement
  // end to end — drift here is exactly what the bytecode Compiler (which
  // trusts Sema's annotations) would silently inherit.
  for (const SourceBenchmark &B : sourceSuite()) {
    ParseResult First = parseTranslationUnit(B.Source);
    ASSERT_TRUE(First.success()) << B.Name;
    std::vector<Diagnostic> Diags;
    ASSERT_TRUE(analyze(*First.TU, Diags)) << B.Name;

    std::string P1 = renderUnit(*First.TU);
    ParseResult Second = parseTranslationUnit(P1);
    ASSERT_TRUE(Second.success())
        << B.Name << ": rendered source failed to reparse\n"
        << (Second.Diags.empty() ? "" : formatDiagnostic(Second.Diags[0]))
        << "\n"
        << P1;
    std::vector<Diagnostic> Diags2;
    ASSERT_TRUE(analyze(*Second.TU, Diags2)) << B.Name << "\n" << P1;

    EXPECT_EQ(Second.TU->NumSites, First.TU->NumSites) << B.Name;
    EXPECT_EQ(Second.TU->Functions.size(), First.TU->Functions.size())
        << B.Name;
    EXPECT_EQ(Second.TU->Globals.size(), First.TU->Globals.size()) << B.Name;

    std::string P2 = renderUnit(*Second.TU);
    EXPECT_EQ(P1, P2) << B.Name;
  }
}

TEST(AstPrinterTest, UnitRoundTripCoversSubsetCorners) {
  // Constructs the Fdlibm sources do not reach: unsigned globals, array
  // initializer lists, pointer parameters, for-loops with declarations,
  // break/continue, comma and ternary expressions, compound assignments.
  const char *Source =
      "static const unsigned M = 2147483648u;\n"
      "static const double T[3] = {1.0, 0.5, 0.25};\n"
      "double helper(double *p, int n) {\n"
      "  *p += (double)n;\n"
      "  return *p;\n"
      "}\n"
      "double f(double x, double y) {\n"
      "  double acc = 0.0;\n"
      "  int i;\n"
      "  for (i = 0; i < 3; i++) {\n"
      "    if (i == 1) continue;\n"
      "    acc += T[i] * (x > y ? x : y);\n"
      "    if (acc > 100.0) break;\n"
      "  }\n"
      "  acc = (i++, acc - 1.0);\n"
      "  return helper(&acc, (int)(M >> 24)) + acc;\n"
      "}\n";
  ParseResult First = parseTranslationUnit(Source);
  ASSERT_TRUE(First.success());
  std::vector<Diagnostic> Diags;
  ASSERT_TRUE(analyze(*First.TU, Diags));

  std::string P1 = renderUnit(*First.TU);
  ParseResult Second = parseTranslationUnit(P1);
  ASSERT_TRUE(Second.success())
      << (Second.Diags.empty() ? "" : formatDiagnostic(Second.Diags[0]))
      << "\n"
      << P1;
  std::vector<Diagnostic> Diags2;
  ASSERT_TRUE(analyze(*Second.TU, Diags2)) << P1;
  EXPECT_EQ(Second.TU->NumSites, First.TU->NumSites);
  EXPECT_EQ(renderUnit(*Second.TU), P1);
}

//===----------------------------------------------------------------------===//
// Parser robustness
//===----------------------------------------------------------------------===//

TEST(ParserFuzzTest, RandomByteSoupNeverCrashes) {
  Rng R(71);
  const char Alphabet[] =
      "abxyz01279.;,(){}[]<>=!&|^~%*/+-\"'#\\\n\t ifelsewhilefordouble";
  for (int Round = 0; Round < 500; ++Round) {
    std::string Source;
    size_t Len = R.below(200);
    for (size_t I = 0; I < Len; ++I)
      Source += Alphabet[R.below(sizeof(Alphabet) - 1)];
    ParseResult Result = parseTranslationUnit(Source);
    // Must terminate and return a tree; diagnostics are expected.
    ASSERT_NE(Result.TU, nullptr);
  }
}

TEST(ParserFuzzTest, TruncatedRealProgramsNeverCrash) {
  const SourceBenchmark *B = findSourceBenchmark("rint");
  ASSERT_NE(B, nullptr);
  std::string Full = B->Source;
  for (size_t Cut = 0; Cut < Full.size(); Cut += 37) {
    ParseResult Result = parseTranslationUnit(Full.substr(0, Cut));
    ASSERT_NE(Result.TU, nullptr);
  }
}

TEST(ParserFuzzTest, MutatedProgramsExecuteSafely) {
  // End-to-end: mutated suite programs that still pass the frontend must
  // also execute without memory errors — any runtime problem surfaces as
  // a trap (NaN), never as a crash. Exercises the interpreter's bounds
  // checks and resource limits against adversarial-but-valid programs.
  Rng R(79);
  const SourceBenchmark *B = findSourceBenchmark("logb");
  ASSERT_NE(B, nullptr);
  std::string Full = B->Source;
  InterpOptions Limits;
  Limits.MaxSteps = 50000;
  unsigned StillValid = 0;
  for (int Round = 0; Round < 400; ++Round) {
    std::string Mutated = Full;
    for (int K = 0; K < 3; ++K) {
      // Digit-for-digit and operator-for-operator swaps keep many mutants
      // compilable, which is the interesting case here.
      size_t Pos = R.below(Mutated.size());
      char C = Mutated[Pos];
      if (C >= '0' && C <= '9')
        Mutated[Pos] = static_cast<char>('0' + R.below(10));
      else if (C == '<' || C == '>')
        Mutated[Pos] = R.below(2) ? '<' : '>';
      else if (C == '&' || C == '|' || C == '^')
        Mutated[Pos] = "&|^"[R.below(3)];
    }
    ParseResult Parsed = parseTranslationUnit(Mutated);
    if (!Parsed.success())
      continue;
    std::vector<Diagnostic> Diags;
    if (!analyze(*Parsed.TU, Diags))
      continue;
    const FunctionDecl *F = Parsed.TU->findFunction("logb");
    if (!F || F->Params.size() != 1)
      continue;
    ++StillValid;
    Interpreter Interp(*Parsed.TU, Limits);
    for (int Probe = 0; Probe < 20; ++Probe) {
      double Args[1] = {R.rawBitsDouble()};
      (void)Interp.callEntry(*F, Args); // must not crash; NaN traps fine
    }
  }
  // The mutation scheme keeps most variants compilable; make sure the
  // test actually exercised executions.
  EXPECT_GT(StillValid, 50u);
}

TEST(ParserFuzzTest, MutatedRealProgramsNeverCrash) {
  Rng R(73);
  const SourceBenchmark *B = findSourceBenchmark("modf");
  ASSERT_NE(B, nullptr);
  std::string Full = B->Source;
  for (int Round = 0; Round < 300; ++Round) {
    std::string Mutated = Full;
    // Flip a handful of characters.
    for (int K = 0; K < 4; ++K)
      Mutated[R.below(Mutated.size())] =
          static_cast<char>(32 + R.below(95));
    ParseResult Result = parseTranslationUnit(Mutated);
    ASSERT_NE(Result.TU, nullptr);
    if (Result.success()) {
      // If it still parses, Sema must also terminate cleanly.
      std::vector<Diagnostic> Diags;
      (void)analyze(*Result.TU, Diags);
    }
  }
}

} // namespace
