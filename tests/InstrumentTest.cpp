//===- InstrumentTest.cpp - Tests for the source instrumenter ----------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "instrument/Instrumenter.h"
#include "instrument/Lexer.h"
#include "runtime/CHooks.h"
#include "runtime/ExecutionContext.h"

#include <gtest/gtest.h>

using namespace coverme;
using namespace coverme::instrument;

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(LexerTest, BasicTokens) {
  auto Tokens = lex("int foo = 0x7ff00000;");
  ASSERT_EQ(Tokens.size(), 6u); // int foo = number ; EOF
  EXPECT_TRUE(Tokens[0].isIdentifier("int"));
  EXPECT_TRUE(Tokens[1].isIdentifier("foo"));
  EXPECT_TRUE(Tokens[2].isPunct("="));
  EXPECT_EQ(Tokens[3].Kind, TokenKind::Number);
  EXPECT_EQ(Tokens[3].Text, "0x7ff00000");
  EXPECT_TRUE(Tokens[4].isPunct(";"));
}

TEST(LexerTest, MaximalMunchPunctuation) {
  auto Tokens = lex("a<=b<<c<d");
  EXPECT_TRUE(Tokens[1].isPunct("<="));
  EXPECT_TRUE(Tokens[3].isPunct("<<"));
  EXPECT_TRUE(Tokens[5].isPunct("<"));
}

TEST(LexerTest, SkipsCommentsAndPreprocessor) {
  auto Tokens = lex("#include <math.h>\n"
                    "// line comment if (x < 1)\n"
                    "/* block if (y > 2) */\n"
                    "double z;\n");
  ASSERT_EQ(Tokens.size(), 4u); // double z ; EOF
  EXPECT_TRUE(Tokens[0].isIdentifier("double"));
}

TEST(LexerTest, FloatLiterals) {
  auto Tokens = lex("1.5e-10 0x1p+4 .25 3.");
  EXPECT_EQ(Tokens[0].Text, "1.5e-10");
  EXPECT_EQ(Tokens[1].Text, "0x1p+4");
  EXPECT_EQ(Tokens[2].Text, ".25");
  EXPECT_EQ(Tokens[3].Text, "3.");
}

TEST(LexerTest, StringsAndCharsAreOpaque) {
  auto Tokens = lex("s = \"if (a < b)\"; c = 'x';");
  EXPECT_EQ(Tokens[2].Kind, TokenKind::String);
  EXPECT_EQ(Tokens[2].Text, "\"if (a < b)\"");
  EXPECT_EQ(Tokens[6].Kind, TokenKind::Char);
}

TEST(LexerTest, TracksLines) {
  auto Tokens = lex("a\nb\n\nc");
  EXPECT_EQ(Tokens[0].Line, 1u);
  EXPECT_EQ(Tokens[1].Line, 2u);
  EXPECT_EQ(Tokens[2].Line, 4u);
}

TEST(LexerTest, OffsetsAreExact) {
  std::string Src = "if (x <= 1)";
  auto Tokens = lex(Src);
  for (const Token &Tok : Tokens) {
    if (Tok.Kind == TokenKind::EndOfFile)
      continue;
    EXPECT_EQ(Src.substr(Tok.Offset, Tok.Text.size()), Tok.Text);
  }
}

//===----------------------------------------------------------------------===//
// Instrumenter
//===----------------------------------------------------------------------===//

TEST(InstrumenterTest, RewritesSimpleIf) {
  InstrumenterOptions Opts;
  Opts.EmitPrologue = false;
  InstrumentResult Res =
      instrumentSource("void f(double x) { if (x <= 1.0) x = 2.0; }", Opts);
  ASSERT_EQ(Res.Sites.size(), 1u);
  EXPECT_EQ(Res.Sites[0].Op, CmpOp::LE);
  EXPECT_EQ(Res.Sites[0].Lhs, "x");
  EXPECT_EQ(Res.Sites[0].Rhs, "1.0");
  EXPECT_NE(Res.Source.find(
                "if (cvm_cond(0, CVM_OP_LE, (double)(x), (double)(1.0)))"),
            std::string::npos)
      << Res.Source;
}

TEST(InstrumenterTest, SequentialSiteIds) {
  InstrumenterOptions Opts;
  Opts.EmitPrologue = false;
  InstrumentResult Res = instrumentSource(
      "void f(double x) {\n"
      "  if (x < 0.0) x = -x;\n"
      "  while (x > 1.0) x = x / 2.0;\n"
      "  for (int i = 0; i < 3; i++) x = x + 1.0;\n"
      "}",
      Opts);
  ASSERT_EQ(Res.Sites.size(), 3u);
  EXPECT_EQ(Res.Sites[0].Id, 0u);
  EXPECT_EQ(Res.Sites[0].Statement, "if");
  EXPECT_EQ(Res.Sites[1].Id, 1u);
  EXPECT_EQ(Res.Sites[1].Statement, "while");
  EXPECT_EQ(Res.Sites[2].Id, 2u);
  EXPECT_EQ(Res.Sites[2].Statement, "for");
  EXPECT_EQ(Res.Sites[2].Op, CmpOp::LT);
  EXPECT_NE(Res.Source.find("cvm_cond(2, CVM_OP_LT, (double)(i), "
                            "(double)(3))"),
            std::string::npos)
      << Res.Source;
}

TEST(InstrumenterTest, SkipsCompoundConditions) {
  InstrumenterOptions Opts;
  Opts.EmitPrologue = false;
  InstrumentResult Res = instrumentSource(
      "void f(double x, double y) {\n"
      "  if (x < 1.0 && y > 2.0) x = y;\n" // && unsupported
      "  if (x)            y = x;\n"        // no comparison
      "  if (x < y)        y = 0.0;\n"      // supported
      "}",
      Opts);
  EXPECT_EQ(Res.Sites.size(), 1u);
  EXPECT_EQ(Res.SkippedConditionals, 2u);
  EXPECT_EQ(Res.Sites[0].Lhs, "x");
  EXPECT_EQ(Res.Sites[0].Rhs, "y");
}

TEST(InstrumenterTest, ShiftOperatorsAreNotComparisons) {
  InstrumenterOptions Opts;
  Opts.EmitPrologue = false;
  InstrumentResult Res = instrumentSource(
      "void f(int i) { if ((i << 1) > 4) i = 0; }", Opts);
  ASSERT_EQ(Res.Sites.size(), 1u);
  EXPECT_EQ(Res.Sites[0].Op, CmpOp::GT);
  EXPECT_EQ(Res.Sites[0].Lhs, "(i << 1)");
}

TEST(InstrumenterTest, EntryFunctionScoping) {
  InstrumenterOptions Opts;
  Opts.EmitPrologue = false;
  Opts.EntryFunction = "goo";
  InstrumentResult Res = instrumentSource(
      "void foo(double x) { if (x < 1.0) x = 0.0; }\n"
      "void goo(double y) { if (y > 2.0) y = 0.0; }\n",
      Opts);
  // Only goo's conditional is instrumented (Sect. 5.3, entry-only).
  ASSERT_EQ(Res.Sites.size(), 1u);
  EXPECT_EQ(Res.Sites[0].Op, CmpOp::GT);
  EXPECT_EQ(Res.Source.find("cvm_cond(0"),
            Res.Source.find("goo") != std::string::npos
                ? Res.Source.find("cvm_cond(0")
                : std::string::npos);
  EXPECT_NE(Res.Source.find("if (x < 1.0)"), std::string::npos);
}

TEST(InstrumenterTest, PromotesIntegerComparisons) {
  // Sect. 5.3: int comparisons get (double) promotions.
  InstrumenterOptions Opts;
  Opts.EmitPrologue = false;
  InstrumentResult Res = instrumentSource(
      "void f(double x) { int ix = 5; if (ix >= 0x7ff00000) x = 0.0; }",
      Opts);
  ASSERT_EQ(Res.Sites.size(), 1u);
  EXPECT_NE(Res.Source.find("(double)(ix)"), std::string::npos);
  EXPECT_NE(Res.Source.find("(double)(0x7ff00000)"), std::string::npos);
}

TEST(InstrumenterTest, PrologueDeclaresHook) {
  InstrumentResult Res =
      instrumentSource("void f(double x) { if (x < 1.0) x = 0.0; }");
  EXPECT_EQ(Res.Source.find("/* CoverMe instrumentation prologue"), 0u);
  EXPECT_NE(Res.Source.find("extern int cvm_cond(int site, int op"),
            std::string::npos);
}

TEST(InstrumenterTest, TanhLikeSourceEndToEnd) {
  // The Fig. 1 program: all six conditionals are single comparisons after
  // the word extraction, so every one must be instrumented.
  const char *Tanh =
      "double tanh(double x) {\n"
      "  int jx, ix;\n"
      "  jx = *(1 + (int *)&x);\n"
      "  ix = jx & 0x7fffffff;\n"
      "  if (ix >= 0x7ff00000) {\n"
      "    if (jx >= 0) return one / x + one;\n"
      "    else return one / x - one;\n"
      "  }\n"
      "  if (ix < 0x40360000) {\n"
      "    if (ix < 0x3c800000) return x * (one + x);\n"
      "    if (ix >= 0x3ff00000) { z = one - two / (t + two); }\n"
      "    else { z = -t / (t + two); }\n"
      "  } else {\n"
      "    z = one - tiny;\n"
      "  }\n"
      "  return (jx >= 0) ? z : -z;\n"
      "}\n";
  InstrumenterOptions Opts;
  Opts.EntryFunction = "tanh";
  InstrumentResult Res = instrumentSource(Tanh, Opts);
  // 5 if-conditionals; the ?: at the end is not a conditional statement.
  EXPECT_EQ(Res.Sites.size(), 5u);
  EXPECT_EQ(Res.SkippedConditionals, 0u);
  EXPECT_EQ(Res.Sites[0].Op, CmpOp::GE);
  EXPECT_EQ(Res.Sites[0].Lhs, "ix");
  EXPECT_EQ(Res.Sites[0].Rhs, "0x7ff00000");
  // The bit-twiddling lines pass through untouched.
  EXPECT_NE(Res.Source.find("jx = *(1 + (int *)&x);"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// C hook shim: the link target of instrumented sources
//===----------------------------------------------------------------------===//

TEST(CHooksTest, ForwardsToCurrentContext) {
  ExecutionContext Ctx(1);
  Ctx.saturate({0, false}); // target the true arm
  ExecutionContext::Scope S(Ctx);
  Ctx.beginRun();
  // cvm_cond(0, CVM_OP_LE=3, 5.0, 2.0): outcome false, pen = (5-2)^2.
  EXPECT_EQ(cvm_cond(0, 3, 5.0, 2.0), 0);
  EXPECT_DOUBLE_EQ(Ctx.R, 9.0);
  EXPECT_EQ(cvm_cond(0, 3, 1.0, 2.0), 1);
  EXPECT_EQ(Ctx.R, 0.0);
}

TEST(CHooksTest, OpConstantsMatchCmpOpEnumeration) {
  EXPECT_EQ(cvm_cond(0, 0, 1.0, 1.0), 1); // EQ
  EXPECT_EQ(cvm_cond(0, 1, 1.0, 1.0), 0); // NE
  EXPECT_EQ(cvm_cond(0, 2, 1.0, 2.0), 1); // LT
  EXPECT_EQ(cvm_cond(0, 3, 2.0, 2.0), 1); // LE
  EXPECT_EQ(cvm_cond(0, 4, 1.0, 2.0), 0); // GT
  EXPECT_EQ(cvm_cond(0, 5, 2.0, 2.0), 1); // GE
}
