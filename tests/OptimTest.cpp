//===- OptimTest.cpp - Unit tests for the unconstrained-programming library -===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "optim/Basinhopping.h"
#include "optim/CoordinateDescent.h"
#include "optim/LineSearch.h"
#include "optim/NelderMead.h"
#include "optim/Powell.h"
#include "optim/SimulatedAnnealing.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace coverme;

namespace {

/// The paper's Sect. 2 example: f(x1,x2) = (x1-3)^2 + (x2-5)^2.
double paperQuadratic(const double *X, size_t) {
  double A = X[0] - 3.0, B = X[1] - 5.0;
  return A * A + B * B;
}

/// Fig. 2(a): x <= 1 ? 0 : (x-1)^2.
double fig2a(const double *X, size_t) {
  return X[0] <= 1.0 ? 0.0 : (X[0] - 1.0) * (X[0] - 1.0);
}

/// Fig. 2(b): x <= 1 ? ((x+1)^2-4)^2 : (x^2-4)^2. Global minima -3, 1, 2.
double fig2b(const double *X, size_t) {
  double V = X[0];
  double T = V <= 1.0 ? (V + 1.0) * (V + 1.0) - 4.0 : V * V - 4.0;
  return T * T;
}

} // namespace

//===----------------------------------------------------------------------===//
// Line search
//===----------------------------------------------------------------------===//

TEST(LineSearchTest, BracketsSimpleQuadratic) {
  auto G = [](double T) { return (T - 4.0) * (T - 4.0); };
  Bracket Br = bracketMinimum(G, 0.0, 1.0);
  ASSERT_TRUE(Br.Valid);
  EXPECT_LE(std::min(Br.A, Br.C), 4.0);
  EXPECT_GE(std::max(Br.A, Br.C), 4.0);
  EXPECT_LE(Br.FB, Br.FA);
  EXPECT_LE(Br.FB, Br.FC);
}

TEST(LineSearchTest, BrentFindsQuadraticMinimum) {
  auto G = [](double T) { return (T - 4.0) * (T - 4.0) + 2.5; };
  LineSearchResult Res = lineMinimize(G, 1.0);
  EXPECT_NEAR(Res.T, 4.0, 1e-6);
  EXPECT_NEAR(Res.F, 2.5, 1e-9);
}

TEST(LineSearchTest, BrentHandlesAbsValueKink) {
  auto G = [](double T) { return std::fabs(T - 2.0); };
  LineSearchResult Res = lineMinimize(G, 0.5);
  EXPECT_NEAR(Res.T, 2.0, 1e-5);
}

TEST(LineSearchTest, DescendsInNegativeDirection) {
  auto G = [](double T) { return (T + 7.0) * (T + 7.0); };
  LineSearchResult Res = lineMinimize(G, 1.0);
  EXPECT_NEAR(Res.T, -7.0, 1e-5);
}

TEST(LineSearchTest, NaNObjectiveDoesNotPoisonSearch) {
  auto G = [](double T) {
    if (T > 100.0)
      return std::nan("");
    return (T - 1.0) * (T - 1.0);
  };
  LineSearchResult Res = lineMinimize(G, 1.0);
  EXPECT_NEAR(Res.T, 1.0, 1e-5);
}

TEST(LineSearchTest, ScalarObjectiveAliasStillBinds) {
  // Type-erased scalar callables remain accepted by the template entry
  // points (the alias survives for callers that spell the type).
  ScalarObjective G = [](double T) { return (T - 4.0) * (T - 4.0); };
  LineSearchResult Res = lineMinimize(G, 1.0);
  EXPECT_NEAR(Res.T, 4.0, 1e-6);
}

//===----------------------------------------------------------------------===//
// Local minimizers, parameterized across implementations
//===----------------------------------------------------------------------===//

class LocalMinimizerParamTest
    : public ::testing::TestWithParam<LocalMinimizerKind> {};

TEST_P(LocalMinimizerParamTest, SolvesPaperQuadratic) {
  auto LM = makeLocalMinimizer(GetParam());
  MinimizeResult Res = LM->minimize(paperQuadratic, {20.0, -13.0});
  EXPECT_NEAR(Res.X[0], 3.0, 1e-3);
  EXPECT_NEAR(Res.X[1], 5.0, 1e-3);
  EXPECT_LT(Res.Fx, 1e-5);
}

TEST_P(LocalMinimizerParamTest, ConvergesOntoFig2aPlateau) {
  auto LM = makeLocalMinimizer(GetParam());
  MinimizeResult Res = LM->minimize(fig2a, {7.5});
  EXPECT_EQ(Res.Fx, 0.0);
  EXPECT_LE(Res.X[0], 1.0 + 1e-6);
}

TEST_P(LocalMinimizerParamTest, RespectsEvaluationBudget) {
  LocalMinimizerOptions Opts;
  Opts.MaxEvaluations = 50;
  auto LM = makeLocalMinimizer(GetParam(), Opts);
  uint64_t Calls = 0;
  auto F = [&](const double *X, size_t) {
    ++Calls;
    return X[0] * X[0] + X[1] * X[1] + X[2] * X[2];
  };
  LM->minimize(F, {100.0, -50.0, 25.0});
  // Budget is approximate (a line search in flight may finish), but must
  // stay the same order of magnitude.
  EXPECT_LT(Calls, 200u);
}

TEST_P(LocalMinimizerParamTest, EmptyStartIsSafe) {
  auto LM = makeLocalMinimizer(GetParam());
  MinimizeResult Res = LM->minimize(paperQuadratic, {});
  EXPECT_TRUE(Res.X.empty());
}

TEST_P(LocalMinimizerParamTest, NeverIncreasesObjective) {
  auto LM = makeLocalMinimizer(GetParam());
  std::vector<double> Start = {42.0, 17.0};
  double FStart = paperQuadratic(Start.data(), Start.size());
  MinimizeResult Res = LM->minimize(paperQuadratic, Start);
  EXPECT_LE(Res.Fx, FStart);
}

TEST_P(LocalMinimizerParamTest, ReusedInstanceRepeatsExactly) {
  // The per-instance workspace must not leak state between runs: the same
  // minimizer object run twice from the same start produces bit-identical
  // trajectories.
  auto LM = makeLocalMinimizer(GetParam());
  MinimizeResult First = LM->minimize(paperQuadratic, {20.0, -13.0});
  MinimizeResult Second = LM->minimize(paperQuadratic, {20.0, -13.0});
  ASSERT_EQ(First.X.size(), Second.X.size());
  for (size_t I = 0; I < First.X.size(); ++I)
    EXPECT_EQ(First.X[I], Second.X[I]);
  EXPECT_EQ(First.Fx, Second.Fx);
  EXPECT_EQ(First.NumEvals, Second.NumEvals);
  // And a run at a different arity in between must not disturb that.
  LM->minimize(fig2a, {7.5});
  MinimizeResult Third = LM->minimize(paperQuadratic, {20.0, -13.0});
  EXPECT_EQ(First.Fx, Third.Fx);
  EXPECT_EQ(First.NumEvals, Third.NumEvals);
}

INSTANTIATE_TEST_SUITE_P(AllLocalMinimizers, LocalMinimizerParamTest,
                         ::testing::Values(LocalMinimizerKind::Powell,
                                           LocalMinimizerKind::NelderMead,
                                           LocalMinimizerKind::CoordinateDescent),
                         [](const auto &Info) {
                           std::string Name =
                               localMinimizerKindName(Info.param);
                           for (char &C : Name)
                             if (C == '-')
                               C = '_';
                           return Name;
                         });

TEST(IdentityMinimizerTest, ReturnsStartUnchanged) {
  auto LM = makeLocalMinimizer(LocalMinimizerKind::None);
  MinimizeResult Res = LM->minimize(paperQuadratic, {9.0, 9.0});
  EXPECT_EQ(Res.X[0], 9.0);
  EXPECT_EQ(Res.X[1], 9.0);
  EXPECT_EQ(Res.NumEvals, 1u);
}

TEST(MinimizerFactoryTest, NamesRoundTrip) {
  for (LocalMinimizerKind Kind :
       {LocalMinimizerKind::Powell, LocalMinimizerKind::NelderMead,
        LocalMinimizerKind::CoordinateDescent, LocalMinimizerKind::None}) {
    auto LM = makeLocalMinimizer(Kind);
    EXPECT_EQ(LM->name(), localMinimizerKindName(Kind));
  }
}

//===----------------------------------------------------------------------===//
// Basinhopping
//===----------------------------------------------------------------------===//

class BasinhoppingSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BasinhoppingSeedTest, EscapesLocalBasinOnFig2b) {
  PowellMinimizer Powell;
  BasinhoppingOptions Opts;
  Opts.NIter = 30;
  BasinhoppingMinimizer BH(Powell, Opts);
  Rng Rng(GetParam());
  MinimizeResult Res = BH.minimize(fig2b, {6.0}, Rng);
  EXPECT_LT(Res.Fx, 1e-8) << "stuck at x=" << Res.X[0];
}

INSTANTIATE_TEST_SUITE_P(Seeds, BasinhoppingSeedTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(BasinhoppingTest, CallbackStopsEarly) {
  PowellMinimizer Powell;
  BasinhoppingOptions Opts;
  Opts.NIter = 100;
  BasinhoppingMinimizer BH(Powell, Opts);
  Rng Rng(3);
  unsigned Calls = 0;
  BasinhoppingCallback StopImmediately =
      [&](const std::vector<double> &, double) {
        ++Calls;
        return true;
      };
  MinimizeResult Res = BH.minimize(paperQuadratic, {0.0, 0.0}, Rng,
                                   StopImmediately);
  EXPECT_TRUE(Res.StoppedByCallback);
  EXPECT_EQ(Calls, 1u);
}

TEST(BasinhoppingTest, TracksBestEverSample) {
  // Even if MCMC accepts uphill moves, the reported result is the best.
  PowellMinimizer Powell;
  BasinhoppingOptions Opts;
  Opts.NIter = 20;
  BasinhoppingMinimizer BH(Powell, Opts);
  Rng Rng(5);
  std::vector<double> Start = {100.0, 100.0};
  MinimizeResult Res = BH.minimize(paperQuadratic, Start, Rng);
  EXPECT_LE(Res.Fx, paperQuadratic(Start.data(), Start.size()));
  EXPECT_DOUBLE_EQ(Res.Fx, paperQuadratic(Res.X.data(), Res.X.size()));
}

TEST(BasinhoppingTest, RespectsEvaluationBudget) {
  PowellMinimizer Powell;
  BasinhoppingOptions Opts;
  Opts.NIter = 1000;
  Opts.MaxEvaluations = 500;
  BasinhoppingMinimizer BH(Powell, Opts);
  Rng Rng(7);
  uint64_t Calls = 0;
  auto F = [&](const double *X, size_t) {
    ++Calls;
    return std::sin(X[0]) + 0.01 * X[0] * X[0] + 2.0;
  };
  BH.minimize(F, {50.0}, Rng);
  EXPECT_LT(Calls, 2500u); // One local run may overshoot; order preserved.
}

TEST(BasinhoppingTest, EmptyStartIsSafe) {
  PowellMinimizer Powell;
  BasinhoppingMinimizer BH(Powell);
  Rng Rng(1);
  MinimizeResult Res = BH.minimize(paperQuadratic, {}, Rng);
  EXPECT_TRUE(Res.X.empty());
}

//===----------------------------------------------------------------------===//
// Simulated annealing
//===----------------------------------------------------------------------===//

TEST(SimulatedAnnealingTest, SolvesFig2b) {
  AnnealingOptions Opts;
  Opts.NumSteps = 20000;
  SimulatedAnnealingMinimizer SA(Opts);
  Rng Rng(11);
  MinimizeResult Res = SA.minimize(fig2b, {6.0}, Rng);
  EXPECT_LT(Res.Fx, 1e-3);
}

TEST(SimulatedAnnealingTest, StopsAtExactZero) {
  SimulatedAnnealingMinimizer SA;
  Rng Rng(13);
  MinimizeResult Res = SA.minimize(fig2a, {3.0}, Rng);
  EXPECT_EQ(Res.Fx, 0.0);
  EXPECT_TRUE(Res.Converged);
}

//===----------------------------------------------------------------------===//
// ObjectiveFn and CountingObjective
//===----------------------------------------------------------------------===//

namespace {

/// A span callable used by the binding tests below.
struct SpanCallee {
  double operator()(const double *X, size_t) { return X[0] * 2.0; }
};

/// A callee with a dedicated batch path, to verify evalBatch dispatch.
struct BatchCallee {
  unsigned BatchCalls = 0;
  double eval(const double *X, size_t) { return X[0] + 1.0; }
  void evalBatch(const double *Xs, size_t Count, size_t N, double *Out) {
    ++BatchCalls;
    for (size_t I = 0; I < Count; ++I)
      Out[I] = eval(Xs + I * N, N);
  }
};

} // namespace

TEST(ObjectiveFnTest, BindsCallablesAndPlainFunctions) {
  SpanCallee Callee;
  ObjectiveFn FromObject(Callee);
  double X = 21.0;
  EXPECT_EQ(FromObject(&X, 1), 42.0);

  ObjectiveFn FromFunction(fig2a);
  double Y = 0.5;
  EXPECT_EQ(FromFunction(&Y, 1), 0.0);
}

TEST(ObjectiveFnTest, RejectsTemporaryCallees) {
  // The CountingObjective regression this interface exists for: the old
  // `CountingObjective C(FR.asObjective())` bound a dead temporary by
  // reference. ObjectiveFn only binds lvalues, so the same mistake now
  // fails to compile instead of dangling.
  static_assert(!std::is_constructible_v<ObjectiveFn, SpanCallee &&>,
                "ObjectiveFn must not bind rvalue callees");
  static_assert(!std::is_constructible_v<ObjectiveFn, const SpanCallee &&>,
                "ObjectiveFn must not bind const rvalue callees either");
  static_assert(std::is_constructible_v<ObjectiveFn, SpanCallee &>,
                "ObjectiveFn must bind lvalue callees");
}

TEST(ObjectiveFnTest, DefaultBatchLoopsOverEval) {
  SpanCallee Callee;
  ObjectiveFn Fn(Callee);
  double Xs[3] = {1.0, 2.0, 3.0};
  double Out[3] = {};
  Fn.evalBatch(Xs, 3, 1, Out);
  EXPECT_EQ(Out[0], 2.0);
  EXPECT_EQ(Out[1], 4.0);
  EXPECT_EQ(Out[2], 6.0);
}

TEST(ObjectiveFnTest, ForwardsToCalleeBatchPath) {
  BatchCallee Callee;
  ObjectiveFn Fn(Callee);
  double Xs[4] = {1.0, 2.0, 3.0, 4.0};
  double Out[2] = {};
  Fn.evalBatch(Xs, 2, 2, Out); // two rows of arity 2
  EXPECT_EQ(Callee.BatchCalls, 1u);
  EXPECT_EQ(Out[0], 2.0);
  EXPECT_EQ(Out[1], 4.0);
}

TEST(CountingObjectiveTest, CountsAndSanitizesNaN) {
  auto F = [](const double *X, size_t) {
    return X[0] == 0.0 ? std::nan("") : X[0];
  };
  CountingObjective Counted{ObjectiveFn(F)};
  double Zero = 0.0, Five = 5.0;
  EXPECT_EQ(Counted.eval(&Zero, 1), NaNPenalty);
  EXPECT_EQ(Counted.eval(&Five, 1), 5.0);
  EXPECT_EQ(Counted.numEvals(), 2u);
}

TEST(CountingObjectiveTest, BatchCountsAndSanitizesPerRow) {
  auto F = [](const double *X, size_t) {
    return X[0] == 0.0 ? std::nan("") : X[0];
  };
  CountingObjective Counted{ObjectiveFn(F)};
  double Xs[3] = {4.0, 0.0, -2.0};
  double Out[3] = {};
  Counted.evalBatch(Xs, 3, 1, Out);
  EXPECT_EQ(Out[0], 4.0);
  EXPECT_EQ(Out[1], NaNPenalty);
  EXPECT_EQ(Out[2], -2.0);
  EXPECT_EQ(Counted.numEvals(), 3u);
}
