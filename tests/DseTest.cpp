//===- DseTest.cpp - Tests for the DSE baseline ----------------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the generational-search DSE explorer: it must cover simple
/// programs completely, prune covered targets, respect its budgets, and —
/// the Fig. 6 point — spend far more solver effort per covered branch than
/// CoverMe's single-representing-function campaign on branchy programs.
///
//===----------------------------------------------------------------------===//

#include "dse/DseExplorer.h"

#include "core/CoverMe.h"
#include "fdlibm/Fdlibm.h"
#include "runtime/Hooks.h"

#include <gtest/gtest.h>

using namespace coverme;

namespace {

/// The paper's Fig. 3 FOO: l0: x <= 1, l1: y == 4 with y = x*x after an
/// increment on the true arm.
double fooBody(const double *Args) {
  double X = Args[0];
  if (CVM_LE(0, X, 1.0))
    X = X + 1.0;
  double Y = X * X;
  if (CVM_EQ(1, Y, 4.0))
    return 1.0;
  return 0.0;
}

Program fooProgram() {
  Program P;
  P.Name = "foo";
  P.Arity = 1;
  P.NumSites = 2;
  P.TotalLines = 6;
  P.Body = fooBody;
  return P;
}

/// A three-deep nested comparison chain: 8 paths, 6 branches.
double chainBody(const double *Args) {
  double X = Args[0];
  double Acc = 0.0;
  if (CVM_GT(0, X, 0.0))
    Acc += 1.0;
  if (CVM_GT(1, X * X, 4.0))
    Acc += 2.0;
  if (CVM_LT(2, X, 100.0))
    Acc += 4.0;
  return Acc;
}

Program chainProgram() {
  Program P;
  P.Name = "chain";
  P.Arity = 1;
  P.NumSites = 3;
  P.TotalLines = 8;
  P.Body = chainBody;
  return P;
}

TEST(DseTest, CoversFooCompletely) {
  Program P = fooProgram();
  DseOptions Opts;
  Opts.Seed = 3;
  DseResult Res = DseExplorer(P, Opts).run();
  EXPECT_EQ(Res.BranchCoverage, 1.0);
  EXPECT_GE(Res.Inputs.size(), 2u);
}

TEST(DseTest, CoversChainCompletely) {
  Program P = chainProgram();
  DseOptions Opts;
  Opts.Seed = 5;
  DseResult Res = DseExplorer(P, Opts).run();
  EXPECT_EQ(Res.BranchCoverage, 1.0);
}

TEST(DseTest, BranchFreeProgramIsTrivial) {
  Program P;
  P.Name = "line";
  P.Arity = 1;
  P.NumSites = 0;
  P.Body = [](const double *Args) { return Args[0] * 2.0; };
  DseResult Res = DseExplorer(P).run();
  EXPECT_EQ(Res.BranchCoverage, 1.0);
  EXPECT_EQ(Res.Solves, 0u);
}

TEST(DseTest, RespectsExecutionBudget) {
  const Program *P = fdlibm::registry().lookup("ieee754_pow");
  ASSERT_NE(P, nullptr);
  DseOptions Opts;
  Opts.MaxExecutions = 5000;
  DseResult Res = DseExplorer(*P, Opts).run();
  EXPECT_LE(Res.Executions, Opts.MaxExecutions + Opts.SolveMaxEvaluations);
}

TEST(DseTest, RespectsSolveBudget) {
  const Program *P = fdlibm::registry().lookup("ieee754_pow");
  ASSERT_NE(P, nullptr);
  DseOptions Opts;
  Opts.MaxSolves = 50;
  DseResult Res = DseExplorer(*P, Opts).run();
  EXPECT_LE(Res.Solves, Opts.MaxSolves);
}

TEST(DseTest, PrunesAlreadyCoveredTargets) {
  // Solves never exceed the number of distinct arms plus the frontier the
  // chain program exposes: pruning must prevent quadratic re-solving.
  Program P = chainProgram();
  DseOptions Opts;
  Opts.Seed = 7;
  DseResult Res = DseExplorer(P, Opts).run();
  EXPECT_LE(Res.Solves, 2u * P.numBranches());
}

TEST(DseTest, SolvedFlipsProduceNewPaths) {
  Program P = chainProgram();
  DseOptions Opts;
  Opts.Seed = 11;
  DseResult Res = DseExplorer(P, Opts).run();
  // Every successful flip lands on a path not seen before, so the path
  // count grows at least as fast as the successful-solve count.
  EXPECT_GE(Res.PathsExplored, Res.SolvedFlips);
}

TEST(DseTest, ReplaysDeterministically) {
  const Program *P = fdlibm::registry().lookup("tanh");
  ASSERT_NE(P, nullptr);
  DseOptions Opts;
  Opts.Seed = 13;
  DseResult A = DseExplorer(*P, Opts).run();
  DseResult B = DseExplorer(*P, Opts).run();
  EXPECT_EQ(A.BranchCoverage, B.BranchCoverage);
  EXPECT_EQ(A.Solves, B.Solves);
  EXPECT_EQ(A.Executions, B.Executions);
}

TEST(DseTest, Figure6ContrastOnFdlibm) {
  // The paper's Fig. 6 claim made measurable: on real branchy Fdlibm code
  // CoverMe reaches at least DSE's coverage while solving *one* global
  // problem per new branch, where DSE pays one path-condition solve per
  // frontier flip. (Absolute coverage may tie on easy functions; the
  // effort ratio is the point.)
  for (const char *Name : {"tanh", "ieee754_acos", "erf"}) {
    const Program *P = fdlibm::registry().lookup(Name);
    ASSERT_NE(P, nullptr) << Name;

    DseOptions DOpts;
    DOpts.Seed = 1;
    DseResult Dse = DseExplorer(*P, DOpts).run();

    CoverMeOptions COpts;
    COpts.NStart = 300;
    COpts.Seed = 1;
    CampaignResult Cm = CoverMe(*P, COpts).run();

    EXPECT_GE(Cm.BranchCoverage + 1e-9, Dse.BranchCoverage) << Name;
  }
}

} // namespace
