//===- TierFuzzTest.cpp - Three-tier differential fuzzing -----------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// The generative arm of the tier-equivalence contract: a seeded generator
// produces random well-typed mini-C programs — arithmetic over doubles,
// ints and unsigneds, comparisons, if/while control flow, local arrays,
// file-scope const tables, instrumented conditional sites — and every
// program runs through all three executors (tree-walking interpreter,
// bytecode VM, JIT-attached VM) on a battery of boundary and random
// inputs, NaN/Inf included. All observables must agree bit-for-bit:
// return values, the rt::cond branch trace (site ids, outcomes, order),
// and trap behavior. Where the hand-written differential suites pin the
// corners someone thought of, the fuzzer sweeps the combinations nobody
// did; a failure dumps the program source and its bytecode disassembly so
// the offending emission is reproducible from the log alone.
//
// Builds without the JIT (COVERME_JIT=OFF or non-x86-64) still run the
// full battery across the two remaining tiers, so the suite passes in
// both CI configurations.
//
//===----------------------------------------------------------------------===//

#include "lang/Disasm.h"
#include "lang/Jit.h"
#include "lang/SourceProgram.h"
#include "lang/Vm.h"
#include "runtime/ExecutionContext.h"
#include "support/FloatBits.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

using namespace coverme;
using namespace coverme::lang;

namespace {

//===----------------------------------------------------------------------===//
// Random program generation
//===----------------------------------------------------------------------===//

/// Emits one random well-typed mini-C program. The grammar is deliberately
/// close to the subset the paper's subjects exercise: double expressions
/// (including const-table and array reads and a few libm builtins), int
/// and unsigned expressions (including wrapping division edges and
/// shifts), double-compare conditions at if/while heads (these are the
/// Sema-instrumented sites), and loops bounded by dedicated counters so
/// most runs terminate inside a small step budget — while division by
/// zero, out-of-bounds indices and budget exhaustion stay reachable on
/// purpose: traps are observables under test.
class ProgramGen {
public:
  explicit ProgramGen(uint64_t Seed) : R(Seed) {}

  std::string generate() {
    Arity = 1 + static_cast<unsigned>(R.below(3));
    UseTable = R.chance(0.7);
    NumLoops = 0;
    Stmts.clear();
    unsigned Budget = 6 + static_cast<unsigned>(R.below(10));
    for (unsigned I = 0; I < Budget; ++I)
      stmt(Stmts, 0);

    std::string S;
    if (UseTable) {
      S += "static const double T[8] = {1.0, -0.5, 0.25, 3.5, -2.0, "
           "1.0e-3, 8.0, -0.125};\n";
    }
    S += "double f(";
    for (unsigned I = 0; I < Arity; ++I)
      S += std::string(I ? ", " : "") + "double x" + std::to_string(I);
    S += ") {\n";
    // All declarations up front; initializers pull the parameters in so
    // every input slot is live from the first statement.
    S += "  double d0 = " + param(0) + " * 2.0;\n";
    S += "  double d1 = " + param(R.below(Arity)) + " - 1.5;\n";
    S += "  double d2 = 0.0;\n";
    S += "  double a[4] = {" + param(0) + ", 1.0, -2.5, 0.0};\n";
    S += "  int i0 = 1;\n";
    S += "  int i1 = " + std::to_string(static_cast<int>(R.below(201)) - 100) +
         ";\n";
    S += "  int i2 = 7;\n";
    S += "  unsigned u0 = " + std::to_string(R.next() & 0xffffffffu) + "u;\n";
    for (unsigned I = 0; I < NumLoops; ++I)
      S += "  int lc" + std::to_string(I) + " = 0;\n";
    S += Stmts;
    S += "  return " + dexpr(2) + ";\n";
    S += "}\n";
    return S;
  }

  unsigned arity() const { return Arity; }

private:
  Rng R;
  unsigned Arity = 1;
  unsigned NumLoops = 0;
  bool UseTable = false;
  std::string Stmts;

  std::string param(uint64_t I) { return "x" + std::to_string(I % Arity); }
  std::string dvar(uint64_t I) { return "d" + std::to_string(I % 3); }
  std::string ivar(uint64_t I) { return "i" + std::to_string(I % 3); }

  /// A double-typed expression of depth at most \p Depth.
  std::string dexpr(unsigned Depth) {
    if (Depth == 0) {
      switch (R.below(6)) {
      case 0:
        return param(R.next());
      case 1:
        return dvar(R.next());
      case 2: {
        // A mix of tame and extreme literals.
        static const char *Lits[] = {"0.0",    "1.0",   "-1.0",  "0.5",
                                     "-2.25",  "3.0",   "1.0e3", "1.0e300",
                                     "-1.0e-300", "4503599627370496.0"};
        return Lits[R.below(sizeof(Lits) / sizeof(Lits[0]))];
      }
      case 3:
        return "a[" + idx() + "]";
      case 4:
        if (UseTable)
          return "T[(" + iexpr(0) + ") & 7]";
        return dvar(R.next());
      default:
        return param(R.next());
      }
    }
    switch (R.below(8)) {
    case 0:
      return "(" + dexpr(Depth - 1) + " + " + dexpr(Depth - 1) + ")";
    case 1:
      return "(" + dexpr(Depth - 1) + " - " + dexpr(Depth - 1) + ")";
    case 2:
      return "(" + dexpr(Depth - 1) + " * " + dexpr(Depth - 1) + ")";
    case 3:
      return "(" + dexpr(Depth - 1) + " / " + dexpr(Depth - 1) + ")";
    case 4:
      // The space keeps a leading negative literal from lexing as `--`.
      return "(- " + dexpr(Depth - 1) + ")";
    case 5: {
      static const char *Fns[] = {"fabs", "sqrt",  "sin",  "floor",
                                  "rint", "trunc", "cbrt", "tanh"};
      return std::string(Fns[R.below(sizeof(Fns) / sizeof(Fns[0]))]) + "(" +
             dexpr(Depth - 1) + ")";
    }
    case 6:
      return "(double)(" + iexpr(Depth - 1) + ")";
    default:
      return "(" + dexpr(Depth - 1) + ")";
    }
  }

  /// An int-typed expression of depth at most \p Depth.
  std::string iexpr(unsigned Depth) {
    if (Depth == 0) {
      switch (R.below(4)) {
      case 0:
        return ivar(R.next());
      case 1:
        return std::to_string(static_cast<int>(R.below(41)) - 20);
      case 2:
        return "(int)" + dvar(R.next());
      default:
        return std::to_string(static_cast<int>(R.below(7)));
      }
    }
    switch (R.below(9)) {
    case 0:
      return "(" + iexpr(Depth - 1) + " + " + iexpr(Depth - 1) + ")";
    case 1:
      return "(" + iexpr(Depth - 1) + " - " + iexpr(Depth - 1) + ")";
    case 2:
      return "(" + iexpr(Depth - 1) + " * " + iexpr(Depth - 1) + ")";
    case 3:
      // Raw division: a zero divisor traps, and the trap must be
      // bit-identical across tiers — that is the point.
      return "(" + iexpr(Depth - 1) + " / " + iexpr(Depth - 1) + ")";
    case 4:
      return "(" + iexpr(Depth - 1) + " % " + iexpr(Depth - 1) + ")";
    case 5:
      return "(" + iexpr(Depth - 1) + " & " + iexpr(Depth - 1) + ")";
    case 6:
      return "(" + iexpr(Depth - 1) + " ^ " + iexpr(Depth - 1) + ")";
    case 7:
      return "(" + iexpr(Depth - 1) + " >> " +
             std::to_string(static_cast<int>(R.below(33))) + ")";
    default:
      return "(int)(u0 >> " + std::to_string(static_cast<int>(R.below(8))) +
             ")";
    }
  }

  /// A branch condition. Double comparisons dominate: those are the
  /// Sema-instrumented conditional sites whose traces the battery pins.
  std::string cond() {
    static const char *Ops[] = {"<", "<=", ">", ">=", "==", "!="};
    const char *Op = Ops[R.below(6)];
    if (R.chance(0.75))
      return dexpr(1) + " " + Op + " " + dexpr(1);
    return iexpr(1) + " " + Op + " " + iexpr(1);
  }

  /// An array index: usually masked in-bounds, occasionally far out of
  /// bounds so the "out-of-bounds memory access" trap stays in the tested
  /// population. Far out, not near: an index a few slots past the array
  /// still lands inside the frame arena, where each tier's (identical
  /// arena-granular) bounds check passes and the write aliases a sibling
  /// local — but the tree-walker and the VM lay frames out differently,
  /// so which local gets clobbered is tier-specific by design. Indices
  /// beyond any frame trap identically on all three tiers.
  std::string idx() {
    if (R.chance(0.9))
      return "(" + iexpr(0) + ") & 3";
    return "(" + iexpr(0) + ") + 1000";
  }

  void stmt(std::string &Out, unsigned Nest) {
    switch (R.below(Nest < 2 ? 8 : 5)) {
    case 0:
      Out += "  " + dvar(R.next()) + " = " + dexpr(2) + ";\n";
      break;
    case 1:
      Out += "  " + ivar(R.next()) + " = " + iexpr(2) + ";\n";
      break;
    case 2:
      Out += "  a[" + idx() + "] = " + dexpr(1) + ";\n";
      break;
    case 3:
      Out += "  u0 = u0 " + std::string(R.chance(0.5) ? "*" : "+") + " " +
             std::to_string(1 + (R.next() & 0xffffu)) + "u;\n";
      break;
    case 4:
      Out += "  " + dvar(R.next()) + " = " + dvar(R.next()) + ";\n";
      break;
    case 5: { // if / if-else
      Out += "  if (" + cond() + ") {\n";
      stmt(Out, Nest + 1);
      if (R.chance(0.4)) {
        Out += "  } else {\n";
        stmt(Out, Nest + 1);
      }
      Out += "  }\n";
      break;
    }
    case 6: { // counter-bounded while whose condition still fires a site
      unsigned LC = NumLoops++;
      std::string C = "lc" + std::to_string(LC);
      Out += "  while ((" + cond() + ") && " + C + " < " +
             std::to_string(2 + R.below(7)) + ") {\n";
      Out += "    " + C + " = " + C + " + 1;\n";
      stmt(Out, Nest + 1);
      stmt(Out, Nest + 1);
      Out += "  }\n";
      break;
    }
    default: { // accumulation loop over the array
      unsigned LC = NumLoops++;
      std::string C = "lc" + std::to_string(LC);
      Out += "  while (" + C + " < 4) {\n";
      Out += "    d2 = d2 + a[" + C + "];\n";
      Out += "    " + C + " = " + C + " + 1;\n";
      Out += "  }\n";
      break;
    }
    }
  }
};

//===----------------------------------------------------------------------===//
// Three-tier execution and comparison
//===----------------------------------------------------------------------===//

/// Everything observable about one execution of one tier.
struct TierRun {
  uint64_t ResultBits = 0;
  bool Trapped = false;
  std::string TrapMessage;
  std::vector<BranchRef> Trace;
};

TierRun runTreeWalker(Interpreter &Interp, const FunctionDecl &F,
                      const std::vector<double> &X) {
  TierRun Run;
  ExecutionContext Ctx(Interp.unit().NumSites);
  Ctx.TraceEnabled = true;
  ExecutionContext::Scope Scope(Ctx);
  Ctx.beginRun();
  Run.ResultBits = doubleToBits(Interp.callEntry(F, X.data()));
  Run.Trapped = Interp.trapped();
  Run.TrapMessage = Interp.trapMessage();
  Run.Trace = Ctx.Trace;
  return Run;
}

TierRun runVm(bc::Vm &Vm, unsigned FnIndex, const std::vector<double> &X) {
  TierRun Run;
  ExecutionContext Ctx(Vm.unit().NumSites);
  Ctx.TraceEnabled = true;
  ExecutionContext::Scope Scope(Ctx);
  Ctx.beginRun();
  Run.ResultBits = doubleToBits(Vm.callEntry(FnIndex, X.data()));
  Run.Trapped = Vm.trapped();
  Run.TrapMessage = Vm.trapMessage();
  Run.Trace = Ctx.Trace;
  return Run;
}

/// Input battery for one program: IEEE boundary values in every slot plus
/// seeded raw-bit and exponent-uniform randoms (NaN/Inf by construction).
std::vector<std::vector<double>> inputBattery(unsigned Arity, uint64_t Seed) {
  const double Inf = std::numeric_limits<double>::infinity();
  static const double Boundary[] = {
      0.0,    -0.0, 1.0,   -1.0,
      0.5,    2.5,  1e300, -1e300,
      5e-324, 4503599627370496.0, // 2^52
      Inf,    -Inf, std::numeric_limits<double>::quiet_NaN(),
  };
  std::vector<std::vector<double>> Inputs;
  for (double B : Boundary) {
    Inputs.emplace_back(Arity, B);
    if (Arity > 1) {
      std::vector<double> Y(Arity, 3.0);
      Y[0] = B;
      Inputs.push_back(std::move(Y));
    }
  }
  Rng R(Seed ^ 0xf0221234u);
  for (unsigned I = 0; I < 10; ++I) {
    std::vector<double> X(Arity);
    for (double &V : X)
      V = (I & 1) ? R.rawBitsDouble() : R.exponentUniformDouble();
    Inputs.push_back(std::move(X));
  }
  return Inputs;
}

/// One observable mismatch between two tiers, or empty when they agree.
std::string diffTiers(const TierRun &A, const TierRun &B,
                      const char *BName) {
  std::string D;
  if (A.ResultBits != B.ResultBits)
    D += std::string("result bits differ: reference ") +
         std::to_string(A.ResultBits) + " vs " + BName + " " +
         std::to_string(B.ResultBits) + "\n";
  if (A.Trapped != B.Trapped)
    D += std::string("trap state differs: reference ") +
         (A.Trapped ? A.TrapMessage : "(none)") + " vs " + BName + " " +
         (B.Trapped ? B.TrapMessage : "(none)") + "\n";
  else if (A.Trapped && A.TrapMessage != B.TrapMessage)
    D += "trap message differs: \"" + A.TrapMessage + "\" vs \"" +
         B.TrapMessage + "\"\n";
  if (A.Trace.size() != B.Trace.size())
    D += "trace length differs: reference " + std::to_string(A.Trace.size()) +
         " vs " + BName + " " + std::to_string(B.Trace.size()) + "\n";
  else
    for (size_t I = 0; I < A.Trace.size(); ++I)
      if (A.Trace[I].Site != B.Trace[I].Site ||
          A.Trace[I].Outcome != B.Trace[I].Outcome) {
        D += "trace diverges at hook " + std::to_string(I) + ": site " +
             std::to_string(A.Trace[I].Site) + "/" +
             std::to_string(A.Trace[I].Outcome) + " vs " +
             std::to_string(B.Trace[I].Site) + "/" +
             std::to_string(B.Trace[I].Outcome) + "\n";
        break;
      }
  return D;
}

std::string describeInput(const std::vector<double> &X) {
  std::string S = "input: (";
  for (size_t I = 0; I < X.size(); ++I) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%s%.17g [bits %016llx]", I ? ", " : "",
                  X[I], static_cast<unsigned long long>(doubleToBits(X[I])));
    S += Buf;
  }
  return S + ")";
}

struct FuzzStats {
  unsigned Programs = 0;
  unsigned JittedEntries = 0;
  unsigned SitesTotal = 0;
  unsigned TrappedRuns = 0;
  unsigned Inputs = 0;
};

/// Generates, compiles and cross-checks one program; returns false after
/// reporting a failure (with source + disassembly) so the caller can stop
/// before drowning the log.
bool runOneProgram(uint64_t Seed, FuzzStats &Stats) {
  ProgramGen Gen(Seed);
  std::string Source = Gen.generate();

  SourceProgramOptions Opts;
  Opts.Fuse = (Seed & 1) != 0; // alternate the fusion axis across seeds
  Opts.Interp.MaxSteps = 60000; // generated loops are counter-bounded;
                                // runaways must trap fast and identically
  SourceProgram SP = compileSourceProgram(Source, "f", Opts);
  if (!SP.success()) {
    ADD_FAILURE() << "seed " << Seed << ": generated program failed to "
                  << "compile:\n"
                  << SP.diagnosticsText() << "\n--- source ---\n"
                  << Source;
    return false;
  }
  ++Stats.Programs;
  Stats.SitesTotal += SP.Prog.NumSites;

  bc::Vm PlainVm(SP.Code, Opts.Interp);
  std::unique_ptr<bc::Vm> JitVm;
  std::shared_ptr<const bc::JitUnit> Jit;
  if (bc::JitUnit::available()) {
    Jit = bc::JitUnit::build(SP.Code);
    if (Jit && Jit->canJit(0))
      ++Stats.JittedEntries;
    if (Jit) {
      JitVm = std::make_unique<bc::Vm>(SP.Code, Opts.Interp);
      JitVm->attachJit(Jit);
    }
  }

  for (const auto &X : inputBattery(Gen.arity(), Seed)) {
    ++Stats.Inputs;
    TierRun Ref = runTreeWalker(*SP.Interp, *SP.Entry, X);
    if (Ref.Trapped)
      ++Stats.TrappedRuns;

    std::string D = diffTiers(Ref, runVm(PlainVm, 0, X), "vm");
    if (D.empty() && JitVm)
      D = diffTiers(Ref, runVm(*JitVm, 0, X), "jit");
    if (D.empty() && JitVm) {
      // No-context lane: with no ExecutionContext installed the JIT takes
      // its inline rt::cond fast path (and the VM the hook's null-context
      // branch); results and traps must still match bit for bit.
      TierRun PlainRef, PlainJit;
      PlainRef.ResultBits = doubleToBits(PlainVm.callEntry(0u, X.data()));
      PlainRef.Trapped = PlainVm.trapped();
      PlainRef.TrapMessage = PlainVm.trapMessage();
      PlainJit.ResultBits = doubleToBits(JitVm->callEntry(0u, X.data()));
      PlainJit.Trapped = JitVm->trapped();
      PlainJit.TrapMessage = JitVm->trapMessage();
      D = diffTiers(PlainRef, PlainJit, "jit/no-context");
    }
    if (!D.empty()) {
      ADD_FAILURE() << "seed " << Seed << ": tiers diverge\n"
                    << D << describeInput(X) << "\n--- source ---\n"
                    << Source << "--- disassembly ---\n"
                    << disassemble(*SP.Code);
      return false;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Batched lane: the same population through runBatch on every backend
//===----------------------------------------------------------------------===//

/// Everything observable about one batched evaluation: per-row result
/// bits plus the end-of-batch state (context r and trace, Vm trap) packed
/// into a TierRun so diffTiers can compare it.
struct BatchObs {
  std::vector<uint64_t> RowBits;
  TierRun End; ///< ResultBits holds the end-of-batch context r.
};

BatchObs runBatchLane(bc::Vm &Vm, const double *Xs, size_t Count, size_t N) {
  BatchObs Run;
  ExecutionContext Ctx(Vm.unit().NumSites);
  Ctx.TraceEnabled = true;
  ExecutionContext::Scope Scope(Ctx);
  std::vector<double> Out(Count, -7.0);
  Vm.runBatch(0, Xs, Count, N, Out.data());
  Run.RowBits.reserve(Count);
  for (double V : Out)
    Run.RowBits.push_back(doubleToBits(V));
  Run.End.ResultBits = doubleToBits(Ctx.R);
  Run.End.Trace = Ctx.Trace;
  Run.End.Trapped = Vm.trapped();
  Run.End.TrapMessage = Vm.trapMessage();
  return Run;
}

std::string diffBatch(const BatchObs &A, const BatchObs &B,
                      const char *BName) {
  std::string D;
  for (size_t I = 0; I < A.RowBits.size() && I < B.RowBits.size(); ++I)
    if (A.RowBits[I] != B.RowBits[I]) {
      D += "row " + std::to_string(I) + " bits differ: reference " +
           std::to_string(A.RowBits[I]) + " vs " + BName + " " +
           std::to_string(B.RowBits[I]) + "\n";
      break;
    }
  return D + diffTiers(A.End, B.End, BName);
}

/// Batched input rows: the boundary battery walked across lane positions
/// (so every NaN, infinity and trap-provoking value lands on every lane
/// of the 4-wide groups) followed by seeded raw-bit and exponent-uniform
/// randoms.
std::vector<double> batchRows(unsigned Arity, size_t Count, uint64_t Seed) {
  const double Inf = std::numeric_limits<double>::infinity();
  static const double Boundary[] = {
      0.0,    -0.0, 1.0,   -1.0,
      0.5,    2.5,  1e300, -1e300,
      5e-324, 4503599627370496.0, // 2^52
      Inf,    -Inf, std::numeric_limits<double>::quiet_NaN(),
  };
  constexpr size_t NB = sizeof(Boundary) / sizeof(Boundary[0]);
  Rng R(Seed ^ 0xb47c4edu);
  std::vector<double> Xs(Count * Arity);
  for (size_t I = 0; I < Xs.size(); ++I)
    Xs[I] = I < NB * 4 ? Boundary[(I + I / 4) % NB]
                       : (I & 1) ? R.rawBitsDouble()
                                 : R.exponentUniformDouble();
  return Xs;
}

struct BatchFuzzStats {
  unsigned Programs = 0;
  unsigned JitWideRouted = 0;  ///< programs routed to 4-lane fragments
  unsigned TrapRows = 0;       ///< reference rows that trapped (full budget)
  unsigned BudgetTrapRows = 0; ///< reference rows that trapped (tight budget)
};

/// Compiles one generated program and runs a ragged \p Count-row batch
/// through every backend in the fall-back chain — interpreted SIMD lane,
/// scalar fragments, 4-lane wide fragments — against the scalar
/// interpreter rows, under both the full step budget and a tight one that
/// exhausts mid-row for the loopier programs (so "step budget exhausted"
/// rows land at arbitrary batch positions and every backend must place
/// them identically).
bool runOneBatchedProgram(uint64_t Seed, size_t Count, BatchFuzzStats &Stats) {
  ProgramGen Gen(Seed);
  std::string Source = Gen.generate();

  SourceProgramOptions Opts;
  Opts.Fuse = (Seed & 1) != 0;
  Opts.Interp.MaxSteps = 60000;
  SourceProgram SP = compileSourceProgram(Source, "f", Opts);
  if (!SP.success()) {
    ADD_FAILURE() << "seed " << Seed << ": generated program failed to "
                  << "compile:\n"
                  << SP.diagnosticsText() << "\n--- source ---\n"
                  << Source;
    return false;
  }
  ++Stats.Programs;

  unsigned N = Gen.arity();
  std::vector<double> Xs = batchRows(N, Count, Seed);

  std::shared_ptr<const bc::JitUnit> Jit;
  if (bc::JitUnit::available())
    Jit = bc::JitUnit::build(SP.Code);

  for (uint64_t MaxSteps : {uint64_t{60000}, uint64_t{150}}) {
    InterpOptions ScalarOpts = Opts.Interp;
    ScalarOpts.MaxSteps = MaxSteps;
    ScalarOpts.Simd = VmSimd::Off;
    InterpOptions WideOpts = Opts.Interp;
    WideOpts.MaxSteps = MaxSteps;

    bc::Vm RefVm(SP.Code, ScalarOpts); // interpreter rows: the reference
    BatchObs Ref = runBatchLane(RefVm, Xs.data(), Count, N);
    for (size_t I = 0; I < Count; ++I) {
      RefVm.callEntry(0u, Xs.data() + I * N);
      if (RefVm.trapped())
        ++(MaxSteps == 150 ? Stats.BudgetTrapRows : Stats.TrapRows);
    }

    std::vector<std::pair<std::string, BatchObs>> Lanes;
    bc::Vm WideVm(SP.Code, WideOpts);
    Lanes.emplace_back(std::string("vm-batch/") + WideVm.batchBackendName(0),
                       runBatchLane(WideVm, Xs.data(), Count, N));
    if (Jit) {
      bc::Vm ScalarJit(SP.Code, ScalarOpts);
      ScalarJit.attachJit(Jit);
      Lanes.emplace_back(std::string("jit-batch/") +
                             ScalarJit.batchBackendName(0),
                         runBatchLane(ScalarJit, Xs.data(), Count, N));
      bc::Vm JitWide(SP.Code, WideOpts);
      JitWide.attachJit(Jit);
      std::string Backend = JitWide.batchBackendName(0);
      if (MaxSteps != 150 && Backend == "jit-wide")
        ++Stats.JitWideRouted;
      Lanes.emplace_back("jit-wide-chain/" + Backend,
                         runBatchLane(JitWide, Xs.data(), Count, N));
    }
    for (const auto &L : Lanes) {
      std::string D = diffBatch(Ref, L.second, L.first.c_str());
      if (!D.empty()) {
        ADD_FAILURE() << "seed " << Seed << ": batched lane (" << L.first
                      << ", count " << Count << ", budget " << MaxSteps
                      << ") diverges from scalar rows\n"
                      << D << describeInput(std::vector<double>(
                             Xs.begin(), Xs.begin() + N))
                      << "\n--- source ---\n"
                      << Source << "--- disassembly ---\n"
                      << disassemble(*SP.Code);
        return false;
      }
    }
  }
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// The battery
//===----------------------------------------------------------------------===//

TEST(TierFuzzTest, RandomProgramsAgreeAcrossAllTiers) {
  constexpr unsigned NumPrograms = 220;
  constexpr uint64_t BaseSeed = 0x7137f022u; // fixed: failures reproduce
  FuzzStats Stats;
  unsigned Failures = 0;
  for (unsigned I = 0; I < NumPrograms && Failures < 3; ++I)
    if (!runOneProgram(BaseSeed + I, Stats))
      ++Failures;
  EXPECT_EQ(Failures, 0u);

  // The population must be meaningful: programs compiled, conditional
  // sites were instrumented, traps were reached, and — when this build
  // has the JIT — the generator's entries overwhelmingly compiled to
  // native fragments (they contain no calls, the one structural clamp).
  EXPECT_EQ(Stats.Programs, NumPrograms);
  EXPECT_GT(Stats.SitesTotal, NumPrograms) << "generator lost its sites";
  EXPECT_GT(Stats.TrappedRuns, 0u) << "trap parity went untested";
  if (bc::JitUnit::available())
    EXPECT_GT(Stats.JittedEntries, (NumPrograms * 9) / 10)
        << "JIT eligibility collapsed: the fuzz battery is no longer "
           "exercising native fragments";
  else
    EXPECT_EQ(Stats.JittedEntries, 0u);
}

TEST(TierFuzzTest, RandomProgramsBatchedLaneAgreesAcrossBackends) {
  // The batched arm of the same contract: the identical 220-program
  // population, evaluated as ragged batches (counts 1..257, so every
  // group-boundary and tail shape occurs) through runBatch on every
  // backend the fall-back chain can resolve to. Rows, end-of-batch
  // context, and traps must match the scalar interpreter rows bit for
  // bit — including "step budget exhausted" rows mid-batch.
  constexpr unsigned NumPrograms = 220;
  constexpr uint64_t BaseSeed = 0x7137f022u; // same population as above
  BatchFuzzStats Stats;
  unsigned Failures = 0;
  for (unsigned I = 0; I < NumPrograms && Failures < 3; ++I)
    if (!runOneBatchedProgram(BaseSeed + I, 1 + (I * 131) % 257, Stats))
      ++Failures;
  EXPECT_EQ(Failures, 0u);

  EXPECT_EQ(Stats.Programs, NumPrograms);
  EXPECT_GT(Stats.TrapRows, 0u) << "trap-row parity went untested";
  EXPECT_GT(Stats.BudgetTrapRows, 0u) << "budget exhaustion went untested";
  if (bc::JitUnit::available() && bc::Vm::simdAvailable()) {
    EXPECT_GT(Stats.JitWideRouted, NumPrograms / 2)
        << "wide-fragment routing collapsed (" << Stats.JitWideRouted
        << " of " << NumPrograms << "): the batched battery is no longer "
        << "exercising 4-lane native fragments";
  }
}

TEST(TierFuzzTest, SweepIsDeterministic) {
  // The battery itself must be reproducible: the same seed generates the
  // same source text, else a logged failure seed would not replay.
  ProgramGen A(12345), B(12345);
  EXPECT_EQ(A.generate(), B.generate());
  ProgramGen C(12346);
  EXPECT_NE(A.generate(), C.generate());
}
