//===- ServiceRecoveryTest.cpp - Crash recovery, faults, deadlines ---------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fault-tolerance contracts of the service runtime:
///
///  * CheckpointStore's durability protocol — torn writes, CRC failures,
///    and crashes between write and rename all fall back to the previous
///    good generation, with the damaged file quarantined as evidence,
///  * the crash-recovery golden matrix — a campaign interrupted
///    mid-flight (on the VM or JIT tier, with the journal save itself
///    failing at any step) recovers in a fresh session and finishes
///    bit-identically to the uninterrupted run,
///  * the fault-injection matrix — every registered fault point degrades
///    to a slower-but-correct path, never to an abort or a wrong answer,
///  * wall-clock deadlines — expiry lands at a round boundary with a
///    valid, resumable partial result,
///  * bounded waits — waitFor distinguishes terminal, timed-out, and
///    unknown without disturbing the job.
///
//===----------------------------------------------------------------------===//

#include "core/Checkpoint.h"
#include "core/CoverMe.h"
#include "lang/SourceProgram.h"
#include "service/CheckpointStore.h"
#include "service/JobWire.h"
#include "service/Json.h"
#include "service/Session.h"
#include "support/FaultInject.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace coverme;

namespace {

const char *ClassifierSource =
    "double classify(double x, double y) {\n"
    "  double s = 0.0;\n"
    "  if (x > 1000.0) s = s + 1.0;\n"
    "  if (y < -2.5) s = s + 2.0;\n"
    "  if (x * x + y * y < 0.25) s = s + 4.0;\n"
    "  if (x == y) s = s + 8.0;\n"
    "  if (x + y > 1.0e20) s = s + 16.0;\n"
    "  return s;\n"
    "}\n";

JobRequest classifierRequest(uint64_t Seed, unsigned NStart,
                             unsigned Threads) {
  JobRequest Req;
  Req.Source = ClassifierSource;
  Req.Entry = "classify";
  Req.Campaign.Seed = Seed;
  Req.Campaign.NStart = NStart;
  Req.Campaign.Threads = Threads;
  Req.Campaign.StopWhenAllSaturated = false;
  return Req;
}

/// Digest of the uninterrupted campaign every recovery/degradation path
/// must reproduce. Computed on the default (VM) tier: the tiers are
/// bit-identical by construction, so one reference serves them all.
uint64_t referenceDigest(const JobRequest &Req) {
  lang::SourceProgram SP = lang::compileSourceProgram(Req.Source, Req.Entry);
  EXPECT_TRUE(SP.success()) << SP.diagnosticsText();
  return resultDigest(CoverMe(SP.Prog, Req.Campaign).run());
}

/// Leaves the global fault registry disarmed no matter how the test exits.
struct FaultInjectGuard {
  FaultInjectGuard() { faultinject::reset(); }
  ~FaultInjectGuard() { faultinject::reset(); }
};

/// mkdtemp-backed scratch directory, recursively (one level) removed on
/// destruction — the store never creates subdirectories.
class TempDir {
public:
  explicit TempDir(const char *Tag) {
    std::string Templ = std::string("/tmp/coverme_") + Tag + "_XXXXXX";
    std::vector<char> Buf(Templ.begin(), Templ.end());
    Buf.push_back('\0');
    if (char *P = ::mkdtemp(Buf.data()))
      Path = P;
  }
  ~TempDir() {
    if (Path.empty())
      return;
    if (DIR *D = ::opendir(Path.c_str())) {
      while (dirent *E = ::readdir(D)) {
        std::string Name = E->d_name;
        if (Name != "." && Name != "..")
          ::unlink((Path + "/" + Name).c_str());
      }
      ::closedir(D);
    }
    ::rmdir(Path.c_str());
  }
  const std::string &path() const { return Path; }

private:
  std::string Path;
};

std::vector<std::string> listDir(const std::string &Dir) {
  std::vector<std::string> Names;
  if (DIR *D = ::opendir(Dir.c_str())) {
    while (dirent *E = ::readdir(D)) {
      std::string Name = E->d_name;
      if (Name != "." && Name != "..")
        Names.push_back(Name);
    }
    ::closedir(D);
  }
  std::sort(Names.begin(), Names.end());
  return Names;
}

size_t countWithSuffix(const std::string &Dir, const std::string &Suffix) {
  size_t N = 0;
  for (const std::string &Name : listDir(Dir))
    if (Name.size() >= Suffix.size() &&
        Name.compare(Name.size() - Suffix.size(), Suffix.size(), Suffix) == 0)
      ++N;
  return N;
}

/// The `<key>.gen<N>.ckpt` file with the largest N, or "".
std::string newestEntryFile(const std::string &Dir, const std::string &Key) {
  std::string Best;
  uint64_t BestGen = 0;
  const std::string Prefix = Key + ".gen";
  for (const std::string &Name : listDir(Dir)) {
    if (Name.compare(0, Prefix.size(), Prefix) != 0)
      continue;
    if (Name.size() < 5 || Name.compare(Name.size() - 5, 5, ".ckpt") != 0)
      continue;
    uint64_t Gen = std::strtoull(Name.c_str() + Prefix.size(), nullptr, 10);
    if (Gen >= BestGen) {
      BestGen = Gen;
      Best = Name;
    }
  }
  return Best;
}

void truncateToHalf(const std::string &Path) {
  struct stat St;
  ASSERT_EQ(::stat(Path.c_str(), &St), 0);
  ASSERT_EQ(::truncate(Path.c_str(), St.st_size / 2), 0);
}

void flipOneByte(const std::string &Path, size_t OffsetFromEnd) {
  struct stat St;
  ASSERT_EQ(::stat(Path.c_str(), &St), 0);
  ASSERT_GT(static_cast<size_t>(St.st_size), OffsetFromEnd);
  int Fd = ::open(Path.c_str(), O_RDWR);
  ASSERT_GE(Fd, 0);
  off_t Pos = St.st_size - static_cast<off_t>(OffsetFromEnd) - 1;
  uint8_t Byte = 0;
  ASSERT_EQ(::pread(Fd, &Byte, 1, Pos), 1);
  Byte ^= 0x40;
  ASSERT_EQ(::pwrite(Fd, &Byte, 1, Pos), 1);
  ::close(Fd);
}

std::vector<uint8_t> bytesOf(const char *Text) {
  return std::vector<uint8_t>(Text, Text + std::char_traits<char>::length(Text));
}

//===----------------------------------------------------------------------===//
// CheckpointStore durability protocol
//===----------------------------------------------------------------------===//

TEST(CheckpointStore, SaveLoadRoundTripsMetaAndSnapshot) {
  TempDir Dir("store");
  CheckpointStore Store(Dir.path());
  ASSERT_TRUE(Store.ok());

  std::string Err;
  ASSERT_TRUE(Store.save("job1", "{\"seed\":7}", bytesOf("snapbytes"), Err))
      << Err;
  CheckpointStore::Entry E;
  ASSERT_TRUE(Store.load("job1", E, Err)) << Err;
  EXPECT_EQ(E.Key, "job1");
  EXPECT_EQ(E.Meta, "{\"seed\":7}");
  EXPECT_EQ(E.Snapshot, bytesOf("snapbytes"));
  EXPECT_GT(E.Generation, 0u);

  EXPECT_FALSE(Store.load("job2", E, Err)) << "missing keys load nothing";
  EXPECT_EQ(Store.quarantinedCount(), 0u);
}

TEST(CheckpointStore, EmptySnapshotMarksAFreshStartRecord) {
  // A job journaled at submit, before its first checkpoint: the entry
  // carries the request only, and recovery starts the campaign fresh.
  TempDir Dir("store");
  CheckpointStore Store(Dir.path());
  std::string Err;
  ASSERT_TRUE(Store.save("job1", "meta", {}, Err)) << Err;
  CheckpointStore::Entry E;
  ASSERT_TRUE(Store.load("job1", E, Err)) << Err;
  EXPECT_EQ(E.Meta, "meta");
  EXPECT_TRUE(E.Snapshot.empty());
}

TEST(CheckpointStore, RetentionKeepsNewestPlusOnePredecessor) {
  TempDir Dir("store");
  CheckpointStore Store(Dir.path());
  std::string Err;
  for (int I = 1; I <= 5; ++I)
    ASSERT_TRUE(Store.save("job1", "gen" + std::to_string(I),
                           bytesOf("snap"), Err))
        << Err;
  EXPECT_EQ(countWithSuffix(Dir.path(), ".ckpt"), 2u)
      << "newest + fallback, nothing older";
  CheckpointStore::Entry E;
  ASSERT_TRUE(Store.load("job1", E, Err)) << Err;
  EXPECT_EQ(E.Meta, "gen5");
}

TEST(CheckpointStore, KeysStayUniqueAcrossReopen) {
  TempDir Dir("store");
  std::string First;
  {
    CheckpointStore Store(Dir.path());
    First = Store.allocateKey();
    std::string Err;
    ASSERT_TRUE(Store.save(First, "survivor", {}, Err)) << Err;
  }
  CheckpointStore Reopened(Dir.path());
  ASSERT_TRUE(Reopened.ok());
  EXPECT_NE(Reopened.allocateKey(), First)
      << "serials are seeded past the on-disk scan";
  CheckpointStore::Entry E;
  std::string Err;
  ASSERT_TRUE(Reopened.load(First, E, Err)) << Err;
  EXPECT_EQ(E.Meta, "survivor");
}

TEST(CheckpointStore, HostileKeysAreRejected) {
  TempDir Dir("store");
  CheckpointStore Store(Dir.path());
  std::string Err;
  for (const char *Bad : {"", "../escape", "a/b", "a.b", "dir/"}) {
    EXPECT_FALSE(Store.save(Bad, "m", {}, Err)) << Bad;
  }
}

TEST(CheckpointStore, RemoveRetiresEveryGeneration) {
  TempDir Dir("store");
  CheckpointStore Store(Dir.path());
  std::string Err;
  for (int I = 0; I < 3; ++I)
    ASSERT_TRUE(Store.save("job1", "m", bytesOf("s"), Err)) << Err;
  Store.remove("job1");
  CheckpointStore::Entry E;
  EXPECT_FALSE(Store.load("job1", E, Err));
  EXPECT_TRUE(listDir(Dir.path()).empty());
}

TEST(CheckpointStore, TornNewestEntryFallsBackToPreviousGeneration) {
  TempDir Dir("store");
  CheckpointStore Store(Dir.path());
  std::string Err;
  ASSERT_TRUE(Store.save("job1", "good", bytesOf("old-snap"), Err)) << Err;
  ASSERT_TRUE(Store.save("job1", "newer", bytesOf("new-snap"), Err)) << Err;

  // A power cut mid-write leaves the newest generation short.
  std::string Newest = newestEntryFile(Dir.path(), "job1");
  ASSERT_FALSE(Newest.empty());
  truncateToHalf(Dir.path() + "/" + Newest);

  CheckpointStore::Entry E;
  ASSERT_TRUE(Store.load("job1", E, Err)) << Err;
  EXPECT_EQ(E.Meta, "good") << "the predecessor is the truth";
  EXPECT_EQ(E.Snapshot, bytesOf("old-snap"));
  EXPECT_EQ(Store.quarantinedCount(), 1u);
  EXPECT_EQ(countWithSuffix(Dir.path(), ".corrupt"), 1u)
      << "the torn file stays on disk as evidence";
}

TEST(CheckpointStore, CrcCatchesASingleFlippedPayloadByte) {
  TempDir Dir("store");
  CheckpointStore Store(Dir.path());
  std::string Err;
  ASSERT_TRUE(Store.save("job1", "good", bytesOf("old-snap"), Err)) << Err;
  ASSERT_TRUE(Store.save("job1", "newer", bytesOf("corrupted-soon"), Err))
      << Err;

  // Flip one payload byte: lengths and magic stay plausible, only the
  // CRC can tell.
  std::string Newest = newestEntryFile(Dir.path(), "job1");
  ASSERT_FALSE(Newest.empty());
  flipOneByte(Dir.path() + "/" + Newest, /*OffsetFromEnd=*/2);

  CheckpointStore::Entry E;
  ASSERT_TRUE(Store.load("job1", E, Err)) << Err;
  EXPECT_EQ(E.Meta, "good");
  EXPECT_EQ(Store.quarantinedCount(), 1u);
}

TEST(CheckpointStore, InjectedTornWriteLeavesPreviousGenerationLive) {
  TempDir Dir("store");
  FaultInjectGuard Guard;
  {
    CheckpointStore Store(Dir.path());
    std::string Err;
    ASSERT_TRUE(Store.save("job1", "good", bytesOf("snap"), Err)) << Err;
    faultinject::arm("ckpt.write", 1);
    EXPECT_FALSE(Store.save("job1", "lost", bytesOf("lost"), Err));
    EXPECT_NE(Err.find("torn"), std::string::npos) << Err;
  }
  faultinject::reset();
  EXPECT_EQ(countWithSuffix(Dir.path(), ".tmp"), 1u)
      << "the crash left its half-written temp behind";

  // The next process quarantines the orphan and serves the predecessor.
  CheckpointStore Recovered(Dir.path());
  std::vector<CheckpointStore::Entry> All = Recovered.loadAll();
  ASSERT_EQ(All.size(), 1u);
  EXPECT_EQ(All[0].Meta, "good");
  EXPECT_GE(Recovered.quarantinedCount(), 1u);
  EXPECT_EQ(countWithSuffix(Dir.path(), ".tmp"), 0u);
}

TEST(CheckpointStore, InjectedCrashBetweenWriteAndRenameIsQuarantined) {
  TempDir Dir("store");
  FaultInjectGuard Guard;
  {
    CheckpointStore Store(Dir.path());
    std::string Err;
    ASSERT_TRUE(Store.save("job1", "good", bytesOf("snap"), Err)) << Err;
    faultinject::arm("ckpt.rename", 1);
    EXPECT_FALSE(Store.save("job1", "unrenamed", bytesOf("full"), Err));
  }
  faultinject::reset();

  // The temp is fully written and would pass the CRC — but its rename
  // never happened, so it was never committed and must not be trusted.
  CheckpointStore Recovered(Dir.path());
  std::vector<CheckpointStore::Entry> All = Recovered.loadAll();
  ASSERT_EQ(All.size(), 1u);
  EXPECT_EQ(All[0].Meta, "good");
  EXPECT_GE(Recovered.quarantinedCount(), 1u);
  EXPECT_EQ(countWithSuffix(Dir.path(), ".tmp"), 0u);
}

TEST(CheckpointStore, InjectedFsyncFailureFailsTheSaveCleanly) {
  TempDir Dir("store");
  FaultInjectGuard Guard;
  CheckpointStore Store(Dir.path());
  std::string Err;
  ASSERT_TRUE(Store.save("job1", "good", bytesOf("snap"), Err)) << Err;
  faultinject::arm("ckpt.fsync", 1);
  EXPECT_FALSE(Store.save("job1", "lost", bytesOf("lost"), Err));
  faultinject::reset();
  CheckpointStore::Entry E;
  ASSERT_TRUE(Store.load("job1", E, Err)) << Err;
  EXPECT_EQ(E.Meta, "good");
}

//===----------------------------------------------------------------------===//
// Crash-recovery golden matrix
//===----------------------------------------------------------------------===//

/// One crash-recovery scenario: run a journaled campaign to its round-7
/// suspension (the stand-in for the crash point — a session that dies
/// with a suspended job leaves its journal entry behind, exactly like a
/// killed process), optionally failing every journal save from the
/// second periodic checkpoint on, then recover in a fresh session and
/// prove the finished campaign digests equal to \p Reference.
///
/// With \p FaultPoint null the newest entry is the round-7 suspension
/// snapshot; with "ckpt.write"/"ckpt.rename" armed the round-6 and
/// round-7 saves tear, so recovery falls back to the round-3 checkpoint
/// and replays rounds 4..7 deterministically before finishing.
void runCrashRecoveryScenario(lang::ExecutionTier Tier,
                              const char *FaultPoint, uint64_t Reference) {
  TempDir Dir("golden");
  FaultInjectGuard Guard;

  // Phase 1: the process that "crashes". Journal save ordinals per
  // point: submit record (1), checkpoint@3 (2), checkpoint@6 (3),
  // suspension@7 (4) — arming from ordinal 3 tears everything past the
  // first periodic checkpoint.
  {
    CheckpointStore Store(Dir.path());
    ASSERT_TRUE(Store.ok());
    SessionOptions SO;
    SO.Store = &Store;
    Session S(SO);

    JobRequest Req = classifierRequest(/*Seed=*/7, /*NStart=*/12,
                                       /*Threads=*/2);
    Req.Compile.Tier = Tier;
    Req.Campaign.CheckpointEveryRounds = 3;
    Req.Campaign.SuspendAfterRounds = 7;
    if (FaultPoint)
      faultinject::arm(FaultPoint, /*FirstHit=*/3, /*Count=*/1000);

    uint64_t Id = S.submit(Req);
    ASSERT_NE(Id, 0u);
    ASSERT_TRUE(S.wait(Id));
    JobStatus St;
    ASSERT_TRUE(S.status(Id, St));
    ASSERT_EQ(St.State, JobState::Suspended);
    EXPECT_EQ(St.Stop, StopReason::Suspended);
    EXPECT_EQ(St.RoundsCommitted, 7u);
    EXPECT_FALSE(St.StoreKey.empty());
    if (FaultPoint) {
      EXPECT_FALSE(St.StoreError.empty())
          << "the torn checkpoint@6 save must be reported";
    }
  } // session dies with the job suspended: the journal entry survives

  faultinject::reset();

  // Phase 2: the recovering process.
  CheckpointStore Store(Dir.path());
  ASSERT_TRUE(Store.ok());
  {
    SessionOptions SO;
    SO.Store = &Store;
    Session S(SO);
    std::vector<uint64_t> Ids = S.recoverFromStore();
    ASSERT_EQ(Ids.size(), 1u);
    if (FaultPoint) {
      EXPECT_GE(Store.quarantinedCount(), 1u)
          << "recovery must quarantine the torn save";
    }

    ASSERT_TRUE(S.wait(Ids[0]));
    JobStatus St;
    ASSERT_TRUE(S.status(Ids[0], St));
    if (St.State == JobState::Suspended) {
      // Recovered below the journaled suspend_after point (the fallback
      // checkpoint cases): the suspension fires once more, then resume —
      // which clears the satisfied trigger — carries it to the end.
      EXPECT_EQ(St.RoundsCommitted, 7u);
      std::string Err;
      ASSERT_TRUE(S.resume(Ids[0], Err)) << Err;
      ASSERT_TRUE(S.wait(Ids[0]));
      ASSERT_TRUE(S.status(Ids[0], St));
    }
    ASSERT_EQ(St.State, JobState::Done);
    EXPECT_EQ(St.RoundsCommitted, 12u);
    EXPECT_EQ(St.Stop, StopReason::RoundsExhausted);

    CampaignResult Res;
    ASSERT_TRUE(S.result(Ids[0], Res));
    EXPECT_EQ(resultDigest(Res), Reference)
        << "recovered campaign must be bit-identical to uninterrupted";
  } // session drains: the completion-retirement I/O has landed

  EXPECT_TRUE(Store.loadAll().empty())
      << "a completed campaign leaves nothing to recover";
}

TEST(CrashRecoveryGolden, VmTierAcrossAllCrashPoints) {
  const uint64_t Reference = referenceDigest(classifierRequest(7, 12, 2));
  for (const char *FaultPoint :
       {static_cast<const char *>(nullptr), "ckpt.write", "ckpt.rename"}) {
    SCOPED_TRACE(FaultPoint ? FaultPoint : "mid-campaign");
    runCrashRecoveryScenario(lang::ExecutionTier::Bytecode, FaultPoint,
                             Reference);
  }
}

TEST(CrashRecoveryGolden, JitTierAcrossAllCrashPoints) {
  const uint64_t Reference = referenceDigest(classifierRequest(7, 12, 2));
  for (const char *FaultPoint :
       {static_cast<const char *>(nullptr), "ckpt.write", "ckpt.rename"}) {
    SCOPED_TRACE(FaultPoint ? FaultPoint : "mid-campaign");
    runCrashRecoveryScenario(lang::ExecutionTier::Jit, FaultPoint, Reference);
  }
}

//===----------------------------------------------------------------------===//
// Fault-injection matrix: every degradation is slower, never wrong
//===----------------------------------------------------------------------===//

TEST(FaultMatrix, JitMemoryFaultsFallBackToTheVmTier) {
  JobRequest Req = classifierRequest(/*Seed=*/11, /*NStart=*/10,
                                     /*Threads=*/2);
  const uint64_t Reference = referenceDigest(Req);
  for (const char *Point : {"execmem.mmap", "execmem.seal"}) {
    SCOPED_TRACE(Point);
    FaultInjectGuard Guard;
    faultinject::arm(Point, /*FirstHit=*/1, /*Count=*/100000);

    Session S;
    JobRequest JitReq = Req;
    JitReq.Compile.Tier = lang::ExecutionTier::Jit;
    uint64_t Id = S.submit(JitReq);
    ASSERT_TRUE(S.wait(Id));
    JobStatus St;
    ASSERT_TRUE(S.status(Id, St));
    ASSERT_EQ(St.State, JobState::Done) << St.Error;
    CampaignResult Res;
    ASSERT_TRUE(S.result(Id, Res));
    EXPECT_EQ(resultDigest(Res), Reference)
        << "VM fallback must be bit-identical";
    EXPECT_GE(faultinject::failCount(Point), 1u)
        << "the fault must actually have fired";
  }
}

TEST(FaultMatrix, SimdInitFaultFallsBackToScalarBatches) {
  JobRequest Req = classifierRequest(/*Seed=*/13, /*NStart=*/10,
                                     /*Threads=*/2);
  const uint64_t Reference = referenceDigest(Req);
  FaultInjectGuard Guard;
  faultinject::arm("vm.simd.init", /*FirstHit=*/1, /*Count=*/100000);

  Session S;
  uint64_t Id = S.submit(Req);
  ASSERT_TRUE(S.wait(Id));
  JobStatus St;
  ASSERT_TRUE(S.status(Id, St));
  ASSERT_EQ(St.State, JobState::Done) << St.Error;
  CampaignResult Res;
  ASSERT_TRUE(S.result(Id, Res));
  EXPECT_EQ(resultDigest(Res), Reference)
      << "scalar batches must be bit-identical to the wide lane";
}

TEST(FaultMatrix, CacheInsertFailureCostsAmortizationNotCorrectness) {
  JobRequest Req = classifierRequest(/*Seed=*/17, /*NStart=*/8,
                                     /*Threads=*/1);
  const uint64_t Reference = referenceDigest(Req);
  FaultInjectGuard Guard;
  faultinject::arm("cache.insert", /*FirstHit=*/1);

  Session S;
  uint64_t Id = S.submit(Req);
  ASSERT_TRUE(S.wait(Id));
  JobStatus St;
  ASSERT_TRUE(S.status(Id, St));
  ASSERT_EQ(St.State, JobState::Done) << St.Error;
  CampaignResult Res;
  ASSERT_TRUE(S.result(Id, Res));
  EXPECT_EQ(resultDigest(Res), Reference);
  EXPECT_EQ(S.cacheSize(), 0u) << "the insertion failed";
  EXPECT_EQ(S.cacheStats().InsertFailures, 1u);

  // The schedule is spent; the same subject now caches normally.
  uint64_t Second = S.submit(Req);
  ASSERT_TRUE(S.wait(Second));
  EXPECT_EQ(S.cacheSize(), 1u);
}

//===----------------------------------------------------------------------===//
// Wall-clock deadlines
//===----------------------------------------------------------------------===//

TEST(Deadline, ExpiryStopsAtARoundBoundaryWithAResumablePrefix) {
  lang::SourceProgram SP =
      lang::compileSourceProgram(ClassifierSource, "classify");
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  CoverMeOptions Opts;
  Opts.Seed = 19;
  Opts.NStart = 1000000;
  Opts.Threads = 2;
  Opts.StopWhenAllSaturated = false;
  Opts.WallDeadline = 0.02;
  CampaignResult Res = CoverMe(SP.Prog, Opts).run();
  EXPECT_EQ(Res.Stop, StopReason::DeadlineExpired);
  EXPECT_TRUE(Res.Suspended) << "an expired campaign is a resumable prefix";
  EXPECT_LT(Res.StartsUsed, Opts.NStart);
  EXPECT_EQ(Res.Rounds.size(), Res.StartsUsed)
      << "every committed round is in the log, nothing mid-round";
}

TEST(Deadline, ExpiredJobResumesBitIdenticallyThroughTheSession) {
  JobRequest Req = classifierRequest(/*Seed=*/23, /*NStart=*/30,
                                     /*Threads=*/2);
  const uint64_t Reference = referenceDigest(Req);

  Session S;
  JobRequest Expiring = Req;
  Expiring.Campaign.WallDeadline = 1e-6; // expires at the first boundary
  uint64_t Id = S.submit(Expiring);
  ASSERT_TRUE(S.wait(Id));
  JobStatus St;
  ASSERT_TRUE(S.status(Id, St));
  ASSERT_EQ(St.State, JobState::Suspended);
  EXPECT_EQ(St.Stop, StopReason::DeadlineExpired);
  EXPECT_LT(St.RoundsCommitted, 30u);

  std::vector<uint8_t> Bytes;
  std::string Err;
  ASSERT_TRUE(S.checkpoint(Id, Bytes, Err)) << Err;

  // Resume in a fresh session with the deadline lifted.
  Session Fresh;
  JobRequest Unbounded = Req;
  uint64_t Resumed = Fresh.submitResume(Unbounded, Bytes, Err);
  ASSERT_NE(Resumed, 0u) << Err;
  ASSERT_TRUE(Fresh.wait(Resumed));
  ASSERT_TRUE(Fresh.status(Resumed, St));
  ASSERT_EQ(St.State, JobState::Done);
  EXPECT_EQ(St.RoundsCommitted, 30u);
  CampaignResult Res;
  ASSERT_TRUE(Fresh.result(Resumed, Res));
  EXPECT_EQ(resultDigest(Res), Reference);
}

TEST(Deadline, DeadlineOutranksVoluntarySuspension) {
  // Both trip at the same boundary; the fixed evaluation order makes the
  // deadline the reported reason.
  lang::SourceProgram SP =
      lang::compileSourceProgram(ClassifierSource, "classify");
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  CoverMeOptions Opts;
  Opts.Seed = 29;
  Opts.NStart = 100000;
  Opts.Threads = 1;
  Opts.StopWhenAllSaturated = false;
  Opts.WallDeadline = 1e-9;
  Opts.SuspendAfterRounds = 50000;
  CampaignResult Res = CoverMe(SP.Prog, Opts).run();
  EXPECT_EQ(Res.Stop, StopReason::DeadlineExpired);
  EXPECT_TRUE(Res.Suspended);
}

//===----------------------------------------------------------------------===//
// Bounded waits
//===----------------------------------------------------------------------===//

TEST(SessionWait, WaitForDistinguishesTerminalTimedOutUnknown) {
  Session S;
  EXPECT_EQ(S.waitFor(99, 0.01), Session::WaitOutcome::Unknown);

  uint64_t Id = S.submit(classifierRequest(/*Seed=*/31, /*NStart=*/1000000,
                                           /*Threads=*/2));
  ASSERT_NE(Id, 0u);
  EXPECT_EQ(S.waitFor(Id, 0.05), Session::WaitOutcome::TimedOut);
  JobStatus St;
  ASSERT_TRUE(S.status(Id, St));
  EXPECT_NE(St.State, JobState::Done) << "a timed-out wait leaves the job be";

  EXPECT_TRUE(S.cancel(Id));
  EXPECT_EQ(S.waitFor(Id, -1.0), Session::WaitOutcome::Terminal);
  ASSERT_TRUE(S.status(Id, St));
  EXPECT_EQ(St.State, JobState::Cancelled);
}

//===----------------------------------------------------------------------===//
// Journal lifecycle through the session
//===----------------------------------------------------------------------===//

TEST(SessionJournal, CadencedCheckpointsAndRetirementOnCompletion) {
  TempDir Dir("journal");
  CheckpointStore Store(Dir.path());
  ASSERT_TRUE(Store.ok());
  {
    SessionOptions SO;
    SO.Store = &Store;
    SO.CheckpointEveryRounds = 4; // the session default path
    Session S(SO);
    uint64_t Id = S.submit(classifierRequest(/*Seed=*/37, /*NStart=*/12,
                                             /*Threads=*/2));
    ASSERT_TRUE(S.wait(Id));
    JobStatus St;
    ASSERT_TRUE(S.status(Id, St));
    ASSERT_EQ(St.State, JobState::Done);
    EXPECT_FALSE(St.StoreKey.empty());
    EXPECT_GE(St.CheckpointsSaved, 2u) << "rounds 4 and 8 checkpointed";
    EXPECT_TRUE(St.StoreError.empty()) << St.StoreError;
  } // drain: retirement I/O lands before the store is inspected
  EXPECT_TRUE(Store.loadAll().empty())
      << "completion retires the journal entry";
  EXPECT_EQ(Store.quarantinedCount(), 0u);
}

TEST(SessionJournal, ExplicitCancelRetiresButShutdownPreserves) {
  TempDir Dir("journal");
  CheckpointStore Store(Dir.path());
  {
    SessionOptions SO;
    SO.Store = &Store;
    Session S(SO);
    // A suspended job cancelled by the user: nothing left to recover.
    JobRequest Req = classifierRequest(/*Seed=*/41, /*NStart=*/20,
                                       /*Threads=*/1);
    Req.Campaign.SuspendAfterRounds = 3;
    uint64_t Id = S.submit(Req);
    ASSERT_TRUE(S.wait(Id));
    EXPECT_TRUE(S.cancel(Id));
  }
  EXPECT_TRUE(Store.loadAll().empty());

  {
    SessionOptions SO;
    SO.Store = &Store;
    Session S(SO);
    JobRequest Req = classifierRequest(/*Seed=*/41, /*NStart=*/20,
                                       /*Threads=*/1);
    Req.Campaign.SuspendAfterRounds = 3;
    uint64_t Id = S.submit(Req);
    ASSERT_TRUE(S.wait(Id));
    // No cancel: the session shuts down with the job suspended — the
    // polite version of a crash. The entry must survive for recovery.
  }
  EXPECT_EQ(Store.loadAll().size(), 1u);
}

//===----------------------------------------------------------------------===//
// The job-request wire form shared by serve and the journal
//===----------------------------------------------------------------------===//

TEST(JobWire, RequestRoundTripsThroughJson) {
  JobRequest Req;
  Req.Source = "double f(double x) { return x; }";
  Req.Entry = "f";
  Req.Compile.Tier = lang::ExecutionTier::Jit;
  Req.Compile.Fuse = false;
  Req.Campaign.Seed = 18446744073709551615ull;
  Req.Campaign.NStart = 77;
  Req.Campaign.NIter = 5;
  Req.Campaign.Threads = 3;
  Req.Campaign.MaxEvaluations = 123456;
  Req.Campaign.SuspendAfterRounds = 9;
  Req.Campaign.StopWhenAllSaturated = false;
  Req.Campaign.MarkInfeasible = false;
  Req.Campaign.WallDeadline = 2.5;
  Req.Campaign.CheckpointEveryRounds = 6;

  JobRequest Out;
  std::string Err;
  ASSERT_TRUE(jobRequestFromJson(jobRequestToJson(Req), Out, Err)) << Err;
  EXPECT_EQ(Out.Source, Req.Source);
  EXPECT_EQ(Out.Entry, Req.Entry);
  EXPECT_EQ(Out.Compile.Tier, lang::ExecutionTier::Jit);
  EXPECT_FALSE(Out.Compile.Fuse);
  EXPECT_EQ(Out.Campaign.Seed, Req.Campaign.Seed);
  EXPECT_EQ(Out.Campaign.NStart, 77u);
  EXPECT_EQ(Out.Campaign.NIter, 5u);
  EXPECT_EQ(Out.Campaign.Threads, 3u);
  EXPECT_EQ(Out.Campaign.MaxEvaluations, 123456u);
  EXPECT_EQ(Out.Campaign.SuspendAfterRounds, 9u);
  EXPECT_FALSE(Out.Campaign.StopWhenAllSaturated);
  EXPECT_FALSE(Out.Campaign.MarkInfeasible);
  EXPECT_EQ(Out.Campaign.WallDeadline, 2.5);
  EXPECT_EQ(Out.Campaign.CheckpointEveryRounds, 6u);
}

TEST(JobWire, MalformedRequestsAreRejected) {
  JobRequest Out;
  std::string Err;
  EXPECT_FALSE(jobRequestFromJson("{\"entry\":\"f\"}", Out, Err))
      << "source is mandatory";
  EXPECT_FALSE(jobRequestFromJson(
      "{\"source\":\"double f(double x){return x;}\",\"entry\":\"f\","
      "\"tier\":\"gpu\"}",
      Out, Err))
      << "unknown tiers are rejected, not defaulted";
  EXPECT_FALSE(jobRequestFromJson("[1,2,3]", Out, Err));
  EXPECT_FALSE(jobRequestFromJson("not json", Out, Err));
}

} // namespace
