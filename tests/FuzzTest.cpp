//===- FuzzTest.cpp - Tests for the baseline testers --------------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "fuzz/AflFuzzer.h"
#include "fuzz/AustinTester.h"
#include "fuzz/RandomTester.h"
#include "fdlibm/Fdlibm.h"
#include "runtime/Hooks.h"

#include <gtest/gtest.h>

using namespace coverme;

namespace {

/// Simple two-site program where every arm is easy to hit.
double easyBody(const double *Args) {
  double X = Args[0];
  if (CVM_LT(0, X, 0.0))
    X = -X;
  if (CVM_GT(1, X, 500000.0)) // ~half of the default [-1e6,1e6] domain
    return X - 500000.0;
  return X;
}

Program easyProgram() {
  Program P;
  P.Name = "easy";
  P.File = "easy.c";
  P.Arity = 1;
  P.NumSites = 2;
  P.TotalLines = 8;
  P.Body = easyBody;
  return P;
}

/// One arm requires an exact equality no conventional sampler will hit.
double needleBody(const double *Args) {
  if (CVM_EQ(0, Args[0], 1.2345678901234567e+42))
    return 1.0;
  return 0.0;
}

Program needleProgram() {
  Program P;
  P.Name = "needle";
  P.File = "needle.c";
  P.Arity = 1;
  P.NumSites = 1;
  P.TotalLines = 4;
  P.Body = needleBody;
  return P;
}

} // namespace

//===----------------------------------------------------------------------===//
// RandomTester
//===----------------------------------------------------------------------===//

TEST(RandomTesterTest, ExactExecutionCount) {
  Program P = easyProgram();
  RandomTester Rand(P);
  TesterResult Res = Rand.run(1234);
  EXPECT_EQ(Res.Executions, 1234u);
  EXPECT_EQ(Res.CorpusSize, 1234u);
}

TEST(RandomTesterTest, CoversEasyProgram) {
  Program P = easyProgram();
  RandomTester Rand(P);
  TesterResult Res = Rand.run(10000);
  EXPECT_DOUBLE_EQ(Res.BranchCoverage, 1.0);
}

TEST(RandomTesterTest, MissesTheNeedle) {
  Program P = needleProgram();
  RandomTester Rand(P);
  TesterResult Res = Rand.run(50000);
  EXPECT_DOUBLE_EQ(Res.BranchCoverage, 0.5); // only the false arm
}

TEST(RandomTesterTest, DeterministicUnderSeed) {
  RandomTesterOptions Opts;
  Opts.Seed = 17;
  Program P = easyProgram();
  TesterResult A = RandomTester(P, Opts).run(5000);
  TesterResult B = RandomTester(P, Opts).run(5000);
  EXPECT_EQ(A.Coverage.totalHits(), B.Coverage.totalHits());
  EXPECT_EQ(A.Coverage.coveredArms(), B.Coverage.coveredArms());
}

TEST(RandomTesterTest, RawBitsReachesSpecialArms) {
  // Raw-bit sampling covers inf/NaN-gated arms RangeUniform cannot.
  const Program *Tanh = fdlibm::lookup("tanh");
  ASSERT_NE(Tanh, nullptr);
  RandomTesterOptions Narrow;
  Narrow.Distribution = RandDistribution::RangeUniform;
  RandomTesterOptions Wide;
  Wide.Distribution = RandDistribution::RawBits;
  TesterResult NarrowRes = RandomTester(*Tanh, Narrow).run(30000);
  TesterResult WideRes = RandomTester(*Tanh, Wide).run(30000);
  EXPECT_GT(WideRes.BranchCoverage, NarrowRes.BranchCoverage);
}

//===----------------------------------------------------------------------===//
// AflFuzzer
//===----------------------------------------------------------------------===//

TEST(AflFuzzerTest, RespectsBudget) {
  Program P = easyProgram();
  AflFuzzer Afl(P);
  TesterResult Res = Afl.run(5000);
  EXPECT_LE(Res.Executions, 5000u);
  EXPECT_GT(Res.Executions, 4000u); // should use nearly all of it
}

TEST(AflFuzzerTest, CoversEasyProgram) {
  Program P = easyProgram();
  AflFuzzer Afl(P);
  TesterResult Res = Afl.run(20000);
  EXPECT_DOUBLE_EQ(Res.BranchCoverage, 1.0);
}

TEST(AflFuzzerTest, QueueGrowsBeyondSeeds) {
  const Program *Tanh = fdlibm::lookup("tanh");
  ASSERT_NE(Tanh, nullptr);
  AflFuzzer Afl(*Tanh);
  TesterResult Res = Afl.run(50000);
  EXPECT_GT(Res.CorpusSize, 4u); // found novel inputs beyond the 4 seeds
  EXPECT_GT(Res.BranchCoverage, 0.4);
}

TEST(AflFuzzerTest, DeterministicUnderSeed) {
  AflOptions Opts;
  Opts.Seed = 23;
  const Program *Tanh = fdlibm::lookup("tanh");
  TesterResult A = AflFuzzer(*Tanh, Opts).run(20000);
  TesterResult B = AflFuzzer(*Tanh, Opts).run(20000);
  EXPECT_EQ(A.CorpusSize, B.CorpusSize);
  EXPECT_EQ(A.Coverage.coveredArms(), B.Coverage.coveredArms());
}

TEST(AflFuzzerTest, RawModeOutperformsTextOnBitTwiddling) {
  // The appendix-B text harness is the published setup; raw byte mode sees
  // the IEEE representation directly and should do at least as well.
  const Program *Sqrt = fdlibm::lookup("ieee754_sqrt");
  ASSERT_NE(Sqrt, nullptr);
  AflOptions Text;
  Text.TextHarness = true;
  AflOptions Raw;
  Raw.TextHarness = false;
  TesterResult TextRes = AflFuzzer(*Sqrt, Text).run(60000);
  TesterResult RawRes = AflFuzzer(*Sqrt, Raw).run(60000);
  EXPECT_GE(RawRes.BranchCoverage + 1e-9, TextRes.BranchCoverage);
}

//===----------------------------------------------------------------------===//
// AustinTester
//===----------------------------------------------------------------------===//

TEST(AustinTesterTest, CoversEasyProgram) {
  Program P = easyProgram();
  AustinTester Austin(P);
  TesterResult Res = Austin.run(50000);
  EXPECT_DOUBLE_EQ(Res.BranchCoverage, 1.0);
}

TEST(AustinTesterTest, RespectsBudget) {
  Program P = needleProgram();
  AustinTester Austin(P);
  TesterResult Res = Austin.run(8000);
  EXPECT_LE(Res.Executions, 8100u);
}

TEST(AustinTesterTest, BranchDistanceModeBeatsCoarseOnEquality) {
  // With the distance oracle, AVM's pattern moves ride the gradient out to
  // x > 1e12; the coarse reached/taken fitness sees a flat landscape and
  // would need a lucky restart outside its [-1e6, 1e6] domain.
  Program P;
  P.Name = "far";
  P.File = "far.c";
  P.Arity = 1;
  P.NumSites = 1;
  P.TotalLines = 3;
  P.Body = +[](const double *Args) -> double {
    return CVM_GT(0, Args[0], 1e12) ? 1.0 : 0.0;
  };

  AustinOptions Coarse;
  Coarse.UseBranchDistance = false;
  Coarse.Seed = 3;
  AustinOptions Oracle;
  Oracle.UseBranchDistance = true;
  Oracle.Seed = 3;
  TesterResult CoarseRes = AustinTester(P, Coarse).run(60000);
  TesterResult OracleRes = AustinTester(P, Oracle).run(60000);
  EXPECT_DOUBLE_EQ(OracleRes.BranchCoverage, 1.0);
  EXPECT_GE(OracleRes.BranchCoverage, CoarseRes.BranchCoverage);
}

TEST(AustinTesterTest, DeterministicUnderSeed) {
  AustinOptions Opts;
  Opts.Seed = 31;
  const Program *Tanh = fdlibm::lookup("tanh");
  TesterResult A = AustinTester(*Tanh, Opts).run(20000);
  TesterResult B = AustinTester(*Tanh, Opts).run(20000);
  EXPECT_EQ(A.Executions, B.Executions);
  EXPECT_EQ(A.Coverage.coveredArms(), B.Coverage.coveredArms());
}
