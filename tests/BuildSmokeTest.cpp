//===- BuildSmokeTest.cpp - Standalone-header compile guard ----------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// tests/CMakeLists.txt globs every public header under src/ and generates
// one translation unit per header that includes it (twice) with nothing
// else in scope. Those TUs are compiled into this binary, so the real
// assertion is the build: a header that stops being self-contained, loses
// its include guard, or defines a non-inline symbol breaks this target.
// The runtime check below only confirms the glob actually found headers,
// guarding against the generator silently matching nothing.
//
//===----------------------------------------------------------------------===//

#include "gtest/gtest.h"

#ifndef COVERME_PUBLIC_HEADER_COUNT
#error "CMake must define COVERME_PUBLIC_HEADER_COUNT for BuildSmokeTest"
#endif

namespace {

TEST(BuildSmokeTest, HeaderGlobFoundPublicHeaders) {
  // The seed tree ships 40+ public headers across nine layers; a count
  // this low means the generator glob broke, not that headers vanished.
  EXPECT_GE(COVERME_PUBLIC_HEADER_COUNT, 30)
      << "tests/CMakeLists.txt matched suspiciously few public headers";
}

} // namespace
