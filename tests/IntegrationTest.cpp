//===- IntegrationTest.cpp - End-to-end campaigns over the Fdlibm suite ------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// Full CoverMe campaigns against the ported benchmarks with fixed seeds,
// asserting the paper's qualitative results: full coverage on the easy
// functions, the k_cos.c infeasible branch, the e_fmod.c subnormal gap,
// and dominance over random testing under an equal-seed protocol.
//
//===----------------------------------------------------------------------===//

#include "core/CoverMe.h"
#include "fdlibm/Fdlibm.h"
#include "fuzz/RandomTester.h"
#include "runtime/RepresentingFunction.h"

#include <gtest/gtest.h>

using namespace coverme;

namespace {

CampaignResult runCoverMe(const char *Name, unsigned NStart = 300,
                          uint64_t Seed = 1) {
  const Program *P = fdlibm::lookup(Name);
  EXPECT_NE(P, nullptr) << Name;
  CoverMeOptions Opts;
  Opts.NStart = NStart;
  Opts.Seed = Seed;
  CoverMe Engine(*P, Opts);
  return Engine.run();
}

} // namespace

TEST(IntegrationTest, TanhReachesFullCoverage) {
  // The paper's Fig. 1 flagship: 16 branches (12 in our per-arm counting
  // of its 6 conditionals), full coverage in under a second.
  CampaignResult Res = runCoverMe("tanh");
  EXPECT_DOUBLE_EQ(Res.BranchCoverage, 1.0);
  EXPECT_LT(Res.Seconds, 5.0);
}

TEST(IntegrationTest, KernelCosInfeasibleBranchIsDetected) {
  // Sect. D: one arm of k_cos.c is statically infeasible; 7/8 arms is the
  // optimum and the heuristic must mark the eighth.
  CampaignResult Res = runCoverMe("kernel_cos");
  EXPECT_DOUBLE_EQ(Res.BranchCoverage, 7.0 / 8.0);
  EXPECT_TRUE(Res.AllSaturated);
  ASSERT_GE(Res.InfeasibleMarked.size(), 1u);
  // The infeasible arm is site 1's false arm ((int)x != 0 under tiny |x|).
  bool MarkedIt = false;
  for (BranchRef Ref : Res.InfeasibleMarked)
    MarkedIt |= Ref == BranchRef{1, false};
  EXPECT_TRUE(MarkedIt);
}

TEST(IntegrationTest, FmodSubnormalBranchesStayDark) {
  // Sect. D: the wide sampler produces no subnormals, so e_fmod.c's
  // subnormal-gated loops stay uncovered and coverage lands mid-range.
  CampaignResult Res = runCoverMe("ieee754_fmod", 150);
  EXPECT_LT(Res.BranchCoverage, 0.85);
  EXPECT_GT(Res.BranchCoverage, 0.40);
  // The four subnormal ilogb loops (sites 9, 10, 13, 14) never fire.
  for (uint32_t Site : {9u, 10u, 13u, 14u}) {
    EXPECT_EQ(Res.Coverage.hits(Site, true), 0u) << "site " << Site;
    EXPECT_EQ(Res.Coverage.hits(Site, false), 0u) << "site " << Site;
  }
}

class SuiteCampaignTest
    : public ::testing::TestWithParam<const char *> {};

TEST_P(SuiteCampaignTest, ReachesPaperLevelCoverage) {
  // Functions where the paper achieves 100%; our campaign must get >= 90%
  // of arms with a deterministic seed.
  CampaignResult Res = runCoverMe(GetParam(), 400, 2);
  EXPECT_GE(Res.BranchCoverage, 0.90) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(FullCoverageFunctions, SuiteCampaignTest,
                         ::testing::Values("ieee754_acos", "erf", "erfc",
                                           "sin", "cos", "tan", "tanh",
                                           "modf"),
                         [](const auto &Info) {
                           std::string Name = Info.param;
                           for (char &C : Name)
                             if (C == '-' || C == '.')
                               C = '_';
                           return Name;
                         });

TEST(IntegrationTest, CoverMeDominatesRandEverywhere) {
  // Table 2's sanity check: CoverMe >= Rand on every single benchmark.
  for (const Program &P : fdlibm::registry().programs()) {
    CoverMeOptions Opts;
    Opts.NStart = 200;
    Opts.Seed = 1;
    CampaignResult Cm = CoverMe(P, Opts).run();
    RandomTesterOptions RandOpts;
    RandOpts.Seed = 1;
    TesterResult Rand =
        RandomTester(P, RandOpts).run(10 * std::max<uint64_t>(
                                               Cm.Evaluations, 1000));
    EXPECT_GE(Cm.BranchCoverage + 1e-9, Rand.BranchCoverage) << P.Name;
  }
}

TEST(IntegrationTest, SuiteMeanCoverageMatchesPaperShape) {
  double Sum = 0.0;
  double TotalSeconds = 0.0;
  for (const Program &P : fdlibm::registry().programs()) {
    CoverMeOptions Opts;
    Opts.NStart = 300;
    Opts.Seed = 1;
    CampaignResult Res = CoverMe(P, Opts).run();
    Sum += Res.BranchCoverage;
    TotalSeconds += Res.Seconds;
  }
  double Mean = 100.0 * Sum / 40.0;
  // Paper: 90.8% in 6.9 s/function. Accept the band around our substrate.
  EXPECT_GE(Mean, 82.0);
  EXPECT_LE(Mean, 100.0);
  EXPECT_LT(TotalSeconds, 120.0);
}

TEST(IntegrationTest, GeneratedInputsAreReplayableTests) {
  // The generated X for each program is a real test suite: replaying it
  // from a clean context reproduces the reported coverage exactly.
  for (const char *Name : {"tanh", "ieee754_log", "ieee754_pow"}) {
    const Program *P = fdlibm::lookup(Name);
    CoverMeOptions Opts;
    Opts.NStart = 200;
    Opts.Seed = 4;
    CampaignResult Res = CoverMe(*P, Opts).run();
    ExecutionContext Ctx(P->NumSites);
    Ctx.PenEnabled = false;
    CoverageMap Replay(P->NumSites);
    Ctx.Coverage = &Replay;
    RepresentingFunction FR(*P, Ctx);
    for (const auto &X : Res.Inputs)
      FR.execute(X);
    EXPECT_EQ(Replay.coveredArms(), Res.CoveredBranches) << Name;
  }
}
