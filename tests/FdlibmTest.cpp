//===- FdlibmTest.cpp - Tests for the Fdlibm benchmark ports -----------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// Two kinds of checks: registry/metadata integrity against the paper's
// Table 2, and functional correctness of the ports against libm (the ports
// reproduce the originals' control flow; values must be right wherever the
// kernels are exact and close wherever they are truncated).
//
//===----------------------------------------------------------------------===//

#include "fdlibm/Fdlibm.h"
#include "runtime/ExecutionContext.h"
#include "runtime/RepresentingFunction.h"
#include "support/FloatBits.h"
#include "support/Random.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace coverme;

namespace {

double call1(const char *Name, double X) {
  const Program *P = fdlibm::lookup(Name);
  EXPECT_NE(P, nullptr) << Name;
  double Args[1] = {X};
  return P->Body(Args);
}

double call2(const char *Name, double X, double Y) {
  const Program *P = fdlibm::lookup(Name);
  EXPECT_NE(P, nullptr) << Name;
  double Args[2] = {X, Y};
  return P->Body(Args);
}

} // namespace

//===----------------------------------------------------------------------===//
// Registry integrity
//===----------------------------------------------------------------------===//

TEST(FdlibmRegistryTest, HasAllFortyBenchmarks) {
  EXPECT_EQ(fdlibm::registry().size(), 40u);
  EXPECT_EQ(fdlibm::paperRows().size(), 40u);
}

TEST(FdlibmRegistryTest, NamesAreUniqueAndLookupWorks) {
  const ProgramRegistry &Reg = fdlibm::registry();
  for (const Program &P : Reg.programs()) {
    const Program *Found = fdlibm::lookup(P.Name);
    ASSERT_NE(Found, nullptr);
    EXPECT_EQ(Found, &P);
  }
  EXPECT_EQ(fdlibm::lookup("no_such_function"), nullptr);
}

TEST(FdlibmRegistryTest, BranchCountsMatchTable2) {
  const ProgramRegistry &Reg = fdlibm::registry();
  const auto &Paper = fdlibm::paperRows();
  for (size_t I = 0; I < Reg.programs().size(); ++I) {
    const Program &P = Reg.programs()[I];
    EXPECT_EQ(P.Name, Paper[I].Function);
    EXPECT_EQ(static_cast<int>(P.numBranches()), Paper[I].Branches)
        << P.Name;
  }
}

TEST(FdlibmRegistryTest, MetadataIsSane) {
  for (const Program &P : fdlibm::registry().programs()) {
    EXPECT_GE(P.Arity, 1u);
    EXPECT_LE(P.Arity, 2u);
    EXPECT_GT(P.NumSites, 0u);
    EXPECT_GT(P.TotalLines, 0u);
    EXPECT_NE(P.Body, nullptr);
    EXPECT_FALSE(P.File.empty());
  }
}

/// Every declared site must actually fire under a broad input sweep —
/// catches numbering gaps between the ports and their NumSites metadata.
TEST(FdlibmRegistryTest, AllSitesAreExercisedBySweep) {
  Rng R(77);
  for (const Program &P : fdlibm::registry().programs()) {
    ExecutionContext Ctx(P.NumSites);
    Ctx.PenEnabled = false;
    CoverageMap Map(P.NumSites);
    Ctx.Coverage = &Map;
    RepresentingFunction FR(P, Ctx);
    std::vector<double> X(P.Arity);
    for (int I = 0; I < 20000; ++I) {
      for (double &Coord : X)
        Coord = R.wideDouble();
      FR.execute(X);
    }
    unsigned SitesSeen = 0;
    for (uint32_t S = 0; S < P.NumSites; ++S)
      SitesSeen += Map.hits(S, true) + Map.hits(S, false) > 0;
    // Subnormal-gated interiors (fmod, ilogb, sqrt, hypot, cbrt, pow) stay
    // dark by design; everything else must light up.
    EXPECT_GE(SitesSeen, P.NumSites * 3 / 5) << P.Name;
  }
}

//===----------------------------------------------------------------------===//
// Functional spot checks against libm
//===----------------------------------------------------------------------===//

TEST(FdlibmValueTest, TanhSpecialValues) {
  EXPECT_EQ(call1("tanh", 0.0), 0.0);
  EXPECT_DOUBLE_EQ(call1("tanh", HUGE_VAL), 1.0);
  EXPECT_DOUBLE_EQ(call1("tanh", -HUGE_VAL), -1.0);
  EXPECT_TRUE(std::isnan(call1("tanh", std::nan(""))));
  EXPECT_NEAR(call1("tanh", 1.0), std::tanh(1.0), 1e-12);
  EXPECT_NEAR(call1("tanh", -0.3), std::tanh(-0.3), 1e-12);
  EXPECT_DOUBLE_EQ(call1("tanh", 30.0), 1.0 - 1e-300); // saturation arm
}

TEST(FdlibmValueTest, SqrtIsBitExact) {
  // The bit-by-bit algorithm must agree with hardware sqrt exactly.
  Rng R(5);
  for (int I = 0; I < 20000; ++I) {
    double X = std::fabs(R.exponentUniformDouble());
    double Ours = call1("ieee754_sqrt", X);
    double Ref = std::sqrt(X);
    EXPECT_EQ(doubleToBits(Ours), doubleToBits(Ref)) << "x=" << X;
  }
  EXPECT_EQ(call1("ieee754_sqrt", 0.0), 0.0);
  EXPECT_TRUE(std::isnan(call1("ieee754_sqrt", -1.0)));
  EXPECT_EQ(call1("ieee754_sqrt", HUGE_VAL), HUGE_VAL);
}

TEST(FdlibmValueTest, CeilFloorRintMatchLibm) {
  Rng R(7);
  for (int I = 0; I < 20000; ++I) {
    double X = R.chance(0.5) ? R.uniform(-1e6, 1e6)
                             : R.exponentUniformDouble();
    EXPECT_EQ(doubleToBits(call1("ceil", X)), doubleToBits(std::ceil(X)))
        << "ceil x=" << X;
    EXPECT_EQ(doubleToBits(call1("floor", X)), doubleToBits(std::floor(X)))
        << "floor x=" << X;
    EXPECT_EQ(doubleToBits(call1("rint", X)), doubleToBits(std::rint(X)))
        << "rint x=" << X;
  }
}

TEST(FdlibmValueTest, FmodMatchesLibm) {
  Rng R(9);
  for (int I = 0; I < 20000; ++I) {
    double X = R.exponentUniformDouble();
    double Y = R.exponentUniformDouble();
    double Ours = call2("ieee754_fmod", X, Y);
    double Ref = std::fmod(X, Y);
    EXPECT_EQ(doubleToBits(Ours), doubleToBits(Ref))
        << "x=" << X << " y=" << Y;
  }
  EXPECT_TRUE(std::isnan(call2("ieee754_fmod", 1.0, 0.0)));
  EXPECT_TRUE(std::isnan(call2("ieee754_fmod", HUGE_VAL, 2.0)));
}

TEST(FdlibmValueTest, NextafterMatchesLibm) {
  Rng R(11);
  for (int I = 0; I < 20000; ++I) {
    double X = R.exponentUniformDouble();
    double Y = R.exponentUniformDouble();
    EXPECT_EQ(doubleToBits(call2("nextafter", X, Y)),
              doubleToBits(std::nextafter(X, Y)))
        << "x=" << X << " y=" << Y;
  }
  EXPECT_EQ(call2("nextafter", 1.0, 1.0), 1.0);
}

TEST(FdlibmValueTest, IlogbLogbMatchLibm) {
  Rng R(13);
  for (int I = 0; I < 20000; ++I) {
    double X = R.exponentUniformDouble();
    EXPECT_EQ(call1("ilogb", X), std::ilogb(X)) << "x=" << X;
    EXPECT_EQ(call1("logb", X), std::logb(X)) << "x=" << X;
  }
  // Subnormal path of the ports' ilogb loops.
  EXPECT_EQ(call1("ilogb", 5e-324), std::ilogb(5e-324));
  EXPECT_EQ(call1("ilogb", 1e-310), std::ilogb(1e-310));
}

TEST(FdlibmValueTest, ModfSplitsCorrectly) {
  Rng R(15);
  for (int I = 0; I < 10000; ++I) {
    double X = R.uniform(-1e9, 1e9);
    double IPart;
    double RefFrac = std::modf(X, &IPart);
    EXPECT_DOUBLE_EQ(call2("modf", X, 0.0), RefFrac) << "x=" << X;
  }
}

TEST(FdlibmValueTest, TranscendentalsTrackLibmLoosely) {
  // The polynomial kernels are truncated; control flow is exact but values
  // carry ~1e-5 relative error. That is all the testing campaign needs.
  Rng R(17);
  for (int I = 0; I < 5000; ++I) {
    double X = R.uniform(0.01, 30.0);
    EXPECT_NEAR(call1("ieee754_exp", X), std::exp(X),
                std::exp(X) * 1e-2 + 1e-12);
    EXPECT_NEAR(call1("ieee754_log", X), std::log(X), 1e-2);
    EXPECT_NEAR(call1("ieee754_cosh", X), std::cosh(X),
                std::cosh(X) * 1e-2);
    EXPECT_NEAR(call1("ieee754_sinh", X), std::sinh(X),
                std::sinh(X) * 1e-2);
  }
  for (int I = 0; I < 5000; ++I) {
    double X = R.uniform(-0.99, 0.99);
    EXPECT_NEAR(call1("ieee754_atanh", X), std::atanh(X),
                std::fabs(std::atanh(X)) * 1e-2 + 1e-4);
    EXPECT_NEAR(call1("ieee754_acos", X), std::acos(X), 5e-2);
    EXPECT_NEAR(call1("ieee754_asin", X), std::asin(X), 5e-2);
  }
}

TEST(FdlibmValueTest, ExpLogSpecialValues) {
  EXPECT_EQ(call1("ieee754_exp", HUGE_VAL), HUGE_VAL);
  EXPECT_EQ(call1("ieee754_exp", -HUGE_VAL), 0.0);
  EXPECT_EQ(call1("ieee754_exp", 1000.0), HUGE_VAL);  // overflow
  EXPECT_EQ(call1("ieee754_exp", -1000.0), 0.0);      // underflow
  EXPECT_EQ(call1("ieee754_log", 0.0), -HUGE_VAL);
  EXPECT_TRUE(std::isnan(call1("ieee754_log", -1.0)));
  EXPECT_EQ(call1("ieee754_log", HUGE_VAL), HUGE_VAL);
  EXPECT_EQ(call1("ieee754_log10", 0.0), -HUGE_VAL);
  EXPECT_NEAR(call1("ieee754_log10", 1000.0), 3.0, 1e-9);
  EXPECT_NEAR(call1("expm1", 0.0), 0.0, 1e-300);
  EXPECT_EQ(call1("expm1", -HUGE_VAL), -1.0);
  EXPECT_NEAR(call1("log1p", 0.0), 0.0, 1e-300);
  EXPECT_TRUE(std::isnan(call1("log1p", -2.0)));
}

TEST(FdlibmValueTest, PowSpecialValueLattice) {
  // The C99/fdlibm special-value table pow reproduces.
  EXPECT_EQ(call2("ieee754_pow", 5.0, 0.0), 1.0);
  EXPECT_EQ(call2("ieee754_pow", 0.0, 3.0), 0.0);
  EXPECT_EQ(call2("ieee754_pow", 2.0, 1.0), 2.0);
  EXPECT_EQ(call2("ieee754_pow", 3.0, 2.0), 9.0);
  EXPECT_EQ(call2("ieee754_pow", 4.0, 0.5), 2.0);
  EXPECT_EQ(call2("ieee754_pow", 2.0, -1.0), 0.5);
  EXPECT_EQ(call2("ieee754_pow", -2.0, 2.0), 4.0);
  EXPECT_EQ(call2("ieee754_pow", -2.0, 3.0), -8.0);
  EXPECT_TRUE(std::isnan(call2("ieee754_pow", -2.0, 0.5)));
  EXPECT_EQ(call2("ieee754_pow", HUGE_VAL, 2.0), HUGE_VAL);
  EXPECT_EQ(call2("ieee754_pow", 2.0, HUGE_VAL), HUGE_VAL);
  EXPECT_EQ(call2("ieee754_pow", 0.5, HUGE_VAL), 0.0);
  EXPECT_EQ(call2("ieee754_pow", 2.0, -HUGE_VAL), 0.0);
  // Fdlibm 5.3 (pre-C99): (+-1)^inf is NaN.
  EXPECT_TRUE(std::isnan(call2("ieee754_pow", 1.0, HUGE_VAL)));
  EXPECT_EQ(call2("ieee754_pow", 2.0, 2048.0), HUGE_VAL); // overflow
  EXPECT_EQ(call2("ieee754_pow", 2.0, -2048.0), 0.0);     // underflow
}

TEST(FdlibmValueTest, PowTracksLibmOnNormalRange) {
  Rng R(19);
  for (int I = 0; I < 5000; ++I) {
    double X = R.uniform(0.1, 50.0);
    double Y = R.uniform(-8.0, 8.0);
    double Ref = std::pow(X, Y);
    EXPECT_NEAR(call2("ieee754_pow", X, Y), Ref,
                std::fabs(Ref) * 1e-2 + 1e-12)
        << "x=" << X << " y=" << Y;
  }
}

TEST(FdlibmValueTest, HypotRemainderScalbCbrt) {
  Rng R(21);
  for (int I = 0; I < 5000; ++I) {
    double X = R.uniform(-1e8, 1e8);
    double Y = R.uniform(-1e8, 1e8);
    double RefH = std::hypot(X, Y);
    EXPECT_NEAR(call2("ieee754_hypot", X, Y), RefH, RefH * 1e-9 + 1e-12);
    if (Y != 0.0) {
      double RefR = std::remainder(X, Y);
      EXPECT_NEAR(call2("ieee754_remainder", X, Y), RefR,
                  std::fabs(Y) * 1e-9 + 1e-12);
    }
    double RefC = std::cbrt(X);
    EXPECT_NEAR(call1("cbrt", X), RefC, std::fabs(RefC) * 1e-9 + 1e-12);
  }
  EXPECT_EQ(call2("ieee754_scalb", 3.0, 4.0), 48.0);
  EXPECT_TRUE(std::isnan(call2("ieee754_scalb", 3.0, 0.5)));
  EXPECT_EQ(call2("ieee754_scalb", 3.0, HUGE_VAL), HUGE_VAL);
}

TEST(FdlibmValueTest, TrigTracksLibm) {
  Rng R(23);
  for (int I = 0; I < 5000; ++I) {
    double X = R.uniform(-100.0, 100.0);
    EXPECT_NEAR(call1("sin", X), std::sin(X), 1e-9) << "x=" << X;
    EXPECT_NEAR(call1("cos", X), std::cos(X), 1e-9) << "x=" << X;
    EXPECT_NEAR(call1("tan", X), std::tan(X),
                (1.0 + std::fabs(std::tan(X))) * 1e-6)
        << "x=" << X;
  }
  EXPECT_TRUE(std::isnan(call1("sin", HUGE_VAL)));
  EXPECT_TRUE(std::isnan(call1("cos", HUGE_VAL)));
}

TEST(FdlibmValueTest, ErfTracksLibm) {
  Rng R(25);
  for (int I = 0; I < 5000; ++I) {
    double X = R.uniform(-0.8, 0.8); // exact-kernel region
    EXPECT_NEAR(call1("erf", X), std::erf(X), 2e-2) << "x=" << X;
  }
  EXPECT_DOUBLE_EQ(call1("erf", HUGE_VAL), 1.0);
  EXPECT_DOUBLE_EQ(call1("erf", -HUGE_VAL), -1.0);
  EXPECT_NEAR(call1("erfc", 0.0), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(call1("erfc", HUGE_VAL), 0.0);
  EXPECT_DOUBLE_EQ(call1("erfc", -HUGE_VAL), 2.0);
  EXPECT_EQ(call1("erfc", 100.0), 1e-300 * 1e-300); // underflow arm
}

TEST(FdlibmValueTest, BesselSpecialValues) {
  EXPECT_NEAR(call1("ieee754_j0", 0.0), 1.0, 1e-9);
  EXPECT_NEAR(call1("ieee754_j1", 0.0), 0.0, 1e-9);
  EXPECT_EQ(call1("ieee754_j0", HUGE_VAL), 0.0);
  EXPECT_EQ(call1("ieee754_y0", 0.0), -HUGE_VAL);
  EXPECT_TRUE(std::isnan(call1("ieee754_y0", -1.0)));
  EXPECT_EQ(call1("ieee754_y1", 0.0), -HUGE_VAL);
  EXPECT_TRUE(std::isnan(call1("ieee754_y1", -2.0)));
}

TEST(FdlibmValueTest, RemPio2ReducesSmallArguments) {
  // |x| <= pi/4 passes through: return y[0] + n with n = 0.
  EXPECT_DOUBLE_EQ(call2("ieee754_rem_pio2", 0.5, 0.0), 0.5);
  // pi/2 reduces to ~0 with n = 1.
  double R = call2("ieee754_rem_pio2", 1.57079632679489655800e+00, 0.0);
  EXPECT_NEAR(R, 1.0, 1e-9);
}

TEST(FdlibmValueTest, KernelCosMatchesCosOnReducedRange) {
  Rng R(27);
  for (int I = 0; I < 5000; ++I) {
    double X = R.uniform(-0.785, 0.785);
    EXPECT_NEAR(call2("kernel_cos", X, 0.0), std::cos(X), 1e-5) << X;
  }
}

TEST(FdlibmValueTest, PortsNeverCrashOnHostileInputs) {
  Rng R(29);
  for (const Program &P : fdlibm::registry().programs()) {
    std::vector<double> X(P.Arity);
    for (int I = 0; I < 3000; ++I) {
      for (double &Coord : X)
        Coord = R.rawBitsDouble(); // includes NaNs, infs, subnormals
      (void)P.Body(X.data());     // must not trap or hang
    }
  }
  SUCCEED();
}
