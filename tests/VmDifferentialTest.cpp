//===- VmDifferentialTest.cpp - Tree-walker vs bytecode VM equivalence ------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// The contract that licenses the compiled tier: for every program in the
// subset, the bytecode VM and the tree-walking interpreter must agree
// bit-for-bit — return values, the rt::cond branch trace (site ids,
// outcomes, order), and trap behavior (every trap surfaces as NaN on both
// tiers; neither may hang). The methodology follows the cross-checking
// appeal of differential backend validation (see PAPERS.md): a new
// execution backend is trusted only against the reference one on shared
// deterministic inputs — boundary values plus splitmix64-seeded random
// bit patterns, NaN/Inf included.
//
//===----------------------------------------------------------------------===//

#include "lang/Compiler.h"
#include "lang/Jit.h"
#include "lang/Sema.h"
#include "lang/SourceSuite.h"
#include "lang/Vm.h"
#include "runtime/ExecutionContext.h"
#include "runtime/RepresentingFunction.h"
#include "support/FloatBits.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

using namespace coverme;
using namespace coverme::lang;

namespace {

/// Everything observable about one execution of one tier.
struct TierRun {
  uint64_t ResultBits = 0;
  bool Trapped = false;
  std::vector<BranchRef> Trace;
};

TierRun runTreeWalker(Interpreter &Interp, const FunctionDecl &F,
                      const std::vector<double> &X) {
  TierRun Run;
  ExecutionContext Ctx(Interp.unit().NumSites);
  Ctx.TraceEnabled = true;
  ExecutionContext::Scope Scope(Ctx);
  Ctx.beginRun();
  Run.ResultBits = doubleToBits(Interp.callEntry(F, X.data()));
  Run.Trapped = Interp.trapped();
  Run.Trace = Ctx.Trace;
  return Run;
}

TierRun runVm(bc::Vm &Vm, unsigned FnIndex, const std::vector<double> &X) {
  TierRun Run;
  ExecutionContext Ctx(Vm.unit().NumSites);
  Ctx.TraceEnabled = true;
  ExecutionContext::Scope Scope(Ctx);
  Ctx.beginRun();
  Run.ResultBits = doubleToBits(Vm.callEntry(FnIndex, X.data()));
  Run.Trapped = Vm.trapped();
  Run.Trace = Ctx.Trace;
  return Run;
}

/// Deterministic input battery for an \p Arity-parameter entry: IEEE
/// boundary values in every slot plus splitmix64-seeded raw 64-bit
/// patterns (which reach NaNs, infinities, and subnormals by construction)
/// and exponent-uniform finite doubles.
std::vector<std::vector<double>> inputBattery(unsigned Arity, uint64_t Seed,
                                              unsigned RandomCount) {
  const double Inf = std::numeric_limits<double>::infinity();
  const std::vector<double> Boundary = {
      0.0,
      -0.0,
      5e-324, // min subnormal
      -5e-324,
      std::numeric_limits<double>::min(),
      -std::numeric_limits<double>::min(),
      std::numeric_limits<double>::max(),
      -std::numeric_limits<double>::max(),
      1.0,
      -1.0,
      2.0,
      -2.0,
      0.5,
      -0.5,
      0.75,
      22.0, // tanh saturation knee
      -22.0,
      1e-30,
      1e300,
      -1e300,
      3.725290298461914e-09, // 2^-28, the asinh/atanh tiny-x knee
      268435456.0,           // 2^28
      4503599627370496.0,    // 2^52, the rint/floor integrality knee
      Inf,
      -Inf,
      std::numeric_limits<double>::quiet_NaN(),
  };

  std::vector<std::vector<double>> Inputs;
  for (double B : Boundary) {
    std::vector<double> X(Arity, B);
    Inputs.push_back(X);
    if (Arity > 1) {
      // Mixed-slot variants so two-parameter subjects (nextafter's
      // direction argument, modf's output cell) see asymmetric pairs.
      std::vector<double> Y(Arity, 1.5);
      Y[0] = B;
      Inputs.push_back(Y);
      std::vector<double> Z(Arity, B);
      Z[Arity - 1] = -0.25;
      Inputs.push_back(Z);
    }
  }
  Rng R(Seed);
  for (unsigned I = 0; I < RandomCount; ++I) {
    std::vector<double> X(Arity);
    for (double &V : X)
      V = R.rawBitsDouble();
    Inputs.push_back(X);
    for (double &V : X)
      V = R.exponentUniformDouble();
    Inputs.push_back(std::move(X));
  }
  return Inputs;
}

/// Runs the full battery through both tiers of \p SP and asserts
/// bit-identical observables.
void expectTiersAgree(const SourceProgram &SP, uint64_t Seed,
                      unsigned RandomCount = 200) {
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  ASSERT_NE(SP.Code, nullptr) << "bytecode tier missing";
  ASSERT_TRUE(SP.Prog.ThreadSafeBody);

  bc::Vm Vm(SP.Code);
  int FnIndex = SP.Code->functionIndex(SP.Entry->Name);
  ASSERT_GE(FnIndex, 0);

  unsigned Arity = SP.Prog.Arity;
  for (const auto &X : inputBattery(Arity, Seed, RandomCount)) {
    TierRun A = runTreeWalker(*SP.Interp, *SP.Entry, X);
    TierRun B = runVm(Vm, static_cast<unsigned>(FnIndex), X);

    std::string At = SP.Entry->Name + "(";
    for (unsigned I = 0; I < Arity; ++I)
      At += (I ? ", " : "") + std::to_string(X[I]);
    At += ")";

    EXPECT_EQ(A.ResultBits, B.ResultBits) << At;
    EXPECT_EQ(A.Trapped, B.Trapped)
        << At << " interp: " << SP.Interp->trapMessage()
        << " vm: " << Vm.trapMessage();
    ASSERT_EQ(A.Trace.size(), B.Trace.size()) << At;
    for (size_t I = 0; I < A.Trace.size(); ++I) {
      EXPECT_EQ(A.Trace[I].Site, B.Trace[I].Site) << At << " @" << I;
      EXPECT_EQ(A.Trace[I].Outcome, B.Trace[I].Outcome) << At << " @" << I;
    }
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Every embedded Fdlibm 5.3 source, through both tiers
//===----------------------------------------------------------------------===//

class SuiteDifferentialTest
    : public ::testing::TestWithParam<SourceBenchmark> {};

TEST_P(SuiteDifferentialTest, TiersBitIdentical) {
  SourceProgram SP = compileSourceBenchmark(GetParam());
  expectTiersAgree(SP, /*Seed=*/0x5eed0000 + GetParam().PaperLines);
}

INSTANTIATE_TEST_SUITE_P(
    Fdlibm, SuiteDifferentialTest, ::testing::ValuesIn(sourceSuite()),
    [](const ::testing::TestParamInfo<SourceBenchmark> &Info) {
      return Info.param.Name;
    });

//===----------------------------------------------------------------------===//
// The four VM configurations: {switch, computed-goto} x {fused, unfused}
//===----------------------------------------------------------------------===//

namespace {

struct VmConfig {
  bool Fuse;
  VmDispatch Dispatch;
  const char *Name;
  bool Jit = false;
};

/// Every executor configuration this build can execute: {switch, cgoto,
/// jit} x {fused, unfused}. Builds with COVERME_VM_CGOTO=OFF still
/// differential-test fused vs unfused under switch dispatch; builds with
/// COVERME_JIT=OFF drop the jit axis the same way. The jit configurations
/// attach native fragments where the emitter accepted the function and
/// fall back to switch dispatch where it did not — the fall-back boundary
/// is inside the configuration, exactly as the Jit tier ships.
std::vector<VmConfig> vmConfigs() {
  std::vector<VmConfig> Configs = {
      {true, VmDispatch::Switch, "switch/fused"},
      {false, VmDispatch::Switch, "switch/unfused"},
  };
  if (bc::Vm::cgotoAvailable()) {
    Configs.push_back({true, VmDispatch::ComputedGoto, "cgoto/fused"});
    Configs.push_back({false, VmDispatch::ComputedGoto, "cgoto/unfused"});
  }
  if (bc::JitUnit::available()) {
    Configs.push_back({true, VmDispatch::Switch, "jit/fused", true});
    Configs.push_back({false, VmDispatch::Switch, "jit/unfused", true});
  }
  return Configs;
}

/// A Vm for one configuration over \p Unit, with the JIT form attached
/// when the configuration asks for it (built lazily, cached per unit by
/// the caller via \p JitForm).
std::unique_ptr<bc::Vm>
makeConfigVm(const VmConfig &C, const std::shared_ptr<const bc::CompiledUnit> &Unit,
             const InterpOptions &Opts,
             std::shared_ptr<const bc::JitUnit> &JitForm) {
  auto Vm = std::make_unique<bc::Vm>(Unit, Opts);
  if (C.Jit) {
    if (!JitForm)
      JitForm = bc::JitUnit::build(Unit);
    Vm->attachJit(JitForm);
  }
  return Vm;
}

/// Runs the battery through the tree-walker and every VM configuration,
/// asserting all five observably identical (results, traps, traces).
void expectConfigsAgree(const std::string &Source, const std::string &Entry,
                        uint64_t Seed, unsigned RandomCount) {
  SourceProgramOptions FusedOpts;
  SourceProgram Fused = compileSourceProgram(Source, Entry, FusedOpts);
  ASSERT_TRUE(Fused.success()) << Fused.diagnosticsText();
  SourceProgramOptions PlainOpts;
  PlainOpts.Fuse = false;
  SourceProgram Plain = compileSourceProgram(Source, Entry, PlainOpts);
  ASSERT_TRUE(Plain.success()) << Plain.diagnosticsText();

  std::vector<VmConfig> Configs = vmConfigs();
  std::vector<std::unique_ptr<bc::Vm>> Vms;
  std::shared_ptr<const bc::JitUnit> JitFused, JitPlain;
  for (const VmConfig &C : Configs) {
    InterpOptions Opts;
    Opts.Dispatch = C.Dispatch;
    Vms.push_back(makeConfigVm(C, C.Fuse ? Fused.Code : Plain.Code, Opts,
                               C.Fuse ? JitFused : JitPlain));
    if (C.Jit)
      ASSERT_NE(Vms.back()->jitUnit(), nullptr) << C.Name;
    else if (C.Dispatch == VmDispatch::ComputedGoto)
      ASSERT_STREQ(Vms.back()->dispatchName(), "cgoto");
    else
      ASSERT_STREQ(Vms.back()->dispatchName(), "switch");
  }
  int FnIndex = Fused.Code->functionIndex(Entry);
  ASSERT_GE(FnIndex, 0);
  ASSERT_EQ(Plain.Code->functionIndex(Entry), FnIndex);

  unsigned Arity = Fused.Prog.Arity;
  for (const auto &X : inputBattery(Arity, Seed, RandomCount)) {
    TierRun Ref = runTreeWalker(*Fused.Interp, *Fused.Entry, X);
    for (size_t C = 0; C < Configs.size(); ++C) {
      TierRun Got = runVm(*Vms[C], static_cast<unsigned>(FnIndex), X);
      std::string At = Entry + "(";
      for (unsigned I = 0; I < Arity; ++I)
        At += (I ? ", " : "") + std::to_string(X[I]);
      At += ") [" + std::string(Configs[C].Name) + "]";
      EXPECT_EQ(Ref.ResultBits, Got.ResultBits) << At;
      EXPECT_EQ(Ref.Trapped, Got.Trapped) << At;
      ASSERT_EQ(Ref.Trace.size(), Got.Trace.size()) << At;
      for (size_t I = 0; I < Ref.Trace.size(); ++I) {
        EXPECT_EQ(Ref.Trace[I].Site, Got.Trace[I].Site) << At << " @" << I;
        EXPECT_EQ(Ref.Trace[I].Outcome, Got.Trace[I].Outcome)
            << At << " @" << I;
      }
    }
  }
}

} // namespace

class SuiteFourConfigTest : public ::testing::TestWithParam<SourceBenchmark> {
};

TEST_P(SuiteFourConfigTest, DispatchAndFusionBitIdentical) {
  expectConfigsAgree(GetParam().Source, GetParam().Name,
                     /*Seed=*/0xf0c0 + GetParam().PaperLines,
                     /*RandomCount=*/60);
}

INSTANTIATE_TEST_SUITE_P(
    Fdlibm, SuiteFourConfigTest, ::testing::ValuesIn(sourceSuite()),
    [](const ::testing::TestParamInfo<SourceBenchmark> &Info) {
      return Info.param.Name;
    });

//===----------------------------------------------------------------------===//
// Synthetic programs covering subset corners Fdlibm does not reach
//===----------------------------------------------------------------------===//

namespace {

/// Compiles \p Source (default options: bytecode tier + reference
/// interpreter side by side) and runs the differential battery.
void expectSourceAgrees(const char *Source, const char *Entry,
                        uint64_t Seed) {
  SourceProgram SP = compileSourceProgram(Source, Entry);
  expectTiersAgree(SP, Seed, /*RandomCount=*/100);
}

} // namespace

TEST(VmDifferentialTest, LoopsBreakContinueCompoundAssign) {
  expectSourceAgrees(R"(
    double f(double x) {
      double acc = 0.0;
      int i;
      for (i = 0; i < 8; i++) {
        if (i == 5) continue;
        acc += x / (i + 1);
        acc *= 1.0000001;
        if (acc > 1.0e300) break;
      }
      do { acc -= 1.0; } while (acc > 100.0 && acc < 200.0);
      while (acc < -3.0 && acc > -200.0) { acc /= 2.0; }
      return acc;
    }
  )",
                     "f", 11);
}

TEST(VmDifferentialTest, TernaryCommaLogicalPostfix) {
  expectSourceAgrees(R"(
    double f(double x) {
      int i = 0, j = 3;
      double t;
      t = (x > 0.0) ? x : -x;
      t = (i++, j--, t + i + j);
      if (i < j && t > 1.0) t = t * 2.0;
      if (i > j || !(t < 4.0)) t = t + 0.5;
      t = t + (j >> 1) + (j << 2) + (j & 5) + (j | 2) + (j ^ 3);
      return (t >= 0.0) ? t : 0.0 - t;
    }
  )",
                     "f", 12);
}

TEST(VmDifferentialTest, ArraysPointersAndWordAccess) {
  expectSourceAgrees(R"(
    static const double T[4] = {1.0, 0.5, 0.25, 0.125};
    double f(double x) {
      double local[3] = {x, 2.0 * x};
      int hi, idx;
      double *p;
      hi = *(1 + (int *)&x);
      idx = (hi >> 29) & 3;
      p = &local[1];
      *p = *p + T[idx];
      ++local[2];
      local[0]--;
      return local[0] + local[1] + local[2] + T[3 - idx];
    }
  )",
                     "f", 13);
}

TEST(VmDifferentialTest, IntegerEdgesAndUnsignedArithmetic) {
  expectSourceAgrees(R"(
    double f(double x) {
      int i = -2147483647 - 1;
      unsigned u = 4294967295u;
      int k;
      k = (int)x;
      if (k == 0) k = 1;
      i = i / k;       /* INT_MIN / -1 must wrap, not trap UB */
      i = i % k;
      u = u + (unsigned)k;
      u = u * 3u;
      u = u >> 3;
      u = u / 7u;
      u = u % 11u;
      return (double)i + (double)u + (double)(-k) + (double)(~k);
    }
  )",
                     "f", 14);
}

TEST(VmDifferentialTest, NestedCallsShareOneSiteSpace) {
  // Callees' conditional sites live in the caller's unit-wide numbering
  // (Sect. 5.3 "Handling Function Calls"); the trace comparison pins the
  // compiled tier to the same ids in the same order.
  expectSourceAgrees(R"(
    double square(double y) {
      if (y < 0.0) y = -y;
      return y * y;
    }
    double f(double x) {
      double s = square(x - 1.0);
      if (s >= 4.0) return square(s) - s;
      return s + square(x + 1.0);
    }
  )",
                     "f", 15);
}

TEST(VmDifferentialTest, DivisionByZeroTrapsToNaNOnBothTiers) {
  const char *Source = R"(
    double f(double x) {
      int d;
      d = (int)x;
      return (double)(7 / d);
    }
  )";
  SourceProgram SP = compileSourceProgram(Source, "f");
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  bc::Vm Vm(SP.Code);
  std::vector<double> X = {0.25}; // (int)x == 0
  TierRun A = runTreeWalker(*SP.Interp, *SP.Entry, X);
  TierRun B = runVm(Vm, 0, X);
  EXPECT_TRUE(A.Trapped);
  EXPECT_TRUE(B.Trapped);
  EXPECT_TRUE(std::isnan(bitsToDouble(A.ResultBits)));
  EXPECT_TRUE(std::isnan(bitsToDouble(B.ResultBits)));
  EXPECT_EQ(SP.Interp->trapMessage(), Vm.trapMessage());
}

TEST(VmDifferentialTest, OutOfBoundsAccessTrapsToNaNOnBothTiers) {
  const char *Source = R"(
    double f(double x) {
      double a[2];
      int i;
      a[0] = x;
      a[1] = x + 1.0;
      i = 3000;
      return a[i];
    }
  )";
  SourceProgram SP = compileSourceProgram(Source, "f");
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  bc::Vm Vm(SP.Code);
  std::vector<double> X = {1.0};
  TierRun A = runTreeWalker(*SP.Interp, *SP.Entry, X);
  TierRun B = runVm(Vm, 0, X);
  EXPECT_TRUE(A.Trapped);
  EXPECT_TRUE(B.Trapped);
  EXPECT_TRUE(std::isnan(bitsToDouble(A.ResultBits)));
  EXPECT_TRUE(std::isnan(bitsToDouble(B.ResultBits)));
  EXPECT_EQ(SP.Interp->trapMessage(), Vm.trapMessage());
  EXPECT_EQ(Vm.trapMessage(), "out-of-bounds memory access");
}

//===----------------------------------------------------------------------===//
// Shared InterpOptions budget semantics (the MaxSteps regression)
//===----------------------------------------------------------------------===//

TEST(VmDifferentialTest, StepBudgetExhaustionYieldsNaNOnBothTiers) {
  // A loop no input can exit: with a small MaxSteps both tiers must trap
  // to NaN — the budget means "bounded work" on each tier, never a hang.
  const char *Source = R"(
    double f(double x) {
      double y = 0.0;
      while (y < 1.0e308) { y = y - 0.0; x = x + y; }
      return x;
    }
  )";
  ParseResult Parsed = parseTranslationUnit(Source);
  ASSERT_TRUE(Parsed.success());
  std::vector<Diagnostic> Diags;
  ASSERT_TRUE(analyze(*Parsed.TU, Diags));

  InterpOptions Tight;
  Tight.MaxSteps = 20000;

  Interpreter Interp(*Parsed.TU, Tight);
  std::vector<double> X = {1.0};
  double RInterp = Interp.callEntry(*Parsed.TU->findFunction("f"), X.data());
  EXPECT_TRUE(std::isnan(RInterp));
  EXPECT_TRUE(Interp.trapped());
  EXPECT_EQ(Interp.trapMessage(), "step budget exhausted");

  bc::CompileResult Compiled = bc::compileUnit(*Parsed.TU, Tight);
  ASSERT_TRUE(Compiled.success()) << Compiled.Error;
  bc::Vm Vm(Compiled.Unit, Tight);
  double RVm = Vm.callEntry("f", X.data());
  EXPECT_TRUE(std::isnan(RVm));
  EXPECT_TRUE(Vm.trapped());
  EXPECT_EQ(Vm.trapMessage(), "step budget exhausted");
}

TEST(VmDifferentialTest, BudgetedProgramRecoversOnNextCall) {
  // Trapping must not poison the Vm: the next call starts with a fresh
  // budget and fresh arenas, exactly like a fresh Evaluator.
  const char *Source = R"(
    double f(double x) {
      int i;
      for (i = 0; (double)i < x; i++) { }
      return (double)i;
    }
  )";
  ParseResult Parsed = parseTranslationUnit(Source);
  ASSERT_TRUE(Parsed.success());
  std::vector<Diagnostic> Diags;
  ASSERT_TRUE(analyze(*Parsed.TU, Diags));

  InterpOptions Tight;
  Tight.MaxSteps = 5000;
  bc::CompileResult Compiled = bc::compileUnit(*Parsed.TU, Tight);
  ASSERT_TRUE(Compiled.success()) << Compiled.Error;
  bc::Vm Vm(Compiled.Unit, Tight);

  double Huge[] = {1.0e18};
  EXPECT_TRUE(std::isnan(Vm.callEntry("f", Huge)));
  EXPECT_TRUE(Vm.trapped());

  double Small[] = {10.0};
  EXPECT_EQ(Vm.callEntry("f", Small), 10.0);
  EXPECT_FALSE(Vm.trapped());
}

TEST(VmDifferentialTest, ExhaustionPointsIdenticalAcrossConfigs) {
  // The block-granular accounting contract: for EVERY budget value, all
  // four VM configurations trap (or complete) with bit-identical results
  // and the same trace prefix — i.e. the exhaustion point, measured in
  // everything observable, is independent of dispatch mode and fusion.
  // The sweep crosses the whole interesting region: budget 0 up through
  // the first value that lets the run complete.
  const char *Source = R"(
    double f(double x) {
      double acc = 0.0;
      int i;
      for (i = 0; i < 40; i++) {
        if (acc < 1.0e300) acc = acc + x * (double)i;
        else acc = acc - x;
      }
      return acc;
    }
  )";
  ParseResult Parsed = parseTranslationUnit(Source);
  ASSERT_TRUE(Parsed.success());
  std::vector<Diagnostic> Diags;
  ASSERT_TRUE(analyze(*Parsed.TU, Diags));

  bc::CompileResult Fused = bc::compileUnit(*Parsed.TU, {}, /*Fuse=*/true);
  ASSERT_TRUE(Fused.success()) << Fused.Error;
  bc::CompileResult Plain = bc::compileUnit(*Parsed.TU, {}, /*Fuse=*/false);
  ASSERT_TRUE(Plain.success()) << Plain.Error;
  ASSERT_GT(Fused.Unit->Stats.Superinsns, 0u);

  std::vector<double> X = {1.5};
  std::vector<VmConfig> Configs = vmConfigs();
  std::shared_ptr<const bc::JitUnit> JitFused, JitPlain;
  bool SawPartialTrace = false;
  uint64_t FirstCompleting = 0;
  for (uint64_t Budget = 0;; ++Budget) {
    TierRun Ref;
    std::string RefMessage;
    bool RefSet = false;
    for (const VmConfig &C : Configs) {
      InterpOptions Opts;
      Opts.MaxSteps = Budget;
      Opts.Dispatch = C.Dispatch;
      std::unique_ptr<bc::Vm> VmPtr =
          makeConfigVm(C, C.Fuse ? Fused.Unit : Plain.Unit, Opts,
                       C.Fuse ? JitFused : JitPlain);
      bc::Vm &Vm = *VmPtr;
      TierRun Got = runVm(Vm, 0, X);
      if (!RefSet) {
        Ref = Got;
        RefMessage = Vm.trapMessage();
        RefSet = true;
        continue;
      }
      std::string At = "budget " + std::to_string(Budget) + " [" +
                       C.Name + "]";
      EXPECT_EQ(Ref.ResultBits, Got.ResultBits) << At;
      EXPECT_EQ(Ref.Trapped, Got.Trapped) << At;
      EXPECT_EQ(RefMessage, Vm.trapMessage()) << At;
      ASSERT_EQ(Ref.Trace.size(), Got.Trace.size()) << At;
      for (size_t I = 0; I < Ref.Trace.size(); ++I) {
        EXPECT_EQ(Ref.Trace[I].Site, Got.Trace[I].Site) << At << " @" << I;
        EXPECT_EQ(Ref.Trace[I].Outcome, Got.Trace[I].Outcome)
            << At << " @" << I;
      }
    }
    if (Ref.Trapped && !Ref.Trace.empty())
      SawPartialTrace = true; // exhausted mid-run with sites already fired
    if (!Ref.Trapped) {
      FirstCompleting = Budget;
      break;
    }
    ASSERT_LT(Budget, 4000u) << "sweep failed to reach completion";
  }
  // The sweep must have crossed genuinely partial executions, and the
  // minimal completing budget must match the unfused stream's total work.
  EXPECT_TRUE(SawPartialTrace);
  EXPECT_GT(FirstCompleting, 100u);
}

TEST(VmDifferentialTest, ExhaustionPointsIdenticalAcrossJitFallBack) {
  // The JIT fall-back boundary under the budget sweep: the entry calls a
  // helper, so the emitter rejects it (CanJit false — Op::Call) and a
  // jit-attached Vm runs it on the interpreter path, while the helper
  // itself compiles. For EVERY budget value, the jit-attached Vm must
  // trap (or complete) with bit-identical observables to the plain VM on
  // both entries — exhaustion points cross the fall-back boundary
  // unchanged.
  if (!bc::JitUnit::available())
    GTEST_SKIP() << "build has no JIT";
  const char *Source = R"(
    double helper(double y) {
      double acc = 0.0;
      int i;
      for (i = 0; i < 12; i++) {
        if (acc < 1.0e300) acc = acc + y;
      }
      return acc;
    }
    double f(double x) {
      double a = helper(x);
      double b = helper(x * 2.0);
      if (a < b) return b - a;
      return a - b;
    }
  )";
  ParseResult Parsed = parseTranslationUnit(Source);
  ASSERT_TRUE(Parsed.success());
  std::vector<Diagnostic> Diags;
  ASSERT_TRUE(analyze(*Parsed.TU, Diags));
  bc::CompileResult Compiled = bc::compileUnit(*Parsed.TU, {});
  ASSERT_TRUE(Compiled.success()) << Compiled.Error;

  std::shared_ptr<const bc::JitUnit> Jit = bc::JitUnit::build(Compiled.Unit);
  ASSERT_NE(Jit, nullptr);
  int HelperIdx = Compiled.Unit->functionIndex("helper");
  int EntryIdx = Compiled.Unit->functionIndex("f");
  ASSERT_GE(HelperIdx, 0);
  ASSERT_GE(EntryIdx, 0);
  EXPECT_TRUE(Jit->canJit(static_cast<unsigned>(HelperIdx)));
  EXPECT_FALSE(Jit->canJit(static_cast<unsigned>(EntryIdx)))
      << "Op::Call must clamp the entry off the JIT";

  std::vector<double> X = {1.5};
  for (int Fn : {EntryIdx, HelperIdx}) {
    bool Completed = false;
    for (uint64_t Budget = 0; Budget < 4000 && !Completed; ++Budget) {
      InterpOptions Opts;
      Opts.MaxSteps = Budget;
      bc::Vm Plain(Compiled.Unit, Opts);
      bc::Vm Jitted(Compiled.Unit, Opts);
      Jitted.attachJit(Jit);
      TierRun A = runVm(Plain, static_cast<unsigned>(Fn), X);
      TierRun B = runVm(Jitted, static_cast<unsigned>(Fn), X);
      std::string At = "fn " + std::to_string(Fn) + " budget " +
                       std::to_string(Budget);
      EXPECT_EQ(A.ResultBits, B.ResultBits) << At;
      EXPECT_EQ(A.Trapped, B.Trapped) << At;
      EXPECT_EQ(Plain.trapMessage(), Jitted.trapMessage()) << At;
      ASSERT_EQ(A.Trace.size(), B.Trace.size()) << At;
      for (size_t I = 0; I < A.Trace.size(); ++I) {
        EXPECT_EQ(A.Trace[I].Site, B.Trace[I].Site) << At << " @" << I;
        EXPECT_EQ(A.Trace[I].Outcome, B.Trace[I].Outcome) << At << " @" << I;
      }
      Completed = !A.Trapped;
    }
    EXPECT_TRUE(Completed) << "fn " << Fn
                           << ": sweep failed to reach completion";
  }
}

//===----------------------------------------------------------------------===//
// The batched probe entry (Vm::runBatch via Program::BoundBody)
//===----------------------------------------------------------------------===//

namespace {

/// Context flag shapes the batched-vs-scalar identity is checked under.
/// Plain is the minimizer configuration (the SIMD lane's fast hook route);
/// the recording shapes force the general record-and-replay route.
struct BatchCtxConfig {
  bool RecordOperands = false;
  bool RecordTraceOperands = false;
  const char *Name = "plain";
};

/// FOO_R probes over explicit rows, scalar vs batched, must agree
/// bit-for-bit — including rows that trap after firing hooks — and must
/// leave the context (r, trace, recorded operands) in the identical end
/// state.
void expectBatchMatchesScalarRows(const SourceProgram &SP,
                                  const std::vector<double> &Xs, size_t Count,
                                  const BatchCtxConfig &Cfg = {}) {
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  ASSERT_NE(SP.Prog.bind().InvokeBatch, nullptr)
      << "VM tier must expose the wide probe entry";
  unsigned N = SP.Prog.Arity;
  ASSERT_EQ(Xs.size(), Count * N);

  ExecutionContext Ctx(SP.Prog.NumSites);
  Ctx.RecordOperands = Cfg.RecordOperands;
  Ctx.RecordTraceOperands = Cfg.RecordTraceOperands;
  RepresentingFunction FR(SP.Prog, Ctx);

  std::vector<uint64_t> Ref(Count);
  {
    RepresentingFunction::BoundRun Run(FR);
    for (size_t I = 0; I < Count; ++I)
      Ref[I] = doubleToBits(Run.eval(Xs.data() + I * N, N));
  }
  // Snapshot the context's end state after the last scalar row: the
  // batched entry must reproduce it exactly (for trace and operands this
  // pins the wide lane's deferred materialization).
  const double RefR = Ctx.R;
  const std::vector<BranchRef> RefTrace = Ctx.Trace;
  const std::vector<SiteObservation> RefObs = Ctx.Observations;
  const std::vector<SiteObservation> RefTraceOps = Ctx.TraceOperands;

  std::vector<double> Got(Count, -1.0);
  {
    RepresentingFunction::BoundRun Run(FR);
    Run.evalBatch(Xs.data(), Count, N, Got.data());
  }
  for (size_t I = 0; I < Count; ++I)
    EXPECT_EQ(Ref[I], doubleToBits(Got[I]))
        << "row " << I << " [" << Cfg.Name << "]";

  EXPECT_EQ(doubleToBits(RefR), doubleToBits(Ctx.R)) << Cfg.Name;
  ASSERT_EQ(RefTrace.size(), Ctx.Trace.size()) << Cfg.Name;
  for (size_t I = 0; I < RefTrace.size(); ++I) {
    EXPECT_EQ(RefTrace[I].Site, Ctx.Trace[I].Site) << Cfg.Name << " @" << I;
    EXPECT_EQ(RefTrace[I].Outcome, Ctx.Trace[I].Outcome)
        << Cfg.Name << " @" << I;
  }
  ASSERT_EQ(RefObs.size(), Ctx.Observations.size()) << Cfg.Name;
  for (size_t I = 0; I < RefObs.size(); ++I) {
    EXPECT_EQ(RefObs[I].Executed, Ctx.Observations[I].Executed)
        << Cfg.Name << " @" << I;
    EXPECT_EQ(doubleToBits(RefObs[I].A), doubleToBits(Ctx.Observations[I].A))
        << Cfg.Name << " @" << I;
    EXPECT_EQ(doubleToBits(RefObs[I].B), doubleToBits(Ctx.Observations[I].B))
        << Cfg.Name << " @" << I;
  }
  ASSERT_EQ(RefTraceOps.size(), Ctx.TraceOperands.size()) << Cfg.Name;
  for (size_t I = 0; I < RefTraceOps.size(); ++I) {
    EXPECT_EQ(doubleToBits(RefTraceOps[I].A),
              doubleToBits(Ctx.TraceOperands[I].A))
        << Cfg.Name << " @" << I;
    EXPECT_EQ(doubleToBits(RefTraceOps[I].B),
              doubleToBits(Ctx.TraceOperands[I].B))
        << Cfg.Name << " @" << I;
  }

  // The unbound convenience entry takes the same wide path.
  std::vector<double> Got2(Count, -1.0);
  FR.evalBatch(Xs.data(), Count, N, Got2.data());
  for (size_t I = 0; I < Count; ++I)
    EXPECT_EQ(Ref[I], doubleToBits(Got2[I]))
        << "row " << I << " [" << Cfg.Name << "]";
}

/// The random-battery wrapper: \p Count rows of raw-bits and
/// exponent-uniform doubles, plus a few integer-trap-path rows.
void expectBatchMatchesScalar(const SourceProgram &SP, uint64_t Seed,
                              size_t Count = 300,
                              const BatchCtxConfig &Cfg = {}) {
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  unsigned N = SP.Prog.Arity;
  std::vector<double> Xs(Count * N);
  Rng R(Seed);
  for (size_t I = 0; I < Xs.size(); ++I)
    Xs[I] = (I % 3) ? R.rawBitsDouble() : R.exponentUniformDouble();
  // A few rows that hit integer-trap paths when the subject has them.
  for (size_t I = 0; I < 6 * N && I < Xs.size(); ++I)
    Xs[I] = 0.25;
  expectBatchMatchesScalarRows(SP, Xs, Count, Cfg);
}

} // namespace

TEST(VmDifferentialTest, BatchedProbesMatchScalarProbes) {
  const SourceBenchmark *Tanh = findSourceBenchmark("tanh");
  ASSERT_NE(Tanh, nullptr);
  expectBatchMatchesScalar(compileSourceBenchmark(*Tanh), 0xbeef1);

  // Two-parameter subject: row stride N = 2.
  const SourceBenchmark *Next = findSourceBenchmark("nextafter");
  ASSERT_NE(Next, nullptr);
  expectBatchMatchesScalar(compileSourceBenchmark(*Next), 0xbeef2);
}

TEST(VmDifferentialTest, BatchedProbesMatchScalarWhenRowsTrap) {
  // A site fires, then the row traps on integer division by zero: the
  // batched entry must surface the identical post-hook r per row.
  SourceProgram SP = compileSourceProgram(R"(
    double f(double x) {
      int d;
      d = (int)x;
      if (x < 8.0) x = x + 1.0;
      return (double)(7 / d) + x;
    }
  )",
                                          "f");
  expectBatchMatchesScalar(SP, 0xbeef3);
}

TEST(VmDifferentialTest, BatchedProbesMatchScalarAtRaggedCounts) {
  // Counts around and below the SIMD lane width: the wide loop handles
  // full groups only, so every remainder shape must retire to the scalar
  // row loop with identical bits and identical context end state.
  const SourceBenchmark *Tanh = findSourceBenchmark("tanh");
  ASSERT_NE(Tanh, nullptr);
  SourceProgram SP = compileSourceBenchmark(*Tanh);
  for (size_t Count : {1, 2, 3, 4, 5, 6, 7, 9, 13, 257})
    expectBatchMatchesScalar(SP, 0xbeef4 + Count, Count);
}

TEST(VmDifferentialTest, BatchedProbesMatchScalarWithTrapsAtEveryLane) {
  // All sixteen trap/no-trap patterns within a 4-row group: (int)x == 0
  // traps on integer division after the site fired, so each pattern
  // exercises a different per-lane retirement mask in the wide loop.
  SourceProgram SP = compileSourceProgram(R"(
    double f(double x) {
      int d;
      d = (int)x;
      if (x < 8.0) x = x + 1.0;
      return (double)(7 / d) + x;
    }
  )",
                                          "f");
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  constexpr size_t Groups = 16, Count = Groups * 4;
  std::vector<double> Xs(Count);
  for (size_t G = 0; G < Groups; ++G)
    for (size_t L = 0; L < 4; ++L)
      Xs[G * 4 + L] = (G >> L) & 1 ? 0.25 : 2.0 + static_cast<double>(L);
  expectBatchMatchesScalarRows(SP, Xs, Count);
}

TEST(VmDifferentialTest, BatchedProbesMatchScalarUnderBudgetExhaustion) {
  // Rows whose work is input-dependent under a tight step budget: some
  // rows complete, others exhaust mid-run (a uniform wide retire), and
  // the per-row results, traps, and final trap state must match the
  // scalar loop exactly.
  SourceProgramOptions Opts;
  Opts.Interp.MaxSteps = 600;
  SourceProgram SP = compileSourceProgram(R"(
    double f(double x) {
      double acc = 0.0;
      int i;
      for (i = 0; (double)i < x; i++) {
        if (acc < 1.0e300) acc = acc + x;
      }
      return acc;
    }
  )",
                                          "f", Opts);
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  constexpr size_t Count = 64;
  std::vector<double> Xs(Count);
  for (size_t I = 0; I < Count; ++I) {
    // Mix completing rows (small trip counts) with exhausting rows (huge
    // trip counts) at every lane position.
    Xs[I] = (I % 5 == 0 || (I / 4) % 3 == 2) ? 1.0e9
                                             : static_cast<double>(I % 7);
  }
  expectBatchMatchesScalarRows(SP, Xs, Count);
}

TEST(VmDifferentialTest, BatchedProbesMatchScalarAtThreeParamStride) {
  // Row stride N = 3: marshaling must pick each lane's row at the right
  // stride for every parameter, and mixed branch outcomes across the
  // three inputs drive per-lane divergence retirement.
  SourceProgram SP = compileSourceProgram(R"(
    double f(double a, double b, double c) {
      double r = 0.0;
      if (a < b) r = r + (b - a);
      else r = r + (a - b) * 0.5;
      if (c >= 0.0) r = r * (c + 1.0);
      if (r > 100.0) r = r - c;
      return r + a * b;
    }
  )",
                                          "f");
  expectBatchMatchesScalar(SP, 0xbeef5, 301);
}

TEST(VmDifferentialTest, BatchedProbesMatchScalarOnReplayHookConfigs) {
  // Context shapes outside the minimizer configuration (operand
  // recording on) force the wide lane's general record-and-replay hook
  // route; the identity must hold there too, including the recorded
  // per-site and per-trace-position operands of the last row.
  const SourceBenchmark *Tanh = findSourceBenchmark("tanh");
  ASSERT_NE(Tanh, nullptr);
  SourceProgram SP = compileSourceBenchmark(*Tanh);
  expectBatchMatchesScalar(SP, 0xbeef6, 300,
                           {/*RecordOperands=*/true,
                            /*RecordTraceOperands=*/false, "observations"});
  expectBatchMatchesScalar(SP, 0xbeef7, 300,
                           {/*RecordOperands=*/false,
                            /*RecordTraceOperands=*/true, "trace-operands"});
  expectBatchMatchesScalar(SP, 0xbeef8, 299,
                           {/*RecordOperands=*/true,
                            /*RecordTraceOperands=*/true, "both"});
}

TEST(VmDifferentialTest, WideLaneEngagesForEverySuiteSubject) {
  // On AVX2 hosts every suite subject must actually take the SIMD batch
  // backend — the wide-safety analysis has no reason to reject any of
  // them (they only read globals), and a silent scalar fall-back would
  // void the perf gate.
  if (!bc::Vm::simdAvailable())
    GTEST_SKIP() << "host has no AVX2 or COVERME_VM_SIMD is off";
  for (const SourceBenchmark &B : sourceSuite()) {
    SourceProgram SP = compileSourceBenchmark(B);
    ASSERT_TRUE(SP.success()) << B.Name;
    bc::Vm Vm(SP.Code);
    int FnIndex = SP.Code->functionIndex(B.Name);
    ASSERT_GE(FnIndex, 0) << B.Name;
    EXPECT_TRUE(Vm.wideBatchEligible(static_cast<unsigned>(FnIndex)))
        << B.Name;
    EXPECT_STREQ(Vm.batchBackendName(static_cast<unsigned>(FnIndex)),
                 "vm-wide")
        << B.Name;
  }
}

TEST(VmDifferentialTest, RunBatchWithoutContextMatchesCallEntry) {
  const SourceBenchmark *Tanh = findSourceBenchmark("tanh");
  ASSERT_NE(Tanh, nullptr);
  SourceProgram SP = compileSourceBenchmark(*Tanh);
  ASSERT_TRUE(SP.success());
  bc::Vm Vm(SP.Code);
  int FnIndex = SP.Code->functionIndex("tanh");
  ASSERT_GE(FnIndex, 0);

  constexpr size_t Count = 64;
  std::vector<double> Xs(Count);
  Rng R(7);
  for (double &V : Xs)
    V = R.exponentUniformDouble();
  std::vector<double> Out(Count);
  Vm.runBatch(static_cast<unsigned>(FnIndex), Xs.data(), Count, 1,
              Out.data());
  for (size_t I = 0; I < Count; ++I)
    EXPECT_EQ(doubleToBits(Out[I]),
              doubleToBits(Vm.callEntry(static_cast<unsigned>(FnIndex),
                                        &Xs[I])))
        << "row " << I;
}

//===----------------------------------------------------------------------===//
// Reentrancy: one CompiledUnit, many threads
//===----------------------------------------------------------------------===//

TEST(VmDifferentialTest, GlobalWritingProgramsAreNotMarkedReentrant) {
  // Each Vm holds a private copy of the global arena, so a program that
  // writes globals would diverge across campaign workers. The compiler
  // must flag it and SourceProgram must clear ThreadSafeBody so the
  // engine clamps to one thread.
  SourceProgram Direct = compileSourceProgram(
      "double g = 0.0;\n"
      "double f(double x) { g = g + x; return g; }\n",
      "f");
  ASSERT_TRUE(Direct.success()) << Direct.diagnosticsText();
  EXPECT_TRUE(Direct.Code->WritesGlobals);
  EXPECT_FALSE(Direct.Prog.ThreadSafeBody);

  // A write through an escaped global address must be caught too.
  SourceProgram ViaPointer = compileSourceProgram(
      "double g = 1.0;\n"
      "double f(double x) { double *p; p = &g; *p = x; return g; }\n",
      "f");
  ASSERT_TRUE(ViaPointer.success()) << ViaPointer.diagnosticsText();
  EXPECT_FALSE(ViaPointer.Prog.ThreadSafeBody);

  // Indexed stores into a global table as well.
  SourceProgram ViaIndex = compileSourceProgram(
      "double t[2] = {0.0, 0.0};\n"
      "double f(double x) { t[0] = x; return t[0] + t[1]; }\n",
      "f");
  ASSERT_TRUE(ViaIndex.success()) << ViaIndex.diagnosticsText();
  EXPECT_FALSE(ViaIndex.Prog.ThreadSafeBody);

  // Read-only global use — every suite subject — must stay reentrant.
  for (const SourceBenchmark &B : sourceSuite()) {
    SourceProgram SP = compileSourceBenchmark(B);
    ASSERT_TRUE(SP.success()) << B.Name;
    EXPECT_FALSE(SP.Code->WritesGlobals) << B.Name;
    EXPECT_TRUE(SP.Prog.ThreadSafeBody) << B.Name;
  }
}

TEST(VmDifferentialTest, SharedCodeRunsRaceFreeAcrossThreads) {
  // Four threads hammer the same Program body (thread-local Vms over one
  // CompiledUnit) and must reproduce the single-thread reference bits.
  // CoreTest's campaign-level invariance builds on this; under TSan this
  // is the direct data-race probe for the shared-code design.
  const SourceBenchmark *B = findSourceBenchmark("tanh");
  ASSERT_NE(B, nullptr);
  SourceProgram SP = compileSourceBenchmark(*B);
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();

  constexpr unsigned N = 2000;
  std::vector<double> Points(N);
  Rng R(99);
  for (double &P : Points)
    P = R.exponentUniformDouble();

  std::vector<uint64_t> Reference(N);
  for (unsigned I = 0; I < N; ++I)
    Reference[I] = doubleToBits(SP.Prog.Body(&Points[I]));

  constexpr unsigned Threads = 4;
  std::vector<std::vector<uint64_t>> Got(Threads,
                                         std::vector<uint64_t>(N));
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T < Threads; ++T)
    Pool.emplace_back([&, T] {
      ExecutionContext Ctx(SP.Prog.NumSites);
      ExecutionContext::Scope Scope(Ctx);
      for (unsigned I = 0; I < N; ++I) {
        Ctx.beginRun();
        Got[T][I] = doubleToBits(SP.Prog.Body(&Points[I]));
      }
    });
  for (auto &Th : Pool)
    Th.join();

  for (unsigned T = 0; T < Threads; ++T)
    EXPECT_EQ(Got[T], Reference) << "thread " << T;
}
