//===- DisasmTest.cpp - Golden disassembly of the peephole pass output ----===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// Pins the exact bytecode the compiler + fusion pass produce for
// representative SourceSuite subjects. The superinstruction pass is a
// correctness-critical rewrite (traces, traps, and budgets must stay
// bit-identical), so its output is pinned verbatim: any change to the
// lowering, the fusion patterns, the constant pool layout, or the
// disassembler's rendering shows up here as a readable diff and must be
// reviewed deliberately rather than slip in silently. Structural
// properties (fusion shrinks streams, costs conserve step budgets,
// unfused streams contain no superinstructions) are asserted across the
// whole suite.
//
//===----------------------------------------------------------------------===//

#include "lang/Disasm.h"
#include "lang/SourceProgram.h"
#include "lang/SourceSuite.h"

#include <gtest/gtest.h>

using namespace coverme;
using namespace coverme::lang;

namespace {

SourceProgram compileSuite(const char *Name, bool Fuse) {
  const SourceBenchmark *B = findSourceBenchmark(Name);
  EXPECT_NE(B, nullptr) << Name;
  SourceProgramOptions Opts;
  Opts.Fuse = Fuse;
  SourceProgram SP = compileSourceProgram(B->Source, B->Name, Opts);
  EXPECT_TRUE(SP.success()) << SP.diagnosticsText();
  return SP;
}

/// Total step cost of a stream = what a full straight-line execution of
/// every instruction would charge; fused and unfused streams of one
/// program must conserve it (superinstructions carry their originals'
/// cost).
uint64_t totalCost(const bc::CompiledUnit &U) {
  uint64_t Sum = 0;
  for (const bc::Insn &In : U.Code)
    Sum += In.Cost;
  return Sum;
}

} // namespace

//===----------------------------------------------------------------------===//
// Golden listings: the paper's Fig. 1 subject and a small integer-heavy one
//===----------------------------------------------------------------------===//

TEST(DisasmGoldenTest, TanhFusedStream) {
  SourceProgram SP = compileSuite("tanh", /*Fuse=*/true);
  EXPECT_EQ(bc::disassemble(*SP.Code), R"disasm(unit: 98 insns, 1 functions, pool 8 slots (5 literal requests), 6 sites
fusion: on, 26 superinsns (124 -> 98 insns)
wide: 1 of 1 functions safe for the SIMD batch lane
jit: 1 of 1 functions scalar-fragment-able, 1 wide-fragment-able

tanh(1 params): frame 40 bytes, entry 0, thunk 89, wide-safe
  batch: scalar fragment ok, wide fragment ok
    0  ConstD      pool[0]=0
    1  StFD        f+8
    2  ConstD      pool[0]=0
    3  StFD        f+16
    4  ConstI      0
    5  StFI        f+24
    6  ConstI      0
    7  StFI        f+32
    8  ConstI      1
    9  AddrF       f+0
   10  Swap
   11  PtrAdd      +4 bytes/elem
   12  LoadI
   13  StFI        f+24
   14  LdFI        f+24
   15  ConstI      2147483647
   16  And32
   17  U2I
   18  StFI        f+32
   19  LdFI2D      f+32  ; cost 2
   20  ConstD      pool[4]=2146435072  ; cost 2
   21  CondSiteJf  site 0 >= -> 34  ; cost 2
   22  LdFI2D      f+24  ; cost 2
   23  ConstD      pool[0]=0  ; cost 2
   24  CondSiteJf  site 1 >= -> 30  ; cost 2
   25  LdGD        g+0
   26  LdFDivD     f+0  ; cost 2
   27  LdGAddD     g+0  ; cost 2
   28  Ret
   29  Jump        -> 34
   30  LdGD        g+0
   31  LdFDivD     f+0  ; cost 2
   32  LdGSubD     g+0  ; cost 2
   33  Ret
   34  LdFI2D      f+32  ; cost 2
   35  ConstD      pool[5]=1077280768  ; cost 2
   36  CondSiteJf  site 2 < -> 76  ; cost 2
   37  LdFI2D      f+32  ; cost 2
   38  ConstD      pool[6]=1015021568  ; cost 2
   39  CondSiteJf  site 3 < -> 45  ; cost 2
   40  LdFD        f+0
   41  LdGD        g+0
   42  LdFAddD     f+0  ; cost 2
   43  MulD
   44  Ret
   45  LdFI2D      f+32  ; cost 2
   46  ConstD      pool[7]=1072693248  ; cost 2
   47  CondSiteJf  site 4 >= -> 62  ; cost 2
   48  LdGD        g+8
   49  LdFD        f+0
   50  CallB       fabs/1
   51  MulD
   52  CallB       expm1/1
   53  StFD        f+8
   54  LdGD        g+0
   55  LdGD        g+8
   56  LdFD        f+8
   57  LdGAddD     g+8  ; cost 2
   58  DivD
   59  SubD
   60  StFD        f+16
   61  Jump        -> 75
   62  LdGD        g+8
   63  NegD
   64  LdFD        f+0
   65  CallB       fabs/1
   66  MulD
   67  CallB       expm1/1
   68  StFD        f+8
   69  LdFD        f+8
   70  NegD
   71  LdFD        f+8
   72  LdGAddD     g+8  ; cost 2
   73  DivD
   74  StFD        f+16
   75  Jump        -> 79
   76  LdGD        g+0
   77  LdGSubD     g+16  ; cost 2
   78  StFD        f+16
   79  LdFI2D      f+24  ; cost 2
   80  ConstD      pool[0]=0  ; cost 2
   81  CondSiteJf  site 5 >= -> 85  ; cost 2
   82  LdFD        f+16
   83  Ret
   84  Jump        -> 88
   85  LdFD        f+16
   86  NegD
   87  Ret
   88  TrapOp      "pointer used as a number"
   89  Call        tanh
   90  Halt

global-init:
   91  ConstD      pool[1]=1
   92  StGD        g+0
   93  ConstD      pool[2]=2
   94  StGD        g+8
   95  ConstD      pool[3]=1e-300
   96  StGD        g+16
   97  Halt
)disasm");
}

TEST(DisasmGoldenTest, LogbFusedStream) {
  SourceProgram SP = compileSuite("logb", /*Fuse=*/true);
  EXPECT_EQ(bc::disassemble(*SP.Code), R"disasm(unit: 56 insns, 1 functions, pool 4 slots (2 literal requests), 3 sites
fusion: on, 8 superinsns (65 -> 56 insns)
wide: 1 of 1 functions safe for the SIMD batch lane
jit: 1 of 1 functions scalar-fragment-able, 1 wide-fragment-able

logb(1 params): frame 24 bytes, entry 0, thunk 53, wide-safe
  batch: scalar fragment ok, wide fragment ok
    0  ConstI      0
    1  StFI        f+8
    2  ConstI      0
    3  StFI        f+16
    4  ConstI      1
    5  AddrF       f+0
    6  Swap
    7  PtrAdd      +4 bytes/elem
    8  LoadI
    9  ConstI      2147483647
   10  And32
   11  U2I
   12  StFI        f+16
   13  AddrF       f+0
   14  LoadI
   15  StFI        f+8
   16  LdFI        f+16
   17  LdFI        f+8
   18  Or32
   19  U2I
   20  I2D
   21  ConstD      pool[2]=0  ; cost 2
   22  CondSiteJf  site 0 == -> 29  ; cost 2
   23  ConstD      pool[0]=1
   24  NegD
   25  LdFD        f+0
   26  CallB       fabs/1
   27  DivD
   28  Ret
   29  LdFI2D      f+16  ; cost 2
   30  ConstD      pool[3]=2146435072  ; cost 2
   31  CondSiteJf  site 1 >= -> 34  ; cost 2
   32  LdF2MulD    f+0, f+0  ; cost 3
   33  Ret
   34  ConstI      20
   35  I2U
   36  LdFI        f+16
   37  Swap
   38  ShrI
   39  StFI        f+16, keep
   40  I2D
   41  ConstD      pool[2]=0  ; cost 2
   42  CondSiteJf  site 2 == -> 47  ; cost 2
   43  ConstD      pool[1]=1022
   44  NegD
   45  Ret
   46  Jump        -> 52
   47  LdFI        f+16
   48  ConstI      1023
   49  SubI
   50  I2D
   51  Ret
   52  TrapOp      "pointer used as a number"
   53  Call        logb
   54  Halt

global-init:
   55  Halt
)disasm");
}

//===----------------------------------------------------------------------===//
// Structural properties across the whole suite
//===----------------------------------------------------------------------===//

TEST(DisasmTest, FusionShrinksStreamsAndConservesStepCost) {
  for (const SourceBenchmark &B : sourceSuite()) {
    SourceProgram Fused = compileSuite(B.Name.c_str(), /*Fuse=*/true);
    SourceProgram Plain = compileSuite(B.Name.c_str(), /*Fuse=*/false);
    const bc::OptStats &FS = Fused.Code->Stats;
    const bc::OptStats &PS = Plain.Code->Stats;

    EXPECT_TRUE(FS.FusionEnabled) << B.Name;
    EXPECT_FALSE(PS.FusionEnabled) << B.Name;
    EXPECT_EQ(PS.Superinsns, 0u) << B.Name;
    EXPECT_EQ(PS.InsnsBeforeFusion, PS.InsnsAfterFusion) << B.Name;
    EXPECT_EQ(FS.InsnsBeforeFusion, PS.InsnsBeforeFusion) << B.Name;
    EXPECT_EQ(FS.InsnsAfterFusion, Fused.Code->Code.size()) << B.Name;
    EXPECT_GT(FS.Superinsns, 0u) << B.Name; // every subject has sites
    EXPECT_LT(FS.InsnsAfterFusion, FS.InsnsBeforeFusion) << B.Name;

    // Budget conservation: ConstI;I2D folds may grow the pool but never
    // change the summed step cost of the stream.
    EXPECT_EQ(totalCost(*Fused.Code), totalCost(*Plain.Code)) << B.Name;
  }
}

TEST(DisasmTest, UnfusedStreamsContainNoSuperinstructions) {
  for (const SourceBenchmark &B : sourceSuite()) {
    SourceProgram Plain = compileSuite(B.Name.c_str(), /*Fuse=*/false);
    for (const bc::Insn &In : Plain.Code->Code) {
      EXPECT_EQ(In.Cost, 1u) << B.Name;
      EXPECT_LT(static_cast<uint8_t>(In.Code),
                static_cast<uint8_t>(bc::Op::LdF2AddD))
          << B.Name << ": unfused stream holds " << bc::opName(In.Code);
    }
  }
}

TEST(DisasmTest, EverySiteBranchFusesIntoCondSiteJump) {
  // genCondJump always emits CondSite directly followed by its branch, so
  // with fusion on no bare CondSite (or site-less CmpD+branch pair at a
  // site) should survive in suite subjects.
  for (const SourceBenchmark &B : sourceSuite()) {
    SourceProgram Fused = compileSuite(B.Name.c_str(), /*Fuse=*/true);
    unsigned SiteJumps = 0;
    for (const bc::Insn &In : Fused.Code->Code) {
      EXPECT_NE(In.Code, bc::Op::CondSite)
          << B.Name << ": unfused CondSite survived";
      if (In.Code == bc::Op::CondSiteJf || In.Code == bc::Op::CondSiteJt)
        ++SiteJumps;
    }
    EXPECT_GT(SiteJumps, 0u) << B.Name;
  }
}

TEST(DisasmTest, BlockCostsCoverEveryInstruction) {
  // BlockCost[PC] spans PC through its block terminator; spot-check the
  // invariants the VM's charging relies on: defined everywhere, >= the
  // instruction's own cost, and exactly the instruction cost on
  // terminators.
  for (bool Fuse : {true, false}) {
    SourceProgram SP = compileSuite("tanh", Fuse);
    const bc::CompiledUnit &U = *SP.Code;
    ASSERT_EQ(U.BlockCost.size(), U.Code.size());
    for (size_t PC = 0; PC < U.Code.size(); ++PC) {
      EXPECT_GE(U.BlockCost[PC], U.Code[PC].Cost) << PC;
      if (bc::isBlockTerminator(U.Code[PC].Code))
        EXPECT_EQ(U.BlockCost[PC], U.Code[PC].Cost) << PC;
      else
        EXPECT_EQ(U.BlockCost[PC], U.Code[PC].Cost + U.BlockCost[PC + 1])
            << PC;
    }
  }
}
