//===- ExtensionTest.cpp - Tests for the beyond-the-paper features -----------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// Covers the extension surface: interchangeable global backends (the
// Sect. 2 black-box claim), greedy test-suite reduction, and the extended
// Fdlibm suite of int-parameter functions (Sect. 8 future work).
//
//===----------------------------------------------------------------------===//

#include "core/CoverMe.h"
#include "fdlibm/Fdlibm.h"
#include "runtime/Hooks.h"
#include "runtime/RepresentingFunction.h"
#include "support/FloatBits.h"
#include "support/Random.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace coverme;

namespace {

double fooBody(const double *Args) {
  double X = Args[0];
  if (CVM_LE(0, X, 1.0))
    X = X + 1.0;
  if (CVM_EQ(1, X * X, 4.0))
    return 1.0;
  return 0.0;
}

Program fooProgram() {
  Program P;
  P.Name = "FOO";
  P.File = "fig3.c";
  P.Arity = 1;
  P.NumSites = 2;
  P.TotalLines = 6;
  P.Body = fooBody;
  return P;
}

/// Inequality-only variant: every arm is an open region, so even backends
/// without a local minimizer (simulated annealing) can saturate it. The
/// equality-gated FOO needs local convergence and is exercised separately.
double fooIneqBody(const double *Args) {
  double X = Args[0];
  if (CVM_LE(0, X, 1.0))
    X = X + 1.0;
  if (CVM_GT(1, X * X, 4.0))
    return 1.0;
  return 0.0;
}

Program fooIneqProgram() {
  Program P = fooProgram();
  P.Name = "FOO_ineq";
  P.Body = fooIneqBody;
  return P;
}

/// Equality variant whose target 5.0625 is reachable only by converging
/// onto an exact dyadic root (2.25, or -3.25 through the X+1 path; both
/// squares are exact in double). FOO's own y == 4 has roots 1.0 and 2.0 —
/// 1.0 sits in the wide sampler's specials table, so a lucky starting
/// point could saturate that equality with no search at all. No value of
/// the specials table is a root here. (A non-dyadic target like 5.0 would
/// overshoot the other way: NO double squares to it exactly, making the
/// arm unreachable and the test vacuous.)
double fooEq5625Body(const double *Args) {
  double X = Args[0];
  if (CVM_LE(0, X, 1.0))
    X = X + 1.0;
  double Y = X * X;
  if (CVM_EQ(1, Y, 5.0625))
    return 1.0;
  return 0.0;
}

Program fooEq5625Program() {
  Program P = fooProgram();
  P.Name = "FOO_eq5625";
  P.Body = fooEq5625Body;
  return P;
}

} // namespace

//===----------------------------------------------------------------------===//
// Interchangeable global backends
//===----------------------------------------------------------------------===//

class BackendParamTest : public ::testing::TestWithParam<GlobalBackendKind> {
};

TEST_P(BackendParamTest, SaturatesInequalityFooWithAnyBlackBox) {
  Program P = fooIneqProgram();
  CoverMeOptions Opts;
  Opts.NStart = 120;
  Opts.Seed = 7;
  Opts.Backend = GetParam();
  CampaignResult Res = CoverMe(P, Opts).run();
  EXPECT_TRUE(Res.AllSaturated) << globalBackendKindName(GetParam());
  EXPECT_DOUBLE_EQ(Res.BranchCoverage, 1.0);
}

TEST(BackendTest, EqualityArmsNeedLocalMinimization) {
  // An equality-gated program separates the backends: Basinhopping's
  // Powell step converges onto the exact root, while annealing's random
  // walk almost surely never lands on it — the practical argument for
  // MCMC-over-local-minima the paper makes in Sect. 2. The y == 5.0625
  // variant keeps the premise true for every RNG stream (no specials-table
  // value is a root; see fooEq5625Program). MarkInfeasible is off so full
  // saturation is reachable only by actually covering the equality arm —
  // the heuristic must not be able to write it off and pass vacuously.
  Program P = fooEq5625Program();
  CoverMeOptions BH;
  BH.NStart = 120;
  BH.Seed = 7;
  BH.Backend = GlobalBackendKind::Basinhopping;
  BH.MarkInfeasible = false;
  CampaignResult BHRes = CoverMe(P, BH).run();
  EXPECT_TRUE(BHRes.AllSaturated);
  EXPECT_DOUBLE_EQ(BHRes.BranchCoverage, 1.0);
  CoverMeOptions SA = BH;
  SA.Backend = GlobalBackendKind::SimulatedAnnealing;
  SA.MarkInfeasible = false;
  CampaignResult SARes = CoverMe(P, SA).run();
  EXPECT_LT(SARes.BranchCoverage, 1.0);
}

TEST_P(BackendParamTest, ReachesHighCoverageOnTanh) {
  const Program *Tanh = fdlibm::lookup("tanh");
  CoverMeOptions Opts;
  Opts.NStart = 300;
  Opts.Seed = 1;
  Opts.Backend = GetParam();
  CampaignResult Res = CoverMe(*Tanh, Opts).run();
  EXPECT_GE(Res.BranchCoverage, 0.75) << globalBackendKindName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendParamTest,
                         ::testing::Values(GlobalBackendKind::Basinhopping,
                                           GlobalBackendKind::SimulatedAnnealing,
                                           GlobalBackendKind::RandomRestart),
                         [](const auto &Info) {
                           std::string Name =
                               globalBackendKindName(Info.param);
                           for (char &C : Name)
                             if (C == '-')
                               C = '_';
                           return Name;
                         });

TEST(BackendTest, NamesAreDistinct) {
  EXPECT_STRNE(globalBackendKindName(GlobalBackendKind::Basinhopping),
               globalBackendKindName(GlobalBackendKind::SimulatedAnnealing));
  EXPECT_STRNE(globalBackendKindName(GlobalBackendKind::SimulatedAnnealing),
               globalBackendKindName(GlobalBackendKind::RandomRestart));
}

//===----------------------------------------------------------------------===//
// Test-suite reduction
//===----------------------------------------------------------------------===//

TEST(ReduceSuiteTest, PreservesCoverage) {
  const Program *P = fdlibm::lookup("ieee754_log");
  CoverMeOptions Opts;
  Opts.NStart = 300;
  Opts.Seed = 5;
  CampaignResult Res = CoverMe(*P, Opts).run();
  std::vector<size_t> Kept = reduceSuite(*P, Res.Inputs);
  EXPECT_LE(Kept.size(), Res.Inputs.size());

  // Replaying only the kept inputs reproduces the exact arm set.
  ExecutionContext Ctx(P->NumSites);
  Ctx.PenEnabled = false;
  CoverageMap Replay(P->NumSites);
  Ctx.Coverage = &Replay;
  RepresentingFunction FR(*P, Ctx);
  for (size_t I : Kept)
    FR.execute(Res.Inputs[I]);
  EXPECT_EQ(Replay.coveredArms(), Res.CoveredBranches);
}

TEST(ReduceSuiteTest, DropsRedundantInputs) {
  Program P = fooProgram();
  // Three copies of the same input plus one distinct: two survive at most.
  std::vector<std::vector<double>> Inputs = {{0.5}, {0.5}, {0.5}, {10.0}};
  std::vector<size_t> Kept = reduceSuite(P, Inputs);
  EXPECT_EQ(Kept.size(), 2u);
}

TEST(ReduceSuiteTest, EmptySuite) {
  Program P = fooProgram();
  EXPECT_TRUE(reduceSuite(P, {}).empty());
}

TEST(ReduceSuiteTest, IndicesAreSortedAndUnique) {
  Program P = fooProgram();
  std::vector<std::vector<double>> Inputs = {{10.0}, {0.5}, {1.0}};
  std::vector<size_t> Kept = reduceSuite(P, Inputs);
  for (size_t I = 1; I < Kept.size(); ++I)
    EXPECT_LT(Kept[I - 1], Kept[I]);
}

//===----------------------------------------------------------------------===//
// Extended Fdlibm suite (lowered int parameters)
//===----------------------------------------------------------------------===//

TEST(ExtendedSuiteTest, RegistryShape) {
  const ProgramRegistry &Reg = fdlibm::extendedRegistry();
  EXPECT_EQ(Reg.size(), 6u);
  for (const Program &P : Reg.programs()) {
    EXPECT_NE(P.Body, nullptr);
    EXPECT_GT(P.NumSites, 0u);
  }
}

TEST(ExtendedSuiteTest, ScalbnMatchesLibm) {
  const Program *P = fdlibm::extendedRegistry().lookup("scalbn");
  ASSERT_NE(P, nullptr);
  Rng R(3);
  for (int I = 0; I < 20000; ++I) {
    double X = R.exponentUniformDouble();
    int N = static_cast<int>(R.below(4000)) - 2000;
    double Args[2] = {X, static_cast<double>(N)};
    EXPECT_EQ(doubleToBits(P->Body(Args)), doubleToBits(std::scalbn(X, N)))
        << "x=" << X << " n=" << N;
  }
}

TEST(ExtendedSuiteTest, LdexpMatchesLibm) {
  const Program *P = fdlibm::extendedRegistry().lookup("ldexp");
  ASSERT_NE(P, nullptr);
  Rng R(5);
  for (int I = 0; I < 10000; ++I) {
    double X = R.exponentUniformDouble();
    int N = static_cast<int>(R.below(600)) - 300;
    double Args[2] = {X, static_cast<double>(N)};
    EXPECT_EQ(doubleToBits(P->Body(Args)), doubleToBits(std::ldexp(X, N)))
        << "x=" << X << " n=" << N;
  }
}

TEST(ExtendedSuiteTest, KernelSinTracksSin) {
  const Program *P = fdlibm::extendedRegistry().lookup("kernel_sin");
  ASSERT_NE(P, nullptr);
  Rng R(7);
  for (int I = 0; I < 5000; ++I) {
    double X = R.uniform(-0.785, 0.785);
    double Args[2] = {X, 0.0};
    EXPECT_NEAR(P->Body(Args), std::sin(X), 1e-7) << X;
  }
}

TEST(ExtendedSuiteTest, KernelTanTracksTan) {
  const Program *P = fdlibm::extendedRegistry().lookup("kernel_tan");
  ASSERT_NE(P, nullptr);
  Rng R(9);
  for (int I = 0; I < 5000; ++I) {
    double X = R.uniform(-0.6, 0.6);
    double Args[2] = {X, 1.0};
    EXPECT_NEAR(P->Body(Args), std::tan(X), 5e-2) << X;
  }
}

TEST(ExtendedSuiteTest, CoverMeHandlesLoweredIntParameters) {
  // The headline extension claim: campaigns over int-parameter functions
  // reach high coverage through the same promotion machinery.
  for (const Program &P : fdlibm::extendedRegistry().programs()) {
    CoverMeOptions Opts;
    Opts.NStart = 300;
    Opts.Seed = 2;
    CampaignResult Res = CoverMe(P, Opts).run();
    EXPECT_GE(Res.BranchCoverage, 0.6) << P.Name;
  }
}

TEST(ExtendedSuiteTest, JnMatchesLibmOnModerateOrders) {
  const Program *P = fdlibm::extendedRegistry().lookup("ieee754_jn");
  ASSERT_NE(P, nullptr);
  Rng R(13);
  for (int I = 0; I < 3000; ++I) {
    int N = static_cast<int>(R.below(12));
    double X = R.uniform(0.1, 40.0);
    double Args[2] = {static_cast<double>(N), X};
    double Ref = ::jn(N, X);
    EXPECT_NEAR(P->Body(Args), Ref, std::fabs(Ref) * 1e-6 + 1e-9)
        << "n=" << N << " x=" << X;
  }
  // Special values.
  double A0[2] = {5.0, 0.0};
  EXPECT_EQ(P->Body(A0), 0.0);
  double A1[2] = {0.0, 2.5};
  EXPECT_DOUBLE_EQ(P->Body(A1), ::j0(2.5));
  double A2[2] = {1.0, 2.5};
  EXPECT_DOUBLE_EQ(P->Body(A2), ::j1(2.5));
}

TEST(ExtendedSuiteTest, PortsNeverCrashOnHostileInputs) {
  Rng R(11);
  for (const Program &P : fdlibm::extendedRegistry().programs()) {
    std::vector<double> X(P.Arity);
    for (int I = 0; I < 3000; ++I) {
      for (double &Coord : X)
        Coord = R.rawBitsDouble();
      (void)P.Body(X.data());
    }
  }
  SUCCEED();
}
