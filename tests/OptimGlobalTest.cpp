//===- OptimGlobalTest.cpp - Tests for CMA-ES and Differential Evolution --===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the population-based global backends (CMA-ES, DE) and their
/// integration into the CoverMe driver: Sect. 2's claim that Algorithm 1
/// treats the unconstrained-programming backend as a black box means any
/// of these minimizers must be able to drive a campaign.
///
//===----------------------------------------------------------------------===//

#include "optim/CmaEs.h"
#include "optim/DifferentialEvolution.h"

#include "core/CoverMe.h"
#include "fdlibm/Fdlibm.h"
#include "lang/SourceProgram.h"
#include "lang/SourceSuite.h"
#include "runtime/ExecutionContext.h"
#include "runtime/RepresentingFunction.h"
#include "support/FloatBits.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace coverme;

namespace {

/// The paper's Sect. 2 example: f(x1,x2) = (x1-3)^2 + (x2-5)^2.
double paperQuadratic(const double *X, size_t) {
  return (X[0] - 3.0) * (X[0] - 3.0) + (X[1] - 5.0) * (X[1] - 5.0);
}

/// The paper's Fig. 2(b) double-well representing function.
double figure2b(const double *X, size_t) {
  double V = X[0];
  if (V <= 1.0) {
    double T = (V + 1.0) * (V + 1.0) - 4.0;
    return T * T;
  }
  double T = V * V - 4.0;
  return T * T;
}

/// Rosenbrock's banana, the classic ill-conditioned valley.
double rosenbrock(const double *X, size_t) {
  double A = 1.0 - X[0];
  double B = X[1] - X[0] * X[0];
  return A * A + 100.0 * B * B;
}

//===----------------------------------------------------------------------===//
// CMA-ES
//===----------------------------------------------------------------------===//

class CmaEsSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CmaEsSeedTest, SolvesPaperQuadratic) {
  Rng R(GetParam());
  CmaEsOptions Opts;
  Opts.MaxGenerations = 200;
  CmaEsMinimizer CMA(Opts);
  MinimizeResult Res = CMA.minimize(paperQuadratic, {0.0, 0.0}, R);
  EXPECT_NEAR(Res.X[0], 3.0, 1e-4);
  EXPECT_NEAR(Res.X[1], 5.0, 1e-4);
  EXPECT_LT(Res.Fx, 1e-8);
}

TEST_P(CmaEsSeedTest, EscapesFig2bLocalBasin) {
  Rng R(GetParam());
  CmaEsOptions Opts;
  Opts.MaxGenerations = 300;
  Opts.InitialSigma = 3.0;
  CmaEsMinimizer CMA(Opts);
  MinimizeResult Res = CMA.minimize(figure2b, {8.0}, R);
  // Global minima are x in {-3, 1, 2} with f = 0.
  EXPECT_LT(Res.Fx, 1e-6) << "stuck at x = " << Res.X[0];
}

INSTANTIATE_TEST_SUITE_P(Seeds, CmaEsSeedTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

TEST(CmaEsTest, SolvesRosenbrock) {
  Rng R(42);
  CmaEsOptions Opts;
  Opts.MaxGenerations = 600;
  Opts.MaxEvaluations = 200000;
  CmaEsMinimizer CMA(Opts);
  MinimizeResult Res = CMA.minimize(rosenbrock, {-1.2, 1.0}, R);
  EXPECT_LT(Res.Fx, 1e-6);
  EXPECT_NEAR(Res.X[0], 1.0, 1e-2);
  EXPECT_NEAR(Res.X[1], 1.0, 1e-2);
}

TEST(CmaEsTest, FullRunBatchedSimdMatchesForcedScalarBitForBit) {
  // A complete CMA-ES minimization of a real FOO_R objective: generations
  // go through the objective's batch path, which on AVX2 hosts takes the
  // VM's wide SIMD lane. The same run against a program compiled with the
  // lane forced off must be bit-identical in every outcome field — the
  // minimizer's trajectory amplifies any single-probe divergence, so this
  // pins the whole batch entry end to end.
  const lang::SourceBenchmark *Tanh = lang::findSourceBenchmark("tanh");
  ASSERT_NE(Tanh, nullptr);
  lang::SourceProgram Wide = lang::compileSourceBenchmark(*Tanh);
  lang::SourceProgramOptions ScalarOpts;
  ScalarOpts.Interp.Simd = lang::VmSimd::Off;
  lang::SourceProgram Scalar =
      lang::compileSourceProgram(Tanh->Source, Tanh->Name, ScalarOpts);
  ASSERT_TRUE(Wide.success()) << Wide.diagnosticsText();
  ASSERT_TRUE(Scalar.success()) << Scalar.diagnosticsText();

  CmaEsOptions Opts;
  Opts.MaxGenerations = 40;
  CmaEsMinimizer CMA(Opts);
  for (uint64_t Seed : {1u, 2u, 3u}) {
    ExecutionContext CtxW(Wide.Prog.NumSites), CtxS(Scalar.Prog.NumSites);
    // Saturate one arm per site (as a mid-campaign table would) so pen
    // yields a non-trivial distance landscape instead of the all-zero
    // objective of a fresh table.
    for (uint32_t S = 0; S < Wide.Prog.NumSites; ++S) {
      CtxW.saturate({S, true});
      CtxS.saturate({S, true});
    }
    RepresentingFunction FW(Wide.Prog, CtxW), FS(Scalar.Prog, CtxS);
    Rng RngW(Seed), RngS(Seed);
    MinimizeResult ResW = CMA.minimize(FW, {6.0}, RngW);
    MinimizeResult ResS = CMA.minimize(FS, {6.0}, RngS);

    EXPECT_GT(ResW.NumEvals, 0u) << "seed " << Seed;
    EXPECT_EQ(ResW.NumEvals, ResS.NumEvals) << "seed " << Seed;
    EXPECT_EQ(ResW.Iterations, ResS.Iterations) << "seed " << Seed;
    EXPECT_EQ(ResW.Converged, ResS.Converged) << "seed " << Seed;
    EXPECT_EQ(doubleToBits(ResW.Fx), doubleToBits(ResS.Fx))
        << "seed " << Seed;
    ASSERT_EQ(ResW.X.size(), ResS.X.size()) << "seed " << Seed;
    for (size_t I = 0; I < ResW.X.size(); ++I)
      EXPECT_EQ(doubleToBits(ResW.X[I]), doubleToBits(ResS.X[I]))
          << "seed " << Seed << " x" << I;
  }
}

TEST(CmaEsTest, RespectsEvaluationBudget) {
  Rng R(7);
  CmaEsOptions Opts;
  Opts.MaxEvaluations = 500;
  Opts.MaxGenerations = 100000;
  CmaEsMinimizer CMA(Opts);
  MinimizeResult Res = CMA.minimize(paperQuadratic, {100.0, -100.0}, R);
  EXPECT_LE(Res.NumEvals, Opts.MaxEvaluations + 16); // one lambda of slack
}

TEST(CmaEsTest, CallbackStopsEarly) {
  Rng R(9);
  CmaEsOptions Opts;
  Opts.MaxGenerations = 1000;
  CmaEsMinimizer CMA(Opts);
  unsigned Calls = 0;
  MinimizeResult Res = CMA.minimize(
      paperQuadratic, {0.0, 0.0}, R,
      [&Calls](const std::vector<double> &, double) {
        return ++Calls >= 3;
      });
  EXPECT_TRUE(Res.StoppedByCallback);
  EXPECT_EQ(Calls, 3u);
}

TEST(CmaEsTest, SurvivesNonFiniteStart) {
  Rng R(11);
  CmaEsMinimizer CMA;
  std::vector<double> Start = {std::numeric_limits<double>::infinity(),
                               std::nan("")};
  MinimizeResult Res = CMA.minimize(paperQuadratic, Start, R);
  EXPECT_TRUE(std::isfinite(Res.Fx));
}

TEST(CmaEsTest, EmptyStartIsANoop) {
  Rng R(1);
  CmaEsMinimizer CMA;
  MinimizeResult Res = CMA.minimize(paperQuadratic, {}, R);
  EXPECT_TRUE(Res.X.empty());
  EXPECT_EQ(Res.NumEvals, 0u);
}

TEST(CmaEsTest, HigherDimensionStillConverges) {
  // 6-dimensional sphere: exercises the Jacobi eigensolver beyond arity 2.
  auto Sphere = [](const double *X, size_t N) {
    double S = 0.0;
    for (size_t I = 0; I < N; ++I) {
      double D = X[I] - static_cast<double>(I);
      S += D * D;
    }
    return S;
  };
  Rng R(3);
  CmaEsOptions Opts;
  Opts.MaxGenerations = 400;
  Opts.MaxEvaluations = 100000;
  CmaEsMinimizer CMA(Opts);
  MinimizeResult Res = CMA.minimize(Sphere, std::vector<double>(6, 10.0), R);
  EXPECT_LT(Res.Fx, 1e-6);
}

//===----------------------------------------------------------------------===//
// Differential Evolution
//===----------------------------------------------------------------------===//

class DeSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeSeedTest, SolvesPaperQuadratic) {
  Rng R(GetParam());
  DifferentialEvolutionOptions Opts;
  Opts.MaxGenerations = 300;
  DifferentialEvolutionMinimizer DE(Opts);
  MinimizeResult Res = DE.minimize(paperQuadratic, {0.0, 0.0}, R);
  EXPECT_LT(Res.Fx, 1e-8);
  EXPECT_NEAR(Res.X[0], 3.0, 1e-3);
  EXPECT_NEAR(Res.X[1], 5.0, 1e-3);
}

TEST_P(DeSeedTest, EscapesFig2bLocalBasin) {
  Rng R(GetParam());
  DifferentialEvolutionOptions Opts;
  Opts.MaxGenerations = 300;
  DifferentialEvolutionMinimizer DE(Opts);
  MinimizeResult Res = DE.minimize(figure2b, {8.0}, R);
  EXPECT_LT(Res.Fx, 1e-6) << "stuck at x = " << Res.X[0];
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeSeedTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

TEST(DifferentialEvolutionTest, RespectsEvaluationBudget) {
  Rng R(5);
  DifferentialEvolutionOptions Opts;
  Opts.MaxEvaluations = 600;
  Opts.MaxGenerations = 100000;
  DifferentialEvolutionMinimizer DE(Opts);
  MinimizeResult Res = DE.minimize(paperQuadratic, {50.0, 50.0}, R);
  EXPECT_LE(Res.NumEvals, Opts.MaxEvaluations + 32);
}

TEST(DifferentialEvolutionTest, CallbackStopsEarly) {
  Rng R(6);
  DifferentialEvolutionOptions Opts;
  Opts.MaxGenerations = 1000;
  DifferentialEvolutionMinimizer DE(Opts);
  unsigned Calls = 0;
  MinimizeResult Res = DE.minimize(
      paperQuadratic, {0.0, 0.0}, R,
      [&Calls](const std::vector<double> &, double) {
        return ++Calls >= 2;
      });
  EXPECT_TRUE(Res.StoppedByCallback);
}

TEST(DifferentialEvolutionTest, SelectionIsMonotone) {
  // The best member's objective never worsens across generations: track
  // via callback.
  Rng R(8);
  DifferentialEvolutionOptions Opts;
  Opts.MaxGenerations = 60;
  DifferentialEvolutionMinimizer DE(Opts);
  double LastBest = std::numeric_limits<double>::infinity();
  bool Monotone = true;
  DE.minimize(rosenbrock, {-1.2, 1.0}, R,
              [&](const std::vector<double> &, double Fx) {
                if (Fx > LastBest)
                  Monotone = false;
                LastBest = Fx;
                return false;
              });
  EXPECT_TRUE(Monotone);
}

TEST(DifferentialEvolutionTest, EmptyStartIsANoop) {
  Rng R(1);
  DifferentialEvolutionMinimizer DE;
  MinimizeResult Res = DE.minimize(paperQuadratic, {}, R);
  EXPECT_TRUE(Res.X.empty());
  EXPECT_EQ(Res.NumEvals, 0u);
}

//===----------------------------------------------------------------------===//
// Campaign integration: the black-box claim
//===----------------------------------------------------------------------===//

class BackendCampaignTest
    : public ::testing::TestWithParam<GlobalBackendKind> {};

TEST_P(BackendCampaignTest, DrivesTanhCampaign) {
  const Program *P = fdlibm::registry().lookup("tanh");
  ASSERT_NE(P, nullptr);
  CoverMeOptions Opts;
  Opts.Backend = GetParam();
  Opts.NStart = 150;
  Opts.Seed = 12;
  CampaignResult Res = CoverMe(*P, Opts).run();
  // Any reasonable global backend saturates most of tanh's 12 arms; the
  // paper's backend reaches 100%. Population methods are allowed a small
  // deficit on the hardest (tiny-|x|) arm.
  EXPECT_GE(Res.BranchCoverage, 0.75)
      << globalBackendKindName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendCampaignTest,
    ::testing::Values(GlobalBackendKind::Basinhopping,
                      GlobalBackendKind::SimulatedAnnealing,
                      GlobalBackendKind::RandomRestart,
                      GlobalBackendKind::CmaEs,
                      GlobalBackendKind::DifferentialEvolution),
    [](const ::testing::TestParamInfo<GlobalBackendKind> &Info) {
      std::string Name = globalBackendKindName(Info.param);
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

TEST(BackendNameTest, AllKindsHaveNames) {
  EXPECT_STREQ(globalBackendKindName(GlobalBackendKind::CmaEs), "cma-es");
  EXPECT_STREQ(
      globalBackendKindName(GlobalBackendKind::DifferentialEvolution),
      "differential-evolution");
}

} // namespace
