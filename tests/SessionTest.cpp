//===- SessionTest.cpp - Service-layer sessions, cache, jobs ---------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service layer's contracts: the compiled-unit cache deduplicates by
/// content hash (and only by content — any option that changes the
/// artifact changes the key), the async job queue runs campaigns that are
/// bit-identical to direct CoverMe::run calls, progress streams in commit
/// order, and checkpoint/resume through the session — in place or from
/// serialized bytes — splices onto the uninterrupted trajectory exactly.
///
//===----------------------------------------------------------------------===//

#include "core/Checkpoint.h"
#include "core/CoverMe.h"
#include "lang/SourceProgram.h"
#include "service/Json.h"
#include "service/Session.h"
#include "support/FloatBits.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace coverme;

namespace {

const char *ClassifierSource =
    "double classify(double x, double y) {\n"
    "  double s = 0.0;\n"
    "  if (x > 1000.0) s = s + 1.0;\n"
    "  if (y < -2.5) s = s + 2.0;\n"
    "  if (x * x + y * y < 0.25) s = s + 4.0;\n"
    "  if (x == y) s = s + 8.0;\n"
    "  if (x + y > 1.0e20) s = s + 16.0;\n"
    "  return s;\n"
    "}\n";

const char *PolySource = "double poly(double x) {\n"
                         "  if (x < 0.0) x = -x;\n"
                         "  if (x > 10.0) return x * x - 9.0;\n"
                         "  return x + 1.0;\n"
                         "}\n";

JobRequest classifierRequest(uint64_t Seed, unsigned NStart,
                             unsigned Threads) {
  JobRequest Req;
  Req.Source = ClassifierSource;
  Req.Entry = "classify";
  Req.Campaign.Seed = Seed;
  Req.Campaign.NStart = NStart;
  Req.Campaign.Threads = Threads;
  Req.Campaign.StopWhenAllSaturated = false;
  return Req;
}

void expectBitIdentical(const CampaignResult &A, const CampaignResult &B) {
  EXPECT_EQ(A.Evaluations, B.Evaluations);
  EXPECT_EQ(A.StartsUsed, B.StartsUsed);
  EXPECT_EQ(A.CoveredBranches, B.CoveredBranches);
  ASSERT_EQ(A.Inputs.size(), B.Inputs.size());
  for (size_t I = 0; I < A.Inputs.size(); ++I)
    for (size_t C = 0; C < A.Inputs[I].size(); ++C)
      EXPECT_EQ(doubleToBits(A.Inputs[I][C]), doubleToBits(B.Inputs[I][C]));
  ASSERT_EQ(A.Rounds.size(), B.Rounds.size());
  for (size_t I = 0; I < A.Rounds.size(); ++I) {
    EXPECT_EQ(doubleToBits(A.Rounds[I].MinimumValue),
              doubleToBits(B.Rounds[I].MinimumValue));
    EXPECT_EQ(A.Rounds[I].Accepted, B.Rounds[I].Accepted);
    EXPECT_EQ(A.Rounds[I].SaturatedArms, B.Rounds[I].SaturatedArms);
  }
}

//===----------------------------------------------------------------------===//
// Compiled-unit cache
//===----------------------------------------------------------------------===//

TEST(CompiledUnitCache, HitsShareOneUnitAndSkipCompilation) {
  CompiledUnitCache Cache;
  lang::SourceProgramOptions Opts;
  bool Hit = true;
  double Seconds = -1.0;
  auto First = Cache.get(ClassifierSource, "classify", Opts, &Hit, &Seconds);
  ASSERT_NE(First, nullptr);
  EXPECT_FALSE(Hit);
  EXPECT_GT(Seconds, 0.0);

  auto Second = Cache.get(ClassifierSource, "classify", Opts, &Hit, &Seconds);
  EXPECT_TRUE(Hit);
  EXPECT_EQ(Seconds, 0.0);
  EXPECT_EQ(Second.get(), First.get()) << "hits share the compiled unit";

  CompiledUnitCache::Stats St = Cache.stats();
  EXPECT_EQ(St.Hits, 1u);
  EXPECT_EQ(St.Misses, 1u);
  EXPECT_EQ(St.FailedCompiles, 0u);
  EXPECT_EQ(Cache.size(), 1u);
}

TEST(CompiledUnitCache, EveryOptionFieldIsPartOfTheKey) {
  // Two option sets differing in any artifact-affecting field must map to
  // distinct units; recompiling with the original options must still hit.
  lang::SourceProgramOptions Base;
  std::vector<lang::SourceProgramOptions> Variants;
  {
    lang::SourceProgramOptions O = Base;
    O.Tier = lang::ExecutionTier::Jit;
    Variants.push_back(O);
    O = Base;
    O.Fuse = false;
    Variants.push_back(O);
    O = Base;
    O.Interp.MaxSteps += 1;
    Variants.push_back(O);
    O = Base;
    O.TotalLines = 123;
    Variants.push_back(O);
    O = Base;
    O.Interp.Simd = lang::VmSimd::Off;
    Variants.push_back(O);
  }
  const uint64_t BaseHash =
      compiledUnitHash(ClassifierSource, "classify", Base);
  for (const auto &V : Variants)
    EXPECT_NE(compiledUnitHash(ClassifierSource, "classify", V), BaseHash);
  EXPECT_NE(compiledUnitHash(PolySource, "poly", Base), BaseHash);
  EXPECT_NE(compiledUnitHash(ClassifierSource, "poly", Base), BaseHash);
  EXPECT_EQ(compiledUnitHash(ClassifierSource, "classify", Base), BaseHash);

  CompiledUnitCache Cache;
  (void)Cache.get(ClassifierSource, "classify", Base);
  for (const auto &V : Variants) {
    bool Hit = true;
    (void)Cache.get(ClassifierSource, "classify", V, &Hit);
    EXPECT_FALSE(Hit);
  }
  EXPECT_EQ(Cache.size(), 1 + Variants.size());
}

TEST(CompiledUnitCache, FailedCompilesAreReportedAndNotCached) {
  CompiledUnitCache Cache;
  lang::SourceProgramOptions Opts;
  std::string Error;
  auto Unit = Cache.get("double broken(double x) { return y; }", "broken",
                        Opts, nullptr, nullptr, &Error);
  EXPECT_EQ(Unit, nullptr);
  EXPECT_FALSE(Error.empty());
  EXPECT_EQ(Cache.size(), 0u) << "failures must not be cached";
  EXPECT_EQ(Cache.stats().FailedCompiles, 1u);
}

//===----------------------------------------------------------------------===//
// Jobs
//===----------------------------------------------------------------------===//

TEST(SessionJobs, SubmitMatchesDirectRunBitForBit) {
  lang::SourceProgram SP =
      lang::compileSourceProgram(ClassifierSource, "classify");
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  JobRequest Req = classifierRequest(/*Seed=*/7, /*NStart=*/12,
                                     /*Threads=*/2);
  CampaignResult Direct = CoverMe(SP.Prog, Req.Campaign).run();

  Session S;
  uint64_t Id = S.submit(Req);
  ASSERT_NE(Id, 0u);
  ASSERT_TRUE(S.wait(Id));
  JobStatus St;
  ASSERT_TRUE(S.status(Id, St));
  EXPECT_EQ(St.State, JobState::Done);
  EXPECT_EQ(St.RoundsCommitted, 12u);
  CampaignResult Res;
  ASSERT_TRUE(S.result(Id, Res));
  expectBitIdentical(Res, Direct);
}

TEST(SessionJobs, ProgressStreamsInCommitOrderThroughBothChannels) {
  std::mutex Mutex;
  std::vector<unsigned> CallbackRounds;
  Session S;
  JobRequest Req = classifierRequest(/*Seed=*/5, /*NStart=*/9, /*Threads=*/2);
  uint64_t Id = S.submit(Req, [&](uint64_t JobId, const RoundLog &Log) {
    std::lock_guard<std::mutex> Lock(Mutex);
    EXPECT_NE(JobId, 0u);
    CallbackRounds.push_back(Log.Round);
  });
  ASSERT_TRUE(S.wait(Id));

  std::lock_guard<std::mutex> Lock(Mutex);
  ASSERT_EQ(CallbackRounds.size(), 9u);
  for (size_t I = 0; I < CallbackRounds.size(); ++I)
    EXPECT_EQ(CallbackRounds[I], I + 1) << "callback order";

  std::vector<RoundLog> Polled = S.progress(Id, 0);
  ASSERT_EQ(Polled.size(), 9u);
  for (size_t I = 0; I < Polled.size(); ++I)
    EXPECT_EQ(Polled[I].Round, I + 1) << "poll order";
  EXPECT_EQ(S.progress(Id, 6).size(), 3u) << "from-offset slice";
  EXPECT_TRUE(S.progress(Id, 9).empty());
}

TEST(SessionJobs, RepeatSubmissionHitsTheCache) {
  Session S;
  uint64_t First = S.submit(classifierRequest(7, 4, 1));
  ASSERT_TRUE(S.wait(First));
  uint64_t Second = S.submit(classifierRequest(11, 4, 1));
  ASSERT_TRUE(S.wait(Second));

  JobStatus St1, St2;
  ASSERT_TRUE(S.status(First, St1));
  ASSERT_TRUE(S.status(Second, St2));
  EXPECT_FALSE(St1.CacheHit);
  EXPECT_GT(St1.CompileSeconds, 0.0);
  EXPECT_TRUE(St2.CacheHit) << "identical unit, different campaign";
  EXPECT_EQ(St2.CompileSeconds, 0.0);
  EXPECT_EQ(St1.UnitHash, St2.UnitHash);
  EXPECT_EQ(S.cacheStats().Hits, 1u);
  EXPECT_EQ(S.cacheStats().Misses, 1u);
}

TEST(SessionJobs, CompileErrorsFailTheJobWithDiagnostics) {
  Session S;
  JobRequest Req;
  Req.Source = "double broken(double x) { return nope; }";
  Req.Entry = "broken";
  uint64_t Id = S.submit(Req);
  ASSERT_TRUE(S.wait(Id));
  JobStatus St;
  ASSERT_TRUE(S.status(Id, St));
  EXPECT_EQ(St.State, JobState::Failed);
  EXPECT_FALSE(St.Error.empty());
  CampaignResult Res;
  EXPECT_FALSE(S.result(Id, Res));
}

TEST(SessionJobs, ConcurrentSubmissionsAllLandDeterministically) {
  // Four workers, eight campaigns over two subjects: every job finishes,
  // same-seed same-subject jobs agree bit-for-bit, and the cache converges
  // to one unit per subject. Workers racing on the same cold unit may each
  // compile it (get() compiles outside the lock; the first insert wins),
  // so the miss count is >= the subject count, not equal to it.
  Session S(SessionOptions{/*Workers=*/4});
  std::vector<uint64_t> ClassifyJobs, PolyJobs;
  for (int I = 0; I < 4; ++I) {
    ClassifyJobs.push_back(S.submit(classifierRequest(7, 6, 2)));
    JobRequest Poly;
    Poly.Source = PolySource;
    Poly.Entry = "poly";
    Poly.Campaign.Seed = 3;
    Poly.Campaign.NStart = 6;
    Poly.Campaign.StopWhenAllSaturated = false;
    PolyJobs.push_back(S.submit(Poly));
  }
  for (uint64_t Id : ClassifyJobs)
    ASSERT_TRUE(S.wait(Id));
  for (uint64_t Id : PolyJobs)
    ASSERT_TRUE(S.wait(Id));

  CampaignResult FirstClassify;
  ASSERT_TRUE(S.result(ClassifyJobs[0], FirstClassify));
  for (uint64_t Id : ClassifyJobs) {
    CampaignResult Res;
    ASSERT_TRUE(S.result(Id, Res));
    expectBitIdentical(Res, FirstClassify);
  }
  CompiledUnitCache::Stats St = S.cacheStats();
  EXPECT_EQ(S.cacheSize(), 2u) << "one unit per distinct subject survives";
  EXPECT_GE(St.Misses, 2u);
  EXPECT_EQ(St.Hits + St.Misses, 8u);
  EXPECT_EQ(St.FailedCompiles, 0u);
}

//===----------------------------------------------------------------------===//
// Checkpoint / resume through the session
//===----------------------------------------------------------------------===//

TEST(SessionCheckpoint, SuspendResumeInPlaceMatchesUninterrupted) {
  lang::SourceProgram SP =
      lang::compileSourceProgram(ClassifierSource, "classify");
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  JobRequest Req = classifierRequest(/*Seed=*/7, /*NStart=*/18, /*Threads=*/2);
  CampaignResult Reference = CoverMe(SP.Prog, Req.Campaign).run();

  Session S;
  JobRequest Suspending = Req;
  Suspending.Campaign.SuspendAfterRounds = 5;
  uint64_t Id = S.submit(Suspending);
  ASSERT_TRUE(S.wait(Id));
  JobStatus St;
  ASSERT_TRUE(S.status(Id, St));
  ASSERT_EQ(St.State, JobState::Suspended);
  EXPECT_EQ(St.RoundsCommitted, 5u);

  // The suspended prefix is a readable result in its own right.
  CampaignResult Prefix;
  ASSERT_TRUE(S.result(Id, Prefix));
  EXPECT_TRUE(Prefix.Suspended);
  EXPECT_EQ(Prefix.StartsUsed, 5u);

  std::vector<uint8_t> Bytes;
  std::string Err;
  ASSERT_TRUE(S.checkpoint(Id, Bytes, Err)) << Err;
  EXPECT_FALSE(Bytes.empty());

  ASSERT_TRUE(S.resume(Id, Err)) << Err;
  ASSERT_TRUE(S.wait(Id));
  ASSERT_TRUE(S.status(Id, St));
  ASSERT_EQ(St.State, JobState::Done);
  CampaignResult Full;
  ASSERT_TRUE(S.result(Id, Full));
  expectBitIdentical(Full, Reference);

  // The progress buffer saw every round exactly once across the splice.
  std::vector<RoundLog> Events = S.progress(Id, 0);
  ASSERT_EQ(Events.size(), 18u);
  for (size_t I = 0; I < Events.size(); ++I)
    EXPECT_EQ(Events[I].Round, I + 1);
}

TEST(SessionCheckpoint, ResumeFromBytesInAFreshSessionMatches) {
  lang::SourceProgram SP =
      lang::compileSourceProgram(ClassifierSource, "classify");
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  JobRequest Req = classifierRequest(/*Seed=*/7, /*NStart=*/14, /*Threads=*/1);
  CampaignResult Reference = CoverMe(SP.Prog, Req.Campaign).run();

  std::vector<uint8_t> Bytes;
  {
    Session First;
    JobRequest Suspending = Req;
    Suspending.Campaign.SuspendAfterRounds = 4;
    uint64_t Id = First.submit(Suspending);
    std::string Err;
    ASSERT_TRUE(First.checkpoint(Id, Bytes, Err)) << Err;
  } // session torn down: the bytes are all that survives

  Session Second;
  std::string Err;
  JobRequest Resumed = Req;
  Resumed.Campaign.Threads = 4; // thread count is free to differ
  uint64_t Id = Second.submitResume(Resumed, Bytes, Err);
  ASSERT_NE(Id, 0u) << Err;
  ASSERT_TRUE(Second.wait(Id));
  JobStatus St;
  ASSERT_TRUE(Second.status(Id, St));
  ASSERT_EQ(St.State, JobState::Done);
  EXPECT_EQ(St.RoundsCommitted, 14u) << "prefix + new rounds";
  CampaignResult Full;
  ASSERT_TRUE(Second.result(Id, Full));
  expectBitIdentical(Full, Reference);
}

TEST(SessionCheckpoint, CorruptBytesAreRejectedEagerly) {
  Session S;
  std::string Err;
  std::vector<uint8_t> Garbage = {'n', 'o', 't', 'a', 's', 'n', 'a', 'p'};
  EXPECT_EQ(S.submitResume(classifierRequest(7, 10, 1), Garbage, Err), 0u);
  EXPECT_FALSE(Err.empty());
}

TEST(SessionCheckpoint, ShapeMismatchedBytesFailTheJob) {
  // Valid snapshot, wrong program: rejected when the worker applies it —
  // through the CoverageMap merge shape check.
  std::vector<uint8_t> Bytes;
  {
    Session S;
    JobRequest Req = classifierRequest(7, 10, 1);
    Req.Campaign.SuspendAfterRounds = 3;
    uint64_t Id = S.submit(Req);
    std::string Err;
    ASSERT_TRUE(S.checkpoint(Id, Bytes, Err)) << Err;
  }
  Session S;
  JobRequest Poly;
  Poly.Source = PolySource;
  Poly.Entry = "poly";
  std::string Err;
  uint64_t Id = S.submitResume(Poly, Bytes, Err);
  ASSERT_NE(Id, 0u) << "decode succeeds; shape check happens at apply time";
  ASSERT_TRUE(S.wait(Id));
  JobStatus St;
  ASSERT_TRUE(S.status(Id, St));
  EXPECT_EQ(St.State, JobState::Failed);
  EXPECT_FALSE(St.Error.empty());
}

TEST(SessionCheckpoint, CheckpointBeforeFirstRoundSuspendsAtRoundZero) {
  Session S;
  uint64_t Id = S.submit(classifierRequest(/*Seed=*/7, /*NStart=*/400,
                                           /*Threads=*/1));
  std::vector<uint8_t> Bytes;
  std::string Err;
  // Whether the worker has started or not, the checkpoint lands at a round
  // boundary and the snapshot resumes bit-identically (golden half covers
  // the resume; here we only need the call to land).
  ASSERT_TRUE(S.checkpoint(Id, Bytes, Err)) << Err;
  JobStatus St;
  ASSERT_TRUE(S.status(Id, St));
  EXPECT_EQ(St.State, JobState::Suspended);
  CampaignSnapshot Snap;
  ASSERT_TRUE(decodeSnapshot(Bytes, Snap, Err)) << Err;
  EXPECT_EQ(Snap.StartsUsed, St.RoundsCommitted);
}

TEST(SessionCheckpoint, CancelStopsARunningJobAtARoundBoundary) {
  Session S;
  uint64_t Id = S.submit(classifierRequest(/*Seed=*/13, /*NStart=*/100000,
                                           /*Threads=*/2));
  EXPECT_TRUE(S.cancel(Id));
  ASSERT_TRUE(S.wait(Id));
  JobStatus St;
  ASSERT_TRUE(S.status(Id, St));
  EXPECT_EQ(St.State, JobState::Cancelled);
  EXPECT_FALSE(S.cancel(Id)) << "terminal jobs cannot be re-cancelled";
  std::string Err;
  EXPECT_FALSE(S.resume(Id, Err)) << "cancelled jobs cannot resume";
}

TEST(SessionCheckpoint, UnknownJobIdsFailCleanly) {
  Session S;
  JobStatus St;
  CampaignResult Res;
  std::vector<uint8_t> Bytes;
  std::string Err;
  EXPECT_FALSE(S.status(42, St));
  EXPECT_FALSE(S.result(42, Res));
  EXPECT_FALSE(S.wait(42));
  EXPECT_FALSE(S.cancel(42));
  EXPECT_FALSE(S.checkpoint(42, Bytes, Err));
  EXPECT_FALSE(S.resume(42, Err));
  EXPECT_TRUE(S.progress(42, 0).empty());
}

//===----------------------------------------------------------------------===//
// The wire-protocol JSON helpers
//===----------------------------------------------------------------------===//

TEST(ServiceJson, ParsesTheProtocolShapes) {
  json::Value V;
  std::string Err;
  ASSERT_TRUE(json::parse(
      "{\"cmd\":\"submit\",\"seed\":18446744073709551615,\"n_start\":24,"
      "\"ok\":true,\"nested\":{\"a\":[1,2.5,-3]},\"name\":\"tanh\\n\"}",
      V, Err))
      << Err;
  EXPECT_EQ(V.str("cmd"), "submit");
  EXPECT_EQ(V.u64("seed"), 18446744073709551615ull)
      << "64-bit integers survive exactly";
  EXPECT_EQ(V.u64("n_start"), 24u);
  EXPECT_TRUE(V.boolean("ok"));
  EXPECT_EQ(V.str("name"), "tanh\n");
  const json::Value *Nested = V.find("nested");
  ASSERT_NE(Nested, nullptr);
  const json::Value *Arr = Nested->find("a");
  ASSERT_NE(Arr, nullptr);
  ASSERT_TRUE(Arr->isArray());
  ASSERT_EQ(Arr->Arr.size(), 3u);
  EXPECT_EQ(Arr->Arr[1].Num, 2.5);
}

TEST(ServiceJson, RejectsMalformedInput) {
  json::Value V;
  std::string Err;
  for (const char *Bad :
       {"", "{", "{\"a\":}", "{\"a\":1,}", "[1,2", "{\"a\":1} trailing",
        "{\"a\":\"unterminated}", "{'a':1}", "nullx", "{\"a\":01e}",
        "{\"\\u12\":1}"}) {
    EXPECT_FALSE(json::parse(Bad, V, Err)) << Bad;
  }
  // Nesting bomb: bounded, not stack-overflowed.
  std::string Deep(100, '[');
  Deep += std::string(100, ']');
  EXPECT_FALSE(json::parse(Deep, V, Err));
}

TEST(ServiceJson, WriterEscapesAndRoundTrips) {
  json::ObjectWriter W;
  W.field("text", "line1\nline2\t\"quoted\"")
      .field("flag", false)
      .field("big", uint64_t(18446744073709551615ull))
      .field("pi", 3.141592653589793);
  json::Value V;
  std::string Err;
  ASSERT_TRUE(json::parse(W.str(), V, Err)) << Err << ": " << W.str();
  EXPECT_EQ(V.str("text"), "line1\nline2\t\"quoted\"");
  EXPECT_FALSE(V.boolean("flag", true));
  EXPECT_EQ(V.u64("big"), 18446744073709551615ull);
  EXPECT_EQ(V.num("pi"), 3.141592653589793);
}

} // namespace
