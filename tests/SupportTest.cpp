//===- SupportTest.cpp - Unit tests for the support library -----------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "support/FaultInject.h"
#include "support/FloatBits.h"
#include "support/Random.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <cmath>
#include <gtest/gtest.h>
#include <numeric>
#include <vector>

using namespace coverme;

//===----------------------------------------------------------------------===//
// FloatBits
//===----------------------------------------------------------------------===//

TEST(FloatBitsTest, BitsRoundTrip) {
  for (double V : {0.0, -0.0, 1.0, -1.0, 3.14159, 1e300, 5e-324}) {
    EXPECT_EQ(doubleToBits(bitsToDouble(doubleToBits(V))), doubleToBits(V));
  }
}

TEST(FloatBitsTest, HighWordMatchesFdlibmConstants) {
  // The magic constants the ports compare against.
  EXPECT_EQ(highWord(1.0), 0x3ff00000);
  EXPECT_EQ(highWord(2.0), 0x40000000);
  EXPECT_EQ(highWord(0.5), 0x3fe00000);
  EXPECT_EQ(highWord(22.0), 0x40360000);
  EXPECT_EQ(highWord(std::numeric_limits<double>::infinity()), 0x7ff00000);
  EXPECT_EQ(highWord(-1.0), static_cast<int32_t>(0xbff00000u));
}

TEST(FloatBitsTest, WordsRoundTrip) {
  double V = 123.456789;
  EXPECT_EQ(doubleFromWords(highWord(V), lowWord(V)), V);
  EXPECT_EQ(setHighWord(V, highWord(V)), V);
  EXPECT_EQ(setLowWord(V, lowWord(V)), V);
}

TEST(FloatBitsTest, SetHighWordChangesMagnitudeOnly) {
  double V = 1.75; // mantissa bits in high word only
  double W = setHighWord(V, highWord(V) + (1 << 20)); // bump exponent
  EXPECT_DOUBLE_EQ(W, 3.5);
}

TEST(FloatBitsTest, SubnormalDetection) {
  EXPECT_TRUE(isSubnormal(5e-324));
  EXPECT_TRUE(isSubnormal(-5e-324));
  EXPECT_TRUE(isSubnormal(2.0e-308));
  EXPECT_FALSE(isSubnormal(0.0));
  EXPECT_FALSE(isSubnormal(2.3e-308));
  EXPECT_FALSE(isSubnormal(1.0));
  EXPECT_FALSE(isSubnormal(std::numeric_limits<double>::infinity()));
}

TEST(FloatBitsTest, NaNAndInfinityDetection) {
  EXPECT_TRUE(isNaNBits(std::nan("")));
  EXPECT_FALSE(isNaNBits(std::numeric_limits<double>::infinity()));
  EXPECT_TRUE(isInfinity(std::numeric_limits<double>::infinity()));
  EXPECT_TRUE(isInfinity(-std::numeric_limits<double>::infinity()));
  EXPECT_FALSE(isInfinity(1e308));
  EXPECT_FALSE(isNaNBits(0.0));
}

TEST(FloatBitsTest, UnbiasedExponent) {
  EXPECT_EQ(unbiasedExponent(1.0), 0);
  EXPECT_EQ(unbiasedExponent(2.0), 1);
  EXPECT_EQ(unbiasedExponent(0.5), -1);
  EXPECT_EQ(unbiasedExponent(-8.0), 3);
}

TEST(FloatBitsTest, UlpDistanceAdjacent) {
  double V = 1.0;
  double Next = std::nextafter(V, 2.0);
  EXPECT_EQ(ulpDistance(V, Next), 1u);
  EXPECT_EQ(ulpDistance(V, V), 0u);
  // Across the sign boundary: +0 and -0 are one step apart on the ordered
  // integer line used here... they map to 0 and 1 respectively.
  EXPECT_LE(ulpDistance(0.0, -0.0), 1u);
  EXPECT_EQ(ulpDistance(std::nan(""), 1.0), UINT64_MAX);
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(RngTest, DeterministicUnderSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4);
}

TEST(RngTest, Uniform01InRange) {
  Rng R(7);
  for (int I = 0; I < 10000; ++I) {
    double U = R.uniform01();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng R(9);
  for (int I = 0; I < 1000; ++I) {
    double U = R.uniform(-3.5, 8.25);
    EXPECT_GE(U, -3.5);
    EXPECT_LT(U, 8.25);
  }
}

TEST(RngTest, BelowIsBounded) {
  Rng R(11);
  for (uint64_t Bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int I = 0; I < 500; ++I)
      EXPECT_LT(R.below(Bound), Bound);
  }
}

TEST(RngTest, BelowCoversAllResidues) {
  Rng R(13);
  bool Seen[5] = {};
  for (int I = 0; I < 1000; ++I)
    Seen[R.below(5)] = true;
  for (bool S : Seen)
    EXPECT_TRUE(S);
}

TEST(RngTest, GaussianMoments) {
  Rng R(17);
  OnlineStats Stats;
  for (int I = 0; I < 50000; ++I)
    Stats.add(R.gaussian());
  EXPECT_NEAR(Stats.mean(), 0.0, 0.05);
  EXPECT_NEAR(Stats.stddev(), 1.0, 0.05);
}

TEST(RngTest, ExponentUniformNeverSubnormalOrSpecial) {
  Rng R(19);
  for (int I = 0; I < 20000; ++I) {
    double V = R.exponentUniformDouble();
    EXPECT_TRUE(std::isfinite(V));
    EXPECT_FALSE(isSubnormal(V));
    EXPECT_NE(V, 0.0);
  }
}

TEST(RngTest, WideDoubleNeverSubnormal) {
  // The Sect.-D reproduction depends on this invariant.
  Rng R(23);
  for (int I = 0; I < 50000; ++I)
    EXPECT_FALSE(isSubnormal(R.wideDouble()));
}

TEST(RngTest, WideDoubleProducesSpecials) {
  Rng R(29);
  bool SawZero = false, SawInf = false, SawNaN = false, SawNegative = false;
  for (int I = 0; I < 20000; ++I) {
    double V = R.wideDouble();
    SawZero |= V == 0.0;
    SawInf |= std::isinf(V);
    SawNaN |= V != V;
    SawNegative |= V < 0.0;
  }
  EXPECT_TRUE(SawZero);
  EXPECT_TRUE(SawInf);
  EXPECT_TRUE(SawNaN);
  EXPECT_TRUE(SawNegative);
}

TEST(RngTest, ExponentUniformVectorSize) {
  Rng R(31);
  EXPECT_EQ(R.exponentUniformVector(5).size(), 5u);
  EXPECT_TRUE(R.exponentUniformVector(0).empty());
}

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

TEST(StatisticsTest, OnlineStatsKnownValues) {
  OnlineStats S;
  for (double V : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    S.add(V);
  EXPECT_EQ(S.count(), 8u);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_DOUBLE_EQ(S.min(), 2.0);
  EXPECT_DOUBLE_EQ(S.max(), 9.0);
  EXPECT_NEAR(S.variance(), 32.0 / 7.0, 1e-12); // sample variance
}

TEST(StatisticsTest, OnlineStatsEmptyAndSingle) {
  OnlineStats S;
  EXPECT_EQ(S.mean(), 0.0);
  EXPECT_EQ(S.variance(), 0.0);
  S.add(3.5);
  EXPECT_DOUBLE_EQ(S.mean(), 3.5);
  EXPECT_EQ(S.variance(), 0.0);
  EXPECT_DOUBLE_EQ(S.min(), 3.5);
  EXPECT_DOUBLE_EQ(S.max(), 3.5);
}

TEST(StatisticsTest, MeanAndGeometricMean) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_NEAR(geometricMean({1.0, 100.0}), 10.0, 1e-9);
  EXPECT_EQ(geometricMean({1.0, -1.0}), 0.0);
}

TEST(StatisticsTest, MedianAndPercentile) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0, 5.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0, 5.0}, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0, 5.0}, 50.0), 3.0);
  EXPECT_EQ(percentile({}, 50.0), 0.0);
}

//===----------------------------------------------------------------------===//
// Table
//===----------------------------------------------------------------------===//

TEST(TableTest, AsciiAlignment) {
  Table T({"name", "value"});
  T.addRow({"alpha", "1"});
  T.addRow({"b", "22.5"});
  std::string Out = T.toAscii();
  EXPECT_NE(Out.find("name   value"), std::string::npos);
  EXPECT_NE(Out.find("alpha  1"), std::string::npos);
  EXPECT_NE(Out.find("b      22.5"), std::string::npos);
}

TEST(TableTest, CsvEscaping) {
  Table T({"a", "b"});
  T.addRow({"plain", "has,comma"});
  T.addRow({"has\"quote", "x"});
  std::string Csv = T.toCsv();
  EXPECT_NE(Csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(Csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TableTest, CellFormatters) {
  EXPECT_EQ(Table::cell(3.14159, 2), "3.14");
  EXPECT_EQ(Table::cell(7), "7");
  EXPECT_EQ(Table::percentCell(0.875), "87.5");
}

TEST(TableTest, RowAndColumnCounts) {
  Table T({"x", "y", "z"});
  EXPECT_EQ(T.numColumns(), 3u);
  EXPECT_EQ(T.numRows(), 0u);
  T.addRow({"1", "2", "3"});
  EXPECT_EQ(T.numRows(), 1u);
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.size(), 4u);
  std::atomic<int> Count{0};
  for (int I = 0; I < 100; ++I)
    Pool.submit([&Count] { Count.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForVisitsEachIndexExactlyOnce) {
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Visits(1000);
  Pool.parallelFor(Visits.size(), [&](size_t I) { Visits[I].fetch_add(1); });
  for (const std::atomic<int> &V : Visits)
    EXPECT_EQ(V.load(), 1);
}

TEST(ThreadPoolTest, SingleWorkerRunsIndicesInOrder) {
  // The documented contract the sequential reference paths rely on.
  ThreadPool Pool(1);
  std::vector<size_t> Order;
  Pool.parallelFor(50, [&Order](size_t I) { Order.push_back(I); });
  std::vector<size_t> Expected(50);
  std::iota(Expected.begin(), Expected.end(), size_t(0));
  EXPECT_EQ(Order, Expected);
}

TEST(ThreadPoolTest, DestructionDrainsQueue) {
  std::atomic<int> Count{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I < 64; ++I)
      Pool.submit([&Count] { Count.fetch_add(1); });
  } // ~ThreadPool implies wait()
  EXPECT_EQ(Count.load(), 64);
}

TEST(ThreadPoolTest, ZeroMeansHardwareThreads) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.size(), ThreadPool::hardwareThreads());
  EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

//===----------------------------------------------------------------------===//
// FaultInject
//===----------------------------------------------------------------------===//

namespace {

/// Every fault-injection test must leave the registry disarmed: the points
/// are global, and a leaked schedule would fail unrelated tests' syscalls.
struct FaultInjectGuard {
  FaultInjectGuard() { faultinject::reset(); }
  ~FaultInjectGuard() { faultinject::reset(); }
};

} // namespace

TEST(FaultInjectTest, DisarmedRegistryNeverFails) {
  FaultInjectGuard Guard;
  for (int I = 0; I < 5; ++I)
    EXPECT_FALSE(faultinject::shouldFail("test.point"));
  EXPECT_EQ(faultinject::failCount("test.point"), 0u);
}

TEST(FaultInjectTest, UnarmedPointsCountHitsOnceRegistryIsLive) {
  FaultInjectGuard Guard;
  // Arming any point takes every point off the free fast path, so hit
  // ordinals accumulate even for points with no schedule.
  faultinject::arm("test.other", 1);
  for (int I = 0; I < 5; ++I)
    EXPECT_FALSE(faultinject::shouldFail("test.point"));
  EXPECT_EQ(faultinject::hitCount("test.point"), 5u);
  EXPECT_EQ(faultinject::failCount("test.point"), 0u);
}

TEST(FaultInjectTest, ScheduleFailsExactlyTheArmedOrdinals) {
  FaultInjectGuard Guard;
  faultinject::arm("test.window", /*FirstHit=*/3, /*Count=*/2);
  std::vector<bool> Outcomes;
  for (int I = 0; I < 6; ++I)
    Outcomes.push_back(faultinject::shouldFail("test.window"));
  EXPECT_EQ(Outcomes,
            (std::vector<bool>{false, false, true, true, false, false}));
  EXPECT_EQ(faultinject::failCount("test.window"), 2u);
}

TEST(FaultInjectTest, RearmingResetsTheHitOrdinals) {
  FaultInjectGuard Guard;
  faultinject::arm("test.rearm", 1);
  EXPECT_TRUE(faultinject::shouldFail("test.rearm"));
  EXPECT_FALSE(faultinject::shouldFail("test.rearm"));
  // Ordinals are relative to the arming, so hit 1 fails again.
  faultinject::arm("test.rearm", 1);
  EXPECT_TRUE(faultinject::shouldFail("test.rearm"));
}

TEST(FaultInjectTest, PointsAreIndependent) {
  FaultInjectGuard Guard;
  faultinject::arm("test.a", 1);
  EXPECT_FALSE(faultinject::shouldFail("test.b"));
  EXPECT_TRUE(faultinject::shouldFail("test.a"));
  EXPECT_EQ(faultinject::failCount("test.b"), 0u);
}

TEST(FaultInjectTest, SpecGrammarArmsSchedules) {
  FaultInjectGuard Guard;
  ASSERT_TRUE(faultinject::armFromSpec("test.one:2;test.many:1x3"));
  EXPECT_FALSE(faultinject::shouldFail("test.one"));
  EXPECT_TRUE(faultinject::shouldFail("test.one"));
  EXPECT_FALSE(faultinject::shouldFail("test.one"));
  for (int I = 0; I < 3; ++I)
    EXPECT_TRUE(faultinject::shouldFail("test.many"));
  EXPECT_FALSE(faultinject::shouldFail("test.many"));
}

TEST(FaultInjectTest, MalformedSpecsAreRejected) {
  FaultInjectGuard Guard;
  EXPECT_FALSE(faultinject::armFromSpec("nocolon"));
  EXPECT_FALSE(faultinject::armFromSpec("point:"));
  EXPECT_FALSE(faultinject::armFromSpec("point:abc"));
  EXPECT_FALSE(faultinject::armFromSpec("point:1x"));
  EXPECT_FALSE(faultinject::armFromSpec(":3"));
}

TEST(FaultInjectTest, ResetDisarmsEverything) {
  FaultInjectGuard Guard;
  faultinject::arm("test.reset", 1, 100);
  EXPECT_TRUE(faultinject::shouldFail("test.reset"));
  faultinject::reset();
  // Back on the free fast path: no failures, and no hit accounting either.
  EXPECT_FALSE(faultinject::shouldFail("test.reset"));
  EXPECT_EQ(faultinject::hitCount("test.reset"), 0u);
}
