//===- CoreTest.cpp - Unit tests for the CoverMe engine ----------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "core/CampaignEngine.h"
#include "core/CoverMe.h"
#include "fdlibm/Fdlibm.h"
#include "lang/SourceSuite.h"
#include "runtime/Hooks.h"
#include "runtime/RepresentingFunction.h"
#include "support/FloatBits.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace coverme;

namespace {

/// FOO from Fig. 3.
double fooBody(const double *Args) {
  double X = Args[0];
  if (CVM_LE(0, X, 1.0))
    X = X + 1.0;
  double Y = X * X;
  if (CVM_EQ(1, Y, 4.0))
    return 1.0;
  return 0.0;
}

Program fooProgram() {
  Program P;
  P.Name = "FOO";
  P.File = "fig3.c";
  P.Arity = 1;
  P.NumSites = 2;
  P.TotalLines = 6;
  P.Body = fooBody;
  return P;
}

/// The Sect. 5.3 infeasible-branch example:
///   l0: if (x <= 1) x++;  y = square(x);  l1: if (y == -1) ...
/// 1T is infeasible because y = x*x >= 0.
double infeasibleBody(const double *Args) {
  double X = Args[0];
  if (CVM_LE(0, X, 1.0))
    X = X + 1.0;
  double Y = X * X;
  if (CVM_EQ(1, Y, -1.0))
    return 1.0;
  return 0.0;
}

Program infeasibleProgram() {
  Program P = fooProgram();
  P.Name = "FOO_infeasible";
  P.Body = infeasibleBody;
  return P;
}

/// No conditionals at all.
double straightBody(const double *Args) { return Args[0] * 2.0; }

} // namespace

TEST(CoverMeTest, SaturatesFooCompletely) {
  CoverMeOptions Opts;
  Opts.NStart = 50;
  Opts.Seed = 42;
  Program P = fooProgram();
  CoverMe Engine(P, Opts);
  CampaignResult Res = Engine.run();
  EXPECT_TRUE(Res.AllSaturated);
  EXPECT_EQ(Res.CoveredBranches, 4u);
  EXPECT_DOUBLE_EQ(Res.BranchCoverage, 1.0);
  EXPECT_TRUE(Res.InfeasibleMarked.empty());
  // Thm. 4.3 corollary: each accepted round saturates at least one new
  // branch, so at most 4 inputs are needed for 4 branches.
  EXPECT_LE(Res.Inputs.size(), 4u);
  EXPECT_GE(Res.Inputs.size(), 2u); // one path covers at most 2 arms
}

TEST(CoverMeTest, AcceptedRoundsStrictlyGrowSaturation) {
  CoverMeOptions Opts;
  Opts.NStart = 50;
  Opts.Seed = 7;
  Program P = fooProgram();
  CoverMe Engine(P, Opts);
  CampaignResult Res = Engine.run();
  unsigned Prev = 0;
  for (const RoundLog &Round : Res.Rounds) {
    if (Round.Accepted) {
      EXPECT_GT(Round.SaturatedArms, Prev)
          << "accepted round " << Round.Round << " saturated nothing new";
    }
    Prev = Round.SaturatedArms;
  }
}

TEST(CoverMeTest, DeterministicUnderSeed) {
  CoverMeOptions Opts;
  Opts.NStart = 30;
  Opts.Seed = 5;
  Program P = fooProgram();
  CampaignResult A = CoverMe(P, Opts).run();
  CampaignResult B = CoverMe(P, Opts).run();
  ASSERT_EQ(A.Inputs.size(), B.Inputs.size());
  for (size_t I = 0; I < A.Inputs.size(); ++I)
    EXPECT_EQ(doubleToBits(A.Inputs[I][0]), doubleToBits(B.Inputs[I][0]));
  EXPECT_EQ(A.Evaluations, B.Evaluations);
}

TEST(CoverMeTest, GeneratedSuiteCoversWhatItReports) {
  // Re-execute X from scratch; coverage must reproduce the report.
  CoverMeOptions Opts;
  Opts.NStart = 50;
  Opts.Seed = 11;
  Program P = fooProgram();
  CampaignResult Res = CoverMe(P, Opts).run();
  ExecutionContext Ctx(P.NumSites);
  Ctx.PenEnabled = false;
  CoverageMap Replay(P.NumSites);
  Ctx.Coverage = &Replay;
  RepresentingFunction FR(P, Ctx);
  for (const auto &X : Res.Inputs)
    FR.execute(X);
  EXPECT_EQ(Replay.coveredArms(), Res.CoveredBranches);
}

TEST(CoverMeTest, DetectsInfeasibleBranch) {
  CoverMeOptions Opts;
  Opts.NStart = 60;
  Opts.Seed = 3;
  Program P = infeasibleProgram();
  CoverMe Engine(P, Opts);
  CampaignResult Res = Engine.run();
  // 1T (y == -1) is infeasible: coverage caps at 3/4 and the heuristic
  // must mark exactly that arm.
  EXPECT_EQ(Res.CoveredBranches, 3u);
  EXPECT_TRUE(Res.AllSaturated);
  ASSERT_EQ(Res.InfeasibleMarked.size(), 1u);
  EXPECT_EQ(Res.InfeasibleMarked[0], (BranchRef{1, true}));
}

TEST(CoverMeTest, InfeasibleMarkingCanBeDisabled) {
  CoverMeOptions Opts;
  Opts.NStart = 20;
  Opts.Seed = 3;
  Opts.MarkInfeasible = false;
  Program P = infeasibleProgram();
  CampaignResult Res = CoverMe(P, Opts).run();
  EXPECT_TRUE(Res.InfeasibleMarked.empty());
  EXPECT_FALSE(Res.AllSaturated); // 1T can never saturate
  EXPECT_EQ(Res.StartsUsed, 20u); // burns all starts
}

TEST(CoverMeTest, BranchFreeProgram) {
  Program P;
  P.Name = "straight";
  P.File = "s.c";
  P.Arity = 1;
  P.NumSites = 0;
  P.TotalLines = 2;
  P.Body = straightBody;
  CampaignResult Res = CoverMe(P).run();
  EXPECT_TRUE(Res.AllSaturated);
  EXPECT_DOUBLE_EQ(Res.BranchCoverage, 1.0);
  EXPECT_EQ(Res.Inputs.size(), 1u);
}

TEST(CoverMeTest, RespectsEvaluationCap) {
  CoverMeOptions Opts;
  Opts.NStart = 1000;
  Opts.MaxEvaluations = 2000;
  Opts.MarkInfeasible = false; // keep it hunting the infeasible arm
  Program P = infeasibleProgram();
  CampaignResult Res = CoverMe(P, Opts).run();
  // One in-flight round may overshoot, but not by more than a round.
  EXPECT_LT(Res.Evaluations, 2000u + Opts.RoundMaxEvaluations);
}

TEST(CoverMeTest, EarlyExitUsesFewStartsOnEasyProgram) {
  CoverMeOptions Opts;
  Opts.NStart = 500;
  Opts.Seed = 2;
  Program P = fooProgram();
  CampaignResult Res = CoverMe(P, Opts).run();
  EXPECT_TRUE(Res.AllSaturated);
  EXPECT_LT(Res.StartsUsed, 30u); // callback-style early termination
}

TEST(CoverMeTest, StopWhenAllSaturatedFalseKeepsGoing) {
  CoverMeOptions Opts;
  Opts.NStart = 25;
  Opts.Seed = 2;
  Opts.StopWhenAllSaturated = false;
  Program P = fooProgram();
  CampaignResult Res = CoverMe(P, Opts).run();
  EXPECT_EQ(Res.StartsUsed, 25u);
  EXPECT_TRUE(Res.AllSaturated);
  // Post-saturation rounds must see FOO_R == 1 (the lambda x.1 row).
  EXPECT_EQ(Res.Rounds.back().MinimumValue, 1.0);
}

TEST(CoverMeTest, RoundsLogMatchesStartsUsed) {
  CoverMeOptions Opts;
  Opts.NStart = 15;
  Opts.Seed = 9;
  Opts.StopWhenAllSaturated = false;
  Program P = fooProgram();
  CampaignResult Res = CoverMe(P, Opts).run();
  EXPECT_EQ(Res.Rounds.size(), Res.StartsUsed);
}

//===----------------------------------------------------------------------===//
// Parallel campaign engine: thread-count invariance
//===----------------------------------------------------------------------===//

namespace {

/// The full saturated-arm set a campaign ended with: arms covered by the
/// generated suite plus arms the Sect. 5.3 heuristic marked infeasible.
std::vector<BranchRef> saturatedArms(const CampaignResult &Res) {
  std::vector<BranchRef> Arms;
  for (uint32_t S = 0; S * 2 < Res.TotalBranches; ++S)
    for (bool Outcome : {true, false})
      if (Res.Coverage.hits(S, Outcome) > 0)
        Arms.push_back({S, Outcome});
  Arms.insert(Arms.end(), Res.InfeasibleMarked.begin(),
              Res.InfeasibleMarked.end());
  std::sort(Arms.begin(), Arms.end(), [](BranchRef A, BranchRef B) {
    return A.Site != B.Site ? A.Site < B.Site : A.Outcome < B.Outcome;
  });
  return Arms;
}

/// Asserts every observable outcome of two campaigns is bit-identical:
/// accepted inputs, evaluation counts, round log, saturated arms, coverage.
void expectIdenticalCampaigns(const CampaignResult &A,
                              const CampaignResult &B) {
  ASSERT_EQ(A.Inputs.size(), B.Inputs.size());
  for (size_t I = 0; I < A.Inputs.size(); ++I) {
    ASSERT_EQ(A.Inputs[I].size(), B.Inputs[I].size());
    for (size_t J = 0; J < A.Inputs[I].size(); ++J)
      EXPECT_EQ(doubleToBits(A.Inputs[I][J]), doubleToBits(B.Inputs[I][J]));
  }
  EXPECT_EQ(A.Evaluations, B.Evaluations);
  EXPECT_EQ(A.StartsUsed, B.StartsUsed);
  EXPECT_EQ(saturatedArms(A), saturatedArms(B));
  EXPECT_EQ(A.CoveredBranches, B.CoveredBranches);
  EXPECT_EQ(A.BranchCoverage, B.BranchCoverage);
  EXPECT_EQ(A.InfeasibleMarked, B.InfeasibleMarked);
  ASSERT_EQ(A.Rounds.size(), B.Rounds.size());
  for (size_t I = 0; I < A.Rounds.size(); ++I) {
    EXPECT_EQ(A.Rounds[I].Round, B.Rounds[I].Round);
    EXPECT_EQ(A.Rounds[I].Accepted, B.Rounds[I].Accepted);
    EXPECT_EQ(A.Rounds[I].MarkedInfeasible, B.Rounds[I].MarkedInfeasible);
    EXPECT_EQ(A.Rounds[I].SaturatedArms, B.Rounds[I].SaturatedArms);
    EXPECT_EQ(doubleToBits(A.Rounds[I].MinimumValue),
              doubleToBits(B.Rounds[I].MinimumValue));
  }
}

/// Runs the same campaign under Threads=1 (the sequential reference path)
/// and Threads=4 (speculative parallel commits) and demands bit-identical
/// results — the engine's core determinism contract.
void expectThreadCountInvariance(const Program &P, uint64_t Seed) {
  CoverMeOptions Opts;
  Opts.NStart = 80;
  Opts.Seed = Seed;
  Opts.Threads = 1;
  CampaignResult Seq = CoverMe(P, Opts).run();
  Opts.Threads = 4;
  CampaignResult Par = CoverMe(P, Opts).run();
  expectIdenticalCampaigns(Seq, Par);
}

} // namespace

TEST(CampaignEngineTest, ThreadCountInvarianceOnFdlibmSin) {
  const Program *P = fdlibm::lookup("sin");
  ASSERT_NE(P, nullptr);
  expectThreadCountInvariance(*P, 1);
}

TEST(CampaignEngineTest, ThreadCountInvarianceOnFdlibmNextafter) {
  // nextafter has 44 branch arms, several infeasible under the heuristic —
  // this exercises the streak counters and infeasible marks across the
  // speculative commit path, not just accepted inputs.
  const Program *P = fdlibm::lookup("nextafter");
  ASSERT_NE(P, nullptr);
  expectThreadCountInvariance(*P, 3);
}

TEST(CampaignEngineTest, NonReentrantBodyClampsToOneThread) {
  // Tree-walked source programs set ThreadSafeBody = false; the engine
  // must fall back to the sequential path rather than race the shared
  // interpreter.
  Program P = fooProgram();
  P.ThreadSafeBody = false;
  CoverMeOptions Opts;
  Opts.Threads = 4;
  EXPECT_EQ(CampaignEngine(P, Opts).effectiveThreads(), 1u);
  P.ThreadSafeBody = true;
  EXPECT_EQ(CampaignEngine(P, Opts).effectiveThreads(), 4u);
}

TEST(CampaignEngineTest, VmSourceSubjectRunsUnclampedAndThreadInvariant) {
  // The point of the bytecode tier: a *source* subject (not just the
  // native fdlibm ports) is reentrant, so Threads=4 runs unclamped and
  // must reproduce the sequential reference bit-for-bit.
  const lang::SourceBenchmark *B = lang::findSourceBenchmark("tanh");
  ASSERT_NE(B, nullptr);
  lang::SourceProgram SP = lang::compileSourceBenchmark(*B);
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  ASSERT_TRUE(SP.Prog.ThreadSafeBody);

  CoverMeOptions Opts;
  Opts.Threads = 4;
  EXPECT_EQ(CampaignEngine(SP.Prog, Opts).effectiveThreads(), 4u);

  expectThreadCountInvariance(SP.Prog, 5);
}

TEST(CampaignEngineTest, VmSourceSubjectWithLoopsThreadInvariant) {
  // e_sqrt.c: the deepest loop nest in the suite plus infeasible arms,
  // so the speculative commit path re-runs rounds against streak state.
  const lang::SourceBenchmark *B = lang::findSourceBenchmark("sqrt");
  ASSERT_NE(B, nullptr);
  lang::SourceProgram SP = lang::compileSourceBenchmark(*B);
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  ASSERT_TRUE(SP.Prog.ThreadSafeBody);
  expectThreadCountInvariance(SP.Prog, 7);
}

TEST(CampaignEngineTest, TreeWalkerTierStillClampsToOneThread) {
  // The fallback tier keeps the PR-2 behavior: shared interpreter, body
  // not reentrant, engine clamps.
  const lang::SourceBenchmark *B = lang::findSourceBenchmark("tanh");
  ASSERT_NE(B, nullptr);
  lang::SourceProgramOptions SPOpts;
  SPOpts.TotalLines = B->PaperLines;
  SPOpts.Tier = lang::ExecutionTier::TreeWalker;
  lang::SourceProgram SP =
      lang::compileSourceProgram(B->Source, B->Name, SPOpts);
  ASSERT_TRUE(SP.success()) << SP.diagnosticsText();
  EXPECT_FALSE(SP.Prog.ThreadSafeBody);
  CoverMeOptions Opts;
  Opts.Threads = 4;
  EXPECT_EQ(CampaignEngine(SP.Prog, Opts).effectiveThreads(), 1u);
}
