//===- Table.h - ASCII table and CSV rendering ----------------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small column-oriented table builder. The benchmark harness uses it to
/// print the paper's tables (Tab. 2, 3, 5) as aligned ASCII and as CSV so
/// the numbers can be diffed or re-plotted.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_SUPPORT_TABLE_H
#define COVERME_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace coverme {

/// Column-aligned text table with a one-line header.
class Table {
public:
  explicit Table(std::vector<std::string> Headers);

  /// Appends a full row; must have exactly as many cells as headers.
  void addRow(std::vector<std::string> Cells);

  /// Convenience cell formatters.
  static std::string cell(double Value, int Precision = 1);
  static std::string cell(int Value);
  static std::string cell(size_t Value);
  static std::string percentCell(double Fraction, int Precision = 1);

  size_t numRows() const { return Rows.size(); }
  size_t numColumns() const { return Headers.size(); }

  /// Renders the table with space padding and a dashed header rule.
  std::string toAscii() const;

  /// Renders the table as RFC-4180-ish CSV (quotes cells with commas).
  std::string toCsv() const;

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace coverme

#endif // COVERME_SUPPORT_TABLE_H
