//===- Table.cpp - ASCII table and CSV rendering --------------------------===//

#include "support/Table.h"

#include <cassert>
#include <cstdio>

using namespace coverme;

Table::Table(std::vector<std::string> Headers) : Headers(std::move(Headers)) {
  assert(!this->Headers.empty() && "a table needs at least one column");
}

void Table::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Headers.size() && "row width differs from header");
  Rows.push_back(std::move(Cells));
}

std::string Table::cell(double Value, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, Value);
  return Buf;
}

std::string Table::cell(int Value) { return std::to_string(Value); }

std::string Table::cell(size_t Value) { return std::to_string(Value); }

std::string Table::percentCell(double Fraction, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, Fraction * 100.0);
  return Buf;
}

std::string Table::toAscii() const {
  std::vector<size_t> Widths(Headers.size());
  for (size_t C = 0; C < Headers.size(); ++C)
    Widths[C] = Headers[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C < Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto RenderRow = [&](const std::vector<std::string> &Cells) {
    std::string Line;
    for (size_t C = 0; C < Cells.size(); ++C) {
      if (C != 0)
        Line += "  ";
      Line += Cells[C];
      Line.append(Widths[C] - Cells[C].size(), ' ');
    }
    // Trim trailing padding.
    while (!Line.empty() && Line.back() == ' ')
      Line.pop_back();
    Line += '\n';
    return Line;
  };

  std::string Out = RenderRow(Headers);
  size_t RuleWidth = 0;
  for (size_t C = 0; C < Widths.size(); ++C)
    RuleWidth += Widths[C] + (C == 0 ? 0 : 2);
  Out.append(RuleWidth, '-');
  Out += '\n';
  for (const auto &Row : Rows)
    Out += RenderRow(Row);
  return Out;
}

static std::string csvEscape(const std::string &Cell) {
  if (Cell.find_first_of(",\"\n") == std::string::npos)
    return Cell;
  std::string Out = "\"";
  for (char Ch : Cell) {
    if (Ch == '"')
      Out += '"';
    Out += Ch;
  }
  Out += '"';
  return Out;
}

std::string Table::toCsv() const {
  std::string Out;
  auto RenderRow = [&](const std::vector<std::string> &Cells) {
    for (size_t C = 0; C < Cells.size(); ++C) {
      if (C != 0)
        Out += ',';
      Out += csvEscape(Cells[C]);
    }
    Out += '\n';
  };
  RenderRow(Headers);
  for (const auto &Row : Rows)
    RenderRow(Row);
  return Out;
}
