//===- ThreadPool.h - Worker-thread pool for campaign parallelism ---------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size worker pool. The paper's Algorithm 1 is a sequence of
/// *independent* Basinhopping rounds, and a Table-2 sweep is a sequence of
/// independent subjects; both parallelize naturally once the runtime state
/// is shareable (see runtime/SaturationTable). This pool is the substrate:
/// the CampaignEngine dispatches round workers onto it and the
/// CampaignRunner shards whole subjects across it.
///
/// The pool is deliberately minimal: FIFO task queue, `submit` + `wait`,
/// and a blocking `parallelFor` convenience for index sharding. Tasks must
/// not throw (a throwing task terminates, as with a raw std::thread), and
/// `wait`/`parallelFor` must not be called from inside a pool task — the
/// pool does not run nested work on the waiting thread.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_SUPPORT_THREADPOOL_H
#define COVERME_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace coverme {

/// Fixed-size FIFO worker pool.
class ThreadPool {
public:
  /// Spawns \p Threads workers; 0 means one per hardware core.
  explicit ThreadPool(unsigned Threads = 0);

  /// Joins all workers. Pending tasks still in the queue are completed
  /// first (destruction implies wait()).
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task for execution on some worker.
  void submit(std::function<void()> Task);

  /// Blocks until the queue is empty and every worker is idle.
  void wait();

  /// Evaluates Work(I) for every I in [0, N), sharded across the workers,
  /// and blocks until all indices are done. Index-claim order is a shared
  /// atomic counter, so each index runs exactly once; with a single worker
  /// the indices run in ascending order.
  void parallelFor(size_t N, const std::function<void(size_t)> &Work);

  /// Number of worker threads.
  unsigned size() const { return static_cast<unsigned>(Workers.size()); }

  /// std::thread::hardware_concurrency with a floor of 1.
  static unsigned hardwareThreads();

private:
  void workerMain();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable WorkCv; ///< Signals workers: task queued / shutdown.
  std::condition_variable IdleCv; ///< Signals waiters: pool drained.
  size_t ActiveTasks = 0;
  bool ShuttingDown = false;
};

} // namespace coverme

#endif // COVERME_SUPPORT_THREADPOOL_H
