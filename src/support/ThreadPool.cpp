//===- ThreadPool.cpp - Worker-thread pool for campaign parallelism ---------===//

#include "support/ThreadPool.h"

#include <atomic>
#include <memory>

using namespace coverme;

unsigned ThreadPool::hardwareThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads == 0)
    Threads = hardwareThreads();
  Workers.reserve(Threads);
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([this] { workerMain(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WorkCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Task));
  }
  WorkCv.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  IdleCv.wait(Lock, [this] { return Queue.empty() && ActiveTasks == 0; });
}

void ThreadPool::workerMain() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkCv.wait(Lock, [this] { return !Queue.empty() || ShuttingDown; });
      if (Queue.empty())
        return; // shutting down with nothing left to run
      Task = std::move(Queue.front());
      Queue.pop_front();
      ++ActiveTasks;
    }
    Task();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --ActiveTasks;
      if (Queue.empty() && ActiveTasks == 0)
        IdleCv.notify_all();
    }
  }
}

void ThreadPool::parallelFor(size_t N, const std::function<void(size_t)> &Work) {
  if (N == 0)
    return;
  // One claim-loop task per worker (no more than N); the shared atomic
  // index hands each I to exactly one of them. The completion latch is
  // local so concurrent parallelFor calls from different threads compose.
  struct Latch {
    std::atomic<size_t> NextIndex{0};
    std::mutex Mutex;
    std::condition_variable Cv;
    size_t Remaining;
  };
  auto L = std::make_shared<Latch>();
  size_t Tasks = std::min<size_t>(size(), N);
  L->Remaining = Tasks;
  for (size_t T = 0; T < Tasks; ++T) {
    submit([L, &Work, N] {
      for (size_t I; (I = L->NextIndex.fetch_add(1)) < N;)
        Work(I);
      std::lock_guard<std::mutex> Lock(L->Mutex);
      if (--L->Remaining == 0)
        L->Cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> Lock(L->Mutex);
  L->Cv.wait(Lock, [&L] { return L->Remaining == 0; });
}
