//===- Timer.h - Wall-clock timing ----------------------------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monotonic wall-clock timer for the campaign time columns of Tables 2/3.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_SUPPORT_TIMER_H
#define COVERME_SUPPORT_TIMER_H

#include <chrono>

namespace coverme {

/// Starts on construction; seconds() reads the elapsed wall time.
class WallTimer {
public:
  WallTimer() : Start(Clock::now()) {}

  /// Elapsed seconds since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Resets the origin to now.
  void restart() { Start = Clock::now(); }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace coverme

#endif // COVERME_SUPPORT_TIMER_H
