//===- Random.h - Deterministic pseudo-random number generation ----------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seedable xoshiro256++ generator plus the floating-point sampling
/// distributions shared by the CoverMe driver (starting points, Monte-Carlo
/// perturbations) and the baseline testers (Rand, AFL-lite, Austin-lite).
/// Everything is deterministic under a fixed seed so experiments replay.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_SUPPORT_RANDOM_H
#define COVERME_SUPPORT_RANDOM_H

#include <cstdint>
#include <vector>

namespace coverme {

/// xoshiro256++ 1.0 — a small, fast, high-quality 64-bit PRNG.
///
/// The generator is self-contained (no <random> engine state) so that the
/// same seed produces the same stream on every platform, which the golden
/// experiment logs rely on.
class Rng {
public:
  /// Seeds the four 64-bit state words from \p Seed via splitmix64.
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit output.
  uint64_t next();

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [\p Lo, \p Hi).
  double uniform(double Lo, double Hi);

  /// Uniform integer in [0, \p Bound), \p Bound > 0.
  uint64_t below(uint64_t Bound);

  /// Standard normal deviate (Box-Muller).
  double gaussian();

  /// Normal deviate with the given \p Mean and \p Sigma.
  double gaussian(double Mean, double Sigma);

  /// A double whose 64 bits are uniform — covers NaNs, infinities,
  /// subnormals, and the full exponent range. This is the sampler pure
  /// random testing uses.
  double rawBitsDouble();

  /// A finite double with uniformly distributed sign and exponent and
  /// uniform mantissa ("exponent-uniform"). Unlike uniform(lo,hi) this
  /// reaches tiny and huge magnitudes with equal probability, which is what
  /// floating-point branch conditions key on.
  double exponentUniformDouble();

  /// Like exponentUniformDouble() but over the *entire* IEEE-754 double
  /// space except subnormals: uniformly random sign and biased exponent in
  /// [0, 2047], so +-0, +-inf, and NaN all appear with the same frequency
  /// as any binade. Subnormals are deliberately excluded — the paper's
  /// optimization backend cannot produce them either (Sect. D), and the
  /// e_fmod.c coverage gap depends on reproducing that.
  double wideDouble();

  /// True with probability \p P.
  bool chance(double P);

  /// Fills \p Out with \p N independent exponent-uniform doubles.
  std::vector<double> exponentUniformVector(unsigned N);

private:
  uint64_t State[4];
  bool HasSpareGaussian = false;
  double SpareGaussian = 0.0;
};

} // namespace coverme

#endif // COVERME_SUPPORT_RANDOM_H
