//===- FloatBits.cpp - IEEE-754 double bit manipulation utilities --------===//

#include "support/FloatBits.h"

#include <cassert>

namespace coverme {

bool isSubnormal(double X) {
  uint64_t Bits = doubleToBits(X) & 0x7fffffffffffffffull;
  return Bits != 0 && (Bits >> 52) == 0;
}

bool isNaNBits(double X) {
  uint64_t Abs = doubleToBits(X) & 0x7fffffffffffffffull;
  return Abs > 0x7ff0000000000000ull;
}

bool isInfinity(double X) {
  uint64_t Abs = doubleToBits(X) & 0x7fffffffffffffffull;
  return Abs == 0x7ff0000000000000ull;
}

int unbiasedExponent(double X) {
  uint64_t Abs = doubleToBits(X) & 0x7fffffffffffffffull;
  unsigned Biased = static_cast<unsigned>(Abs >> 52);
  assert(Biased != 0 && Biased != 0x7ff &&
         "unbiasedExponent requires a normal, finite, nonzero double");
  return static_cast<int>(Biased) - 1023;
}

/// Maps a double onto a monotone signed integer line so that ULP distance is
/// plain integer subtraction. Negative doubles are reflected.
static int64_t toOrderedInt(double X) {
  int64_t Bits = static_cast<int64_t>(doubleToBits(X));
  if (Bits < 0)
    return static_cast<int64_t>(0x8000000000000000ull) - Bits;
  return Bits;
}

uint64_t ulpDistance(double A, double B) {
  if (isNaNBits(A) || isNaNBits(B))
    return UINT64_MAX;
  int64_t IA = toOrderedInt(A);
  int64_t IB = toOrderedInt(B);
  uint64_t Diff = IA > IB ? static_cast<uint64_t>(IA) - static_cast<uint64_t>(IB)
                          : static_cast<uint64_t>(IB) - static_cast<uint64_t>(IA);
  return Diff;
}

} // namespace coverme
