//===- ExecMemory.cpp - W^X executable code memory ------------------------===//

#include "support/ExecMemory.h"

#include "support/FaultInject.h"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define COVERME_EXECMEM_POSIX 1
#include <sys/mman.h>
#include <unistd.h>
#else
#define COVERME_EXECMEM_POSIX 0
#endif

using namespace coverme;

ExecMemory::~ExecMemory() { release(); }

ExecMemory::ExecMemory(ExecMemory &&Other) noexcept
    : Base(Other.Base), Bytes(Other.Bytes), Mapped(Other.Mapped) {
  Other.Base = nullptr;
  Other.Bytes = 0;
  Other.Mapped = 0;
}

ExecMemory &ExecMemory::operator=(ExecMemory &&Other) noexcept {
  if (this != &Other) {
    release();
    Base = Other.Base;
    Bytes = Other.Bytes;
    Mapped = Other.Mapped;
    Other.Base = nullptr;
    Other.Bytes = 0;
    Other.Mapped = 0;
  }
  return *this;
}

void ExecMemory::release() {
#if COVERME_EXECMEM_POSIX
  if (Base)
    ::munmap(Base, Mapped);
#endif
  Base = nullptr;
  Bytes = 0;
  Mapped = 0;
}

bool ExecMemory::supported() { return COVERME_EXECMEM_POSIX != 0; }

bool ExecMemory::seal(const void *Code, size_t Size) {
#if COVERME_EXECMEM_POSIX
  if (Base || !Code || Size == 0)
    return false;
  long Page = ::sysconf(_SC_PAGESIZE);
  if (Page <= 0)
    Page = 4096;
  size_t Len = (Size + static_cast<size_t>(Page) - 1) &
               ~(static_cast<size_t>(Page) - 1);
  // Fault points model the two ways a hardened host refuses JIT memory:
  // the anonymous mapping itself (address-space exhaustion, mmap lockdown)
  // and the W^X flip (PROT_EXEC denied by policy). Either failure leaves
  // the object empty and callers on their portable tier.
  if (faultinject::shouldFail("execmem.mmap"))
    return false;
  void *P = ::mmap(nullptr, Len, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (P == MAP_FAILED)
    return false;
  std::memcpy(P, Code, Size);
  if (faultinject::shouldFail("execmem.seal") ||
      ::mprotect(P, Len, PROT_READ | PROT_EXEC) != 0) {
    ::munmap(P, Len);
    return false;
  }
  Base = P;
  Bytes = Size;
  Mapped = Len;
  return true;
#else
  (void)Code;
  (void)Size;
  return false;
#endif
}
