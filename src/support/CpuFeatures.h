//===- CpuFeatures.h - Runtime host-CPU feature detection -----------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime CPU feature queries for the execution tiers that are gated on
/// instruction-set extensions (the VM's AVX2 wide batch lane). The
/// implementation translation unit is deliberately compiled *without*
/// target-feature flags, so querying a feature never itself executes an
/// instruction the host might lack — the same discipline the JIT tier uses
/// for its emitter.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_SUPPORT_CPUFEATURES_H
#define COVERME_SUPPORT_CPUFEATURES_H

namespace coverme {

/// True when the host CPU (and OS, via XSAVE state) supports AVX2.
/// Detected once; subsequent calls are a cached load.
bool cpuHasAvx2();

} // namespace coverme

#endif // COVERME_SUPPORT_CPUFEATURES_H
