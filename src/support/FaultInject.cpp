//===- FaultInject.cpp - Deterministic fault-injection point registry -----===//

#include "support/FaultInject.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

using namespace coverme;

namespace {

struct PointState {
  uint64_t Hits = 0;
  uint64_t Fails = 0;
  uint64_t FirstHit = 0; ///< 1-based first failing hit; 0 = disarmed.
  uint64_t Count = 0;    ///< Consecutive failing hits from FirstHit.
};

struct Registry {
  std::mutex Mutex;
  std::unordered_map<std::string, PointState> Points;
};

/// Leaked singleton: fault points fire from arbitrary library code, some
/// of it reachable during static destruction (thread-local Vm caches), so
/// the registry must never be destroyed under a live caller.
Registry &registry() {
  static Registry *R = new Registry();
  return *R;
}

/// Fast-path gate: false means no point anywhere is armed, so shouldFail
/// can return without touching the mutex — the only cost production code
/// pays for carrying the registry.
std::atomic<bool> AnyArmed{false};

} // namespace

bool faultinject::shouldFail(const char *Point) {
  if (!AnyArmed.load(std::memory_order_relaxed))
    return false;
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  PointState &S = R.Points[Point];
  ++S.Hits;
  if (!S.FirstHit || S.Hits < S.FirstHit || S.Hits >= S.FirstHit + S.Count)
    return false;
  ++S.Fails;
  return true;
}

void faultinject::arm(const std::string &Point, uint64_t FirstHit,
                      uint64_t Count) {
  if (!FirstHit || !Count)
    return;
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  PointState &S = R.Points[Point];
  S = PointState{};
  S.FirstHit = FirstHit;
  S.Count = Count;
  AnyArmed.store(true, std::memory_order_relaxed);
}

void faultinject::reset() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  R.Points.clear();
  AnyArmed.store(false, std::memory_order_relaxed);
}

uint64_t faultinject::hitCount(const std::string &Point) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  auto It = R.Points.find(Point);
  return It == R.Points.end() ? 0 : It->second.Hits;
}

uint64_t faultinject::failCount(const std::string &Point) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  auto It = R.Points.find(Point);
  return It == R.Points.end() ? 0 : It->second.Fails;
}

bool faultinject::armFromSpec(const std::string &Spec) {
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t End = Spec.find(';', Pos);
    if (End == std::string::npos)
      End = Spec.size();
    const std::string Entry = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Entry.empty())
      continue;
    size_t Colon = Entry.rfind(':');
    if (Colon == std::string::npos || Colon == 0 || Colon + 1 == Entry.size())
      return false;
    const std::string Point = Entry.substr(0, Colon);
    const std::string Sched = Entry.substr(Colon + 1);
    size_t X = Sched.find('x');
    uint64_t FirstHit = 0, Count = 1;
    char *EndPtr = nullptr;
    FirstHit = std::strtoull(Sched.c_str(), &EndPtr, 10);
    if (EndPtr == Sched.c_str())
      return false;
    if (X != std::string::npos) {
      if (static_cast<size_t>(EndPtr - Sched.c_str()) != X)
        return false;
      char *CountEnd = nullptr;
      Count = std::strtoull(Sched.c_str() + X + 1, &CountEnd, 10);
      if (CountEnd == Sched.c_str() + X + 1 || *CountEnd)
        return false;
    } else if (*EndPtr) {
      return false;
    }
    if (!FirstHit || !Count)
      return false;
    arm(Point, FirstHit, Count);
  }
  return true;
}

bool faultinject::armFromEnvironment() {
  const char *Spec = std::getenv("COVERME_FAULTS");
  if (!Spec || !*Spec)
    return false;
  return armFromSpec(Spec);
}
