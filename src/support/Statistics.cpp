//===- Statistics.cpp - Descriptive statistics helpers -------------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace coverme;

void OnlineStats::add(double X) {
  if (N == 0) {
    Min = Max = X;
  } else {
    Min = std::min(Min, X);
    Max = std::max(Max, X);
  }
  ++N;
  double Delta = X - Mean;
  Mean += Delta / static_cast<double>(N);
  M2 += Delta * (X - Mean);
}

double OnlineStats::mean() const { return N == 0 ? 0.0 : Mean; }

double OnlineStats::variance() const {
  return N < 2 ? 0.0 : M2 / static_cast<double>(N - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const { return N == 0 ? 0.0 : Min; }

double OnlineStats::max() const { return N == 0 ? 0.0 : Max; }

double coverme::mean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  double Sum = 0.0;
  for (double X : Xs)
    Sum += X;
  return Sum / static_cast<double>(Xs.size());
}

double coverme::geometricMean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double X : Xs) {
    if (X <= 0.0)
      return 0.0;
    LogSum += std::log(X);
  }
  return std::exp(LogSum / static_cast<double>(Xs.size()));
}

double coverme::median(std::vector<double> Xs) { return percentile(std::move(Xs), 50.0); }

double coverme::percentile(std::vector<double> Xs, double P) {
  if (Xs.empty())
    return 0.0;
  assert(P >= 0.0 && P <= 100.0 && "percentile outside [0,100]");
  std::sort(Xs.begin(), Xs.end());
  if (Xs.size() == 1)
    return Xs.front();
  double Rank = P / 100.0 * static_cast<double>(Xs.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  size_t Hi = std::min(Lo + 1, Xs.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return Xs[Lo] + Frac * (Xs[Hi] - Xs[Lo]);
}
