//===- CpuFeatures.cpp - Runtime host-CPU feature detection ---------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "support/CpuFeatures.h"

namespace coverme {

bool cpuHasAvx2() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  // __builtin_cpu_supports consults libgcc/compiler-rt's cached CPUID
  // model, which already folds in the OSXSAVE/XGETBV check required for
  // the OS to preserve ymm state across context switches.
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

} // namespace coverme
