//===- Timer.cpp - Wall-clock timing --------------------------------------===//

#include "support/Timer.h"

// Header-only; this file anchors the translation unit for the library.
