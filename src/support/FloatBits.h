//===- FloatBits.h - IEEE-754 double bit manipulation utilities ----------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bit-level access to IEEE-754 doubles. Fdlibm-style code addresses a double
/// as a pair of 32-bit words (the "high word" carries sign, exponent, and the
/// top 20 mantissa bits); the ported benchmarks and the fuzzers both need
/// exactly that view, so it lives here in one place.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_SUPPORT_FLOATBITS_H
#define COVERME_SUPPORT_FLOATBITS_H

#include <cstdint>
#include <cstring>

namespace coverme {

/// Reinterprets a double as its raw 64-bit pattern.
inline uint64_t doubleToBits(double X) {
  uint64_t Bits;
  std::memcpy(&Bits, &X, sizeof(Bits));
  return Bits;
}

/// Reinterprets a 64-bit pattern as a double.
inline double bitsToDouble(uint64_t Bits) {
  double X;
  std::memcpy(&X, &Bits, sizeof(X));
  return X;
}

/// Returns the high 32-bit word of \p X (sign, exponent, top mantissa bits).
/// Mirrors Fdlibm's __HI(x) macro on little-endian hosts.
inline int32_t highWord(double X) {
  return static_cast<int32_t>(doubleToBits(X) >> 32);
}

/// Returns the low 32-bit word of \p X (bottom mantissa bits). Fdlibm __LO.
inline uint32_t lowWord(double X) {
  return static_cast<uint32_t>(doubleToBits(X) & 0xffffffffu);
}

/// Rebuilds a double from its high and low words.
inline double doubleFromWords(int32_t Hi, uint32_t Lo) {
  return bitsToDouble((static_cast<uint64_t>(static_cast<uint32_t>(Hi)) << 32) |
                      Lo);
}

/// Replaces the high word of \p X, keeping the low word.
inline double setHighWord(double X, int32_t Hi) {
  return doubleFromWords(Hi, lowWord(X));
}

/// Replaces the low word of \p X, keeping the high word.
inline double setLowWord(double X, uint32_t Lo) {
  return doubleFromWords(highWord(X), Lo);
}

/// True if \p X is an IEEE subnormal (nonzero with zero biased exponent).
bool isSubnormal(double X);

/// True if \p X is a NaN bit pattern.
bool isNaNBits(double X);

/// True if \p X is +/-infinity.
bool isInfinity(double X);

/// Unbiased exponent of a normal double; asserts on zero/subnormal/special.
int unbiasedExponent(double X);

/// Counts how many representable doubles separate \p A and \p B (saturating
/// at UINT64_MAX). Used by tests to reason about nextafter-style code.
uint64_t ulpDistance(double A, double B);

} // namespace coverme

#endif // COVERME_SUPPORT_FLOATBITS_H
