//===- Statistics.h - Descriptive statistics helpers ---------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small descriptive-statistics helpers used by the benchmark harness to
/// compute the MEAN rows of Tables 2, 3, and 5 and the ablation summaries.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_SUPPORT_STATISTICS_H
#define COVERME_SUPPORT_STATISTICS_H

#include <cstddef>
#include <vector>

namespace coverme {

/// Streaming accumulator for mean/variance/min/max (Welford's algorithm).
class OnlineStats {
public:
  void add(double X);

  size_t count() const { return N; }
  double mean() const;
  /// Sample variance (unbiased, n-1). Zero for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

private:
  size_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

/// Arithmetic mean of \p Xs; zero for an empty vector.
double mean(const std::vector<double> &Xs);

/// Geometric mean of strictly positive values; zero if any is non-positive.
double geometricMean(const std::vector<double> &Xs);

/// Median (average of middle two for even sizes); zero for empty input.
double median(std::vector<double> Xs);

/// Linear-interpolation percentile \p P in [0,100]; zero for empty input.
double percentile(std::vector<double> Xs, double P);

} // namespace coverme

#endif // COVERME_SUPPORT_STATISTICS_H
