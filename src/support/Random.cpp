//===- Random.cpp - Deterministic pseudo-random number generation --------===//

#include "support/Random.h"

#include "support/FloatBits.h"

#include <cassert>
#include <cmath>

using namespace coverme;

static uint64_t splitmix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ull;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

Rng::Rng(uint64_t Seed) {
  uint64_t S = Seed;
  for (uint64_t &Word : State)
    Word = splitmix64(S);
}

static inline uint64_t rotl(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

uint64_t Rng::next() {
  uint64_t Result = rotl(State[0] + State[3], 23) + State[0];
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

double Rng::uniform01() {
  // 53 top bits -> [0,1) with full double resolution.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double Lo, double Hi) {
  assert(Lo <= Hi && "uniform() bounds are inverted");
  return Lo + (Hi - Lo) * uniform01();
}

uint64_t Rng::below(uint64_t Bound) {
  assert(Bound > 0 && "below() requires a positive bound");
  // Rejection sampling to remove modulo bias.
  uint64_t Threshold = (0 - Bound) % Bound;
  for (;;) {
    uint64_t R = next();
    if (R >= Threshold)
      return R % Bound;
  }
}

double Rng::gaussian() {
  if (HasSpareGaussian) {
    HasSpareGaussian = false;
    return SpareGaussian;
  }
  double U, V, S;
  do {
    U = uniform(-1.0, 1.0);
    V = uniform(-1.0, 1.0);
    S = U * U + V * V;
  } while (S >= 1.0 || S == 0.0);
  double Mul = std::sqrt(-2.0 * std::log(S) / S);
  SpareGaussian = V * Mul;
  HasSpareGaussian = true;
  return U * Mul;
}

double Rng::gaussian(double Mean, double Sigma) {
  return Mean + Sigma * gaussian();
}

double Rng::rawBitsDouble() { return bitsToDouble(next()); }

double Rng::exponentUniformDouble() {
  // Exponent uniform over the normal range [-1022, 1023], uniform mantissa,
  // random sign. This is the distribution CoverMe's starting points use; it
  // exercises magnitude-gated branches that uniform(lo,hi) never reaches.
  int Exp = static_cast<int>(below(2046)) - 1022;
  uint64_t Mantissa = next() & 0x000fffffffffffffull;
  uint64_t Sign = (next() & 1) ? 0x8000000000000000ull : 0;
  uint64_t Biased = static_cast<uint64_t>(Exp + 1023);
  return bitsToDouble(Sign | (Biased << 52) | Mantissa);
}

double Rng::wideDouble() {
  // With probability 1/8, draw one of the IEEE special values that gate
  // Fdlibm's early-out branches. The paper's SciPy backend reaches these
  // through unbounded line-search extrapolation (t overflows to inf) and
  // NaN-producing arithmetic; an explicit table is the budgeted equivalent.
  if ((next() & 7) == 0) {
    static const double Specials[] = {
        0.0,
        -0.0,
        bitsToDouble(0x7ff0000000000000ull),  // +inf
        bitsToDouble(0xfff0000000000000ull),  // -inf
        bitsToDouble(0x7ff8000000000000ull),  // quiet NaN
        1.0,
        -1.0,
        bitsToDouble(0x0010000000000000ull),  // smallest normal
        bitsToDouble(0x7fefffffffffffffull),  // largest finite
        bitsToDouble(0xffefffffffffffffull),  // most negative finite
    };
    return Specials[below(sizeof(Specials) / sizeof(Specials[0]))];
  }
  uint64_t Biased = 1 + below(2046); // normal binades only (no subnormals)
  uint64_t Sign = (next() & 1) ? 0x8000000000000000ull : 0;
  uint64_t Mantissa = next() & 0x000fffffffffffffull;
  return bitsToDouble(Sign | (Biased << 52) | Mantissa);
}

bool Rng::chance(double P) { return uniform01() < P; }

std::vector<double> Rng::exponentUniformVector(unsigned N) {
  std::vector<double> Out;
  Out.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Out.push_back(exponentUniformDouble());
  return Out;
}
