//===- ExecMemory.h - W^X executable code memory --------------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sealed executable mapping for JIT-compiled code. The lifecycle is
/// strictly write-then-execute (W^X): seal() maps fresh pages read-write,
/// copies the finished code buffer in, and flips the pages to read-execute
/// before returning — the mapping is never writable and executable at the
/// same time, and never becomes writable again. One ExecMemory holds one
/// immutable code arena for the lifetime of its owning unit (lang/JitUnit
/// keeps it alongside the CompiledUnit the fragments were compiled from).
///
/// On platforms without mmap/mprotect, supported() is false and seal()
/// fails cleanly; callers degrade to their portable paths (the bytecode
/// VM tier).
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_SUPPORT_EXECMEMORY_H
#define COVERME_SUPPORT_EXECMEMORY_H

#include <cstddef>

namespace coverme {

/// Owns one sealed read-execute mapping. Movable, not copyable.
class ExecMemory {
public:
  ExecMemory() = default;
  ~ExecMemory();

  ExecMemory(ExecMemory &&Other) noexcept;
  ExecMemory &operator=(ExecMemory &&Other) noexcept;
  ExecMemory(const ExecMemory &) = delete;
  ExecMemory &operator=(const ExecMemory &) = delete;

  /// True when this platform can map executable memory at all.
  static bool supported();

  /// Maps \p Size bytes read-write, copies \p Code in, and remaps the
  /// pages read-execute. Returns false (leaving the object empty) on any
  /// failure — out of address space, hardened allocator refusing PROT_EXEC,
  /// unsupported platform. May be called once per object.
  bool seal(const void *Code, size_t Size);

  /// Base of the sealed mapping, or null before a successful seal().
  const void *base() const { return Base; }

  /// Bytes of code sealed (the mapping itself is page-rounded).
  size_t size() const { return Bytes; }

private:
  void release();

  void *Base = nullptr;
  size_t Bytes = 0;   ///< Code bytes requested by seal().
  size_t Mapped = 0;  ///< Page-rounded mapping length.
};

} // namespace coverme

#endif // COVERME_SUPPORT_EXECMEMORY_H
