//===- FaultInject.h - Deterministic fault-injection point registry -------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A schedule-driven fault-injection registry for proving that every
/// failure path degrades gracefully instead of aborting. Production code
/// names its fallible operations as *points* — string literals like
/// "execmem.mmap" or "ckpt.rename" — and asks `shouldFail(Point)` at the
/// moment the real operation would run. Tests *arm* a point with an exact
/// schedule ("fail the Kth hit", or "fail hits K..K+N-1"); unarmed points
/// cost one relaxed atomic load and always succeed, so the registry can
/// stay compiled into release binaries.
///
/// Determinism is the design center: a schedule is expressed in hit
/// ordinals, not probabilities, so a test that arms "fail the 3rd
/// checkpoint rename" fails exactly that rename on every run, on every
/// thread count — the same philosophy as the engine's deterministic round
/// speculation. Hit counters advance on every call, armed or not, so
/// ordinals refer to a stable global sequence per point.
///
/// Schedules can also come from the environment (`COVERME_FAULTS`,
/// e.g. "execmem.seal:1;ckpt.rename:2x3") so the serve daemon's crash
/// drills can inject faults across a fork/exec boundary without a wire
/// verb. The spec grammar is `point:firstHit[xCount][;...]`.
///
/// Registered points live in the fixed table below — `shouldFail` accepts
/// any string, but keeping the canonical list here documents the fault
/// surface in one place:
///
///   execmem.mmap    ExecMemory::seal's anonymous mapping
///   execmem.seal    ExecMemory::seal's W^X mprotect flip
///   vm.simd.init    Vm construction resolving the AVX2 wide lane
///   ckpt.write      CheckpointStore journal temp-file write
///   ckpt.fsync      CheckpointStore journal fsync
///   ckpt.rename     CheckpointStore temp -> journal rename
///   cache.insert    CompiledUnitCache unit insertion
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_SUPPORT_FAULTINJECT_H
#define COVERME_SUPPORT_FAULTINJECT_H

#include <cstdint>
#include <string>

namespace coverme {
namespace faultinject {

/// True iff \p Point's armed schedule covers this hit. Every call counts
/// one hit against the point whether or not anything is armed; with the
/// registry globally disarmed the cost is a single relaxed atomic load.
bool shouldFail(const char *Point);

/// Arms \p Point to fail hits [FirstHit, FirstHit + Count) of its global
/// hit sequence, 1-based. Re-arming a point replaces its schedule and
/// resets its hit counter (so ordinals are relative to the arming).
void arm(const std::string &Point, uint64_t FirstHit, uint64_t Count = 1);

/// Disarms every point, zeroes all hit counters, and returns the registry
/// to its free (single-load) fast path.
void reset();

/// Hits recorded against \p Point since the last reset()/arm() of it.
uint64_t hitCount(const std::string &Point);

/// Number of times \p Point actually failed (shouldFail returned true).
uint64_t failCount(const std::string &Point);

/// Parses a `point:firstHit[xCount]` list separated by ';' and arms each
/// entry. Returns false (arming nothing further) on a malformed entry.
/// Example: "execmem.seal:1" or "ckpt.write:2x3;ckpt.rename:1".
bool armFromSpec(const std::string &Spec);

/// Arms from the COVERME_FAULTS environment variable when set. Called by
/// processes that want env-driven injection (the serve daemon); library
/// code never reads the environment on its own. Returns true when a spec
/// was present and parsed.
bool armFromEnvironment();

} // namespace faultinject
} // namespace coverme

#endif // COVERME_SUPPORT_FAULTINJECT_H
