//===- JobWire.h - JSON wire form of campaign job requests ----------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One JSON spelling for a JobRequest, shared by the two places a request
/// crosses a process boundary: the coverme_serve submit verb and the
/// durable checkpoint journal's metadata blob. Sharing the encoder and
/// decoder is what makes crash recovery honest — the restarted daemon
/// re-parses exactly the object a client could have sent, so a recovered
/// campaign is configured bit-identically to the original submission.
///
/// The round trip covers the protocol-representable subset of the option
/// structs (tier, fuse, n_start, n_iter, seed, threads, budgets, deadline,
/// checkpoint cadence, the saturation/infeasibility switches); fields only
/// reachable through the C++ API keep their defaults on decode, matching
/// what the serve protocol can express.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_SERVICE_JOBWIRE_H
#define COVERME_SERVICE_JOBWIRE_H

#include "service/Json.h"
#include "service/Session.h"

#include <string>

namespace coverme {

/// Serializes \p Req as the flat JSON object the serve submit verb accepts
/// (without the "cmd" member). This is the journal metadata format.
std::string jobRequestToJson(const JobRequest &Req);

/// Parses the submit-verb fields of \p V into \p Out. Unknown members are
/// ignored (the serve dispatcher passes whole requests through). False
/// with \p Err set on missing source/entry or an unknown tier spelling.
[[nodiscard]] bool jobRequestFromJson(const json::Value &V, JobRequest &Out,
                                      std::string &Err);

/// Convenience overload parsing \p Text first (the journal recovery path).
[[nodiscard]] bool jobRequestFromJson(const std::string &Text,
                                      JobRequest &Out, std::string &Err);

} // namespace coverme

#endif // COVERME_SERVICE_JOBWIRE_H
