//===- Json.cpp - Minimal JSON for the service wire protocol ----------------===//

#include "service/Json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

using namespace coverme;
using namespace coverme::json;

const Value *Value::find(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &Member : Obj)
    if (Member.first == Key)
      return &Member.second;
  return nullptr;
}

std::string Value::str(const std::string &Key, std::string Default) const {
  const Value *V = find(Key);
  return V && V->K == Kind::String ? V->Str : std::move(Default);
}

double Value::num(const std::string &Key, double Default) const {
  const Value *V = find(Key);
  return V && V->K == Kind::Number ? V->Num : Default;
}

uint64_t Value::u64(const std::string &Key, uint64_t Default) const {
  const Value *V = find(Key);
  if (!V || V->K != Kind::Number)
    return Default;
  // Re-read the raw spelling so 2^63-scale seeds survive exactly.
  return std::strtoull(V->Str.c_str(), nullptr, 10);
}

bool Value::boolean(const std::string &Key, bool Default) const {
  const Value *V = find(Key);
  return V && V->K == Kind::Bool ? V->B : Default;
}

namespace {

/// Recursive-descent parser over a bounded input with a nesting cap —
/// requests come off a socket, so depth is attacker-controlled.
struct Parser {
  const char *P;
  const char *End;
  std::string &Err;
  int Depth = 0;
  static constexpr int MaxDepth = 32;

  bool fail(const char *Why) {
    if (Err.empty())
      Err = Why;
    return false;
  }

  void skipWs() {
    while (P != End && (*P == ' ' || *P == '\t' || *P == '\n' || *P == '\r'))
      ++P;
  }

  bool literal(const char *Text) {
    for (; *Text; ++Text, ++P)
      if (P == End || *P != *Text)
        return fail("malformed literal");
    return true;
  }

  bool parseString(std::string &Out) {
    if (P == End || *P != '"')
      return fail("expected string");
    ++P;
    Out.clear();
    while (P != End && *P != '"') {
      char C = *P++;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (P == End)
        return fail("unterminated escape");
      char E = *P++;
      switch (E) {
      case '"': Out += '"'; break;
      case '\\': Out += '\\'; break;
      case '/': Out += '/'; break;
      case 'b': Out += '\b'; break;
      case 'f': Out += '\f'; break;
      case 'n': Out += '\n'; break;
      case 'r': Out += '\r'; break;
      case 't': Out += '\t'; break;
      case 'u': {
        // \uXXXX: decode the code point to UTF-8. The protocol's payloads
        // (C source, hex snapshots) are ASCII, so the BMP-only handling
        // (no surrogate pairing) is deliberate simplicity — a lone
        // surrogate decodes to its replacement-free raw bytes.
        if (End - P < 4)
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = *P++;
          Code <<= 4;
          if (H >= '0' && H <= '9') Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f') Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F') Code |= static_cast<unsigned>(H - 'A' + 10);
          else return fail("bad \\u escape digit");
        }
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xc0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3f));
        } else {
          Out += static_cast<char>(0xe0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3f));
          Out += static_cast<char>(0x80 | (Code & 0x3f));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    if (P == End)
      return fail("unterminated string");
    ++P; // closing quote
    return true;
  }

  bool parseValue(Value &Out) {
    if (++Depth > MaxDepth)
      return fail("nesting too deep");
    skipWs();
    if (P == End)
      return fail("unexpected end of input");
    bool Ok = false;
    switch (*P) {
    case '{': Ok = parseObject(Out); break;
    case '[': Ok = parseArray(Out); break;
    case '"':
      Out.K = Value::Kind::String;
      Ok = parseString(Out.Str);
      break;
    case 't':
      Out.K = Value::Kind::Bool;
      Out.B = true;
      Ok = literal("true");
      break;
    case 'f':
      Out.K = Value::Kind::Bool;
      Out.B = false;
      Ok = literal("false");
      break;
    case 'n':
      Out.K = Value::Kind::Null;
      Ok = literal("null");
      break;
    default:
      Ok = parseNumber(Out);
      break;
    }
    --Depth;
    return Ok;
  }

  bool parseNumber(Value &Out) {
    const char *Start = P;
    if (P != End && *P == '-')
      ++P;
    while (P != End && (std::isdigit(static_cast<unsigned char>(*P)) ||
                        *P == '.' || *P == 'e' || *P == 'E' || *P == '+' ||
                        *P == '-'))
      ++P;
    if (P == Start)
      return fail("expected value");
    Out.K = Value::Kind::Number;
    Out.Str.assign(Start, P);
    char *NumEnd = nullptr;
    Out.Num = std::strtod(Out.Str.c_str(), &NumEnd);
    if (NumEnd != Out.Str.c_str() + Out.Str.size())
      return fail("malformed number");
    return true;
  }

  bool parseObject(Value &Out) {
    Out.K = Value::Kind::Object;
    ++P; // '{'
    skipWs();
    if (P != End && *P == '}') {
      ++P;
      return true;
    }
    for (;;) {
      skipWs();
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (P == End || *P != ':')
        return fail("expected ':' in object");
      ++P;
      Value Member;
      if (!parseValue(Member))
        return false;
      Out.Obj.emplace_back(std::move(Key), std::move(Member));
      skipWs();
      if (P != End && *P == ',') {
        ++P;
        continue;
      }
      if (P != End && *P == '}') {
        ++P;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parseArray(Value &Out) {
    Out.K = Value::Kind::Array;
    ++P; // '['
    skipWs();
    if (P != End && *P == ']') {
      ++P;
      return true;
    }
    for (;;) {
      Value Element;
      if (!parseValue(Element))
        return false;
      Out.Arr.push_back(std::move(Element));
      skipWs();
      if (P != End && *P == ',') {
        ++P;
        continue;
      }
      if (P != End && *P == ']') {
        ++P;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }
};

} // namespace

bool json::parse(const std::string &Text, Value &Out, std::string &Err) {
  Err.clear();
  Parser Ps{Text.data(), Text.data() + Text.size(), Err};
  Value V;
  if (!Ps.parseValue(V))
    return false;
  Ps.skipWs();
  if (Ps.P != Ps.End) {
    Err = "trailing characters after JSON value";
    return false;
  }
  Out = std::move(V);
  return true;
}

std::string json::quoted(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"': Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\n': Out += "\\n"; break;
    case '\r': Out += "\\r"; break;
    case '\t': Out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
      break;
    }
  }
  Out += '"';
  return Out;
}

json::ObjectWriter &json::ObjectWriter::raw(const std::string &Key,
                                            const std::string &ValueText) {
  if (!First)
    Buf += ',';
  First = false;
  Buf += quoted(Key);
  Buf += ':';
  Buf += ValueText;
  return *this;
}

json::ObjectWriter &json::ObjectWriter::field(const std::string &Key,
                                              double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return raw(Key, Buf);
}
