//===- CheckpointStore.cpp - Durable crash-recoverable checkpoint journal -===//

#include "service/CheckpointStore.h"

#include "support/FaultInject.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define COVERME_CKPTSTORE_POSIX 1
#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define COVERME_CKPTSTORE_POSIX 0
#endif

using namespace coverme;

//===----------------------------------------------------------------------===//
// CRC-32 and the journal frame
//===----------------------------------------------------------------------===//

uint32_t coverme::crc32(const uint8_t *Data, size_t Size) {
  // IEEE 802.3 reflected polynomial, nibble-at-a-time: small table, no
  // global init order questions, fast enough for journal-sized payloads.
  static const uint32_t Nibble[16] = {
      0x00000000, 0x1db71064, 0x3b6e20c8, 0x26d930ac, 0x76dc4190, 0x6b6b51f4,
      0x4db26158, 0x5005713c, 0xedb88320, 0xf00f9344, 0xd6d6a3e8, 0xcb61b38c,
      0x9b64c2b0, 0x86d3d2d4, 0xa00ae278, 0xbdbdf21c};
  uint32_t Crc = 0xffffffffu;
  for (size_t I = 0; I < Size; ++I) {
    Crc ^= Data[I];
    Crc = (Crc >> 4) ^ Nibble[Crc & 0xf];
    Crc = (Crc >> 4) ^ Nibble[Crc & 0xf];
  }
  return ~Crc;
}

namespace {

const uint8_t FrameMagic[8] = {'C', 'V', 'M', 'E', 'J', 'R', 'N', 'L'};
constexpr uint32_t FrameVersion = 1;
/// magic + version + generation + metaLen + snapLen + crc.
constexpr size_t FrameHeaderBytes = 8 + 4 + 8 + 4 + 4 + 4;

void putU32(std::vector<uint8_t> &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void putU64(std::vector<uint8_t> &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

uint32_t getU32(const uint8_t *P) {
  uint32_t V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(P[I]) << (8 * I);
  return V;
}

uint64_t getU64(const uint8_t *P) {
  uint64_t V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(P[I]) << (8 * I);
  return V;
}

std::vector<uint8_t> encodeFrame(uint64_t Generation, const std::string &Meta,
                                 const std::vector<uint8_t> &Snapshot) {
  std::vector<uint8_t> Out;
  Out.reserve(FrameHeaderBytes + Meta.size() + Snapshot.size());
  Out.insert(Out.end(), FrameMagic, FrameMagic + sizeof(FrameMagic));
  putU32(Out, FrameVersion);
  putU64(Out, Generation);
  putU32(Out, static_cast<uint32_t>(Meta.size()));
  putU32(Out, static_cast<uint32_t>(Snapshot.size()));
  // CRC covers metadata and snapshot together: a frame whose payload
  // halves were torn independently cannot pass by luck of one half.
  std::vector<uint8_t> Payload;
  Payload.reserve(Meta.size() + Snapshot.size());
  Payload.insert(Payload.end(), Meta.begin(), Meta.end());
  Payload.insert(Payload.end(), Snapshot.begin(), Snapshot.end());
  putU32(Out, crc32(Payload.data(), Payload.size()));
  Out.insert(Out.end(), Payload.begin(), Payload.end());
  return Out;
}

bool validKey(const std::string &Key) {
  if (Key.empty() || Key.size() > 128)
    return false;
  for (char C : Key) {
    const bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
                    (C >= '0' && C <= '9') || C == '-' || C == '_';
    if (!Ok)
      return false; // no '.', no '/': keys become file-name stems
  }
  return true;
}

/// Parses `<key>.gen<N>.ckpt`; false for every other name.
bool parseEntryName(const std::string &Name, std::string &Key,
                    uint64_t &Generation) {
  const std::string Suffix = ".ckpt";
  if (Name.size() <= Suffix.size() ||
      Name.compare(Name.size() - Suffix.size(), Suffix.size(), Suffix) != 0)
    return false;
  const std::string Stem = Name.substr(0, Name.size() - Suffix.size());
  size_t Dot = Stem.rfind(".gen");
  if (Dot == std::string::npos || Dot == 0)
    return false;
  const std::string Digits = Stem.substr(Dot + 4);
  if (Digits.empty())
    return false;
  uint64_t G = 0;
  for (char C : Digits) {
    if (C < '0' || C > '9')
      return false;
    G = G * 10 + static_cast<uint64_t>(C - '0');
  }
  Key = Stem.substr(0, Dot);
  Generation = G;
  return validKey(Key);
}

#if COVERME_CKPTSTORE_POSIX

bool fsyncPath(const std::string &Path, bool Directory) {
  int Fd = ::open(Path.c_str(), Directory ? (O_RDONLY | O_DIRECTORY)
                                          : O_RDONLY);
  if (Fd < 0)
    return false;
  int Rc;
  do
    Rc = ::fsync(Fd);
  while (Rc != 0 && errno == EINTR);
  ::close(Fd);
  return Rc == 0;
}

bool writeAll(int Fd, const uint8_t *Data, size_t Size) {
  size_t Off = 0;
  while (Off < Size) {
    ssize_t N = ::write(Fd, Data + Off, Size - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

std::vector<std::string> listDir(const std::string &Dir) {
  std::vector<std::string> Names;
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return Names;
  while (dirent *E = ::readdir(D)) {
    if (std::strcmp(E->d_name, ".") == 0 || std::strcmp(E->d_name, "..") == 0)
      continue;
    Names.emplace_back(E->d_name);
  }
  ::closedir(D);
  std::sort(Names.begin(), Names.end());
  return Names;
}

#endif // COVERME_CKPTSTORE_POSIX

} // namespace

//===----------------------------------------------------------------------===//
// CheckpointStore
//===----------------------------------------------------------------------===//

CheckpointStore::CheckpointStore(std::string Dir) : Dir(std::move(Dir)) {
#if COVERME_CKPTSTORE_POSIX
  if (this->Dir.empty())
    return;
  struct stat St{};
  if (::stat(this->Dir.c_str(), &St) == 0) {
    if (!S_ISDIR(St.st_mode))
      return;
  } else if (::mkdir(this->Dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return;
  }
  Usable = true;
  // Seed the serial and generation counters past everything on disk so a
  // restarted daemon never reuses a live key or regresses a generation.
  for (const std::string &Name : listDir(this->Dir)) {
    std::string Key;
    uint64_t Generation = 0;
    if (!parseEntryName(Name, Key, Generation))
      continue;
    NextGeneration = std::max(NextGeneration, Generation + 1);
    if (Key.compare(0, 3, "job") == 0) {
      uint64_t Serial = 0;
      bool Numeric = Key.size() > 3;
      for (size_t I = 3; I < Key.size(); ++I) {
        if (Key[I] < '0' || Key[I] > '9') {
          Numeric = false;
          break;
        }
        Serial = Serial * 10 + static_cast<uint64_t>(Key[I] - '0');
      }
      if (Numeric)
        NextSerial = std::max(NextSerial, Serial + 1);
    }
  }
#endif
}

std::string CheckpointStore::allocateKey() {
  std::lock_guard<std::mutex> Lock(Mutex);
  return "job" + std::to_string(NextSerial++);
}

std::vector<CheckpointStore::Gen>
CheckpointStore::generationsLocked(const std::string &Key) const {
  std::vector<Gen> Gens;
#if COVERME_CKPTSTORE_POSIX
  for (const std::string &Name : listDir(Dir)) {
    std::string K;
    uint64_t Generation = 0;
    if (parseEntryName(Name, K, Generation) && K == Key)
      Gens.push_back({Generation, Name});
  }
  std::sort(Gens.begin(), Gens.end(),
            [](const Gen &A, const Gen &B) { return A.Generation > B.Generation; });
#else
  (void)Key;
#endif
  return Gens;
}

bool CheckpointStore::readFrameLocked(const std::string &FileName, Entry &Out,
                                      std::string &Err) const {
#if COVERME_CKPTSTORE_POSIX
  const std::string Path = Dir + "/" + FileName;
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0) {
    Err = "cannot open journal entry";
    return false;
  }
  std::vector<uint8_t> Bytes;
  uint8_t Chunk[1 << 16];
  for (;;) {
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      ::close(Fd);
      Err = "read error on journal entry";
      return false;
    }
    if (N == 0)
      break;
    Bytes.insert(Bytes.end(), Chunk, Chunk + N);
  }
  ::close(Fd);

  if (Bytes.size() < FrameHeaderBytes ||
      std::memcmp(Bytes.data(), FrameMagic, sizeof(FrameMagic)) != 0) {
    Err = "torn or foreign journal frame (bad magic/short header)";
    return false;
  }
  const uint8_t *P = Bytes.data() + sizeof(FrameMagic);
  if (getU32(P) != FrameVersion) {
    Err = "unsupported journal frame version";
    return false;
  }
  const uint64_t Generation = getU64(P + 4);
  const uint32_t MetaLen = getU32(P + 12);
  const uint32_t SnapLen = getU32(P + 16);
  const uint32_t Crc = getU32(P + 20);
  if (Bytes.size() != FrameHeaderBytes + static_cast<uint64_t>(MetaLen) +
                          SnapLen) {
    Err = "torn journal frame (length disagrees with header)";
    return false;
  }
  const uint8_t *Payload = Bytes.data() + FrameHeaderBytes;
  if (crc32(Payload, MetaLen + static_cast<size_t>(SnapLen)) != Crc) {
    Err = "corrupt journal frame (CRC mismatch)";
    return false;
  }
  Out.Generation = Generation;
  Out.Meta.assign(reinterpret_cast<const char *>(Payload), MetaLen);
  Out.Snapshot.assign(Payload + MetaLen, Payload + MetaLen + SnapLen);
  return true;
#else
  (void)FileName;
  (void)Out;
  Err = "checkpoint store unsupported on this platform";
  return false;
#endif
}

void CheckpointStore::quarantineLocked(const std::string &FileName) {
#if COVERME_CKPTSTORE_POSIX
  // Keep the evidence under a name no scan ever treats as live. A rename
  // failure leaves the bad file in place; it will fail validation again
  // next scan, which is safe — just noisier.
  const std::string From = Dir + "/" + FileName;
  const std::string To = From + ".corrupt";
  if (::rename(From.c_str(), To.c_str()) == 0)
    ++Quarantined;
#else
  (void)FileName;
#endif
}

void CheckpointStore::removeStaleLocked(const std::string &Key,
                                        uint64_t KeepNewest,
                                        uint64_t KeepPrevious) {
#if COVERME_CKPTSTORE_POSIX
  for (const Gen &G : generationsLocked(Key))
    if (G.Generation != KeepNewest && G.Generation != KeepPrevious)
      ::unlink((Dir + "/" + G.FileName).c_str());
#else
  (void)Key;
  (void)KeepNewest;
  (void)KeepPrevious;
#endif
}

bool CheckpointStore::save(const std::string &Key, const std::string &Meta,
                           const std::vector<uint8_t> &Snapshot,
                           std::string &Err) {
#if COVERME_CKPTSTORE_POSIX
  std::lock_guard<std::mutex> Lock(Mutex);
  if (!Usable) {
    Err = "checkpoint store directory is not usable: " + Dir;
    return false;
  }
  if (!validKey(Key)) {
    Err = "invalid journal key";
    return false;
  }

  const uint64_t Generation = NextGeneration++;
  const std::vector<uint8_t> Frame = encodeFrame(Generation, Meta, Snapshot);
  const std::string TmpPath = Dir + "/" + Key + ".tmp";
  const std::string FinalName =
      Key + ".gen" + std::to_string(Generation) + ".ckpt";

  // Step 1: write the frame to the temp file. The injected failure tears
  // the write mid-frame — exactly the state a power cut leaves — and
  // returns without cleanup, because a real crash cleans nothing either;
  // recovery quarantines the orphan.
  int Fd = ::open(TmpPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0) {
    Err = "cannot create journal temp file";
    return false;
  }
  if (faultinject::shouldFail("ckpt.write")) {
    (void)writeAll(Fd, Frame.data(), Frame.size() / 2);
    ::close(Fd);
    Err = "injected fault: torn checkpoint write";
    return false;
  }
  if (!writeAll(Fd, Frame.data(), Frame.size())) {
    ::close(Fd);
    Err = "short write on journal temp file";
    return false;
  }

  // Step 2: fsync the file — the frame must be durable before the rename
  // can make it the newest generation.
  if (faultinject::shouldFail("ckpt.fsync")) {
    ::close(Fd);
    Err = "injected fault: checkpoint fsync failed";
    return false;
  }
  int Rc;
  do
    Rc = ::fsync(Fd);
  while (Rc != 0 && errno == EINTR);
  ::close(Fd);
  if (Rc != 0) {
    Err = "fsync failed on journal temp file";
    return false;
  }

  // Step 3: atomic rename onto the generation name. Until this returns,
  // the previous generation is the newest valid entry — a crash (or the
  // injected fault) here loses only the new frame, never the old one.
  if (faultinject::shouldFail("ckpt.rename")) {
    Err = "injected fault: crash between checkpoint write and rename";
    return false;
  }
  if (::rename(TmpPath.c_str(), (Dir + "/" + FinalName).c_str()) != 0) {
    Err = "rename failed on journal entry";
    return false;
  }

  // Step 4: fsync the directory so the rename itself is durable.
  (void)fsyncPath(Dir, /*Directory=*/true);

  // Retention: newest plus one predecessor; everything older goes.
  uint64_t Previous = 0;
  for (const Gen &G : generationsLocked(Key))
    if (G.Generation != Generation)
      Previous = std::max(Previous, G.Generation);
  removeStaleLocked(Key, Generation, Previous);
  return true;
#else
  (void)Key;
  (void)Meta;
  (void)Snapshot;
  Err = "checkpoint store unsupported on this platform";
  return false;
#endif
}

bool CheckpointStore::load(const std::string &Key, Entry &Out,
                           std::string &Err) {
  std::lock_guard<std::mutex> Lock(Mutex);
#if COVERME_CKPTSTORE_POSIX
  if (!Usable) {
    Err = "checkpoint store directory is not usable: " + Dir;
    return false;
  }
  // An orphaned temp means a save never completed; quarantine it so the
  // evidence survives but no future scan mistakes it for progress.
  struct stat St{};
  if (::stat((Dir + "/" + Key + ".tmp").c_str(), &St) == 0)
    quarantineLocked(Key + ".tmp");

  for (const Gen &G : generationsLocked(Key)) {
    Entry E;
    E.Key = Key;
    std::string FrameErr;
    if (readFrameLocked(G.FileName, E, FrameErr)) {
      Out = std::move(E);
      return true;
    }
    quarantineLocked(G.FileName);
  }
  Err = "no valid journal entry for key " + Key;
  return false;
#else
  (void)Key;
  (void)Out;
  Err = "checkpoint store unsupported on this platform";
  return false;
#endif
}

std::vector<CheckpointStore::Entry> CheckpointStore::loadAll() {
  std::vector<Entry> Entries;
#if COVERME_CKPTSTORE_POSIX
  std::vector<std::string> Keys;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (!Usable)
      return Entries;
    for (const std::string &Name : listDir(Dir)) {
      std::string Key;
      uint64_t Generation = 0;
      if (parseEntryName(Name, Key, Generation)) {
        if (std::find(Keys.begin(), Keys.end(), Key) == Keys.end())
          Keys.push_back(Key);
      } else if (Name.size() > 4 &&
                 Name.compare(Name.size() - 4, 4, ".tmp") == 0) {
        quarantineLocked(Name);
      }
    }
  }
  std::sort(Keys.begin(), Keys.end());
  for (const std::string &Key : Keys) {
    Entry E;
    std::string Err;
    if (load(Key, E, Err))
      Entries.push_back(std::move(E));
  }
#endif
  return Entries;
}

void CheckpointStore::remove(const std::string &Key) {
#if COVERME_CKPTSTORE_POSIX
  std::lock_guard<std::mutex> Lock(Mutex);
  if (!Usable || !validKey(Key))
    return;
  for (const Gen &G : generationsLocked(Key))
    ::unlink((Dir + "/" + G.FileName).c_str());
  ::unlink((Dir + "/" + Key + ".tmp").c_str());
  (void)fsyncPath(Dir, /*Directory=*/true);
#else
  (void)Key;
#endif
}

unsigned CheckpointStore::quarantinedCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Quarantined;
}
