//===- Session.cpp - Persistent campaign service sessions -----------------===//

#include "service/Session.h"

#include "core/Checkpoint.h"
#include "service/CheckpointStore.h"
#include "service/JobWire.h"
#include "support/FaultInject.h"
#include "support/Timer.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <utility>

using namespace coverme;

//===----------------------------------------------------------------------===//
// Compiled-unit hashing
//===----------------------------------------------------------------------===//

namespace {

constexpr uint64_t FnvOffset = 1469598103934665603ull;
constexpr uint64_t FnvPrime = 1099511628211ull;

void hashBytes(uint64_t &H, const void *Data, size_t N) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  for (size_t I = 0; I < N; ++I) {
    H ^= P[I];
    H *= FnvPrime;
  }
}

void hashU64(uint64_t &H, uint64_t V) {
  uint8_t Bytes[8];
  for (int I = 0; I < 8; ++I)
    Bytes[I] = static_cast<uint8_t>(V >> (8 * I));
  hashBytes(H, Bytes, sizeof(Bytes));
}

void hashString(uint64_t &H, const std::string &S) {
  // Length-prefixed so ("ab","c") and ("a","bc") cannot collide.
  hashU64(H, S.size());
  hashBytes(H, S.data(), S.size());
}

} // namespace

uint64_t coverme::compiledUnitHash(const std::string &Source,
                                   const std::string &Entry,
                                   const lang::SourceProgramOptions &Opts) {
  uint64_t H = FnvOffset;
  hashString(H, Source);
  hashString(H, Entry);
  // Every SourceProgramOptions field, enumerated explicitly: adding a field
  // there without extending this hash would alias distinct compiled units.
  hashU64(H, Opts.Interp.MaxSteps);
  hashU64(H, Opts.Interp.MaxCallDepth);
  hashU64(H, Opts.Interp.MaxStackBytes);
  hashU64(H, static_cast<uint64_t>(Opts.Interp.Dispatch));
  hashU64(H, static_cast<uint64_t>(Opts.Interp.Simd));
  hashU64(H, Opts.TotalLines);
  hashU64(H, static_cast<uint64_t>(Opts.Tier));
  hashU64(H, Opts.Fuse ? 1 : 0);
  return H;
}

//===----------------------------------------------------------------------===//
// CompiledUnitCache
//===----------------------------------------------------------------------===//

std::shared_ptr<const lang::SourceProgram>
CompiledUnitCache::get(const std::string &Source, const std::string &Entry,
                       const lang::SourceProgramOptions &Opts, bool *WasHit,
                       double *CompileSeconds, std::string *Error) {
  const uint64_t Hash = compiledUnitHash(Source, Entry, Opts);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Units.find(Hash);
    if (It != Units.end()) {
      ++S.Hits;
      if (WasHit)
        *WasHit = true;
      if (CompileSeconds)
        *CompileSeconds = 0.0;
      return It->second;
    }
  }

  // Compile outside the lock so distinct units build concurrently. Two
  // threads racing on the same hash both compile; the loser's (identical)
  // unit is dropped below.
  WallTimer Timer;
  auto Unit = std::make_shared<lang::SourceProgram>(
      lang::compileSourceProgram(Source, Entry, Opts));
  const double Seconds = Timer.seconds();

  std::lock_guard<std::mutex> Lock(Mutex);
  ++S.Misses;
  S.CompileSeconds += Seconds;
  if (WasHit)
    *WasHit = false;
  if (CompileSeconds)
    *CompileSeconds = Seconds;
  if (!Unit->success()) {
    ++S.FailedCompiles;
    if (Error)
      *Error = Unit->diagnosticsText();
    return nullptr;
  }
  // Fault point `cache.insert`: a failed insertion (think allocation
  // pressure in the cache map) costs only amortization — the freshly
  // compiled unit is returned and the job runs; the next submission of
  // the same subject just compiles again.
  std::shared_ptr<const lang::SourceProgram> Shared(std::move(Unit));
  if (faultinject::shouldFail("cache.insert")) {
    ++S.InsertFailures;
    return Shared;
  }
  auto [It, Inserted] = Units.emplace(Hash, std::move(Shared));
  (void)Inserted;
  return It->second;
}

CompiledUnitCache::Stats CompiledUnitCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return S;
}

size_t CompiledUnitCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Units.size();
}

void CompiledUnitCache::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Units.clear();
}

//===----------------------------------------------------------------------===//
// Session
//===----------------------------------------------------------------------===//

const char *coverme::jobStateName(JobState State) {
  switch (State) {
  case JobState::Queued:
    return "queued";
  case JobState::Compiling:
    return "compiling";
  case JobState::Running:
    return "running";
  case JobState::Suspended:
    return "suspended";
  case JobState::Done:
    return "done";
  case JobState::Failed:
    return "failed";
  case JobState::Cancelled:
    return "cancelled";
  }
  return "unknown";
}

/// All mutable fields are guarded by the session mutex; the worker running
/// the job drops the lock only around compile and Engine->run().
struct Session::Job {
  uint64_t Id = 0;
  JobRequest Req;
  JobProgressFn Progress;
  uint64_t UnitHash = 0;

  JobState State = JobState::Queued;
  std::string Error;
  bool CacheHit = false;
  double CompileSeconds = 0.0;

  /// Journal identity; both immutable after creation (safe to read
  /// without the session lock).
  std::string StoreKey;
  std::string MetaJson;
  unsigned CheckpointsSaved = 0;
  std::string StoreError;

  bool SuspendWanted = false; ///< checkpoint() asked; cleared on suspension.
  bool CancelWanted = false;

  /// Snapshot to load before running (submitResume / in-place resume).
  std::unique_ptr<CampaignSnapshot> Pending;
  /// Snapshot captured at the last suspension; present iff Suspended.
  std::unique_ptr<CampaignSnapshot> Snap;

  /// Rounds committed before this session first observed the job (the
  /// snapshot prefix of a submitResume job) and the saturation level then.
  unsigned BaseRounds = 0;
  unsigned BaseSaturated = 0;
  /// Commit-ordered round events observed by this session.
  std::vector<RoundLog> Rounds;

  CampaignResult Result;
  bool HasResult = false;

  /// Unit precedes Engine: the engine references Unit->Prog, so it must be
  /// destroyed first.
  std::shared_ptr<const lang::SourceProgram> Unit;
  std::unique_ptr<CampaignEngine> Engine; ///< Non-null only while Running.
};

Session::Session(SessionOptions Opts) : Opts(Opts), Pool(Opts.Workers) {}

Session::~Session() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
    for (auto &Entry : Jobs) {
      Entry.second->CancelWanted = true;
      if (Entry.second->Engine)
        Entry.second->Engine->requestSuspend();
    }
    Cv.notify_all();
  }
  // Pool is the last member, so its destructor (which drains the queue)
  // runs before any other member dies; this wait only shortens the window
  // in which a worker could observe a partially destroyed session.
  Pool.wait();
}

std::shared_ptr<Session::Job> Session::findLocked(uint64_t Id) const {
  auto It = Jobs.find(Id);
  return It == Jobs.end() ? nullptr : It->second;
}

void Session::enqueueLocked(const std::shared_ptr<Job> &J) {
  Pool.submit([this, J] { runJob(J); });
}

uint64_t Session::enqueueNewJobLocked(JobRequest Req, JobProgressFn Progress,
                                      std::unique_ptr<CampaignSnapshot> Pending,
                                      std::string StoreKey) {
  auto J = std::make_shared<Job>();
  J->Id = NextId++;
  J->Req = std::move(Req);
  J->Progress = std::move(Progress);
  J->UnitHash = compiledUnitHash(J->Req.Source, J->Req.Entry, J->Req.Compile);
  J->StoreKey = std::move(StoreKey);
  if (!J->StoreKey.empty())
    J->MetaJson = jobRequestToJson(J->Req);
  if (Pending) {
    J->BaseRounds = Pending->StartsUsed;
    J->BaseSaturated =
        Pending->Rounds.empty() ? 0 : Pending->Rounds.back().SaturatedArms;
    J->Pending = std::move(Pending);
  }
  Jobs.emplace(J->Id, J);
  enqueueLocked(J);
  return J->Id;
}

uint64_t Session::submit(JobRequest Req, JobProgressFn Progress) {
  // Journal the request before the job can run: a crash any time after
  // submit() returns finds at least the fresh-start record on disk.
  std::string StoreKey, StoreErr;
  if (Opts.Store) {
    StoreKey = Opts.Store->allocateKey();
    std::string Err;
    if (!Opts.Store->save(StoreKey, jobRequestToJson(Req), {}, Err))
      StoreErr = Err;
  }
  std::lock_guard<std::mutex> Lock(Mutex);
  if (ShuttingDown)
    return 0;
  uint64_t Id = enqueueNewJobLocked(std::move(Req), std::move(Progress),
                                    nullptr, std::move(StoreKey));
  if (Id && !StoreErr.empty())
    Jobs[Id]->StoreError = StoreErr;
  return Id;
}

uint64_t Session::submitResume(JobRequest Req,
                               const std::vector<uint8_t> &Snapshot,
                               std::string &Err, JobProgressFn Progress) {
  auto Snap = std::make_unique<CampaignSnapshot>();
  if (!decodeSnapshot(Snapshot, *Snap, Err))
    return 0;
  // Journal the provided snapshot as the job's recovery point — a crash
  // before the first in-process checkpoint resumes from here.
  std::string StoreKey, StoreErr;
  if (Opts.Store) {
    StoreKey = Opts.Store->allocateKey();
    std::string SaveErr;
    if (!Opts.Store->save(StoreKey, jobRequestToJson(Req), Snapshot, SaveErr))
      StoreErr = SaveErr;
  }
  std::lock_guard<std::mutex> Lock(Mutex);
  if (ShuttingDown) {
    Err = "session is shutting down";
    return 0;
  }
  uint64_t Id = enqueueNewJobLocked(std::move(Req), std::move(Progress),
                                    std::move(Snap), std::move(StoreKey));
  if (Id && !StoreErr.empty())
    Jobs[Id]->StoreError = StoreErr;
  return Id;
}

std::vector<uint64_t> Session::recoverFromStore() {
  std::vector<uint64_t> Ids;
  CheckpointStore *Store = Opts.Store;
  if (!Store || !Store->ok())
    return Ids;
  for (CheckpointStore::Entry &E : Store->loadAll()) {
    JobRequest Req;
    std::string Err;
    if (!jobRequestFromJson(E.Meta, Req, Err))
      continue; // foreign or hand-damaged metadata; entry left as evidence
    std::unique_ptr<CampaignSnapshot> Pending;
    if (!E.Snapshot.empty()) {
      Pending = std::make_unique<CampaignSnapshot>();
      if (!decodeSnapshot(E.Snapshot, *Pending, Err))
        continue; // CRC passed but the payload is no snapshot: leave it
    }
    std::lock_guard<std::mutex> Lock(Mutex);
    if (ShuttingDown)
      break;
    // The recovered job keeps its journal key: its future checkpoints
    // overwrite the same entry, and completion retires it.
    if (uint64_t Id = enqueueNewJobLocked(std::move(Req), nullptr,
                                          std::move(Pending), E.Key))
      Ids.push_back(Id);
  }
  return Ids;
}

bool Session::checkpoint(uint64_t Id, std::vector<uint8_t> &Out,
                         std::string &Err) {
  std::unique_lock<std::mutex> Lock(Mutex);
  auto J = findLocked(Id);
  if (!J) {
    Err = "unknown job";
    return false;
  }
  for (;;) {
    switch (J->State) {
    case JobState::Suspended:
      Out = encodeSnapshot(*J->Snap);
      return true;
    case JobState::Done:
      Err = "job completed before the checkpoint landed";
      return false;
    case JobState::Failed:
      Err = "job failed: " + J->Error;
      return false;
    case JobState::Cancelled:
      Err = "job was cancelled";
      return false;
    case JobState::Queued:
    case JobState::Compiling:
      // The worker suspends the engine before its first round commits.
      J->SuspendWanted = true;
      break;
    case JobState::Running:
      J->SuspendWanted = true;
      if (J->Engine)
        J->Engine->requestSuspend();
      break;
    }
    Cv.wait(Lock);
  }
}

bool Session::resume(uint64_t Id, std::string &Err) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (ShuttingDown) {
    Err = "session is shutting down";
    return false;
  }
  auto J = findLocked(Id);
  if (!J) {
    Err = "unknown job";
    return false;
  }
  if (J->State != JobState::Suspended) {
    Err = std::string("job is ") + jobStateName(J->State) + ", not suspended";
    return false;
  }
  J->Pending = std::move(J->Snap);
  J->State = JobState::Queued;
  J->HasResult = false;
  enqueueLocked(J);
  Cv.notify_all();
  return true;
}

bool Session::cancel(uint64_t Id) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto J = findLocked(Id);
  if (!J)
    return false;
  switch (J->State) {
  case JobState::Done:
  case JobState::Failed:
  case JobState::Cancelled:
    return false;
  case JobState::Suspended:
    // Nothing is running; retire the job in place, keeping its committed
    // prefix result available. An explicit cancel means nothing is left
    // to recover, so the journal entry goes too.
    J->Snap.reset();
    J->State = JobState::Cancelled;
    if (Opts.Store && !J->StoreKey.empty())
      Opts.Store->remove(J->StoreKey);
    Cv.notify_all();
    return true;
  case JobState::Queued:
  case JobState::Compiling:
    J->CancelWanted = true;
    return true;
  case JobState::Running:
    J->CancelWanted = true;
    if (J->Engine)
      J->Engine->requestSuspend();
    return true;
  }
  return false;
}

bool Session::wait(uint64_t Id) {
  return waitFor(Id, -1.0) == WaitOutcome::Terminal;
}

Session::WaitOutcome Session::waitFor(uint64_t Id, double TimeoutSeconds) {
  std::unique_lock<std::mutex> Lock(Mutex);
  auto J = findLocked(Id);
  if (!J)
    return WaitOutcome::Unknown;
  auto Terminal = [&] {
    switch (J->State) {
    case JobState::Suspended:
    case JobState::Done:
    case JobState::Failed:
    case JobState::Cancelled:
      return true;
    default:
      return false;
    }
  };
  if (TimeoutSeconds < 0.0) {
    Cv.wait(Lock, Terminal);
    return WaitOutcome::Terminal;
  }
  return Cv.wait_for(Lock, std::chrono::duration<double>(TimeoutSeconds),
                     Terminal)
             ? WaitOutcome::Terminal
             : WaitOutcome::TimedOut;
}

void Session::statusLocked(const Job &J, JobStatus &Out) const {
  Out.Id = J.Id;
  Out.State = J.State;
  Out.CacheHit = J.CacheHit;
  Out.CompileSeconds = J.CompileSeconds;
  Out.UnitHash = J.UnitHash;
  Out.RoundsCommitted = J.BaseRounds + static_cast<unsigned>(J.Rounds.size());
  Out.SaturatedArms =
      J.Rounds.empty() ? J.BaseSaturated : J.Rounds.back().SaturatedArms;
  Out.HasResult = J.HasResult;
  Out.Error = J.Error;
  Out.Stop = J.HasResult ? J.Result.Stop : StopReason::None;
  Out.StoreKey = J.StoreKey;
  Out.CheckpointsSaved = J.CheckpointsSaved;
  Out.StoreError = J.StoreError;
}

bool Session::status(uint64_t Id, JobStatus &Out) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto J = findLocked(Id);
  if (!J)
    return false;
  statusLocked(*J, Out);
  return true;
}

std::vector<JobStatus> Session::jobs() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<JobStatus> Out;
  Out.reserve(Jobs.size());
  for (const auto &Entry : Jobs) {
    JobStatus St;
    statusLocked(*Entry.second, St);
    Out.push_back(std::move(St));
  }
  std::sort(Out.begin(), Out.end(),
            [](const JobStatus &A, const JobStatus &B) { return A.Id < B.Id; });
  return Out;
}

bool Session::result(uint64_t Id, CampaignResult &Out) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto J = findLocked(Id);
  if (!J || !J->HasResult)
    return false;
  Out = J->Result;
  return true;
}

std::vector<RoundLog> Session::progress(uint64_t Id, size_t From) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto J = findLocked(Id);
  if (!J || From >= J->Rounds.size())
    return {};
  return std::vector<RoundLog>(J->Rounds.begin() +
                                   static_cast<ptrdiff_t>(From),
                               J->Rounds.end());
}

void Session::runJob(const std::shared_ptr<Job> &J) {
  std::unique_lock<std::mutex> Lock(Mutex);
  if (J->CancelWanted) {
    J->State = JobState::Cancelled;
    const bool RetireEntry = !ShuttingDown && Opts.Store &&
                             !J->StoreKey.empty();
    Cv.notify_all();
    Lock.unlock();
    if (RetireEntry)
      Opts.Store->remove(J->StoreKey);
    return;
  }
  J->State = JobState::Compiling;
  Cv.notify_all();
  Lock.unlock();

  bool Hit = false;
  double CompileSeconds = 0.0;
  std::string CompileErr;
  auto Unit = Cache.get(J->Req.Source, J->Req.Entry, J->Req.Compile, &Hit,
                        &CompileSeconds, &CompileErr);

  Lock.lock();
  J->CacheHit = Hit;
  J->CompileSeconds = CompileSeconds;
  if (!Unit) {
    J->State = JobState::Failed;
    J->Error = CompileErr.empty() ? "compile failed" : CompileErr;
    Cv.notify_all();
    return;
  }
  J->Unit = std::move(Unit);

  CoverMeOptions Campaign = J->Req.Campaign;
  // The engine fires OnRound under its commit lock; keep the body to a
  // locked push plus the user callback. Capturing the raw Job pointer (not
  // the shared_ptr) avoids a Job -> Engine -> Options -> Job ownership
  // cycle; runJob's own shared_ptr pins the job for the engine's lifetime.
  Job *JP = J.get();
  JobProgressFn UserProgress = J->Progress;
  const uint64_t Id = J->Id;
  Campaign.OnRound = [this, JP, Id, UserProgress](const RoundLog &Log) {
    {
      std::lock_guard<std::mutex> G(Mutex);
      JP->Rounds.push_back(Log);
      Cv.notify_all();
    }
    if (UserProgress)
      UserProgress(Id, Log);
  };
  if (J->Pending && Campaign.SuspendAfterRounds &&
      Campaign.SuspendAfterRounds <= J->Pending->StartsUsed)
    // The suspension point already fired in the committed prefix; keeping
    // it would re-suspend before any new round commits.
    Campaign.SuspendAfterRounds = 0;

  // Durable checkpoint cadence for journaled jobs: the job's own value
  // wins, the session default fills in. The save happens on the engine's
  // commit path, so every checkpoint is a committed prefix; a failed save
  // is recorded and the campaign keeps running on the stale recovery
  // point.
  CheckpointStore *Store = Opts.Store;
  const bool Journaled = Store && !J->StoreKey.empty();
  if (Journaled) {
    if (!Campaign.CheckpointEveryRounds)
      Campaign.CheckpointEveryRounds = Opts.CheckpointEveryRounds;
    if (Campaign.CheckpointEveryRounds) {
      const std::string Key = J->StoreKey;
      const std::string Meta = J->MetaJson;
      Campaign.OnCheckpoint = [this, JP, Store, Key,
                               Meta](const CampaignSnapshot &S) {
        std::string Err;
        const bool Saved = Store->save(Key, Meta, encodeSnapshot(S), Err);
        std::lock_guard<std::mutex> G(Mutex);
        if (Saved)
          ++JP->CheckpointsSaved;
        else
          JP->StoreError = Err;
      };
    }
  }

  J->Engine = std::make_unique<CampaignEngine>(J->Unit->Prog, Campaign);
  if (J->Pending) {
    std::string Err;
    if (!J->Engine->applySnapshot(*J->Pending, Err)) {
      J->Engine.reset();
      J->Pending.reset();
      J->State = JobState::Failed;
      J->Error = "snapshot rejected: " + Err;
      Cv.notify_all();
      return;
    }
    J->Pending.reset();
  }
  if (J->SuspendWanted || J->CancelWanted)
    J->Engine->requestSuspend();
  J->State = JobState::Running;
  CampaignEngine *Engine = J->Engine.get();
  Cv.notify_all();
  Lock.unlock();

  CampaignResult R = Engine->run();

  Lock.lock();
  const bool WasSuspended = R.Suspended;
  J->Result = std::move(R);
  J->HasResult = true;
  // Journal work is decided under the lock but performed after it: the
  // store does fsync-grade I/O, and status()/wait() must not stall on it.
  bool Retire = false;
  std::vector<uint8_t> FinalSnapshot;
  if (J->CancelWanted) {
    J->Engine.reset();
    J->State = JobState::Cancelled;
    // A user cancel retires the journal entry; a shutdown-forced cancel
    // is this process "crashing" politely — the entry must survive for
    // the next process to recover.
    Retire = Journaled && !ShuttingDown;
  } else if (WasSuspended) {
    J->Snap = std::make_unique<CampaignSnapshot>(Engine->snapshot());
    J->Engine.reset();
    J->SuspendWanted = false;
    J->State = JobState::Suspended;
    if (Journaled)
      FinalSnapshot = encodeSnapshot(*J->Snap);
  } else {
    J->Engine.reset();
    J->State = JobState::Done;
    Retire = Journaled;
  }
  Cv.notify_all();
  Lock.unlock();

  if (Retire) {
    Store->remove(J->StoreKey);
  } else if (!FinalSnapshot.empty()) {
    // Suspension (voluntary or deadline-expired) journals the exact
    // boundary snapshot, so recovery never replays past it.
    std::string Err;
    const bool Saved =
        Store->save(J->StoreKey, J->MetaJson, FinalSnapshot, Err);
    bool RemoveAgain = false;
    {
      std::lock_guard<std::mutex> G(Mutex);
      if (Saved)
        ++J->CheckpointsSaved;
      else
        J->StoreError = Err;
      // The job became visible as Suspended the moment the lock dropped,
      // so a user cancel can retire the entry while this save is in
      // flight — in which case the save just resurrected a journal entry
      // for a job with nothing left to recover. Retire it again. (Only an
      // explicit cancel() moves Suspended to Cancelled — shutdown leaves
      // suspended jobs suspended — so this never undoes a crash record.)
      RemoveAgain = Saved && J->State == JobState::Cancelled;
    }
    if (RemoveAgain)
      Store->remove(J->StoreKey);
  }
}
