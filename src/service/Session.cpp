//===- Session.cpp - Persistent campaign service sessions -----------------===//

#include "service/Session.h"

#include "core/Checkpoint.h"
#include "support/Timer.h"

#include <cstdint>
#include <cstring>
#include <utility>

using namespace coverme;

//===----------------------------------------------------------------------===//
// Compiled-unit hashing
//===----------------------------------------------------------------------===//

namespace {

constexpr uint64_t FnvOffset = 1469598103934665603ull;
constexpr uint64_t FnvPrime = 1099511628211ull;

void hashBytes(uint64_t &H, const void *Data, size_t N) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  for (size_t I = 0; I < N; ++I) {
    H ^= P[I];
    H *= FnvPrime;
  }
}

void hashU64(uint64_t &H, uint64_t V) {
  uint8_t Bytes[8];
  for (int I = 0; I < 8; ++I)
    Bytes[I] = static_cast<uint8_t>(V >> (8 * I));
  hashBytes(H, Bytes, sizeof(Bytes));
}

void hashString(uint64_t &H, const std::string &S) {
  // Length-prefixed so ("ab","c") and ("a","bc") cannot collide.
  hashU64(H, S.size());
  hashBytes(H, S.data(), S.size());
}

} // namespace

uint64_t coverme::compiledUnitHash(const std::string &Source,
                                   const std::string &Entry,
                                   const lang::SourceProgramOptions &Opts) {
  uint64_t H = FnvOffset;
  hashString(H, Source);
  hashString(H, Entry);
  // Every SourceProgramOptions field, enumerated explicitly: adding a field
  // there without extending this hash would alias distinct compiled units.
  hashU64(H, Opts.Interp.MaxSteps);
  hashU64(H, Opts.Interp.MaxCallDepth);
  hashU64(H, Opts.Interp.MaxStackBytes);
  hashU64(H, static_cast<uint64_t>(Opts.Interp.Dispatch));
  hashU64(H, static_cast<uint64_t>(Opts.Interp.Simd));
  hashU64(H, Opts.TotalLines);
  hashU64(H, static_cast<uint64_t>(Opts.Tier));
  hashU64(H, Opts.Fuse ? 1 : 0);
  return H;
}

//===----------------------------------------------------------------------===//
// CompiledUnitCache
//===----------------------------------------------------------------------===//

std::shared_ptr<const lang::SourceProgram>
CompiledUnitCache::get(const std::string &Source, const std::string &Entry,
                       const lang::SourceProgramOptions &Opts, bool *WasHit,
                       double *CompileSeconds, std::string *Error) {
  const uint64_t Hash = compiledUnitHash(Source, Entry, Opts);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Units.find(Hash);
    if (It != Units.end()) {
      ++S.Hits;
      if (WasHit)
        *WasHit = true;
      if (CompileSeconds)
        *CompileSeconds = 0.0;
      return It->second;
    }
  }

  // Compile outside the lock so distinct units build concurrently. Two
  // threads racing on the same hash both compile; the loser's (identical)
  // unit is dropped below.
  WallTimer Timer;
  auto Unit = std::make_shared<lang::SourceProgram>(
      lang::compileSourceProgram(Source, Entry, Opts));
  const double Seconds = Timer.seconds();

  std::lock_guard<std::mutex> Lock(Mutex);
  ++S.Misses;
  S.CompileSeconds += Seconds;
  if (WasHit)
    *WasHit = false;
  if (CompileSeconds)
    *CompileSeconds = Seconds;
  if (!Unit->success()) {
    ++S.FailedCompiles;
    if (Error)
      *Error = Unit->diagnosticsText();
    return nullptr;
  }
  auto [It, Inserted] = Units.emplace(
      Hash, std::shared_ptr<const lang::SourceProgram>(std::move(Unit)));
  (void)Inserted;
  return It->second;
}

CompiledUnitCache::Stats CompiledUnitCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return S;
}

size_t CompiledUnitCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Units.size();
}

void CompiledUnitCache::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Units.clear();
}

//===----------------------------------------------------------------------===//
// Session
//===----------------------------------------------------------------------===//

const char *coverme::jobStateName(JobState State) {
  switch (State) {
  case JobState::Queued:
    return "queued";
  case JobState::Compiling:
    return "compiling";
  case JobState::Running:
    return "running";
  case JobState::Suspended:
    return "suspended";
  case JobState::Done:
    return "done";
  case JobState::Failed:
    return "failed";
  case JobState::Cancelled:
    return "cancelled";
  }
  return "unknown";
}

/// All mutable fields are guarded by the session mutex; the worker running
/// the job drops the lock only around compile and Engine->run().
struct Session::Job {
  uint64_t Id = 0;
  JobRequest Req;
  JobProgressFn Progress;
  uint64_t UnitHash = 0;

  JobState State = JobState::Queued;
  std::string Error;
  bool CacheHit = false;
  double CompileSeconds = 0.0;

  bool SuspendWanted = false; ///< checkpoint() asked; cleared on suspension.
  bool CancelWanted = false;

  /// Snapshot to load before running (submitResume / in-place resume).
  std::unique_ptr<CampaignSnapshot> Pending;
  /// Snapshot captured at the last suspension; present iff Suspended.
  std::unique_ptr<CampaignSnapshot> Snap;

  /// Rounds committed before this session first observed the job (the
  /// snapshot prefix of a submitResume job) and the saturation level then.
  unsigned BaseRounds = 0;
  unsigned BaseSaturated = 0;
  /// Commit-ordered round events observed by this session.
  std::vector<RoundLog> Rounds;

  CampaignResult Result;
  bool HasResult = false;

  /// Unit precedes Engine: the engine references Unit->Prog, so it must be
  /// destroyed first.
  std::shared_ptr<const lang::SourceProgram> Unit;
  std::unique_ptr<CampaignEngine> Engine; ///< Non-null only while Running.
};

Session::Session(SessionOptions Opts) : Opts(Opts), Pool(Opts.Workers) {}

Session::~Session() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
    for (auto &Entry : Jobs) {
      Entry.second->CancelWanted = true;
      if (Entry.second->Engine)
        Entry.second->Engine->requestSuspend();
    }
    Cv.notify_all();
  }
  // Pool is the last member, so its destructor (which drains the queue)
  // runs before any other member dies; this wait only shortens the window
  // in which a worker could observe a partially destroyed session.
  Pool.wait();
}

std::shared_ptr<Session::Job> Session::findLocked(uint64_t Id) const {
  auto It = Jobs.find(Id);
  return It == Jobs.end() ? nullptr : It->second;
}

void Session::enqueueLocked(const std::shared_ptr<Job> &J) {
  Pool.submit([this, J] { runJob(J); });
}

uint64_t Session::submit(JobRequest Req, JobProgressFn Progress) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (ShuttingDown)
    return 0;
  auto J = std::make_shared<Job>();
  J->Id = NextId++;
  J->Req = std::move(Req);
  J->Progress = std::move(Progress);
  J->UnitHash = compiledUnitHash(J->Req.Source, J->Req.Entry, J->Req.Compile);
  Jobs.emplace(J->Id, J);
  enqueueLocked(J);
  return J->Id;
}

uint64_t Session::submitResume(JobRequest Req,
                               const std::vector<uint8_t> &Snapshot,
                               std::string &Err, JobProgressFn Progress) {
  auto Snap = std::make_unique<CampaignSnapshot>();
  if (!decodeSnapshot(Snapshot, *Snap, Err))
    return 0;
  std::lock_guard<std::mutex> Lock(Mutex);
  if (ShuttingDown) {
    Err = "session is shutting down";
    return 0;
  }
  auto J = std::make_shared<Job>();
  J->Id = NextId++;
  J->Req = std::move(Req);
  J->Progress = std::move(Progress);
  J->UnitHash = compiledUnitHash(J->Req.Source, J->Req.Entry, J->Req.Compile);
  J->BaseRounds = Snap->StartsUsed;
  J->BaseSaturated =
      Snap->Rounds.empty() ? 0 : Snap->Rounds.back().SaturatedArms;
  J->Pending = std::move(Snap);
  Jobs.emplace(J->Id, J);
  enqueueLocked(J);
  return J->Id;
}

bool Session::checkpoint(uint64_t Id, std::vector<uint8_t> &Out,
                         std::string &Err) {
  std::unique_lock<std::mutex> Lock(Mutex);
  auto J = findLocked(Id);
  if (!J) {
    Err = "unknown job";
    return false;
  }
  for (;;) {
    switch (J->State) {
    case JobState::Suspended:
      Out = encodeSnapshot(*J->Snap);
      return true;
    case JobState::Done:
      Err = "job completed before the checkpoint landed";
      return false;
    case JobState::Failed:
      Err = "job failed: " + J->Error;
      return false;
    case JobState::Cancelled:
      Err = "job was cancelled";
      return false;
    case JobState::Queued:
    case JobState::Compiling:
      // The worker suspends the engine before its first round commits.
      J->SuspendWanted = true;
      break;
    case JobState::Running:
      J->SuspendWanted = true;
      if (J->Engine)
        J->Engine->requestSuspend();
      break;
    }
    Cv.wait(Lock);
  }
}

bool Session::resume(uint64_t Id, std::string &Err) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (ShuttingDown) {
    Err = "session is shutting down";
    return false;
  }
  auto J = findLocked(Id);
  if (!J) {
    Err = "unknown job";
    return false;
  }
  if (J->State != JobState::Suspended) {
    Err = std::string("job is ") + jobStateName(J->State) + ", not suspended";
    return false;
  }
  J->Pending = std::move(J->Snap);
  J->State = JobState::Queued;
  J->HasResult = false;
  enqueueLocked(J);
  Cv.notify_all();
  return true;
}

bool Session::cancel(uint64_t Id) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto J = findLocked(Id);
  if (!J)
    return false;
  switch (J->State) {
  case JobState::Done:
  case JobState::Failed:
  case JobState::Cancelled:
    return false;
  case JobState::Suspended:
    // Nothing is running; retire the job in place, keeping its committed
    // prefix result available.
    J->Snap.reset();
    J->State = JobState::Cancelled;
    Cv.notify_all();
    return true;
  case JobState::Queued:
  case JobState::Compiling:
    J->CancelWanted = true;
    return true;
  case JobState::Running:
    J->CancelWanted = true;
    if (J->Engine)
      J->Engine->requestSuspend();
    return true;
  }
  return false;
}

bool Session::wait(uint64_t Id) {
  std::unique_lock<std::mutex> Lock(Mutex);
  auto J = findLocked(Id);
  if (!J)
    return false;
  Cv.wait(Lock, [&] {
    switch (J->State) {
    case JobState::Suspended:
    case JobState::Done:
    case JobState::Failed:
    case JobState::Cancelled:
      return true;
    default:
      return false;
    }
  });
  return true;
}

bool Session::status(uint64_t Id, JobStatus &Out) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto J = findLocked(Id);
  if (!J)
    return false;
  Out.Id = J->Id;
  Out.State = J->State;
  Out.CacheHit = J->CacheHit;
  Out.CompileSeconds = J->CompileSeconds;
  Out.UnitHash = J->UnitHash;
  Out.RoundsCommitted = J->BaseRounds + static_cast<unsigned>(J->Rounds.size());
  Out.SaturatedArms =
      J->Rounds.empty() ? J->BaseSaturated : J->Rounds.back().SaturatedArms;
  Out.HasResult = J->HasResult;
  Out.Error = J->Error;
  return true;
}

bool Session::result(uint64_t Id, CampaignResult &Out) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto J = findLocked(Id);
  if (!J || !J->HasResult)
    return false;
  Out = J->Result;
  return true;
}

std::vector<RoundLog> Session::progress(uint64_t Id, size_t From) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto J = findLocked(Id);
  if (!J || From >= J->Rounds.size())
    return {};
  return std::vector<RoundLog>(J->Rounds.begin() +
                                   static_cast<ptrdiff_t>(From),
                               J->Rounds.end());
}

void Session::runJob(const std::shared_ptr<Job> &J) {
  std::unique_lock<std::mutex> Lock(Mutex);
  if (J->CancelWanted) {
    J->State = JobState::Cancelled;
    Cv.notify_all();
    return;
  }
  J->State = JobState::Compiling;
  Cv.notify_all();
  Lock.unlock();

  bool Hit = false;
  double CompileSeconds = 0.0;
  std::string CompileErr;
  auto Unit = Cache.get(J->Req.Source, J->Req.Entry, J->Req.Compile, &Hit,
                        &CompileSeconds, &CompileErr);

  Lock.lock();
  J->CacheHit = Hit;
  J->CompileSeconds = CompileSeconds;
  if (!Unit) {
    J->State = JobState::Failed;
    J->Error = CompileErr.empty() ? "compile failed" : CompileErr;
    Cv.notify_all();
    return;
  }
  J->Unit = std::move(Unit);

  CoverMeOptions Campaign = J->Req.Campaign;
  // The engine fires OnRound under its commit lock; keep the body to a
  // locked push plus the user callback. Capturing the raw Job pointer (not
  // the shared_ptr) avoids a Job -> Engine -> Options -> Job ownership
  // cycle; runJob's own shared_ptr pins the job for the engine's lifetime.
  Job *JP = J.get();
  JobProgressFn UserProgress = J->Progress;
  const uint64_t Id = J->Id;
  Campaign.OnRound = [this, JP, Id, UserProgress](const RoundLog &Log) {
    {
      std::lock_guard<std::mutex> G(Mutex);
      JP->Rounds.push_back(Log);
      Cv.notify_all();
    }
    if (UserProgress)
      UserProgress(Id, Log);
  };
  if (J->Pending && Campaign.SuspendAfterRounds &&
      Campaign.SuspendAfterRounds <= J->Pending->StartsUsed)
    // The suspension point already fired in the committed prefix; keeping
    // it would re-suspend before any new round commits.
    Campaign.SuspendAfterRounds = 0;

  J->Engine = std::make_unique<CampaignEngine>(J->Unit->Prog, Campaign);
  if (J->Pending) {
    std::string Err;
    if (!J->Engine->applySnapshot(*J->Pending, Err)) {
      J->Engine.reset();
      J->Pending.reset();
      J->State = JobState::Failed;
      J->Error = "snapshot rejected: " + Err;
      Cv.notify_all();
      return;
    }
    J->Pending.reset();
  }
  if (J->SuspendWanted || J->CancelWanted)
    J->Engine->requestSuspend();
  J->State = JobState::Running;
  CampaignEngine *Engine = J->Engine.get();
  Cv.notify_all();
  Lock.unlock();

  CampaignResult R = Engine->run();

  Lock.lock();
  const bool WasSuspended = R.Suspended;
  J->Result = std::move(R);
  J->HasResult = true;
  if (J->CancelWanted) {
    J->Engine.reset();
    J->State = JobState::Cancelled;
  } else if (WasSuspended) {
    J->Snap = std::make_unique<CampaignSnapshot>(Engine->snapshot());
    J->Engine.reset();
    J->SuspendWanted = false;
    J->State = JobState::Suspended;
  } else {
    J->Engine.reset();
    J->State = JobState::Done;
  }
  Cv.notify_all();
}
