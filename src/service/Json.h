//===- Json.h - Minimal JSON for the service wire protocol ----------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free JSON reader/writer for the newline-JSON
/// protocol coverme_serve speaks. The reader parses one complete JSON
/// value (the protocol sends one object per line); numbers keep their raw
/// spelling so 64-bit integers (seeds, budgets) survive exactly rather
/// than round-tripping through a double. The writer is an append-style
/// object builder that handles escaping. Neither aims to be a general
/// JSON library — just enough for the flat request/response shapes the
/// protocol uses, implemented strictly (no trailing garbage, bounded
/// nesting) because requests arrive from a socket.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_SERVICE_JSON_H
#define COVERME_SERVICE_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace coverme {
namespace json {

/// One parsed JSON value. A tagged struct rather than a class hierarchy:
/// protocol handlers pattern-match on the kind and pull typed fields out.
struct Value {
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  Kind K = Kind::Null;
  bool B = false;
  double Num = 0.0;     ///< Numeric value (Kind::Number).
  std::string Str;      ///< String value, or the raw number spelling.
  std::vector<Value> Arr;
  std::vector<std::pair<std::string, Value>> Obj; ///< Insertion order kept.

  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isString() const { return K == Kind::String; }
  bool isNumber() const { return K == Kind::Number; }

  /// Object member lookup; null when absent or not an object.
  const Value *find(const std::string &Key) const;

  /// Typed getters over find(), with defaults for absent/mistyped members.
  std::string str(const std::string &Key, std::string Default = "") const;
  double num(const std::string &Key, double Default = 0.0) const;
  /// Exact unsigned 64-bit read from the raw number spelling.
  uint64_t u64(const std::string &Key, uint64_t Default = 0) const;
  bool boolean(const std::string &Key, bool Default = false) const;
};

/// Parses exactly one JSON value spanning all of \p Text (surrounding
/// whitespace allowed, trailing garbage rejected). Returns false and sets
/// \p Err on malformed input.
[[nodiscard]] bool parse(const std::string &Text, Value &Out,
                         std::string &Err);

/// \p S quoted and escaped as a JSON string literal.
std::string quoted(const std::string &S);

/// Append-style JSON object writer for one-line protocol replies:
///
///   ObjectWriter W;
///   W.field("ok", true).field("job", Id);
///   send(W.str());
class ObjectWriter {
public:
  ObjectWriter &field(const std::string &Key, const std::string &V) {
    return raw(Key, quoted(V));
  }
  ObjectWriter &field(const std::string &Key, const char *V) {
    return raw(Key, quoted(V));
  }
  ObjectWriter &field(const std::string &Key, bool V) {
    return raw(Key, V ? "true" : "false");
  }
  ObjectWriter &field(const std::string &Key, uint64_t V) {
    return raw(Key, std::to_string(V));
  }
  ObjectWriter &field(const std::string &Key, unsigned V) {
    return raw(Key, std::to_string(V));
  }
  ObjectWriter &field(const std::string &Key, int V) {
    return raw(Key, std::to_string(V));
  }
  ObjectWriter &field(const std::string &Key, double V);

  /// Appends \p ValueText verbatim (pre-rendered JSON).
  ObjectWriter &raw(const std::string &Key, const std::string &ValueText);

  /// The finished object, e.g. `{"ok":true,"job":3}`.
  std::string str() const { return Buf + "}"; }

private:
  std::string Buf = "{";
  bool First = true;
};

} // namespace json
} // namespace coverme

#endif // COVERME_SERVICE_JSON_H
