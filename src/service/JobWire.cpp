//===- JobWire.cpp - JSON wire form of campaign job requests --------------===//

#include "service/JobWire.h"

using namespace coverme;

namespace {

const char *tierName(lang::ExecutionTier Tier) {
  switch (Tier) {
  case lang::ExecutionTier::Bytecode:
    return "vm";
  case lang::ExecutionTier::Jit:
    return "jit";
  case lang::ExecutionTier::TreeWalker:
    return "interp";
  }
  return "vm";
}

} // namespace

std::string coverme::jobRequestToJson(const JobRequest &Req) {
  json::ObjectWriter W;
  W.field("source", Req.Source)
      .field("entry", Req.Entry)
      .field("tier", tierName(Req.Compile.Tier))
      .field("fuse", Req.Compile.Fuse)
      .field("n_start", Req.Campaign.NStart)
      .field("n_iter", Req.Campaign.NIter)
      .field("seed", Req.Campaign.Seed)
      .field("threads", Req.Campaign.Threads)
      .field("max_evaluations", Req.Campaign.MaxEvaluations)
      .field("suspend_after", Req.Campaign.SuspendAfterRounds)
      .field("stop_when_saturated", Req.Campaign.StopWhenAllSaturated)
      .field("mark_infeasible", Req.Campaign.MarkInfeasible)
      .field("deadline_seconds", Req.Campaign.WallDeadline)
      .field("checkpoint_every", Req.Campaign.CheckpointEveryRounds);
  return W.str();
}

bool coverme::jobRequestFromJson(const json::Value &V, JobRequest &Out,
                                 std::string &Err) {
  Out.Source = V.str("source");
  Out.Entry = V.str("entry");
  if (Out.Source.empty() || Out.Entry.empty()) {
    Err = "submit needs non-empty \"source\" and \"entry\"";
    return false;
  }
  std::string Tier = V.str("tier", "vm");
  if (Tier == "vm")
    Out.Compile.Tier = lang::ExecutionTier::Bytecode;
  else if (Tier == "jit")
    Out.Compile.Tier = lang::ExecutionTier::Jit;
  else if (Tier == "interp")
    Out.Compile.Tier = lang::ExecutionTier::TreeWalker;
  else {
    Err = "unknown tier \"" + Tier + "\" (vm|jit|interp)";
    return false;
  }
  Out.Compile.Fuse = V.boolean("fuse", true);

  Out.Campaign.NStart =
      static_cast<unsigned>(V.u64("n_start", Out.Campaign.NStart));
  Out.Campaign.NIter =
      static_cast<unsigned>(V.u64("n_iter", Out.Campaign.NIter));
  Out.Campaign.Seed = V.u64("seed", Out.Campaign.Seed);
  Out.Campaign.Threads =
      static_cast<unsigned>(V.u64("threads", Out.Campaign.Threads));
  Out.Campaign.MaxEvaluations =
      V.u64("max_evaluations", Out.Campaign.MaxEvaluations);
  Out.Campaign.SuspendAfterRounds =
      static_cast<unsigned>(V.u64("suspend_after", 0));
  Out.Campaign.StopWhenAllSaturated = V.boolean("stop_when_saturated", true);
  Out.Campaign.MarkInfeasible = V.boolean("mark_infeasible", true);
  Out.Campaign.WallDeadline = V.num("deadline_seconds", 0.0);
  Out.Campaign.CheckpointEveryRounds =
      static_cast<unsigned>(V.u64("checkpoint_every", 0));
  return true;
}

bool coverme::jobRequestFromJson(const std::string &Text, JobRequest &Out,
                                 std::string &Err) {
  json::Value V;
  if (!json::parse(Text, V, Err))
    return false;
  if (!V.isObject()) {
    Err = "job request metadata is not a JSON object";
    return false;
  }
  return jobRequestFromJson(V, Out, Err);
}
