//===- Session.h - Persistent campaign service sessions -------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign-as-a-service layer: where the paper's protocol runs one
/// campaign per subject and exits, a Session is a long-lived object that
/// absorbs a continuous stream of subject submissions. It owns:
///
///  * a **compiled-unit cache** keyed by source content hash — parse,
///    Sema, bytecode-compile, fuse, and JIT happen once per distinct
///    (source, entry, compile-options) triple; every later submission of
///    the same subject reuses the shared immutable SourceProgram (the
///    JIT-cache pattern: executors are per-thread, code is shared),
///  * an **async job queue** feeding the support/ThreadPool: submit()
///    returns a job id immediately, the campaign runs on a pool worker,
///    and per-round progress streams through a callback and a pollable
///    per-job round buffer,
///  * **checkpoint/resume**: any running job can be suspended at a round
///    boundary, serialized to the versioned core/Checkpoint format, and
///    resumed — in place, or in another session/process via the snapshot
///    bytes — continuing bit-identically to an uninterrupted run at any
///    thread count,
///  * **durable crash recovery**: with a CheckpointStore attached, every
///    submission is journaled (request metadata at submit, a resumable
///    snapshot every CheckpointEveryRounds committed rounds and at every
///    suspension), entries are retired when jobs complete or are
///    cancelled, and recoverFromStore() resubmits whatever a crashed
///    process left behind — resuming from the newest valid snapshot,
///    bit-identically to the uninterrupted campaign.
///
/// Thread-safety: every public member is safe to call from any thread;
/// progress callbacks fire on the worker running the job's engine, in
/// round order, outside the session lock.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_SERVICE_SESSION_H
#define COVERME_SERVICE_SESSION_H

#include "core/CampaignEngine.h"
#include "lang/SourceProgram.h"
#include "support/ThreadPool.h"

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace coverme {

class CheckpointStore;

/// Content hash identifying one compiled unit: FNV-1a over the source
/// text, entry name, and every SourceProgramOptions field that affects
/// the compiled artifact or its execution (tier, fusion, interp budgets,
/// dispatch/SIMD selection). Two submissions with equal hashes are
/// interchangeable down to the bit level.
uint64_t compiledUnitHash(const std::string &Source, const std::string &Entry,
                          const lang::SourceProgramOptions &Opts);

/// The parse/Sema/compile/fuse/JIT cache. Thread-safe; compiles of
/// distinct units can proceed concurrently (only the map lookup/insert
/// serializes). On a hash race the first finished compile wins and the
/// duplicate is dropped — units are immutable, so either copy is correct.
class CompiledUnitCache {
public:
  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t FailedCompiles = 0;
    /// Compiles whose map insertion failed (fault point `cache.insert`):
    /// the unit is still returned and the job proceeds — a dead cache
    /// degrades amortization, never correctness.
    uint64_t InsertFailures = 0;
    double CompileSeconds = 0.0; ///< Total time spent in real compiles.
  };

  /// Returns the cached unit for the triple, compiling on a miss. Null on
  /// compile failure, with diagnostics in \p Error. \p WasHit and
  /// \p CompileSeconds (0 on a hit) report the amortization the service
  /// layer exists for.
  std::shared_ptr<const lang::SourceProgram>
  get(const std::string &Source, const std::string &Entry,
      const lang::SourceProgramOptions &Opts, bool *WasHit = nullptr,
      double *CompileSeconds = nullptr, std::string *Error = nullptr);

  Stats stats() const;
  size_t size() const;
  void clear();

private:
  mutable std::mutex Mutex;
  std::unordered_map<uint64_t, std::shared_ptr<const lang::SourceProgram>>
      Units;
  Stats S;
};

/// Lifecycle of one submitted campaign.
enum class JobState : uint8_t {
  Queued,    ///< Accepted, waiting for a pool worker.
  Compiling, ///< Resolving the compiled unit (cache miss compiles here).
  Running,   ///< Campaign engine executing rounds.
  Suspended, ///< Stopped at a round boundary; snapshot/resume available.
  Done,      ///< Terminated naturally; result available.
  Failed,    ///< Compile or snapshot error; see JobStatus::Error.
  Cancelled, ///< cancel() took effect.
};

const char *jobStateName(JobState State);

/// One campaign submission: the subject and both option sets.
struct JobRequest {
  std::string Source; ///< Self-contained C source text.
  std::string Entry;  ///< Entry function name.
  lang::SourceProgramOptions Compile;
  CoverMeOptions Campaign;
};

/// Point-in-time view of a job, cheap to take while it runs.
struct JobStatus {
  uint64_t Id = 0;
  JobState State = JobState::Queued;
  bool CacheHit = false;
  double CompileSeconds = 0.0; ///< 0 for cache hits.
  uint64_t UnitHash = 0;
  unsigned RoundsCommitted = 0; ///< Live counter, includes resumed prefix.
  unsigned SaturatedArms = 0;   ///< From the latest committed round.
  bool HasResult = false;       ///< result() is available.
  std::string Error;            ///< Set when State == Failed.
  /// Why the latest run() stopped; None until a run completes.
  StopReason Stop = StopReason::None;
  std::string StoreKey;         ///< Journal key; empty = not journaled.
  unsigned CheckpointsSaved = 0; ///< Durable snapshots written so far.
  /// Last journal save failure, if any. Journal failures are non-fatal:
  /// the campaign continues, only its recovery point goes stale.
  std::string StoreError;
};

/// Streamed per-round progress; fires in commit order on the job's worker.
using JobProgressFn = std::function<void(uint64_t JobId, const RoundLog &)>;

struct SessionOptions {
  /// Concurrent jobs (pool workers); 0 = one per hardware core. Each
  /// job's engine may additionally run CoverMeOptions::Threads round
  /// workers of its own.
  unsigned Workers = 1;

  /// Durable journal for crash recovery (not owned; must outlive the
  /// session). Null = no journaling; a dead store (ok() false) records
  /// per-job StoreError but never blocks submissions.
  CheckpointStore *Store = nullptr;

  /// Session-wide default checkpoint cadence for journaled jobs, in
  /// committed rounds (0 = only the submit record and suspension
  /// snapshots are journaled). A job's own
  /// CoverMeOptions::CheckpointEveryRounds, when nonzero, wins.
  unsigned CheckpointEveryRounds = 0;
};

/// A persistent multi-campaign session; see file comment.
class Session {
public:
  explicit Session(SessionOptions Opts = {});

  /// Cancels outstanding jobs (requesting suspension of running engines)
  /// and drains the pool before returning.
  ~Session();

  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;

  /// Enqueues a fresh campaign; returns its job id (0 iff shutting down).
  uint64_t submit(JobRequest Req, JobProgressFn Progress = nullptr);

  /// Enqueues a campaign continuing from serialized snapshot bytes (the
  /// cross-process migration path). The snapshot is decoded eagerly —
  /// corrupt bytes fail here with \p Err set and no job created (returns
  /// 0). Shape mismatches against the compiled program are detected when
  /// the job reaches a worker and surface as JobState::Failed.
  uint64_t submitResume(JobRequest Req, const std::vector<uint8_t> &Snapshot,
                        std::string &Err, JobProgressFn Progress = nullptr);

  /// Suspends the job at its next round boundary and serializes the
  /// checkpoint. Blocks until the suspension lands (queued jobs suspend
  /// before their first round). The job stays Suspended and resumable.
  /// Fails (with \p Err) for unknown ids and jobs already terminated.
  bool checkpoint(uint64_t Id, std::vector<uint8_t> &Out, std::string &Err);

  /// Re-queues a Suspended job to continue in place.
  bool resume(uint64_t Id, std::string &Err);

  /// Requests cancellation; running engines stop at the next round
  /// boundary. False for unknown or already-terminated jobs.
  bool cancel(uint64_t Id);

  /// Blocks until the job reaches Suspended, Done, Failed, or Cancelled.
  /// False for unknown ids.
  bool wait(uint64_t Id);

  /// wait() with a deadline. Terminal = the job reached a terminal state
  /// within the window; TimedOut = it is still queued/compiling/running
  /// (the job is untouched — poll or wait again); Unknown = no such job.
  /// Negative \p TimeoutSeconds waits forever.
  enum class WaitOutcome : uint8_t { Terminal, TimedOut, Unknown };
  WaitOutcome waitFor(uint64_t Id, double TimeoutSeconds);

  /// Resubmits every job the attached store can recover: fresh campaigns
  /// for entries journaled before their first checkpoint, snapshot
  /// resumes otherwise. Recovered jobs keep their journal key, so their
  /// later checkpoints overwrite the same entry. Returns the new job ids,
  /// in journal-key order. No-op without a usable store.
  std::vector<uint64_t> recoverFromStore();

  /// Point-in-time statuses of every job this session knows, id order.
  std::vector<JobStatus> jobs() const;

  bool status(uint64_t Id, JobStatus &Out) const;

  /// Copies the job's campaign result; available once HasResult (Done, or
  /// Suspended — then it is the committed prefix; Cancelled jobs keep the
  /// prefix committed before cancellation took effect).
  bool result(uint64_t Id, CampaignResult &Out) const;

  /// The job's committed-round event buffer from index \p From on — the
  /// poll half of progress streaming. Events this session observed only;
  /// a submitResume job's buffer starts at its snapshot's round.
  std::vector<RoundLog> progress(uint64_t Id, size_t From) const;

  CompiledUnitCache::Stats cacheStats() const { return Cache.stats(); }
  size_t cacheSize() const { return Cache.size(); }
  unsigned workers() const { return Pool.size(); }

private:
  struct Job;

  std::shared_ptr<Job> findLocked(uint64_t Id) const;
  void enqueueLocked(const std::shared_ptr<Job> &J);
  void runJob(const std::shared_ptr<Job> &J);
  void statusLocked(const Job &J, JobStatus &Out) const;
  /// Shared tail of submit/submitResume/recoverFromStore: builds the Job,
  /// registers it, and enqueues it. \p StoreKey nonempty = journaled.
  uint64_t enqueueNewJobLocked(JobRequest Req, JobProgressFn Progress,
                               std::unique_ptr<CampaignSnapshot> Pending,
                               std::string StoreKey);

  SessionOptions Opts;
  CompiledUnitCache Cache;
  mutable std::mutex Mutex; ///< Guards Jobs, job fields, NextId, shutdown.
  std::condition_variable Cv; ///< Signaled on every job state change.
  std::unordered_map<uint64_t, std::shared_ptr<Job>> Jobs;
  uint64_t NextId = 1;
  bool ShuttingDown = false;
  ThreadPool Pool; ///< Last member: destroyed (drained) first.
};

} // namespace coverme

#endif // COVERME_SERVICE_SESSION_H
