//===- CheckpointStore.h - Durable crash-recoverable checkpoint journal ---===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk half of crash recovery: a directory of journal entries,
/// one per live campaign, each a CRC-framed record wrapping the CVMESNAP
/// snapshot encoding plus an opaque metadata blob (the service layer
/// stores the original job request as JSON there, so a recovered daemon
/// can recompile the subject and resume).
///
/// Durability protocol (save): write the full frame to `<key>.tmp`,
/// fsync the file, rename onto `<key>.gen<N>.ckpt`, fsync the directory.
/// Each save bumps the generation and removes generations older than the
/// previous one, so the directory always holds the newest entry plus one
/// predecessor — the fallback a torn newest entry degrades to.
///
/// Recovery protocol (load): scan a key's generations newest-first,
/// validate each frame (magic, version, lengths, CRC-32 over metadata and
/// snapshot payload together), return the first good one, and quarantine
/// every torn or corrupt entry by renaming it to `<name>.corrupt` —
/// leaving the evidence on disk without ever re-reading it as live state.
/// Orphaned `.tmp` files (a crash during the write, or between write and
/// rename) are quarantined the same way; their rename never happened, so
/// the previous generation is the truth.
///
/// The frame CRC is what distinguishes "the filesystem lost the tail of
/// this file in a power cut" from "this snapshot is the committed prefix
/// of a campaign": the CVMESNAP decoder validates structure, the CRC
/// validates every byte, and recovery trusts nothing that fails either.
///
/// Fault points (support/FaultInject): `ckpt.write`, `ckpt.fsync`,
/// `ckpt.rename` — each aborts save() exactly where the real syscall
/// would fail, leaving the previous generation untouched, so tests can
/// prove torn-write recovery deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_SERVICE_CHECKPOINTSTORE_H
#define COVERME_SERVICE_CHECKPOINTSTORE_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace coverme {

/// CRC-32 (IEEE 802.3 polynomial, reflected) over \p Data. Exposed for
/// tests that construct torn frames by hand.
uint32_t crc32(const uint8_t *Data, size_t Size);

/// One durable campaign journal; see file comment. All methods are
/// thread-safe (one mutex — journal I/O is cold next to campaign work).
class CheckpointStore {
public:
  /// One recovered journal entry: the newest generation of one key that
  /// passed every integrity check.
  struct Entry {
    std::string Key;
    uint64_t Generation = 0;
    std::string Meta;              ///< Opaque caller blob (job request).
    std::vector<uint8_t> Snapshot; ///< CVMESNAP bytes; empty = the job
                                   ///< was journaled before its first
                                   ///< checkpoint — recover it fresh.
  };

  /// Opens (creating if needed) the journal directory. ok() reports
  /// whether the directory is usable; a dead store fails every save.
  explicit CheckpointStore(std::string Dir);

  bool ok() const { return Usable; }
  const std::string &directory() const { return Dir; }

  /// Allocates a fresh journal key, unique across process restarts: keys
  /// are "job<serial>" with the serial seeded past everything the opening
  /// scan found on disk.
  std::string allocateKey();

  /// Durably records (Meta, Snapshot) as the newest generation of \p Key
  /// using the write-temp/fsync/rename/fsync-dir protocol. On any failure
  /// — injected or real — returns false with \p Err set and the previous
  /// generation intact.
  bool save(const std::string &Key, const std::string &Meta,
            const std::vector<uint8_t> &Snapshot, std::string &Err);

  /// Loads the newest generation of \p Key that validates, quarantining
  /// everything newer that does not. False when no good entry exists.
  bool load(const std::string &Key, Entry &Out, std::string &Err);

  /// Scans the whole journal: every key's newest good entry, sorted by
  /// key. Torn/corrupt entries and orphaned temps are quarantined.
  std::vector<Entry> loadAll();

  /// Removes every generation of \p Key (campaign completed or cancelled;
  /// nothing left to recover). Quarantined files are left as evidence.
  void remove(const std::string &Key);

  /// Files quarantined (renamed to .corrupt) since construction.
  unsigned quarantinedCount() const;

private:
  struct Gen {
    uint64_t Generation;
    std::string FileName;
  };

  /// All `<key>.gen<N>.ckpt` files for \p Key, newest first.
  std::vector<Gen> generationsLocked(const std::string &Key) const;
  bool readFrameLocked(const std::string &FileName, Entry &Out,
                       std::string &Err) const;
  void quarantineLocked(const std::string &FileName);
  void removeStaleLocked(const std::string &Key, uint64_t KeepNewest,
                         uint64_t KeepPrevious);

  mutable std::mutex Mutex;
  std::string Dir;
  bool Usable = false;
  uint64_t NextSerial = 1;
  uint64_t NextGeneration = 1;
  unsigned Quarantined = 0;
};

} // namespace coverme

#endif // COVERME_SERVICE_CHECKPOINTSTORE_H
