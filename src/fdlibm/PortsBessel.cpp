//===- PortsBessel.cpp - j0/y0/j1/y1/erf/erfc ports -------------------------===//
//
// Ports of Fdlibm 5.3 e_j0.c, e_j1.c, and s_erf.c. Paper branch counts:
// j0 18, y0 16, j1 16, y1 16, erf 20, erfc 24. The rational helpers
// pzero/qzero/pone/qone are static C functions in Fdlibm and excluded from
// the paper's benchmark set (Table 4); they stay uninstrumented here.
//
//===----------------------------------------------------------------------===//

#include "fdlibm/PortDetail.h"
#include "fdlibm/Ports.h"

#include <math.h> // ::j0 / ::j1 (POSIX Bessel functions)

using namespace coverme;
using namespace coverme::fdlibm::detail;

namespace {

const double One = 1.0, Half = 0.5, Huge = 1e300, Tiny = 1e-300, Zero = 0.0;
const double InvSqrtPi = 5.64189583547756279280e-01;
const double Tpi = 6.36619772367581382433e-01; // 2/pi
const double Erx = 8.45062911510467529297e-01; // erf(1) high bits

/// Asymptotic stand-ins for Fdlibm's static rational helpers (x >= 2).
double pzero(double X) { return One - 0.0703125 / (X * X); }
double qzero(double X) { return (-0.125 + 0.0732421875 / (X * X)) / X; }
double pone(double X) { return One + 0.1171875 / (X * X); }
double qone(double X) { return (0.375 - 0.1025390625 / (X * X)) / X; }

/// e_j0.c __ieee754_j0 — 9 conditionals (18 branches).
double j0Body(const double *Args) {
  double X = Args[0];
  int32_t Hx = hi(X);
  int32_t Ix = Hx & 0x7fffffff;
  if (CVM_GE(0, Ix, 0x7ff00000)) // inf or NaN
    return One / (X * X);
  X = std::fabs(X);
  if (CVM_GE(1, Ix, 0x40000000)) { // |x| >= 2.0
    double S = std::sin(X), C = std::cos(X);
    double Ss = S - C, Cc = S + C;
    if (CVM_LT(2, Ix, 0x7fe00000)) { // x+x cannot overflow
      double Z = -std::cos(X + X);
      if (CVM_LT(3, S * C, Zero))
        Cc = Z / Ss;
      else
        Ss = Z / Cc;
    }
    double Z;
    if (CVM_GT(4, Ix, 0x48000000)) // |x| > 2**129: drop the p/q terms
      Z = (InvSqrtPi * Cc) / std::sqrt(X);
    else {
      double U = pzero(X), V = qzero(X);
      Z = InvSqrtPi * (U * Cc - V * Ss) / std::sqrt(X);
    }
    return Z;
  }
  if (CVM_LT(5, Ix, 0x3f200000)) { // |x| < 2**-13
    if (CVM_GT(6, Huge + X, One)) { // raise inexact
      if (CVM_LT(7, Ix, 0x3e400000)) // |x| < 2**-27
        return One;
      return One - 0.25 * X * X;
    }
  }
  double Z = X * X;
  double R = Z * (-6.25e-02 + Z * 1.73927e-03); // truncated r0/r02 kernel
  double S = One + Z * 1.56249999e-02;
  if (CVM_LT(8, Ix, 0x3ff00000)) // |x| < 1.0
    return One + Z * (-0.25 + R / S);
  double U = Half * X;
  return (One + U) * (One - U) + Z * (R / S);
}

/// e_j0.c __ieee754_y0 — 8 conditionals (16 branches).
double y0Body(const double *Args) {
  double X = Args[0];
  int32_t Hx = hi(X);
  int32_t Ix = Hx & 0x7fffffff;
  int32_t Lx = lo(X);
  if (CVM_GE(0, Ix, 0x7ff00000)) // y0(NaN) = NaN, y0(+inf) = 0
    return One / (X + X * X);
  if (CVM_EQ(1, Ix | Lx, 0)) // y0(0) = -inf
    return -One / Zero;
  if (CVM_LT(2, Hx, 0)) // y0(x<0) = NaN
    return Zero / Zero;
  if (CVM_GE(3, Ix, 0x40000000)) { // |x| >= 2.0
    double S = std::sin(X), C = std::cos(X);
    double Ss = S - C, Cc = S + C;
    if (CVM_LT(4, Ix, 0x7fe00000)) {
      double Z = -std::cos(X + X);
      if (CVM_LT(5, S * C, Zero))
        Cc = Z / Ss;
      else
        Ss = Z / Cc;
    }
    double Z;
    if (CVM_GT(6, Ix, 0x48000000))
      Z = (InvSqrtPi * Ss) / std::sqrt(X);
    else {
      double U = pzero(X), V = qzero(X);
      Z = InvSqrtPi * (U * Ss + V * Cc) / std::sqrt(X);
    }
    return Z;
  }
  if (CVM_LE(7, Ix, 0x3e400000)) // x < 2**-27
    return -7.38042951086872317523e-02 + Tpi * std::log(X);
  double Z = X * X;
  double U = -7.38042951086872317523e-02 + Z * 1.76666452509181115538e-01;
  double V = One + Z * 1.27304834834123699328e-02;
  // The original calls __ieee754_j0(x) here — a separate entry function the
  // paper leaves uninstrumented; libm's j0 plays that role.
  return U / V + Tpi * (::j0(X) * std::log(X));
}

/// e_j1.c __ieee754_j1 — 8 conditionals (16 branches).
double j1Body(const double *Args) {
  double X = Args[0];
  int32_t Hx = hi(X);
  int32_t Ix = Hx & 0x7fffffff;
  if (CVM_GE(0, Ix, 0x7ff00000))
    return One / X;
  double Y = std::fabs(X);
  if (CVM_GE(1, Ix, 0x40000000)) { // |x| >= 2.0
    double S = std::sin(Y), C = std::cos(Y);
    double Ss = -S - C, Cc = S - C;
    if (CVM_LT(2, Ix, 0x7fe00000)) {
      double Z = std::cos(Y + Y);
      if (CVM_GT(3, S * C, Zero))
        Cc = Z / Ss;
      else
        Ss = Z / Cc;
    }
    double Z;
    if (CVM_GT(4, Ix, 0x48000000))
      Z = (InvSqrtPi * Cc) / std::sqrt(Y);
    else {
      double U = pone(Y), V = qone(Y);
      Z = InvSqrtPi * (U * Cc - V * Ss) / std::sqrt(Y);
    }
    if (CVM_LT(5, Hx, 0))
      return -Z;
    return Z;
  }
  if (CVM_LT(6, Ix, 0x3e400000)) { // |x| < 2**-27
    if (CVM_GT(7, Huge + X, One))
      return Half * X; // inexact
  }
  double Z = X * X;
  double R = Z * (-6.25e-02 + Z * 1.40705666955189706048e-03);
  double S = One + Z * 1.91537599538363460805e-02;
  R *= X;
  return X * Half + R / S;
}

/// e_j1.c __ieee754_y1 — 8 conditionals (16 branches).
double y1Body(const double *Args) {
  double X = Args[0];
  int32_t Hx = hi(X);
  int32_t Ix = Hx & 0x7fffffff;
  int32_t Lx = lo(X);
  if (CVM_GE(0, Ix, 0x7ff00000))
    return One / (X + X * X);
  if (CVM_EQ(1, Ix | Lx, 0))
    return -One / Zero;
  if (CVM_LT(2, Hx, 0))
    return Zero / Zero;
  if (CVM_GE(3, Ix, 0x40000000)) { // |x| >= 2.0
    double S = std::sin(X), C = std::cos(X);
    double Ss = -S - C, Cc = S - C;
    if (CVM_LT(4, Ix, 0x7fe00000)) {
      double Z = std::cos(X + X);
      if (CVM_GT(5, S * C, Zero))
        Cc = Z / Ss;
      else
        Ss = Z / Cc;
    }
    double Z;
    if (CVM_GT(6, Ix, 0x48000000))
      Z = (InvSqrtPi * Ss) / std::sqrt(X);
    else {
      double U = pone(X), V = qone(X);
      Z = InvSqrtPi * (U * Ss + V * Cc) / std::sqrt(X);
    }
    return Z;
  }
  if (CVM_LE(7, Ix, 0x3c900000)) // x < 2**-54
    return -Tpi / X;
  double Z = X * X;
  double U = -1.96057090646238940668e-01 + Z * 5.04438716639811282616e-02;
  double V = One + Z * 1.99256395583639338344e-02;
  // Uninstrumented external __ieee754_j1(x) call, as in the original.
  return X * (U / V) + Tpi * (::j1(X) * std::log(X) - One / X);
}

/// s_erf.c erf — 10 conditionals (20 branches).
double erfBody(const double *Args) {
  const double Efx = 1.28379167095512586316e-01;  // 2/sqrt(pi) - 1
  const double Efx8 = 1.02703333676410069053e+00; // 8*(2/sqrt(pi) - 1)
  double X = Args[0];
  int32_t Hx = hi(X);
  int32_t Ix = Hx & 0x7fffffff;
  if (CVM_GE(0, Ix, 0x7ff00000)) { // erf(nan)=nan, erf(+-inf)=+-1
    int I = (static_cast<uint32_t>(Hx) >> 31) << 1;
    return static_cast<double>(1 - I) + One / X;
  }
  if (CVM_LT(1, Ix, 0x3feb0000)) { // |x| < 0.84375
    if (CVM_LT(2, Ix, 0x3e300000)) { // |x| < 2**-28
      if (CVM_LT(3, Ix, 0x00800000)) // avoid underflow
        return 0.125 * (8.0 * X + Efx8 * X);
      return X + Efx * X;
    }
    double Z = X * X;
    double R = 1.28379167095512558561e-01 + Z * (-3.25042107247001499370e-01);
    double S = One + Z * 3.97917223959155352819e-01;
    double Y = R / S;
    return X + X * Y;
  }
  if (CVM_LT(4, Ix, 0x3ff40000)) { // 0.84375 <= |x| < 1.25
    double S = std::fabs(X) - One;
    double P = -2.36211856075265944077e-03 + S * 4.14856118683748331666e-01;
    double Q = One + S * 1.06420880400844228286e-01;
    if (CVM_GE(5, Hx, 0))
      return Erx + P / Q;
    return -Erx - P / Q;
  }
  if (CVM_GE(6, Ix, 0x40180000)) { // inf > |x| >= 6
    if (CVM_GE(7, Hx, 0))
      return One - Tiny; // raise inexact
    return Tiny - One;
  }
  double AbsX = std::fabs(X);
  double S = One / (AbsX * AbsX);
  double R, Big;
  if (CVM_LT(8, Ix, 0x4006db6e)) { // |x| < 1/0.35
    R = -9.86494403484714822705e-03 + S * (-6.93858326784720833426e-01);
    Big = One + S * 1.96512716674392571292e+01;
  } else { // |x| >= 1/0.35
    R = -9.86494292470009928597e-03 + S * (-7.99283237680523006574e-01);
    Big = One + S * 3.03380607434824582924e+01;
  }
  double Z = setLowWord(AbsX, 0);
  double Rexp =
      std::exp(-Z * Z - 0.5625) * std::exp((Z - AbsX) * (Z + AbsX) + R / Big);
  if (CVM_GE(9, Hx, 0))
    return One - Rexp / AbsX;
  return Rexp / AbsX - One;
}

/// s_erf.c erfc — 12 conditionals (24 branches).
double erfcBody(const double *Args) {
  double X = Args[0];
  int32_t Hx = hi(X);
  int32_t Ix = Hx & 0x7fffffff;
  if (CVM_GE(0, Ix, 0x7ff00000)) { // erfc(nan)=nan, erfc(+-inf)=0,2
    int I = (static_cast<uint32_t>(Hx) >> 31) << 1;
    return static_cast<double>(I) + One / X;
  }
  if (CVM_LT(1, Ix, 0x3feb0000)) { // |x| < 0.84375
    if (CVM_LT(2, Ix, 0x3c700000)) // |x| < 2**-56
      return One - X;
    double Z = X * X;
    double R = 1.28379167095512558561e-01 + Z * (-3.25042107247001499370e-01);
    double S = One + Z * 3.97917223959155352819e-01;
    double Y = R / S;
    if (CVM_LT(3, Hx, 0x3fd00000)) // x < 1/4
      return One - (X + X * Y);
    R = X * Y;
    R += X - Half;
    return Half - R;
  }
  if (CVM_LT(4, Ix, 0x3ff40000)) { // 0.84375 <= |x| < 1.25
    double S = std::fabs(X) - One;
    double P = -2.36211856075265944077e-03 + S * 4.14856118683748331666e-01;
    double Q = One + S * 1.06420880400844228286e-01;
    if (CVM_GE(5, Hx, 0))
      return One - Erx - P / Q;
    return One + Erx + P / Q;
  }
  if (CVM_LT(6, Ix, 0x403c0000)) { // |x| < 28
    double AbsX = std::fabs(X);
    double S = One / (AbsX * AbsX);
    double R, Big;
    if (CVM_LT(7, Ix, 0x4006db6d)) { // |x| < 1/.35 ~ 2.857143
      R = -9.86494403484714822705e-03 + S * (-6.93858326784720833426e-01);
      Big = One + S * 1.96512716674392571292e+01;
    } else { // |x| >= 1/.35
      if (CVM_LT(8, Hx, 0) && CVM_GE(9, Ix, 0x40180000))
        return 2.0 - Tiny; // x < -6
      R = -9.86494292470009928597e-03 + S * (-7.99283237680523006574e-01);
      Big = One + S * 3.03380607434824582924e+01;
    }
    double Z = setLowWord(AbsX, 0);
    double Rexp = std::exp(-Z * Z - 0.5625) *
                  std::exp((Z - AbsX) * (Z + AbsX) + R / Big);
    if (CVM_GT(10, Hx, 0))
      return Rexp / AbsX;
    return 2.0 - Rexp / AbsX;
  }
  if (CVM_GT(11, Hx, 0))
    return Tiny * Tiny; // underflow
  return 2.0 - Tiny;
}

} // namespace

namespace coverme {
namespace fdlibm {
namespace detail {

Program makeJ0() {
  return makeProgram("ieee754_j0", "e_j0.c", 1, 9, 29, j0Body);
}

Program makeY0() {
  return makeProgram("ieee754_y0", "e_j0.c", 1, 8, 26, y0Body);
}

Program makeJ1() {
  return makeProgram("ieee754_j1", "e_j1.c", 1, 8, 26, j1Body);
}

Program makeY1() {
  return makeProgram("ieee754_y1", "e_j1.c", 1, 8, 26, y1Body);
}

Program makeErf() { return makeProgram("erf", "s_erf.c", 1, 10, 38, erfBody); }

Program makeErfc() {
  return makeProgram("erfc", "s_erf.c", 1, 12, 43, erfcBody);
}

} // namespace

} // namespace fdlibm
} // namespace coverme
