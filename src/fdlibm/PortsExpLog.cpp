//===- PortsExpLog.cpp - exp/expm1/log/log10/log1p/pow/scalb ports ----------===//
//
// Ports of Fdlibm 5.3 e_exp.c, s_expm1.c, e_log.c, e_log10.c, s_log1p.c,
// e_pow.c, and e_scalb.c. Paper branch counts: 24, 42, 22, 8, 36, 114, 14.
// e_pow.c is the largest benchmark in the suite (57 conditionals); its
// special-case cascade is reproduced test for test.
//
//===----------------------------------------------------------------------===//

#include "fdlibm/PortDetail.h"
#include "fdlibm/Ports.h"

using namespace coverme;
using namespace coverme::fdlibm::detail;

namespace {

const double One = 1.0, Half = 0.5, Huge = 1e300, Tiny = 1e-300, Zero = 0.0;
const double Two54 = 1.80143985094819840000e+16;
const double Ln2Hi = 6.93147180369123816490e-01;
const double Ln2Lo = 1.90821492927058770002e-10;
const double InvLn2 = 1.44269504088896338700e+00;
const double OThreshold = 7.09782712893383973096e+02;
const double UThreshold = -7.45133219101941108420e+02;
const double Twom1000 = 9.33263618503218878990e-302;

/// e_exp.c — 12 conditionals (24 branches).
double expBody(const double *Args) {
  double X = Args[0];
  int32_t Hx = hi(X);
  int Xsb = (Hx >> 31) & 1;
  Hx &= 0x7fffffff;
  double HiPart = 0.0, LoPart = 0.0;
  int K = 0;
  if (CVM_GE(0, Hx, 0x40862e42)) { // |x| >= 709.78
    if (CVM_GE(1, Hx, 0x7ff00000)) {
      if (CVM_NE(2, (Hx & 0xfffff) | lo(X), 0))
        return X + X; // NaN
      if (CVM_EQ(3, Xsb, 0))
        return X; // exp(+inf) = +inf
      return 0.0;   // exp(-inf) = 0
    }
    if (CVM_GT(4, X, OThreshold))
      return Huge * Huge; // overflow
    if (CVM_LT(5, X, UThreshold))
      return Twom1000 * Twom1000; // underflow
  }
  if (CVM_GT(6, Hx, 0x3fd62e42)) { // |x| > 0.5 ln2
    if (CVM_LT(7, Hx, 0x3ff0a2b2)) { // |x| < 1.5 ln2
      HiPart = X - (Xsb == 0 ? Ln2Hi : -Ln2Hi);
      LoPart = Xsb == 0 ? Ln2Lo : -Ln2Lo;
      K = 1 - Xsb - Xsb;
    } else {
      K = static_cast<int>(InvLn2 * X + (Xsb == 0 ? 0.5 : -0.5));
      double T = K;
      HiPart = X - T * Ln2Hi;
      LoPart = T * Ln2Lo;
    }
    X = HiPart - LoPart;
  } else if (CVM_LT(8, Hx, 0x3e300000)) { // |x| < 2**-28
    if (CVM_GT(9, Huge + X, One))
      return One + X; // inexact
  } else {
    K = 0;
  }
  // exp(r) on |r| <= 0.5 ln2 via a short rational kernel.
  double T = X * X;
  double C = X - T * (0.16666666666666602 - T * 2.7777777777015593e-03);
  double Y;
  if (CVM_EQ(10, K, 0))
    return One - ((X * C) / (C - 2.0) - X);
  Y = One - ((LoPart - (X * C) / (2.0 - C)) - HiPart);
  if (CVM_GE(11, K, -1021)) {
    setHi(Y, hi(Y) + (K << 20)); // add k to y's exponent
    return Y;
  }
  setHi(Y, hi(Y) + ((K + 1000) << 20));
  return Y * Twom1000;
}

/// s_expm1.c — 21 conditionals (42 branches).
double expm1Body(const double *Args) {
  double X = Args[0];
  int32_t Hx = hi(X);
  int32_t Xsb = Hx & static_cast<int32_t>(0x80000000);
  double Y = CVM_EQ(0, Xsb, 0) ? X : -X; // y = |x|
  Hx &= 0x7fffffff;
  double HiPart = 0.0, LoPart = 0.0, C = 0.0;
  int K = 0;
  (void)Y;
  if (CVM_GE(1, Hx, 0x4043687a)) { // |x| >= 56 ln2
    if (CVM_GE(2, Hx, 0x40862e42)) { // |x| >= 709.78
      if (CVM_GE(3, Hx, 0x7ff00000)) {
        if (CVM_NE(4, (Hx & 0xfffff) | lo(X), 0))
          return X + X; // NaN
        if (CVM_EQ(5, Xsb, 0))
          return X; // expm1(+inf) = +inf
        return -1.0; // expm1(-inf) = -1
      }
      if (CVM_GT(6, X, OThreshold))
        return Huge * Huge; // overflow
    }
    if (CVM_NE(7, Xsb, 0)) { // x < -56 ln2: expm1 = -1 with inexact
      if (CVM_LT(8, X + Tiny, 0.0))
        return Tiny - One;
    }
  }
  if (CVM_GT(9, Hx, 0x3fd62e42)) { // |x| > 0.5 ln2
    if (CVM_LT(10, Hx, 0x3ff0a2b2)) { // |x| < 1.5 ln2
      if (CVM_EQ(11, Xsb, 0)) {
        HiPart = X - Ln2Hi;
        LoPart = Ln2Lo;
        K = 1;
      } else {
        HiPart = X + Ln2Hi;
        LoPart = -Ln2Lo;
        K = -1;
      }
    } else {
      K = static_cast<int>(InvLn2 * X + (CVM_EQ(12, Xsb, 0) ? 0.5 : -0.5));
      double T = K;
      HiPart = X - T * Ln2Hi;
      LoPart = T * Ln2Lo;
    }
    X = HiPart - LoPart;
    C = (HiPart - X) - LoPart;
  } else if (CVM_LT(13, Hx, 0x3c900000)) { // |x| < 2**-54
    double T = Huge + X;
    return X - (T - (Huge + X)); // inexact when x != 0
  } else {
    K = 0;
  }
  // Kernel on the reduced argument.
  double Hfx = 0.5 * X;
  double Hxs = X * Hfx;
  double R1 = One + Hxs * (-3.33333333333331316428e-02 +
                           Hxs * 1.58730158725481460165e-03);
  double T = 3.0 - R1 * Hfx;
  double E = Hxs * ((R1 - T) / (6.0 - X * T));
  if (CVM_EQ(14, K, 0))
    return X - (X * E - Hxs); // |x| <= 0.5 ln2
  E = (X * (E - C) - C);
  E -= Hxs;
  if (CVM_EQ(15, K, -1))
    return 0.5 * (X - E) - 0.5;
  if (CVM_EQ(16, K, 1)) {
    if (CVM_LT(17, X, -0.25))
      return -2.0 * (E - (X + 0.5));
    return One + 2.0 * (X - E);
  }
  double YOut;
  if (CVM_LE(18, K, -2) || CVM_GT(19, K, 56)) { // suffice to return exp(x)-1
    YOut = One - (E - X);
    setHi(YOut, hi(YOut) + (K << 20));
    return YOut - One;
  }
  double TT = One;
  if (CVM_LT(20, K, 20)) {
    setHi(TT, 0x3ff00000 - (0x200000 >> K)); // t = 1 - 2^-k
    YOut = TT - (E - X);
    setHi(YOut, hi(YOut) + (K << 20));
  } else {
    setHi(TT, (0x3ff - K) << 20); // t = 2^-k
    YOut = X - (E + TT);
    YOut += One;
    setHi(YOut, hi(YOut) + (K << 20));
  }
  return YOut;
}

/// e_log.c — 11 conditionals (22 branches).
double logBody(const double *Args) {
  double X = Args[0];
  int32_t Hx = hi(X), Lx = lo(X);
  int K = 0;
  if (CVM_LT(0, Hx, 0x00100000)) { // x < 2**-1022
    if (CVM_EQ(1, (Hx & 0x7fffffff) | Lx, 0))
      return -Two54 / Zero; // log(+-0) = -inf
    if (CVM_LT(2, Hx, 0))
      return (X - X) / Zero; // log(-#) = NaN
    K -= 54;
    X *= Two54; // normalize subnormal x
    Hx = hi(X);
  }
  if (CVM_GE(3, Hx, 0x7ff00000))
    return X + X; // inf or NaN
  K += (Hx >> 20) - 1023;
  Hx &= 0x000fffff;
  int32_t I = (Hx + 0x95f64) & 0x100000;
  X = setHighWord(X, Hx | (I ^ 0x3ff00000)); // normalize x to [sqrt(2)/2, sqrt(2)]
  K += I >> 20;
  double F = X - 1.0;
  double Dk;
  if (CVM_LT(4, 0x000fffff & (2 + Hx), 3)) { // |f| < 2**-20
    if (CVM_EQ(5, F, Zero)) {
      if (CVM_EQ(6, K, 0))
        return Zero;
      Dk = K;
      return Dk * Ln2Hi + Dk * Ln2Lo;
    }
    double R = F * F * (0.5 - 0.3333333333333333 * F);
    if (CVM_EQ(7, K, 0))
      return F - R;
    Dk = K;
    return Dk * Ln2Hi - ((R - Dk * Ln2Lo) - F);
  }
  double S = F / (2.0 + F);
  Dk = K;
  double Z = S * S;
  I = Hx - 0x6147a;
  double W = Z * Z;
  int32_t J = 0x6b851 - Hx;
  double T1 = W * (0.3999999999940942 + W * 0.22222198432149784);
  double T2 = Z * (0.6666666666666735 + W * 0.2857142874366239);
  double R = T2 + T1;
  I |= J;
  if (CVM_GT(8, I, 0)) {
    double Hfsq = 0.5 * F * F;
    if (CVM_EQ(9, K, 0))
      return F - (Hfsq - S * (Hfsq + R));
    return Dk * Ln2Hi - ((Hfsq - (S * (Hfsq + R) + Dk * Ln2Lo)) - F);
  }
  if (CVM_EQ(10, K, 0))
    return F - S * (F - R);
  return Dk * Ln2Hi - ((S * (F - R) - Dk * Ln2Lo) - F);
}

/// e_log10.c — 4 conditionals (8 branches).
double log10Body(const double *Args) {
  const double IvLn10 = 4.34294481903251816668e-01;
  const double Log102Hi = 3.01029995663611771306e-01;
  const double Log102Lo = 3.69423907715893089906e-13;
  double X = Args[0];
  int32_t Hx = hi(X), Lx = lo(X);
  int K = 0;
  if (CVM_LT(0, Hx, 0x00100000)) {
    if (CVM_EQ(1, (Hx & 0x7fffffff) | Lx, 0))
      return -Two54 / Zero; // log10(+-0) = -inf
    if (CVM_LT(2, Hx, 0))
      return (X - X) / Zero; // log10(-#) = NaN
    K -= 54;
    X *= Two54;
    Hx = hi(X);
  }
  if (CVM_GE(3, Hx, 0x7ff00000))
    return X + X;
  K += (Hx >> 20) - 1023;
  int32_t I = (static_cast<uint32_t>(K) & 0x80000000u) >> 31;
  Hx = (Hx & 0x000fffff) | ((0x3ff - I) << 20);
  double Y = K + I;
  X = setHighWord(X, Hx);
  double Z = Y * Log102Lo + IvLn10 * std::log(X);
  return Z + Y * Log102Hi;
}

/// s_log1p.c — 18 conditionals (36 branches).
double log1pBody(const double *Args) {
  double X = Args[0];
  int32_t Hx = hi(X);
  int32_t Ax = Hx & 0x7fffffff;
  int K = 1, Hu = 0;
  double F = 0.0, C = 0.0;
  if (CVM_LT(0, Hx, 0x3fda827a)) { // x < 0.41422
    if (CVM_GE(1, Ax, 0x3ff00000)) { // x <= -1
      if (CVM_EQ(2, X, -1.0))
        return -Two54 / Zero; // log1p(-1) = -inf
      return (X - X) / (X - X); // log1p(x < -1) = NaN
    }
    if (CVM_LT(3, Ax, 0x3e200000)) { // |x| < 2**-29
      if (CVM_GT(4, Two54 + X, Zero) && CVM_LT(5, Ax, 0x3c900000))
        return X; // |x| < 2**-54
      return X - X * X * 0.5;
    }
    if (CVM_GT(6, Hx, 0) ||
        CVM_LE(7, Hx, static_cast<int32_t>(0xbfd2bec3))) {
      K = 0; // -0.2929 < x < 0.41422
      F = X;
      Hu = 1;
    }
  }
  if (CVM_GE(8, Hx, 0x7ff00000))
    return X + X;
  if (CVM_NE(9, K, 0)) {
    double U;
    if (CVM_LT(10, Hx, 0x43400000)) {
      U = 1.0 + X;
      Hu = hi(U);
      K = (Hu >> 20) - 1023;
      // Correction term for the rounding in 1+x.
      C = CVM_GT(11, K, 0) ? 1.0 - (U - X) : X - (U - 1.0);
      C /= U;
    } else {
      U = X;
      Hu = hi(U);
      K = (Hu >> 20) - 1023;
      C = 0;
    }
    Hu &= 0x000fffff;
    if (CVM_LT(12, Hu, 0x6a09e)) {
      U = setHighWord(U, Hu | 0x3ff00000); // normalize u
    } else {
      K += 1;
      U = setHighWord(U, Hu | 0x3fe00000); // normalize u/2
      Hu = (0x00100000 - Hu) >> 2;
    }
    F = U - 1.0;
  }
  double Hfsq = 0.5 * F * F;
  if (CVM_EQ(13, Hu, 0)) { // |f| < 2**-20
    if (CVM_EQ(14, F, Zero)) {
      if (CVM_EQ(15, K, 0))
        return Zero;
      C += K * Ln2Lo;
      return K * Ln2Hi + C;
    }
    double R = Hfsq * (1.0 - 0.66666666666666666 * F);
    if (CVM_EQ(16, K, 0))
      return F - R;
    return K * Ln2Hi - ((R - (K * Ln2Lo + C)) - F);
  }
  double S = F / (2.0 + F);
  double Z = S * S;
  double R = Z * (0.6666666666666735 +
                  Z * (0.3999999999940942 + Z * 0.2857142874366239));
  if (CVM_EQ(17, K, 0))
    return F - (Hfsq - S * (Hfsq + R));
  return K * Ln2Hi - ((Hfsq - (S * (Hfsq + R) + (K * Ln2Lo + C))) - F);
}

/// e_pow.c — 57 conditionals (114 branches), the suite's largest program.
double powBody(const double *Args) {
  const double Ovt = 8.0085662595372944372e-17; // -(1024-log2(ovfl+.5ulp))
  double X = Args[0], Y = Args[1];
  int32_t Hx = hi(X), Hy = hi(Y);
  uint32_t Lx = lowWord(X), Ly = lowWord(Y);
  int32_t Ix = Hx & 0x7fffffff, Iy = Hy & 0x7fffffff;

  // y == 0: x**0 = 1.
  if (CVM_EQ(0, Iy | static_cast<int32_t>(Ly), 0))
    return One;
  // x or y NaN.
  if (CVM_GT(1, Ix, 0x7ff00000))
    return X + Y;
  if (CVM_EQ(2, Ix, 0x7ff00000) && CVM_NE(3, Lx, 0))
    return X + Y;
  if (CVM_GT(4, Iy, 0x7ff00000))
    return X + Y;
  if (CVM_EQ(5, Iy, 0x7ff00000) && CVM_NE(6, Ly, 0))
    return X + Y;

  // Determine whether y is an odd/even integer when x < 0.
  int YIsInt = 0;
  if (CVM_LT(7, Hx, 0)) {
    if (CVM_GE(8, Iy, 0x43400000)) { // |y| >= 2**52: even integer
      YIsInt = 2;
    } else if (CVM_GE(9, Iy, 0x3ff00000)) {
      int K = (Iy >> 20) - 0x3ff;
      if (CVM_GT(10, K, 20)) {
        uint32_t J = Ly >> (52 - K);
        if (CVM_EQ(11, J << (52 - K), Ly))
          YIsInt = 2 - static_cast<int>(J & 1);
      } else if (CVM_EQ(12, Ly, 0)) {
        int32_t J = Iy >> (20 - K);
        if (CVM_EQ(13, J << (20 - K), Iy))
          YIsInt = 2 - (J & 1);
      }
    }
  }

  // Special values of y.
  if (CVM_EQ(14, Ly, 0)) {
    if (CVM_EQ(15, Iy, 0x7ff00000)) { // y is +-inf
      if (CVM_EQ(16, (Ix - 0x3ff00000) | static_cast<int32_t>(Lx), 0))
        return Y - Y; // (+-1)**inf is NaN (C89 fdlibm behaviour)
      if (CVM_GE(17, Ix, 0x3ff00000)) // |x| >= 1
        return CVM_GE(18, Hy, 0) ? Y : Zero;
      return CVM_LT(19, Hy, 0) ? -Y : Zero; // |x| < 1
    }
    if (CVM_EQ(20, Iy, 0x3ff00000)) { // y is +-1
      if (CVM_LT(21, Hy, 0))
        return One / X;
      return X;
    }
    if (CVM_EQ(22, Hy, 0x40000000)) // y is 2
      return X * X;
    if (CVM_EQ(23, Hy, 0x3fe00000)) { // y is 0.5
      if (CVM_GE(24, Hx, 0))
        return std::sqrt(X);
    }
  }

  double Ax = std::fabs(X);
  // Special values of x.
  if (CVM_EQ(25, Lx, 0)) {
    if (CVM_EQ(26, Ix, 0x7ff00000) || CVM_EQ(27, Ix, 0) ||
        CVM_EQ(28, Ix, 0x3ff00000)) { // x is +-0, +-inf, +-1
      double Z = Ax;
      if (CVM_LT(29, Hy, 0))
        Z = One / Z; // z = 1/|x| for y < 0
      if (CVM_LT(30, Hx, 0)) {
        if (CVM_EQ(31, (Ix - 0x3ff00000) | YIsInt, 0))
          Z = (Z - Z) / (Z - Z); // (-1)**non-int is NaN
        else if (CVM_EQ(32, YIsInt, 1))
          Z = -Z; // (x<0)**odd = -(|x|**odd)
      }
      return Z;
    }
  }

  int N = (Hx >> 31) + 1; // 1 when x > 0, 0 when x < 0.
  // (x<0)**(non-int) is NaN.
  if (CVM_EQ(33, N | YIsInt, 0))
    return (X - X) / (X - X);

  double S = One;
  if (CVM_EQ(34, N | (YIsInt - 1), 0))
    S = -One; // (-ve)**odd

  double T1, T2;
  if (CVM_GT(35, Iy, 0x41e00000)) { // |y| > 2**31
    if (CVM_GT(36, Iy, 0x43f00000)) { // |y| > 2**64: must over/underflow
      if (CVM_LE(37, Ix, 0x3fefffff))
        return CVM_LT(38, Hy, 0) ? Huge * Huge : Tiny * Tiny;
      if (CVM_GE(39, Ix, 0x3ff00000))
        return CVM_GT(40, Hy, 0) ? Huge * Huge : Tiny * Tiny;
    }
    // Over/underflow when x is not close to one.
    if (CVM_LT(41, Ix, 0x3fefffff))
      return CVM_LT(42, Hy, 0) ? S * Huge * Huge : S * Tiny * Tiny;
    if (CVM_GT(43, Ix, 0x3ff00000))
      return CVM_GT(44, Hy, 0) ? S * Huge * Huge : S * Tiny * Tiny;
    // |1-x| is tiny: log2(ax) ~ (ax-1)/ln2 to double-double accuracy.
    double T = Ax - One;
    double W = (T * T) * (0.5 - T * (0.3333333333333333 - T * 0.25));
    double U = 1.4426950216293335 * T; // ivln2_h * t
    double V = T * 1.9259629911266175e-08 - W * 1.4426950408889634;
    T1 = setLowWord(U + V, 0);
    T2 = V - (T1 - U);
  } else {
    // General case: t1 + t2 = log2(ax) in double-double.
    double Ax2 = Ax;
    int N2 = 0;
    int32_t IxN = Ix;
    if (CVM_LT(45, IxN, 0x00100000)) { // subnormal x
      Ax2 *= Two54;
      N2 -= 54;
      IxN = hi(Ax2);
    }
    N2 += (IxN >> 20) - 0x3ff;
    int32_t J = IxN & 0x000fffff;
    IxN = J | 0x3ff00000;
    if (CVM_LE(46, J, 0x3988e)) {
      // |x| in [sqrt(2)/2, sqrt(2)): k = 0.
    } else if (CVM_LT(47, J, 0xbb67a)) {
      // k = 1 interval of the original's table-driven reduction.
    } else {
      N2 += 1;
      IxN -= 0x00100000;
    }
    double AxNorm = setHighWord(Ax2, IxN);
    double Log2Ax = std::log2(AxNorm) + static_cast<double>(N2);
    T1 = setLowWord(Log2Ax, 0);
    T2 = Log2Ax - T1;
  }

  // Split y and compute z = y * log2(ax) in double-double.
  double Y1 = setLowWord(Y, 0);
  double PL = (Y - Y1) * T1 + Y * T2;
  double PH = Y1 * T1;
  double Z = PL + PH;
  int32_t J = hi(Z);
  int32_t I = lo(Z);
  if (CVM_GE(48, J, 0x40900000)) { // z >= 1024
    if (CVM_NE(49, (J - 0x40900000) | I, 0))
      return S * Huge * Huge; // overflow
    if (CVM_GT(50, PL + Ovt, Z - PH))
      return S * Huge * Huge; // overflow
  } else if (CVM_GE(51, J & 0x7fffffff, 0x4090cc00)) { // z <= -1075
    if (CVM_NE(52, (J - static_cast<int32_t>(0xc090cc00)) | I, 0))
      return S * Tiny * Tiny; // underflow
    if (CVM_LE(53, PL, Z - PH))
      return S * Tiny * Tiny; // underflow
  }

  // Compute 2**(ph+pl): extract the integer part first.
  int32_t IAbs = J & 0x7fffffff;
  int NExp = 0;
  if (CVM_GT(54, IAbs, 0x3fe00000)) { // |z| > 0.5: need reduction
    int Mag = static_cast<int>(std::fabs(Z) + 0.5);
    if (CVM_LT(55, J, 0))
      NExp = -Mag;
    else
      NExp = Mag;
  }
  double Frac = std::exp2((PH - NExp) + PL); // in ~[2**-0.5, 2**0.5]
  int32_t Jz = hi(Frac) + (NExp << 20);
  double Out;
  if (CVM_LE(56, Jz >> 20, 0))
    Out = std::scalbn(Frac, NExp); // subnormal result
  else
    Out = setHighWord(Frac, Jz);
  return S * Out;
}

/// e_scalb.c — 7 conditionals (14 branches).
double scalbBody(const double *Args) {
  double X = Args[0], Fn = Args[1];
  if (CVM_NE(0, X, X))
    return X * Fn; // isnan(x)
  if (CVM_NE(1, Fn, Fn))
    return X * Fn; // isnan(fn)
  int32_t IFn = hi(Fn) & 0x7fffffff;
  if (CVM_GE(2, IFn, 0x7ff00000)) { // !finite(fn)
    if (CVM_GT(3, Fn, 0.0))
      return X * Fn;
    return X / (-Fn);
  }
  if (CVM_NE(4, std::rint(Fn), Fn))
    return (Fn - Fn) / (Fn - Fn); // fn not an integer: NaN
  if (CVM_GT(5, Fn, 65000.0))
    return std::scalbn(X, 65000);
  if (CVM_GT(6, -Fn, 65000.0))
    return std::scalbn(X, -65000);
  return std::scalbn(X, static_cast<int>(Fn));
}

} // namespace

namespace coverme {
namespace fdlibm {
namespace detail {

Program makeExp() {
  return makeProgram("ieee754_exp", "e_exp.c", 1, 12, 31, expBody);
}

Program makeExpm1() {
  return makeProgram("expm1", "s_expm1.c", 1, 21, 56, expm1Body);
}

Program makeLog() {
  return makeProgram("ieee754_log", "e_log.c", 1, 11, 39, logBody);
}

Program makeLog10() {
  return makeProgram("ieee754_log10", "e_log10.c", 1, 4, 18, log10Body);
}

Program makeLog1p() {
  return makeProgram("log1p", "s_log1p.c", 1, 18, 46, log1pBody);
}

Program makePow() {
  return makeProgram("ieee754_pow", "e_pow.c", 2, 57, 139, powBody);
}

Program makeScalb() {
  return makeProgram("ieee754_scalb", "e_scalb.c", 2, 7, 9, scalbBody);
}

} // namespace detail
} // namespace fdlibm
} // namespace coverme
