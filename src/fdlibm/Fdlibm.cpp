//===- Fdlibm.cpp - The Fdlibm 5.3 benchmark suite ---------------------------===//

#include "fdlibm/Fdlibm.h"

#include "fdlibm/Ports.h"

using namespace coverme;
using namespace coverme::fdlibm;

const ProgramRegistry &coverme::fdlibm::registry() {
  static const ProgramRegistry Reg = [] {
    ProgramRegistry R;
    // Table 2 order (sorted by benchmark file name).
    R.add(detail::makeAcos());
    R.add(detail::makeAcosh());
    R.add(detail::makeAsin());
    R.add(detail::makeAtan2());
    R.add(detail::makeAtanh());
    R.add(detail::makeCosh());
    R.add(detail::makeExp());
    R.add(detail::makeFmod());
    R.add(detail::makeHypot());
    R.add(detail::makeJ0());
    R.add(detail::makeY0());
    R.add(detail::makeJ1());
    R.add(detail::makeY1());
    R.add(detail::makeLog());
    R.add(detail::makeLog10());
    R.add(detail::makePow());
    R.add(detail::makeRemPio2());
    R.add(detail::makeRemainder());
    R.add(detail::makeScalb());
    R.add(detail::makeSinh());
    R.add(detail::makeSqrt());
    R.add(detail::makeKernelCos());
    R.add(detail::makeAsinh());
    R.add(detail::makeAtan());
    R.add(detail::makeCbrt());
    R.add(detail::makeCeil());
    R.add(detail::makeCos());
    R.add(detail::makeErf());
    R.add(detail::makeErfc());
    R.add(detail::makeExpm1());
    R.add(detail::makeFloor());
    R.add(detail::makeIlogb());
    R.add(detail::makeLog1p());
    R.add(detail::makeLogb());
    R.add(detail::makeModf());
    R.add(detail::makeNextafter());
    R.add(detail::makeRint());
    R.add(detail::makeSin());
    R.add(detail::makeTan());
    R.add(detail::makeTanh());
    return R;
  }();
  return Reg;
}

const Program *coverme::fdlibm::lookup(const std::string &Name) {
  return registry().lookup(Name);
}

const ProgramRegistry &coverme::fdlibm::extendedRegistry() {
  static const ProgramRegistry Reg = [] {
    ProgramRegistry R;
    R.add(detail::makeScalbn());
    R.add(detail::makeLdexp());
    R.add(detail::makeKernelSin());
    R.add(detail::makeKernelTan());
    R.add(detail::makeFrexp());
    R.add(detail::makeJn());
    return R;
  }();
  return Reg;
}

const std::vector<PaperRow> &coverme::fdlibm::paperRows() {
  // Branch-coverage percentages from Table 2 (Rand/AFL/CoverMe) and Table 3
  // (Austin; -1 marks the timeout/crash rows). Same order as registry().
  static const std::vector<PaperRow> Rows = {
      {"ieee754_acos", 12, 16.7, 100.0, 100.0, 16.7},
      {"ieee754_acosh", 10, 40.0, 100.0, 90.0, 40.0},
      {"ieee754_asin", 14, 14.3, 85.7, 92.9, 14.3},
      {"ieee754_atan2", 44, 34.1, 86.4, 63.6, 34.1},
      {"ieee754_atanh", 12, 8.8, 75.0, 91.7, 8.3},
      {"ieee754_cosh", 16, 37.5, 81.3, 93.8, 37.5},
      {"ieee754_exp", 24, 20.8, 83.3, 96.7, 75.0},
      {"ieee754_fmod", 60, 48.3, 53.3, 70.0, -1.0},
      {"ieee754_hypot", 22, 40.9, 54.5, 90.9, 36.4},
      {"ieee754_j0", 18, 33.3, 88.9, 94.4, 33.3},
      {"ieee754_y0", 16, 56.3, 75.0, 100.0, 56.3},
      {"ieee754_j1", 16, 50.0, 75.0, 93.8, 50.0},
      {"ieee754_y1", 16, 56.3, 75.0, 100.0, 56.3},
      {"ieee754_log", 22, 59.1, 72.7, 90.9, 59.1},
      {"ieee754_log10", 8, 62.5, 75.0, 87.5, 62.5},
      {"ieee754_pow", 114, 15.8, 88.6, 81.6, -1.0},
      {"ieee754_rem_pio2", 30, 33.3, 86.7, 93.3, -1.0},
      {"ieee754_remainder", 22, 45.5, 50.0, 100.0, 45.5},
      {"ieee754_scalb", 14, 50.0, 42.9, 92.9, 57.1},
      {"ieee754_sinh", 20, 35.0, 70.0, 95.0, 35.0},
      {"ieee754_sqrt", 46, 69.6, 71.7, 82.6, -1.0},
      {"kernel_cos", 8, 37.5, 87.5, 87.5, 37.5},
      {"asinh", 12, 41.7, 83.3, 91.7, 41.7},
      {"atan", 26, 19.2, 15.4, 88.5, 26.9},
      {"cbrt", 6, 50.0, 66.7, 83.3, 50.0},
      {"ceil", 30, 10.0, 83.3, 83.3, 36.7},
      {"cos", 8, 75.0, 87.5, 100.0, 75.0},
      {"erf", 20, 30.0, 85.0, 100.0, 30.0},
      {"erfc", 24, 25.0, 79.2, 100.0, 25.0},
      {"expm1", 42, 21.4, 85.7, 97.6, -1.0},
      {"floor", 30, 10.0, 83.3, 83.3, 36.7},
      {"ilogb", 12, 16.7, 16.7, 75.0, 16.7},
      {"log1p", 36, 38.9, 77.8, 88.9, 61.1},
      {"logb", 6, 50.0, 16.7, 83.3, 50.0},
      {"modf", 10, 33.3, 80.0, 100.0, 50.0},
      {"nextafter", 44, 59.1, 65.9, 79.6, 50.0},
      {"rint", 20, 15.0, 75.0, 90.0, 35.0},
      {"sin", 8, 75.0, 87.5, 100.0, 75.0},
      {"tan", 4, 50.0, 75.0, 100.0, 50.0},
      {"tanh", 12, 33.3, 75.0, 100.0, 33.3},
  };
  return Rows;
}
