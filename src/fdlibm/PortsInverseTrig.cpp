//===- PortsInverseTrig.cpp - acos/asin/atan/atan2 ports --------------------===//
//
// Ports of Fdlibm 5.3 e_acos.c, e_asin.c, s_atan.c, and e_atan2.c. The
// paper's branch counts are 12, 14, 26, and 44; switch statements in atan2
// are lowered to equality chains so the same arm count is observable.
//
//===----------------------------------------------------------------------===//

#include "fdlibm/PortDetail.h"
#include "fdlibm/Ports.h"

using namespace coverme;
using namespace coverme::fdlibm::detail;

namespace {

const double One = 1.0, Huge = 1e300, Tiny = 1.0e-300, Zero = 0.0;
const double PiO2Hi = 1.57079632679489655800e+00;
const double PiO2Lo = 6.12323399573676603587e-17;
const double Pi = 3.14159265358979311600e+00;
const double PiLo = 1.2246467991473531772e-16;

/// e_acos.c — 6 conditionals (12 branches).
double acosBody(const double *Args) {
  double X = Args[0];
  int32_t Hx = hi(X), Lx = lo(X);
  int32_t Ix = Hx & 0x7fffffff;
  if (CVM_GE(0, Ix, 0x3ff00000)) { // |x| >= 1
    if (CVM_EQ(1, (Ix - 0x3ff00000) | Lx, 0)) { // |x| == 1
      if (CVM_GT(2, Hx, 0))
        return 0.0; // acos(1) = 0
      return Pi + 2.0 * PiO2Lo; // acos(-1) = pi
    }
    return (X - X) / (X - X); // acos(|x|>1) is NaN
  }
  if (CVM_LT(3, Ix, 0x3fe00000)) { // |x| < 0.5
    if (CVM_LE(4, Ix, 0x3c600000)) // |x| < 2**-57
      return PiO2Hi + PiO2Lo;
    double Z = X * X;
    double R = Z * (0.16666666666666666 + Z * 0.075); // truncated kernel
    return PiO2Hi - (X - (PiO2Lo - X * R));
  }
  if (CVM_LT(5, Hx, 0)) { // x <= -0.5
    double Z = (One + X) * 0.5;
    double S = std::sqrt(Z);
    double R = Z * (0.16666666666666666 + Z * 0.075);
    double W = R * S - PiO2Lo;
    return Pi - 2.0 * (S + W);
  }
  // x >= 0.5.
  double Z = (One - X) * 0.5;
  double S = std::sqrt(Z);
  double DF = setLowWord(S, 0);
  double C = (Z - DF * DF) / (S + DF);
  double R = Z * (0.16666666666666666 + Z * 0.075);
  double W = R * S + C;
  return 2.0 * (DF + W);
}

/// e_asin.c — 7 conditionals (14 branches).
double asinBody(const double *Args) {
  double X = Args[0];
  int32_t Hx = hi(X), Lx = lo(X);
  int32_t Ix = Hx & 0x7fffffff;
  double T = 0.0, W, P, Q, S;
  if (CVM_GE(0, Ix, 0x3ff00000)) { // |x| >= 1
    if (CVM_EQ(1, (Ix - 0x3ff00000) | Lx, 0)) // |x| == 1
      return X * PiO2Hi + X * PiO2Lo;
    return (X - X) / (X - X); // NaN
  }
  if (CVM_LT(2, Ix, 0x3fe00000)) { // |x| < 0.5
    if (CVM_LT(3, Ix, 0x3e400000)) { // |x| < 2**-27
      if (CVM_GT(4, Huge + X, One))
        return X; // inexact
    } else {
      T = X * X;
    }
    P = T * (0.16666666666666666 + T * 0.074);
    Q = One - T * 0.5;
    W = P / Q;
    return X + X * W;
  }
  // 1 > |x| >= 0.5.
  W = One - std::fabs(X);
  T = W * 0.5;
  P = T * (0.16666666666666666 + T * 0.074);
  Q = One - T * 0.5;
  S = std::sqrt(T);
  if (CVM_GE(5, Ix, 0x3fef3333)) { // |x| > 0.975
    W = P / Q;
    T = PiO2Hi - (2.0 * (S + S * W) - PiO2Lo);
  } else {
    W = setLowWord(S, 0);
    double C = (T - W * W) / (S + W);
    double R = P / Q;
    P = 2.0 * S * R - (PiO2Lo - 2.0 * C);
    Q = PiO2Hi / 2.0 - 2.0 * W; // pio4_hi - 2w
    T = PiO2Hi / 2.0 - (P - Q);
  }
  if (CVM_GT(6, Hx, 0))
    return T;
  return -T;
}

/// s_atan.c — 13 conditionals (26 branches).
double atanBody(const double *Args) {
  static const double AtanHi[] = {4.63647609000806093515e-01,
                                  7.85398163397448278999e-01,
                                  9.82793723247329054082e-01,
                                  1.57079632679489655800e+00};
  static const double AtanLo[] = {2.26987774529616870924e-17,
                                  3.06161699786838301793e-17,
                                  1.39033110312309984516e-17,
                                  6.12323399573676603587e-17};
  double X = Args[0];
  int32_t Hx = hi(X);
  int32_t Ix = Hx & 0x7fffffff;
  int Id;
  if (CVM_GE(0, Ix, 0x44100000)) { // |x| >= 2**66
    uint32_t Low = lowWord(X);
    if (CVM_GT(1, Ix, 0x7ff00000))
      return X + X; // NaN
    if (CVM_EQ(2, Ix, 0x7ff00000) && CVM_NE(3, Low, 0))
      return X + X; // NaN
    if (CVM_GT(4, Hx, 0))
      return AtanHi[3] + AtanLo[3];
    return -AtanHi[3] - AtanLo[3];
  }
  if (CVM_LT(5, Ix, 0x3fdc0000)) { // |x| < 0.4375
    if (CVM_LT(6, Ix, 0x3e200000)) { // |x| < 2**-29
      if (CVM_GT(7, Huge + X, One))
        return X; // inexact
    }
    Id = -1;
  } else {
    X = std::fabs(X);
    if (CVM_LT(8, Ix, 0x3ff30000)) { // |x| < 1.1875
      if (CVM_LT(9, Ix, 0x3fe60000)) { // 7/16 <= |x| < 11/16
        Id = 0;
        X = (2.0 * X - One) / (2.0 + X);
      } else { // 11/16 <= |x| < 19/16
        Id = 1;
        X = (X - One) / (X + One);
      }
    } else {
      if (CVM_LT(10, Ix, 0x40038000)) { // |x| < 2.4375
        Id = 2;
        X = (X - 1.5) / (One + 1.5 * X);
      } else { // 2.4375 <= |x| < 2**66
        Id = 3;
        X = -1.0 / X;
      }
    }
  }
  // Truncated odd-polynomial kernel for atan on the reduced argument.
  double Z = X * X;
  double W = Z * Z;
  double S1 = Z * (0.3333333333333293 - W * 0.14285714272503466);
  double S2 = W * 0.19999999999876513;
  if (CVM_LT(11, Id, 0))
    return X - X * (S1 + S2);
  Z = AtanHi[Id] - ((X * (S1 + S2) - AtanLo[Id]) - X);
  if (CVM_LT(12, Hx, 0))
    return -Z;
  return Z;
}

/// e_atan2.c — 22 conditionals (44 branches); the three switch statements
/// over the quadrant selector m are lowered to ==-chains (3 sites each),
/// matching Gcov's branch count for the original switches.
double atan2Body(const double *Args) {
  double Y = Args[0], X = Args[1]; // fdlibm order: atan2(y, x)
  int32_t Hx = hi(X), Lx = lo(X);
  int32_t Ix = Hx & 0x7fffffff;
  int32_t Hy = hi(Y), Ly = lo(Y);
  int32_t Iy = Hy & 0x7fffffff;

  int32_t NanX =
      Ix | static_cast<int32_t>(static_cast<uint32_t>(Lx | (-Lx)) >> 31);
  int32_t NanY =
      Iy | static_cast<int32_t>(static_cast<uint32_t>(Ly | (-Ly)) >> 31);
  if (CVM_GT(0, NanX, 0x7ff00000))
    return X + Y; // x is NaN
  if (CVM_GT(1, NanY, 0x7ff00000))
    return X + Y; // y is NaN
  if (CVM_EQ(2, (Hx - 0x3ff00000) | Lx, 0)) // x == 1.0
    return std::atan(Y);

  int M = ((Hy >> 31) & 1) | ((Hx >> 30) & 2); // 2*sign(x) + sign(y)

  // y == 0: lowered switch(m), sites 4-6.
  if (CVM_EQ(3, Iy | Ly, 0)) {
    if (CVM_EQ(4, M, 0))
      return Y; // atan(+0, +x) = +0
    if (CVM_EQ(5, M, 1))
      return Y; // atan(-0, +x) = -0
    if (CVM_EQ(6, M, 2))
      return Pi + Tiny; // atan(+0, -x) = pi
    return -Pi - Tiny;  // atan(-0, -x) = -pi
  }
  // x == 0.
  if (CVM_EQ(7, Ix | Lx, 0)) {
    if (CVM_LT(8, Hy, 0))
      return -PiO2Hi - Tiny;
    return PiO2Hi + Tiny;
  }
  // x is +-inf: lowered switches, sites 10-12 and 13-15.
  if (CVM_EQ(9, Ix, 0x7ff00000)) {
    if (CVM_EQ(10, Iy, 0x7ff00000)) {
      if (CVM_EQ(11, M, 0))
        return Pi / 4.0 + Tiny; // atan(+inf, +inf)
      if (CVM_EQ(12, M, 1))
        return -Pi / 4.0 - Tiny; // atan(-inf, +inf)
      if (CVM_EQ(13, M, 2))
        return 3.0 * Pi / 4.0 + Tiny; // atan(+inf, -inf)
      return -3.0 * Pi / 4.0 - Tiny;  // atan(-inf, -inf)
    }
    if (CVM_EQ(14, M, 0))
      return Zero; // atan(+..., +inf)
    if (CVM_EQ(15, M, 1))
      return -Zero; // atan(-..., +inf)
    if (CVM_EQ(16, M, 2))
      return Pi + Tiny; // atan(+..., -inf)
    return -Pi - Tiny;  // atan(-..., -inf)
  }
  // y is +-inf.
  if (CVM_EQ(17, Iy, 0x7ff00000)) {
    if (CVM_LT(18, Hy, 0))
      return -PiO2Hi - Tiny;
    return PiO2Hi + Tiny;
  }

  // Compute y/x.
  int32_t K = (Iy - Ix) >> 20;
  double Z;
  if (CVM_GT(19, K, 60)) { // |y/x| > 2**60
    Z = PiO2Hi + 0.5 * PiLo;
  } else if (CVM_LT(20, Hx, 0) && CVM_LT(21, K, -60)) { // |y|/x < -2**60
    Z = 0.0;
  } else {
    Z = std::atan(std::fabs(Y / X));
  }
  switch (M) { // Final quadrant fix-up; arms already counted above.
  case 0:
    return Z;
  case 1:
    return -Z;
  case 2:
    return Pi - (Z - PiLo);
  default:
    return (Z - PiLo) - Pi;
  }
}

} // namespace

namespace coverme {
namespace fdlibm {
namespace detail {

Program makeAcos() {
  return makeProgram("ieee754_acos", "e_acos.c", 1, 6, 33, acosBody);
}

Program makeAsin() {
  return makeProgram("ieee754_asin", "e_asin.c", 1, 7, 31, asinBody);
}

Program makeAtan() {
  return makeProgram("atan", "s_atan.c", 1, 13, 28, atanBody);
}

Program makeAtan2() {
  return makeProgram("ieee754_atan2", "e_atan2.c", 2, 22, 39, atan2Body);
}

} // namespace detail
} // namespace fdlibm
} // namespace coverme
