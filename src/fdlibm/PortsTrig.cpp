//===- PortsTrig.cpp - sin/cos/tan/k_cos/rem_pio2 ports ---------------------===//
//
// Ports of Fdlibm 5.3 s_sin.c, s_cos.c, s_tan.c, k_cos.c, and e_rem_pio2.c.
// Paper branch counts: 8, 8, 4, 8, 30. The kernel functions (__kernel_sin,
// __kernel_cos used internally, __kernel_rem_pio2) stay uninstrumented —
// the paper instruments the entry function only (Sect. 5.3); k_cos.c itself
// is also tested as its own entry function (Fig. 7), including the branch
// that is statically infeasible.
//
//===----------------------------------------------------------------------===//

#include "fdlibm/PortDetail.h"
#include "fdlibm/Ports.h"

#include <array>

using namespace coverme;
using namespace coverme::fdlibm::detail;

namespace {

const double One = 1.0, Half = 0.5, Zero = 0.0;
const double InvPiO2 = 6.36619772367581382433e-01; // 2/pi
const double PiO2_1 = 1.57079632673412561417e+00;  // first 33 bits of pi/2
const double PiO2_1t = 6.07710050650619224932e-11; // pi/2 - pio2_1
const double PiO2_2 = 6.07710050630396597660e-11;  // second 33 bits
const double PiO2_2t = 2.02226624879595063154e-21;
const double Two24 = 1.67772160000000000000e+07;

/// Uninstrumented __kernel_sin/__kernel_cos stand-ins on |y| <= pi/4.
double kernelSin(double Y) { return std::sin(Y); }
double kernelCos(double Y) { return std::cos(Y); }

/// Uninstrumented argument reduction for the huge-|x| path
/// (__kernel_rem_pio2 stand-in): returns n with y = x - n*pi/2.
int kernelRemPio2Approx(double X, double &Y0, double &Y1) {
  int Quo = 0;
  double Rem = std::remquo(X, PiO2_1 + PiO2_1t, &Quo);
  Y0 = Rem;
  Y1 = 0.0;
  return Quo & 0x7fffffff;
}

/// Medium-range reduction shared by sin/cos/tan entry functions
/// (uninstrumented — it belongs to e_rem_pio2.c, a separate entry point).
int remPio2Internal(double X, double &Y0, double &Y1) {
  int32_t Ix = hi(X) & 0x7fffffff;
  if (Ix <= 0x3fe921fb) {
    Y0 = X;
    Y1 = 0.0;
    return 0;
  }
  if (Ix >= 0x7ff00000) {
    Y0 = Y1 = X - X;
    return 0;
  }
  double T = std::fabs(X);
  int N = static_cast<int>(T * InvPiO2 + Half);
  double Fn = N;
  double R = T - Fn * PiO2_1;
  double W = Fn * PiO2_1t;
  Y0 = R - W;
  Y1 = (R - Y0) - W;
  if (Ix >= 0x41400000) // beyond ~2**21: fall back to remquo reduction
    N = kernelRemPio2Approx(T, Y0, Y1);
  if (hi(X) < 0) {
    Y0 = -Y0;
    Y1 = -Y1;
    return -N;
  }
  return N;
}

/// s_sin.c — 4 conditionals (8 branches). The original's switch(n&3) is
/// decomposed into the n&1 / n&2 tests so all four quadrant arms remain
/// observable.
double sinBody(const double *Args) {
  double X = Args[0];
  int32_t Ix = hi(X) & 0x7fffffff;
  if (CVM_LE(0, Ix, 0x3fe921fb)) // |x| <= pi/4
    return kernelSin(X);
  if (CVM_GE(1, Ix, 0x7ff00000)) // inf or NaN
    return X - X;
  double Y0, Y1;
  int N = remPio2Internal(X, Y0, Y1);
  bool OddQuadrant = !CVM_EQ(2, N & 1, 0);
  bool HighHalf = !CVM_EQ(3, N & 2, 0);
  double R = OddQuadrant ? kernelCos(Y0) : kernelSin(Y0);
  return HighHalf ? -R : R;
}

/// s_cos.c — 4 conditionals (8 branches).
double cosBody(const double *Args) {
  double X = Args[0];
  int32_t Ix = hi(X) & 0x7fffffff;
  if (CVM_LE(0, Ix, 0x3fe921fb)) // |x| <= pi/4
    return kernelCos(X);
  if (CVM_GE(1, Ix, 0x7ff00000)) // inf or NaN
    return X - X;
  double Y0, Y1;
  int N = remPio2Internal(X, Y0, Y1);
  bool OddQuadrant = !CVM_EQ(2, N & 1, 0);
  bool HighHalf = !CVM_EQ(3, N & 2, 0);
  double R = OddQuadrant ? kernelSin(Y0) : kernelCos(Y0);
  return (OddQuadrant != HighHalf) ? -R : R;
}

/// s_tan.c — 2 conditionals (4 branches).
double tanBody(const double *Args) {
  double X = Args[0];
  int32_t Ix = hi(X) & 0x7fffffff;
  if (CVM_LE(0, Ix, 0x3fe921fb)) // |x| <= pi/4
    return std::tan(X);
  if (CVM_GE(1, Ix, 0x7ff00000)) // inf or NaN
    return X - X;
  double Y0, Y1;
  int N = remPio2Internal(X, Y0, Y1);
  double T = std::tan(Y0);
  return (N & 1) ? -1.0 / T : T; // tan(x+n*pi/2)
}

/// k_cos.c — 4 conditionals (8 branches); Fig. 7 of the paper. The false
/// arm of site 1 ((int)x != 0 under |x| < 2**-27) is statically infeasible;
/// CoverMe's heuristic must detect it, capping coverage at 87.5%.
double kernelCosBody(const double *Args) {
  double X = Args[0], Y = Args[1];
  int32_t Ix = hi(X) & 0x7fffffff;
  if (CVM_LT(0, Ix, 0x3e400000)) { // |x| < 2**-27
    if (CVM_EQ(1, static_cast<int>(X), 0)) // always true here
      return One; // generate inexact
  }
  double Z = X * X;
  double R = Z * (4.16666666666666019037e-02 +
                  Z * (-1.38888888888741095749e-03 +
                       Z * 2.48015872894767294178e-05));
  if (CVM_LT(2, Ix, 0x3fd33333)) // |x| < 0.3
    return One - (Half * Z - (Z * R - X * Y));
  double Qx;
  if (CVM_GT(3, Ix, 0x3fe90000)) { // |x| > 0.78125
    Qx = 0.28125;
  } else {
    Qx = doubleFromWords(Ix - 0x00200000, 0); // |x|/4
  }
  double Hz = Half * Z - Qx;
  double A = One - Qx;
  return A - (Hz - (Z * R - X * Y));
}

/// e_rem_pio2.c — 15 conditionals (30 branches). The second parameter seeds
/// y[0] (the paper's harness passes the pointee as a plain double); the
/// returned value folds y[0] and n together so the result depends on both.
double remPio2Body(const double *Args) {
  // High words of n*pi/2 for n = 1..32, for the "close to a multiple"
  // check; computed from the constant rather than Sun's literal table.
  static const auto Npio2Hw = [] {
    std::array<int32_t, 32> T{};
    for (int N = 1; N <= 32; ++N)
      T[N - 1] = hi(N * (PiO2_1 + PiO2_1t));
    return T;
  }();

  double X = Args[0];
  double Y[2] = {Args[1], 0.0};
  int32_t Hx = hi(X);
  int32_t Ix = Hx & 0x7fffffff;
  int N = 0;

  if (CVM_LE(0, Ix, 0x3fe921fb)) { // |x| <= pi/4, no reduction
    Y[0] = X;
    Y[1] = 0.0;
    return Y[0] + 0.0;
  }
  if (CVM_LT(1, Ix, 0x4002d97c)) { // |x| < 3pi/4
    if (CVM_GT(2, Hx, 0)) {
      double Z = X - PiO2_1;
      if (CVM_NE(3, Ix, 0x3ff921fb)) { // 33+53 bits of pi suffice
        Y[0] = Z - PiO2_1t;
        Y[1] = (Z - Y[0]) - PiO2_1t;
      } else { // within ulp of pi/2: use 33+33+53 bits
        Z -= PiO2_2;
        Y[0] = Z - PiO2_2t;
        Y[1] = (Z - Y[0]) - PiO2_2t;
      }
      return Y[0] + 1.0;
    }
    double Z = X + PiO2_1;
    if (CVM_NE(4, Ix, 0x3ff921fb)) {
      Y[0] = Z + PiO2_1t;
      Y[1] = (Z - Y[0]) + PiO2_1t;
    } else {
      Z += PiO2_2;
      Y[0] = Z + PiO2_2t;
      Y[1] = (Z - Y[0]) + PiO2_2t;
    }
    return Y[0] - 1.0;
  }
  if (CVM_LE(5, Ix, 0x413921fb)) { // |x| <= 2**19 * pi/2, medium size
    double T = std::fabs(X);
    N = static_cast<int>(T * InvPiO2 + Half);
    double Fn = N;
    double R = T - Fn * PiO2_1;
    double W = Fn * PiO2_1t; // first-round good to 85 bits
    if (CVM_LT(6, N, 32) && CVM_NE(7, Ix, Npio2Hw[N - 1])) {
      Y[0] = R - W;
    } else {
      int32_t J = Ix >> 20;
      Y[0] = R - W;
      int32_t High = hi(Y[0]);
      int I = J - ((High >> 20) & 0x7ff);
      if (CVM_GT(8, I, 16)) { // second iteration, good to 118 bits
        T = R;
        W = Fn * PiO2_2;
        R = T - W;
        W = Fn * PiO2_2t - ((T - R) - W);
        Y[0] = R - W;
        High = hi(Y[0]);
        I = J - ((High >> 20) & 0x7ff);
        if (CVM_GT(9, I, 49)) { // third iteration, 151 bits
          T = R;
          W = Fn * PiO2_2 * PiO2_2; // stand-in for pio2_3 tail
          R = T - W;
          Y[0] = R - W;
        }
      }
    }
    Y[1] = (R - Y[0]) - W;
    if (CVM_LT(10, Hx, 0)) {
      Y[0] = -Y[0];
      Y[1] = -Y[1];
      return Y[0] - static_cast<double>(N);
    }
    return Y[0] + static_cast<double>(N);
  }
  if (CVM_GE(11, Ix, 0x7ff00000)) { // inf or NaN
    Y[0] = Y[1] = X - X;
    return Y[0];
  }
  // Huge |x|: prepare the 24-bit chunks and call the kernel reduction.
  double Z = setLowWord(0.0, lowWord(X));
  int E0 = (Ix >> 20) - 1046; // ilogb(x) - 23
  Z = setHighWord(Z, Ix - (E0 << 20));
  double Tx[3];
  for (int I = 0; CVM_LT(12, I, 2); ++I) {
    Tx[I] = static_cast<double>(static_cast<int>(Z));
    Z = (Z - Tx[I]) * Two24;
  }
  Tx[2] = Z;
  int Nx = 3;
  while (CVM_EQ(13, Tx[Nx - 1], Zero))
    --Nx; // skip zero terms
  N = kernelRemPio2Approx(std::fabs(X), Y[0], Y[1]);
  if (CVM_LT(14, Hx, 0)) {
    Y[0] = -Y[0];
    Y[1] = -Y[1];
    return Y[0] - static_cast<double>(N);
  }
  return Y[0] + static_cast<double>(N);
}

} // namespace

namespace coverme {
namespace fdlibm {
namespace detail {

Program makeSin() { return makeProgram("sin", "s_sin.c", 1, 4, 12, sinBody); }

Program makeCos() { return makeProgram("cos", "s_cos.c", 1, 4, 12, cosBody); }

Program makeTan() { return makeProgram("tan", "s_tan.c", 1, 2, 8, tanBody); }

Program makeKernelCos() {
  return makeProgram("kernel_cos", "k_cos.c", 2, 4, 15, kernelCosBody);
}

Program makeRemPio2() {
  return makeProgram("ieee754_rem_pio2", "e_rem_pio2.c", 2, 15, 64,
                     remPio2Body);
}

} // namespace detail
} // namespace fdlibm
} // namespace coverme
