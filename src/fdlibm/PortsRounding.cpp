//===- PortsRounding.cpp - rounding and bit-manipulation ports --------------===//
//
// Ports of Fdlibm 5.3 s_ceil.c, s_floor.c, s_rint.c, s_modf.c, s_ilogb.c,
// s_logb.c, s_cbrt.c, e_sqrt.c, e_fmod.c, e_remainder.c, e_hypot.c, and
// s_nextafter.c. Paper branch counts: 30, 30, 20, 10, 12, 6, 6, 46, 60,
// 22, 22, 44. These are the most bit-twiddling-heavy programs in the suite
// (the paper singles out e_fmod.c's subnormal loops in Sect. D).
//
//===----------------------------------------------------------------------===//

#include "fdlibm/PortDetail.h"
#include "fdlibm/Ports.h"

using namespace coverme;
using namespace coverme::fdlibm::detail;

namespace {

const double One = 1.0, Huge = 1e300, Tiny = 1e-300;
const int32_t SignMask = static_cast<int32_t>(0x80000000u);

/// s_ceil.c — 15 conditionals (30 branches).
double ceilBody(const double *Args) {
  double X = Args[0];
  int32_t I0 = hi(X);
  uint32_t I1 = lowWord(X);
  int32_t J0 = ((I0 >> 20) & 0x7ff) - 0x3ff;
  if (CVM_LT(0, J0, 20)) {
    if (CVM_LT(1, J0, 0)) { // |x| < 1: ceil is +-0 or 1
      if (CVM_GT(2, Huge + X, 0.0)) { // raise inexact when x != 0
        if (CVM_LT(3, I0, 0)) { // x in (-1, 0): result -0
          I0 = SignMask;
          I1 = 0;
        } else if (CVM_NE(4, static_cast<uint32_t>(I0) | I1, 0)) {
          I0 = 0x3ff00000; // x in (0, 1): result 1
          I1 = 0;
        }
      }
    } else {
      uint32_t I = 0x000fffffu >> J0;
      if (CVM_EQ(5, (static_cast<uint32_t>(I0) & I) | I1, 0))
        return X; // x is integral
      if (CVM_GT(6, Huge + X, 0.0)) { // raise inexact
        if (CVM_GT(7, I0, 0))
          I0 += 0x00100000 >> J0;
        I0 &= static_cast<int32_t>(~I);
        I1 = 0;
      }
    }
  } else if (CVM_GT(8, J0, 51)) {
    if (CVM_EQ(9, J0, 0x400))
      return X + X; // inf or NaN
    return X;       // x is integral
  } else {
    uint32_t I = 0xffffffffu >> (J0 - 20);
    if (CVM_EQ(10, I1 & I, 0))
      return X; // x is integral
    if (CVM_GT(11, Huge + X, 0.0)) {
      if (CVM_GT(12, I0, 0)) {
        if (CVM_EQ(13, J0, 20)) {
          I0 += 1;
        } else {
          uint32_t J = I1 + (1u << (52 - J0));
          if (CVM_LT(14, J, I1))
            I0 += 1; // carry into the high word
          I1 = J;
        }
      }
      I1 &= ~I;
    }
  }
  return doubleFromWords(I0, I1);
}

/// s_floor.c — 15 conditionals (30 branches).
double floorBody(const double *Args) {
  double X = Args[0];
  int32_t I0 = hi(X);
  uint32_t I1 = lowWord(X);
  int32_t J0 = ((I0 >> 20) & 0x7ff) - 0x3ff;
  if (CVM_LT(0, J0, 20)) {
    if (CVM_LT(1, J0, 0)) { // |x| < 1: floor is +-0 or -1
      if (CVM_GT(2, Huge + X, 0.0)) {
        if (CVM_GE(3, I0, 0)) { // x in [0, 1): result +0
          I0 = 0;
          I1 = 0;
        } else if (CVM_NE(4, static_cast<uint32_t>(I0 & 0x7fffffff) | I1,
                          0)) {
          I0 = static_cast<int32_t>(0xbff00000u); // x in (-1, 0): result -1
          I1 = 0;
        }
      }
    } else {
      uint32_t I = 0x000fffffu >> J0;
      if (CVM_EQ(5, (static_cast<uint32_t>(I0) & I) | I1, 0))
        return X; // x is integral
      if (CVM_GT(6, Huge + X, 0.0)) {
        if (CVM_LT(7, I0, 0))
          I0 += 0x00100000 >> J0;
        I0 &= static_cast<int32_t>(~I);
        I1 = 0;
      }
    }
  } else if (CVM_GT(8, J0, 51)) {
    if (CVM_EQ(9, J0, 0x400))
      return X + X; // inf or NaN
    return X;
  } else {
    uint32_t I = 0xffffffffu >> (J0 - 20);
    if (CVM_EQ(10, I1 & I, 0))
      return X; // x is integral
    if (CVM_GT(11, Huge + X, 0.0)) {
      if (CVM_LT(12, I0, 0)) {
        if (CVM_EQ(13, J0, 20)) {
          I0 += 1;
        } else {
          uint32_t J = I1 + (1u << (52 - J0));
          if (CVM_LT(14, J, I1))
            I0 += 1; // carry
          I1 = J;
        }
      }
      I1 &= ~I;
    }
  }
  return doubleFromWords(I0, I1);
}

/// s_rint.c — 10 conditionals (20 branches).
double rintBody(const double *Args) {
  static const double Two52Tab[2] = {4.50359962737049600000e+15,
                                     -4.50359962737049600000e+15};
  double X = Args[0];
  int32_t I0 = hi(X);
  int Sx = (I0 >> 31) & 1;
  uint32_t I1 = lowWord(X);
  int32_t J0 = ((I0 >> 20) & 0x7ff) - 0x3ff;
  if (CVM_LT(0, J0, 20)) {
    if (CVM_LT(1, J0, 0)) { // |x| < 1
      if (CVM_EQ(2, static_cast<uint32_t>(I0 & 0x7fffffff) | I1, 0))
        return X; // +-0
      I1 |= static_cast<uint32_t>(I0 & 0x0fffff);
      I0 &= static_cast<int32_t>(0xfffe0000u);
      I0 |= static_cast<int32_t>(
          ((I1 | static_cast<uint32_t>(-static_cast<int64_t>(I1))) >> 12) &
          0x80000u);
      X = setHighWord(X, I0);
      double W = Two52Tab[Sx] + X;
      double T = W - Two52Tab[Sx];
      int32_t T0 = hi(T);
      return setHighWord(T, (T0 & 0x7fffffff) | (Sx << 31));
    }
    uint32_t I = 0x000fffffu >> J0;
    if (CVM_EQ(3, (static_cast<uint32_t>(I0) & I) | I1, 0))
      return X; // x is integral
    I >>= 1;
    if (CVM_NE(4, (static_cast<uint32_t>(I0) & I) | I1, 0)) {
      // Raise the sticky bit so the Two52 trick rounds to even.
      if (CVM_EQ(5, J0, 19))
        I1 = 0x40000000u;
      else
        I0 = static_cast<int32_t>((static_cast<uint32_t>(I0) & ~I) |
                                  (0x20000u >> J0));
    }
  } else if (CVM_GT(6, J0, 51)) {
    if (CVM_EQ(7, J0, 0x400))
      return X + X; // inf or NaN
    return X;
  } else {
    uint32_t I = 0xffffffffu >> (J0 - 20);
    if (CVM_EQ(8, I1 & I, 0))
      return X; // x is integral
    I >>= 1;
    if (CVM_NE(9, I1 & I, 0))
      I1 = (I1 & ~I) | (0x40000000u >> (J0 - 20));
  }
  X = doubleFromWords(I0, I1);
  double W = Two52Tab[Sx] + X;
  return W - Two52Tab[Sx];
}

/// s_modf.c — 5 conditionals (10 branches). The double* out-parameter is
/// lowered per Sect. 5.3; the fractional part is returned.
double modfBody(const double *Args) {
  double X = Args[0];
  double IPart = Args[1]; // seed of the lowered pointer parameter
  int32_t I0 = hi(X);
  uint32_t I1 = lowWord(X);
  int32_t J0 = ((I0 >> 20) & 0x7ff) - 0x3ff;
  if (CVM_LT(0, J0, 20)) {
    if (CVM_LT(1, J0, 0)) { // |x| < 1: int part is +-0
      IPart = doubleFromWords(I0 & SignMask, 0);
      (void)IPart;
      return X;
    }
    uint32_t I = 0x000fffffu >> J0;
    if (CVM_EQ(2, (static_cast<uint32_t>(I0) & I) | I1, 0)) { // x integral
      IPart = X;
      (void)IPart;
      return doubleFromWords(I0 & SignMask, 0);
    }
    IPart = doubleFromWords(I0 & static_cast<int32_t>(~I), 0);
    return X - IPart;
  }
  if (CVM_GT(3, J0, 51)) { // no fractional part
    IPart = X;
    (void)IPart;
    return doubleFromWords(I0 & SignMask, 0);
  }
  uint32_t I = 0xffffffffu >> (J0 - 20);
  if (CVM_EQ(4, I1 & I, 0)) { // x integral
    IPart = X;
    (void)IPart;
    return doubleFromWords(I0 & SignMask, 0);
  }
  IPart = doubleFromWords(I0, I1 & ~I);
  return X - IPart;
}

/// s_ilogb.c — 6 conditionals (12 branches). The subnormal loops (sites 3
/// and 4) are only reachable with subnormal inputs — the coverage gap the
/// paper reports for this program.
double ilogbBody(const double *Args) {
  double X = Args[0];
  int32_t Hx = hi(X) & 0x7fffffff;
  if (CVM_LT(0, Hx, 0x00100000)) {
    int32_t Lx = lo(X);
    if (CVM_EQ(1, Hx | Lx, 0))
      return static_cast<double>(static_cast<int32_t>(0x80000001u)); // ilogb(0)
    if (CVM_EQ(2, Hx, 0)) { // subnormal with zero high mantissa
      int Ix = -1043;
      for (int32_t I = Lx; CVM_GT(3, I, 0); I <<= 1)
        Ix -= 1;
      return Ix;
    }
    int Ix = -1022;
    for (int32_t I = Hx << 11; CVM_GT(4, I, 0); I <<= 1)
      Ix -= 1;
    return Ix;
  }
  if (CVM_LT(5, Hx, 0x7ff00000))
    return (Hx >> 20) - 1023;
  return static_cast<double>(0x7fffffff); // FP_ILOGBNAN / inf
}

/// s_logb.c — 3 conditionals (6 branches).
double logbBody(const double *Args) {
  double X = Args[0];
  int32_t Ix = hi(X) & 0x7fffffff;
  int32_t Lx = lo(X);
  if (CVM_EQ(0, Ix | Lx, 0))
    return -1.0 / std::fabs(X); // logb(0) = -inf
  if (CVM_GE(1, Ix, 0x7ff00000))
    return X * X; // logb(inf/nan)
  int32_t Exp = Ix >> 20;
  if (CVM_EQ(2, Exp, 0))
    return -1022.0; // subnormal
  return static_cast<double>(Exp - 1023);
}

/// s_cbrt.c — 3 conditionals (6 branches).
double cbrtBody(const double *Args) {
  const int32_t B1 = 715094163; // B1 = (682-0.03306235651)*2**20
  const int32_t B2 = 696219795; // B2 = (664-0.03306235651)*2**20
  double X = Args[0];
  int32_t Hx = hi(X);
  int32_t Sign = Hx & SignMask;
  Hx ^= Sign;
  if (CVM_GE(0, Hx, 0x7ff00000))
    return X + X; // cbrt(nan, inf)
  if (CVM_EQ(1, Hx | lo(X), 0))
    return X; // cbrt(+-0)
  double AbsX = setHighWord(X, Hx);
  double T;
  if (CVM_LT(2, Hx, 0x00100000)) { // subnormal: scale up first
    T = doubleFromWords(0x43500000, 0); // 2**54
    T *= AbsX;
    T = setHighWord(T, hi(T) / 3 + B2);
  } else {
    T = doubleFromWords(Hx / 3 + B1, 0);
  }
  // Two Newton iterations; the seed is good to ~5 bits.
  T = (2.0 * T + AbsX / (T * T)) / 3.0;
  T = (2.0 * T + AbsX / (T * T)) / 3.0;
  T = (2.0 * T + AbsX / (T * T)) / 3.0;
  return doubleFromWords(hi(T) | Sign, lowWord(T));
}

/// e_sqrt.c — 23 conditionals (46 branches). Sun's bit-by-bit algorithm:
/// the loops shift two result bits per iteration; the rounding block at the
/// end probes the rounding mode (several arms are infeasible under
/// round-to-nearest, which caps coverage exactly as the paper observes).
double sqrtBody(const double *Args) {
  const uint32_t SignBit = 0x80000000u;
  double X = Args[0];
  int32_t Ix0 = hi(X);
  uint32_t Ix1 = lowWord(X);

  if (CVM_EQ(0, Ix0 & 0x7ff00000, 0x7ff00000))
    return X * X + X; // sqrt(nan)=nan, sqrt(+inf)=+inf, sqrt(-inf)=nan
  if (CVM_LE(1, Ix0, 0)) {
    if (CVM_EQ(2, (static_cast<uint32_t>(Ix0 & 0x7fffffff)) | Ix1, 0))
      return X; // sqrt(+-0) = +-0
    if (CVM_LT(3, Ix0, 0))
      return (X - X) / (X - X); // sqrt(-ve) = NaN
  }
  int32_t M = Ix0 >> 20;
  if (CVM_EQ(4, M, 0)) { // subnormal x: normalize
    while (CVM_EQ(5, Ix0, 0)) {
      M -= 21;
      Ix0 |= static_cast<int32_t>(Ix1 >> 11);
      Ix1 <<= 21;
    }
    int I = 0;
    for (; CVM_EQ(6, Ix0 & 0x00100000, 0); ++I)
      Ix0 <<= 1;
    M -= I - 1;
    if (I > 0 && I < 32)
      Ix0 |= static_cast<int32_t>(Ix1 >> (32 - I));
    Ix1 <<= I;
  }
  M -= 1023;
  Ix0 = (Ix0 & 0x000fffff) | 0x00100000;
  if (CVM_NE(7, M & 1, 0)) { // odd exponent: double x to make it even
    Ix0 += Ix0 + static_cast<int32_t>((Ix1 & SignBit) >> 31);
    Ix1 += Ix1;
  }
  M >>= 1;

  // Generate sqrt(x) bit by bit.
  Ix0 += Ix0 + static_cast<int32_t>((Ix1 & SignBit) >> 31);
  Ix1 += Ix1;
  int32_t Q = 0, S0 = 0;
  uint32_t Q1 = 0, S1 = 0;
  int32_t R = 0x00200000;
  while (CVM_NE(8, R, 0)) {
    int32_t T = S0 + R;
    if (CVM_LE(9, T, Ix0)) {
      S0 = T + R;
      Ix0 -= T;
      Q += R;
    }
    Ix0 += Ix0 + static_cast<int32_t>((Ix1 & SignBit) >> 31);
    Ix1 += Ix1;
    R >>= 1;
  }
  uint32_t R1 = SignBit;
  while (CVM_NE(10, R1, 0)) {
    uint32_t T1 = S1 + R1;
    int32_t T = S0;
    bool Take = CVM_LT(11, T, Ix0);
    if (!Take && CVM_EQ(12, T, Ix0) && CVM_LE(13, T1, Ix1))
      Take = true;
    if (Take) {
      S1 = T1 + R1;
      if (CVM_EQ(14, T1 & SignBit, SignBit) && CVM_EQ(15, S1 & SignBit, 0))
        S0 += 1;
      Ix0 -= T;
      if (CVM_LT(16, Ix1, T1))
        Ix0 -= 1;
      Ix1 -= T1;
      Q1 += R1;
    }
    Ix0 += Ix0 + static_cast<int32_t>((Ix1 & SignBit) >> 31);
    Ix1 += Ix1;
    R1 >>= 1;
  }

  // Use floating add to find out the rounding direction.
  if (CVM_NE(17, static_cast<uint32_t>(Ix0) | Ix1, 0)) {
    double Z = One - Tiny; // raise inexact
    if (CVM_GE(18, Z, One)) {
      Z = One + Tiny;
      if (CVM_EQ(19, Q1, 0xffffffffu)) {
        Q1 = 0;
        Q += 1;
      } else if (CVM_GT(20, Z, One)) { // round-up mode only
        if (CVM_EQ(21, Q1, 0xfffffffeu))
          Q += 1;
        Q1 += 2;
      } else {
        Q1 += (Q1 & 1);
      }
    }
  }
  Ix0 = (Q >> 1) + 0x3fe00000;
  Ix1 = Q1 >> 1;
  if (CVM_EQ(22, Q & 1, 1))
    Ix1 |= SignBit;
  Ix0 += M << 20;
  return doubleFromWords(Ix0, Ix1);
}

/// e_fmod.c — 30 conditionals (60 branches). Fig. 8 of the paper: the four
/// ilogb loops at sites 9/10/13/14 are gated on subnormal inputs.
double fmodBody(const double *Args) {
  static const double ZeroTab[] = {0.0, -0.0};
  double X = Args[0], Y = Args[1];
  int32_t Hx = hi(X);
  uint32_t Lx = lowWord(X);
  int32_t Hy = hi(Y);
  uint32_t Ly = lowWord(Y);
  int32_t Sx = Hx & SignMask;
  Hx ^= Sx;      // |x|
  Hy &= 0x7fffffff; // |y|

  // Purge off exception values.
  if (CVM_EQ(0, static_cast<uint32_t>(Hy) | Ly, 0))
    return (X * Y) / (X * Y); // y = 0
  if (CVM_GE(1, Hx, 0x7ff00000))
    return (X * Y) / (X * Y); // x not finite
  uint32_t NanY = static_cast<uint32_t>(Hy) |
                  ((Ly | (0u - Ly)) >> 31); // y is NaN when > 0x7ff00000
  if (CVM_GT(2, NanY, 0x7ff00000u))
    return (X * Y) / (X * Y);

  if (CVM_LE(3, Hx, Hy)) {
    if (CVM_LT(4, Hx, Hy))
      return X; // |x| < |y|
    if (CVM_LT(5, Lx, Ly))
      return X; // |x| < |y|
    if (CVM_EQ(6, Lx, Ly))
      return ZeroTab[static_cast<uint32_t>(Sx) >> 31]; // |x| == |y|
  }

  // ix = ilogb(x).
  int IxExp;
  if (CVM_LT(7, Hx, 0x00100000)) { // subnormal x
    if (CVM_EQ(8, Hx, 0)) {
      IxExp = -1043;
      for (int32_t I = static_cast<int32_t>(Lx); CVM_GT(9, I, 0); I <<= 1)
        IxExp -= 1;
    } else {
      IxExp = -1022;
      for (int32_t I = Hx << 11; CVM_GT(10, I, 0); I <<= 1)
        IxExp -= 1;
    }
  } else {
    IxExp = (Hx >> 20) - 1023;
  }

  // iy = ilogb(y).
  int IyExp;
  if (CVM_LT(11, Hy, 0x00100000)) { // subnormal y
    if (CVM_EQ(12, Hy, 0)) {
      IyExp = -1043;
      for (int32_t I = static_cast<int32_t>(Ly); CVM_GT(13, I, 0); I <<= 1)
        IyExp -= 1;
    } else {
      IyExp = -1022;
      for (int32_t I = Hy << 11; CVM_GT(14, I, 0); I <<= 1)
        IyExp -= 1;
    }
  } else {
    IyExp = (Hy >> 20) - 1023;
  }

  // Set up {hx,lx}, {hy,ly} and align y to x.
  if (CVM_GE(15, IxExp, -1022)) {
    Hx = 0x00100000 | (0x000fffff & Hx);
  } else { // subnormal x, shift x to normal
    int N = -1022 - IxExp;
    if (CVM_LE(16, N, 31)) {
      Hx = (Hx << N) | static_cast<int32_t>(Lx >> (32 - N));
      Lx <<= N;
    } else {
      Hx = static_cast<int32_t>(Lx << (N - 32));
      Lx = 0;
    }
  }
  if (CVM_GE(17, IyExp, -1022)) {
    Hy = 0x00100000 | (0x000fffff & Hy);
  } else { // subnormal y
    int N = -1022 - IyExp;
    if (CVM_LE(18, N, 31)) {
      Hy = (Hy << N) | static_cast<int32_t>(Ly >> (32 - N));
      Ly <<= N;
    } else {
      Hy = static_cast<int32_t>(Ly << (N - 32));
      Ly = 0;
    }
  }

  // Fixed-point fmod.
  int N = IxExp - IyExp;
  while (CVM_NE(19, N, 0)) {
    --N;
    int32_t Hz = Hx - Hy;
    uint32_t Lz = Lx - Ly;
    if (CVM_LT(20, Lx, Ly))
      Hz -= 1; // borrow
    if (CVM_LT(21, Hz, 0)) {
      Hx = Hx + Hx + static_cast<int32_t>(Lx >> 31);
      Lx = Lx + Lx;
    } else {
      uint32_t ZTest = static_cast<uint32_t>(Hz) | Lz;
      if (CVM_EQ(22, ZTest, 0))
        return ZeroTab[static_cast<uint32_t>(Sx) >> 31];
      Hx = Hz + Hz + static_cast<int32_t>(Lz >> 31);
      Lx = Lz + Lz;
    }
  }
  int32_t Hz = Hx - Hy;
  uint32_t Lz = Lx - Ly;
  if (CVM_LT(23, Lx, Ly))
    Hz -= 1;
  if (CVM_GE(24, Hz, 0)) {
    Hx = Hz;
    Lx = Lz;
  }

  // Convert back to floating point and restore the sign.
  if (CVM_EQ(25, static_cast<uint32_t>(Hx) | Lx, 0))
    return ZeroTab[static_cast<uint32_t>(Sx) >> 31];
  while (CVM_LT(26, Hx, 0x00100000)) { // normalize x
    Hx = Hx + Hx + static_cast<int32_t>(Lx >> 31);
    Lx = Lx + Lx;
    IyExp -= 1;
  }
  if (CVM_GE(27, IyExp, -1022)) { // normalize output
    Hx = (Hx - 0x00100000) | ((IyExp + 1023) << 20);
    return doubleFromWords(Hx | Sx, Lx);
  }
  // Subnormal output.
  int M = -1022 - IyExp;
  if (CVM_LE(28, M, 20)) {
    Lx = (Lx >> M) | (static_cast<uint32_t>(Hx) << (32 - M));
    Hx >>= M;
  } else if (CVM_LE(29, M, 31)) {
    Lx = static_cast<uint32_t>(Hx << (32 - M)) | (Lx >> M);
    Hx = Sx;
  } else {
    Lx = static_cast<uint32_t>(Hx) >> (M - 32);
    Hx = Sx;
  }
  return doubleFromWords(Hx | Sx, Lx);
}

/// e_remainder.c — 11 conditionals (22 branches).
double remainderBody(const double *Args) {
  double X = Args[0], P = Args[1];
  int32_t Hx = hi(X);
  uint32_t Lx = lowWord(X);
  int32_t Hp = hi(P);
  uint32_t Lp = lowWord(P);
  int32_t Sx = Hx & SignMask;
  Hp &= 0x7fffffff;
  Hx &= 0x7fffffff;

  // Purge off exception values.
  if (CVM_EQ(0, static_cast<uint32_t>(Hp) | Lp, 0))
    return (X * P) / (X * P); // p = 0
  if (CVM_GE(1, Hx, 0x7ff00000))
    return (X * P) / (X * P); // x not finite
  if (CVM_GE(2, Hp, 0x7ff00000) &&
      CVM_NE(3, static_cast<uint32_t>(Hp - 0x7ff00000) | Lp, 0))
    return (X * P) / (X * P); // p is NaN

  if (CVM_LE(4, Hp, 0x7fdfffff))
    X = std::fmod(X, P + P); // now |x| < 2|p| (external __ieee754_fmod)
  if (CVM_EQ(5, static_cast<uint32_t>(Hx - Hp) | (Lx - Lp), 0))
    return 0.0 * X; // |x| == |p|
  X = std::fabs(X);
  P = std::fabs(P);
  if (CVM_LT(6, Hp, 0x00200000)) { // tiny p: compare against x+x
    if (CVM_GT(7, X + X, P)) {
      X -= P;
      if (CVM_GE(8, X + X, P))
        X -= P;
    }
  } else {
    double PHalf = 0.5 * P;
    if (CVM_GT(9, X, PHalf)) {
      X -= P;
      if (CVM_GE(10, X, PHalf))
        X -= P;
    }
  }
  return doubleFromWords(hi(X) ^ Sx, lowWord(X));
}

/// e_hypot.c — 11 conditionals (22 branches).
double hypotBody(const double *Args) {
  double X = Args[0], Y = Args[1];
  int32_t Ha = hi(X) & 0x7fffffff;
  int32_t Hb = hi(Y) & 0x7fffffff;
  double A = X, B = Y;
  if (CVM_GT(0, Hb, Ha)) {
    A = Y;
    B = X;
    int32_t J = Ha;
    Ha = Hb;
    Hb = J;
  }
  A = setHighWord(A, Ha); // a = |a|
  B = setHighWord(B, Hb); // b = |b|
  if (CVM_GT(1, Ha - Hb, 0x3c00000))
    return A + B; // a/b > 2**60
  int K = 0;
  if (CVM_GT(2, Ha, 0x5f300000)) { // a > 2**500
    if (CVM_GE(3, Ha, 0x7ff00000)) { // inf or NaN
      double W = A + B;
      if (CVM_EQ(4, (Ha & 0xfffff) | lo(A), 0))
        W = A; // a is +inf
      if (CVM_EQ(5, (Hb ^ 0x7ff00000) | lo(B), 0))
        W = B; // b is +inf
      return W;
    }
    // Scale a and b by 2**-600.
    Ha -= 0x25800000;
    Hb -= 0x25800000;
    K += 600;
    A = setHighWord(A, Ha);
    B = setHighWord(B, Hb);
  }
  if (CVM_LT(6, Hb, 0x20b00000)) { // b < 2**-500
    if (CVM_LE(7, Hb, 0x000fffff)) { // subnormal b or 0
      if (CVM_EQ(8, Hb | lo(B), 0))
        return A;
      double T1 = doubleFromWords(0x7fd00000, 0); // 2**1022
      B *= T1;
      A *= T1;
      K -= 1022;
      Ha = hi(A);
      Hb = hi(B);
    } else { // scale a and b by 2**600
      Ha += 0x25800000;
      Hb += 0x25800000;
      K -= 600;
      A = setHighWord(A, Ha);
      B = setHighWord(B, Hb);
    }
  }
  // Medium-size a and b.
  double W = A - B;
  if (CVM_GT(9, W, B)) {
    double T1 = doubleFromWords(Ha, 0);
    double T2 = A - T1;
    W = std::sqrt(T1 * T1 - (B * (-B) - T2 * (A + T1)));
  } else {
    A = A + A;
    double Y1 = doubleFromWords(Hb, 0);
    double Y2 = B - Y1;
    double T1 = doubleFromWords(Ha + 0x00100000, 0);
    double T2 = A - T1;
    W = std::sqrt(T1 * Y1 - (W * (-W) - (T1 * Y2 + T2 * B)));
  }
  if (CVM_NE(10, K, 0)) {
    double T1 = doubleFromWords(0x3ff00000 + (K << 20), 0);
    return T1 * W;
  }
  return W;
}

/// s_nextafter.c — 22 conditionals (44 branches).
double nextafterBody(const double *Args) {
  double X = Args[0], Y = Args[1];
  int32_t Hx = hi(X), Hy = hi(Y);
  uint32_t Lx = lowWord(X), Ly = lowWord(Y);
  int32_t Ix = Hx & 0x7fffffff, Iy = Hy & 0x7fffffff;

  if (CVM_GE(0, Ix, 0x7ff00000) &&
      CVM_NE(1, static_cast<uint32_t>(Ix - 0x7ff00000) | Lx, 0))
    return X + Y; // x is NaN
  if (CVM_GE(2, Iy, 0x7ff00000) &&
      CVM_NE(3, static_cast<uint32_t>(Iy - 0x7ff00000) | Ly, 0))
    return X + Y; // y is NaN
  if (CVM_EQ(4, X, Y))
    return X; // x == y
  if (CVM_EQ(5, static_cast<uint32_t>(Ix) | Lx, 0)) { // x == 0
    X = doubleFromWords(Hy & SignMask, 1); // smallest subnormal toward y
    Y = X * X;
    if (CVM_EQ(6, Y, X))
      return Y;
    return X; // raise underflow flag
  }
  if (CVM_GE(7, Hx, 0)) { // x > 0
    bool StepDown = CVM_GT(8, Hx, Hy);
    if (!StepDown && CVM_EQ(9, Hx, Hy) && CVM_GT(10, Lx, Ly))
      StepDown = true;
    if (StepDown) { // x > y: x -= ulp
      if (CVM_EQ(11, Lx, 0))
        Hx -= 1;
      Lx -= 1;
    } else { // x < y: x += ulp
      Lx += 1;
      if (CVM_EQ(12, Lx, 0))
        Hx += 1;
    }
  } else { // x < 0
    bool StepDown = CVM_GE(13, Hy, 0);
    if (!StepDown && CVM_GT(14, Hx, Hy))
      StepDown = true;
    if (!StepDown && CVM_EQ(15, Hx, Hy) && CVM_GT(16, Lx, Ly))
      StepDown = true;
    if (StepDown) { // x < y: x -= ulp
      if (CVM_EQ(17, Lx, 0))
        Hx -= 1;
      Lx -= 1;
    } else { // x > y: x += ulp
      Lx += 1;
      if (CVM_EQ(18, Lx, 0))
        Hx += 1;
    }
  }
  Hy = Hx & 0x7ff00000;
  if (CVM_GE(19, Hy, 0x7ff00000))
    return X + X; // overflow
  if (CVM_LT(20, Hy, 0x00100000)) { // underflow
    Y = X * X;
    if (CVM_NE(21, Y, X))
      return doubleFromWords(Hx, Lx);
  }
  return doubleFromWords(Hx, Lx);
}

} // namespace

namespace coverme {
namespace fdlibm {
namespace detail {

Program makeCeil() {
  return makeProgram("ceil", "s_ceil.c", 1, 15, 29, ceilBody);
}

Program makeFloor() {
  return makeProgram("floor", "s_floor.c", 1, 15, 30, floorBody);
}

Program makeRint() {
  return makeProgram("rint", "s_rint.c", 1, 10, 34, rintBody);
}

Program makeModf() {
  return makeProgram("modf", "s_modf.c", 2, 5, 32, modfBody);
}

Program makeIlogb() {
  return makeProgram("ilogb", "s_ilogb.c", 1, 6, 12, ilogbBody);
}

Program makeLogb() {
  return makeProgram("logb", "s_logb.c", 1, 3, 8, logbBody);
}

Program makeCbrt() {
  return makeProgram("cbrt", "s_cbrt.c", 1, 3, 24, cbrtBody);
}

Program makeSqrt() {
  return makeProgram("ieee754_sqrt", "e_sqrt.c", 1, 23, 68, sqrtBody);
}

Program makeFmod() {
  return makeProgram("ieee754_fmod", "e_fmod.c", 2, 30, 70, fmodBody);
}

Program makeRemainder() {
  return makeProgram("ieee754_remainder", "e_remainder.c", 2, 11, 27,
                     remainderBody);
}

Program makeHypot() {
  return makeProgram("ieee754_hypot", "e_hypot.c", 2, 11, 50, hypotBody);
}

Program makeNextafter() {
  return makeProgram("nextafter", "s_nextafter.c", 2, 22, 36, nextafterBody);
}

} // namespace detail
} // namespace fdlibm
} // namespace coverme
