//===- PortsHyperbolic.cpp - acosh/asinh/atanh/cosh/sinh/tanh ports ---------===//
//
// Ports of Fdlibm 5.3 e_acosh.c, s_asinh.c, e_atanh.c, e_cosh.c, e_sinh.c,
// and s_tanh.c. Site numbering follows the original conditional order; the
// paper's branch counts are 10, 12, 12, 16, 20, and 12 respectively.
//
//===----------------------------------------------------------------------===//

#include "fdlibm/PortDetail.h"
#include "fdlibm/Ports.h"

using namespace coverme;
using namespace coverme::fdlibm::detail;

namespace {

const double One = 1.0, Half = 0.5, Huge = 1e300, Tiny = 1e-300;
const double Ln2 = 6.93147180559945286227e-01;
const double SHuge = 1.0e307;

/// e_acosh.c — 5 conditionals (10 branches).
double acoshBody(const double *Args) {
  double X = Args[0];
  int32_t Hx = hi(X), Lx = lo(X);
  if (CVM_LT(0, Hx, 0x3ff00000)) // x < 1
    return (X - X) / (X - X);
  if (CVM_GE(1, Hx, 0x41b00000)) { // x > 2**28
    if (CVM_GE(2, Hx, 0x7ff00000)) // inf or NaN
      return X + X;
    return std::log(X) + Ln2;
  }
  if (CVM_EQ(3, (Hx - 0x3ff00000) | Lx, 0)) // x == 1
    return 0.0;
  if (CVM_GT(4, Hx, 0x40000000)) { // 2**28 > x > 2
    double T = X * X;
    return std::log(2.0 * X - One / (X + std::sqrt(T - One)));
  }
  // 1 < x <= 2.
  double T = X - One;
  return std::log1p(T + std::sqrt(2.0 * T + T * T));
}

/// s_asinh.c — 6 conditionals (12 branches).
double asinhBody(const double *Args) {
  double X = Args[0];
  int32_t Hx = hi(X);
  int32_t Ix = Hx & 0x7fffffff;
  double W;
  if (CVM_GE(0, Ix, 0x7ff00000)) // inf or NaN
    return X + X;
  if (CVM_LT(1, Ix, 0x3e300000)) { // |x| < 2**-28
    if (CVM_GT(2, Huge + X, One))  // raise inexact
      return X;
  }
  if (CVM_GT(3, Ix, 0x41b00000)) { // |x| > 2**28
    W = std::log(std::fabs(X)) + Ln2;
  } else if (CVM_GT(4, Ix, 0x40000000)) { // 2**28 >= |x| > 2
    double T = std::fabs(X);
    W = std::log(2.0 * T + One / (std::sqrt(X * X + One) + T));
  } else { // 2**-28 <= |x| <= 2
    double T = X * X;
    W = std::log1p(std::fabs(X) + T / (One + std::sqrt(One + T)));
  }
  if (CVM_GT(5, Hx, 0))
    return W;
  return -W;
}

/// e_atanh.c — 6 conditionals (12 branches).
double atanhBody(const double *Args) {
  double X = Args[0];
  int32_t Hx = hi(X), Lx = lo(X);
  int32_t Ix = Hx & 0x7fffffff;
  int32_t Combined =
      Ix | static_cast<int32_t>(
               (static_cast<uint32_t>(Lx | (-Lx))) >> 31);
  if (CVM_GT(0, Combined, 0x3ff00000)) // |x| > 1
    return (X - X) / (X - X);
  if (CVM_EQ(1, Ix, 0x3ff00000)) // |x| == 1
    return X / 0.0;
  if (CVM_LT(2, Ix, 0x3e300000)) { // |x| < 2**-28
    if (CVM_GT(3, Huge + X, 0.0))
      return X;
  }
  double AbsX = setHighWord(X, Ix); // fabs via word twiddling
  double T;
  if (CVM_LT(4, Ix, 0x3fe00000)) { // |x| < 0.5
    T = AbsX + AbsX;
    T = Half * std::log1p(T + T * AbsX / (One - AbsX));
  } else {
    T = Half * std::log1p((AbsX + AbsX) / (One - AbsX));
  }
  if (CVM_GE(5, Hx, 0))
    return T;
  return -T;
}

/// e_cosh.c — 8 conditionals (16 branches).
double coshBody(const double *Args) {
  double X = Args[0];
  int32_t Ix = hi(X) & 0x7fffffff;
  if (CVM_GE(0, Ix, 0x7ff00000)) // inf or NaN
    return X * X;
  if (CVM_LT(1, Ix, 0x3fd62e43)) { // |x| < 0.5*ln2
    double T = std::expm1(std::fabs(X));
    double W = One + T;
    if (CVM_LT(2, Ix, 0x3c800000)) // cosh(tiny) = 1
      return W;
    return One + (T * T) / (W + W);
  }
  if (CVM_LT(3, Ix, 0x40360000)) { // |x| < 22
    double T = std::exp(std::fabs(X));
    return Half * T + Half / T;
  }
  if (CVM_LT(4, Ix, 0x40862e42)) // |x| < log(maxdouble)
    return Half * std::exp(std::fabs(X));
  // |x| in [log(maxdouble), overflow threshold].
  int32_t Lx = lo(X);
  bool InRange = CVM_LT(5, Ix, 0x408633ce);
  if (!InRange && CVM_EQ(6, Ix, 0x408633ce) &&
      CVM_LE(7, static_cast<uint32_t>(Lx), 0x8fb9f87dU))
    InRange = true;
  if (InRange) {
    double W = std::exp(Half * std::fabs(X));
    double T = Half * W;
    return T * W;
  }
  return Huge * Huge; // overflow
}

/// e_sinh.c — 10 conditionals (20 branches).
double sinhBody(const double *Args) {
  double X = Args[0];
  int32_t Hx = hi(X);
  int32_t Ix = Hx & 0x7fffffff;
  if (CVM_GE(0, Ix, 0x7ff00000)) // inf or NaN
    return X + X;
  double H = Half;
  if (CVM_LT(1, Hx, 0))
    H = -H;
  if (CVM_LT(2, Ix, 0x40360000)) { // |x| < 22
    if (CVM_LT(3, Ix, 0x3e300000)) // |x| < 2**-28
      if (CVM_GT(4, SHuge + X, One))
        return X; // sinh(tiny) = tiny with inexact
    double T = std::expm1(std::fabs(X));
    if (CVM_LT(5, Ix, 0x3ff00000))
      return H * (2.0 * T - T * T / (T + One));
    return H * (T + T / (T + One));
  }
  if (CVM_LT(6, Ix, 0x40862e42)) // |x| < log(maxdouble)
    return H * std::exp(std::fabs(X));
  int32_t Lx = lo(X);
  bool InRange = CVM_LT(7, Ix, 0x408633ce);
  if (!InRange && CVM_EQ(8, Ix, 0x408633ce) &&
      CVM_LE(9, static_cast<uint32_t>(Lx), 0x8fb9f87dU))
    InRange = true;
  if (InRange) {
    double W = std::exp(Half * std::fabs(X));
    double T = H * W;
    return T * W;
  }
  return X * SHuge; // overflow
}

/// s_tanh.c — 6 conditionals (12 branches); the paper's Fig. 1 program.
double tanhBody(const double *Args) {
  double X = Args[0];
  int32_t Jx = hi(X);
  int32_t Ix = Jx & 0x7fffffff;
  double Z;
  if (CVM_GE(0, Ix, 0x7ff00000)) { // inf or NaN
    if (CVM_GE(1, Jx, 0))
      return One / X + One; // tanh(+-inf) = +-1
    return One / X - One;   // tanh(NaN) = NaN
  }
  if (CVM_LT(2, Ix, 0x40360000)) { // |x| < 22
    if (CVM_LT(3, Ix, 0x3c800000)) // |x| < 2**-55
      return X * (One + X);
    if (CVM_GE(4, Ix, 0x3ff00000)) { // |x| >= 1
      double T = std::expm1(2.0 * std::fabs(X));
      Z = One - 2.0 / (T + 2.0);
    } else {
      double T = std::expm1(-2.0 * std::fabs(X));
      Z = -T / (T + 2.0);
    }
  } else { // |x| >= 22: tanh saturates
    Z = One - Tiny;
  }
  if (CVM_GE(5, Jx, 0))
    return Z;
  return -Z;
}

} // namespace

namespace coverme {
namespace fdlibm {
namespace detail {

Program makeAcosh() {
  return makeProgram("ieee754_acosh", "e_acosh.c", 1, 5, 15, acoshBody);
}

Program makeAsinh() {
  return makeProgram("asinh", "s_asinh.c", 1, 6, 14, asinhBody);
}

Program makeAtanh() {
  return makeProgram("ieee754_atanh", "e_atanh.c", 1, 6, 15, atanhBody);
}

Program makeCosh() {
  return makeProgram("ieee754_cosh", "e_cosh.c", 1, 8, 20, coshBody);
}

Program makeSinh() {
  return makeProgram("ieee754_sinh", "e_sinh.c", 1, 10, 19, sinhBody);
}

Program makeTanh() {
  return makeProgram("tanh", "s_tanh.c", 1, 6, 16, tanhBody);
}

} // namespace detail
} // namespace fdlibm
} // namespace coverme
