//===- PortDetail.h - Shared helpers for the Fdlibm ports ------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal conveniences every port file uses: the instrumentation hooks,
/// word access in Fdlibm's __HI/__LO style, and a Program builder that
/// fills in the boilerplate.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_FDLIBM_PORTDETAIL_H
#define COVERME_FDLIBM_PORTDETAIL_H

#include "runtime/Hooks.h"
#include "support/FloatBits.h"

#include <cmath>
#include <cstdint>

namespace coverme {
namespace fdlibm {
namespace detail {

/// Builds a Program row with the given metadata. The ports' bodies are
/// stateless free functions, so each is registered both as the type-erased
/// Body and as the RawBody fast path Program::bind() hands to the
/// evaluation pipeline.
inline Program makeProgram(const char *Name, const char *File, unsigned Arity,
                           unsigned NumSites, unsigned TotalLines,
                           Program::RawBodyFn Body) {
  Program P;
  P.Name = Name;
  P.File = File;
  P.Arity = Arity;
  P.NumSites = NumSites;
  P.TotalLines = TotalLines;
  P.Body = Body;
  P.RawBody = Body;
  return P;
}

/// Fdlibm's __HI(x): the sign/exponent word.
inline int32_t hi(double X) { return highWord(X); }

/// Fdlibm's __LO(x): the low mantissa word, as the signed int the original
/// C code manipulates.
inline int32_t lo(double X) { return static_cast<int32_t>(lowWord(X)); }

/// Fdlibm's __HI(x) = V idiom.
inline void setHi(double &X, int32_t V) { X = setHighWord(X, V); }

/// Fdlibm's __LO(x) = V idiom.
inline void setLo(double &X, int32_t V) {
  X = setLowWord(X, static_cast<uint32_t>(V));
}

} // namespace detail
} // namespace fdlibm
} // namespace coverme

#endif // COVERME_FDLIBM_PORTDETAIL_H
