//===- PortsExtended.cpp - Beyond the paper: int-typed parameters -----------===//
//
// The paper excludes Fdlibm functions with non-floating-point inputs
// (Table 4, "unsupported input type"). Its Sect. 5.3 promotion idea extends
// naturally: an int parameter is lowered to a double argument truncated at
// entry, and every comparison is promoted as usual. This extension suite
// ports five of the excluded functions — s_scalbn.c, s_ldexp.c, k_sin.c,
// k_tan.c, and s_frexp.c — making the "extend this work to programs beyond
// floating-point code" future-work item (Sect. 8) concrete.
//
//===----------------------------------------------------------------------===//

#include "fdlibm/PortDetail.h"
#include "fdlibm/Ports.h"

using namespace coverme;
using namespace coverme::fdlibm::detail;

namespace {

const double One = 1.0, Half = 0.5, Huge = 1e300, Tiny = 1e-300;
const double Two54 = 1.80143985094819840000e+16;
const double Twom54 = 5.55111512312578270212e-17;

/// Truncates a lowered int parameter (NaN and out-of-range map to the
/// extremes, which keeps the ports total on hostile inputs).
int loweredInt(double V) {
  if (V != V)
    return 0;
  if (V >= 2147483647.0)
    return 2147483647;
  if (V <= -2147483648.0)
    return -2147483647 - 1;
  return static_cast<int>(V);
}

/// s_scalbn.c — 8 conditionals (16 branches).
double scalbnBody(const double *Args) {
  double X = Args[0];
  int N = loweredInt(Args[1]);
  int32_t Hx = hi(X), Lx = lo(X);
  int32_t K = (Hx & 0x7ff00000) >> 20; // extract exponent
  if (CVM_EQ(0, K, 0)) { // 0 or subnormal x
    if (CVM_EQ(1, Lx | (Hx & 0x7fffffff), 0))
      return X; // +-0
    X *= Two54;
    Hx = hi(X);
    K = ((Hx & 0x7ff00000) >> 20) - 54;
    if (CVM_LT(2, N, -50000))
      return Tiny * X; // underflow
  }
  if (CVM_EQ(3, K, 0x7ff))
    return X + X; // NaN or Inf
  K = K + N;
  if (CVM_GT(4, K, 0x7fe))
    return Huge * std::copysign(Huge, X); // overflow
  if (CVM_GT(5, K, 0))                    // normal result
    return setHighWord(X, (Hx & static_cast<int32_t>(0x800fffffu)) | (K << 20));
  if (CVM_LE(6, K, -54)) {
    if (CVM_GT(7, N, 50000)) // in case of integer overflow in n+n
      return Huge * std::copysign(Huge, X);
    return Tiny * std::copysign(Tiny, X); // underflow
  }
  K += 54; // subnormal result
  X = setHighWord(X, (Hx & static_cast<int32_t>(0x800fffffu)) | (K << 20));
  return X * Twom54;
}

/// s_ldexp.c — 4 conditionals (8 branches). finite(x) is the masked
/// high-word comparison the original macro performs.
double ldexpBody(const double *Args) {
  double X = Args[0];
  int N = loweredInt(Args[1]);
  if (!CVM_LT(0, hi(X) & 0x7fffffff, 0x7ff00000))
    return X; // !finite(x)
  if (CVM_EQ(1, X, 0.0))
    return X;
  X = std::scalbn(X, N); // external __ieee754 call in the original
  if (!CVM_LT(2, hi(X) & 0x7fffffff, 0x7ff00000))
    return X; // overflow: errno = ERANGE in the original
  if (CVM_EQ(3, X, 0.0))
    return X; // underflow: errno = ERANGE
  return X;
}

/// k_sin.c __kernel_sin(x, y, iy) — 3 conditionals (6 branches).
double kernelSinBody(const double *Args) {
  const double S1 = -1.66666666666666324348e-01;
  const double S2 = 8.33333333332248946124e-03;
  const double S3 = -1.98412698298579493134e-04;
  double X = Args[0], Y = 0.0;
  int Iy = loweredInt(Args[1]);
  int32_t Ix = hi(X) & 0x7fffffff;
  if (CVM_LT(0, Ix, 0x3e400000)) { // |x| < 2**-27
    if (CVM_EQ(1, static_cast<int>(X), 0))
      return X; // generate inexact
  }
  double Z = X * X;
  double V = Z * X;
  double R = S2 + Z * (S3 + Z * 2.75573137070700676789e-06);
  if (CVM_EQ(2, Iy, 0))
    return X + V * (S1 + Z * R);
  return X - ((Z * (Half * Y - V * R) - Y) - V * S1);
}

/// k_tan.c __kernel_tan(x, y, iy) — 7 conditionals (14 branches).
double kernelTanBody(const double *Args) {
  const double PiO4 = 7.85398163397448278999e-01;
  const double PiO4Lo = 3.06161699786838301793e-17;
  const double T0 = 3.33333333333334091986e-01;
  const double T1 = 1.33333333333201242699e-01;
  double X = Args[0], Y = 0.0;
  int Iy = loweredInt(Args[1]) >= 1 ? 1 : -1; // the kernel contract
  int32_t Hx = hi(X);
  int32_t Ix = Hx & 0x7fffffff;
  if (CVM_LT(0, Ix, 0x3e300000)) { // |x| < 2**-28
    if (CVM_EQ(1, static_cast<int>(X), 0)) {
      int32_t Lx = lo(X);
      if (CVM_EQ(2, (Ix | Lx) | (Iy + 1), 0))
        return One / std::fabs(X); // x == 0 && iy == -1: generate inf
      if (CVM_EQ(3, Iy, 1))
        return X; // tan(tiny) = tiny
      return -One / X; // cot path
    }
  }
  if (CVM_GE(4, Ix, 0x3fe59428)) { // |x| >= 0.6744
    if (CVM_LT(5, Hx, 0)) {
      X = -X;
      Y = -Y;
    }
    double Z = PiO4 - X;
    double W = PiO4Lo - Y;
    X = Z + W;
    Y = 0.0;
  }
  double Z = X * X;
  double W = Z * Z;
  double R = T1 + W * 5.39682539762260521377e-02;
  double V = Z * (8.88323564984874960504e-02 + W * 2.18694882948595424599e-02);
  double S = Z * X;
  R = Y + Z * (S * (R + V) + Y);
  R += T0 * S;
  W = X + R;
  if (CVM_EQ(6, Iy, 1))
    return W;
  // Compute -1/(x+r) carefully for the cot case.
  double ZLow = setLowWord(W, 0);
  double VTail = R - (ZLow - X);
  double A = -One / W;
  double THead = setLowWord(A, 0);
  double SCorr = One + THead * ZLow;
  return THead + A * (SCorr + THead * VTail);
}

/// s_frexp.c — 3 conditionals (6 branches). The int* out-parameter is
/// folded into the return value (mantissa + exponent/1024) so the lowered
/// program still depends on both outputs.
double frexpBody(const double *Args) {
  double X = Args[0];
  int32_t Hx = hi(X), Lx = lo(X);
  int32_t Ix = 0x7fffffff & Hx;
  int Exp = 0;
  if (CVM_GE(0, Ix, 0x7ff00000))
    return X; // inf or NaN
  if (CVM_EQ(1, Ix | Lx, 0))
    return X; // +-0
  if (CVM_LT(2, Ix, 0x00100000)) { // subnormal
    X *= Two54;
    Hx = hi(X);
    Ix = Hx & 0x7fffffff;
    Exp = -54;
  }
  Exp += (Ix >> 20) - 1022;
  X = setHighWord(X, (Hx & static_cast<int32_t>(0x800fffffu)) | 0x3fe00000);
  return X + static_cast<double>(Exp) / 1024.0;
}

} // namespace

namespace coverme {
namespace fdlibm {
namespace detail {

Program makeScalbn() {
  return makeProgram("scalbn", "s_scalbn.c", 2, 8, 22, scalbnBody);
}

Program makeLdexp() {
  return makeProgram("ldexp", "s_ldexp.c", 2, 4, 8, ldexpBody);
}

Program makeKernelSin() {
  return makeProgram("kernel_sin", "k_sin.c", 2, 3, 14, kernelSinBody);
}

Program makeKernelTan() {
  return makeProgram("kernel_tan", "k_tan.c", 2, 7, 35, kernelTanBody);
}

Program makeFrexp() {
  return makeProgram("frexp", "s_frexp.c", 1, 3, 14, frexpBody);
}

} // namespace detail
} // namespace fdlibm
} // namespace coverme

namespace {

/// e_jn.c __ieee754_jn(n, x) — 22 conditionals (44 branches), the largest
/// of the excluded int-parameter functions: forward recurrence for n <= x,
/// continued-fraction backward recurrence otherwise. The switch over n&3
/// on the huge-x path is lowered to an ==-chain as in the atan2 port.
double jnBody(const double *Args) {
  const double InvSqrtPi = 5.64189583547756279280e-01;
  const double Two = 2.0, One = 1.0, Zero = 0.0;
  double X = Args[1];
  int N = loweredInt(Args[0]);
  // Bessel recurrences are Theta(|n|) — real fdlibm/glibc jn included — so
  // an unconstrained lowered order of ~2^31 makes a single call take
  // seconds. Clamp the order to a range that keeps every branch arm
  // feasible (the sites compare n against 0, 1, 33 and n <= x only):
  // testing-harness bound, not a semantic change for the covered domain.
  if (N > 30000)
    N = 30000;
  if (N < -30000)
    N = -30000;
  int32_t Hx = hi(X);
  int32_t Ix = 0x7fffffff & Hx;
  uint32_t Lx = lowWord(X);
  uint32_t NanTest =
      static_cast<uint32_t>(Ix) | ((Lx | (0u - Lx)) >> 31);
  if (CVM_GT(0, NanTest, 0x7ff00000u))
    return X + X; // NaN
  if (CVM_LT(1, N, 0)) { // J(-n, x) = J(n, -x)
    N = -N;
    X = -X;
    Hx = hi(X);
  }
  if (CVM_EQ(2, N, 0))
    return ::j0(X);
  if (CVM_EQ(3, N, 1))
    return ::j1(X);
  int Sgn = (N & 1) & (static_cast<uint32_t>(Hx) >> 31); // odd n, x < 0
  X = std::fabs(X);
  double B;
  bool XZero = CVM_EQ(4, static_cast<uint32_t>(Ix) | Lx, 0);
  if (XZero || CVM_GE(5, Ix, 0x7ff00000)) {
    B = Zero; // j(n, 0) = j(n, inf) = 0
  } else if (CVM_LE(6, static_cast<double>(N), X)) {
    // Safe to use the forward recurrence J(n+1) = 2n/x J(n) - J(n-1).
    if (CVM_GE(7, Ix, 0x52d00000)) { // x > 2**302: asymptotic phase only
      double Temp;
      int Quadrant = N & 3;
      if (CVM_EQ(8, Quadrant, 0))
        Temp = std::cos(X) + std::sin(X);
      else if (CVM_EQ(9, Quadrant, 1))
        Temp = -std::cos(X) + std::sin(X);
      else if (CVM_EQ(10, Quadrant, 2))
        Temp = -std::cos(X) - std::sin(X);
      else
        Temp = std::cos(X) - std::sin(X);
      B = InvSqrtPi * Temp / std::sqrt(X);
    } else {
      double A = ::j0(X);
      B = ::j1(X);
      for (int I = 1; CVM_LT(11, I, N); ++I) {
        double Temp = B;
        B = B * (static_cast<double>(I + I) / X) - A;
        A = Temp;
      }
    }
  } else {
    if (CVM_LT(12, Ix, 0x3e100000)) { // x < 2**-29: leading term only
      if (CVM_GT(13, N, 33)) {       // underflows to zero
        B = Zero;
      } else {
        double Temp = X * 0.5;
        B = Temp;
        double A = One;
        for (int I = 2; CVM_LE(14, I, N); ++I) {
          A *= static_cast<double>(I); // a = n!
          B *= Temp;                   // b = (x/2)^n
        }
        B = B / A;
      }
    } else {
      // Backward recurrence: find a starting order k via the continued
      // fraction, run the recurrence down, normalize with j0.
      double W = (N + N) / X;
      double H = Two / X;
      double Q0 = W;
      double Z = W + H;
      double Q1 = W * Z - 1.0;
      int K = 1;
      while (CVM_LT(15, Q1, 1.0e9)) {
        K += 1;
        Z += H;
        double Tmp = Z * Q1 - Q0;
        Q0 = Q1;
        Q1 = Tmp;
      }
      int M = N + N;
      double T = Zero;
      for (int I = 2 * (N + K); CVM_GE(16, I, M); I -= 2)
        T = One / (static_cast<double>(I) / X - T);
      double A = T;
      B = One;
      // Guard against overflow in the recurrence when (2/x)^n n! is huge.
      double Tmp = static_cast<double>(N);
      double V = Two / X;
      Tmp = Tmp * std::log(std::fabs(V * Tmp));
      if (CVM_LT(17, Tmp, 7.09782712893383973096e+02)) {
        double Di = static_cast<double>(2 * (N - 1));
        for (int I = N - 1; CVM_GT(18, I, 0); --I) {
          double Temp = B;
          B = B * Di / X - A;
          A = Temp;
          Di -= Two;
        }
      } else {
        double Di = static_cast<double>(2 * (N - 1));
        for (int I = N - 1; CVM_GT(19, I, 0); --I) {
          double Temp = B;
          B = B * Di / X - A;
          A = Temp;
          Di -= Two;
          if (CVM_GT(20, B, 1e100)) { // rescale to avoid overflow
            A /= B;
            T /= B;
            B = One;
          }
        }
      }
      B = T * ::j0(X) / B;
    }
  }
  if (CVM_EQ(21, Sgn, 1))
    return -B;
  return B;
}

} // namespace

namespace coverme {
namespace fdlibm {
namespace detail {

Program makeJn() {
  return makeProgram("ieee754_jn", "e_jn.c", 2, 22, 58, jnBody);
}

} // namespace detail
} // namespace fdlibm
} // namespace coverme
