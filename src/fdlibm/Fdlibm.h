//===- Fdlibm.h - The Fdlibm 5.3 benchmark suite ---------------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// From-scratch ports of the 40 Fdlibm 5.3 functions the paper evaluates
/// (Table 2). Each port reproduces the original's conditional structure —
/// the same high/low-word bit tests, in the same nesting, with one CVM hook
/// per conditional — so its Gcov branch count matches the paper's
/// "#Branches" column. Numeric constants follow Sun's sources; polynomial
/// kernels are approximated where exact coefficients don't affect control
/// flow. External calls (exp, log, sqrt, ...) stay uninstrumented, exactly
/// as the paper's entry-function-only instrumentation behaves (Sect. 5.3).
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_FDLIBM_FDLIBM_H
#define COVERME_FDLIBM_FDLIBM_H

#include "runtime/Program.h"

namespace coverme {
namespace fdlibm {

/// All 40 benchmark programs in Table 2 order (sorted by file name).
/// Built once, on first use.
const ProgramRegistry &registry();

/// Looks up a program by entry-function name (e.g. "ieee754_acos");
/// returns null when absent.
const Program *lookup(const std::string &Name);

/// Paper reference numbers for one benchmark row (Tables 2/3/5), used by
/// the bench harness to print paper-vs-measured columns.
struct PaperRow {
  const char *Function;
  int Branches;       ///< Table 2 "#Branches".
  double RandPct;     ///< Table 2 Rand branch %.
  double AflPct;      ///< Table 2 AFL branch %.
  double CoverMePct;  ///< Table 2 CoverMe branch %.
  double AustinPct;   ///< Table 3 Austin branch % (<0 when timeout/crash).
};

/// The paper's per-function results, aligned with registry() order.
const std::vector<PaperRow> &paperRows();

/// The extension suite: functions the paper excluded for non-floating-
/// point inputs (Table 4), ported via Sect. 5.3's promotion with int
/// parameters lowered to truncated doubles — the Sect. 8 future-work item
/// made concrete. Not part of the Table 2/3/5 reproductions.
const ProgramRegistry &extendedRegistry();

} // namespace fdlibm
} // namespace coverme

#endif // COVERME_FDLIBM_FDLIBM_H
