//===- Ports.h - Internal factory declarations for the Fdlibm ports -------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One factory per ported benchmark. Private to the fdlibm library; clients
/// go through fdlibm::registry().
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_FDLIBM_PORTS_H
#define COVERME_FDLIBM_PORTS_H

#include "runtime/Program.h"

namespace coverme {
namespace fdlibm {
namespace detail {

// PortsInverseTrig.cpp
Program makeAcos();
Program makeAsin();
Program makeAtan();
Program makeAtan2();

// PortsExpLog.cpp
Program makeExp();
Program makeExpm1();
Program makeLog();
Program makeLog10();
Program makeLog1p();
Program makePow();
Program makeScalb();

// PortsHyperbolic.cpp
Program makeAcosh();
Program makeAsinh();
Program makeAtanh();
Program makeCosh();
Program makeSinh();
Program makeTanh();

// PortsTrig.cpp
Program makeSin();
Program makeCos();
Program makeTan();
Program makeKernelCos();
Program makeRemPio2();

// PortsBessel.cpp
Program makeJ0();
Program makeY0();
Program makeJ1();
Program makeY1();
Program makeErf();
Program makeErfc();

// PortsExtended.cpp (beyond the paper: lowered int parameters)
Program makeScalbn();
Program makeLdexp();
Program makeKernelSin();
Program makeKernelTan();
Program makeFrexp();
Program makeJn();

// PortsRounding.cpp
Program makeCeil();
Program makeFloor();
Program makeRint();
Program makeModf();
Program makeIlogb();
Program makeLogb();
Program makeCbrt();
Program makeSqrt();
Program makeFmod();
Program makeRemainder();
Program makeHypot();
Program makeNextafter();

} // namespace detail
} // namespace fdlibm
} // namespace coverme

#endif // COVERME_FDLIBM_PORTS_H
