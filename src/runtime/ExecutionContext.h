//===- ExecutionContext.h - Instrumentation runtime state -----------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime behind the injected hooks. In the paper, the LLVM pass
/// injects `r = pen(i, op, a, b)` immediately before conditional l_i and a
/// loader exposes the instrumented program as FOO_R. Here, each ported
/// conditional calls ExecutionContext::evalCond via the CVM_COND macros.
///
/// The state splits in two. The context itself is *per-run scratch* — the
/// paper's global r, the branch trace (used by the infeasible-branch
/// heuristic of Sect. 5.3), per-site operand observations, and an optional
/// CoverageMap sink — cheap enough that every campaign worker thread owns
/// one. The saturation flags pen consults (Def. 4.2) live in a
/// SaturationTable that contexts either own privately (the classic
/// single-campaign shape) or share: the parallel CampaignEngine binds all
/// of its workers' contexts to one table so every round sees the campaign-
/// wide saturation state.
///
/// Context scoping mirrors the paper's process-global r: a thread-local
/// "current context" pointer is installed for the duration of a run (see
/// ExecutionContext::Scope). A program executed with no current context
/// behaves as the plain, uninstrumented math function.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_RUNTIME_EXECUTIONCONTEXT_H
#define COVERME_RUNTIME_EXECUTIONCONTEXT_H

#include "runtime/BranchDistance.h"
#include "runtime/Coverage.h"
#include "runtime/Program.h"
#include "runtime/SaturationTable.h"

#include <memory>
#include <vector>

namespace coverme {

/// The comparison observed at one site during the last run. Search-based
/// testers (Austin-lite) use this to compute a branch-distance fitness for
/// an arbitrary target arm without re-instrumenting the program.
struct SiteObservation {
  bool Executed = false;
  CmpOp Op = CmpOp::EQ;
  double A = 0.0;
  double B = 0.0;
};

/// Per-run mutable state behind the hooks, bound to a (owned or shared)
/// SaturationTable.
class ExecutionContext {
public:
  /// Creates a context owning a private table for a program with
  /// \p NumSites conditionals — the single-campaign shape.
  explicit ExecutionContext(unsigned NumSites,
                            double Epsilon = DefaultEpsilon);

  /// Creates a context bound to \p Shared, which must outlive it. Several
  /// contexts (one per worker thread) may share one table.
  explicit ExecutionContext(SaturationTable &Shared,
                            double Epsilon = DefaultEpsilon);

  /// Installs this context as the thread-current one for the lifetime of
  /// the scope; restores the previous context on destruction.
  class Scope {
  public:
    explicit Scope(ExecutionContext &Ctx);
    ~Scope();
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    ExecutionContext *Previous;
  };

  /// The context installed on this thread, or null.
  static ExecutionContext *current();

  /// The hook the instrumented conditionals call: computes pen (Def. 4.2),
  /// assigns it to r, records coverage and the trace, and returns the
  /// branch outcome `A op B` so the caller can branch on it.
  bool evalCond(uint32_t Site, CmpOp Op, double A, double B);

  /// pen(l_i, op, a, b) per Def. 4.2, reading this context's saturation
  /// table. Exposed for unit testing; evalCond is the normal entry point.
  double pen(uint32_t Site, CmpOp Op, double A, double B) const;

  /// Resets per-run state (r := 1, clears the trace). Called by
  /// RepresentingFunction before each execution.
  void beginRun();

  /// Marks one branch arm saturated.
  void saturate(BranchRef Ref) { Table->saturate(Ref); }

  bool isSaturated(BranchRef Ref) const { return Table->isSaturated(Ref); }

  /// True when every arm of every site is saturated — the campaign's
  /// termination condition (all covered or deemed infeasible).
  bool allSaturated() const { return Table->allSaturated(); }

  /// Number of saturated arms.
  unsigned saturatedCount() const { return Table->saturatedCount(); }

  unsigned numSites() const { return Table->numSites(); }

  /// The bound table (owned or shared).
  SaturationTable &saturation() { return *Table; }
  const SaturationTable &saturation() const { return *Table; }

  /// Global r of the representing function (Algo. 1, line 1).
  double R = 1.0;

  /// When false the hooks skip pen and leave r alone; used when replaying
  /// inputs purely for coverage measurement or for the baseline testers.
  bool PenEnabled = true;

  /// Optional coverage sink; when non-null every evalCond records its arm.
  CoverageMap *Coverage = nullptr;

  /// When true, evalCond appends each (site, outcome) to Trace.
  bool TraceEnabled = true;

  /// Branch outcomes of the current/last run, in execution order.
  std::vector<BranchRef> Trace;

  /// When true, evalCond records the latest operands per site into
  /// Observations (sized numSites()); cleared by beginRun().
  bool RecordOperands = false;

  /// Last observed comparison per site for the current run.
  std::vector<SiteObservation> Observations;

  /// When true (and TraceEnabled), evalCond also appends the operands of
  /// every executed comparison to TraceOperands, index-aligned with Trace.
  /// Loop sites appear once per iteration — the concrete shadow of a
  /// symbolic path condition, which the DSE baseline replays.
  bool RecordTraceOperands = false;

  /// Per-trace-position operands of the current/last run.
  std::vector<SiteObservation> TraceOperands;

  /// Epsilon used by the branch distances.
  double Epsilon;

private:
  std::unique_ptr<SaturationTable> OwnedTable; ///< Null when sharing.
  SaturationTable *Table;                      ///< Never null.
};

namespace rt {

/// Free-function hook the CVM_COND macros expand to. With no current
/// context it simply evaluates the comparison.
bool cond(uint32_t Site, CmpOp Op, double A, double B);

} // namespace rt

} // namespace coverme

#endif // COVERME_RUNTIME_EXECUTIONCONTEXT_H
