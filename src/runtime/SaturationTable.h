//===- SaturationTable.h - Shared campaign saturation state ---------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign-global half of the runtime state: which branch arms are
/// saturated (covered by a generated input or deemed infeasible, the Def.
/// 3.2 set `pen` consults) plus the consecutive-failure streak counters of
/// the Sect. 5.3 infeasible-branch heuristic. Splitting this out of
/// ExecutionContext makes the context pure per-run scratch (r, trace,
/// observations) — cheap to give every worker thread its own — while all
/// workers consult one shared table.
///
/// Thread-safety contract: every operation is safe to call concurrently
/// (flags and streaks are atomics). The table additionally maintains a
/// monotone \c version(), bumped each time an arm becomes newly saturated.
/// The parallel CampaignEngine uses it for deterministic speculation: a
/// round that ran against version V is only committed if the table is
/// still at V; otherwise the round re-runs against the settled table, so
/// any thread count replays the sequential schedule exactly.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_RUNTIME_SATURATIONTABLE_H
#define COVERME_RUNTIME_SATURATIONTABLE_H

#include "runtime/Program.h"

#include <atomic>
#include <memory>
#include <vector>

namespace coverme {

/// Atomic per-arm saturation flags and infeasible-streak counters for one
/// program's conditional sites.
class SaturationTable {
public:
  explicit SaturationTable(unsigned NumSites);

  unsigned numSites() const { return Sites; }

  /// Marks \p Ref saturated. Returns true (and bumps the version) when the
  /// arm was not saturated before.
  bool saturate(BranchRef Ref);

  bool isSaturated(BranchRef Ref) const {
    return Arms[index(Ref)].load(std::memory_order_relaxed) != 0;
  }

  /// True when every arm of every site is saturated — the campaign's
  /// termination condition (all covered or deemed infeasible).
  bool allSaturated() const;

  /// Number of saturated arms.
  unsigned saturatedCount() const;

  /// All saturated arms, in site order (T arm before F arm).
  std::vector<BranchRef> saturatedArms() const;

  /// Monotone change counter: increments once per newly saturated arm.
  /// Equal versions imply identical flag states (arms never unsaturate).
  uint64_t version() const { return Version.load(std::memory_order_acquire); }

  /// Increments the consecutive-failure streak of \p Ref (the Sect. 5.3
  /// blame counter) and returns the new value.
  unsigned bumpStreak(BranchRef Ref) {
    return Streaks[index(Ref)].fetch_add(1, std::memory_order_relaxed) + 1;
  }

  unsigned streak(BranchRef Ref) const {
    return Streaks[index(Ref)].load(std::memory_order_relaxed);
  }

  /// Zeroes every streak — called when a round makes progress, giving all
  /// blamed arms a fresh chance before being written off.
  void resetStreaks();

  /// A self-consistent copy of the table for checkpoint writers: the arm
  /// flags, streak counters, and the version they correspond to, captured
  /// as one coherent triple even while other threads saturate concurrently.
  struct Snapshot {
    std::vector<uint8_t> Arms;     ///< 2 per site, 0/1.
    std::vector<uint32_t> Streaks; ///< 2 per site.
    uint64_t Version = 0;
  };

  /// Captures a Snapshot whose flags match its version exactly. saturate()
  /// publishes in two steps (set the arm, then bump the version), and both
  /// reads here are racy against it, so a naive copy could pair arm flags
  /// from one instant with a version from another — a resumed campaign
  /// would then observe a half-written table. The writer's invariant makes
  /// a stable read checkable: the version increments exactly once per
  /// newly saturated arm, so a copy is consistent iff the version read
  /// before the scan, the version read after, and the number of set flags
  /// in the copy all agree. Retries until they do; terminates because the
  /// version is bounded by 2 * numSites().
  Snapshot snapshot() const;

  /// Restores the table from \p S wholesale (checkpoint loader). Returns
  /// false — leaving the table untouched — unless the snapshot's shape
  /// matches this table and its version equals its set-flag count (the
  /// writer-side invariant; a mismatch means corruption).
  [[nodiscard]] bool restore(const Snapshot &S);

private:
  static size_t index(BranchRef Ref) {
    return static_cast<size_t>(Ref.Site) * 2 + (Ref.Outcome ? 1 : 0);
  }

  unsigned Sites;
  std::unique_ptr<std::atomic<uint8_t>[]> Arms;     ///< 2 per site.
  std::unique_ptr<std::atomic<uint32_t>[]> Streaks; ///< 2 per site.
  std::atomic<uint64_t> Version{0};
};

} // namespace coverme

#endif // COVERME_RUNTIME_SATURATIONTABLE_H
