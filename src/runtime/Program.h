//===- Program.h - Function-under-test metadata ---------------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Program is the unit CoverMe tests: an entry function FOO with
/// floating-point inputs (Def. 3.1(a), pointer inputs lowered per Sect. 5.3)
/// whose body has been instrumented with CVM_COND hooks — the moral
/// equivalent of the paper's LLVM-pass output FOO_I. Each program carries
/// the metadata the harness needs: arity, number of conditional sites, and
/// a line model for the gcov-style line-coverage report (Table 5).
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_RUNTIME_PROGRAM_H
#define COVERME_RUNTIME_PROGRAM_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace coverme {

/// One arm of a conditional: site index plus outcome (true/false branch).
struct BranchRef {
  uint32_t Site = 0;
  bool Outcome = false;

  friend bool operator==(const BranchRef &L, const BranchRef &R) {
    return L.Site == R.Site && L.Outcome == R.Outcome;
  }
};

/// An instrumented function under test.
struct Program {
  /// Instrumented body: reads Arity doubles from Args, runs with the
  /// current ExecutionContext's hooks, returns the function's result.
  /// A std::function (rather than a raw pointer) so stateful bodies — in
  /// particular source programs executed by the lang interpreter — can be
  /// registered alongside the natively compiled Fdlibm ports.
  using BodyFn = std::function<double(const double *Args)>;

  /// Stateless body as a plain function pointer — the natively compiled
  /// ports. When set, it must compute exactly what Body computes; bind()
  /// then skips the std::function dispatch entirely.
  using RawBodyFn = double (*)(const double *Args);

  /// A body resolved for one minimization run on one thread: per-probe
  /// invocation is a raw call with no type-erased dispatch and no
  /// per-call state lookup. Produced by bind(); valid only on the thread
  /// that called bind() and only while the Program (and, for VM-backed
  /// bodies, the thread) lives.
  struct BoundBody {
    RawBodyFn Raw = nullptr; ///< Direct native body, when available.
    double (*Invoke)(void *State, uint64_t Imm,
                     const double *Args) = nullptr; ///< Else: one trampoline.
    /// Optional wide representing-function entry (the VM tier's batched
    /// probe path). Contract: the caller has an ExecutionContext installed
    /// and pen configured for the run; for each of the Count rows of the
    /// row-major matrix Xs the callee performs exactly the BoundRun::eval
    /// sequence — context beginRun(), one body execution, Out[I] = the
    /// context's r — with the per-probe entry bookkeeping hoisted out of
    /// the loop. Bit-identical to looping eval; only the setup cost moves.
    void (*InvokeBatch)(void *State, uint64_t Imm, const double *Xs,
                        size_t Count, size_t N, double *Out) = nullptr;
    void *State = nullptr;
    uint64_t Imm = 0;

    double call(const double *Args) const {
      return Raw ? Raw(Args) : Invoke(State, Imm, Args);
    }
  };

  /// Per-run binder: resolves thread-local executor state (e.g. the
  /// bytecode VM) once so the probe loop doesn't. Null when Body needs no
  /// per-thread resolution; bind() then falls back to RawBody or to the
  /// type-erased Body.
  using BinderFn = std::function<BoundBody()>;

  std::string Name;    ///< Entry function, e.g. "ieee754_acos".
  std::string File;    ///< Originating file, e.g. "e_acos.c".
  unsigned Arity = 1;  ///< Number of double inputs (pointer params lowered).
  unsigned NumSites = 0; ///< Conditional statements l_0..l_{NumSites-1}.
  BodyFn Body = nullptr;
  RawBodyFn RawBody = nullptr;
  BinderFn Binder = nullptr;

  /// Resolves the fastest per-probe entry available for this body on the
  /// calling thread: Binder > RawBody > the std::function Body. Bit-
  /// identical to calling Body — only the dispatch cost differs.
  BoundBody bind() const;

  /// Total source lines of the function (Table 5's "#Lines" column); drives
  /// the synthetic line-coverage model below.
  unsigned TotalLines = 0;

  /// True when Body may run concurrently on several threads, each under its
  /// own ExecutionContext. The native Fdlibm ports are pure functions and
  /// qualify, as do bytecode-compiled source programs (shared immutable
  /// code, per-thread lang::Vm state). Tree-walked source programs share
  /// one lang::Interpreter and do not — the campaign engine falls back to
  /// its sequential path for them; whole-subject sharding via
  /// CampaignRunner still applies.
  bool ThreadSafeBody = true;

  /// Branch count as Gcov reports it: two arms per conditional site.
  unsigned numBranches() const { return 2 * NumSites; }

  /// Synthetic gcov-lite line model: every run executes a straight-line
  /// share of the function; each covered branch arm contributes an equal
  /// share of the remaining lines. This reproduces the *shape* of Table 5
  /// (line coverage tracks branch coverage but saturates earlier) without
  /// per-line annotations in the ports.
  double armLineWeight() const {
    if (NumSites == 0 || TotalLines <= 1)
      return 0.0;
    // Roughly half of a Fdlibm function body sits inside branch arms.
    return static_cast<double>(TotalLines) * 0.5 /
           static_cast<double>(numBranches());
  }

  double straightLineCount() const {
    return static_cast<double>(TotalLines) -
           armLineWeight() * static_cast<double>(numBranches());
  }
};

/// An ordered collection of programs, looked up by name.
class ProgramRegistry {
public:
  /// Adds \p P; asserts the name is unique and the body non-null.
  void add(Program P);

  /// Returns the program named \p Name or null.
  const Program *lookup(const std::string &Name) const;

  const std::vector<Program> &programs() const { return Programs; }
  size_t size() const { return Programs.size(); }

private:
  std::vector<Program> Programs;
};

} // namespace coverme

#endif // COVERME_RUNTIME_PROGRAM_H
