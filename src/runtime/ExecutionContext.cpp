//===- ExecutionContext.cpp - Instrumentation runtime state -----------------===//

#include "runtime/ExecutionContext.h"

using namespace coverme;

static thread_local ExecutionContext *CurrentContext = nullptr;

ExecutionContext::ExecutionContext(unsigned NumSites, double Epsilon)
    : Epsilon(Epsilon), OwnedTable(new SaturationTable(NumSites)),
      Table(OwnedTable.get()) {}

ExecutionContext::ExecutionContext(SaturationTable &Shared, double Epsilon)
    : Epsilon(Epsilon), Table(&Shared) {}

ExecutionContext::Scope::Scope(ExecutionContext &Ctx)
    : Previous(CurrentContext) {
  CurrentContext = &Ctx;
}

ExecutionContext::Scope::~Scope() { CurrentContext = Previous; }

ExecutionContext *ExecutionContext::current() { return CurrentContext; }

double ExecutionContext::pen(uint32_t Site, CmpOp Op, double A,
                             double B) const {
  assert(Site < Table->numSites() && "conditional site out of range");
  bool TrueArm = Table->isSaturated({Site, true});
  bool FalseArm = Table->isSaturated({Site, false});
  // Def. 4.2(a): neither arm saturated — any input saturates a new branch.
  if (!TrueArm && !FalseArm)
    return 0.0;
  // Def. 4.2(b): distance to the one unsaturated arm.
  if (!TrueArm)
    return branchDistance(Op, A, B, Epsilon);
  if (!FalseArm)
    return branchDistance(negateCmpOp(Op), A, B, Epsilon);
  // Def. 4.2(c): both saturated — keep the previous r.
  return R;
}

bool ExecutionContext::evalCond(uint32_t Site, CmpOp Op, double A, double B) {
  if (PenEnabled)
    R = pen(Site, Op, A, B); // The injected `r = pen(li, op, a, b)`.
  bool Outcome = evalCmpOp(Op, A, B);
  if (Coverage)
    Coverage->recordHit(Site, Outcome);
  if (TraceEnabled) {
    Trace.push_back({Site, Outcome});
    if (RecordTraceOperands)
      TraceOperands.push_back({true, Op, A, B});
  }
  if (RecordOperands) {
    if (Observations.size() != Table->numSites())
      Observations.resize(Table->numSites());
    Observations[Site] = {true, Op, A, B};
  }
  return Outcome;
}

void ExecutionContext::beginRun() {
  R = 1.0; // FOO_R initializes r to 1 (Algo. 1, line 5).
  Trace.clear();
  TraceOperands.clear();
  if (RecordOperands)
    Observations.assign(Table->numSites(), SiteObservation());
}

bool coverme::rt::cond(uint32_t Site, CmpOp Op, double A, double B) {
  ExecutionContext *Ctx = ExecutionContext::current();
  if (!Ctx)
    return evalCmpOp(Op, A, B);
  return Ctx->evalCond(Site, Op, A, B);
}
