//===- CHooks.cpp - C-linkage hook for instrumented sources -----------------===//

#include "runtime/CHooks.h"

#include "runtime/ExecutionContext.h"

#include <cassert>

using namespace coverme;

int cvm_cond(int Site, int Op, double Lhs, double Rhs) {
  assert(Op >= 0 && Op <= 5 && "operator constant out of range");
  return rt::cond(static_cast<uint32_t>(Site), static_cast<CmpOp>(Op), Lhs,
                  Rhs)
             ? 1
             : 0;
}
