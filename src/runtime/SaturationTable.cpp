//===- SaturationTable.cpp - Shared campaign saturation state ---------------===//

#include "runtime/SaturationTable.h"

using namespace coverme;

SaturationTable::SaturationTable(unsigned NumSites)
    : Sites(NumSites),
      Arms(new std::atomic<uint8_t>[2 * static_cast<size_t>(NumSites)]),
      Streaks(new std::atomic<uint32_t>[2 * static_cast<size_t>(NumSites)]) {
  for (size_t I = 0; I < 2 * static_cast<size_t>(Sites); ++I) {
    Arms[I].store(0, std::memory_order_relaxed);
    Streaks[I].store(0, std::memory_order_relaxed);
  }
}

bool SaturationTable::saturate(BranchRef Ref) {
  assert(Ref.Site < Sites && "conditional site out of range");
  if (Arms[index(Ref)].exchange(1, std::memory_order_acq_rel) != 0)
    return false;
  Version.fetch_add(1, std::memory_order_acq_rel);
  return true;
}

bool SaturationTable::allSaturated() const {
  for (size_t I = 0; I < 2 * static_cast<size_t>(Sites); ++I)
    if (Arms[I].load(std::memory_order_relaxed) == 0)
      return false;
  return true;
}

unsigned SaturationTable::saturatedCount() const {
  unsigned Count = 0;
  for (size_t I = 0; I < 2 * static_cast<size_t>(Sites); ++I)
    Count += Arms[I].load(std::memory_order_relaxed) != 0;
  return Count;
}

std::vector<BranchRef> SaturationTable::saturatedArms() const {
  std::vector<BranchRef> Out;
  for (uint32_t S = 0; S < Sites; ++S) {
    if (isSaturated({S, true}))
      Out.push_back({S, true});
    if (isSaturated({S, false}))
      Out.push_back({S, false});
  }
  return Out;
}

void SaturationTable::resetStreaks() {
  for (size_t I = 0; I < 2 * static_cast<size_t>(Sites); ++I)
    Streaks[I].store(0, std::memory_order_relaxed);
}

SaturationTable::Snapshot SaturationTable::snapshot() const {
  const size_t N = 2 * static_cast<size_t>(Sites);
  Snapshot S;
  S.Arms.resize(N);
  S.Streaks.resize(N);
  for (;;) {
    uint64_t Before = Version.load(std::memory_order_acquire);
    uint64_t SetFlags = 0;
    for (size_t I = 0; I < N; ++I) {
      S.Arms[I] = Arms[I].load(std::memory_order_acquire);
      SetFlags += S.Arms[I] != 0;
    }
    for (size_t I = 0; I < N; ++I)
      S.Streaks[I] = Streaks[I].load(std::memory_order_acquire);
    uint64_t After = Version.load(std::memory_order_acquire);
    // Consistent iff no saturation published during the scan (Before ==
    // After) and no saturation was caught mid-publish (an arm flag set
    // whose version bump has not landed would make SetFlags > Before).
    if (Before == After && SetFlags == Before) {
      S.Version = Before;
      return S;
    }
  }
}

bool SaturationTable::restore(const Snapshot &S) {
  const size_t N = 2 * static_cast<size_t>(Sites);
  if (S.Arms.size() != N || S.Streaks.size() != N)
    return false;
  uint64_t SetFlags = 0;
  for (size_t I = 0; I < N; ++I) {
    if (S.Arms[I] > 1)
      return false;
    SetFlags += S.Arms[I];
  }
  if (SetFlags != S.Version)
    return false; // half-written or corrupt capture
  for (size_t I = 0; I < N; ++I) {
    Arms[I].store(S.Arms[I], std::memory_order_relaxed);
    Streaks[I].store(S.Streaks[I], std::memory_order_relaxed);
  }
  Version.store(S.Version, std::memory_order_release);
  return true;
}
