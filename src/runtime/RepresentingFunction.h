//===- RepresentingFunction.h - FOO_R (Algo. 1, line 5) -------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The representing function FOO_R of Sect. 3.2:
///
/// \code
///   double FOO_R(double x) { r = 1; FOO_I(x); return r; }
/// \endcode
///
/// By construction it satisfies
///   C1. FOO_R(x) >= 0 for all x, and
///   C2. FOO_R(x) == 0 iff x saturates a branch not yet saturated
/// (Thm. 4.3), which is what licenses handing it to any unconstrained-
/// programming backend as a black-box objective.
///
/// Two evaluation paths exist. The plain call operators install the
/// context scope per call — correct anywhere, and what one-off callers
/// use. The hot loop of Algorithm 1 instead opens a BoundRun per
/// minimization run: the scope install, pen toggle, and per-thread body
/// resolution (Program::bind — for VM-backed bodies, the thread-local VM
/// lookup) all happen once, and each probe is beginRun + one raw body
/// call. Both paths compute bit-identical FOO_R values.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_RUNTIME_REPRESENTINGFUNCTION_H
#define COVERME_RUNTIME_REPRESENTINGFUNCTION_H

#include "optim/Objective.h"
#include "runtime/ExecutionContext.h"
#include "runtime/Program.h"

#include <vector>

namespace coverme {

/// Callable wrapper evaluating FOO_R(x) for a given program and context.
/// Satisfies the ObjectiveFn callee protocol (span eval + evalBatch), so
/// it can be handed to any minimizer directly; prefer a BoundRun for
/// sustained minimization loops.
class RepresentingFunction {
public:
  RepresentingFunction(const Program &P, ExecutionContext &Ctx);

  /// Evaluates FOO_R at the span [X, X + N); N must equal the program's
  /// arity. Resets r to 1, installs the context, runs FOO_I, returns r.
  double eval(const double *X, size_t N) const;

  /// Vector convenience overload.
  double operator()(const std::vector<double> &X) const {
    return eval(X.data(), X.size());
  }

  /// Evaluates Count points (rows of \p Xs) into \p Out with the context
  /// installed once around the whole batch.
  void evalBatch(const double *Xs, size_t Count, size_t N,
                 double *Out) const;

  /// Runs the program at \p X purely for its side effects on the context's
  /// trace/coverage with pen disabled — "just execute FOO(x)". Returns the
  /// program's own return value.
  double execute(const std::vector<double> &X) const;

  /// RAII binding for one minimization run on one thread: installs the
  /// context scope, enables pen, and resolves the body (for VM tiers, the
  /// thread-local VM) once. eval() is then the whole per-probe cost:
  /// beginRun + one raw body call — no allocation, no type-erased
  /// dispatch, no thread-local traffic. Satisfies the ObjectiveFn callee
  /// protocol. Not movable; must be destroyed on the constructing thread.
  class BoundRun {
  public:
    explicit BoundRun(const RepresentingFunction &FR);
    ~BoundRun();
    BoundRun(const BoundRun &) = delete;
    BoundRun &operator=(const BoundRun &) = delete;

    double eval(const double *X, size_t N) {
      (void)N;
      assert(N == Arity && "input arity mismatch");
      Ctx.beginRun();
      Body.call(X);
      return Ctx.R;
    }

    /// Batched probes. When the bound body exposes a wide entry (the
    /// bytecode VM's runBatch), the whole generation goes down in one
    /// call — per-batch setup once, per-probe cost just beginRun + body;
    /// otherwise falls back to the row-by-row loop. Both paths are
    /// bit-identical to looping eval().
    void evalBatch(const double *Xs, size_t Count, size_t N, double *Out) {
      assert(N == Arity && "input arity mismatch");
      if (Body.InvokeBatch) {
        Body.InvokeBatch(Body.State, Body.Imm, Xs, Count, N, Out);
        return;
      }
      for (size_t I = 0; I < Count; ++I)
        Out[I] = eval(Xs + I * N, N);
    }

  private:
    ExecutionContext &Ctx;
    ExecutionContext::Scope Installed;
    Program::BoundBody Body;
    bool SavedPen;
    unsigned Arity;
  };

  const Program &program() const { return Prog; }
  ExecutionContext &context() const { return Ctx; }

private:
  const Program &Prog;
  ExecutionContext &Ctx;
};

} // namespace coverme

#endif // COVERME_RUNTIME_REPRESENTINGFUNCTION_H
