//===- RepresentingFunction.h - FOO_R (Algo. 1, line 5) -------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The representing function FOO_R of Sect. 3.2:
///
/// \code
///   double FOO_R(double x) { r = 1; FOO_I(x); return r; }
/// \endcode
///
/// By construction it satisfies
///   C1. FOO_R(x) >= 0 for all x, and
///   C2. FOO_R(x) == 0 iff x saturates a branch not yet saturated
/// (Thm. 4.3), which is what licenses handing it to any unconstrained-
/// programming backend as a black-box objective.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_RUNTIME_REPRESENTINGFUNCTION_H
#define COVERME_RUNTIME_REPRESENTINGFUNCTION_H

#include "optim/Objective.h"
#include "runtime/ExecutionContext.h"
#include "runtime/Program.h"

namespace coverme {

/// Callable wrapper evaluating FOO_R(x) for a given program and context.
class RepresentingFunction {
public:
  RepresentingFunction(const Program &P, ExecutionContext &Ctx);

  /// Evaluates FOO_R at \p X (size must equal the program's arity):
  /// resets r to 1, installs the context, runs FOO_I, returns r.
  double operator()(const std::vector<double> &X) const;

  /// Runs the program at \p X purely for its side effects on the context's
  /// trace/coverage with pen disabled — "just execute FOO(x)". Returns the
  /// program's own return value.
  double execute(const std::vector<double> &X) const;

  /// Adapts this to the optimizer-facing Objective type.
  Objective asObjective() const;

  const Program &program() const { return Prog; }
  ExecutionContext &context() const { return Ctx; }

private:
  const Program &Prog;
  ExecutionContext &Ctx;
};

} // namespace coverme

#endif // COVERME_RUNTIME_REPRESENTINGFUNCTION_H
