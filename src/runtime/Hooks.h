//===- Hooks.h - Instrumentation macros for ported programs ---------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The macros a ported benchmark uses at every conditional. Each expands to
/// exactly the code the paper's LLVM pass injects: an `r = pen(i, op, a, b)`
/// assignment (inside rt::cond) followed by the original comparison. The
/// operands are promoted to double, which also implements the paper's
/// handling of integer comparisons (Sect. 5.3, "Handling Comparison between
/// Non-floating-point Expressions"). 32-bit integers convert exactly.
///
/// Usage inside a Program body:
/// \code
///   if (CVM_GE(0, Ix, 0x7ff00000)) { ... }   // site 0: ix >= 0x7ff00000
///   if (CVM_LT(1, X, 0.3)) { ... }           // site 1: x < 0.3
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_RUNTIME_HOOKS_H
#define COVERME_RUNTIME_HOOKS_H

#include "runtime/ExecutionContext.h"

#define CVM_CMP(Site, Op, A, B)                                                \
  ::coverme::rt::cond((Site), ::coverme::CmpOp::Op,                           \
                      static_cast<double>(A), static_cast<double>(B))

/// a == b at conditional site \p Site.
#define CVM_EQ(Site, A, B) CVM_CMP(Site, EQ, A, B)
/// a != b at conditional site \p Site.
#define CVM_NE(Site, A, B) CVM_CMP(Site, NE, A, B)
/// a < b at conditional site \p Site.
#define CVM_LT(Site, A, B) CVM_CMP(Site, LT, A, B)
/// a <= b at conditional site \p Site.
#define CVM_LE(Site, A, B) CVM_CMP(Site, LE, A, B)
/// a > b at conditional site \p Site.
#define CVM_GT(Site, A, B) CVM_CMP(Site, GT, A, B)
/// a >= b at conditional site \p Site.
#define CVM_GE(Site, A, B) CVM_CMP(Site, GE, A, B)

#endif // COVERME_RUNTIME_HOOKS_H
