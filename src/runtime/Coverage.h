//===- Coverage.h - Gcov-lite branch and line coverage --------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coverage recorder standing in for Gcov/AFL-cov. It counts, per
/// conditional site, how many times each arm was taken; branch coverage is
/// the fraction of arms hit at least once (Gcov's "branches taken"), and
/// line coverage is derived from the Program's line model.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_RUNTIME_COVERAGE_H
#define COVERME_RUNTIME_COVERAGE_H

#include "runtime/Program.h"

#include <cstdint>
#include <mutex>
#include <vector>

namespace coverme {

/// Per-program branch-arm hit counters.
///
/// Thread-safety: recordHit and the readers are single-writer — each run
/// records into a map owned by one thread. merge() (and copying) are safe
/// against concurrent merge()/copy on the same maps, which is what the
/// parallel campaign layers need: workers count hits privately, then fold
/// their maps into a shared suite map.
class CoverageMap {
public:
  CoverageMap() = default;
  explicit CoverageMap(unsigned NumSites) { reset(NumSites); }
  CoverageMap(const CoverageMap &Other);
  CoverageMap &operator=(const CoverageMap &Other);

  /// Clears all counters and resizes to \p NumSites conditionals.
  void reset(unsigned NumSites);

  /// Records one execution of site \p Site taking arm \p Outcome.
  void recordHit(uint32_t Site, bool Outcome);

  unsigned numSites() const { return static_cast<unsigned>(TrueHits.size()); }

  uint64_t hits(uint32_t Site, bool Outcome) const {
    return Outcome ? TrueHits[Site] : FalseHits[Site];
  }

  bool isCovered(BranchRef Ref) const {
    return hits(Ref.Site, Ref.Outcome) > 0;
  }

  /// Number of branch arms taken at least once (Gcov branch numerator).
  unsigned coveredArms() const;

  /// Covered arms / total arms; 1.0 for a branch-free program.
  double branchCoverage() const;

  /// Line coverage under \p P's synthetic line model. Requires at least one
  /// recorded execution for the straight-line share to count.
  double lineCoverage(const Program &P) const;

  /// Total recorded executions of any site.
  uint64_t totalHits() const { return TotalHits; }

  /// Accumulates another map's counters (same shape). Safe to call from
  /// several threads merging into the same target concurrently.
  void merge(const CoverageMap &Other);

  /// Arms not yet covered, in site order (T arm before F arm).
  std::vector<BranchRef> uncoveredArms() const;

private:
  mutable std::mutex Mutex; ///< Guards merge/copy; recordHit stays lock-free.
  std::vector<uint64_t> TrueHits;
  std::vector<uint64_t> FalseHits;
  uint64_t TotalHits = 0;
};

} // namespace coverme

#endif // COVERME_RUNTIME_COVERAGE_H
