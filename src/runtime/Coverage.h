//===- Coverage.h - Gcov-lite branch and line coverage --------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coverage recorder standing in for Gcov/AFL-cov. It counts, per
/// conditional site, how many times each arm was taken; branch coverage is
/// the fraction of arms hit at least once (Gcov's "branches taken"), and
/// line coverage is derived from the Program's line model.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_RUNTIME_COVERAGE_H
#define COVERME_RUNTIME_COVERAGE_H

#include "runtime/Program.h"

#include <cstdint>
#include <mutex>
#include <vector>

namespace coverme {

/// Per-program branch-arm hit counters.
///
/// Thread-safety: every member — writers (recordHit, reset, merge,
/// setCounters, assignment) *and* readers (hits, coveredArms, the coverage
/// fractions, uncoveredArms, counters) — takes the internal mutex, so any
/// mix of concurrent calls is race-free. The long-lived service layer
/// needs the reader half: a status thread snapshots a campaign's suite map
/// while worker threads are still folding per-run maps into it. recordHit
/// stays cheap (one uncontended lock) because runs record into maps owned
/// by a single thread; the lock matters only when someone else reads
/// mid-run.
class CoverageMap {
public:
  CoverageMap() = default;
  explicit CoverageMap(unsigned NumSites) { reset(NumSites); }
  CoverageMap(const CoverageMap &Other);
  CoverageMap &operator=(const CoverageMap &Other);

  /// The raw counter state, exported for checkpointing. TrueHits and
  /// FalseHits always have equal length (one slot per conditional site).
  struct Counters {
    std::vector<uint64_t> TrueHits;
    std::vector<uint64_t> FalseHits;
    uint64_t TotalHits = 0;
  };

  /// Clears all counters and resizes to \p NumSites conditionals.
  void reset(unsigned NumSites);

  /// Records one execution of site \p Site taking arm \p Outcome.
  void recordHit(uint32_t Site, bool Outcome);

  unsigned numSites() const;

  uint64_t hits(uint32_t Site, bool Outcome) const;

  bool isCovered(BranchRef Ref) const {
    return hits(Ref.Site, Ref.Outcome) > 0;
  }

  /// Number of branch arms taken at least once (Gcov branch numerator).
  unsigned coveredArms() const;

  /// Covered arms / total arms; 1.0 for a branch-free program.
  double branchCoverage() const;

  /// Line coverage under \p P's synthetic line model. Requires at least one
  /// recorded execution for the straight-line share to count.
  double lineCoverage(const Program &P) const;

  /// Total recorded executions of any site.
  uint64_t totalHits() const;

  /// Accumulates another map's counters. Safe to call from several threads
  /// merging into the same target concurrently. Returns false — leaving
  /// this map untouched — when the shapes differ: merging maps of
  /// different site counts is a caller bug (or, in the checkpoint loader,
  /// a corrupt snapshot), and must never walk out of bounds in Release.
  [[nodiscard]] bool merge(const CoverageMap &Other);

  /// Atomic copy of the counter state (for checkpoint writers).
  Counters counters() const;

  /// Replaces the counter state wholesale (for checkpoint loaders).
  /// Returns false — leaving this map untouched — when \p C is malformed
  /// (TrueHits/FalseHits lengths differ).
  [[nodiscard]] bool setCounters(Counters C);

  /// Arms not yet covered, in site order (T arm before F arm).
  std::vector<BranchRef> uncoveredArms() const;

private:
  /// Callers hold Mutex.
  unsigned coveredArmsLocked() const;

  mutable std::mutex Mutex; ///< Guards every counter access; see class doc.
  std::vector<uint64_t> TrueHits;
  std::vector<uint64_t> FalseHits;
  uint64_t TotalHits = 0;
};

} // namespace coverme

#endif // COVERME_RUNTIME_COVERAGE_H
