//===- BranchDistance.h - Comparison ops and branch distance (Def. 4.1) ---===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The branch-distance family d_eps(op, a, b) of Def. 4.1. The distance
/// quantifies how far operands a, b are from satisfying `a op b`; it is the
/// building block of the pen function and therefore of the representing
/// function. The defining property (Eq. 8):
///
///   d(op, a, b) >= 0   and   d(op, a, b) == 0  <=>  a op b.
///
/// Strict inequalities carry a small epsilon so that, e.g., a < b is treated
/// as a <= b - eps; eps defaults to machine epsilon.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_RUNTIME_BRANCHDISTANCE_H
#define COVERME_RUNTIME_BRANCHDISTANCE_H

#include <cstdint>

namespace coverme {

/// The six arithmetic comparison operators of Def. 4.1.
enum class CmpOp : uint8_t { EQ, NE, LT, LE, GT, GE };

/// Default epsilon for strict comparisons: IEEE double machine epsilon.
inline constexpr double DefaultEpsilon = 2.220446049250313e-16;

/// The logical negation of \p Op (the "opposite op" of Algo. 1, line 21):
/// EQ<->NE, LT<->GE, LE<->GT.
CmpOp negateCmpOp(CmpOp Op);

/// Source spelling of \p Op ("==", "!=", "<", "<=", ">", ">=").
const char *cmpOpSpelling(CmpOp Op);

/// Parses a spelling back to an operator; asserts on unknown text.
CmpOp parseCmpOp(const char *Spelling);

/// Evaluates `A op B` with IEEE comparison semantics (NaN makes every
/// ordered comparison false and != true).
bool evalCmpOp(CmpOp Op, double A, double B);

/// Branch distance d_eps(op, a, b) per Def. 4.1:
///   d(==, a, b) = (a-b)^2
///   d(<=, a, b) = a <= b ? 0 : (a-b)^2
///   d(<,  a, b) = a <  b ? 0 : (a-b)^2 + eps
///   d(!=, a, b) = a != b ? 0 : eps
///   d(>=, a, b) = d(<=, b, a),  d(>, a, b) = d(<, b, a)
/// NaN operands yield NaN; callers route distances through objective
/// sanitization (CountingObjective) before comparing.
double branchDistance(CmpOp Op, double A, double B,
                      double Epsilon = DefaultEpsilon);

} // namespace coverme

#endif // COVERME_RUNTIME_BRANCHDISTANCE_H
