//===- RepresentingFunction.cpp - FOO_R (Algo. 1, line 5) -------------------===//

#include "runtime/RepresentingFunction.h"

using namespace coverme;

RepresentingFunction::RepresentingFunction(const Program &P,
                                           ExecutionContext &Ctx)
    : Prog(P), Ctx(Ctx) {
  assert(Ctx.numSites() == P.NumSites &&
         "context shaped for a different program");
}

double RepresentingFunction::operator()(const std::vector<double> &X) const {
  assert(X.size() == Prog.Arity && "input arity mismatch");
  ExecutionContext::Scope Installed(Ctx);
  Ctx.beginRun();
  bool SavedPen = Ctx.PenEnabled;
  Ctx.PenEnabled = true;
  Prog.Body(X.data());
  Ctx.PenEnabled = SavedPen;
  return Ctx.R;
}

double RepresentingFunction::execute(const std::vector<double> &X) const {
  assert(X.size() == Prog.Arity && "input arity mismatch");
  ExecutionContext::Scope Installed(Ctx);
  Ctx.beginRun();
  bool SavedPen = Ctx.PenEnabled;
  Ctx.PenEnabled = false;
  double Result = Prog.Body(X.data());
  Ctx.PenEnabled = SavedPen;
  return Result;
}

Objective RepresentingFunction::asObjective() const {
  return [this](const std::vector<double> &X) { return (*this)(X); };
}
