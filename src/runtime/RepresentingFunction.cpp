//===- RepresentingFunction.cpp - FOO_R (Algo. 1, line 5) -------------------===//

#include "runtime/RepresentingFunction.h"

using namespace coverme;

RepresentingFunction::RepresentingFunction(const Program &P,
                                           ExecutionContext &Ctx)
    : Prog(P), Ctx(Ctx) {
  assert(Ctx.numSites() == P.NumSites &&
         "context shaped for a different program");
}

double RepresentingFunction::eval(const double *X, size_t N) const {
  (void)N;
  assert(N == Prog.Arity && "input arity mismatch");
  ExecutionContext::Scope Installed(Ctx);
  Ctx.beginRun();
  bool SavedPen = Ctx.PenEnabled;
  Ctx.PenEnabled = true;
  Prog.Body(X);
  Ctx.PenEnabled = SavedPen;
  return Ctx.R;
}

void RepresentingFunction::evalBatch(const double *Xs, size_t Count, size_t N,
                                     double *Out) const {
  BoundRun Run(*this);
  Run.evalBatch(Xs, Count, N, Out);
}

double RepresentingFunction::execute(const std::vector<double> &X) const {
  assert(X.size() == Prog.Arity && "input arity mismatch");
  ExecutionContext::Scope Installed(Ctx);
  Ctx.beginRun();
  bool SavedPen = Ctx.PenEnabled;
  Ctx.PenEnabled = false;
  double Result = Prog.Body(X.data());
  Ctx.PenEnabled = SavedPen;
  return Result;
}

RepresentingFunction::BoundRun::BoundRun(const RepresentingFunction &FR)
    : Ctx(FR.Ctx), Installed(Ctx), Body(FR.Prog.bind()),
      SavedPen(Ctx.PenEnabled), Arity(FR.Prog.Arity) {
  Ctx.PenEnabled = true;
}

RepresentingFunction::BoundRun::~BoundRun() { Ctx.PenEnabled = SavedPen; }
