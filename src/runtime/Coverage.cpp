//===- Coverage.cpp - Gcov-lite branch and line coverage --------------------===//

#include "runtime/Coverage.h"

#include <cassert>

using namespace coverme;

CoverageMap::CoverageMap(const CoverageMap &Other) {
  std::lock_guard<std::mutex> Lock(Other.Mutex);
  TrueHits = Other.TrueHits;
  FalseHits = Other.FalseHits;
  TotalHits = Other.TotalHits;
}

CoverageMap &CoverageMap::operator=(const CoverageMap &Other) {
  if (this == &Other)
    return *this;
  std::scoped_lock Lock(Mutex, Other.Mutex);
  TrueHits = Other.TrueHits;
  FalseHits = Other.FalseHits;
  TotalHits = Other.TotalHits;
  return *this;
}

void CoverageMap::reset(unsigned NumSites) {
  std::lock_guard<std::mutex> Lock(Mutex);
  TrueHits.assign(NumSites, 0);
  FalseHits.assign(NumSites, 0);
  TotalHits = 0;
}

void CoverageMap::recordHit(uint32_t Site, bool Outcome) {
  std::lock_guard<std::mutex> Lock(Mutex);
  assert(Site < TrueHits.size() && "site index out of range");
  ++(Outcome ? TrueHits[Site] : FalseHits[Site]);
  ++TotalHits;
}

unsigned CoverageMap::numSites() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return static_cast<unsigned>(TrueHits.size());
}

uint64_t CoverageMap::hits(uint32_t Site, bool Outcome) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Outcome ? TrueHits[Site] : FalseHits[Site];
}

uint64_t CoverageMap::totalHits() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return TotalHits;
}

unsigned CoverageMap::coveredArmsLocked() const {
  unsigned Covered = 0;
  for (size_t I = 0; I < TrueHits.size(); ++I) {
    Covered += TrueHits[I] > 0;
    Covered += FalseHits[I] > 0;
  }
  return Covered;
}

unsigned CoverageMap::coveredArms() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return coveredArmsLocked();
}

double CoverageMap::branchCoverage() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (TrueHits.empty())
    return 1.0;
  return static_cast<double>(coveredArmsLocked()) /
         static_cast<double>(2 * TrueHits.size());
}

double CoverageMap::lineCoverage(const Program &P) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (P.TotalLines == 0)
    return 1.0;
  if (TotalHits == 0 && P.NumSites > 0)
    return 0.0;
  double Covered = P.straightLineCount() +
                   P.armLineWeight() * static_cast<double>(coveredArmsLocked());
  double Fraction = Covered / static_cast<double>(P.TotalLines);
  return Fraction > 1.0 ? 1.0 : Fraction;
}

bool CoverageMap::merge(const CoverageMap &Other) {
  if (this == &Other) {
    // Self-merge doubles every counter; lock once.
    std::lock_guard<std::mutex> Lock(Mutex);
    for (size_t I = 0; I < TrueHits.size(); ++I) {
      TrueHits[I] *= 2;
      FalseHits[I] *= 2;
    }
    TotalHits *= 2;
    return true;
  }
  std::scoped_lock Lock(Mutex, Other.Mutex);
  // Shape mismatch is a real runtime check, not an assert: the checkpoint
  // loader funnels untrusted snapshot counters through here, and Release
  // builds must reject them instead of walking out of bounds.
  if (Other.TrueHits.size() != TrueHits.size())
    return false;
  for (size_t I = 0; I < TrueHits.size(); ++I) {
    TrueHits[I] += Other.TrueHits[I];
    FalseHits[I] += Other.FalseHits[I];
  }
  TotalHits += Other.TotalHits;
  return true;
}

CoverageMap::Counters CoverageMap::counters() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  Counters C;
  C.TrueHits = TrueHits;
  C.FalseHits = FalseHits;
  C.TotalHits = TotalHits;
  return C;
}

bool CoverageMap::setCounters(Counters C) {
  if (C.TrueHits.size() != C.FalseHits.size())
    return false;
  std::lock_guard<std::mutex> Lock(Mutex);
  TrueHits = std::move(C.TrueHits);
  FalseHits = std::move(C.FalseHits);
  TotalHits = C.TotalHits;
  return true;
}

std::vector<BranchRef> CoverageMap::uncoveredArms() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<BranchRef> Out;
  for (size_t I = 0; I < TrueHits.size(); ++I) {
    if (TrueHits[I] == 0)
      Out.push_back({static_cast<uint32_t>(I), true});
    if (FalseHits[I] == 0)
      Out.push_back({static_cast<uint32_t>(I), false});
  }
  return Out;
}
