//===- Coverage.cpp - Gcov-lite branch and line coverage --------------------===//

#include "runtime/Coverage.h"

using namespace coverme;

CoverageMap::CoverageMap(const CoverageMap &Other) {
  std::lock_guard<std::mutex> Lock(Other.Mutex);
  TrueHits = Other.TrueHits;
  FalseHits = Other.FalseHits;
  TotalHits = Other.TotalHits;
}

CoverageMap &CoverageMap::operator=(const CoverageMap &Other) {
  if (this == &Other)
    return *this;
  std::scoped_lock Lock(Mutex, Other.Mutex);
  TrueHits = Other.TrueHits;
  FalseHits = Other.FalseHits;
  TotalHits = Other.TotalHits;
  return *this;
}

void CoverageMap::reset(unsigned NumSites) {
  TrueHits.assign(NumSites, 0);
  FalseHits.assign(NumSites, 0);
  TotalHits = 0;
}

void CoverageMap::recordHit(uint32_t Site, bool Outcome) {
  assert(Site < TrueHits.size() && "site index out of range");
  ++(Outcome ? TrueHits[Site] : FalseHits[Site]);
  ++TotalHits;
}

unsigned CoverageMap::coveredArms() const {
  unsigned Covered = 0;
  for (size_t I = 0; I < TrueHits.size(); ++I) {
    Covered += TrueHits[I] > 0;
    Covered += FalseHits[I] > 0;
  }
  return Covered;
}

double CoverageMap::branchCoverage() const {
  if (TrueHits.empty())
    return 1.0;
  return static_cast<double>(coveredArms()) /
         static_cast<double>(2 * TrueHits.size());
}

double CoverageMap::lineCoverage(const Program &P) const {
  if (P.TotalLines == 0)
    return 1.0;
  if (TotalHits == 0 && P.NumSites > 0)
    return 0.0;
  double Covered = P.straightLineCount() +
                   P.armLineWeight() * static_cast<double>(coveredArms());
  double Fraction = Covered / static_cast<double>(P.TotalLines);
  return Fraction > 1.0 ? 1.0 : Fraction;
}

void CoverageMap::merge(const CoverageMap &Other) {
  if (this == &Other) {
    // Self-merge doubles every counter; lock once.
    std::lock_guard<std::mutex> Lock(Mutex);
    for (size_t I = 0; I < TrueHits.size(); ++I) {
      TrueHits[I] *= 2;
      FalseHits[I] *= 2;
    }
    TotalHits *= 2;
    return;
  }
  std::scoped_lock Lock(Mutex, Other.Mutex);
  assert(Other.TrueHits.size() == TrueHits.size() &&
         "merging coverage maps of different shapes");
  for (size_t I = 0; I < TrueHits.size(); ++I) {
    TrueHits[I] += Other.TrueHits[I];
    FalseHits[I] += Other.FalseHits[I];
  }
  TotalHits += Other.TotalHits;
}

std::vector<BranchRef> CoverageMap::uncoveredArms() const {
  std::vector<BranchRef> Out;
  for (size_t I = 0; I < TrueHits.size(); ++I) {
    if (TrueHits[I] == 0)
      Out.push_back({static_cast<uint32_t>(I), true});
    if (FalseHits[I] == 0)
      Out.push_back({static_cast<uint32_t>(I), false});
  }
  return Out;
}
