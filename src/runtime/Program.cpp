//===- Program.cpp - Function-under-test metadata ---------------------------===//

#include "runtime/Program.h"

using namespace coverme;

void ProgramRegistry::add(Program P) {
  assert(P.Body && "program body must be non-null");
  assert(!lookup(P.Name) && "duplicate program name");
  Programs.push_back(std::move(P));
}

const Program *ProgramRegistry::lookup(const std::string &Name) const {
  for (const Program &P : Programs)
    if (P.Name == Name)
      return &P;
  return nullptr;
}
