//===- Program.cpp - Function-under-test metadata ---------------------------===//

#include "runtime/Program.h"

using namespace coverme;

Program::BoundBody Program::bind() const {
  if (Binder)
    return Binder();
  BoundBody B;
  if (RawBody) {
    B.Raw = RawBody;
    return B;
  }
  assert(Body && "program has no body");
  B.Invoke = [](void *State, uint64_t, const double *Args) {
    return (*static_cast<const BodyFn *>(State))(Args);
  };
  B.State = const_cast<void *>(static_cast<const void *>(&Body));
  return B;
}

void ProgramRegistry::add(Program P) {
  assert(P.Body && "program body must be non-null");
  assert(!lookup(P.Name) && "duplicate program name");
  Programs.push_back(std::move(P));
}

const Program *ProgramRegistry::lookup(const std::string &Name) const {
  for (const Program &P : Programs)
    if (P.Name == Name)
      return &P;
  return nullptr;
}
