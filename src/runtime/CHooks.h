//===- CHooks.h - C-linkage hook for instrumented sources -----------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The C shim the source instrumenter targets. Instrumented C code calls
/// `cvm_cond(site, op, lhs, rhs)`; the shim forwards to the current
/// ExecutionContext exactly like the CVM_* macros do, so a rewritten
/// translation unit compiled and linked against coverme_runtime behaves as
/// FOO_I. Operator constants match the CmpOp enumeration.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_RUNTIME_CHOOKS_H
#define COVERME_RUNTIME_CHOOKS_H

extern "C" {

/// Evaluates `lhs op rhs` at conditional \p Site, updating the current
/// context's r via pen first. Returns the branch outcome (0/1).
int cvm_cond(int Site, int Op, double Lhs, double Rhs);

} // extern "C"

#endif // COVERME_RUNTIME_CHOOKS_H
