//===- BranchDistance.cpp - Branch distance (Def. 4.1) ---------------------===//

#include "runtime/BranchDistance.h"

#include <cassert>
#include <cstring>

using namespace coverme;

CmpOp coverme::negateCmpOp(CmpOp Op) {
  switch (Op) {
  case CmpOp::EQ:
    return CmpOp::NE;
  case CmpOp::NE:
    return CmpOp::EQ;
  case CmpOp::LT:
    return CmpOp::GE;
  case CmpOp::LE:
    return CmpOp::GT;
  case CmpOp::GT:
    return CmpOp::LE;
  case CmpOp::GE:
    return CmpOp::LT;
  }
  assert(false && "unknown CmpOp");
  return CmpOp::EQ;
}

const char *coverme::cmpOpSpelling(CmpOp Op) {
  switch (Op) {
  case CmpOp::EQ:
    return "==";
  case CmpOp::NE:
    return "!=";
  case CmpOp::LT:
    return "<";
  case CmpOp::LE:
    return "<=";
  case CmpOp::GT:
    return ">";
  case CmpOp::GE:
    return ">=";
  }
  assert(false && "unknown CmpOp");
  return "?";
}

CmpOp coverme::parseCmpOp(const char *Spelling) {
  if (std::strcmp(Spelling, "==") == 0)
    return CmpOp::EQ;
  if (std::strcmp(Spelling, "!=") == 0)
    return CmpOp::NE;
  if (std::strcmp(Spelling, "<") == 0)
    return CmpOp::LT;
  if (std::strcmp(Spelling, "<=") == 0)
    return CmpOp::LE;
  if (std::strcmp(Spelling, ">") == 0)
    return CmpOp::GT;
  if (std::strcmp(Spelling, ">=") == 0)
    return CmpOp::GE;
  assert(false && "unknown comparison spelling");
  return CmpOp::EQ;
}

bool coverme::evalCmpOp(CmpOp Op, double A, double B) {
  switch (Op) {
  case CmpOp::EQ:
    return A == B;
  case CmpOp::NE:
    return A != B;
  case CmpOp::LT:
    return A < B;
  case CmpOp::LE:
    return A <= B;
  case CmpOp::GT:
    return A > B;
  case CmpOp::GE:
    return A >= B;
  }
  assert(false && "unknown CmpOp");
  return false;
}

double coverme::branchDistance(CmpOp Op, double A, double B, double Epsilon) {
  double Diff = A - B;
  switch (Op) {
  case CmpOp::EQ:
    return Diff * Diff;
  case CmpOp::NE:
    return A != B ? 0.0 : Epsilon;
  case CmpOp::LE:
    return A <= B ? 0.0 : Diff * Diff;
  case CmpOp::LT:
    return A < B ? 0.0 : Diff * Diff + Epsilon;
  case CmpOp::GE:
    return branchDistance(CmpOp::LE, B, A, Epsilon);
  case CmpOp::GT:
    return branchDistance(CmpOp::LT, B, A, Epsilon);
  }
  assert(false && "unknown CmpOp");
  return 0.0;
}
