//===- DseExplorer.h - Dynamic symbolic execution baseline ----------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dynamic-symbolic-execution baseline in the FloPSy/SAGE mold, built to
/// make the paper's Fig. 6 contrast measurable: where symbolic execution
/// "selects a target path tau, derives a path condition Phi_tau, and
/// calculates a model" *per path*, CoverMe minimizes a *single*
/// representing function for the whole program. This explorer follows the
/// generational-search recipe:
///
///  1. execute a seed input, recording the branch trace and the concrete
///     comparison operands at every site (the concrete shadow of the
///     symbolic path condition);
///  2. for each depth j along the trace, synthesize the "flipped" path
///     condition — keep branches 0..j-1, negate branch j — and solve it
///     with a floating-point fitness (approach level + branch distance,
///     exactly FloPSy's search-based constraint solving);
///  3. add each solution to the worklist and repeat until no frontier
///     remains or the budget runs out.
///
/// Every attempted flip is one "path-condition solve" — the unit whose
/// count explodes with path depth. The bench pits solves-per-covered-branch
/// against CoverMe's rounds-per-covered-branch on the same programs.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_DSE_DSEEXPLORER_H
#define COVERME_DSE_DSEEXPLORER_H

#include "optim/Minimizer.h"
#include "runtime/Coverage.h"
#include "runtime/Program.h"

#include <vector>

namespace coverme {

/// Knobs for the DSE baseline.
struct DseOptions {
  uint64_t Seed = 1;
  uint64_t MaxExecutions = 200000;   ///< Global execution budget.
  uint64_t MaxSolves = 4000;         ///< Path-condition solves attempted.
  uint64_t SolveMaxEvaluations = 800; ///< Executions per solve.
  unsigned MaxTraceDepth = 256;      ///< Flip frontier cap per trace.
  LocalMinimizerKind Solver = LocalMinimizerKind::Powell;
  LocalMinimizerOptions SolverOptions = {.MaxIterations = 12,
                                         .MaxEvaluations = 800,
                                         .FTol = 1e-12,
                                         .InitialStep = 1.0};
};

/// Outcome of one DSE run.
struct DseResult {
  CoverageMap Coverage;            ///< Arms covered by all executions.
  double BranchCoverage = 0.0;
  uint64_t Executions = 0;         ///< Program runs consumed.
  uint64_t Solves = 0;             ///< Path-condition solves attempted.
  uint64_t SolvedFlips = 0;        ///< Solves that landed on the target path.
  uint64_t PathsExplored = 0;      ///< Distinct traces seen.
  double Seconds = 0.0;
  std::vector<std::vector<double>> Inputs; ///< Queue of generated inputs.
};

/// Generational-search DSE over an instrumented Program.
class DseExplorer {
public:
  explicit DseExplorer(const Program &P, DseOptions Opts = {});

  /// Runs generational search until coverage is complete, the frontier
  /// empties, or a budget trips.
  DseResult run();

  const DseOptions &options() const { return Opts; }

private:
  const Program &Prog;
  DseOptions Opts;
};

} // namespace coverme

#endif // COVERME_DSE_DSEEXPLORER_H
