//===- DseExplorer.cpp - Dynamic symbolic execution baseline --------------===//

#include "dse/DseExplorer.h"

#include "runtime/BranchDistance.h"
#include "runtime/ExecutionContext.h"
#include "support/Random.h"
#include "support/Timer.h"

#include <cmath>
#include <deque>
#include <set>

using namespace coverme;

DseExplorer::DseExplorer(const Program &P, DseOptions Opts)
    : Prog(P), Opts(Opts) {
  assert(P.Body && "program has no body");
}

namespace {

/// One recorded execution: the branch trace plus, per position, the
/// concrete comparison operands — the concrete shadow of Phi_tau.
struct PathRecord {
  std::vector<BranchRef> Trace;
  std::vector<SiteObservation> Operands;
};

/// A worklist entry of generational search: an input plus the first trace
/// depth this generation is still allowed to flip (SAGE's bound that
/// prevents re-deriving the parents' conditions).
struct WorkItem {
  std::vector<double> Input;
  unsigned FlipFrom = 0;
};

/// Normalizes a branch distance into [0, 1) so approach levels dominate
/// distances — but through a log compression first. The classic
/// d / (1 + d) squash saturates numerically for the 1e300-scale distances
/// floating-point comparisons produce (its gradient underflows past any
/// optimizer's tolerance); log1p keeps a usable slope across the whole
/// double range.
double normalized(double Distance) {
  double Compressed = std::log1p(Distance);
  if (!std::isfinite(Compressed))
    return 1.0;
  return Compressed / (1.0 + Compressed);
}

} // namespace

DseResult DseExplorer::run() {
  WallTimer Timer;
  DseResult Res;
  Res.Coverage.reset(Prog.NumSites);
  if (Prog.NumSites == 0) {
    Res.BranchCoverage = 1.0;
    return Res;
  }

  ExecutionContext Ctx(Prog.NumSites);
  Ctx.PenEnabled = false;
  Ctx.TraceEnabled = true;
  Ctx.RecordTraceOperands = true;
  Ctx.Coverage = &Res.Coverage;
  ExecutionContext::Scope Scope(Ctx);

  std::set<uint64_t> SeenPaths;
  // FNV-1a over the trace identifies a path.
  auto PathHash = [](const std::vector<BranchRef> &Trace) {
    uint64_t H = 1469598103934665603ull;
    for (BranchRef Ref : Trace) {
      H = (H ^ Ref.Site) * 1099511628211ull;
      H = (H ^ static_cast<uint64_t>(Ref.Outcome)) * 1099511628211ull;
    }
    return H;
  };

  // Executes and records one input.
  auto Execute = [&](const std::vector<double> &X) {
    Ctx.beginRun();
    Prog.Body(X.data());
    ++Res.Executions;
    PathRecord Rec;
    Rec.Trace = Ctx.Trace;
    Rec.Operands = Ctx.TraceOperands;
    if (SeenPaths.insert(PathHash(Rec.Trace)).second)
      ++Res.PathsExplored;
    return Rec;
  };

  std::unique_ptr<LocalMinimizer> Solver =
      makeLocalMinimizer(Opts.Solver, Opts.SolverOptions);
  Rng Rng(Opts.Seed);

  std::deque<WorkItem> Worklist;
  std::vector<double> Seed(Prog.Arity);
  for (double &Coord : Seed) {
    Coord = Rng.wideDouble();
    // A non-finite seed leaves the distance landscape flat (every
    // perturbation of an infinity is the same infinity); concrete DSE
    // seeds are finite by construction.
    if (!std::isfinite(Coord))
      Coord = Rng.uniform(-1e6, 1e6);
  }
  Worklist.push_back({Seed, 0});
  Res.Inputs.push_back(Seed);

  while (!Worklist.empty() && Res.Executions < Opts.MaxExecutions &&
         Res.Solves < Opts.MaxSolves) {
    WorkItem Item = std::move(Worklist.front());
    Worklist.pop_front();

    PathRecord Parent = Execute(Item.Input);
    unsigned Depth = static_cast<unsigned>(
        std::min<size_t>(Parent.Trace.size(), Opts.MaxTraceDepth));

    for (unsigned J = Item.FlipFrom; J < Depth; ++J) {
      if (Res.Executions >= Opts.MaxExecutions ||
          Res.Solves >= Opts.MaxSolves)
        break;
      BranchRef Flipped{Parent.Trace[J].Site, !Parent.Trace[J].Outcome};
      // Coverage-guided pruning (generous to DSE): skip targets whose arm
      // some earlier path already covered.
      if (Res.Coverage.isCovered(Flipped))
        continue;

      // The flipped path condition Phi: keep positions 0..J-1, negate J.
      // Solved FloPSy-style — approach level + normalized branch distance
      // measured against a fresh execution of the candidate.
      ++Res.Solves;
      uint64_t SolveBudget =
          std::min<uint64_t>(Opts.SolveMaxEvaluations,
                             Opts.MaxExecutions - Res.Executions);
      if (SolveBudget == 0)
        break;
      bool Landed = false;
      auto Phi = [&](const double *X, size_t) -> double {
        Ctx.beginRun();
        Prog.Body(X);
        ++Res.Executions;
        // Compare against the target prefix.
        unsigned Matched = 0;
        while (Matched < J && Matched < Ctx.Trace.size() &&
               Ctx.Trace[Matched] == Parent.Trace[Matched])
          ++Matched;
        if (Matched < J) {
          // Diverged early: approach level + distance to re-take the
          // parent's branch at the divergence point.
          double Level = static_cast<double>(J - Matched);
          double Dist = 1.0;
          if (Matched < Ctx.Trace.size() &&
              Ctx.Trace[Matched].Site == Parent.Trace[Matched].Site) {
            const SiteObservation &Obs = Ctx.TraceOperands[Matched];
            CmpOp Want = Parent.Trace[Matched].Outcome
                             ? Obs.Op
                             : negateCmpOp(Obs.Op);
            Dist = normalized(branchDistance(Want, Obs.A, Obs.B));
          }
          return Level + Dist;
        }
        if (J >= Ctx.Trace.size())
          return 1.0; // prefix held but the trace ended: level 1
        const SiteObservation &Obs = Ctx.TraceOperands[J];
        CmpOp Want = Flipped.Outcome ? Obs.Op : negateCmpOp(Obs.Op);
        double Dist = normalized(branchDistance(Want, Obs.A, Obs.B));
        if (Dist == 0.0 && Ctx.Trace[J] == Flipped)
          Landed = true;
        return Dist;
      };

      // The first probing step must live at the start point's own scale:
      // floating-point operands span 600 orders of magnitude, and a
      // unit step from 1e158 cannot move the (often overflowed-to-inf)
      // squared distance at all.
      auto SolveFrom = [&](std::vector<double> Start) {
        double Scale = 1.0;
        for (double Coord : Start)
          if (std::isfinite(Coord))
            Scale = std::max(Scale, std::fabs(Coord) / 4.0);
        LocalMinimizerOptions SolveOpts = Opts.SolverOptions;
        SolveOpts.MaxEvaluations = SolveBudget / 4 + 1;
        SolveOpts.InitialStep = Scale;
        return makeLocalMinimizer(Opts.Solver, SolveOpts)
            ->minimize(Phi, std::move(Start));
      };
      // First attempt from the parent input, then random restarts until
      // the solve budget is spent — FloPSy's search-based constraint
      // solver does the same when the seed sits on a flat shelf of the
      // distance landscape (equality targets usually need several).
      uint64_t SpentBefore = Res.Executions;
      MinimizeResult Min = SolveFrom(Item.Input);
      while (Min.Fx != 0.0 &&
             Res.Executions - SpentBefore < SolveBudget &&
             Res.Executions < Opts.MaxExecutions) {
        std::vector<double> Restart(Prog.Arity);
        for (double &Coord : Restart)
          Coord = Rng.exponentUniformDouble();
        MinimizeResult Next = SolveFrom(std::move(Restart));
        if (Next.Fx < Min.Fx)
          Min = Next;
      }

      if (Min.Fx == 0.0) {
        // Model found: the input drives execution down the flipped path.
        ++Res.SolvedFlips;
        (void)Landed;
        Res.Inputs.push_back(Min.X);
        Worklist.push_back({Min.X, J + 1});
      }
    }
  }

  Res.BranchCoverage = Res.Coverage.branchCoverage();
  Res.Seconds = Timer.seconds();
  return Res;
}
