//===- RandomTester.cpp - Pure random testing (Rand) ------------------------===//

#include "fuzz/RandomTester.h"

#include "runtime/ExecutionContext.h"
#include "runtime/RepresentingFunction.h"
#include "support/Timer.h"

using namespace coverme;

RandomTester::RandomTester(const Program &P, RandomTesterOptions Opts)
    : Prog(P), Opts(Opts) {
  assert(P.Body && "program has no body");
}

TesterResult RandomTester::run(uint64_t MaxExecutions) {
  WallTimer Timer;
  TesterResult Res;
  Res.Coverage.reset(Prog.NumSites);

  ExecutionContext Ctx(Prog.NumSites);
  Ctx.PenEnabled = false;
  Ctx.TraceEnabled = false;
  Ctx.Coverage = &Res.Coverage;
  RepresentingFunction FR(Prog, Ctx);

  Rng Rng(Opts.Seed);
  std::vector<double> X(Prog.Arity);
  for (uint64_t I = 0; I < MaxExecutions; ++I) {
    for (double &Coord : X) {
      if (Opts.Distribution == RandDistribution::RangeUniform)
        Coord = Rng.uniform(-Opts.Range, Opts.Range);
      else
        Coord = Rng.rawBitsDouble();
    }
    FR.execute(X);
    ++Res.Executions;
  }

  Res.CorpusSize = Res.Executions;
  Res.BranchCoverage = Res.Coverage.branchCoverage();
  Res.LineCoverage = Res.Coverage.lineCoverage(Prog);
  Res.Seconds = Timer.seconds();
  return Res;
}
