//===- AustinTester.h - Search-based testing (Austin-lite) ----------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Austin baseline [Lakhotia et al. 2013]: per-target-branch search
/// using Korel's Alternating Variable Method. For each uncovered branch arm
/// the tester minimizes a fitness that is the branch distance at the target
/// site when the site is reached, and a flat "unreached" penalty otherwise,
/// using exploratory +-delta probes with pattern-move acceleration and
/// random restarts. This reproduces the behaviour the paper contrasts with:
/// per-branch effort (no saturation guarantee), flat landscapes when the
/// target site is not on the executed path, and large execution budgets
/// burned on unreachable targets.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_FUZZ_AUSTINTESTER_H
#define COVERME_FUZZ_AUSTINTESTER_H

#include "fuzz/Tester.h"
#include "support/Random.h"

namespace coverme {

struct AustinOptions {
  uint64_t Seed = 1;
  uint64_t PerTargetExecutions = 30000; ///< AVM budget per branch arm.
  unsigned RestartsPerTarget = 12;      ///< Random restarts within a budget.

  /// Range of the random-restart distribution (uniform [-Range, Range]).
  /// AUSTIN restarts from a conventional numeric input domain; it has no
  /// bit-level view of doubles, so IEEE specials are out of reach — one of
  /// the reasons its coverage stays near random testing's in Table 3.
  double RestartRange = 1.0e6;

  /// When false (default), the fitness is the coarse reached/taken level
  /// only — matching the published Table 3 behaviour, where Austin's
  /// coverage tracks random testing because its CIL-level machinery
  /// extracts no usable gradient from Fdlibm's pointer-cast bit twiddling.
  /// When true, the full branch-distance AVM runs instead (an ablation
  /// that shows how far the algorithm could go with a perfect oracle).
  bool UseBranchDistance = false;

  /// Keep restarting until the per-target budget is exhausted (the real
  /// tool runs until it decides no more coverage is attainable).
  bool RestartUntilBudget = true;
};

/// AVM-based, target-directed tester.
class AustinTester {
public:
  AustinTester(const Program &P, AustinOptions Opts = {});

  /// Searches every branch arm in turn until covered or out of budget.
  TesterResult run(uint64_t MaxExecutions);

private:
  const Program &Prog;
  AustinOptions Opts;
};

} // namespace coverme

#endif // COVERME_FUZZ_AUSTINTESTER_H
