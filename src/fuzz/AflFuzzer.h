//===- AflFuzzer.h - Coverage-guided mutation fuzzing (AFL-lite) ----------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A faithful-in-structure reimplementation of AFL's algorithmic core for
/// double-typed inputs: a queue of interesting inputs, deterministic
/// mutation stages (walking bitflips, byte arithmetic, interesting values)
/// followed by stacked "havoc" mutations, with novelty judged by new
/// branch-arm/hit-count-bucket coverage — AFL's virgin-bitmap rule adapted
/// to the per-site recorder. The paper runs AFL 2.x as released by Google;
/// this is the same search skeleton on the same substrate as the other
/// testers.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_FUZZ_AFLFUZZER_H
#define COVERME_FUZZ_AFLFUZZER_H

#include "fuzz/Tester.h"
#include "support/Random.h"

#include <vector>

namespace coverme {

struct AflOptions {
  uint64_t Seed = 1;
  size_t MaxQueue = 2048;     ///< Queue cap; oldest low-yield entries drop.
  unsigned HavocStackPow = 3; ///< Up to 2^pow stacked havoc mutations.
  unsigned RandomSeeds = 4;   ///< Extra random seed inputs besides 0 and 1.

  /// When true (default, the paper's appendix-B setup), the fuzzed buffer
  /// is ASCII text parsed with scanf("%lf") semantics — AFL mutates the
  /// decimal string, not raw double bytes. Unparsable text leaves the
  /// harness's zero-initialized doubles in place, exactly like the
  /// original test driver. When false, the buffer holds raw IEEE bytes
  /// (a stronger mode the ablation bench exercises).
  bool TextHarness = true;
  size_t TextBytesPerArg = 14; ///< Width of each argument's text field.
};

/// Grey-box mutation fuzzer over fixed-arity double inputs.
class AflFuzzer {
public:
  AflFuzzer(const Program &P, AflOptions Opts = {});

  /// Fuzzes until \p MaxExecutions program runs are consumed.
  TesterResult run(uint64_t MaxExecutions);

private:
  const Program &Prog;
  AflOptions Opts;
};

} // namespace coverme

#endif // COVERME_FUZZ_AFLFUZZER_H
