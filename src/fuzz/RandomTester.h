//===- RandomTester.h - Pure random testing (Rand) ------------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Rand baseline: "a pure random testing tool ... implemented
/// using a pseudo-random number generator" (Sect. 6.1). Inputs are drawn
/// i.i.d.; there is no feedback of any kind.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_FUZZ_RANDOMTESTER_H
#define COVERME_FUZZ_RANDOMTESTER_H

#include "fuzz/Tester.h"
#include "support/Random.h"

namespace coverme {

/// Input distributions for Rand.
enum class RandDistribution {
  RangeUniform, ///< Uniform reals in [-Range, Range] — the conventional
                ///< random tester the paper's 38% average reflects.
  RawBits,      ///< Uniform 64-bit patterns (NaNs, infs, subnormals);
                ///< a stronger variant used by the ablation bench.
};

struct RandomTesterOptions {
  RandDistribution Distribution = RandDistribution::RangeUniform;
  double Range = 1.0e6; ///< Half-width for RangeUniform.
  uint64_t Seed = 1;
};

/// Feedback-free random tester.
class RandomTester {
public:
  RandomTester(const Program &P, RandomTesterOptions Opts = {});

  /// Executes \p MaxExecutions random inputs and reports the coverage.
  TesterResult run(uint64_t MaxExecutions);

private:
  const Program &Prog;
  RandomTesterOptions Opts;
};

} // namespace coverme

#endif // COVERME_FUZZ_RANDOMTESTER_H
