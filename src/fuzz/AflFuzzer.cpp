//===- AflFuzzer.cpp - Coverage-guided mutation fuzzing (AFL-lite) ----------===//

#include "fuzz/AflFuzzer.h"

#include "runtime/ExecutionContext.h"
#include "runtime/RepresentingFunction.h"
#include "support/FloatBits.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>

using namespace coverme;

namespace {

/// AFL's hit-count bucketing: collapses raw counts into 8 classes so loops
/// don't explode the novelty signal.
unsigned bucketOf(uint64_t Count) {
  if (Count == 0)
    return 0;
  if (Count <= 3)
    return static_cast<unsigned>(Count);
  if (Count <= 7)
    return 4;
  if (Count <= 15)
    return 5;
  if (Count <= 31)
    return 6;
  if (Count <= 127)
    return 7;
  return 8;
}

/// One corpus entry: the raw input bytes (8 per double).
struct QueueEntry {
  std::vector<uint8_t> Bytes;
  bool DeterministicDone = false;
};

/// AFL's interesting integer values (config.h INTERESTING_8/16/32). AFL is
/// byte-oriented and knows nothing about IEEE doubles; any float-special
/// pattern has to emerge from these plus bitflips, which is exactly why
/// the real tool plateaus below CoverMe on this suite.
const int8_t Interesting8[] = {-128, -1, 0, 1, 16, 32, 64, 100, 127};
const int16_t Interesting16[] = {-32768, -129, 128, 255, 256, 512, 1000,
                                 1024, 4096, 32767};
const int32_t Interesting32[] = {INT32_MIN, -100663046, -32769, 32768,
                                 65535, 65536, 100663045, INT32_MAX};

} // namespace

AflFuzzer::AflFuzzer(const Program &P, AflOptions Opts)
    : Prog(P), Opts(Opts) {
  assert(P.Body && "program has no body");
}

TesterResult AflFuzzer::run(uint64_t MaxExecutions) {
  WallTimer Timer;
  TesterResult Res;
  Res.Coverage.reset(Prog.NumSites);

  ExecutionContext Ctx(Prog.NumSites);
  Ctx.PenEnabled = false;
  Ctx.TraceEnabled = false;
  RepresentingFunction FR(Prog, Ctx);

  const size_t InputBytes =
      (Opts.TextHarness ? Opts.TextBytesPerArg : 8) * Prog.Arity;
  Rng Rng(Opts.Seed);

  // Virgin map: (site, arm, bucket) triples already seen.
  std::set<uint32_t> Virgin;
  CoverageMap RunMap(Prog.NumSites);

  std::vector<double> Decoded(Prog.Arity);
  // Executes one input; returns true when it exercises novel coverage.
  auto ExecuteInput = [&](const std::vector<uint8_t> &Bytes) {
    if (Opts.TextHarness) {
      // The appendix-B harness: zero-initialized doubles, filled by
      // scanf("%lf %lf ...") over the mutated text. A failed conversion
      // stops the scan and leaves the remaining arguments at zero.
      std::string Text(Bytes.begin(), Bytes.end());
      Text.push_back('\0');
      std::fill(Decoded.begin(), Decoded.end(), 0.0);
      const char *Cursor = Text.c_str();
      for (double &Value : Decoded) {
        char *End = nullptr;
        double V = std::strtod(Cursor, &End);
        if (End == Cursor)
          break; // conversion failure: scanf stops here
        Value = V;
        Cursor = End;
      }
    } else {
      std::memcpy(Decoded.data(), Bytes.data(), InputBytes);
    }
    RunMap.reset(Prog.NumSites);
    Ctx.Coverage = &RunMap;
    FR.execute(Decoded);
    Ctx.Coverage = nullptr;
    ++Res.Executions;
    bool Merged = Res.Coverage.merge(RunMap);
    assert(Merged && "result and run coverage maps share the program shape");
    (void)Merged;
    bool Novel = false;
    for (uint32_t Site = 0; Site < Prog.NumSites; ++Site) {
      for (unsigned Arm = 0; Arm < 2; ++Arm) {
        unsigned Bucket = bucketOf(RunMap.hits(Site, Arm != 0));
        if (Bucket == 0)
          continue;
        uint32_t Key = (Site << 5) | (Arm << 4) | Bucket;
        if (Virgin.insert(Key).second)
          Novel = true;
      }
    }
    return Novel;
  };

  // Seed corpus. Text mode mirrors a typical AFL input directory (small
  // decimal literals); raw mode seeds zeros, ones, and random patterns.
  std::vector<QueueEntry> Queue;
  auto AddSeedBytes = [&](std::vector<uint8_t> Bytes) {
    Bytes.resize(InputBytes, static_cast<uint8_t>(' '));
    QueueEntry E{std::move(Bytes), false};
    ExecuteInput(E.Bytes);
    Queue.push_back(std::move(E));
  };
  if (Opts.TextHarness) {
    for (const char *Seed : {"0", "1.0 1.0", "-3.5 2.25", "100 -100"})
      AddSeedBytes(std::vector<uint8_t>(Seed, Seed + std::strlen(Seed)));
  } else {
    auto AddSeed = [&](const std::vector<double> &Values) {
      std::vector<uint8_t> Bytes(InputBytes);
      std::memcpy(Bytes.data(), Values.data(), InputBytes);
      AddSeedBytes(std::move(Bytes));
    };
    AddSeed(std::vector<double>(Prog.Arity, 0.0));
    AddSeed(std::vector<double>(Prog.Arity, 1.0));
    for (unsigned I = 0; I < Opts.RandomSeeds; ++I) {
      std::vector<double> V(Prog.Arity);
      for (double &Coord : V)
        Coord = Rng.rawBitsDouble();
      AddSeed(V);
    }
  }

  size_t Cursor = 0;
  while (Res.Executions < MaxExecutions && !Queue.empty()) {
    // Copy the scheduled entry's bytes up front: ExecuteInput may push new
    // queue entries, which can reallocate the vector and would invalidate
    // any reference held across the stages.
    size_t EntryIdx = Cursor % Queue.size();
    const std::vector<uint8_t> Base = Queue[EntryIdx].Bytes;
    bool NeedDeterministic = !Queue[EntryIdx].DeterministicDone;
    Queue[EntryIdx].DeterministicDone = true;
    std::vector<uint8_t> Work = Base;

    if (NeedDeterministic) {
      // Stage 1: walking single-bit flips.
      for (size_t Bit = 0;
           Bit < InputBytes * 8 && Res.Executions < MaxExecutions; ++Bit) {
        Work[Bit >> 3] ^= (1u << (Bit & 7));
        if (ExecuteInput(Work) && Queue.size() < Opts.MaxQueue)
          Queue.push_back({Work, false});
        Work[Bit >> 3] ^= (1u << (Bit & 7));
      }
      // Stage 2: byte arithmetic +-1..16.
      for (size_t Byte = 0;
           Byte < InputBytes && Res.Executions < MaxExecutions; ++Byte) {
        uint8_t Orig = Work[Byte];
        for (int Delta = -16; Delta <= 16; ++Delta) {
          if (Delta == 0)
            continue;
          Work[Byte] = static_cast<uint8_t>(Orig + Delta);
          if (ExecuteInput(Work) && Queue.size() < Opts.MaxQueue)
            Queue.push_back({Work, false});
          if (Res.Executions >= MaxExecutions)
            break;
        }
        Work[Byte] = Orig;
      }
      // Stage 3: interesting 8/16/32-bit integers at every byte offset.
      for (size_t Byte = 0;
           Byte < InputBytes && Res.Executions < MaxExecutions; ++Byte) {
        uint8_t Orig = Work[Byte];
        for (int8_t V : Interesting8) {
          Work[Byte] = static_cast<uint8_t>(V);
          if (ExecuteInput(Work) && Queue.size() < Opts.MaxQueue)
            Queue.push_back({Work, false});
          if (Res.Executions >= MaxExecutions)
            break;
        }
        Work[Byte] = Orig;
      }
      for (size_t Byte = 0;
           Byte + 2 <= InputBytes && Res.Executions < MaxExecutions; ++Byte) {
        uint16_t Orig;
        std::memcpy(&Orig, Work.data() + Byte, 2);
        for (int16_t V : Interesting16) {
          std::memcpy(Work.data() + Byte, &V, 2);
          if (ExecuteInput(Work) && Queue.size() < Opts.MaxQueue)
            Queue.push_back({Work, false});
          if (Res.Executions >= MaxExecutions)
            break;
        }
        std::memcpy(Work.data() + Byte, &Orig, 2);
      }
      for (size_t Byte = 0;
           Byte + 4 <= InputBytes && Res.Executions < MaxExecutions; ++Byte) {
        uint32_t Orig;
        std::memcpy(&Orig, Work.data() + Byte, 4);
        for (int32_t V : Interesting32) {
          std::memcpy(Work.data() + Byte, &V, 4);
          if (ExecuteInput(Work) && Queue.size() < Opts.MaxQueue)
            Queue.push_back({Work, false});
          if (Res.Executions >= MaxExecutions)
            break;
        }
        std::memcpy(Work.data() + Byte, &Orig, 4);
      }
    }

    // Havoc stage: stacked random mutations.
    unsigned Rounds = 32;
    for (unsigned R = 0; R < Rounds && Res.Executions < MaxExecutions; ++R) {
      Work = Base;
      unsigned Stack = 1u << (1 + Rng.below(Opts.HavocStackPow));
      for (unsigned S = 0; S < Stack; ++S) {
        switch (Rng.below(6)) {
        case 0: { // flip a random bit
          size_t Bit = Rng.below(InputBytes * 8);
          Work[Bit >> 3] ^= (1u << (Bit & 7));
          break;
        }
        case 1: // randomize a byte
          Work[Rng.below(InputBytes)] = static_cast<uint8_t>(Rng.next());
          break;
        case 2: { // interesting 16-bit value at a random offset
          size_t Byte = Rng.below(InputBytes - 1);
          int16_t V = Interesting16[Rng.below(sizeof(Interesting16) / 2)];
          std::memcpy(Work.data() + Byte, &V, 2);
          break;
        }
        case 3: { // interesting 32-bit value at a random offset
          size_t Byte = Rng.below(InputBytes - 3);
          int32_t V = Interesting32[Rng.below(sizeof(Interesting32) / 4)];
          std::memcpy(Work.data() + Byte, &V, 4);
          break;
        }
        case 4: { // byte arithmetic at a random offset
          size_t Byte = Rng.below(InputBytes);
          Work[Byte] = static_cast<uint8_t>(
              Work[Byte] + static_cast<int>(Rng.below(71)) - 35);
          break;
        }
        default: { // splice with another queue entry
          const QueueEntry &Other = Queue[Rng.below(Queue.size())];
          size_t Cut = Rng.below(InputBytes);
          std::memcpy(Work.data() + Cut, Other.Bytes.data() + Cut,
                      InputBytes - Cut);
          break;
        }
        }
      }
      if (ExecuteInput(Work) && Queue.size() < Opts.MaxQueue)
        Queue.push_back({Work, false});
    }
    ++Cursor;
  }

  Res.CorpusSize = Queue.size();
  Res.BranchCoverage = Res.Coverage.branchCoverage();
  Res.LineCoverage = Res.Coverage.lineCoverage(Prog);
  Res.Seconds = Timer.seconds();
  return Res;
}
