//===- Tester.h - Common interface for the baseline testers ---------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared types for the comparison tools of Sect. 6.1: Rand (pure random
/// testing), AFL (coverage-guided mutation fuzzing), and Austin (search-
/// based testing). All three run the same instrumented Program with pen
/// disabled — only CoverMe uses the representing function — and are
/// budgeted in program executions, the fair currency on a shared substrate
/// (the paper budgets Rand/AFL at 10x CoverMe's wall time; executions
/// remove the noise of our much cheaper in-process harness).
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_FUZZ_TESTER_H
#define COVERME_FUZZ_TESTER_H

#include "runtime/Coverage.h"
#include "runtime/Program.h"

#include <cstdint>

namespace coverme {

/// Outcome of one baseline-tester campaign.
struct TesterResult {
  CoverageMap Coverage;      ///< Branch arms hit across all executions.
  uint64_t Executions = 0;   ///< Program runs consumed.
  double Seconds = 0.0;      ///< Wall time.
  size_t CorpusSize = 0;     ///< Inputs retained as interesting (AFL) or
                             ///< generated as tests (Rand: all, Austin: per
                             ///< target).
  double BranchCoverage = 0.0;
  double LineCoverage = 0.0;
};

} // namespace coverme

#endif // COVERME_FUZZ_TESTER_H
