//===- AustinTester.cpp - Search-based testing (Austin-lite) ----------------===//

#include "fuzz/AustinTester.h"

#include "runtime/ExecutionContext.h"
#include "runtime/RepresentingFunction.h"
#include "support/Timer.h"

#include <cmath>

using namespace coverme;

namespace {

/// Fitness of the flat region where the target site was never executed.
const double UnreachedPenalty = 1e120;

} // namespace

AustinTester::AustinTester(const Program &P, AustinOptions Opts)
    : Prog(P), Opts(Opts) {
  assert(P.Body && "program has no body");
}

TesterResult AustinTester::run(uint64_t MaxExecutions) {
  WallTimer Timer;
  TesterResult Res;
  Res.Coverage.reset(Prog.NumSites);

  ExecutionContext Ctx(Prog.NumSites);
  Ctx.PenEnabled = false;
  Ctx.TraceEnabled = false;
  Ctx.RecordOperands = true;
  Ctx.Coverage = &Res.Coverage;
  RepresentingFunction FR(Prog, Ctx);

  Rng Rng(Opts.Seed);

  // Fitness of input X for a target arm: zero when the arm is taken; when
  // only the site is reached, either the branch distance (optional oracle
  // mode) or a flat wrong-arm level; a larger flat penalty when the site
  // is not reached at all.
  auto Fitness = [&](const std::vector<double> &X, BranchRef Target) {
    FR.execute(X);
    ++Res.Executions;
    const SiteObservation &Obs = Ctx.Observations[Target.Site];
    if (!Obs.Executed)
      return UnreachedPenalty;
    CmpOp Op = Target.Outcome ? Obs.Op : negateCmpOp(Obs.Op);
    double D = branchDistance(Op, Obs.A, Obs.B);
    if (D != D)
      return UnreachedPenalty;
    if (!Opts.UseBranchDistance)
      return D == 0.0 ? 0.0 : 1.0; // coarse reached/taken level
    return D;
  };

  // One AVM descent from a random start. Returns true once the target arm
  // is covered (fitness zero).
  auto AvmSearch = [&](BranchRef Target, uint64_t Budget) {
    uint64_t Spent0 = Res.Executions;
    std::vector<double> X(Prog.Arity);
    for (unsigned Restart = 0;
         Opts.RestartUntilBudget
             ? (Res.Executions - Spent0 < Budget &&
                Res.Executions < MaxExecutions)
             : Restart < Opts.RestartsPerTarget;
         ++Restart) {
      // First attempt from the all-zero input (AUSTIN's default), then
      // uniform random restarts over the conventional input domain.
      for (double &Coord : X)
        Coord = Restart == 0 ? 0.0 : Rng.uniform(-Opts.RestartRange,
                                                 Opts.RestartRange);
      double F = Fitness(X, Target);
      if (F == 0.0)
        return true;
      bool AnyImprovement = true;
      while (AnyImprovement && Res.Executions - Spent0 < Budget &&
             Res.Executions < MaxExecutions) {
        AnyImprovement = false;
        for (size_t Var = 0; Var < Prog.Arity; ++Var) {
          // Exploratory moves: Korel's AVM probes +-delta with a fixed
          // initial step (0.1 for floating-point variables), relying on
          // pattern-move doubling to travel — which is precisely why it
          // struggles to cross the hundreds of binades Fdlibm thresholds
          // span within a per-target budget.
          for (double Sign : {+1.0, -1.0}) {
            double Delta = Sign * 0.1;
            std::vector<double> Probe = X;
            Probe[Var] += Delta;
            double FP = Fitness(Probe, Target);
            if (FP == 0.0)
              return true;
            if (FP >= F)
              continue;
            // Pattern move: accelerate while improving.
            X = Probe;
            F = FP;
            AnyImprovement = true;
            while (Res.Executions - Spent0 < Budget &&
                   Res.Executions < MaxExecutions) {
              Delta *= 2.0;
              std::vector<double> Next = X;
              Next[Var] += Delta;
              double FN = Fitness(Next, Target);
              if (FN == 0.0)
                return true;
              if (FN >= F)
                break;
              X = std::move(Next);
              F = FN;
            }
            break;
          }
          if (Res.Executions - Spent0 >= Budget ||
              Res.Executions >= MaxExecutions)
            break;
        }
      }
      if (Res.Executions - Spent0 >= Budget || Res.Executions >= MaxExecutions)
        break;
    }
    return false;
  };

  // Target every arm in site order, skipping ones already covered by
  // earlier searches (Austin iterates over uncovered branches similarly).
  for (uint32_t Site = 0; Site < Prog.NumSites; ++Site) {
    for (bool Outcome : {true, false}) {
      if (Res.Executions >= MaxExecutions)
        break;
      BranchRef Target{Site, Outcome};
      if (Res.Coverage.isCovered(Target))
        continue;
      if (AvmSearch(Target, Opts.PerTargetExecutions))
        ++Res.CorpusSize;
    }
  }

  Res.BranchCoverage = Res.Coverage.branchCoverage();
  Res.LineCoverage = Res.Coverage.lineCoverage(Prog);
  Res.Seconds = Timer.seconds();
  return Res;
}
