//===- CoverMe.cpp - Branch coverage-based testing (Algorithm 1) ------------===//

#include "core/CoverMe.h"

#include "runtime/ExecutionContext.h"
#include "runtime/RepresentingFunction.h"
#include "support/Timer.h"

#include <algorithm>

using namespace coverme;

CoverMe::CoverMe(const Program &P, CoverMeOptions Opts)
    : Prog(P), Opts(Opts) {
  assert(P.Body && "program has no body");
}

namespace {

/// Replays \p X through the program with pen disabled, recording the branch
/// trace (and coverage when \p Sink is non-null). Returns the trace.
const std::vector<BranchRef> &replay(const RepresentingFunction &FR,
                                     ExecutionContext &Ctx,
                                     const std::vector<double> &X,
                                     CoverageMap *Sink) {
  CoverageMap *SavedSink = Ctx.Coverage;
  bool SavedTrace = Ctx.TraceEnabled;
  Ctx.Coverage = Sink;
  Ctx.TraceEnabled = true;
  FR.execute(X);
  Ctx.Coverage = SavedSink;
  Ctx.TraceEnabled = SavedTrace;
  return Ctx.Trace;
}

} // namespace

CampaignResult CoverMe::run() {
  WallTimer Timer;
  CampaignResult Res;
  Res.TotalBranches = Prog.numBranches();

  ExecutionContext Ctx(Prog.NumSites, Opts.Epsilon);
  RepresentingFunction FR(Prog, Ctx);
  CoverageMap SuiteCoverage(Prog.NumSites);

  // A branch-free program needs a single input to cover everything.
  if (Prog.NumSites == 0) {
    std::vector<double> X(Prog.Arity, 1.0);
    Res.Inputs.push_back(X);
    Res.Coverage = SuiteCoverage;
    Res.AllSaturated = true;
    Res.Seconds = Timer.seconds();
    return Res;
  }

  Rng Rng(Opts.Seed);
  // Minimization probes run without tracing or coverage recording; only
  // accepted inputs (members of X) count toward the reported coverage,
  // mirroring how Gcov measures the generated test suite in the paper.
  Ctx.TraceEnabled = false;
  Objective FooR = FR.asObjective();

  std::unique_ptr<LocalMinimizer> LM =
      makeLocalMinimizer(Opts.LM, Opts.LMOptions);
  BasinhoppingOptions BHOpts;
  BHOpts.NIter = Opts.NIter;
  BHOpts.MaxEvaluations = Opts.RoundMaxEvaluations;
  BasinhoppingMinimizer BH(*LM, BHOpts);
  AnnealingOptions SAOpts;
  SAOpts.NumSteps = static_cast<unsigned>(
      std::min<uint64_t>(Opts.RoundMaxEvaluations, 100000));
  SimulatedAnnealingMinimizer SA(SAOpts);
  CmaEsOptions CMAOpts;
  CMAOpts.MaxEvaluations = Opts.RoundMaxEvaluations;
  CmaEsMinimizer CMA(CMAOpts);
  DifferentialEvolutionOptions DEOpts;
  DEOpts.MaxEvaluations = Opts.RoundMaxEvaluations;
  DifferentialEvolutionMinimizer DE(DEOpts);

  // One round of the selected global backend (the Step-3 black box).
  auto MinimizeRound = [&](std::vector<double> Start,
                           const BasinhoppingCallback &Callback) {
    switch (Opts.Backend) {
    case GlobalBackendKind::Basinhopping:
      return BH.minimize(FooR, std::move(Start), Rng, Callback);
    case GlobalBackendKind::SimulatedAnnealing:
      return SA.minimize(FooR, std::move(Start), Rng);
    case GlobalBackendKind::RandomRestart:
      return LM->minimize(FooR, std::move(Start));
    case GlobalBackendKind::CmaEs:
      return CMA.minimize(FooR, std::move(Start), Rng, Callback);
    case GlobalBackendKind::DifferentialEvolution:
      return DE.minimize(FooR, std::move(Start), Rng, Callback);
    }
    assert(false && "unknown GlobalBackendKind");
    return MinimizeResult();
  };

  // Consecutive-failure count per arm, for the infeasibility heuristic.
  std::vector<unsigned> FailureStreak(2 * Prog.NumSites, 0);

  // Algo. 1, lines 8-12: launch MCMC from random starting points.
  for (unsigned K = 1; K <= Opts.NStart; ++K) {
    if (Res.Evaluations >= Opts.MaxEvaluations)
      break;
    if (Opts.StopWhenAllSaturated && Ctx.allSaturated())
      break;
    ++Res.StartsUsed;

    std::vector<double> Start(Prog.Arity);
    for (double &Coord : Start)
      Coord = Rng.wideDouble();
    // The paper's SciPy callback: stop hopping once a global minimum (a
    // zero of FOO_R) is in hand.
    BasinhoppingCallback StopAtZero =
        [](const std::vector<double> &, double Fx) { return Fx == 0.0; };
    MinimizeResult Min = MinimizeRound(std::move(Start), StopAtZero);
    Res.Evaluations += Min.NumEvals;

    RoundLog Log;
    Log.Round = K;
    Log.MinimumValue = Min.Fx;

    if (Min.Fx == 0.0) {
      // Thm. 4.3: x* saturates a new branch. Add to X, then mark every arm
      // on its path as covered/saturated (Algo. 1, lines 11-12).
      Res.Inputs.push_back(Min.X);
      const std::vector<BranchRef> &Trace =
          replay(FR, Ctx, Min.X, &SuiteCoverage);
      for (BranchRef Ref : Trace)
        Ctx.saturate(Ref);
      Log.Accepted = true;
      // Progress was made; give every blamed arm a fresh chance before the
      // infeasibility heuristic may write it off.
      std::fill(FailureStreak.begin(), FailureStreak.end(), 0u);
    } else if (Opts.MarkInfeasible) {
      // Sect. 5.3 heuristic: the minimum is positive, so the unvisited arm
      // of the last conditional on the minimum point's path is blamed; once
      // the same arm is blamed InfeasibleThreshold rounds in a row it is
      // deemed infeasible and treated as saturated from then on.
      const std::vector<BranchRef> &Trace = replay(FR, Ctx, Min.X, nullptr);
      for (auto It = Trace.rbegin(); It != Trace.rend(); ++It) {
        BranchRef Opposite{It->Site, !It->Outcome};
        if (Ctx.isSaturated(Opposite))
          continue;
        unsigned &Blames = FailureStreak[Opposite.Site * 2 + Opposite.Outcome];
        if (++Blames >= Opts.InfeasibleThreshold) {
          Ctx.saturate(Opposite);
          Res.InfeasibleMarked.push_back(Opposite);
          Log.MarkedInfeasible = true;
        }
        break;
      }
    }

    Log.SaturatedArms = Ctx.saturatedCount();
    Res.Rounds.push_back(Log);
  }

  Res.AllSaturated = Ctx.allSaturated();
  Res.Coverage = SuiteCoverage;
  Res.CoveredBranches = SuiteCoverage.coveredArms();
  Res.BranchCoverage = SuiteCoverage.branchCoverage();
  Res.LineCoverage = SuiteCoverage.lineCoverage(Prog);
  Res.Seconds = Timer.seconds();
  return Res;
}

const char *coverme::globalBackendKindName(GlobalBackendKind Kind) {
  switch (Kind) {
  case GlobalBackendKind::Basinhopping:
    return "basinhopping";
  case GlobalBackendKind::SimulatedAnnealing:
    return "simulated-annealing";
  case GlobalBackendKind::RandomRestart:
    return "random-restart";
  case GlobalBackendKind::CmaEs:
    return "cma-es";
  case GlobalBackendKind::DifferentialEvolution:
    return "differential-evolution";
  }
  assert(false && "unknown GlobalBackendKind");
  return "unknown";
}

std::vector<size_t>
coverme::reduceSuite(const Program &P,
                     const std::vector<std::vector<double>> &Inputs) {
  // Collect each input's covered-arm set.
  ExecutionContext Ctx(P.NumSites);
  Ctx.PenEnabled = false;
  RepresentingFunction FR(P, Ctx);
  std::vector<std::vector<bool>> Covers(Inputs.size());
  std::vector<bool> Target(2 * P.NumSites, false);
  for (size_t I = 0; I < Inputs.size(); ++I) {
    Ctx.TraceEnabled = true;
    FR.execute(Inputs[I]);
    Covers[I].assign(2 * P.NumSites, false);
    for (BranchRef Ref : Ctx.Trace) {
      Covers[I][Ref.Site * 2 + Ref.Outcome] = true;
      Target[Ref.Site * 2 + Ref.Outcome] = true;
    }
  }
  // Greedy set cover: repeatedly take the input covering the most
  // still-uncovered arms.
  std::vector<size_t> Chosen;
  std::vector<bool> Covered(2 * P.NumSites, false);
  auto Remaining = [&]() {
    for (size_t A = 0; A < Target.size(); ++A)
      if (Target[A] && !Covered[A])
        return true;
    return false;
  };
  std::vector<bool> Used(Inputs.size(), false);
  while (Remaining()) {
    size_t Best = Inputs.size();
    unsigned BestGain = 0;
    for (size_t I = 0; I < Inputs.size(); ++I) {
      if (Used[I])
        continue;
      unsigned Gain = 0;
      for (size_t A = 0; A < Target.size(); ++A)
        Gain += Covers[I][A] && !Covered[A];
      if (Gain > BestGain) {
        BestGain = Gain;
        Best = I;
      }
    }
    if (Best == Inputs.size())
      break; // nothing left can make progress
    Used[Best] = true;
    Chosen.push_back(Best);
    for (size_t A = 0; A < Target.size(); ++A)
      if (Covers[Best][A])
        Covered[A] = true;
  }
  std::sort(Chosen.begin(), Chosen.end());
  return Chosen;
}
