//===- CoverMe.cpp - Branch coverage-based testing (Algorithm 1) ------------===//

#include "core/CoverMe.h"

#include "core/CampaignEngine.h"
#include "runtime/ExecutionContext.h"
#include "runtime/RepresentingFunction.h"

#include <algorithm>

using namespace coverme;

CoverMe::CoverMe(const Program &P, CoverMeOptions Opts)
    : Prog(P), Opts(Opts) {
  assert(P.Body && "program has no body");
}

CampaignResult CoverMe::run() {
  // The round loop (Algo. 1, lines 6-13) lives in the campaign engine,
  // which runs it on Opts.Threads workers with deterministic commits.
  return CampaignEngine(Prog, Opts).run();
}

const char *coverme::globalBackendKindName(GlobalBackendKind Kind) {
  switch (Kind) {
  case GlobalBackendKind::Basinhopping:
    return "basinhopping";
  case GlobalBackendKind::SimulatedAnnealing:
    return "simulated-annealing";
  case GlobalBackendKind::RandomRestart:
    return "random-restart";
  case GlobalBackendKind::CmaEs:
    return "cma-es";
  case GlobalBackendKind::DifferentialEvolution:
    return "differential-evolution";
  }
  assert(false && "unknown GlobalBackendKind");
  return "unknown";
}

const char *coverme::stopReasonName(StopReason Reason) {
  switch (Reason) {
  case StopReason::None:
    return "none";
  case StopReason::RoundsExhausted:
    return "rounds-exhausted";
  case StopReason::AllSaturated:
    return "all-saturated";
  case StopReason::BudgetExhausted:
    return "budget-exhausted";
  case StopReason::DeadlineExpired:
    return "deadline-expired";
  case StopReason::Suspended:
    return "suspended";
  }
  assert(false && "unknown StopReason");
  return "unknown";
}

std::vector<size_t>
coverme::reduceSuite(const Program &P,
                     const std::vector<std::vector<double>> &Inputs) {
  // Collect each input's covered-arm set.
  ExecutionContext Ctx(P.NumSites);
  Ctx.PenEnabled = false;
  RepresentingFunction FR(P, Ctx);
  std::vector<std::vector<bool>> Covers(Inputs.size());
  std::vector<bool> Target(2 * P.NumSites, false);
  for (size_t I = 0; I < Inputs.size(); ++I) {
    Ctx.TraceEnabled = true;
    FR.execute(Inputs[I]);
    Covers[I].assign(2 * P.NumSites, false);
    for (BranchRef Ref : Ctx.Trace) {
      Covers[I][Ref.Site * 2 + Ref.Outcome] = true;
      Target[Ref.Site * 2 + Ref.Outcome] = true;
    }
  }
  // Greedy set cover: repeatedly take the input covering the most
  // still-uncovered arms.
  std::vector<size_t> Chosen;
  std::vector<bool> Covered(2 * P.NumSites, false);
  auto Remaining = [&]() {
    for (size_t A = 0; A < Target.size(); ++A)
      if (Target[A] && !Covered[A])
        return true;
    return false;
  };
  std::vector<bool> Used(Inputs.size(), false);
  while (Remaining()) {
    size_t Best = Inputs.size();
    unsigned BestGain = 0;
    for (size_t I = 0; I < Inputs.size(); ++I) {
      if (Used[I])
        continue;
      unsigned Gain = 0;
      for (size_t A = 0; A < Target.size(); ++A)
        Gain += Covers[I][A] && !Covered[A];
      if (Gain > BestGain) {
        BestGain = Gain;
        Best = I;
      }
    }
    if (Best == Inputs.size())
      break; // nothing left can make progress
    Used[Best] = true;
    Chosen.push_back(Best);
    for (size_t A = 0; A < Target.size(); ++A)
      if (Covers[Best][A])
        Covered[A] = true;
  }
  std::sort(Chosen.begin(), Chosen.end());
  return Chosen;
}
