//===- CoverMe.h - Branch coverage-based testing (Algorithm 1) ------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CoverMe driver: Algorithm 1 of the paper. Given an instrumented
/// Program FOO, it repeatedly minimizes the representing function FOO_R
/// with an MCMC (Basinhopping) backend. Every minimum point x* with
/// FOO_R(x*) == 0 is guaranteed (Thm. 4.3) to saturate a branch not yet
/// saturated, so it is added to the generated input set X; a strictly
/// positive minimum triggers the infeasible-branch heuristic of Sect. 5.3.
/// The campaign stops early once every branch is saturated (covered or
/// deemed infeasible) — the role the SciPy callback plays in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_CORE_COVERME_H
#define COVERME_CORE_COVERME_H

#include "optim/Basinhopping.h"
#include "optim/CmaEs.h"
#include "optim/DifferentialEvolution.h"
#include "optim/SimulatedAnnealing.h"
#include "optim/Minimizer.h"
#include "runtime/BranchDistance.h"
#include "runtime/Coverage.h"
#include "runtime/Program.h"

#include <functional>
#include <vector>

namespace coverme {

struct RoundLog;
struct CampaignSnapshot;

/// Streaming per-round progress: invoked by the campaign engine after each
/// round commits, in commit (= round) order, under the engine's commit
/// lock — implementations must be fast and must not call back into the
/// engine. Deterministic: every thread count fires the same sequence.
using RoundProgressFn = std::function<void(const RoundLog &Log)>;

/// The unconstrained-programming backend driving Step 3. Thm. 4.3 lets any
/// global minimizer serve as the black box (Sect. 2); Basinhopping is the
/// paper's choice, the others demonstrate the interchangeability claim.
enum class GlobalBackendKind {
  Basinhopping,       ///< MCMC over local minima (paper default).
  SimulatedAnnealing, ///< Annealed Metropolis walk, no local minimizer.
  RandomRestart,      ///< Pure multi-start local minimization (no MCMC).
  CmaEs,              ///< Covariance Matrix Adaptation Evolution Strategy.
  DifferentialEvolution, ///< DE/rand/1/bin population search.
};

/// Spelling used in reports and option parsing.
const char *globalBackendKindName(GlobalBackendKind Kind);

/// Why a campaign's round loop stopped. Exactly one reason applies: the
/// engine evaluates them in a fixed order at each round-commit boundary
/// (natural termination first, then the deadline, then voluntary
/// suspension), so the reason is deterministic per thread count like
/// everything else the commit protocol decides.
enum class StopReason : uint8_t {
  None,            ///< Campaign has not run (a default CampaignResult).
  RoundsExhausted, ///< All NStart starting points were consumed.
  AllSaturated,    ///< Every branch arm saturated (paper's callback).
  BudgetExhausted, ///< MaxEvaluations reached.
  DeadlineExpired, ///< WallDeadline passed; the result is a resumable
                   ///< prefix exactly like a suspension.
  Suspended,       ///< requestSuspend()/SuspendAfterRounds interrupted it.
};

const char *stopReasonName(StopReason Reason);

/// Streamed checkpoint notification: the engine hands over a complete
/// resumable snapshot every CheckpointEveryRounds committed rounds, under
/// the commit lock in commit order (same discipline as RoundProgressFn).
/// The service layer's durable journal writes hang off this hook.
using CheckpointProgressFn = std::function<void(const CampaignSnapshot &)>;

/// Algorithm 1's inputs plus engineering budgets.
struct CoverMeOptions {
  unsigned NStart = 500;  ///< Starting points (paper: n_start = 500).
  unsigned NIter = 5;     ///< MCMC iterations per start (paper: n_iter = 5).
  LocalMinimizerKind LM = LocalMinimizerKind::Powell; ///< Paper: "powell".
  GlobalBackendKind Backend = GlobalBackendKind::Basinhopping;

  /// Budgets for one local minimization inside Basinhopping.
  LocalMinimizerOptions LMOptions = {.MaxIterations = 20,
                                     .MaxEvaluations = 1200,
                                     .FTol = 1e-12,
                                     .InitialStep = 1.0};

  /// Budget for one Basinhopping run (one starting point).
  uint64_t RoundMaxEvaluations = 8000;

  /// Hard cap on objective evaluations across the whole campaign.
  uint64_t MaxEvaluations = 2000000;

  double Epsilon = DefaultEpsilon; ///< Strict-inequality epsilon (Def. 4.1).
  uint64_t Seed = 1;               ///< PRNG seed; campaigns replay exactly.

  /// Enables the Sect. 5.3 heuristic: a positive minimum marks the
  /// unvisited arm of the last conditional on its path as infeasible.
  bool MarkInfeasible = true;

  /// How many failed rounds must blame the same arm before it is deemed
  /// infeasible. The paper marks after a single failure; requiring a short
  /// streak makes the heuristic robust to one-off optimizer misses without
  /// changing its character (documented deviation, see DESIGN.md).
  unsigned InfeasibleThreshold = 2;

  /// Stop as soon as all branches are saturated (paper's callback).
  bool StopWhenAllSaturated = true;

  /// Worker threads for the campaign's round loop (0 = one per hardware
  /// core). Rounds are dispatched speculatively and committed in round
  /// order with per-round RNGs split from Seed + round, so every thread
  /// count — including the sequential Threads=1 reference path — produces
  /// the bit-identical accepted-input set; threads only change wall time.
  /// Clamped to 1 when the program's body is not reentrant
  /// (Program::ThreadSafeBody), e.g. interpreted source programs.
  unsigned Threads = 1;

  /// Deterministic suspension point: stop at the round-commit boundary
  /// once this many rounds have committed in total (0 = never). The result
  /// comes back with Suspended = true and the engine retains its state for
  /// CampaignEngine::snapshot(); resuming the snapshot continues
  /// bit-identically to an uninterrupted run. Counted over the whole
  /// campaign, so a resumed run whose committed prefix already reaches the
  /// value suspends again before committing another round — resumers that
  /// want further progress must raise or clear it (the service layer
  /// clears a satisfied value on resume). Natural termination (budget,
  /// full saturation, NStart) takes precedence over suspension.
  unsigned SuspendAfterRounds = 0;

  /// Wall-clock deadline in seconds for one run() invocation (0 = none),
  /// checked at every round-commit boundary: the first commit slot that
  /// opens past the deadline stops the campaign with
  /// StopReason::DeadlineExpired and a valid, resumable partial result —
  /// so expiry is detected within one round of the wall crossing, never
  /// mid-round. A resumed run gets a fresh deadline window; the committed
  /// prefix it continues is bit-identical either way.
  double WallDeadline = 0.0;

  /// Emit a resumable snapshot through OnCheckpoint every N committed
  /// rounds (0 = never). Fires at the commit boundary right after the
  /// Nth/2Nth/... round commits, so the snapshot cadence — like the
  /// rounds themselves — is identical at every thread count.
  unsigned CheckpointEveryRounds = 0;

  /// Streaming progress callback; see RoundProgressFn. Null = no events.
  RoundProgressFn OnRound;

  /// Periodic snapshot callback; see CheckpointProgressFn. Null = none.
  CheckpointProgressFn OnCheckpoint;
};

/// One Basinhopping round of the campaign, for reporting and examples.
struct RoundLog {
  unsigned Round = 0;          ///< 1-based starting-point index.
  double MinimumValue = 0.0;   ///< FOO_R at the round's best point.
  bool Accepted = false;       ///< Added to X (minimum hit zero).
  bool MarkedInfeasible = false; ///< The heuristic fired this round.
  unsigned SaturatedArms = 0;  ///< Saturated arms after the round.
};

/// Outcome of a CoverMe campaign over one program.
struct CampaignResult {
  std::vector<std::vector<double>> Inputs; ///< Generated test suite X.
  CoverageMap Coverage;      ///< Branch coverage achieved by executing X.
  unsigned TotalBranches = 0;
  unsigned CoveredBranches = 0;
  /// CoveredBranches / TotalBranches. Defaults to 0.0 — a result that never
  /// ran a campaign claims nothing; the engine sets 1.0 for branch-free
  /// programs via CoverageMap's guarded division.
  double BranchCoverage = 0.0;
  double LineCoverage = 0.0; ///< Under the program's line model; same rule.
  uint64_t Evaluations = 0;    ///< FOO_R evaluations consumed.
  double Seconds = 0.0;        ///< Wall time of the campaign.
  unsigned StartsUsed = 0;     ///< Basinhopping rounds launched.
  bool AllSaturated = false;   ///< Terminated via full saturation.
  /// True when the campaign stopped at a suspension point (requestSuspend,
  /// SuspendAfterRounds, or a WallDeadline expiry) rather than
  /// terminating: the result is a resumable prefix of the full campaign,
  /// not its end state.
  bool Suspended = false;
  /// The single reason the round loop stopped; see StopReason.
  StopReason Stop = StopReason::None;
  std::vector<BranchRef> InfeasibleMarked; ///< Arms deemed infeasible.
  std::vector<RoundLog> Rounds;            ///< Per-round trace.
};

/// The CoverMe testing facade for a single program. The round loop itself
/// lives in core/CampaignEngine, which runs it on Options.Threads workers;
/// this class is the stable single-campaign entry point.
class CoverMe {
public:
  explicit CoverMe(const Program &P, CoverMeOptions Opts = {});

  /// Runs the campaign (Algo. 1, lines 6-13) and returns the result.
  CampaignResult run();

  const CoverMeOptions &options() const { return Opts; }

private:
  const Program &Prog;
  CoverMeOptions Opts;
};

/// Greedy test-suite reduction: returns the indices of a minimal-ish
/// subset of \p Inputs that covers exactly the same branch arms of \p P.
/// Useful when shipping the generated suite — Thm. 4.3 already keeps X
/// small (every accepted input covers something new), but later inputs
/// often subsume earlier ones' arms.
std::vector<size_t>
reduceSuite(const Program &P, const std::vector<std::vector<double>> &Inputs);

} // namespace coverme

#endif // COVERME_CORE_COVERME_H
