//===- CampaignRunner.cpp - Multi-program campaign sharding -----------------===//

#include "core/CampaignRunner.h"

using namespace coverme;

CampaignRunner::CampaignRunner(CampaignRunnerOptions Opts)
    : Opts(Opts), Pool(Opts.Threads) {}

std::vector<CampaignResult>
CampaignRunner::run(const std::vector<const Program *> &Subjects,
                    const SubjectProgressFn &Progress) {
  return map<CampaignResult>(Subjects.size(), [&](size_t I) {
    CampaignResult R = CoverMe(*Subjects[I], Opts.Campaign).run();
    if (Progress) {
      std::lock_guard<std::mutex> Lock(ProgressMutex);
      Progress(I, *Subjects[I], R);
    }
    return R;
  });
}

std::vector<CampaignResult>
CampaignRunner::run(const ProgramRegistry &Registry,
                    const SubjectProgressFn &Progress) {
  std::vector<const Program *> Subjects;
  Subjects.reserve(Registry.size());
  for (const Program &P : Registry.programs())
    Subjects.push_back(&P);
  return run(Subjects, Progress);
}
