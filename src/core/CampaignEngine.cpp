//===- CampaignEngine.cpp - Parallel round loop of Algorithm 1 --------------===//

#include "core/CampaignEngine.h"

#include "runtime/ExecutionContext.h"
#include "runtime/RepresentingFunction.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>

using namespace coverme;

namespace {

/// Replays \p X through the program with pen disabled, recording the branch
/// trace (and coverage when \p Sink is non-null). Returns the trace.
const std::vector<BranchRef> &replay(const RepresentingFunction &FR,
                                     ExecutionContext &Ctx,
                                     const std::vector<double> &X,
                                     CoverageMap *Sink) {
  CoverageMap *SavedSink = Ctx.Coverage;
  bool SavedTrace = Ctx.TraceEnabled;
  Ctx.Coverage = Sink;
  Ctx.TraceEnabled = true;
  FR.execute(X);
  Ctx.Coverage = SavedSink;
  Ctx.TraceEnabled = SavedTrace;
  return Ctx.Trace;
}

} // namespace

/// Per-worker state: a scratch context bound to the shared table, the
/// representing function over it, and this worker's own backend instances
/// (the minimizers are stateless across minimize() calls, but per-worker
/// copies keep the hot path free of sharing questions).
struct CampaignEngine::Worker {
  ExecutionContext Ctx;
  RepresentingFunction FR;
  std::unique_ptr<LocalMinimizer> LM;
  BasinhoppingMinimizer BH;
  SimulatedAnnealingMinimizer SA;
  CmaEsMinimizer CMA;
  DifferentialEvolutionMinimizer DE;

  static BasinhoppingOptions bhOptions(const CoverMeOptions &Opts) {
    BasinhoppingOptions BHOpts;
    BHOpts.NIter = Opts.NIter;
    BHOpts.MaxEvaluations = Opts.RoundMaxEvaluations;
    return BHOpts;
  }
  static AnnealingOptions saOptions(const CoverMeOptions &Opts) {
    AnnealingOptions SAOpts;
    SAOpts.NumSteps = static_cast<unsigned>(
        std::min<uint64_t>(Opts.RoundMaxEvaluations, 100000));
    return SAOpts;
  }
  static CmaEsOptions cmaOptions(const CoverMeOptions &Opts) {
    CmaEsOptions CMAOpts;
    CMAOpts.MaxEvaluations = Opts.RoundMaxEvaluations;
    return CMAOpts;
  }
  static DifferentialEvolutionOptions deOptions(const CoverMeOptions &Opts) {
    DifferentialEvolutionOptions DEOpts;
    DEOpts.MaxEvaluations = Opts.RoundMaxEvaluations;
    return DEOpts;
  }

  Worker(const Program &P, SaturationTable &Table, const CoverMeOptions &Opts)
      : Ctx(Table, Opts.Epsilon), FR(P, Ctx),
        LM(makeLocalMinimizer(Opts.LM, Opts.LMOptions)),
        BH(*LM, bhOptions(Opts)), SA(saOptions(Opts)), CMA(cmaOptions(Opts)),
        DE(deOptions(Opts)) {
    // Minimization probes run without tracing or coverage recording; only
    // accepted inputs (members of X) count toward the reported coverage,
    // mirroring how Gcov measures the generated test suite in the paper.
    Ctx.TraceEnabled = false;
  }
};

/// Outcome of one speculated round, pending its commit slot.
struct CampaignEngine::RoundWork {
  unsigned Round = 0;
  uint64_t SnapshotVersion = 0;
  MinimizeResult Min;
  bool Ran = false; ///< False when speculation was skipped (soft stop).
};

CampaignEngine::CampaignEngine(const Program &P, CoverMeOptions Opts)
    : Prog(P), Opts(Opts), Table(P.NumSites), SuiteCoverage(P.NumSites) {
  assert(P.Body && "program has no body");
}

unsigned CampaignEngine::effectiveThreads() const {
  unsigned Threads = Opts.Threads ? Opts.Threads : ThreadPool::hardwareThreads();
  if (!Prog.ThreadSafeBody)
    Threads = 1; // the body shares state (e.g. one lang::Interpreter)
  return Threads;
}

MinimizeResult CampaignEngine::minimizeRound(unsigned Round, Worker &W) {
  // Deterministic seed split: round K's generator depends only on
  // (Options.Seed, K) — the Rng constructor runs splitmix64 over the value,
  // which is designed exactly for decorrelating sequential seeds. Any
  // schedule that runs round K against the same saturation state gets the
  // same result.
  Rng RoundRng(Opts.Seed + 0x9e3779b97f4a7c15ull * Round);
  std::vector<double> Start(Prog.Arity);
  for (double &Coord : Start)
    Coord = RoundRng.wideDouble();
  // Bind FOO_R for the whole round: the context scope, pen flag, and
  // per-thread body resolution happen here once; every probe the backend
  // makes below is beginRun + one raw body call.
  RepresentingFunction::BoundRun Run(W.FR);
  ObjectiveFn FooR(Run);
  // The paper's SciPy callback: stop hopping once a global minimum (a
  // zero of FOO_R) is in hand.
  BasinhoppingCallback StopAtZero =
      [](const std::vector<double> &, double Fx) { return Fx == 0.0; };
  switch (Opts.Backend) {
  case GlobalBackendKind::Basinhopping:
    return W.BH.minimize(FooR, std::move(Start), RoundRng, StopAtZero);
  case GlobalBackendKind::SimulatedAnnealing:
    return W.SA.minimize(FooR, std::move(Start), RoundRng);
  case GlobalBackendKind::RandomRestart:
    return W.LM->minimize(FooR, std::move(Start));
  case GlobalBackendKind::CmaEs:
    return W.CMA.minimize(FooR, std::move(Start), RoundRng, StopAtZero);
  case GlobalBackendKind::DifferentialEvolution:
    return W.DE.minimize(FooR, std::move(Start), RoundRng, StopAtZero);
  }
  assert(false && "unknown GlobalBackendKind");
  return MinimizeResult();
}

bool CampaignEngine::commitLocked(RoundWork &Work, Worker &W) {
  // Algo. 1 loop guards, evaluated in round order over committed state.
  if (Res.Evaluations >= Opts.MaxEvaluations) {
    Res.Stop = StopReason::BudgetExhausted;
    return false;
  }
  if (Opts.StopWhenAllSaturated && Table.allSaturated()) {
    Res.Stop = StopReason::AllSaturated;
    return false;
  }

  // Deadline gate: evaluated after the natural stops (a campaign that
  // terminates at this boundary terminates with its real reason) and
  // before voluntary suspension. The round in this commit slot is
  // discarded like a suspension's, so the result is a clean resumable
  // prefix and expiry lands within one round boundary of the wall
  // crossing at every thread count.
  if (Opts.WallDeadline > 0.0 && RunTimer.seconds() >= Opts.WallDeadline) {
    Res.Suspended = true;
    Res.Stop = StopReason::DeadlineExpired;
    return false;
  }

  // Suspension gate, checked after the natural stop conditions so a
  // campaign that would terminate here terminates — suspension only
  // interrupts a campaign that would otherwise continue. The round in
  // this commit slot is discarded, not committed: round K re-runs
  // deterministically from (seed, K, restored table) after resume, so the
  // boundary is exact at every thread count.
  if (SuspendRequested.load(std::memory_order_relaxed) ||
      (Opts.SuspendAfterRounds && Res.StartsUsed >= Opts.SuspendAfterRounds)) {
    Res.Suspended = true;
    Res.Stop = StopReason::Suspended;
    return false;
  }

  // Validate the speculation: version unchanged means the objective read
  // exactly the committed-prefix saturation state (arms never unsaturate,
  // so equal versions imply equal flags). Stale or skipped rounds re-run
  // here, where no other commit can interleave.
  if (!Work.Ran || Work.SnapshotVersion != Table.version())
    Work.Min = minimizeRound(Work.Round, W);

  ++Res.StartsUsed;
  Res.Evaluations += Work.Min.NumEvals;
  CommittedEvals.store(Res.Evaluations, std::memory_order_relaxed);

  RoundLog Log;
  Log.Round = Work.Round;
  Log.MinimumValue = Work.Min.Fx;

  if (Work.Min.Fx == 0.0) {
    // Thm. 4.3: x* saturates a new branch. Add to X, then mark every arm
    // on its path as covered/saturated (Algo. 1, lines 11-12).
    Res.Inputs.push_back(Work.Min.X);
    CoverageMap RunCoverage(Prog.NumSites);
    const std::vector<BranchRef> &Trace =
        replay(W.FR, W.Ctx, Work.Min.X, &RunCoverage);
    bool Merged = SuiteCoverage.merge(RunCoverage);
    assert(Merged && "suite and run coverage maps share the program shape");
    (void)Merged;
    for (BranchRef Ref : Trace)
      Table.saturate(Ref);
    Log.Accepted = true;
    // Progress was made; give every blamed arm a fresh chance before the
    // infeasibility heuristic may write it off.
    Table.resetStreaks();
  } else if (Opts.MarkInfeasible) {
    // Sect. 5.3 heuristic: the minimum is positive, so the unvisited arm
    // of the last conditional on the minimum point's path is blamed; once
    // the same arm is blamed InfeasibleThreshold rounds in a row it is
    // deemed infeasible and treated as saturated from then on.
    const std::vector<BranchRef> &Trace =
        replay(W.FR, W.Ctx, Work.Min.X, nullptr);
    for (auto It = Trace.rbegin(); It != Trace.rend(); ++It) {
      BranchRef Opposite{It->Site, !It->Outcome};
      if (Table.isSaturated(Opposite))
        continue;
      if (Table.bumpStreak(Opposite) >= Opts.InfeasibleThreshold) {
        Table.saturate(Opposite);
        Res.InfeasibleMarked.push_back(Opposite);
        Log.MarkedInfeasible = true;
      }
      break;
    }
  }

  Log.SaturatedArms = Table.saturatedCount();
  Res.Rounds.push_back(Log);
  if (Opts.OnRound)
    Opts.OnRound(Log);
  // Periodic durable checkpoint: the commit lock is held, so the captured
  // state is exactly the committed prefix through this round; the next
  // uncommitted round is the one just past this slot. Cadence counts
  // total committed rounds (resumed prefix included), keeping checkpoint
  // boundaries stable across interruptions.
  if (Opts.CheckpointEveryRounds && Opts.OnCheckpoint &&
      Res.StartsUsed % Opts.CheckpointEveryRounds == 0)
    Opts.OnCheckpoint(snapshotWithNext(Work.Round + 1));
  return true;
}

void CampaignEngine::workerLoop() {
  Worker W(Prog, Table, Opts);
  for (;;) {
    unsigned K = NextLaunch.fetch_add(1, std::memory_order_relaxed);
    if (K > Opts.NStart)
      return;

    RoundWork Work;
    Work.Round = K;
    // Soft gate: don't burn CPU speculating past a stop condition that is
    // already visible. Both conditions are monotone, so if one holds here
    // it still holds at the commit slot, where the authoritative check
    // stops the campaign.
    bool SoftStop =
        Stopped.load(std::memory_order_relaxed) ||
        CommittedEvals.load(std::memory_order_relaxed) >= Opts.MaxEvaluations ||
        (Opts.StopWhenAllSaturated && Table.allSaturated());
    if (!SoftStop) {
      Work.SnapshotVersion = Table.version();
      Work.Min = minimizeRound(K, W);
      Work.Ran = true;
    }

    std::unique_lock<std::mutex> Lock(CommitMutex);
    CommitCv.wait(Lock, [&] {
      return NextCommit == K || Stopped.load(std::memory_order_relaxed);
    });
    if (Stopped.load(std::memory_order_relaxed))
      return; // an earlier round stopped the campaign; discard this one
    if (!commitLocked(Work, W)) {
      Stopped.store(true, std::memory_order_relaxed);
      CommitCv.notify_all();
      return;
    }
    ++NextCommit;
    CommitCv.notify_all();
  }
}

CampaignResult CampaignEngine::run() {
  WallTimer Timer;
  RunTimer.restart(); // the WallDeadline window opens here
  Res.TotalBranches = Prog.numBranches();

  // A branch-free program needs a single input to cover everything. A
  // resumed snapshot of one already holds that input — don't duplicate it.
  if (Prog.NumSites == 0) {
    if (!Resumed) {
      std::vector<double> X(Prog.Arity, 1.0);
      Res.Inputs.push_back(X);
    }
    Res.Coverage = SuiteCoverage;
    Res.BranchCoverage = SuiteCoverage.branchCoverage(); // 1.0: no arms
    Res.LineCoverage = SuiteCoverage.lineCoverage(Prog);
    Res.AllSaturated = true;
    Res.Stop = StopReason::AllSaturated;
    Res.Seconds = Timer.seconds();
    return Res;
  }

  unsigned Threads = effectiveThreads();
  if (Threads <= 1) {
    // Sequential reference path: same commit body, no speculation to
    // invalidate, so the parallel path is bit-identical to this one.
    // NextCommit starts past the resumed prefix (1 for a fresh campaign).
    Worker W(Prog, Table, Opts);
    while (NextCommit <= Opts.NStart) {
      RoundWork Work;
      Work.Round = NextCommit;
      std::lock_guard<std::mutex> Lock(CommitMutex);
      if (!commitLocked(Work, W))
        break;
      ++NextCommit;
    }
  } else {
    ThreadPool Pool(Threads);
    for (unsigned T = 0; T < Threads; ++T)
      Pool.submit([this] { workerLoop(); });
    Pool.wait();
  }

  // The loop exits without a commitLocked verdict only by consuming every
  // starting point; any other exit stamped its reason at the stop slot.
  if (Res.Stop == StopReason::None)
    Res.Stop = StopReason::RoundsExhausted;
  Res.AllSaturated = Table.allSaturated();
  Res.Coverage = SuiteCoverage;
  Res.CoveredBranches = SuiteCoverage.coveredArms();
  Res.BranchCoverage = SuiteCoverage.branchCoverage();
  Res.LineCoverage = SuiteCoverage.lineCoverage(Prog);
  Res.Seconds = Timer.seconds();
  return Res;
}

bool CampaignEngine::applySnapshot(const CampaignSnapshot &S,
                                   std::string &Err) {
  if (S.Arity != Prog.Arity) {
    Err = "snapshot arity does not match the program";
    return false;
  }
  // The site-count check is the CoverageMap merge shape guard: build a map
  // of the snapshot's shape and fold it into the (still-zero) suite map.
  // A mismatched or corrupt snapshot is rejected right here instead of
  // walking a differently-sized counter array later.
  CoverageMap Loaded(S.NumSites);
  if (S.Coverage.TrueHits.size() != S.NumSites ||
      !Loaded.setCounters(S.Coverage)) {
    Err = "snapshot coverage counters are malformed";
    return false;
  }
  if (!SuiteCoverage.merge(Loaded)) {
    Err = "snapshot site count does not match the program";
    return false;
  }
  if (!Table.restore(S.Table)) {
    // Undo the coverage merge so a failed apply leaves a clean engine.
    SuiteCoverage.reset(Prog.NumSites);
    Err = "snapshot saturation table is malformed";
    return false;
  }
  for (const std::vector<double> &X : S.Inputs)
    if (X.size() != Prog.Arity) {
      SuiteCoverage.reset(Prog.NumSites);
      Err = "snapshot input arity does not match the program";
      return false;
    }

  // The snapshot is a position in one seeded campaign; its seed wins.
  Opts.Seed = S.Seed;
  Res.Inputs = S.Inputs;
  Res.Rounds = S.Rounds;
  Res.InfeasibleMarked = S.InfeasibleMarked;
  Res.Evaluations = S.Evaluations;
  Res.StartsUsed = S.StartsUsed;
  CommittedEvals.store(S.Evaluations, std::memory_order_relaxed);
  NextCommit = S.NextRound;
  NextLaunch.store(S.NextRound, std::memory_order_relaxed);
  Resumed = true;
  return true;
}

CampaignSnapshot CampaignEngine::snapshot() const {
  return snapshotWithNext(NextCommit);
}

CampaignSnapshot CampaignEngine::snapshotWithNext(unsigned NextRound) const {
  CampaignSnapshot S;
  S.Seed = Opts.Seed;
  S.NumSites = Prog.NumSites;
  S.Arity = Prog.Arity;
  S.NextRound = NextRound;
  S.Table = Table.snapshot();
  S.Coverage = SuiteCoverage.counters();
  S.Inputs = Res.Inputs;
  S.Rounds = Res.Rounds;
  S.InfeasibleMarked = Res.InfeasibleMarked;
  S.Evaluations = Res.Evaluations;
  S.StartsUsed = Res.StartsUsed;
  return S;
}
