//===- Checkpoint.h - Bit-identical campaign snapshot format --------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign checkpoint: everything a suspended campaign needs to
/// continue bit-identically to an uninterrupted run. The engine's
/// deterministic round speculation makes this set small — round K's work is
/// a pure function of (seed, K, saturation state), so the "RNG position"
/// is just the next round index; no generator state needs saving.
///
///   * the SaturationTable arm flags + infeasible streaks + version,
///   * the suite CoverageMap counters,
///   * the accepted-input set and the committed round log,
///   * the next round index and the campaign seed.
///
/// The wire format is versioned little-endian binary: an 8-byte magic,
/// a format version, a shape header (sites, arity) that loaders validate
/// against the program before touching any payload, then length-prefixed
/// sections. Doubles travel as their IEEE-754 bit patterns, so a snapshot
/// round-trips bit-exactly — the golden resume tests depend on it.
/// Decoding never trusts a length field further than the remaining input.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_CORE_CHECKPOINT_H
#define COVERME_CORE_CHECKPOINT_H

#include "core/CoverMe.h"
#include "runtime/SaturationTable.h"

#include <cstdint>
#include <string>
#include <vector>

namespace coverme {

/// In-memory image of a campaign suspended at a round boundary.
struct CampaignSnapshot {
  /// Bumped whenever the wire layout changes; decoders reject unknown
  /// versions instead of guessing.
  static constexpr uint32_t FormatVersion = 1;

  uint64_t Seed = 0;      ///< Campaign seed; resume continues this stream.
  unsigned NumSites = 0;  ///< Program shape, validated on resume.
  unsigned Arity = 0;     ///< Program arity, validated on resume.
  unsigned NextRound = 1; ///< First uncommitted round — the RNG position.

  SaturationTable::Snapshot Table; ///< Arms + streaks + version triple.
  CoverageMap::Counters Coverage;  ///< Suite-map counters.

  // The committed prefix of the CampaignResult.
  std::vector<std::vector<double>> Inputs; ///< Accepted inputs, in order.
  std::vector<RoundLog> Rounds;            ///< Per-round log, in order.
  std::vector<BranchRef> InfeasibleMarked; ///< Arms deemed infeasible.
  uint64_t Evaluations = 0;                ///< FOO_R evaluations consumed.
  unsigned StartsUsed = 0;                 ///< Rounds committed so far.
};

/// Serializes \p S to the versioned binary wire format.
std::vector<uint8_t> encodeSnapshot(const CampaignSnapshot &S);

/// Parses a snapshot. Returns false and sets \p Err on any malformation:
/// short input, bad magic, unknown version, section lengths that disagree
/// with the shape header or overrun the input, trailing bytes, or an arms/
/// version combination violating the saturation-table invariant.
[[nodiscard]] bool decodeSnapshot(const uint8_t *Data, size_t Size,
                                  CampaignSnapshot &Out, std::string &Err);
[[nodiscard]] bool decodeSnapshot(const std::vector<uint8_t> &Bytes,
                                  CampaignSnapshot &Out, std::string &Err);

/// Order-sensitive FNV-1a digest over everything a campaign's identity
/// covers: accepted-input bit patterns, the round log, evaluation count,
/// coverage, and infeasible marks. Two runs digest equal iff they are
/// bit-identical in every respect the checkpoint golden tests compare —
/// the crash-recovery drills gate on this equality.
uint64_t resultDigest(const CampaignResult &Res);

} // namespace coverme

#endif // COVERME_CORE_CHECKPOINT_H
