//===- CampaignEngine.h - Parallel round loop of Algorithm 1 --------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The round loop of Algorithm 1 (lines 6-13), extracted from the CoverMe
/// facade and generalized to N worker threads. Each Basinhopping start is
/// an independent minimization of FOO_R, so rounds parallelize — what does
/// *not* parallelize naively is the campaign state the objective reads
/// (the saturation table) and the in-order bookkeeping (accepted inputs,
/// evaluation budget, the infeasible heuristic's blame streaks).
///
/// The engine resolves that with deterministic speculation:
///
///  * Every round K draws its RNG from `Options.Seed + round` (split via
///    the generator's splitmix64 seeding), so a round's work is a pure
///    function of (seed, K, saturation state).
///  * Workers claim rounds from an atomic counter and run them against the
///    live shared SaturationTable, recording the table version they
///    started from.
///  * Commits happen strictly in round order. A round is committed only if
///    the table version is unchanged since it ran — i.e. its objective saw
///    exactly the state the sequential schedule would have produced.
///    Otherwise the round re-runs inside its commit slot, where the table
///    is stable. Stop conditions (budget, full saturation) are evaluated
///    at commit time with committed state only.
///
/// Consequence: for a fixed seed, every thread count — including the
/// sequential Threads=1 path, which funnels through the same commit body —
/// produces bit-identical results (accepted inputs, round log, evaluation
/// counts, infeasible marks). Threads only change wall time. Rounds
/// speculated past a stop condition are discarded, never committed.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_CORE_CAMPAIGNENGINE_H
#define COVERME_CORE_CAMPAIGNENGINE_H

#include "core/Checkpoint.h"
#include "core/CoverMe.h"
#include "runtime/SaturationTable.h"
#include "support/Timer.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>

namespace coverme {

/// Runs one campaign over one program, on `Options.Threads` workers.
/// Single-shot: construct, optionally applySnapshot(), call run() once,
/// read the result — and, when the run suspended, snapshot() the state.
class CampaignEngine {
public:
  CampaignEngine(const Program &P, CoverMeOptions Opts);

  /// Runs the campaign and returns the result. Call at most once.
  CampaignResult run();

  /// The worker count run() will use after clamping: `Threads` option
  /// resolved (0 = hardware cores) and forced to 1 when the program's body
  /// is not reentrant (Program::ThreadSafeBody).
  unsigned effectiveThreads() const;

  /// Loads a suspended campaign's state so run() continues it instead of
  /// starting fresh. Must be called before run(). Validates the snapshot
  /// against the program (site count via the CoverageMap merge shape
  /// check, arity, table invariants); on failure sets \p Err and leaves
  /// the engine unusable — construct a new one. The snapshot's seed
  /// overrides Options.Seed: a snapshot *is* a position in one seeded
  /// campaign, and resuming it under another seed would be neither that
  /// campaign nor a fresh one. The thread count is free to differ — the
  /// deterministic commit protocol makes the continuation bit-identical
  /// either way.
  [[nodiscard]] bool applySnapshot(const CampaignSnapshot &S,
                                   std::string &Err);

  /// Captures the campaign state after run() returned. Meaningful for a
  /// suspended run (the resumable case); for a completed run it yields a
  /// snapshot whose resume immediately re-terminates. Single-threaded by
  /// then, so the capture is trivially quiescent — the version-stable loop
  /// inside SaturationTable::snapshot() guards the concurrent callers.
  CampaignSnapshot snapshot() const;

  /// Asks the campaign to stop at the next round-commit boundary (safe
  /// from any thread; idempotent). run() then returns a result with
  /// Suspended = true whose snapshot() resumes bit-identically. A
  /// campaign that terminates naturally first ignores the request.
  void requestSuspend() {
    SuspendRequested.store(true, std::memory_order_relaxed);
  }

private:
  struct Worker;
  struct RoundWork;

  /// One Basinhopping (or selected backend) round: per-round RNG, random
  /// start, minimize FOO_R through the worker's context.
  MinimizeResult minimizeRound(unsigned Round, Worker &W);

  /// The sequential commit body (Algo. 1 lines 8-12 plus bookkeeping).
  /// Caller holds CommitMutex. Returns false when the campaign stops at
  /// this round (the round is then not counted). Re-runs the round when
  /// its speculation was invalidated.
  bool commitLocked(RoundWork &Work, Worker &W);

  /// Claim-speculate-commit loop each pool worker runs.
  void workerLoop();

  /// Snapshot with an explicit next-round index: the periodic OnCheckpoint
  /// hook captures inside a commit slot, where the committed round count
  /// is Work.Round but NextCommit has not advanced yet. Caller must hold
  /// CommitMutex or have exclusive access (post-run snapshot()).
  CampaignSnapshot snapshotWithNext(unsigned NextRound) const;

  const Program &Prog;
  CoverMeOptions Opts;
  SaturationTable Table;
  CoverageMap SuiteCoverage;
  CampaignResult Res;
  bool Resumed = false; ///< applySnapshot() loaded a committed prefix.

  std::atomic<unsigned> NextLaunch{1};      ///< Next round index to claim.
  std::atomic<uint64_t> CommittedEvals{0};  ///< Mirror of Res.Evaluations.
  std::atomic<bool> Stopped{false};         ///< Set under CommitMutex.
  std::atomic<bool> SuspendRequested{false}; ///< requestSuspend() latch.
  std::mutex CommitMutex;
  std::condition_variable CommitCv;
  unsigned NextCommit = 1; ///< Round whose commit slot is open.
  WallTimer RunTimer; ///< Restarted by run(); WallDeadline measures it.
};

} // namespace coverme

#endif // COVERME_CORE_CAMPAIGNENGINE_H
