//===- Checkpoint.cpp - Bit-identical campaign snapshot format --------------===//

#include "core/Checkpoint.h"

#include "support/FloatBits.h"

#include <cstring>

using namespace coverme;

namespace {

const uint8_t Magic[8] = {'C', 'V', 'M', 'E', 'S', 'N', 'A', 'P'};

/// Little-endian append-only writer.
struct Writer {
  std::vector<uint8_t> Out;

  void u8(uint8_t V) { Out.push_back(V); }
  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
};

/// Bounds-checked little-endian reader: every read fails (returns false)
/// instead of walking past the input, so a truncated or length-corrupted
/// snapshot can never touch memory it does not own.
struct Reader {
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;

  bool u8(uint8_t &V) {
    if (Size - Pos < 1)
      return false;
    V = Data[Pos++];
    return true;
  }
  bool u32(uint32_t &V) {
    if (Size - Pos < 4)
      return false;
    V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(Data[Pos++]) << (8 * I);
    return true;
  }
  bool u64(uint64_t &V) {
    if (Size - Pos < 8)
      return false;
    V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(Data[Pos++]) << (8 * I);
    return true;
  }
  bool done() const { return Pos == Size; }
};

bool fail(std::string &Err, const char *Why) {
  Err = Why;
  return false;
}

} // namespace

std::vector<uint8_t> coverme::encodeSnapshot(const CampaignSnapshot &S) {
  Writer W;
  W.Out.insert(W.Out.end(), Magic, Magic + sizeof(Magic));
  W.u32(CampaignSnapshot::FormatVersion);

  W.u64(S.Seed);
  W.u32(S.NumSites);
  W.u32(S.Arity);
  W.u32(S.NextRound);
  W.u64(S.Evaluations);
  W.u32(S.StartsUsed);

  // Saturation table triple. Sizes are implied by NumSites.
  W.u64(S.Table.Version);
  for (uint8_t Arm : S.Table.Arms)
    W.u8(Arm);
  for (uint32_t Streak : S.Table.Streaks)
    W.u32(Streak);

  // Suite coverage counters.
  for (uint64_t Hits : S.Coverage.TrueHits)
    W.u64(Hits);
  for (uint64_t Hits : S.Coverage.FalseHits)
    W.u64(Hits);
  W.u64(S.Coverage.TotalHits);

  // Accepted inputs, coordinates as IEEE bit patterns.
  W.u32(static_cast<uint32_t>(S.Inputs.size()));
  for (const std::vector<double> &X : S.Inputs)
    for (double Coord : X)
      W.u64(doubleToBits(Coord));

  // Committed round log.
  W.u32(static_cast<uint32_t>(S.Rounds.size()));
  for (const RoundLog &Log : S.Rounds) {
    W.u32(Log.Round);
    W.u64(doubleToBits(Log.MinimumValue));
    W.u8(Log.Accepted ? 1 : 0);
    W.u8(Log.MarkedInfeasible ? 1 : 0);
    W.u32(Log.SaturatedArms);
  }

  // Infeasible-marked arms.
  W.u32(static_cast<uint32_t>(S.InfeasibleMarked.size()));
  for (BranchRef Ref : S.InfeasibleMarked) {
    W.u32(Ref.Site);
    W.u8(Ref.Outcome ? 1 : 0);
  }

  return W.Out;
}

bool coverme::decodeSnapshot(const uint8_t *Data, size_t Size,
                             CampaignSnapshot &Out, std::string &Err) {
  Reader R{Data, Size};
  if (Size < sizeof(Magic) || std::memcmp(Data, Magic, sizeof(Magic)) != 0)
    return fail(Err, "not a CoverMe snapshot (bad magic)");
  R.Pos = sizeof(Magic);

  uint32_t Version = 0;
  if (!R.u32(Version))
    return fail(Err, "truncated snapshot header");
  if (Version != CampaignSnapshot::FormatVersion)
    return fail(Err, "unsupported snapshot format version");

  CampaignSnapshot S;
  uint32_t NumSites = 0, Arity = 0;
  if (!R.u64(S.Seed) || !R.u32(NumSites) || !R.u32(Arity) ||
      !R.u32(S.NextRound) || !R.u64(S.Evaluations) || !R.u32(S.StartsUsed))
    return fail(Err, "truncated snapshot header");
  S.NumSites = NumSites;
  S.Arity = Arity;
  if (S.NextRound < 1)
    return fail(Err, "snapshot next-round index must be >= 1");
  // The shape header caps every section length below; reject sizes the
  // remaining input cannot possibly hold before reserving anything.
  const size_t NumArms = 2 * static_cast<size_t>(NumSites);
  if (NumArms > Size || static_cast<size_t>(NumSites) * 16 > Size)
    return fail(Err, "snapshot shape header exceeds input size");

  if (!R.u64(S.Table.Version))
    return fail(Err, "truncated saturation table");
  S.Table.Arms.resize(NumArms);
  uint64_t SetFlags = 0;
  for (uint8_t &Arm : S.Table.Arms) {
    if (!R.u8(Arm))
      return fail(Err, "truncated saturation arms");
    if (Arm > 1)
      return fail(Err, "corrupt saturation arm flag");
    SetFlags += Arm;
  }
  if (SetFlags != S.Table.Version)
    return fail(Err, "saturation version disagrees with arm flags");
  S.Table.Streaks.resize(NumArms);
  for (uint32_t &Streak : S.Table.Streaks)
    if (!R.u32(Streak))
      return fail(Err, "truncated saturation streaks");

  S.Coverage.TrueHits.resize(NumSites);
  S.Coverage.FalseHits.resize(NumSites);
  for (uint64_t &Hits : S.Coverage.TrueHits)
    if (!R.u64(Hits))
      return fail(Err, "truncated coverage counters");
  for (uint64_t &Hits : S.Coverage.FalseHits)
    if (!R.u64(Hits))
      return fail(Err, "truncated coverage counters");
  if (!R.u64(S.Coverage.TotalHits))
    return fail(Err, "truncated coverage counters");

  uint32_t NumInputs = 0;
  if (!R.u32(NumInputs))
    return fail(Err, "truncated input set");
  if (static_cast<uint64_t>(NumInputs) * Arity * 8 > Size - R.Pos)
    return fail(Err, "input-set length exceeds input size");
  S.Inputs.resize(NumInputs);
  for (std::vector<double> &X : S.Inputs) {
    X.resize(Arity);
    for (double &Coord : X) {
      uint64_t Bits = 0;
      if (!R.u64(Bits))
        return fail(Err, "truncated input set");
      Coord = bitsToDouble(Bits);
    }
  }

  uint32_t NumRounds = 0;
  if (!R.u32(NumRounds))
    return fail(Err, "truncated round log");
  if (static_cast<uint64_t>(NumRounds) * 18 > Size - R.Pos)
    return fail(Err, "round-log length exceeds input size");
  if (NumRounds != S.StartsUsed)
    return fail(Err, "round log disagrees with starts-used count");
  S.Rounds.resize(NumRounds);
  for (RoundLog &Log : S.Rounds) {
    uint64_t MinBits = 0;
    uint8_t Accepted = 0, Marked = 0;
    if (!R.u32(Log.Round) || !R.u64(MinBits) || !R.u8(Accepted) ||
        !R.u8(Marked) || !R.u32(Log.SaturatedArms))
      return fail(Err, "truncated round log");
    if (Accepted > 1 || Marked > 1)
      return fail(Err, "corrupt round-log flag");
    Log.MinimumValue = bitsToDouble(MinBits);
    Log.Accepted = Accepted != 0;
    Log.MarkedInfeasible = Marked != 0;
  }

  uint32_t NumInfeasible = 0;
  if (!R.u32(NumInfeasible))
    return fail(Err, "truncated infeasible-arm list");
  if (static_cast<uint64_t>(NumInfeasible) * 5 > Size - R.Pos)
    return fail(Err, "infeasible-arm list exceeds input size");
  S.InfeasibleMarked.resize(NumInfeasible);
  for (BranchRef &Ref : S.InfeasibleMarked) {
    uint8_t Outcome = 0;
    if (!R.u32(Ref.Site) || !R.u8(Outcome))
      return fail(Err, "truncated infeasible-arm list");
    if (Outcome > 1 || Ref.Site >= NumSites)
      return fail(Err, "corrupt infeasible-arm entry");
    Ref.Outcome = Outcome != 0;
  }

  if (!R.done())
    return fail(Err, "trailing bytes after snapshot payload");

  Out = std::move(S);
  return true;
}

bool coverme::decodeSnapshot(const std::vector<uint8_t> &Bytes,
                             CampaignSnapshot &Out, std::string &Err) {
  return decodeSnapshot(Bytes.data(), Bytes.size(), Out, Err);
}

uint64_t coverme::resultDigest(const CampaignResult &Res) {
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](uint64_t V) {
    for (int I = 0; I < 8; ++I) {
      H ^= (V >> (8 * I)) & 0xff;
      H *= 1099511628211ull;
    }
  };
  for (const auto &Input : Res.Inputs) {
    Mix(Input.size());
    for (double Coord : Input)
      Mix(doubleToBits(Coord));
  }
  for (const RoundLog &Log : Res.Rounds) {
    Mix(Log.Round);
    Mix(doubleToBits(Log.MinimumValue));
    Mix(Log.Accepted ? 1 : 0);
    Mix(Log.MarkedInfeasible ? 1 : 0);
    Mix(Log.SaturatedArms);
  }
  Mix(Res.Evaluations);
  Mix(Res.StartsUsed);
  Mix(Res.CoveredBranches);
  Mix(Res.TotalBranches);
  for (BranchRef Ref : Res.InfeasibleMarked) {
    Mix(Ref.Site);
    Mix(Ref.Outcome ? 1 : 0);
  }
  return H;
}
