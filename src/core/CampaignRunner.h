//===- CampaignRunner.h - Multi-program campaign sharding -----------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table-2/Table-3 style sweeps run one independent campaign per subject —
/// 40 fdlibm ports, ten interpreted sources — and the paper's protocol
/// seeds each subject separately, so subjects shard perfectly. The runner
/// owns a support/ThreadPool and distributes whole subjects across it,
/// returning results in subject order regardless of completion order;
/// because every campaign is deterministic under its seed (and
/// CampaignEngine is thread-count invariant), a sweep's results are
/// identical for any Threads value.
///
/// Two levels compose: the runner shards *subjects*; each subject's engine
/// can additionally run its *rounds* on CoverMeOptions::Threads workers.
/// Sweeps over many subjects should parallelize here (better load balance,
/// works for non-reentrant interpreted bodies); single huge campaigns
/// should use engine threads.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_CORE_CAMPAIGNRUNNER_H
#define COVERME_CORE_CAMPAIGNRUNNER_H

#include "core/CoverMe.h"
#include "support/ThreadPool.h"

#include <mutex>

namespace coverme {

/// Knobs for a multi-program sweep.
struct CampaignRunnerOptions {
  /// Subject-shard workers; 0 = one per hardware core.
  unsigned Threads = 0;

  /// Campaign options applied to every subject (seed, budgets, backend —
  /// and engine threads *within* each subject, usually left at 1 when
  /// sharding many subjects).
  CoverMeOptions Campaign;
};

/// Invoked as each subject finishes (completion order, not subject order).
/// Calls are serialized by the runner, so implementations may print.
using SubjectProgressFn =
    std::function<void(size_t Index, const Program &P,
                       const CampaignResult &R)>;

/// Shards whole subjects across a worker pool.
class CampaignRunner {
public:
  explicit CampaignRunner(CampaignRunnerOptions Opts = {});

  /// Runs one campaign per program; Results[I] belongs to Subjects[I].
  std::vector<CampaignResult>
  run(const std::vector<const Program *> &Subjects,
      const SubjectProgressFn &Progress = nullptr);

  /// Convenience overload over a whole registry, in registry order.
  std::vector<CampaignResult> run(const ProgramRegistry &Registry,
                                  const SubjectProgressFn &Progress = nullptr);

  /// Generic deterministic shard: evaluates Work(I) for I in [0, N) across
  /// the pool, returning results in index order. R must be default-
  /// constructible. Benches use this to shard whole protocol rows (CoverMe
  /// plus its baselines) instead of bare campaigns.
  template <typename R>
  std::vector<R> map(size_t N, const std::function<R(size_t)> &Work) {
    std::vector<R> Results(N);
    Pool.parallelFor(N, [&](size_t I) { Results[I] = Work(I); });
    return Results;
  }

  /// Number of shard workers.
  unsigned threads() const { return Pool.size(); }

private:
  CampaignRunnerOptions Opts;
  ThreadPool Pool;
  std::mutex ProgressMutex;
};

} // namespace coverme

#endif // COVERME_CORE_CAMPAIGNRUNNER_H
