//===- Instrumenter.cpp - Source-to-source pen injection --------------------===//

#include "instrument/Instrumenter.h"

#include "instrument/Lexer.h"

#include <cassert>
#include <cctype>

using namespace coverme;
using namespace coverme::instrument;

namespace {

/// A pending text replacement [Begin, End) -> Replacement.
struct Edit {
  size_t Begin = 0;
  size_t End = 0;
  std::string Replacement;
};

const char *opConstantName(CmpOp Op) {
  switch (Op) {
  case CmpOp::EQ:
    return "CVM_OP_EQ";
  case CmpOp::NE:
    return "CVM_OP_NE";
  case CmpOp::LT:
    return "CVM_OP_LT";
  case CmpOp::LE:
    return "CVM_OP_LE";
  case CmpOp::GT:
    return "CVM_OP_GT";
  case CmpOp::GE:
    return "CVM_OP_GE";
  }
  assert(false && "unknown CmpOp");
  return "CVM_OP_EQ";
}

bool isComparisonPunct(const Token &Tok, CmpOp &Op) {
  if (!Tok.is(TokenKind::Punct))
    return false;
  if (Tok.Text == "==")
    Op = CmpOp::EQ;
  else if (Tok.Text == "!=")
    Op = CmpOp::NE;
  else if (Tok.Text == "<")
    Op = CmpOp::LT;
  else if (Tok.Text == "<=")
    Op = CmpOp::LE;
  else if (Tok.Text == ">")
    Op = CmpOp::GT;
  else if (Tok.Text == ">=")
    Op = CmpOp::GE;
  else
    return false;
  return true;
}

/// Finds the index of the token matching the opening bracket at \p Open
/// ("(" vs ")", "{" vs "}"). Returns the tokens' size when unbalanced.
size_t findMatching(const std::vector<Token> &Tokens, size_t Open,
                    const char *OpenSpelling, const char *CloseSpelling) {
  int Depth = 0;
  for (size_t I = Open; I < Tokens.size(); ++I) {
    if (Tokens[I].isPunct(OpenSpelling))
      ++Depth;
    else if (Tokens[I].isPunct(CloseSpelling)) {
      if (--Depth == 0)
        return I;
    }
  }
  return Tokens.size();
}

/// Scans the token range (Begin, End) for a single top-level comparison.
/// Rejects ranges with top-level &&, ||, ?:, comma, or assignment — those
/// are outside the Def. 3.1(b) subset. Returns the operator index or 0.
size_t findTopLevelComparison(const std::vector<Token> &Tokens, size_t Begin,
                              size_t End, CmpOp &Op) {
  int Depth = 0;
  size_t Found = 0;
  for (size_t I = Begin; I < End; ++I) {
    const Token &Tok = Tokens[I];
    if (Tok.isPunct("(") || Tok.isPunct("["))
      ++Depth;
    else if (Tok.isPunct(")") || Tok.isPunct("]"))
      --Depth;
    if (Depth != 0)
      continue;
    if (Tok.isPunct("&&") || Tok.isPunct("||") || Tok.isPunct("?") ||
        Tok.isPunct(",") || Tok.isPunct("=") || Tok.isPunct(";"))
      return 0;
    CmpOp Candidate;
    if (isComparisonPunct(Tok, Candidate)) {
      if (Found != 0)
        return 0; // more than one comparison: chained, unsupported
      Found = I;
      Op = Candidate;
    }
  }
  return Found;
}

} // namespace

std::string
coverme::instrument::instrumentationPrologue(const std::string &HookName) {
  std::string Out;
  Out += "/* CoverMe instrumentation prologue: the hook evaluates\n";
  Out += " * r = pen(i, op, a, b) and returns the branch outcome. */\n";
  Out += "#define CVM_OP_EQ 0\n";
  Out += "#define CVM_OP_NE 1\n";
  Out += "#define CVM_OP_LT 2\n";
  Out += "#define CVM_OP_LE 3\n";
  Out += "#define CVM_OP_GT 4\n";
  Out += "#define CVM_OP_GE 5\n";
  Out += "extern int " + HookName + "(int site, int op, double lhs, double rhs);\n\n";
  return Out;
}

InstrumentResult
coverme::instrument::instrumentSource(const std::string &Source,
                                      const InstrumenterOptions &Opts) {
  InstrumentResult Res;
  std::vector<Token> Tokens = lex(Source);
  std::vector<Edit> Edits;

  // Locate the instrumented region: the whole unit, or the entry
  // function's body when one is named.
  size_t RegionBegin = 0, RegionEnd = Tokens.size();
  if (!Opts.EntryFunction.empty()) {
    RegionBegin = RegionEnd = 0;
    for (size_t I = 0; I + 1 < Tokens.size(); ++I) {
      if (!Tokens[I].isIdentifier(Opts.EntryFunction.c_str()) ||
          !Tokens[I + 1].isPunct("("))
        continue;
      size_t Close = findMatching(Tokens, I + 1, "(", ")");
      if (Close + 1 >= Tokens.size() || !Tokens[Close + 1].isPunct("{"))
        continue; // a call or declaration, not a definition
      RegionBegin = Close + 1;
      RegionEnd = findMatching(Tokens, Close + 1, "{", "}");
      break;
    }
  }

  auto InstrumentCondition = [&](size_t OpenParen, size_t CloseParen,
                                 const char *Statement, unsigned Line) {
    CmpOp Op = CmpOp::EQ;
    size_t OpIdx =
        findTopLevelComparison(Tokens, OpenParen + 1, CloseParen, Op);
    if (OpIdx == 0 || OpIdx == OpenParen + 1 || OpIdx + 1 == CloseParen) {
      ++Res.SkippedConditionals;
      return;
    }
    SiteInfo Site;
    Site.Id = static_cast<uint32_t>(Res.Sites.size());
    Site.Op = Op;
    Site.Line = Line;
    Site.Statement = Statement;
    size_t LhsBegin = Tokens[OpenParen + 1].Offset;
    size_t LhsEnd = Tokens[OpIdx].Offset;
    size_t RhsBegin = Tokens[OpIdx].endOffset();
    size_t RhsEnd = Tokens[CloseParen].Offset;
    Site.Lhs = Source.substr(LhsBegin, LhsEnd - LhsBegin);
    Site.Rhs = Source.substr(RhsBegin, RhsEnd - RhsBegin);
    // Trim trailing/leading whitespace for the report (not the rewrite).
    auto Trim = [](std::string &S) {
      while (!S.empty() && std::isspace(static_cast<unsigned char>(S.back())))
        S.pop_back();
      while (!S.empty() && std::isspace(static_cast<unsigned char>(S.front())))
        S.erase(S.begin());
    };
    Trim(Site.Lhs);
    Trim(Site.Rhs);

    std::string Call = Opts.HookName + "(" + std::to_string(Site.Id) + ", " +
                       opConstantName(Op) + ", (double)(" + Site.Lhs +
                       "), (double)(" + Site.Rhs + "))";
    Edits.push_back({LhsBegin, RhsEnd, std::move(Call)});
    Res.Sites.push_back(std::move(Site));
  };

  for (size_t I = RegionBegin; I < RegionEnd; ++I) {
    const Token &Tok = Tokens[I];
    if (Tok.isIdentifier("if") || Tok.isIdentifier("while")) {
      if (I + 1 >= Tokens.size() || !Tokens[I + 1].isPunct("("))
        continue;
      size_t Close = findMatching(Tokens, I + 1, "(", ")");
      if (Close >= RegionEnd)
        continue;
      InstrumentCondition(I + 1, Close, Tok.Text == "if" ? "if" : "while",
                          Tok.Line);
      continue;
    }
    if (Tok.isIdentifier("for")) {
      if (I + 1 >= Tokens.size() || !Tokens[I + 1].isPunct("("))
        continue;
      size_t Close = findMatching(Tokens, I + 1, "(", ")");
      if (Close >= RegionEnd)
        continue;
      // The loop condition is between the two top-level semicolons.
      size_t FirstSemi = 0, SecondSemi = 0;
      int Depth = 0;
      for (size_t J = I + 1; J < Close; ++J) {
        if (Tokens[J].isPunct("(") || Tokens[J].isPunct("["))
          ++Depth;
        else if (Tokens[J].isPunct(")") || Tokens[J].isPunct("]"))
          --Depth;
        else if (Depth == 1 && Tokens[J].isPunct(";")) {
          if (!FirstSemi)
            FirstSemi = J;
          else if (!SecondSemi) {
            SecondSemi = J;
            break;
          }
        }
      }
      if (FirstSemi && SecondSemi && SecondSemi > FirstSemi + 1)
        InstrumentCondition(FirstSemi, SecondSemi, "for", Tok.Line);
      else
        ++Res.SkippedConditionals;
      continue;
    }
  }

  // Apply the edits back-to-front so earlier offsets stay valid.
  std::string Out = Source;
  for (auto It = Edits.rbegin(); It != Edits.rend(); ++It)
    Out.replace(It->Begin, It->End - It->Begin, It->Replacement);
  if (Opts.EmitPrologue)
    Out = instrumentationPrologue(Opts.HookName) + Out;
  Res.Source = std::move(Out);
  return Res;
}
