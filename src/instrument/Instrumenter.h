//===- Instrumenter.h - Source-to-source pen injection --------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static half of CoverMe's frontend (Step 1 of Algo. 1) as a
/// source-to-source transformation: for every conditional statement whose
/// condition is a single arithmetic comparison `a op b`, inject the
/// distance-reporting call the paper's LLVM pass would insert — the
/// rewritten condition
///
///   if (cvm_cond(i, CVM_OP_xx, (double)(a), (double)(b)))
///
/// evaluates `r = pen(i, op, a, b)` and returns the original outcome, so
/// the transformed program is FOO_I and linking it against the runtime
/// yields FOO_R. Non-floating-point comparisons are promoted via the
/// `(double)` casts (Sect. 5.3); conditions the subset cannot express
/// (compound &&/||, pointer tests, function calls with side conditions)
/// are left untouched, exactly as CoverMe ignores unsupported conditions.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_INSTRUMENT_INSTRUMENTER_H
#define COVERME_INSTRUMENT_INSTRUMENTER_H

#include "runtime/BranchDistance.h"

#include <string>
#include <vector>

namespace coverme {
namespace instrument {

/// One injected site.
struct SiteInfo {
  uint32_t Id = 0;       ///< Sequential site id (the pen's first argument).
  CmpOp Op = CmpOp::EQ;  ///< Comparison operator at the site.
  unsigned Line = 0;     ///< Source line of the conditional.
  std::string Lhs;       ///< Exact source text of the left operand.
  std::string Rhs;       ///< Exact source text of the right operand.
  std::string Statement; ///< "if", "while", or "for".
};

/// Result of instrumenting a translation unit.
struct InstrumentResult {
  std::string Source;            ///< Rewritten source text.
  std::vector<SiteInfo> Sites;   ///< Injected sites, in source order.
  unsigned SkippedConditionals = 0; ///< Conditionals left untouched.
};

struct InstrumenterOptions {
  /// When non-empty, only the body of this function is instrumented (the
  /// paper instruments the entry function; Sect. 5.3 "Handling Function
  /// Calls"). Empty means every function in the unit.
  std::string EntryFunction;

  /// Name of the injected hook; the default matches the C shim exposed in
  /// runtime/CHooks.h.
  std::string HookName = "cvm_cond";

  /// Emit the extern declaration prologue at the top of the output.
  bool EmitPrologue = true;
};

/// Rewrites \p Source per the options. Never fails: anything outside the
/// supported subset passes through unchanged and is counted as skipped.
InstrumentResult instrumentSource(const std::string &Source,
                                  const InstrumenterOptions &Opts = {});

/// The prologue emitted before instrumented code: hook declaration plus
/// the operator constants (values match the CmpOp enumeration).
std::string instrumentationPrologue(const std::string &HookName);

} // namespace instrument
} // namespace coverme

#endif // COVERME_INSTRUMENT_INSTRUMENTER_H
