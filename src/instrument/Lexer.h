//===- Lexer.h - Tokenizer for the mini-C instrumenter --------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lossless tokenizer for the C subset the instrumenter rewrites. Tokens
/// carry their exact source offsets so the rewriter can splice text without
/// disturbing anything it does not understand (comments, preprocessor
/// lines, and string literals are skipped but never altered).
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_INSTRUMENT_LEXER_H
#define COVERME_INSTRUMENT_LEXER_H

#include <cstddef>
#include <string>
#include <vector>

namespace coverme {
namespace instrument {

/// Lexical categories; punctuation keeps its exact spelling.
enum class TokenKind {
  Identifier, ///< Names and keywords (keywords are not distinguished).
  Number,     ///< Integer or floating literal, including hex.
  Punct,      ///< Operators and separators, maximal munch.
  String,     ///< "..." literal (contents preserved verbatim).
  Char,       ///< '...' literal.
  EndOfFile,
};

/// One token with its exact location in the original buffer.
struct Token {
  TokenKind Kind = TokenKind::EndOfFile;
  std::string Text;  ///< Exact source spelling.
  size_t Offset = 0; ///< Byte offset of the first character.
  unsigned Line = 1; ///< 1-based source line.

  bool is(TokenKind K) const { return Kind == K; }
  bool isPunct(const char *Spelling) const {
    return Kind == TokenKind::Punct && Text == Spelling;
  }
  bool isIdentifier(const char *Name) const {
    return Kind == TokenKind::Identifier && Text == Name;
  }
  size_t endOffset() const { return Offset + Text.size(); }
};

/// Tokenizes \p Source. Comments and preprocessor directives are skipped
/// (they remain in the buffer; they just produce no tokens). Unknown bytes
/// become single-character Punct tokens, so lexing never fails.
std::vector<Token> lex(const std::string &Source);

} // namespace instrument
} // namespace coverme

#endif // COVERME_INSTRUMENT_LEXER_H
