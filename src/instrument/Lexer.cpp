//===- Lexer.cpp - Tokenizer for the mini-C instrumenter --------------------===//

#include "instrument/Lexer.h"

#include <cctype>

using namespace coverme;
using namespace coverme::instrument;

namespace {

/// Multi-character punctuators, longest first for maximal munch.
const char *Punctuators[] = {
    "<<=", ">>=", "...", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->",
};

} // namespace

std::vector<Token> coverme::instrument::lex(const std::string &Source) {
  std::vector<Token> Tokens;
  size_t I = 0;
  unsigned Line = 1;
  const size_t N = Source.size();

  auto Peek = [&](size_t Ahead = 0) -> char {
    return I + Ahead < N ? Source[I + Ahead] : '\0';
  };

  while (I < N) {
    char C = Source[I];
    if (C == '\n') {
      ++Line;
      ++I;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    // Line comment.
    if (C == '/' && Peek(1) == '/') {
      while (I < N && Source[I] != '\n')
        ++I;
      continue;
    }
    // Block comment.
    if (C == '/' && Peek(1) == '*') {
      I += 2;
      while (I + 1 < N && !(Source[I] == '*' && Source[I + 1] == '/')) {
        if (Source[I] == '\n')
          ++Line;
        ++I;
      }
      I = I + 2 <= N ? I + 2 : N;
      continue;
    }
    // Preprocessor directive: skip to end of (possibly continued) line.
    if (C == '#' &&
        (Tokens.empty() || Tokens.back().Line != Line)) {
      while (I < N && Source[I] != '\n') {
        if (Source[I] == '\\' && I + 1 < N && Source[I + 1] == '\n') {
          ++Line;
          I += 2;
          continue;
        }
        ++I;
      }
      continue;
    }
    // Identifier / keyword.
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = I;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '_'))
        ++I;
      Tokens.push_back({TokenKind::Identifier,
                        Source.substr(Start, I - Start), Start, Line});
      continue;
    }
    // Number (integer, hex, or float, with exponent and suffixes).
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
      size_t Start = I;
      bool Hex = C == '0' && (Peek(1) == 'x' || Peek(1) == 'X');
      if (Hex)
        I += 2;
      while (I < N) {
        char D = Source[I];
        if (std::isalnum(static_cast<unsigned char>(D)) || D == '.') {
          ++I;
          continue;
        }
        // Exponent sign: 1e-5 or 0x1p-4.
        if ((D == '+' || D == '-') && I > Start) {
          char Prev = Source[I - 1];
          if (Prev == 'e' || Prev == 'E' || (Hex && (Prev == 'p' || Prev == 'P'))) {
            ++I;
            continue;
          }
        }
        break;
      }
      Tokens.push_back({TokenKind::Number, Source.substr(Start, I - Start),
                        Start, Line});
      continue;
    }
    // String literal.
    if (C == '"') {
      size_t Start = I++;
      while (I < N && Source[I] != '"') {
        if (Source[I] == '\\')
          ++I;
        if (I < N && Source[I] == '\n')
          ++Line;
        ++I;
      }
      I = I < N ? I + 1 : N;
      Tokens.push_back({TokenKind::String, Source.substr(Start, I - Start),
                        Start, Line});
      continue;
    }
    // Character literal.
    if (C == '\'') {
      size_t Start = I++;
      while (I < N && Source[I] != '\'') {
        if (Source[I] == '\\')
          ++I;
        ++I;
      }
      I = I < N ? I + 1 : N;
      Tokens.push_back({TokenKind::Char, Source.substr(Start, I - Start),
                        Start, Line});
      continue;
    }
    // Punctuation: maximal munch over the multi-character table.
    bool Matched = false;
    for (const char *P : Punctuators) {
      size_t Len = std::char_traits<char>::length(P);
      if (Source.compare(I, Len, P) == 0) {
        Tokens.push_back({TokenKind::Punct, P, I, Line});
        I += Len;
        Matched = true;
        break;
      }
    }
    if (Matched)
      continue;
    Tokens.push_back({TokenKind::Punct, std::string(1, C), I, Line});
    ++I;
  }

  Tokens.push_back({TokenKind::EndOfFile, "", N, Line});
  return Tokens;
}
