//===- SimulatedAnnealing.h - Annealed Metropolis sampling ----------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic simulated annealing [Kirkpatrick et al. '83] over R^n. Sect. 4 of
/// the paper notes Basinhopping's Metropolis rule is annealing with T=1;
/// this standalone annealer provides the comparison point for the optimizer
/// ablation bench and a second "any black box works" demonstration.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_OPTIM_SIMULATEDANNEALING_H
#define COVERME_OPTIM_SIMULATEDANNEALING_H

#include "optim/Minimizer.h"
#include "support/Random.h"

namespace coverme {

/// Knobs for simulated annealing.
struct AnnealingOptions {
  unsigned NumSteps = 2000;    ///< Metropolis steps.
  double InitialTemp = 10.0;   ///< Starting temperature.
  double FinalTemp = 1e-4;     ///< Temperature at the final step.
  double StepSigma = 1.0;      ///< Gaussian proposal scale.
  double JumpProbability = 0.2; ///< Exponent-uniform coordinate jumps.
};

/// Simulated-annealing global minimizer (no inner local minimizer).
/// Thread-compatible like the local minimizers: the proposal buffers are
/// per-instance and reused across runs, so each step is allocation-free.
class SimulatedAnnealingMinimizer {
public:
  explicit SimulatedAnnealingMinimizer(AnnealingOptions Opts = {})
      : Opts(Opts) {}

  MinimizeResult minimize(ObjectiveFn Fn, std::vector<double> Start,
                          Rng &Rng) const;

  const AnnealingOptions &options() const { return Opts; }

private:
  AnnealingOptions Opts;
  struct Workspace {
    std::vector<double> Cur;
    std::vector<double> Proposal;
  };
  mutable Workspace WS;
};

} // namespace coverme

#endif // COVERME_OPTIM_SIMULATEDANNEALING_H
