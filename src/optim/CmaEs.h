//===- CmaEs.h - Covariance Matrix Adaptation Evolution Strategy ----------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CMA-ES [Hansen & Ostermeier] as an additional global backend for Step 3
/// of Algorithm 1. The paper's theoretical guarantee (Thm. 4.3) makes the
/// unconstrained-programming backend a black box, so any global minimizer
/// can drive the campaign; CMA-ES is the canonical derivative-free
/// evolution strategy and exercises that interchangeability claim with a
/// population-based method, in contrast to Basinhopping's single-chain
/// MCMC. Implemented from scratch: rank-mu/rank-one covariance updates,
/// cumulative step-size adaptation, and a Jacobi eigendecomposition (the
/// problem dimension here is the function arity — one or two — so the
/// O(n^3)-per-sweep solver is a non-issue).
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_OPTIM_CMAES_H
#define COVERME_OPTIM_CMAES_H

#include "optim/Minimizer.h"
#include "support/Random.h"

#include <functional>

namespace coverme {

/// Invoked after every generation with the best point so far; returning
/// true stops the run (the same early-exit protocol as Basinhopping).
using GenerationCallback =
    std::function<bool(const std::vector<double> &X, double Fx)>;

/// CMA-ES knobs. Defaults follow Hansen's reference parameterization.
struct CmaEsOptions {
  unsigned MaxGenerations = 60; ///< Generation cap per run.
  unsigned Lambda = 0;          ///< Population size; 0 = 4 + 3*ln(n).
  double InitialSigma = 2.0;    ///< Initial global step size.
  double FTol = 1e-14;          ///< Spread-based convergence test.
  uint64_t MaxEvaluations = 50000; ///< Hard objective-call budget.
};

/// Covariance Matrix Adaptation Evolution Strategy. Each generation's
/// lambda candidates are sampled into a flat row-major population matrix
/// and evaluated through the objective's batch path; the per-instance
/// workspace is reused across runs (thread-compatible, not thread-safe).
class CmaEsMinimizer {
public:
  explicit CmaEsMinimizer(CmaEsOptions Opts = {}) : Opts(Opts) {}

  /// Minimizes \p Fn from mean \p Start. \p Callback may be null.
  MinimizeResult minimize(ObjectiveFn Fn, std::vector<double> Start,
                          Rng &Rng,
                          const GenerationCallback &Callback = nullptr) const;

  const CmaEsOptions &options() const { return Opts; }

private:
  CmaEsOptions Opts;
  /// Flat per-instance arena: strategy state plus the lambda x N
  /// population/pre-image matrices. Sized per run; the generation loop
  /// never allocates.
  struct Workspace {
    std::vector<double> Weights, Mean, OldMean, MeanZ, DiagD, Pc, Ps;
    std::vector<double> C, B;       ///< N x N symmetric matrices, row-major.
    std::vector<double> PopX, PopZ; ///< Lambda x N, row-major.
    std::vector<double> PopFx;      ///< Lambda values.
    std::vector<unsigned> Order;    ///< Fitness-sorted candidate indices.
    std::vector<double> EigenScratch; ///< Jacobi working copy of C.
  };
  mutable Workspace WS;
};

} // namespace coverme

#endif // COVERME_OPTIM_CMAES_H
