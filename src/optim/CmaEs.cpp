//===- CmaEs.cpp - Covariance Matrix Adaptation Evolution Strategy --------===//

#include "optim/CmaEs.h"

#include <algorithm>
#include <cmath>
#include <numeric>

using namespace coverme;

namespace {

/// Dense symmetric matrix of order N stored row-major.
class SymMatrix {
public:
  explicit SymMatrix(unsigned N) : N(N), Data(N * N, 0.0) {}

  double &at(unsigned I, unsigned J) { return Data[I * N + J]; }
  double at(unsigned I, unsigned J) const { return Data[I * N + J]; }
  unsigned order() const { return N; }

  void setIdentity() {
    std::fill(Data.begin(), Data.end(), 0.0);
    for (unsigned I = 0; I < N; ++I)
      at(I, I) = 1.0;
  }

private:
  unsigned N;
  std::vector<double> Data;
};

/// Cyclic Jacobi eigendecomposition of a symmetric matrix: A = B D B^T with
/// eigenvalues in \p Eigenvalues and eigenvectors in \p B's columns. The
/// matrices here are tiny (program arity), so a fixed sweep count suffices.
void jacobiEigen(const SymMatrix &A, SymMatrix &B,
                 std::vector<double> &Eigenvalues) {
  const unsigned N = A.order();
  SymMatrix D = A;
  B.setIdentity();
  for (unsigned Sweep = 0; Sweep < 32; ++Sweep) {
    double Off = 0.0;
    for (unsigned I = 0; I < N; ++I)
      for (unsigned J = I + 1; J < N; ++J)
        Off += D.at(I, J) * D.at(I, J);
    if (Off < 1e-30)
      break;
    for (unsigned P = 0; P < N; ++P) {
      for (unsigned Q = P + 1; Q < N; ++Q) {
        if (std::fabs(D.at(P, Q)) < 1e-300)
          continue;
        double Theta = (D.at(Q, Q) - D.at(P, P)) / (2.0 * D.at(P, Q));
        double T = (Theta >= 0 ? 1.0 : -1.0) /
                   (std::fabs(Theta) + std::sqrt(Theta * Theta + 1.0));
        double C = 1.0 / std::sqrt(T * T + 1.0);
        double S = T * C;
        for (unsigned K = 0; K < N; ++K) {
          double Dkp = D.at(K, P), Dkq = D.at(K, Q);
          D.at(K, P) = C * Dkp - S * Dkq;
          D.at(K, Q) = S * Dkp + C * Dkq;
        }
        for (unsigned K = 0; K < N; ++K) {
          double Dpk = D.at(P, K), Dqk = D.at(Q, K);
          D.at(P, K) = C * Dpk - S * Dqk;
          D.at(Q, K) = S * Dpk + C * Dqk;
        }
        for (unsigned K = 0; K < N; ++K) {
          double Bkp = B.at(K, P), Bkq = B.at(K, Q);
          B.at(K, P) = C * Bkp - S * Bkq;
          B.at(K, Q) = S * Bkp + C * Bkq;
        }
      }
    }
  }
  Eigenvalues.resize(N);
  for (unsigned I = 0; I < N; ++I)
    Eigenvalues[I] = D.at(I, I);
}

} // namespace

MinimizeResult
CmaEsMinimizer::minimize(const Objective &Fn, std::vector<double> Start,
                         Rng &Rng, const GenerationCallback &Callback) const {
  MinimizeResult Result;
  Result.X = Start;
  const unsigned N = static_cast<unsigned>(Start.size());
  if (N == 0)
    return Result;

  CountingObjective Counted(Fn);
  // Guard the mean against non-finite coordinates (the campaign's wide
  // sampler emits infinities); CMA-ES needs a finite anchor.
  std::vector<double> Mean = Start;
  for (double &M : Mean)
    if (!std::isfinite(M))
      M = 0.0;

  // --- strategy parameters (Hansen's defaults) ---------------------------
  const unsigned Lambda =
      Opts.Lambda ? Opts.Lambda
                  : 4 + static_cast<unsigned>(3.0 * std::log(N));
  const unsigned Mu = Lambda / 2;
  std::vector<double> Weights(Mu);
  for (unsigned I = 0; I < Mu; ++I)
    Weights[I] = std::log(Mu + 0.5) - std::log(I + 1.0);
  double WeightSum = std::accumulate(Weights.begin(), Weights.end(), 0.0);
  for (double &W : Weights)
    W /= WeightSum;
  double MuEff = 0.0;
  for (double W : Weights)
    MuEff += W * W;
  MuEff = 1.0 / MuEff;

  const double Cc = (4.0 + MuEff / N) / (N + 4.0 + 2.0 * MuEff / N);
  const double Cs = (MuEff + 2.0) / (N + MuEff + 5.0);
  const double C1 = 2.0 / ((N + 1.3) * (N + 1.3) + MuEff);
  const double CMu = std::min(
      1.0 - C1, 2.0 * (MuEff - 2.0 + 1.0 / MuEff) /
                    ((N + 2.0) * (N + 2.0) + MuEff));
  const double Damps =
      1.0 + 2.0 * std::max(0.0, std::sqrt((MuEff - 1.0) / (N + 1.0)) - 1.0) +
      Cs;
  // E||N(0,I)||, Hansen's approximation.
  const double ChiN =
      std::sqrt(static_cast<double>(N)) *
      (1.0 - 1.0 / (4.0 * N) + 1.0 / (21.0 * N * N));

  double Sigma = Opts.InitialSigma;
  SymMatrix C(N), B(N);
  C.setIdentity();
  B.setIdentity();
  std::vector<double> DiagD(N, 1.0);
  std::vector<double> Pc(N, 0.0), Ps(N, 0.0);

  Result.Fx = Counted(Mean);
  Result.X = Mean;

  struct Candidate {
    std::vector<double> X; ///< Sampled point.
    std::vector<double> Z; ///< Its N(0,I) pre-image.
    double Fx = 0.0;
  };
  std::vector<Candidate> Pop(Lambda);

  for (unsigned Gen = 0; Gen < Opts.MaxGenerations; ++Gen) {
    if (Counted.numEvals() + Lambda > Opts.MaxEvaluations)
      break;
    ++Result.Iterations;

    // Sample lambda candidates x = m + sigma * B * diag(sqrt(d)) * z.
    for (Candidate &Cand : Pop) {
      Cand.Z.resize(N);
      Cand.X.assign(Mean.begin(), Mean.end());
      for (unsigned I = 0; I < N; ++I)
        Cand.Z[I] = Rng.gaussian();
      for (unsigned I = 0; I < N; ++I) {
        double Step = 0.0;
        for (unsigned J = 0; J < N; ++J)
          Step += B.at(I, J) * std::sqrt(std::max(DiagD[J], 0.0)) * Cand.Z[J];
        Cand.X[I] += Sigma * Step;
      }
      Cand.Fx = Counted(Cand.X);
    }

    std::sort(Pop.begin(), Pop.end(),
              [](const Candidate &L, const Candidate &R) {
                return L.Fx < R.Fx;
              });
    if (Pop.front().Fx < Result.Fx) {
      Result.Fx = Pop.front().Fx;
      Result.X = Pop.front().X;
    }
    if (Callback && Callback(Result.X, Result.Fx)) {
      Result.StoppedByCallback = true;
      break;
    }

    // Recombine: new mean and its pre-image.
    std::vector<double> OldMean = Mean;
    std::vector<double> MeanZ(N, 0.0);
    for (unsigned I = 0; I < N; ++I) {
      double M = 0.0;
      for (unsigned K = 0; K < Mu; ++K)
        M += Weights[K] * Pop[K].X[I];
      Mean[I] = M;
      double Z = 0.0;
      for (unsigned K = 0; K < Mu; ++K)
        Z += Weights[K] * Pop[K].Z[I];
      MeanZ[I] = Z;
    }

    // Step-size path: ps <- (1-cs) ps + sqrt(cs(2-cs) mueff) B * meanZ.
    double PsNorm = 0.0;
    for (unsigned I = 0; I < N; ++I) {
      double BZ = 0.0;
      for (unsigned J = 0; J < N; ++J)
        BZ += B.at(I, J) * MeanZ[J];
      Ps[I] = (1.0 - Cs) * Ps[I] +
              std::sqrt(Cs * (2.0 - Cs) * MuEff) * BZ;
      PsNorm += Ps[I] * Ps[I];
    }
    PsNorm = std::sqrt(PsNorm);

    // Covariance path: pc <- (1-cc) pc + h_sigma sqrt(cc(2-cc) mueff) y.
    bool HSigma = PsNorm / std::sqrt(1.0 - std::pow(1.0 - Cs,
                                                    2.0 * (Gen + 1))) /
                      ChiN <
                  1.4 + 2.0 / (N + 1.0);
    for (unsigned I = 0; I < N; ++I) {
      double Y = (Mean[I] - OldMean[I]) / Sigma;
      Pc[I] = (1.0 - Cc) * Pc[I] +
              (HSigma ? std::sqrt(Cc * (2.0 - Cc) * MuEff) * Y : 0.0);
    }

    // Covariance update: rank-one (pc pc^T) + rank-mu (weighted y y^T).
    for (unsigned I = 0; I < N; ++I) {
      for (unsigned J = 0; J < N; ++J) {
        double RankMu = 0.0;
        for (unsigned K = 0; K < Mu; ++K) {
          double Yi = (Pop[K].X[I] - OldMean[I]) / Sigma;
          double Yj = (Pop[K].X[J] - OldMean[J]) / Sigma;
          RankMu += Weights[K] * Yi * Yj;
        }
        double Old = C.at(I, J);
        C.at(I, J) = (1.0 - C1 - CMu) * Old + C1 * Pc[I] * Pc[J] +
                     CMu * RankMu;
      }
    }

    // Step size: log sigma += cs/damps (||ps||/chiN - 1).
    Sigma *= std::exp((Cs / Damps) * (PsNorm / ChiN - 1.0));
    if (!std::isfinite(Sigma) || Sigma > 1e12)
      Sigma = Opts.InitialSigma;
    if (Sigma < 1e-18)
      break; // collapsed: converged in place

    jacobiEigen(C, B, DiagD);
    // Numerical floor: a degenerate axis stalls sampling entirely.
    for (double &D : DiagD)
      if (!(D > 1e-20))
        D = 1e-20;

    // Convergence: population spread below tolerance.
    double Spread = Pop.back().Fx - Pop.front().Fx;
    if (Spread >= 0.0 && Spread < Opts.FTol &&
        std::fabs(Pop.front().Fx) < Opts.FTol) {
      Result.Converged = true;
      break;
    }
  }

  Result.NumEvals = Counted.numEvals();
  return Result;
}
