//===- CmaEs.cpp - Covariance Matrix Adaptation Evolution Strategy --------===//

#include "optim/CmaEs.h"

#include <algorithm>
#include <cmath>
#include <numeric>

using namespace coverme;

namespace {

/// Cyclic Jacobi eigendecomposition of the symmetric order-N matrix \p A
/// (row-major): A = B D B^T with eigenvalues in \p Eigenvalues and
/// eigenvectors in \p B's columns. \p Scratch holds the working copy of A.
/// The matrices here are tiny (program arity), so a fixed sweep count
/// suffices.
void jacobiEigen(const std::vector<double> &A, unsigned N,
                 std::vector<double> &B, std::vector<double> &Eigenvalues,
                 std::vector<double> &Scratch) {
  Scratch = A;
  std::vector<double> &D = Scratch;
  auto At = [N](std::vector<double> &M, unsigned I, unsigned J) -> double & {
    return M[I * N + J];
  };
  std::fill(B.begin(), B.end(), 0.0);
  for (unsigned I = 0; I < N; ++I)
    At(B, I, I) = 1.0;
  for (unsigned Sweep = 0; Sweep < 32; ++Sweep) {
    double Off = 0.0;
    for (unsigned I = 0; I < N; ++I)
      for (unsigned J = I + 1; J < N; ++J)
        Off += At(D, I, J) * At(D, I, J);
    if (Off < 1e-30)
      break;
    for (unsigned P = 0; P < N; ++P) {
      for (unsigned Q = P + 1; Q < N; ++Q) {
        if (std::fabs(At(D, P, Q)) < 1e-300)
          continue;
        double Theta = (At(D, Q, Q) - At(D, P, P)) / (2.0 * At(D, P, Q));
        double T = (Theta >= 0 ? 1.0 : -1.0) /
                   (std::fabs(Theta) + std::sqrt(Theta * Theta + 1.0));
        double C = 1.0 / std::sqrt(T * T + 1.0);
        double S = T * C;
        for (unsigned K = 0; K < N; ++K) {
          double Dkp = At(D, K, P), Dkq = At(D, K, Q);
          At(D, K, P) = C * Dkp - S * Dkq;
          At(D, K, Q) = S * Dkp + C * Dkq;
        }
        for (unsigned K = 0; K < N; ++K) {
          double Dpk = At(D, P, K), Dqk = At(D, Q, K);
          At(D, P, K) = C * Dpk - S * Dqk;
          At(D, Q, K) = S * Dpk + C * Dqk;
        }
        for (unsigned K = 0; K < N; ++K) {
          double Bkp = At(B, K, P), Bkq = At(B, K, Q);
          At(B, K, P) = C * Bkp - S * Bkq;
          At(B, K, Q) = S * Bkp + C * Bkq;
        }
      }
    }
  }
  Eigenvalues.resize(N);
  for (unsigned I = 0; I < N; ++I)
    Eigenvalues[I] = D[I * N + I];
}

} // namespace

MinimizeResult
CmaEsMinimizer::minimize(ObjectiveFn Fn, std::vector<double> Start, Rng &Rng,
                         const GenerationCallback &Callback) const {
  MinimizeResult Result;
  Result.X = Start;
  const unsigned N = static_cast<unsigned>(Start.size());
  if (N == 0)
    return Result;

  CountingObjective Counted(Fn);
  // Guard the mean against non-finite coordinates (the campaign's wide
  // sampler emits infinities); CMA-ES needs a finite anchor.
  WS.Mean = Start;
  std::vector<double> &Mean = WS.Mean;
  for (double &M : Mean)
    if (!std::isfinite(M))
      M = 0.0;

  // --- strategy parameters (Hansen's defaults) ---------------------------
  const unsigned Lambda =
      Opts.Lambda ? Opts.Lambda
                  : 4 + static_cast<unsigned>(3.0 * std::log(N));
  const unsigned Mu = Lambda / 2;
  WS.Weights.resize(Mu);
  std::vector<double> &Weights = WS.Weights;
  for (unsigned I = 0; I < Mu; ++I)
    Weights[I] = std::log(Mu + 0.5) - std::log(I + 1.0);
  double WeightSum = std::accumulate(Weights.begin(), Weights.end(), 0.0);
  for (double &W : Weights)
    W /= WeightSum;
  double MuEff = 0.0;
  for (double W : Weights)
    MuEff += W * W;
  MuEff = 1.0 / MuEff;

  const double Cc = (4.0 + MuEff / N) / (N + 4.0 + 2.0 * MuEff / N);
  const double Cs = (MuEff + 2.0) / (N + MuEff + 5.0);
  const double C1 = 2.0 / ((N + 1.3) * (N + 1.3) + MuEff);
  const double CMu = std::min(
      1.0 - C1, 2.0 * (MuEff - 2.0 + 1.0 / MuEff) /
                    ((N + 2.0) * (N + 2.0) + MuEff));
  const double Damps =
      1.0 + 2.0 * std::max(0.0, std::sqrt((MuEff - 1.0) / (N + 1.0)) - 1.0) +
      Cs;
  // E||N(0,I)||, Hansen's approximation.
  const double ChiN =
      std::sqrt(static_cast<double>(N)) *
      (1.0 - 1.0 / (4.0 * N) + 1.0 / (21.0 * N * N));

  double Sigma = Opts.InitialSigma;
  WS.C.assign(static_cast<size_t>(N) * N, 0.0);
  WS.B.assign(static_cast<size_t>(N) * N, 0.0);
  for (unsigned I = 0; I < N; ++I) {
    WS.C[I * N + I] = 1.0;
    WS.B[I * N + I] = 1.0;
  }
  WS.DiagD.assign(N, 1.0);
  WS.Pc.assign(N, 0.0);
  WS.Ps.assign(N, 0.0);
  WS.OldMean.resize(N);
  WS.MeanZ.resize(N);
  WS.PopX.resize(static_cast<size_t>(Lambda) * N);
  WS.PopZ.resize(static_cast<size_t>(Lambda) * N);
  WS.PopFx.resize(Lambda);
  WS.Order.resize(Lambda);

  Result.Fx = Counted.eval(Mean.data(), N);
  Result.X = Mean;

  for (unsigned Gen = 0; Gen < Opts.MaxGenerations; ++Gen) {
    if (Counted.numEvals() + Lambda > Opts.MaxEvaluations)
      break;
    ++Result.Iterations;

    // Sample lambda candidates x = m + sigma * B * diag(sqrt(d)) * z into
    // the flat population matrix, then evaluate the whole generation in
    // one batch (row order matches per-candidate evaluation).
    for (unsigned K = 0; K < Lambda; ++K) {
      double *X = &WS.PopX[static_cast<size_t>(K) * N];
      double *Z = &WS.PopZ[static_cast<size_t>(K) * N];
      for (unsigned I = 0; I < N; ++I)
        Z[I] = Rng.gaussian();
      for (unsigned I = 0; I < N; ++I) {
        double Step = 0.0;
        for (unsigned J = 0; J < N; ++J)
          Step += WS.B[I * N + J] * std::sqrt(std::max(WS.DiagD[J], 0.0)) *
                  Z[J];
        X[I] = Mean[I] + Sigma * Step;
      }
    }
    Counted.evalBatch(WS.PopX.data(), Lambda, N, WS.PopFx.data());

    std::iota(WS.Order.begin(), WS.Order.end(), 0u);
    std::sort(WS.Order.begin(), WS.Order.end(), [&](unsigned L, unsigned R) {
      return WS.PopFx[L] < WS.PopFx[R];
    });
    auto CandX = [&](unsigned SortedK) {
      return &WS.PopX[static_cast<size_t>(WS.Order[SortedK]) * N];
    };
    auto CandZ = [&](unsigned SortedK) {
      return &WS.PopZ[static_cast<size_t>(WS.Order[SortedK]) * N];
    };
    double BestFx = WS.PopFx[WS.Order[0]];
    if (BestFx < Result.Fx) {
      Result.Fx = BestFx;
      Result.X.assign(CandX(0), CandX(0) + N);
    }
    if (Callback && Callback(Result.X, Result.Fx)) {
      Result.StoppedByCallback = true;
      break;
    }

    // Recombine: new mean and its pre-image.
    WS.OldMean = Mean;
    std::vector<double> &OldMean = WS.OldMean;
    for (unsigned I = 0; I < N; ++I) {
      double M = 0.0;
      for (unsigned K = 0; K < Mu; ++K)
        M += Weights[K] * CandX(K)[I];
      Mean[I] = M;
      double Z = 0.0;
      for (unsigned K = 0; K < Mu; ++K)
        Z += Weights[K] * CandZ(K)[I];
      WS.MeanZ[I] = Z;
    }

    // Step-size path: ps <- (1-cs) ps + sqrt(cs(2-cs) mueff) B * meanZ.
    double PsNorm = 0.0;
    for (unsigned I = 0; I < N; ++I) {
      double BZ = 0.0;
      for (unsigned J = 0; J < N; ++J)
        BZ += WS.B[I * N + J] * WS.MeanZ[J];
      WS.Ps[I] = (1.0 - Cs) * WS.Ps[I] +
                 std::sqrt(Cs * (2.0 - Cs) * MuEff) * BZ;
      PsNorm += WS.Ps[I] * WS.Ps[I];
    }
    PsNorm = std::sqrt(PsNorm);

    // Covariance path: pc <- (1-cc) pc + h_sigma sqrt(cc(2-cc) mueff) y.
    bool HSigma = PsNorm / std::sqrt(1.0 - std::pow(1.0 - Cs,
                                                    2.0 * (Gen + 1))) /
                      ChiN <
                  1.4 + 2.0 / (N + 1.0);
    for (unsigned I = 0; I < N; ++I) {
      double Y = (Mean[I] - OldMean[I]) / Sigma;
      WS.Pc[I] = (1.0 - Cc) * WS.Pc[I] +
                 (HSigma ? std::sqrt(Cc * (2.0 - Cc) * MuEff) * Y : 0.0);
    }

    // Covariance update: rank-one (pc pc^T) + rank-mu (weighted y y^T).
    for (unsigned I = 0; I < N; ++I) {
      for (unsigned J = 0; J < N; ++J) {
        double RankMu = 0.0;
        for (unsigned K = 0; K < Mu; ++K) {
          double Yi = (CandX(K)[I] - OldMean[I]) / Sigma;
          double Yj = (CandX(K)[J] - OldMean[J]) / Sigma;
          RankMu += Weights[K] * Yi * Yj;
        }
        double Old = WS.C[I * N + J];
        WS.C[I * N + J] = (1.0 - C1 - CMu) * Old +
                          C1 * WS.Pc[I] * WS.Pc[J] + CMu * RankMu;
      }
    }

    // Step size: log sigma += cs/damps (||ps||/chiN - 1).
    Sigma *= std::exp((Cs / Damps) * (PsNorm / ChiN - 1.0));
    if (!std::isfinite(Sigma) || Sigma > 1e12)
      Sigma = Opts.InitialSigma;
    if (Sigma < 1e-18)
      break; // collapsed: converged in place

    jacobiEigen(WS.C, N, WS.B, WS.DiagD, WS.EigenScratch);
    // Numerical floor: a degenerate axis stalls sampling entirely.
    for (double &D : WS.DiagD)
      if (!(D > 1e-20))
        D = 1e-20;

    // Convergence: population spread below tolerance.
    double Spread = WS.PopFx[WS.Order[Lambda - 1]] - WS.PopFx[WS.Order[0]];
    if (Spread >= 0.0 && Spread < Opts.FTol &&
        std::fabs(WS.PopFx[WS.Order[0]]) < Opts.FTol) {
      Result.Converged = true;
      break;
    }
  }

  Result.NumEvals = Counted.numEvals();
  return Result;
}
