//===- DifferentialEvolution.h - DE/rand/1/bin global minimizer -----------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential Evolution [Storn & Price] as another interchangeable global
/// backend for Step 3 (the classic DE/rand/1/bin scheme). Like CMA-ES it
/// demonstrates the black-box claim of Sect. 2 with a population method;
/// unlike CMA-ES it adapts no model, which makes it a useful ablation
/// contrast: how much of the campaign's power comes from the representing
/// function itself versus the sophistication of the minimizer.
///
/// The population is seeded around the campaign's starting point with
/// exponent-spread jitter so the initial spread covers the many binades
/// Fdlibm thresholds live in.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_OPTIM_DIFFERENTIALEVOLUTION_H
#define COVERME_OPTIM_DIFFERENTIALEVOLUTION_H

#include "optim/CmaEs.h"
#include "optim/Minimizer.h"
#include "support/Random.h"

namespace coverme {

/// DE knobs; defaults are Storn & Price's canonical settings.
struct DifferentialEvolutionOptions {
  unsigned PopulationSize = 0; ///< 0 = max(12, 8 * n).
  double DifferentialWeight = 0.8; ///< F: scale of the difference vector.
  double CrossoverRate = 0.9;      ///< CR: per-coordinate crossover chance.
  unsigned MaxGenerations = 120;   ///< Generation cap per run.
  uint64_t MaxEvaluations = 50000; ///< Hard objective-call budget.
  double FTol = 1e-14;             ///< Spread-based convergence test.
};

/// DE/rand/1/bin minimizer. The population lives in a flat row-major
/// arena reused across runs; the initial seeding evaluates through the
/// objective's batch path. (The generation loop stays sequential by
/// construction: each member's selection feeds the next member's
/// mutation.) Thread-compatible, not thread-safe.
class DifferentialEvolutionMinimizer {
public:
  explicit DifferentialEvolutionMinimizer(
      DifferentialEvolutionOptions Opts = {})
      : Opts(Opts) {}

  /// Minimizes \p Fn with a population seeded around \p Start.
  /// \p Callback may be null; returning true from it stops the run.
  MinimizeResult minimize(ObjectiveFn Fn, std::vector<double> Start,
                          Rng &Rng,
                          const GenerationCallback &Callback = nullptr) const;

  const DifferentialEvolutionOptions &options() const { return Opts; }

private:
  DifferentialEvolutionOptions Opts;
  struct Workspace {
    std::vector<double> Pop; ///< NP x N members, row-major.
    std::vector<double> Fx;  ///< NP member values.
    std::vector<double> Trial;
  };
  mutable Workspace WS;
};

} // namespace coverme

#endif // COVERME_OPTIM_DIFFERENTIALEVOLUTION_H
