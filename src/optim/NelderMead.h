//===- NelderMead.h - Downhill simplex method -----------------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Nelder-Mead downhill simplex local minimizer — an alternative LM for
/// Algorithm 1, exercised by the ablation bench (E8 in DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_OPTIM_NELDERMEAD_H
#define COVERME_OPTIM_NELDERMEAD_H

#include "optim/Minimizer.h"

namespace coverme {

/// Nelder-Mead simplex local minimizer with standard reflection/expansion/
/// contraction/shrink coefficients (1, 2, 0.5, 0.5).
class NelderMeadMinimizer : public LocalMinimizer {
public:
  explicit NelderMeadMinimizer(LocalMinimizerOptions Opts = {})
      : LocalMinimizer(Opts) {}

  MinimizeResult minimize(const Objective &Fn,
                          std::vector<double> Start) const override;

  std::string name() const override { return "nelder-mead"; }
};

} // namespace coverme

#endif // COVERME_OPTIM_NELDERMEAD_H
