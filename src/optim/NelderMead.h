//===- NelderMead.h - Downhill simplex method -----------------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Nelder-Mead downhill simplex local minimizer — an alternative LM for
/// Algorithm 1, exercised by the ablation bench (E8 in DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_OPTIM_NELDERMEAD_H
#define COVERME_OPTIM_NELDERMEAD_H

#include "optim/Minimizer.h"

namespace coverme {

/// Nelder-Mead simplex local minimizer with standard reflection/expansion/
/// contraction/shrink coefficients (1, 2, 0.5, 0.5).
class NelderMeadMinimizer : public LocalMinimizer {
public:
  explicit NelderMeadMinimizer(LocalMinimizerOptions Opts = {})
      : LocalMinimizer(Opts) {}

  MinimizeResult minimize(ObjectiveFn Fn,
                          std::vector<double> Start) const override;

  std::string name() const override { return "nelder-mead"; }

private:
  /// Flat per-instance arena: the (N+1) x N simplex plus iteration
  /// scratch. The initial simplex evaluates through the objective's batch
  /// path; the reflect/expand/contract loop never allocates.
  struct Workspace {
    std::vector<double> Simplex; ///< (N+1) x N vertices, row-major.
    std::vector<double> FVals;   ///< N+1 vertex values.
    std::vector<size_t> Order;
    std::vector<double> Centroid;
    std::vector<double> Reflected;
    std::vector<double> Expanded;
  };
  mutable Workspace WS;
};

} // namespace coverme

#endif // COVERME_OPTIM_NELDERMEAD_H
