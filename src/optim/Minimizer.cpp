//===- Minimizer.cpp - Local minimizer factory ------------------------------===//

#include "optim/Minimizer.h"

#include "optim/CoordinateDescent.h"
#include "optim/NelderMead.h"
#include "optim/Powell.h"

#include <cassert>

using namespace coverme;

LocalMinimizer::~LocalMinimizer() = default;

const char *coverme::localMinimizerKindName(LocalMinimizerKind Kind) {
  switch (Kind) {
  case LocalMinimizerKind::Powell:
    return "powell";
  case LocalMinimizerKind::NelderMead:
    return "nelder-mead";
  case LocalMinimizerKind::CoordinateDescent:
    return "coordinate-descent";
  case LocalMinimizerKind::None:
    return "none";
  }
  assert(false && "unknown LocalMinimizerKind");
  return "unknown";
}

std::unique_ptr<LocalMinimizer>
coverme::makeLocalMinimizer(LocalMinimizerKind Kind,
                            LocalMinimizerOptions Opts) {
  switch (Kind) {
  case LocalMinimizerKind::Powell:
    return std::make_unique<PowellMinimizer>(Opts);
  case LocalMinimizerKind::NelderMead:
    return std::make_unique<NelderMeadMinimizer>(Opts);
  case LocalMinimizerKind::CoordinateDescent:
    return std::make_unique<CoordinateDescentMinimizer>(Opts);
  case LocalMinimizerKind::None:
    return std::make_unique<IdentityMinimizer>(Opts);
  }
  assert(false && "unknown LocalMinimizerKind");
  return nullptr;
}
