//===- Basinhopping.h - MCMC global minimization (Algo. 1, lines 24-34) ---===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Basinhopping algorithm [Leitner et al.; Li & Scheraga]: MCMC sampling
/// over the space of local minimum points. Each iteration perturbs the
/// current local minimum, re-minimizes locally, and applies the Metropolis
/// accept rule with temperature T=1 — exactly the MCMC procedure of
/// Algorithm 1 (lines 24-34). The paper's implementation calls SciPy's
/// `basinhopping(f, sp, n_iter, callback)`; this is the from-scratch
/// equivalent, including the client callback used for early termination.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_OPTIM_BASINHOPPING_H
#define COVERME_OPTIM_BASINHOPPING_H

#include "optim/Minimizer.h"
#include "support/Random.h"

#include <functional>

namespace coverme {

/// Invoked after every Monte-Carlo iteration with the best point so far.
/// Returning true stops the run (mirrors SciPy's callback protocol, which
/// CoverMe uses to stop once all branches are saturated).
using BasinhoppingCallback =
    std::function<bool(const std::vector<double> &X, double Fx)>;

/// Knobs for the global minimizer.
struct BasinhoppingOptions {
  unsigned NIter = 5;          ///< Monte-Carlo iterations (paper: n_iter=5).
  double Temperature = 1.0;    ///< Metropolis temperature (Algo. 1 uses 1).
  double StepSigma = 2.0;      ///< Gaussian perturbation scale.
  double JumpProbability = 0.4; ///< Chance a coordinate takes an
                                ///< exponent-uniform jump instead of a local
                                ///< Gaussian step (lets the chain cross the
                                ///< huge magnitude gaps Fdlibm thresholds
                                ///< sit at; SciPy's take_step plays the same
                                ///< role).
  uint64_t MaxEvaluations = 50000; ///< Hard budget across all iterations.
};

/// MCMC/Basinhopping global minimizer over local minima of a LocalMinimizer.
class BasinhoppingMinimizer {
public:
  BasinhoppingMinimizer(const LocalMinimizer &LM, BasinhoppingOptions Opts = {})
      : LM(LM), Opts(Opts) {}

  /// Runs MCMC from \p Start using \p Rng for perturbations and Metropolis
  /// coin flips. \p Callback may be null.
  MinimizeResult minimize(ObjectiveFn Fn, std::vector<double> Start,
                          Rng &Rng,
                          const BasinhoppingCallback &Callback = nullptr) const;

  const BasinhoppingOptions &options() const { return Opts; }

private:
  const LocalMinimizer &LM;
  BasinhoppingOptions Opts;
};

} // namespace coverme

#endif // COVERME_OPTIM_BASINHOPPING_H
