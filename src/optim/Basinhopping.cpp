//===- Basinhopping.cpp - MCMC global minimization --------------------------===//

#include "optim/Basinhopping.h"

#include <cmath>

using namespace coverme;

MinimizeResult
BasinhoppingMinimizer::minimize(ObjectiveFn Fn, std::vector<double> Start,
                                Rng &Rng,
                                const BasinhoppingCallback &Callback) const {
  MinimizeResult Res;
  if (Start.empty()) {
    Res.X = std::move(Start);
    return Res;
  }

  const size_t N = Start.size();
  uint64_t EvalsUsed = 0;
  auto RemainingBudget = [&]() {
    return Opts.MaxEvaluations > EvalsUsed ? Opts.MaxEvaluations - EvalsUsed
                                           : 0;
  };

  // Line 25: xL = LM(f, x).
  MinimizeResult Local = LM.minimize(Fn, std::move(Start));
  EvalsUsed += Local.NumEvals;
  std::vector<double> XL = Local.X;
  double FXL = Local.Fx;

  // Track the best sample ever seen; MCMC may accept uphill moves.
  Res.X = XL;
  Res.Fx = FXL;

  if (Callback && Callback(Res.X, Res.Fx)) {
    Res.StoppedByCallback = true;
    Res.NumEvals = EvalsUsed;
    return Res;
  }

  for (unsigned K = 0; K < Opts.NIter && RemainingBudget() > 0; ++K) {
    ++Res.Iterations;

    // Lines 27-28: propose xTilde = LM(f, xL + delta). The perturbation
    // mixes a relative Gaussian step with occasional exponent-uniform jumps
    // so the chain can hop between basins separated by many binades.
    // (One vector per Monte-Carlo iteration, i.e. per inner LM *run* —
    // the zero-allocation contract is per probe, and the probes all run
    // inside LM.minimize on its workspace.)
    std::vector<double> Proposal(N);
    for (size_t I = 0; I < N; ++I) {
      if (Rng.chance(Opts.JumpProbability))
        Proposal[I] = Rng.wideDouble();
      else
        Proposal[I] =
            XL[I] + Rng.gaussian(0.0, Opts.StepSigma * (1.0 + std::fabs(XL[I])));
    }
    MinimizeResult Trial = LM.minimize(Fn, std::move(Proposal));
    EvalsUsed += Trial.NumEvals;

    // Lines 29-33: Metropolis accept rule at temperature T.
    bool Accept = Trial.Fx < FXL;
    if (!Accept) {
      double M = Rng.uniform01();
      Accept = M < std::exp((FXL - Trial.Fx) / Opts.Temperature);
    }
    if (Accept) {
      XL = std::move(Trial.X);
      FXL = Trial.Fx;
      if (FXL < Res.Fx) {
        Res.X = XL;
        Res.Fx = FXL;
      }
    }

    if (Callback && Callback(Res.X, Res.Fx)) {
      Res.StoppedByCallback = true;
      break;
    }
    if (Res.Fx == 0.0)
      break; // A global minimum of a representing function; no need to hop on.
  }

  Res.NumEvals = EvalsUsed;
  Res.Converged = Res.Fx == 0.0;
  return Res;
}
