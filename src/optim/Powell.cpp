//===- Powell.cpp - Powell's conjugate-direction method --------------------===//

#include "optim/Powell.h"

#include "optim/LineSearch.h"

#include <cmath>

using namespace coverme;

namespace {

/// Line-minimizes Fn from Point along Dir, updating both in place.
/// Returns the achieved value; accumulates evaluation counts into Evals.
double minimizeAlong(CountingObjective &Fn, std::vector<double> &Point,
                     const std::vector<double> &Dir, double InitialStep,
                     double &FCur) {
  std::vector<double> Probe = Point;
  ScalarObjective G = [&](double T) {
    for (size_t I = 0; I < Point.size(); ++I)
      Probe[I] = Point[I] + T * Dir[I];
    return Fn(Probe);
  };
  LineSearchResult LS = lineMinimize(G, InitialStep);
  if (LS.F < FCur) {
    for (size_t I = 0; I < Point.size(); ++I)
      Point[I] += LS.T * Dir[I];
    FCur = LS.F;
  }
  return FCur;
}

} // namespace

MinimizeResult PowellMinimizer::minimize(const Objective &RawFn,
                                         std::vector<double> Start) const {
  MinimizeResult Res;
  Res.X = std::move(Start);
  if (Res.X.empty())
    return Res;

  CountingObjective Fn(RawFn);
  const size_t N = Res.X.size();

  // Direction set starts as the coordinate axes scaled by the initial step.
  std::vector<std::vector<double>> Dirs(N, std::vector<double>(N, 0.0));
  for (size_t I = 0; I < N; ++I)
    Dirs[I][I] = Opts.InitialStep;

  double FCur = Fn(Res.X);

  for (unsigned Iter = 0; Iter < Opts.MaxIterations; ++Iter) {
    ++Res.Iterations;
    double FStart = FCur;
    std::vector<double> PStart = Res.X;
    size_t BiggestDir = 0;
    double BiggestDrop = 0.0;

    for (size_t D = 0; D < N; ++D) {
      double FBefore = FCur;
      minimizeAlong(Fn, Res.X, Dirs[D], Opts.InitialStep, FCur);
      double Drop = FBefore - FCur;
      if (Drop > BiggestDrop) {
        BiggestDrop = Drop;
        BiggestDir = D;
      }
      if (Fn.numEvals() >= Opts.MaxEvaluations)
        break;
    }

    if (FCur == 0.0 || Fn.numEvals() >= Opts.MaxEvaluations)
      break;

    // Relative decrease convergence test.
    if (2.0 * (FStart - FCur) <=
        Opts.FTol * (std::fabs(FStart) + std::fabs(FCur)) + 1e-300) {
      Res.Converged = true;
      break;
    }

    // Powell's direction update: try the overall displacement P - PStart.
    std::vector<double> NewDir(N);
    std::vector<double> Extrapolated(N);
    for (size_t I = 0; I < N; ++I) {
      NewDir[I] = Res.X[I] - PStart[I];
      Extrapolated[I] = Res.X[I] + NewDir[I];
    }
    double FExtrapolated = Fn(Extrapolated);
    if (FExtrapolated < FStart) {
      double T = 2.0 * (FStart - 2.0 * FCur + FExtrapolated) *
                     std::pow(FStart - FCur - BiggestDrop, 2) -
                 BiggestDrop * std::pow(FStart - FExtrapolated, 2);
      if (T < 0.0) {
        minimizeAlong(Fn, Res.X, NewDir, 1.0, FCur);
        Dirs[BiggestDir] = Dirs.back();
        Dirs.back() = NewDir;
      }
    }
  }

  Res.Fx = FCur;
  Res.NumEvals = Fn.numEvals();
  return Res;
}
