//===- Powell.cpp - Powell's conjugate-direction method --------------------===//

#include "optim/Powell.h"

#include "optim/LineSearch.h"

#include <algorithm>
#include <cmath>

using namespace coverme;

MinimizeResult PowellMinimizer::minimize(ObjectiveFn RawFn,
                                         std::vector<double> Start) const {
  MinimizeResult Res;
  Res.X = std::move(Start);
  if (Res.X.empty())
    return Res;

  CountingObjective Fn(RawFn);
  const size_t N = Res.X.size();

  WS.Dirs.resize(N * N);
  WS.PStart.resize(N);
  WS.NewDir.resize(N);
  WS.Extrapolated.resize(N);
  WS.Probe.resize(N);

  // Direction set starts as the coordinate axes scaled by the initial step.
  std::fill(WS.Dirs.begin(), WS.Dirs.end(), 0.0);
  for (size_t I = 0; I < N; ++I)
    WS.Dirs[I * N + I] = Opts.InitialStep;

  double FCur = Fn.eval(Res.X.data(), N);

  // Line-minimizes from Res.X along Dir, updating Res.X and FCur in place.
  // The probe lambda writes into the workspace span, so each probe is one
  // indirect call into the objective and nothing else.
  auto MinimizeAlong = [&](const double *Dir, double InitialStep) {
    double *Point = Res.X.data();
    auto G = [&](double T) {
      for (size_t I = 0; I < N; ++I)
        WS.Probe[I] = Point[I] + T * Dir[I];
      return Fn.eval(WS.Probe.data(), N);
    };
    LineSearchResult LS = lineMinimize(G, InitialStep);
    if (LS.F < FCur) {
      for (size_t I = 0; I < N; ++I)
        Point[I] += LS.T * Dir[I];
      FCur = LS.F;
    }
  };

  for (unsigned Iter = 0; Iter < Opts.MaxIterations; ++Iter) {
    ++Res.Iterations;
    double FStart = FCur;
    std::copy(Res.X.begin(), Res.X.end(), WS.PStart.begin());
    size_t BiggestDir = 0;
    double BiggestDrop = 0.0;

    for (size_t D = 0; D < N; ++D) {
      double FBefore = FCur;
      MinimizeAlong(&WS.Dirs[D * N], Opts.InitialStep);
      double Drop = FBefore - FCur;
      if (Drop > BiggestDrop) {
        BiggestDrop = Drop;
        BiggestDir = D;
      }
      if (Fn.numEvals() >= Opts.MaxEvaluations)
        break;
    }

    if (FCur == 0.0 || Fn.numEvals() >= Opts.MaxEvaluations)
      break;

    // Relative decrease convergence test.
    if (2.0 * (FStart - FCur) <=
        Opts.FTol * (std::fabs(FStart) + std::fabs(FCur)) + 1e-300) {
      Res.Converged = true;
      break;
    }

    // Powell's direction update: try the overall displacement P - PStart.
    for (size_t I = 0; I < N; ++I) {
      WS.NewDir[I] = Res.X[I] - WS.PStart[I];
      WS.Extrapolated[I] = Res.X[I] + WS.NewDir[I];
    }
    double FExtrapolated = Fn.eval(WS.Extrapolated.data(), N);
    if (FExtrapolated < FStart) {
      double T = 2.0 * (FStart - 2.0 * FCur + FExtrapolated) *
                     std::pow(FStart - FCur - BiggestDrop, 2) -
                 BiggestDrop * std::pow(FStart - FExtrapolated, 2);
      if (T < 0.0) {
        MinimizeAlong(WS.NewDir.data(), 1.0);
        if (BiggestDir != N - 1)
          std::copy(&WS.Dirs[(N - 1) * N], &WS.Dirs[(N - 1) * N] + N,
                    &WS.Dirs[BiggestDir * N]);
        std::copy(WS.NewDir.begin(), WS.NewDir.end(), &WS.Dirs[(N - 1) * N]);
      }
    }
  }

  Res.Fx = FCur;
  Res.NumEvals = Fn.numEvals();
  return Res;
}
