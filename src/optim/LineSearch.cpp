//===- LineSearch.cpp - One-dimensional minimization -----------------------===//

#include "optim/LineSearch.h"

#include <algorithm>
#include <cmath>

using namespace coverme;

static const double Golden = 1.618033988749895;
static const double CGold = 0.3819660112501051; // 1 - 1/Golden.
static const double TinyDenom = 1e-21;

/// Evaluates G with NaN mapped to a huge penalty so orderings stay total.
static double evalSafe(const ScalarObjective &G, double T, uint64_t &Evals) {
  ++Evals;
  double V = G(T);
  return V != V ? 1e300 : V;
}

Bracket coverme::bracketMinimum(const ScalarObjective &G, double T0, double T1,
                                uint64_t MaxEvals) {
  Bracket Br;
  uint64_t Evals = 0;
  double A = T0, B = T1;
  double FA = evalSafe(G, A, Evals);
  double FB = evalSafe(G, B, Evals);
  if (FB > FA) {
    std::swap(A, B);
    std::swap(FA, FB);
  }
  double C = B + Golden * (B - A);
  double FC = evalSafe(G, C, Evals);

  while (FB > FC && Evals < MaxEvals) {
    // Parabolic extrapolation from (A,B,C), clamped to a maximum leap.
    double R = (B - A) * (FB - FC);
    double Q = (B - C) * (FB - FA);
    double Denom = 2.0 * std::copysign(std::max(std::fabs(Q - R), TinyDenom),
                                       Q - R);
    double U = B - ((B - C) * Q - (B - A) * R) / Denom;
    double ULim = B + 100.0 * (C - B);
    double FU;
    if ((B - U) * (U - C) > 0.0) {
      // U between B and C.
      FU = evalSafe(G, U, Evals);
      if (FU < FC) {
        A = B; FA = FB; B = U; FB = FU;
        break;
      }
      if (FU > FB) {
        C = U; FC = FU;
        break;
      }
      U = C + Golden * (C - B);
      FU = evalSafe(G, U, Evals);
    } else if ((C - U) * (U - ULim) > 0.0) {
      // U between C and the limit.
      FU = evalSafe(G, U, Evals);
      if (FU < FC) {
        B = C; C = U; U = C + Golden * (C - B);
        FB = FC; FC = FU; FU = evalSafe(G, U, Evals);
      }
    } else if ((U - ULim) * (ULim - C) >= 0.0) {
      U = ULim;
      FU = evalSafe(G, U, Evals);
    } else {
      U = C + Golden * (C - B);
      FU = evalSafe(G, U, Evals);
    }
    A = B; B = C; C = U;
    FA = FB; FB = FC; FC = FU;
  }

  Br.A = A; Br.B = B; Br.C = C;
  Br.FA = FA; Br.FB = FB; Br.FC = FC;
  Br.Valid = FB <= FA && FB <= FC && std::isfinite(B);
  return Br;
}

LineSearchResult coverme::brentMinimize(const ScalarObjective &G,
                                        const Bracket &Br, double Tol,
                                        unsigned MaxIter) {
  LineSearchResult Res;
  if (!Br.Valid) {
    Res.T = Br.B;
    Res.F = Br.FB;
    return Res;
  }

  uint64_t Evals = 0;
  double A = std::min(Br.A, Br.C);
  double B = std::max(Br.A, Br.C);
  double X = Br.B, W = Br.B, V = Br.B;
  double FX = Br.FB, FW = Br.FB, FV = Br.FB;
  double D = 0.0, E = 0.0;

  for (unsigned Iter = 0; Iter < MaxIter; ++Iter) {
    double XM = 0.5 * (A + B);
    double Tol1 = Tol * std::fabs(X) + 1e-300;
    double Tol2 = 2.0 * Tol1;
    if (std::fabs(X - XM) <= Tol2 - 0.5 * (B - A)) {
      Res.Converged = true;
      break;
    }
    bool UseGolden = true;
    if (std::fabs(E) > Tol1) {
      // Trial parabolic fit through X, V, W.
      double R = (X - W) * (FX - FV);
      double Q = (X - V) * (FX - FW);
      double P = (X - V) * Q - (X - W) * R;
      Q = 2.0 * (Q - R);
      if (Q > 0.0)
        P = -P;
      Q = std::fabs(Q);
      double ETmp = E;
      E = D;
      if (std::fabs(P) < std::fabs(0.5 * Q * ETmp) && P > Q * (A - X) &&
          P < Q * (B - X)) {
        D = P / Q;
        double U = X + D;
        if (U - A < Tol2 || B - U < Tol2)
          D = std::copysign(Tol1, XM - X);
        UseGolden = false;
      }
    }
    if (UseGolden) {
      E = (X >= XM) ? A - X : B - X;
      D = CGold * E;
    }
    double U = (std::fabs(D) >= Tol1) ? X + D : X + std::copysign(Tol1, D);
    double FU = evalSafe(G, U, Evals);
    if (FU <= FX) {
      if (U >= X)
        A = X;
      else
        B = X;
      V = W; W = X; X = U;
      FV = FW; FW = FX; FX = FU;
    } else {
      if (U < X)
        A = U;
      else
        B = U;
      if (FU <= FW || W == X) {
        V = W; W = U;
        FV = FW; FW = FU;
      } else if (FU <= FV || V == X || V == W) {
        V = U;
        FV = FU;
      }
    }
  }

  Res.T = X;
  Res.F = FX;
  Res.NumEvals = Evals;
  return Res;
}

LineSearchResult coverme::lineMinimize(const ScalarObjective &G,
                                       double InitialStep, double Tol) {
  Bracket Br = bracketMinimum(G, 0.0, InitialStep);
  LineSearchResult Res = brentMinimize(G, Br, Tol);
  Res.NumEvals += 3; // Bracketing consumed at least the initial probes.
  return Res;
}
