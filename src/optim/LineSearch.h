//===- LineSearch.h - One-dimensional minimization ------------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bracketing plus Brent's method for minimizing a univariate function.
/// Powell's method reduces each of its direction sweeps to exactly this
/// problem, so its quality determines how fast FOO_R's quadratic branch
/// distances (Def. 4.1) are driven to zero.
///
/// The entry points are templates over the scalar objective so the caller's
/// probe lambda inlines into the search loop — Powell's per-probe path is
/// "fill the probe span, one indirect call into the objective", with no
/// type-erased dispatch in between. The ScalarObjective alias remains for
/// callers that prefer to spell the callable type.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_OPTIM_LINESEARCH_H
#define COVERME_OPTIM_LINESEARCH_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>

namespace coverme {

/// A univariate objective g(t).
using ScalarObjective = std::function<double(double)>;

/// A bracketing triple A < B < C (or C < B < A) with g(B) <= g(A), g(B) <= g(C).
struct Bracket {
  double A = 0.0, B = 0.0, C = 0.0;
  double FA = 0.0, FB = 0.0, FC = 0.0;
  bool Valid = false;
};

/// Result of a 1-D minimization.
struct LineSearchResult {
  double T = 0.0;        ///< Argmin found.
  double F = 0.0;        ///< Value at T.
  uint64_t NumEvals = 0; ///< Objective calls used.
  bool Converged = false;
};

namespace detail {

inline constexpr double LineSearchGolden = 1.618033988749895;
inline constexpr double LineSearchCGold = 0.3819660112501051; // 1 - 1/Golden.
inline constexpr double LineSearchTinyDenom = 1e-21;

/// Evaluates G with NaN mapped to a huge penalty so orderings stay total.
template <typename GFn>
double lineSearchEvalSafe(GFn &G, double T, uint64_t &Evals) {
  ++Evals;
  double V = G(T);
  return V != V ? 1e300 : V;
}

} // namespace detail

/// Expands downhill from (T0, T1) with golden-ratio steps until a minimum is
/// bracketed or \p MaxEvals is exhausted (Numerical Recipes mnbrak).
template <typename GFn>
Bracket bracketMinimum(GFn &&G, double T0, double T1,
                       uint64_t MaxEvals = 60) {
  const double Golden = detail::LineSearchGolden;
  Bracket Br;
  uint64_t Evals = 0;
  double A = T0, B = T1;
  double FA = detail::lineSearchEvalSafe(G, A, Evals);
  double FB = detail::lineSearchEvalSafe(G, B, Evals);
  if (FB > FA) {
    std::swap(A, B);
    std::swap(FA, FB);
  }
  double C = B + Golden * (B - A);
  double FC = detail::lineSearchEvalSafe(G, C, Evals);

  while (FB > FC && Evals < MaxEvals) {
    // Parabolic extrapolation from (A,B,C), clamped to a maximum leap.
    double R = (B - A) * (FB - FC);
    double Q = (B - C) * (FB - FA);
    double Denom = 2.0 * std::copysign(
                             std::max(std::fabs(Q - R),
                                      detail::LineSearchTinyDenom),
                             Q - R);
    double U = B - ((B - C) * Q - (B - A) * R) / Denom;
    double ULim = B + 100.0 * (C - B);
    double FU;
    if ((B - U) * (U - C) > 0.0) {
      // U between B and C.
      FU = detail::lineSearchEvalSafe(G, U, Evals);
      if (FU < FC) {
        A = B; FA = FB; B = U; FB = FU;
        break;
      }
      if (FU > FB) {
        C = U; FC = FU;
        break;
      }
      U = C + Golden * (C - B);
      FU = detail::lineSearchEvalSafe(G, U, Evals);
    } else if ((C - U) * (U - ULim) > 0.0) {
      // U between C and the limit.
      FU = detail::lineSearchEvalSafe(G, U, Evals);
      if (FU < FC) {
        B = C; C = U; U = C + Golden * (C - B);
        FB = FC; FC = FU; FU = detail::lineSearchEvalSafe(G, U, Evals);
      }
    } else if ((U - ULim) * (ULim - C) >= 0.0) {
      U = ULim;
      FU = detail::lineSearchEvalSafe(G, U, Evals);
    } else {
      U = C + Golden * (C - B);
      FU = detail::lineSearchEvalSafe(G, U, Evals);
    }
    A = B; B = C; C = U;
    FA = FB; FB = FC; FC = FU;
  }

  Br.A = A; Br.B = B; Br.C = C;
  Br.FA = FA; Br.FB = FB; Br.FC = FC;
  Br.Valid = FB <= FA && FB <= FC && std::isfinite(B);
  return Br;
}

/// Brent's parabolic-interpolation/golden-section minimization inside the
/// interval [min(A,C), max(A,C)] of \p Br.
template <typename GFn>
LineSearchResult brentMinimize(GFn &&G, const Bracket &Br, double Tol = 1e-10,
                               unsigned MaxIter = 64) {
  LineSearchResult Res;
  if (!Br.Valid) {
    Res.T = Br.B;
    Res.F = Br.FB;
    return Res;
  }

  uint64_t Evals = 0;
  double A = std::min(Br.A, Br.C);
  double B = std::max(Br.A, Br.C);
  double X = Br.B, W = Br.B, V = Br.B;
  double FX = Br.FB, FW = Br.FB, FV = Br.FB;
  double D = 0.0, E = 0.0;

  for (unsigned Iter = 0; Iter < MaxIter; ++Iter) {
    double XM = 0.5 * (A + B);
    double Tol1 = Tol * std::fabs(X) + 1e-300;
    double Tol2 = 2.0 * Tol1;
    if (std::fabs(X - XM) <= Tol2 - 0.5 * (B - A)) {
      Res.Converged = true;
      break;
    }
    bool UseGolden = true;
    if (std::fabs(E) > Tol1) {
      // Trial parabolic fit through X, V, W.
      double R = (X - W) * (FX - FV);
      double Q = (X - V) * (FX - FW);
      double P = (X - V) * Q - (X - W) * R;
      Q = 2.0 * (Q - R);
      if (Q > 0.0)
        P = -P;
      Q = std::fabs(Q);
      double ETmp = E;
      E = D;
      if (std::fabs(P) < std::fabs(0.5 * Q * ETmp) && P > Q * (A - X) &&
          P < Q * (B - X)) {
        D = P / Q;
        double U = X + D;
        if (U - A < Tol2 || B - U < Tol2)
          D = std::copysign(Tol1, XM - X);
        UseGolden = false;
      }
    }
    if (UseGolden) {
      E = (X >= XM) ? A - X : B - X;
      D = detail::LineSearchCGold * E;
    }
    double U = (std::fabs(D) >= Tol1) ? X + D : X + std::copysign(Tol1, D);
    double FU = detail::lineSearchEvalSafe(G, U, Evals);
    if (FU <= FX) {
      if (U >= X)
        A = X;
      else
        B = X;
      V = W; W = X; X = U;
      FV = FW; FW = FX; FX = FU;
    } else {
      if (U < X)
        A = U;
      else
        B = U;
      if (FU <= FW || W == X) {
        V = W; W = U;
        FV = FW; FW = FU;
      } else if (FU <= FV || V == X || V == W) {
        V = U;
        FV = FU;
      }
    }
  }

  Res.T = X;
  Res.F = FX;
  Res.NumEvals = Evals;
  return Res;
}

/// Convenience: bracket from (0, \p InitialStep), then Brent. Falls back to
/// T=0 when no descent direction exists.
template <typename GFn>
LineSearchResult lineMinimize(GFn &&G, double InitialStep,
                              double Tol = 1e-10) {
  Bracket Br = bracketMinimum(G, 0.0, InitialStep);
  LineSearchResult Res = brentMinimize(G, Br, Tol);
  Res.NumEvals += 3; // Bracketing consumed at least the initial probes.
  return Res;
}

} // namespace coverme

#endif // COVERME_OPTIM_LINESEARCH_H
