//===- LineSearch.h - One-dimensional minimization ------------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bracketing plus Brent's method for minimizing a univariate function.
/// Powell's method reduces each of its direction sweeps to exactly this
/// problem, so its quality determines how fast FOO_R's quadratic branch
/// distances (Def. 4.1) are driven to zero.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_OPTIM_LINESEARCH_H
#define COVERME_OPTIM_LINESEARCH_H

#include <cstdint>
#include <functional>

namespace coverme {

/// A univariate objective g(t).
using ScalarObjective = std::function<double(double)>;

/// A bracketing triple A < B < C (or C < B < A) with g(B) <= g(A), g(B) <= g(C).
struct Bracket {
  double A = 0.0, B = 0.0, C = 0.0;
  double FA = 0.0, FB = 0.0, FC = 0.0;
  bool Valid = false;
};

/// Result of a 1-D minimization.
struct LineSearchResult {
  double T = 0.0;        ///< Argmin found.
  double F = 0.0;        ///< Value at T.
  uint64_t NumEvals = 0; ///< Objective calls used.
  bool Converged = false;
};

/// Expands downhill from (T0, T1) with golden-ratio steps until a minimum is
/// bracketed or \p MaxEvals is exhausted (Numerical Recipes mnbrak).
Bracket bracketMinimum(const ScalarObjective &G, double T0, double T1,
                       uint64_t MaxEvals = 60);

/// Brent's parabolic-interpolation/golden-section minimization inside the
/// interval [min(A,C), max(A,C)] of \p Br.
LineSearchResult brentMinimize(const ScalarObjective &G, const Bracket &Br,
                               double Tol = 1e-10, unsigned MaxIter = 64);

/// Convenience: bracket from (0, \p InitialStep), then Brent. Falls back to
/// T=0 when no descent direction exists.
LineSearchResult lineMinimize(const ScalarObjective &G, double InitialStep,
                              double Tol = 1e-10);

} // namespace coverme

#endif // COVERME_OPTIM_LINESEARCH_H
